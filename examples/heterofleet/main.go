// Heterogeneous fleet — Section 4's asymmetric costs: a monitoring fleet
// mixes mains-powered gateways (cheap samples), battery sensors (expensive
// samples) and solar nodes in between. Rather than making every device draw
// the same number of samples, the Section 4 allocation gives node i a
// budget s_i = C/c_i so that every device pays the same maximum individual
// cost C = Θ(√n/ε²)/‖T‖₂ — and the fleet still meets the error bound.
package main

import (
	"fmt"
	"log"

	unifdist "github.com/unifdist/unifdist"
)

const (
	nBuckets = 1 << 16
	eps      = 1.0
)

func main() {
	// Fleet composition: per-sample energy costs.
	type class struct {
		name  string
		cost  float64
		count int
	}
	classes := []class{
		{name: "gateway (mains)", cost: 1, count: 2000},
		{name: "solar relay", cost: 3, count: 3000},
		{name: "battery sensor", cost: 10, count: 5000},
	}
	var costs []float64
	for _, c := range classes {
		for i := 0; i < c.count; i++ {
			costs = append(costs, c.cost)
		}
	}

	cfg, err := unifdist.SolveAsymmetricThreshold(nBuckets, eps, costs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet of %d devices, max individual cost C = %.1f (threshold T = %d)\n\n",
		len(costs), cfg.Cost, cfg.T)
	fmt.Println("class             cost/sample  samples  energy paid")
	fmt.Println("----------------------------------------------------")
	idx := 0
	for _, c := range classes {
		s := cfg.Samples[idx]
		fmt.Printf("%-17s %11.0f  %7d  %11.0f\n", c.name, c.cost, s, float64(s)*c.cost)
		idx += c.count
	}

	// Compare with the naive symmetric assignment: everyone draws what the
	// symmetric solver asks, so battery sensors pay 10× the gateways.
	sym, err := unifdist.SolveThreshold(nBuckets, len(costs), eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive symmetric assignment: %d samples each → battery sensors pay %.0f (vs %.1f here)\n",
		sym.SamplesPerNode, float64(sym.SamplesPerNode)*10, cfg.Cost)

	nw, err := unifdist.BuildAsymmetric(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r := unifdist.NewRNG(3)
	for _, d := range []unifdist.Distribution{
		unifdist.NewUniform(nBuckets),
		unifdist.NewTwoBump(nBuckets, eps, 5),
	} {
		accept, rejects := nw.Run(d, r)
		verdict := "normal"
		if !accept {
			verdict = "ANOMALY"
		}
		fmt.Printf("input %-26s → %-8s (%d devices alarmed, T=%d)\n",
			d.Name(), verdict, rejects, cfg.T)
	}
}
