// DDoS detection — the paper's motivating scenario (§1): a fleet of
// routers each samples source addresses from the traffic it forwards.
// Under normal load the (hashed) sources are uniform over n buckets; during
// a distributed denial-of-service attack the distribution skews toward the
// attacking subnets. No router talks to another: each applies the
// single-collision tester to its own few samples and raises an alarm with
// small probability — the AND decision rule (the network "rejects" iff some
// router alarms) aggregates the weak per-router signals.
package main

import (
	"fmt"
	"log"
	"strings"

	unifdist "github.com/unifdist/unifdist"
)

const (
	nBuckets = 1 << 16 // hashed source-address space
	kRouters = 20000
	eps      = 1.0
	pTarget  = 1.0 / 3
)

func main() {
	cfg, err := unifdist.SolveAND(nBuckets, kRouters, eps, pTarget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d routers, %d sampled packets each (m=%d repetitions, gap %.2f vs required %.2f, feasible=%v)\n\n",
		kRouters, cfg.SamplesPerNode, cfg.M, cfg.NodeGap, cfg.RequiredGap, cfg.Feasible)

	nw, err := unifdist.BuildAND(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r := unifdist.NewRNG(2024)

	// Timeline: normal traffic, then an attack concentrating 30% of the
	// traffic on a handful of target buckets, then a heavier attack.
	attack30 := unifdist.NewPointMassMixture(nBuckets, 12345, 0.3)
	attack60 := unifdist.NewPointMassMixture(nBuckets, 12345, 0.6)
	timeline := []struct {
		window  string
		traffic unifdist.Distribution
	}{
		{window: "00:00-00:05 normal", traffic: unifdist.NewUniform(nBuckets)},
		{window: "00:05-00:10 normal", traffic: unifdist.NewUniform(nBuckets)},
		{window: "00:10-00:15 attack (30% skew)", traffic: attack30},
		{window: "00:15-00:20 attack (60% skew)", traffic: attack60},
		{window: "00:20-00:25 normal", traffic: unifdist.NewUniform(nBuckets)},
	}

	fmt.Println("window                          alarms  verdict")
	fmt.Println(strings.Repeat("-", 58))
	for _, slot := range timeline {
		accept, alarms := nw.Run(slot.traffic, r)
		verdict := "ok"
		if !accept {
			verdict = "DDOS ALERT"
		}
		fmt.Printf("%-30s  %6d  %s\n", slot.window, alarms, verdict)
	}
	fmt.Printf("\ndistances from uniform: 30%% attack → %.2f, 60%% attack → %.2f (ε=%.1f)\n",
		unifdist.L1FromUniform(attack30), unifdist.L1FromUniform(attack60), eps)
}
