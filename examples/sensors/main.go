// Sensor-network identity testing — the paper's second motivating scenario
// (§1): sensors at a manufacturing plant measure temperatures whose normal
// behaviour follows a known, non-uniform distribution η (a discretized
// bell curve around the setpoint). Each sensor independently applies the
// identity→uniformity filter to its readings using its private randomness
// — exactly the per-node reduction the paper's introduction describes —
// and the fleet then runs the threshold-rule 0-round uniformity tester on
// the filtered samples.
package main

import (
	"fmt"
	"log"
	"math"

	unifdist "github.com/unifdist/unifdist"
)

const (
	tempBins = 200 // discretized temperature range
	kSensors = 8000
	eps      = 0.8
)

func main() {
	// Normal operating distribution: a discretized Gaussian around bin 100.
	eta := make([]float64, tempBins)
	for i := range eta {
		d := float64(i-100) / 18
		eta[i] = math.Exp(-d * d / 2)
	}
	target, err := unifdist.NewHistogram(eta, "calibrated-profile")
	if err != nil {
		log.Fatal(err)
	}

	// The filter maps the calibrated profile to (nearly) uniform on M
	// buckets. The bell curve's near-zero tail bins each still need one
	// bucket, so we use a grain 8× finer than the ε/4 minimum to keep the
	// filtered healthy profile well inside the tester's acceptance region.
	m := 8 * unifdist.GrainForEpsilon(tempBins, eps)
	filter, err := unifdist.NewFilter(eta, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter: %d temperature bins → %d uniform buckets (rounding error %.4f ≤ ε/4 = %.2f)\n",
		tempBins, m, filter.RoundingError(), eps/4)

	// A threshold-rule uniformity tester on the filtered domain.
	cfg, err := unifdist.SolveThreshold(m, kSensors, eps/2)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := unifdist.BuildThreshold(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d sensors, %d filtered readings each, alarm threshold T=%d\n\n",
		kSensors, cfg.SamplesPerNode, cfg.T)

	// Scenarios: healthy plant (µ = η); drifted setpoint (bell moved);
	// stuck sensors (readings pile up at one bin).
	drifted := make([]float64, tempBins)
	for i := range drifted {
		d := float64(i-135) / 18
		drifted[i] = math.Exp(-d * d / 2)
	}
	driftDist, err := unifdist.NewHistogram(drifted, "drifted-setpoint")
	if err != nil {
		log.Fatal(err)
	}
	stuck := unifdist.NewPointMassMixture(tempBins, 100, 0.5)

	r := unifdist.NewRNG(7)
	for _, scenario := range []struct {
		name string
		mu   unifdist.Distribution
	}{
		{name: "healthy (µ = η)", mu: target},
		{name: "drifted setpoint", mu: driftDist},
		{name: "stuck sensors", mu: stuck},
	} {
		filtered, err := unifdist.NewFiltered(scenario.mu, filter)
		if err != nil {
			log.Fatal(err)
		}
		accept, alarms := nw.Run(filtered, r)
		verdict := "matches calibration"
		if !accept {
			verdict = "ANOMALY: distribution shifted"
		}
		fmt.Printf("%-20s L1(µ,η)≈%.2f  alarms=%4d  → %s\n",
			scenario.name, unifdist.L1(scenario.mu, target), alarms, verdict)
	}
}
