// Quickstart: distinguish the uniform distribution from an ε-far one with
// a 0-round network of k nodes, each drawing only Θ(√(n/k)/ε²) samples —
// far fewer than the Θ(√n/ε²) a single tester would need.
package main

import (
	"fmt"
	"log"

	unifdist "github.com/unifdist/unifdist"
)

func main() {
	const (
		n   = 1 << 16 // domain size
		k   = 8000    // network size
		eps = 1.0     // L1 distance parameter
	)

	// Resolve Theorem 1.2's parameters: per-node sample count and the
	// rejection threshold T.
	cfg, err := unifdist.SolveThreshold(n, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: k=%d nodes, %d samples each (solo tester would need ~%d)\n",
		k, cfg.SamplesPerNode, unifdist.BaselineSampleSize(n, eps))
	fmt.Printf("decision rule: reject iff ≥ %d nodes see a collision (feasible=%v)\n\n",
		cfg.T, cfg.Feasible)

	nw, err := unifdist.BuildThreshold(cfg)
	if err != nil {
		log.Fatal(err)
	}

	r := unifdist.NewRNG(42)
	for _, d := range []unifdist.Distribution{
		unifdist.NewUniform(n),
		unifdist.NewTwoBump(n, eps, 7), // L1 distance exactly ε from uniform
	} {
		accept, rejects := nw.Run(d, r)
		verdict := "UNIFORM"
		if !accept {
			verdict = "FAR FROM UNIFORM"
		}
		fmt.Printf("input %-28s → %-18s (%d/%d nodes rejected, T=%d)\n",
			d.Name(), verdict, rejects, k, cfg.T)
	}
}
