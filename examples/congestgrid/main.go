// CONGEST on a grid — Theorem 1.4 end to end: every node of a 80×100 grid
// holds a single sample; the network elects a leader, builds a BFS tree,
// packages the samples into groups of τ (Theorem 5.1's token packaging),
// tests each package for a collision, and aggregates the verdict — all
// with 16-byte messages and O(D + n/(kε⁴)) rounds.
package main

import (
	"fmt"
	"log"

	unifdist "github.com/unifdist/unifdist"
)

func main() {
	const (
		rows, cols = 80, 100
		k          = rows * cols
		n          = 1 << 12
		eps        = 1.0
	)
	g := unifdist.NewGrid(rows, cols)
	p, err := unifdist.SolveCongestCalibrated(n, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%d (D=%d), domain n=%d\n", rows, cols, rows+cols-2, n)
	fmt.Printf("protocol: τ=%d (asymptotic n/(kε⁴) = %.1f), threshold T=%d, ~%d virtual nodes\n\n",
		p.Tau, unifdist.PredictedTau(n, k, eps), p.T, p.VirtualNodes)

	r := unifdist.NewRNG(11)
	for _, d := range []unifdist.Distribution{
		unifdist.NewUniform(n),
		unifdist.NewTwoBump(n, eps, 3),
	} {
		res, err := unifdist.RunCongestOnDistribution(g, d, p, r)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "UNIFORM"
		if !res.Accept {
			verdict = "FAR FROM UNIFORM"
		}
		fmt.Printf("input %-26s → %-17s\n", d.Name(), verdict)
		fmt.Printf("  leader: node %d; %d packages, %d rejecting (T=%d), %d tokens discarded\n",
			res.Root, res.Virtuals, res.Rejects, p.T, res.Discarded)
		fmt.Printf("  rounds: %d (D+τ = %d), messages: %d, max message: %d bytes\n\n",
			res.Stats.Rounds, rows+cols-2+p.Tau, res.Stats.Messages, res.Stats.MaxMessageBytes)
	}
}
