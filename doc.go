// Package unifdist is a library for distributed uniformity testing,
// reproducing "Distributed Uniformity Testing" (Fischer, Meir, Oshman;
// PODC 2018).
//
// # Problem
//
// A network of k nodes each holds s i.i.d. samples from an unknown
// distribution µ on {0, …, n−1}. The nodes must jointly decide whether
// µ is the uniform distribution or ε-far from it in L1 distance, while
// minimizing the number of samples per node and the communication cost.
//
// # What the library provides
//
//   - Centralized testers: the single-collision (δ, 1+γε²)-gap tester A_δ
//     (Theorem 3.1), its m-repetition amplification, and the classical
//     Θ(√n/ε²) collision-counting baseline.
//   - 0-round distributed testers: the AND-rule network of Theorem 1.1, the
//     threshold network of Theorem 1.2, and the asymmetric-cost variants of
//     Section 4, each with a parameter solver that resolves the paper's
//     displayed inequalities into concrete sample counts.
//   - CONGEST protocols (Theorem 1.4): leader election, BFS trees, τ-token
//     packaging (Theorem 5.1) and the full uniformity protocol, running on
//     a synchronous message-passing simulator with per-edge bandwidth
//     accounting.
//   - LOCAL protocols (Section 6): Luby MIS on the power graph G^r, beacon
//     routing of samples to MIS nodes, and the AND-rule decision.
//   - The SMP Equality protocol with asymmetric error (Lemma 7.3), built on
//     a concatenated Reed–Solomon ∘ Golay code with relative distance 1/6.
//   - The identity→uniformity filter reduction (per-node, private coins).
//   - Synthetic distributions (uniform, two-bump/Paninski, Zipf, mixtures)
//     and a deterministic splittable RNG for reproducible experiments.
//
// # Quick start
//
//	cfg, err := unifdist.SolveThreshold(1<<16, 8000, 1.0)
//	if err != nil { ... }
//	nw, err := unifdist.BuildThreshold(cfg)
//	if err != nil { ... }
//	r := unifdist.NewRNG(42)
//	accept, rejects := nw.Run(unifdist.NewUniform(1<<16), r)
//
// See the examples directory for runnable scenarios and DESIGN.md /
// EXPERIMENTS.md for the experiment index reproducing every theorem.
package unifdist
