package graph

import (
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, "t")
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("reversed duplicate edge accepted")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestClosedFormDiameters(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "line(10)", g: NewLine(10), want: 9},
		{name: "ring(10)", g: NewRing(10), want: 5},
		{name: "ring(11)", g: NewRing(11), want: 5},
		{name: "star(10)", g: NewStar(10), want: 2},
		{name: "complete(6)", g: NewComplete(6), want: 1},
		{name: "grid(4x7)", g: NewGrid(4, 7), want: 9},
		{name: "single", g: New(1, "single"), want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.want {
				t.Fatalf("diameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEdgeCounts(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "line(10)", g: NewLine(10), want: 9},
		{name: "ring(10)", g: NewRing(10), want: 10},
		{name: "star(10)", g: NewStar(10), want: 9},
		{name: "complete(6)", g: NewComplete(6), want: 15},
		{name: "grid(3x3)", g: NewGrid(3, 3), want: 12},
		{name: "tree(7,2)", g: NewBalancedTree(7, 2), want: 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.NumEdges(); got != tt.want {
				t.Fatalf("edges = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestBFSTreeValidity(t *testing.T) {
	g := NewGrid(5, 8)
	distance, parent := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if v == 0 {
			if distance[v] != 0 || parent[v] != -1 {
				t.Fatalf("root: dist=%d parent=%d", distance[v], parent[v])
			}
			continue
		}
		p := parent[v]
		if p < 0 {
			t.Fatalf("vertex %d unreachable in connected graph", v)
		}
		if !g.HasEdge(v, p) {
			t.Fatalf("parent edge {%d,%d} missing", v, p)
		}
		if distance[v] != distance[p]+1 {
			t.Fatalf("distance[%d]=%d but parent has %d", v, distance[v], distance[p])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4, "disc")
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	distance, parent := g.BFS(0)
	if distance[2] != -1 || parent[2] != -1 {
		t.Fatalf("unreachable vertex: dist=%d parent=%d", distance[2], parent[2])
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestBalancedTreeStructure(t *testing.T) {
	g := NewBalancedTree(15, 2)
	if !g.IsConnected() {
		t.Fatal("tree disconnected")
	}
	if g.NumEdges() != 14 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Vertex i's parent is (i−1)/2.
	for i := 1; i < 15; i++ {
		if !g.HasEdge(i, (i-1)/2) {
			t.Fatalf("missing parent edge for %d", i)
		}
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	f := func(seed uint64, kRaw, pRaw uint8) bool {
		k := int(kRaw%60) + 1
		p := float64(pRaw) / 255 * 0.2
		g := NewRandomConnected(k, p, seed)
		return g.IsConnected() && g.N() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := NewRandomConnected(40, 0.1, 7)
	b := NewRandomConnected(40, 0.1, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d neighbors differ", v)
			}
		}
	}
}

func TestPowerGraphDefinition(t *testing.T) {
	// In G^r, {u,v} is an edge iff 1 ≤ dist_G(u,v) ≤ r.
	g := NewRandomConnected(25, 0.05, 3)
	for _, r := range []int{1, 2, 3} {
		p := g.Power(r)
		for u := 0; u < g.N(); u++ {
			distance, _ := g.BFS(u)
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				want := distance[v] >= 1 && distance[v] <= r
				if got := p.HasEdge(u, v); got != want {
					t.Fatalf("r=%d: edge {%d,%d}=%v, distance=%d", r, u, v, got, distance[v])
				}
			}
		}
	}
}

func TestPowerOfLine(t *testing.T) {
	g := NewLine(10)
	p := g.Power(3)
	if got, want := p.Degree(0), 3; got != want {
		t.Errorf("degree of endpoint in line^3 = %d, want %d", got, want)
	}
	if got, want := p.Degree(5), 6; got != want {
		t.Errorf("degree of middle vertex in line^3 = %d, want %d", got, want)
	}
}

func TestPowerIdentity(t *testing.T) {
	// G^1 has exactly G's edges.
	g := NewGrid(3, 4)
	p := g.Power(1)
	if p.NumEdges() != g.NumEdges() {
		t.Fatalf("G^1 edges %d != G edges %d", p.NumEdges(), g.NumEdges())
	}
}

func TestEccentricityVsDiameter(t *testing.T) {
	g := NewLine(20)
	// Middle vertex has minimal eccentricity; endpoints maximal.
	if got := g.Eccentricity(0); got != 19 {
		t.Errorf("endpoint eccentricity %d, want 19", got)
	}
	if got := g.Eccentricity(10); got != 10 {
		t.Errorf("middle eccentricity %d, want 10", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{name: "New(0)", f: func() { New(0, "") }},
		{name: "NewRing(2)", f: func() { NewRing(2) }},
		{name: "NewGrid(0,5)", f: func() { NewGrid(0, 5) }},
		{name: "NewBalancedTree arity 0", f: func() { NewBalancedTree(5, 0) }},
		{name: "NewRandomConnected(0)", f: func() { NewRandomConnected(0, 0.5, 1) }},
		{name: "NewRandomConnected p>1", f: func() { NewRandomConnected(5, 1.5, 1) }},
		{name: "Power(0)", f: func() { NewLine(5).Power(0) }},
		{name: "BFS out of range", f: func() { NewLine(5).BFS(5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestDegreeSumEqualsTwiceEdges(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%40) + 2
		g := NewRandomConnected(k, 0.1, seed)
		sum := 0
		for v := 0; v < k; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiameterGrid(b *testing.B) {
	g := NewGrid(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Diameter()
	}
}

func BenchmarkPowerGraph(b *testing.B) {
	g := NewRandomConnected(200, 0.02, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Power(3)
	}
}
