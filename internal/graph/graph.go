// Package graph provides the network topologies the CONGEST and LOCAL
// simulations run on: lines, rings, stars, grids, complete graphs, balanced
// trees and random connected graphs, together with BFS, diameter and the
// power graph G^r needed by the LOCAL tester's MIS construction.
//
// Graphs are simple (no self-loops or parallel edges) and undirected.
// Vertices are 0-indexed.
package graph

import (
	"fmt"
	"sort"

	"github.com/unifdist/unifdist/internal/rng"
)

// Graph is a simple undirected graph.
type Graph struct {
	name string
	adj  [][]int
}

// New returns an empty graph with n vertices and no edges.
func New(n int, name string) *Graph {
	if n <= 0 {
		panic("graph: New requires n > 0")
	}
	return &Graph{name: name, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// Name returns the topology's label.
func (g *Graph) Name() string { return g.name }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with an error.
func (g *Graph) AddEdge(u, v int) error {
	n := len(g.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns v's neighbor list. The returned slice must not be
// modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// sortAdj normalizes neighbor lists to sorted order (deterministic
// iteration for reproducible simulations).
func (g *Graph) sortAdj() {
	for _, nb := range g.adj {
		sort.Ints(nb)
	}
}

// BFS runs breadth-first search from root and returns per-vertex distance
// and parent arrays. Unreachable vertices have distance −1 and parent −1;
// the root's parent is −1.
func (g *Graph) BFS(root int) (distance, parent []int) {
	n := len(g.adj)
	if root < 0 || root >= n {
		panic(fmt.Sprintf("graph: BFS root %d out of range", root))
	}
	distance = make([]int, n)
	parent = make([]int, n)
	for i := range distance {
		distance[i] = -1
		parent[i] = -1
	}
	distance[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if distance[w] == -1 {
				distance[w] = distance[v] + 1
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return distance, parent
}

// IsConnected reports whether the graph is connected.
func (g *Graph) IsConnected() bool {
	distance, _ := g.BFS(0)
	for _, d := range distance {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum BFS distance from v. It panics if the
// graph is disconnected.
func (g *Graph) Eccentricity(v int) int {
	distance, _ := g.BFS(v)
	max := 0
	for _, d := range distance {
		if d == -1 {
			panic("graph: eccentricity of a disconnected graph")
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the exact diameter via all-pairs BFS. It panics if the
// graph is disconnected.
func (g *Graph) Diameter() int {
	max := 0
	for v := range g.adj {
		if e := g.Eccentricity(v); e > max {
			max = e
		}
	}
	return max
}

// Power returns G^r: vertices are the same and {u, v} is an edge iff their
// distance in g is between 1 and r. It panics if r < 1.
func (g *Graph) Power(r int) *Graph {
	if r < 1 {
		panic("graph: Power requires r >= 1")
	}
	n := len(g.adj)
	p := New(n, fmt.Sprintf("%s^%d", g.name, r))
	for v := 0; v < n; v++ {
		// Bounded BFS to depth r.
		distance := make([]int, n)
		for i := range distance {
			distance[i] = -1
		}
		distance[v] = 0
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if distance[x] == r {
				continue
			}
			for _, w := range g.adj[x] {
				if distance[w] == -1 {
					distance[w] = distance[x] + 1
					queue = append(queue, w)
				}
			}
		}
		for w := v + 1; w < n; w++ {
			if distance[w] >= 1 && distance[w] <= r {
				p.adj[v] = append(p.adj[v], w)
				p.adj[w] = append(p.adj[w], v)
			}
		}
	}
	p.sortAdj()
	return p
}

// NewLine returns the path graph on k vertices (diameter k−1).
func NewLine(k int) *Graph {
	g := New(k, fmt.Sprintf("line(%d)", k))
	for i := 0; i+1 < k; i++ {
		mustEdge(g, i, i+1)
	}
	return g
}

// NewRing returns the cycle on k vertices (diameter ⌊k/2⌋). It panics for
// k < 3.
func NewRing(k int) *Graph {
	if k < 3 {
		panic("graph: NewRing requires k >= 3")
	}
	g := New(k, fmt.Sprintf("ring(%d)", k))
	for i := 0; i < k; i++ {
		mustEdge(g, i, (i+1)%k)
	}
	return g
}

// NewStar returns the star with center 0 and k−1 leaves (diameter 2 for
// k ≥ 3).
func NewStar(k int) *Graph {
	g := New(k, fmt.Sprintf("star(%d)", k))
	for i := 1; i < k; i++ {
		mustEdge(g, 0, i)
	}
	return g
}

// NewComplete returns K_k.
func NewComplete(k int) *Graph {
	g := New(k, fmt.Sprintf("complete(%d)", k))
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			mustEdge(g, i, j)
		}
	}
	return g
}

// NewGrid returns the rows×cols grid graph (diameter rows+cols−2).
func NewGrid(rows, cols int) *Graph {
	if rows <= 0 || cols <= 0 {
		panic("graph: NewGrid requires positive dimensions")
	}
	g := New(rows*cols, fmt.Sprintf("grid(%dx%d)", rows, cols))
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustEdge(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustEdge(g, id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// NewBalancedTree returns the complete arity-ary tree with k vertices,
// numbered in BFS order (vertex i's parent is (i−1)/arity).
func NewBalancedTree(k, arity int) *Graph {
	if arity < 1 {
		panic("graph: NewBalancedTree requires arity >= 1")
	}
	g := New(k, fmt.Sprintf("tree(%d,arity=%d)", k, arity))
	for i := 1; i < k; i++ {
		mustEdge(g, (i-1)/arity, i)
	}
	return g
}

// NewRandomConnected returns a connected random graph: a uniform random
// attachment tree (guaranteeing connectivity) plus each non-tree edge
// independently with probability p. Deterministic in seed.
func NewRandomConnected(k int, p float64, seed uint64) *Graph {
	if k <= 0 {
		panic("graph: NewRandomConnected requires k > 0")
	}
	if p < 0 || p > 1 {
		panic("graph: edge probability outside [0, 1]")
	}
	r := rng.New(seed)
	g := New(k, fmt.Sprintf("random(%d,p=%.3g)", k, p))
	for i := 1; i < k; i++ {
		mustEdge(g, r.Intn(i), i)
	}
	if p > 0 {
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				if !g.HasEdge(u, v) && r.Float64() < p {
					mustEdge(g, u, v)
				}
			}
		}
	}
	g.sortAdj()
	return g
}

func mustEdge(g *Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}
