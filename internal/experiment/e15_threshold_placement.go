package experiment

import (
	"math"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func init() {
	register(Experiment{
		ID:          "E15",
		Description: "ablation: placing T at the lower edge / midpoint / upper edge of the eq. (5) window",
		Run:         runE15,
	})
}

// runE15 ablates the threshold placement inside the eq. (5) window
// (DESIGN.md §3.1 calls out the midpoint choice): the lower edge trades
// uniform-side error for far-side error, the upper edge the reverse; the
// midpoint balances them. All three must stay within the 1/3 bound in the
// feasible regime.
func runE15(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 120
	if mode == Full {
		trials = 600
	}
	const (
		n   = 1 << 16
		k   = 8000
		eps = 1.0
	)
	base, err := zeroround.SolveThreshold(n, k, eps)
	if err != nil {
		return nil, err
	}
	node, err := tester.NewSingleCollision(n, base.Delta, eps)
	if err != nil {
		return nil, err
	}
	// Recompute the window edges from the tight per-node probabilities.
	ln3 := math.Log(3)
	pU := 1 - tester.UniformNoCollisionProb(n, node.SampleSize())
	pF := tester.FarRejectLowerBound(n, node.SampleSize(), eps)
	etaU, etaF := float64(k)*pU, float64(k)*pF
	lower := etaU + math.Sqrt(3*ln3*etaU)
	upper := etaF - math.Sqrt(2*ln3*etaF)

	t := &Table{
		ID:    "E15",
		Title: "threshold placement within the eq. (5) window (n=2^16, k=8000, ε=1)",
		Columns: []string{
			"placement", "T", "err|U", "err|far",
		},
	}
	nodes := make([]tester.Tester, k)
	for i := range nodes {
		nodes[i] = node
	}
	placements := []struct {
		name string
		t    int
	}{
		{name: "lower edge", t: int(math.Ceil(lower))},
		{name: "midpoint", t: int(math.Ceil((lower + upper) / 2))},
		{name: "upper edge", t: int(math.Floor(upper))},
		{name: "below window (T=ηU)", t: int(etaU)},
		{name: "above window (T=ηFar)", t: int(etaF) + 1},
	}
	rows, err := ctx.RunRows(rng.New(seed), len(placements), func(row int, r *rng.RNG) ([]string, error) {
		pl := placements[row]
		if pl.t < 1 {
			pl.t = 1
		}
		nw, err := zeroround.NewNetwork(nodes, zeroround.ThresholdRule{T: pl.t})
		if err != nil {
			return nil, err
		}
		nw.Workers = ctx.Workers
		errU := nw.EstimateErrorParallel(dist.NewUniform(n), true, trials, r)
		errF := nw.EstimateErrorParallel(dist.NewTwoBump(n, eps, r.Uint64()), false, trials, r)
		return []string{pl.name, fmtFloat(float64(pl.t)), fmtProb(errU), fmtProb(errF)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRows(rows)
	t.AddNote("window: [%s, %s] from ηU=%s, ηFar=%s", fmtFloat(lower), fmtFloat(upper), fmtFloat(etaU), fmtFloat(etaF))
	t.AddNote("inside the window all placements meet the 1/3 bound; outside it one side collapses")
	t.AddNote("%d trials per cell", trials)
	return t, nil
}
