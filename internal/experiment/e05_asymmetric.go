package experiment

import (
	"math"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/stats"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func init() {
	register(Experiment{
		ID:          "E5",
		Description: "Section 4: asymmetric per-sample costs — C ∝ (√n/ε²)/‖T‖₂ (threshold) and ‖T‖₂ₘ (AND)",
		Run:         runE5,
	})
}

// runE5 builds asymmetric threshold testers for several cost vectors and
// verifies that the maximum individual cost tracks (√n/ε²)/‖T‖₂ while the
// error stays bounded; the AND variant's cost column uses ‖T‖₂ₘ.
func runE5(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 30
	if mode == Full {
		trials = 150
	}
	const (
		n   = 1 << 16
		k   = 8000
		eps = 1.0
		p   = 1.0 / 3
	)
	t := &Table{
		ID:    "E5",
		Title: "asymmetric-cost 0-round testers (n=2^16, k=8000, ε=1)",
		Columns: []string{
			"costs", "‖T‖₂", "C thr", "C·‖T‖₂/√n", "max sᵢ", "min sᵢ",
			"err|U", "err|far", "‖T‖₂ₘ", "C AND",
		},
	}
	vectors := []struct {
		name string
		gen  func(i int) float64
	}{
		{name: "unit", gen: func(int) float64 { return 1 }},
		{name: "two-class 1/4", gen: func(i int) float64 { return 1 + 3*float64(i%2) }},
		{name: "ramp 1..8", gen: func(i int) float64 { return 1 + 7*float64(i%k)/float64(k-1) }},
		{name: "power-law", gen: func(i int) float64 { return math.Pow(float64(i%k+1), 0.3) }},
	}
	rows, err := ctx.RunRows(rng.New(seed), len(vectors), func(row int, r *rng.RNG) ([]string, error) {
		vec := vectors[row]
		costs := make([]float64, k)
		inv := make([]float64, k)
		for i := range costs {
			costs[i] = vec.gen(i)
			inv[i] = 1 / costs[i]
		}
		cfg, err := zeroround.SolveAsymmetricThreshold(n, eps, costs)
		if err != nil {
			return nil, err
		}
		nw, err := zeroround.BuildAsymmetric(cfg)
		if err != nil {
			return nil, err
		}
		nw.Workers = ctx.Workers
		errU := nw.EstimateErrorParallel(dist.NewUniform(n), true, trials, r)
		errFar := nw.EstimateErrorParallel(dist.NewTwoBump(n, eps, r.Uint64()), false, trials, r)
		maxS, minS := 0, math.MaxInt
		for _, s := range cfg.Samples {
			if s > maxS {
				maxS = s
			}
			if s < minS {
				minS = s
			}
		}
		andCfg, err := zeroround.SolveAsymmetricAND(n, eps, p, costs)
		if err != nil {
			return nil, err
		}
		norm2 := stats.LpNorm(inv, 2)
		return []string{
			vec.name, fmtFloat(norm2), fmtFloat(cfg.Cost),
			fmtFloat(cfg.Cost * norm2 / math.Sqrt(float64(n))),
			fmtFloat(float64(maxS)), fmtFloat(float64(minS)),
			fmtProb(errU), fmtProb(errFar),
			fmtFloat(andCfg.Norm), fmtFloat(andCfg.Cost),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRows(rows)
	t.AddNote("paper (threshold): C = Θ(√n/ε²)/‖T‖₂ — the C·‖T‖₂/√n column must be ~constant across cost vectors")
	t.AddNote("paper (AND): C = (ln 1/(1−p))^{1/2m}·m·√(2n)/‖T‖₂ₘ; unit costs give ‖T‖₂ = √k, recovering Theorem 1.2")
	t.AddNote("%d trials per error cell", trials)
	return t, nil
}
