package experiment

import (
	"math"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/stats"
	"github.com/unifdist/unifdist/internal/tester"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func init() {
	register(Experiment{
		ID:          "E4",
		Description: "Theorems 1.3/7.2: behavior below the Ω(√(n/k)) sample lower bound",
		Run:         runE4,
	})
}

// runE4 starves the threshold tester of samples: starting from a feasible
// configuration, the per-node sample count is scaled down and the error is
// measured. A simulation cannot prove a lower bound, but the trade-off the
// bound predicts — error climbing toward 1/2 as s drops below √(n/k) —
// must be visible. The note verifies Lemma 2.1's KL inequality on a grid.
func runE4(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 80
	if mode == Full {
		trials = 400
	}
	const (
		n   = 1 << 16
		k   = 8000
		eps = 1.0
	)
	base, err := zeroround.SolveThreshold(n, k, eps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E4",
		Title: "sample starvation of the threshold tester (n=2^16, k=8000, ε=1)",
		Columns: []string{
			"s/node", "s/√(n/k)", "T", "err|U", "err|far", "total err",
		},
	}
	ref := math.Sqrt(float64(n) / float64(k))
	fracs := []float64{1, 0.5, 0.35, 0.25, 0.15}
	rows, err := ctx.RunRows(rng.New(seed), len(fracs), func(row int, r *rng.RNG) ([]string, error) {
		s := int(math.Round(float64(base.SamplesPerNode) * fracs[row]))
		if s < 2 {
			s = 2
		}
		// Rebuild a threshold network with the starved sample count: δ and
		// the decision threshold are re-derived for the smaller s, keeping
		// the decision rule as favorable as possible (midpoint threshold).
		delta := float64(s) * float64(s-1) / (2 * float64(n))
		node, err := tester.NewSingleCollision(n, delta, eps)
		if err != nil {
			return nil, err
		}
		pU := 1 - tester.UniformNoCollisionProb(n, node.SampleSize())
		pF := tester.FarRejectPoisson(n, node.SampleSize(), eps)
		thr := int(math.Ceil(float64(k) * (pU + pF) / 2))
		if thr < 1 {
			thr = 1
		}
		nodes := make([]tester.Tester, k)
		for i := range nodes {
			nodes[i] = node
		}
		nw, err := zeroround.NewNetwork(nodes, zeroround.ThresholdRule{T: thr})
		if err != nil {
			return nil, err
		}
		nw.Workers = ctx.Workers
		errU := nw.EstimateErrorParallel(dist.NewUniform(n), true, trials, r)
		errFar := nw.EstimateErrorParallel(dist.NewTwoBump(n, eps, r.Uint64()), false, trials, r)
		return []string{
			fmtFloat(float64(node.SampleSize())),
			fmtFloat(float64(node.SampleSize())/ref),
			fmtFloat(float64(thr)),
			fmtProb(errU), fmtProb(errFar), fmtProb((errU+errFar)/2),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRows(rows)
	t.AddNote("paper lower bound: any anonymous 0-round tester needs Ω(√(n/k)/log n) samples per node")
	t.AddNote("√(n/k) = %s for this regime; error should degrade toward 1/2 as s drops below it", fmtFloat(ref))
	// Lemma 2.1 numeric verification.
	violations := 0
	checks := 0
	for _, delta := range []float64{1e-4, 1e-3, 0.01, 0.1, 0.24} {
		for _, tau := range []float64{1.01, 1.5, 2, 3} {
			if tau >= 1/delta {
				continue
			}
			checks++
			kl, err := stats.KLBernoulli(1-delta, 1-tau*delta)
			if err != nil {
				return nil, err
			}
			if kl < stats.KLGapLowerBound(delta, tau)-1e-12 {
				violations++
			}
		}
	}
	t.AddNote("Lemma 2.1 KL inequality: %d/%d grid points satisfied", checks-violations, checks)
	t.AddNote("%d trials per error cell", trials)
	return t, nil
}
