package experiment

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
)

// renderAt runs one experiment at the given GOMAXPROCS and returns the
// rendered text table. Workers is left at 0 so both the row pool and the
// trial engine size themselves from GOMAXPROCS — the dimension the
// determinism guarantee must be independent of.
func renderAt(t *testing.T, id string, procs int) string {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("%s missing", id)
	}
	tbl, err := e.Run(NewRunContext(Quick, 7))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	return buf.String()
}

// TestTablesDeterministicAcrossGOMAXPROCS checks the parallel-engine
// contract end to end: the same seed must produce byte-identical E2, E3 and
// E9 tables at GOMAXPROCS 1, 2, and 8. The concurrent sweep rows (RunRows),
// the chunked parallel trial engines (EstimateErrorParallel and the SMP
// estimators) and the flat simulator pool all reshape their schedules
// across these settings; per-index seeding keeps the output fixed.
func TestTablesDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"E2", "E3", "E9"} {
		want := renderAt(t, id, 1)
		for _, procs := range []int{2, 8} {
			if got := renderAt(t, id, procs); got != want {
				t.Errorf("%s table differs at GOMAXPROCS=%d:\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=%d ---\n%s",
					id, procs, want, procs, got)
			}
		}
	}
}

// TestE7DeterministicAcrossGOMAXPROCS is the same pin for the CONGEST
// experiment, whose quick render simulates ~16000 nodes for hundreds of
// rounds per trial: the flat simulator pool, the parallel trial estimator
// and the sweep rows must all collapse to the same bytes. It runs in its
// own test because the renders cost tens of seconds — skipped under the
// race detector, where three renders would dominate the package's budget.
func TestE7DeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("E7 renders are too slow under the race detector")
	}
	want := renderAt(t, "E7", 1)
	for _, procs := range []int{2, 8} {
		if got := renderAt(t, "E7", procs); got != want {
			t.Errorf("E7 table differs at GOMAXPROCS=%d:\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=%d ---\n%s",
				procs, want, procs, got)
		}
	}
}

// TestRunRowsOrderAndSeeding checks RunRows' core promises directly: rows
// come back in index order and row i sees the i-th sequential split of the
// caller's generator regardless of worker count.
func TestRunRowsOrderAndSeeding(t *testing.T) {
	const count = 9
	build := func(workers int) [][]string {
		ctx := &RunContext{Mode: Quick, Seed: 1, Workers: workers}
		rows, err := ctx.RunRows(rng.New(42), count, func(row int, rr *rng.RNG) ([]string, error) {
			return []string{fmt.Sprintf("%d:%d", row, rr.Uint64())}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	want := build(1)
	for i, row := range want {
		if wantPrefix := fmt.Sprintf("%d:", i); len(row) != 1 || row[0][:len(wantPrefix)] != wantPrefix {
			t.Fatalf("row %d out of order: %v", i, row)
		}
	}
	for _, workers := range []int{2, 3, 8, 100} {
		got := build(workers)
		for i := range want {
			if got[i][0] != want[i][0] {
				t.Errorf("workers=%d row %d = %q, want %q", workers, i, got[i][0], want[i][0])
			}
		}
	}
}

// TestRunRowsFirstErrorByIndexWins checks that when several rows fail, the
// reported error is the lowest-index one — independent of which goroutine
// finished first.
func TestRunRowsFirstErrorByIndexWins(t *testing.T) {
	ctx := &RunContext{Mode: Quick, Seed: 1, Workers: 4}
	errRow := func(i int) error { return fmt.Errorf("row %d failed", i) }
	_, err := ctx.RunRows(rng.New(1), 8, func(row int, rr *rng.RNG) ([]string, error) {
		if row >= 3 {
			return nil, errRow(row)
		}
		return []string{"ok"}, nil
	})
	if err == nil || err.Error() != errRow(3).Error() {
		t.Errorf("err = %v, want %v", err, errRow(3))
	}
	if _, err := ctx.RunRows(rng.New(1), 4, func(int, *rng.RNG) ([]string, error) {
		return []string{"ok"}, nil
	}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}
