package experiment

import (
	"math"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func init() {
	register(Experiment{
		ID:          "E1",
		Description: "Theorem 3.1 / Lemma 3.4: the single-collision (δ, 1+γε²)-gap tester",
		Run:         runE1,
	})
}

// runE1 sweeps (n, δ) at ε = 1 and measures the tester's completeness and
// soundness against the paper's guarantees: Pr[reject | uniform] ≤ δ and
// Pr[reject | ε-far] ≥ (1+γε²)δ.
func runE1(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 8000
	if mode == Full {
		trials = 200000
	}
	const eps = 1.0
	t := &Table{
		ID:    "E1",
		Title: "single-collision gap tester: measured vs guaranteed rejection probabilities (ε=1)",
		Columns: []string{
			"n", "δ(realized)", "s", "rej|U (meas)", "δ bound ok",
			"rej|far (meas)", "(1+γε²)δ (guar)", "gap meas", "gap guar", "rigorous",
		},
	}
	r := rng.New(seed)
	cases := []struct {
		n     int
		delta float64
	}{
		{n: 1 << 14, delta: 0.05},
		{n: 1 << 16, delta: 0.05},
		{n: 1 << 16, delta: 0.01},
		{n: 1 << 18, delta: 0.01},
		{n: 1 << 20, delta: 0.002},
	}
	for _, c := range cases {
		sc, err := tester.NewSingleCollision(c.n, c.delta, eps)
		if err != nil {
			return nil, err
		}
		p := sc.Params()
		far := dist.NewTwoBump(c.n, eps, r.Uint64())
		rejU := tester.EstimateRejectProb(sc, dist.NewUniform(c.n), trials, r)
		rejFar := tester.EstimateRejectProb(sc, far, trials, r)
		guar := p.Alpha * p.Delta
		measGap := 0.0
		if rejU > 0 {
			measGap = rejFar / rejU
		}
		// Allow 4σ of binomial noise above the Markov bound δ.
		slack := 4 * math.Sqrt(p.Delta/float64(trials))
		t.AddRow(
			fmtFloat(float64(c.n)), fmtFloat(p.Delta), fmtFloat(float64(p.S)),
			fmtProb(rejU), fmtBool(rejU <= p.Delta+slack),
			fmtProb(rejFar), fmtFloat(guar),
			fmtFloat(measGap), fmtFloat(p.Alpha), fmtBool(p.Rigorous),
		)
	}
	t.AddNote("paper: Pr[rej|U] ≤ δ (Markov is tight up to lower-order terms); Pr[rej|far] ≥ (1+γε²)δ")
	t.AddNote("%d trials per cell; far instance: two-bump with L1 distance exactly ε", trials)
	return t, nil
}
