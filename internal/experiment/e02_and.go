package experiment

import (
	"math"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func init() {
	register(Experiment{
		ID:          "E2",
		Description: "Theorem 1.1: 0-round AND-rule tester — per-node samples vs network size",
		Run:         runE2,
	})
}

// runE2 sweeps k at fixed (n, ε, p) and reports the solver's per-node
// sample count against a solo tester's, plus the measured network error on
// both sides.
func runE2(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 25
	ks := []int{1000, 4000, 10000, 40000}
	if mode == Full {
		trials = 120
		ks = []int{1000, 4000, 10000, 40000, 160000}
	}
	const (
		n   = 1 << 20
		eps = 1.0
		p   = 1.0 / 3
	)
	solo, err := tester.SolveGap(n, 0.5, eps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E2",
		Title: "AND-rule 0-round tester (n=2^20, ε=1, p=1/3)",
		Columns: []string{
			"k", "m", "s/node", "s solo", "saving", "node gap", "C_p", "feasible",
			"err|U", "err|far",
		},
	}
	rows, err := ctx.RunRows(rng.New(seed), len(ks), func(row int, r *rng.RNG) ([]string, error) {
		k := ks[row]
		cfg, err := zeroround.SolveAND(n, k, eps, p)
		if err != nil {
			return nil, err
		}
		nw, err := zeroround.BuildAND(cfg)
		if err != nil {
			return nil, err
		}
		nw.Obs = ctx.Registry()
		nw.Workers = ctx.Workers
		errU := nw.EstimateErrorParallel(dist.NewUniform(n), true, trials, r)
		errFar := nw.EstimateErrorParallel(dist.NewTwoBump(n, eps, r.Uint64()), false, trials, r)
		return []string{
			fmtFloat(float64(k)), fmtFloat(float64(cfg.M)),
			fmtFloat(float64(cfg.SamplesPerNode)), fmtFloat(float64(solo.S)),
			fmtFloat(float64(solo.S)/float64(cfg.SamplesPerNode)),
			fmtFloat(cfg.NodeGap), fmtFloat(cfg.RequiredGap), fmtBool(cfg.Feasible),
			fmtProb(errU), fmtProb(errFar),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRows(rows)
	t.AddNote("paper: s = Θ((C_p/ε²)·√(n/k^{Θ(ε²/C_p)})) per node; error ≤ p in the feasible regime")
	t.AddNote("the solver spends the full completeness budget, so err|U ≈ p = 1/3 by design (not a failure)")
	t.AddNote("s solo = Θ(√n/ε²) is one node testing alone; saving = solo/s per node")
	t.AddNote("predicted scaling at m=2: s ∝ k^{-1/4}: k×4 ⇒ s×%.2f", math.Pow(4, -0.25))
	t.AddNote("%d trials per error cell", trials)
	return t, nil
}
