package experiment

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/congest"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
)

func init() {
	register(Experiment{
		ID:          "E7",
		Description: "Theorem 1.4: CONGEST uniformity testing in O(D + n/(kε⁴)) rounds",
		Run:         runE7,
	})
}

// runE7 runs the full CONGEST protocol: error measurement on a random
// graph in the calibrated regime, plus round-complexity rows across
// topologies.
func runE7(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 8
	k := 8000
	if mode == Full {
		trials = 30
	}
	const (
		n   = 1 << 12
		eps = 1.0
	)
	p, err := congest.SolveParamsCalibrated(n, k, eps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("CONGEST uniformity (n=2^12, k=%d, ε=1, τ=%d, T=%d, calibrated=%v)", k, p.Tau, p.T, p.Calibrated),
		Columns: []string{
			"topology", "D", "rounds", "D+τ", "rounds/(D+τ)", "maxMsgB",
			"err|U", "err|far",
		},
	}
	r := rng.New(seed)
	// The deep grid costs ~D·k node-rounds per trial; the flat simulator
	// engine plus parallel trials keep it affordable in quick mode too.
	topologies := []*graph.Graph{
		graph.NewRandomConnected(k, 6.0/float64(k), seed),
		graph.NewGrid(k/100, 100),
	}
	for _, g := range topologies {
		d := g.Diameter()
		errU, err := congest.EstimateErrorParallel(g, dist.NewUniform(n), p, true, trials, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		errFar, err := congest.EstimateErrorParallel(g, dist.NewTwoBump(n, eps, r.Uint64()), p, false, trials, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		// One representative traced run per topology feeds the journal and
		// metrics; the error-estimation trials above run untraced to keep
		// journals bounded.
		res, err := congest.RunUniformityOnDistributionTraced(g, dist.NewUniform(n), p, r, ctx.SimTracer("E7", congest.Bandwidth()))
		if err != nil {
			return nil, err
		}
		t.AddRow(
			g.Name(), fmtFloat(float64(d)),
			fmtFloat(float64(res.Stats.Rounds)), fmtFloat(float64(d+p.Tau)),
			fmtFloat(float64(res.Stats.Rounds)/float64(d+p.Tau)),
			fmtFloat(float64(res.Stats.MaxMessageBytes)),
			fmtProb(errU), fmtProb(errFar),
		)
	}
	t.AddNote("paper: O(D + n/(kε⁴)) rounds; asymptotic τ = n/(kε⁴) = %s, solver chose τ=%d", fmtFloat(congest.PredictedTau(n, k, eps)), p.Tau)
	t.AddNote("calibrated parameter mode (two-bump Poisson far model); rigorous mode needs k ≳ 4·10⁴ — see DESIGN.md §3.1")
	t.AddNote("every message fits the 16-byte CONGEST budget; %d trials per error cell", trials)
	if mode == Full {
		// One rigorous-regime demonstration run.
		rig, err := congest.SolveParams(1<<12, 40000, eps)
		if err == nil && rig.Feasible {
			g := graph.NewRandomConnected(40000, 4.0/40000.0, seed^1)
			errU, errU2 := 0.0, 0.0
			eU, err := congest.EstimateErrorParallel(g, dist.NewUniform(1<<12), rig, true, 6, ctx.WorkerCount(), r)
			if err != nil {
				return nil, err
			}
			eF, err := congest.EstimateErrorParallel(g, dist.NewTwoBump(1<<12, eps, 3), rig, false, 6, ctx.WorkerCount(), r)
			if err != nil {
				return nil, err
			}
			errU, errU2 = eU, eF
			t.AddNote("rigorous regime (k=40000, τ=%d, T=%d): err|U=%s err|far=%s over 6 trials",
				rig.Tau, rig.T, fmtProb(errU), fmtProb(errU2))
		}
	}
	return t, nil
}
