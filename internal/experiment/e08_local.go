package experiment

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/local"
	"github.com/unifdist/unifdist/internal/rng"
)

func init() {
	register(Experiment{
		ID:          "E8",
		Description: "Section 6: LOCAL tester — MIS on G^r, gathering, per-MIS-node sample counts",
		Run:         runE8,
	})
}

// runE8 runs the LOCAL protocol across topologies and radii, reporting MIS
// sizes, per-virtual-node sample counts (≥ r/2 guaranteed), G-round costs,
// and verdicts on uniform vs near-point-mass inputs.
func runE8(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	k := 400
	reps := 3
	if mode == Full {
		k = 1500
		reps = 8
	}
	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("LOCAL tester mechanics (k=%d)", k),
		Columns: []string{
			"topology", "r", "MIS", "⌊2k/r⌋", "min samp", "r/2", "G-rounds",
			"acc|U big-n", "rej|point",
		},
	}
	r := rng.New(seed)
	cases := []struct {
		g      *graph.Graph
		radius int
	}{
		{g: graph.NewLine(k), radius: 8},
		{g: graph.NewGrid(k/20, 20), radius: 4},
		{g: graph.NewRandomConnected(k, 4.0/float64(k), seed), radius: 3},
		{g: graph.NewRing(k), radius: 6},
	}
	const bigN = 1 << 30
	for _, c := range cases {
		p := local.Params{N: bigN, K: c.g.N(), Eps: 1, P: 1.0 / 3, R: c.radius}
		p.AND.M = 1
		accU, rejPoint := 0, 0
		var lastRes local.Result
		for rep := 0; rep < reps; rep++ {
			res, err := local.RunUniformityOnDistribution(c.g, dist.NewUniform(bigN), p, r)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.g.Name(), err)
			}
			if res.Accept {
				accU++
			}
			lastRes = res
			pPoint := p
			pPoint.N = 1 << 10
			resP, err := local.RunUniformityOnDistribution(c.g, dist.NewPointMassMixture(1<<10, 0, 0.999), pPoint, r)
			if err != nil {
				return nil, err
			}
			if !resP.Accept {
				rejPoint++
			}
		}
		t.AddRow(
			c.g.Name(), fmtFloat(float64(c.radius)),
			fmtFloat(float64(lastRes.MISNodes)), fmtFloat(float64(2*c.g.N()/c.radius)),
			fmtFloat(float64(lastRes.MinSamples)), fmtFloat(float64(c.radius)/2),
			fmtFloat(float64(lastRes.GRounds)),
			fmt.Sprintf("%d/%d", accU, reps), fmt.Sprintf("%d/%d", rejPoint, reps),
		)
	}
	// Solver scaling rows: r grows with n as the paper's expression tends
	// to Θ(√n/ε²) for small ε.
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		p, err := local.SolveLocal(n, 1<<20, 1, 1.0/3)
		if err != nil {
			return nil, err
		}
		t.AddNote("solver: n=%d k=2^20 ⇒ r=%d, ℓ=%d, s/virtual=%d, feasible=%v",
			n, p.R, p.VirtualNodes, p.AND.SamplesPerNode, p.Feasible)
	}
	t.AddNote("paper: MIS of G^r has ≤ ⌊2k/r⌋ nodes and each collects ≥ r/2 samples")
	t.AddNote("acc|U big-n: uniform over n=2^30 accepted (collisions impossible); rej|point: near point mass rejected")
	return t, nil
}
