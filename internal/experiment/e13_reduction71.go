package experiment

import (
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/smp"
	"github.com/unifdist/unifdist/internal/tester"
)

func init() {
	register(Experiment{
		ID:          "E13",
		Description: "Theorem 7.1 forward: an SMP Equality protocol built from the uniformity tester",
		Run:         runE13,
	})
}

// runE13 runs the Blais–Canonne–Gur reduction with the paper's
// single-collision gap tester as the black box: equal inputs produce an
// exactly uniform referee stream (accepted w.p. ≥ 1−δ), unequal inputs a
// 1/6-far stream (rejected noticeably more often) — the mechanism behind
// the paper's lower-bound chain Thm 7.2 → Cor 7.4 → Thm 1.3.
func runE13(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 20000
	if mode == Full {
		trials = 100000
	}
	t := &Table{
		ID:    "E13",
		Title: "Equality from a uniformity tester (single-collision A_δ, ε=1/6)",
		Columns: []string{
			"n bits", "δ", "domain 2m", "q samples", "msg bits",
			"acc|eq", "acc|neq", "gap meas", "α guar",
		},
	}
	r := rng.New(seed)
	cases := []struct {
		nBits int
		delta float64
	}{
		{nBits: 96, delta: 0.1},
		{nBits: 96, delta: 0.2},
		{nBits: 512, delta: 0.1},
		{nBits: 2048, delta: 0.05},
	}
	for _, c := range cases {
		delta := c.delta
		build := func(domain int) (tester.Tester, error) {
			return tester.NewSingleCollision(domain, delta, 1.0/6)
		}
		e, err := smp.NewEqualityFromTester(c.nBits, build)
		if err != nil {
			return nil, err
		}
		inner, err := build(e.Domain())
		if err != nil {
			return nil, err
		}
		bits, err := e.MessageBits()
		if err != nil {
			return nil, err
		}
		x := make([]byte, (c.nBits+7)/8)
		for i := range x {
			x[i] = byte(r.Intn(256))
		}
		y := append([]byte(nil), x...)
		y[0] ^= 0xff
		accEq, err := e.EstimateAcceptProbParallel(x, x, trials, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		accNeq, err := e.EstimateAcceptProbParallel(x, y, trials, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		measGap := 0.0
		if rej := 1 - accEq; rej > 0 {
			measGap = (1 - accNeq) / rej
		}
		sc, ok := inner.(*tester.SingleCollision)
		guar := 0.0
		if ok {
			guar = sc.Params().Alpha
		}
		t.AddRow(
			fmtFloat(float64(c.nBits)), fmtFloat(c.delta),
			fmtFloat(float64(e.Domain())), fmtFloat(float64(inner.SampleSize())),
			fmtFloat(float64(bits)),
			fmtProb(accEq), fmtProb(accNeq),
			fmtFloat(measGap), fmtFloat(guar),
		)
	}
	t.AddNote("paper (Thm 7.1): a q-sample tester with error (δ₀,δ₁) gives SMP_{δ₀,δ₁}(EQ) ≤ q·log n")
	t.AddNote("equal inputs yield an exactly uniform stream; unequal a ≥1/6-far one")
	t.AddNote("α guar < 1 means the rigorous eq. (1) slack is vacuous at this size; the measured gap is the separation that survives the reduction")
	t.AddNote("%d trials per cell", trials)
	return t, nil
}
