package experiment

import (
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/reduction"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func init() {
	register(Experiment{
		ID:          "E11",
		Description: "identity→uniformity filter (intro reduction): per-node private-coin filtering",
		Run:         runE11,
	})
}

// runE11 tests identity to a fixed Zipf target via the filter: samples
// from the target become ~uniform, samples from far distributions stay
// far, and the centralized tester on filtered samples decides correctly.
func runE11(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 60
	if mode == Full {
		trials = 300
	}
	const (
		n   = 400
		eps = 0.8
	)
	target := dist.NewZipf(n, 1.0)
	eta := make([]float64, n)
	for i := range eta {
		eta[i] = target.Prob(i)
	}
	// 4× the minimum grain: Zipf tails force one bucket per element, so a
	// finer grain keeps the filtered target well inside the acceptance
	// region (the minimum grain leaves the healthy case borderline).
	m := 4 * reduction.GrainForEpsilon(n, eps)
	f, err := reduction.NewFilter(eta, m)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E11",
		Title: "identity testing against zipf(n=400,s=1) via the uniformity filter (M=8000, ε=0.8)",
		Columns: []string{
			"µ", "L1(µ,η)", "L1(F(µ),U_M)", "want", "reject rate",
		},
	}
	r := rng.New(seed)
	cc, err := tester.NewCollisionCounting(m, eps/2, 0)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		mu   dist.Distribution
		want string
	}{
		{name: "µ = η (zipf 1.0)", mu: target, want: "accept"},
		{name: "uniform(n)", mu: dist.NewUniform(n), want: "reject"},
		{name: "zipf 1.6", mu: dist.NewZipf(n, 1.6), want: "reject"},
		{name: "half support", mu: dist.NewHalfSupport(n), want: "reject"},
	}
	for _, c := range cases {
		fd, err := reduction.NewFiltered(c.mu, f)
		if err != nil {
			return nil, err
		}
		rej := tester.EstimateRejectProb(cc, fd, trials, r)
		t.AddRow(
			c.name, fmtFloat(dist.L1(c.mu, target)), fmtFloat(dist.L1FromUniform(fd)),
			c.want, fmtProb(rej),
		)
	}
	t.AddNote("filter rounding error L1(η,η̃) = %s (grain M = 4n/ε keeps it ≤ ε/4)", fmtFloat(f.RoundingError()))
	t.AddNote("the filter runs per sample with private randomness, so each network node applies it locally (paper §1)")
	t.AddNote("%d trials per cell; reject rate should be ≤1/3 on the first row, ≥2/3 on the rest", trials)
	return t, nil
}
