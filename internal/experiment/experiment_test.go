package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/unifdist/unifdist/internal/obs"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
}

func TestAllSortedNumerically(t *testing.T) {
	all := All()
	if all[0].ID != "E1" {
		t.Errorf("first experiment %s, want E1", all[0].ID)
	}
	if all[len(all)-1].ID != "E15" {
		t.Errorf("last experiment %s, want E15", all[len(all)-1].ID)
	}
	// E9 must come before E10 despite lexicographic order.
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if idx["E9"] > idx["E10"] {
		t.Error("E9 sorted after E10")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "test table",
		Columns: []string{"a", "long column"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("a note with %d", 42)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: test table ==", "long column", "333", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Columns: []string{"a", "b,with comma"},
	}
	tbl.AddRow("x\"y", "plain")
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"b,with comma"`) {
		t.Errorf("comma not escaped: %s", out)
	}
	if !strings.Contains(out, `"x""y"`) {
		t.Errorf("quote not escaped: %s", out)
	}
}

func TestModeString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register(Experiment{ID: "E1"})
}

// TestCheapExperimentsRun exercises the fast experiments end to end; the
// expensive ones run via cmd/unifbench and the root benchmarks.
func TestCheapExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"E1", "E6", "E9", "E11"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		tbl, err := e.Run(NewRunContext(Quick, 1))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
	}
}

// TestExecuteRecordsTelemetry runs a CONGEST experiment through Execute
// with full telemetry attached and checks the duration, metric delta,
// journal events, and per-round simnet events.
func TestExecuteRecordsTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, ok := Lookup("E6")
	if !ok {
		t.Fatal("E6 missing")
	}
	var buf bytes.Buffer
	ctx := &RunContext{
		Mode: Quick,
		Seed: 1,
		Obs: &obs.Recorder{
			Registry: obs.NewRegistry(),
			Journal:  obs.NewJournal(&buf),
		},
	}
	res, err := e.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Errorf("duration = %v", res.Duration)
	}
	if res.Metrics.Counters["experiment.runs"] != 1 {
		t.Errorf("experiment.runs delta = %v", res.Metrics.Counters)
	}
	if res.Metrics.Counters["simnet.messages"] == 0 {
		t.Error("no simnet messages recorded for a CONGEST experiment")
	}
	// The metric delta must be visible on the rendered table.
	foundNote := false
	for _, note := range res.Table.Notes {
		if strings.Contains(note, "telemetry: simnet.messages") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Errorf("no telemetry note on table, notes: %v", res.Table.Notes)
	}
	// The journal must hold experiment_start/end plus per-round sim events.
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev struct {
			Kind string `json:"kind"`
			ID   string `json:"id"`
			Run  string `json:"run"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[ev.Kind]++
		if ev.Kind == "sim_round" && ev.Run != "E6" {
			t.Errorf("sim_round labeled %q", ev.Run)
		}
	}
	if kinds["experiment_start"] != 1 || kinds["experiment_end"] != 1 {
		t.Errorf("journal kinds = %v", kinds)
	}
	if kinds["sim_round"] == 0 || kinds["sim_run_end"] == 0 {
		t.Errorf("no per-round simnet events in journal: %v", kinds)
	}
}

// TestExecuteDisabledTelemetry checks the disabled path leaves tables
// untouched.
func TestExecuteDisabledTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, _ := Lookup("E9")
	res, err := e.Execute(NewRunContext(Quick, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, note := range res.Table.Notes {
		if strings.Contains(note, "telemetry:") {
			t.Errorf("telemetry note with disabled recorder: %s", note)
		}
	}
	if !res.Metrics.Empty() {
		t.Errorf("metrics with disabled recorder: %+v", res.Metrics)
	}
}

func TestRunContextNilSafety(t *testing.T) {
	var ctx *RunContext
	if ctx.Registry() != nil {
		t.Error("nil context returned a registry")
	}
	ctx.Log(struct{}{})
	if tr := ctx.SimTracer("X", 16); tr != nil {
		t.Error("nil context returned a tracer")
	}
	if tr := NewRunContext(Quick, 1).SimTracer("X", 16); tr != nil {
		t.Error("disabled context returned a tracer")
	}
}

func TestFormattingHelpers(t *testing.T) {
	if fmtFloat(3.14159) != "3.142" {
		t.Errorf("fmtFloat = %s", fmtFloat(3.14159))
	}
	if fmtProb(0.5) != "0.500" {
		t.Errorf("fmtProb = %s", fmtProb(0.5))
	}
	if fmtBool(true) != "yes" || fmtBool(false) != "no" {
		t.Error("fmtBool wrong")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "md",
		Columns: []string{"a", "b"},
	}
	tbl.AddRow("1", "2")
	tbl.AddNote("hello")
	var buf bytes.Buffer
	if err := tbl.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### T: md", "| a | b |", "| --- | --- |", "| 1 | 2 |", "- hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
