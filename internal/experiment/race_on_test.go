//go:build race

package experiment

// raceEnabled reports whether the race detector is compiled in, so heavy
// determinism pins can budget for its slowdown.
const raceEnabled = true
