package experiment

import (
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/smp"
)

func init() {
	register(Experiment{
		ID:          "E14",
		Description: "SMP protocol comparison: Lemma 7.3 chunks vs single-cell probes vs trivial",
		Run:         runE14,
	})
}

// runE14 compares three simultaneous Equality protocols at n = 1024 bits:
// the deterministic send-everything protocol, the classical single-cell
// probing protocol at several repetition counts, and Lemma 7.3's chunk
// protocol at several (δ, τ). The chunk protocol's structured geometry
// buys the same detection with asymmetric error at O(√(τδn)) cost.
func runE14(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 20000
	if mode == Full {
		trials = 100000
	}
	const nBits = 1024
	t := &Table{
		ID:    "E14",
		Title: "SMP Equality protocols at n=1024 bits (single-bit-different inputs)",
		Columns: []string{
			"protocol", "msg bits", "acc|eq", "rej|neq",
		},
	}
	r := rng.New(seed)
	x := make([]byte, nBits/8)
	for i := range x {
		x[i] = byte(r.Intn(256))
	}
	y := append([]byte(nil), x...)
	y[0] ^= 1

	// Trivial deterministic protocol.
	tr, err := smp.NewTrivialEquality(nBits)
	if err != nil {
		return nil, err
	}
	accEq, err := tr.Run(x, x, r)
	if err != nil {
		return nil, err
	}
	accNeq, err := tr.Run(x, y, r)
	if err != nil {
		return nil, err
	}
	t.AddRow("trivial (send all)", fmtFloat(float64(tr.MessageBits())),
		fmtProb(boolProb(accEq)), fmtProb(1-boolProb(accNeq)))

	// Single-cell probing at several repetition counts.
	for _, reps := range []int{8, 64, 256} {
		sc, err := smp.NewSingleCellEquality(nBits, reps)
		if err != nil {
			return nil, err
		}
		rej, err := sc.EstimateRejectProbParallel(x, y, trials, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			"single-cell ×"+fmtFloat(float64(reps)),
			fmtFloat(float64(sc.MessageBits())),
			"1.000", fmtProb(rej),
		)
	}

	// Lemma 7.3 chunk protocol.
	for _, c := range []struct{ delta, tau float64 }{
		{delta: 0.01, tau: 2},
		{delta: 0.02, tau: 4},
	} {
		e, err := smp.NewEquality(nBits, c.delta, c.tau)
		if err != nil {
			return nil, err
		}
		rej, err := e.EstimateRejectProbParallel(x, y, trials, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			"chunk δ="+fmtFloat(c.delta)+" τ="+fmtFloat(c.tau),
			fmtFloat(float64(e.MessageBits())),
			"1.000", fmtProb(rej),
		)
	}
	t.AddNote("single-cell probes pay reps·(log m + 1) bits for reps/m detection per pair of probes")
	t.AddNote("the chunk protocol detects with the same order probability at Θ(√(τδn)) bits (Lemma 7.3)")
	t.AddNote("%d trials per randomized cell", trials)
	return t, nil
}

func boolProb(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
