package experiment

import (
	"math"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func init() {
	register(Experiment{
		ID:          "E3",
		Description: "Theorem 1.2: 0-round threshold tester — s = Θ(√(n/k)/ε²), T = Θ(1/ε⁴)",
		Run:         runE3,
	})
}

// runE3 sweeps k at fixed (n, ε) and verifies the threshold tester's
// sample scaling and error bound.
func runE3(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 60
	ks := []int{2000, 8000, 32000}
	if mode == Full {
		trials = 300
		ks = []int{2000, 8000, 32000, 128000}
	}
	const (
		n   = 1 << 16
		eps = 1.0
	)
	t := &Table{
		ID:    "E3",
		Title: "threshold-rule 0-round tester (n=2^16, ε=1)",
		Columns: []string{
			"k", "δ", "s/node", "√(n/k)/ε²", "T", "ηU", "ηFar", "feasible",
			"err|U", "err|far",
		},
	}
	rows, err := ctx.RunRows(rng.New(seed), len(ks), func(row int, r *rng.RNG) ([]string, error) {
		k := ks[row]
		cfg, err := zeroround.SolveThreshold(n, k, eps)
		if err != nil {
			return nil, err
		}
		nw, err := zeroround.BuildThreshold(cfg)
		if err != nil {
			return nil, err
		}
		nw.Obs = ctx.Registry()
		nw.Workers = ctx.Workers
		errU := nw.EstimateErrorParallel(dist.NewUniform(n), true, trials, r)
		errFar := nw.EstimateErrorParallel(dist.NewTwoBump(n, eps, r.Uint64()), false, trials, r)
		paperS := math.Sqrt(float64(n)/float64(k)) / (eps * eps)
		return []string{
			fmtFloat(float64(k)), fmtFloat(cfg.Delta),
			fmtFloat(float64(cfg.SamplesPerNode)), fmtFloat(paperS),
			fmtFloat(float64(cfg.T)), fmtFloat(cfg.EtaUniform), fmtFloat(cfg.EtaFar),
			fmtBool(cfg.Feasible), fmtProb(errU), fmtProb(errFar),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRows(rows)
	t.AddNote("paper: s = Θ(√(n/k)/ε²) per node and T = Θ(1/ε⁴) (k-independent), error ≤ 1/3")
	t.AddNote("T sits inside the eq. (5) window (ηU+√(3·ln3·ηU), ηFar−√(2·ln3·ηFar))")
	t.AddNote("%d trials per error cell", trials)
	return t, nil
}
