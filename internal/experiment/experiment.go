// Package experiment defines the paper-reproduction experiments E1–E15
// (see DESIGN.md for the index) and renders their result tables. Each
// experiment regenerates one theorem's quantitative content as a
// paper-bound vs. measured table; cmd/unifbench runs them all and
// EXPERIMENTS.md records the outputs.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
)

// Mode selects the experiment scale.
type Mode int

const (
	// Quick is the CI-friendly scale: minutes for the full suite.
	Quick Mode = iota + 1
	// Full is the EXPERIMENTS.md scale: more trials, bigger regimes.
	Full
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Table is one experiment's rendered result. The json tags define the
// table's shape inside the -json run document.
type Table struct {
	// ID is the experiment identifier (e.g. "E3").
	ID string `json:"id"`
	// Title describes the reproduced result.
	Title string `json:"title"`
	// Columns are the header labels.
	Columns []string `json:"columns"`
	// Rows hold the formatted cells.
	Rows [][]string `json:"rows"`
	// Notes are free-form lines printed under the table.
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(cell))
			}
			parts[i] = cell + strings.Repeat(" ", pad)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes a GitHub-flavored markdown table with the notes as
// a trailing list.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n- %s", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes a CSV rendering (no notes).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := make([]string, 0, len(t.Columns))
	for _, c := range t.Columns {
		row = append(row, esc(c))
	}
	if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row = row[:0]
		for _, c := range r {
			row = append(row, esc(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RunContext carries one experiment invocation's parameters and telemetry
// sinks. Obs may be nil (telemetry disabled); the helpers below are
// nil-safe so experiment code never branches on it.
type RunContext struct {
	// Mode is the experiment scale, Seed the root random seed.
	Mode Mode
	Seed uint64
	// Workers bounds the experiment-level parallelism: the number of
	// concurrent sweep rows in RunRows and (threaded onto each Network) the
	// goroutines of the parallel trial engine. 0 means GOMAXPROCS. Tables
	// are bit-for-bit identical at any value.
	Workers int
	// Obs receives the run's metrics and journal events when attached.
	Obs *obs.Recorder
}

// NewRunContext builds a context with telemetry disabled.
func NewRunContext(mode Mode, seed uint64) *RunContext {
	return &RunContext{Mode: mode, Seed: seed}
}

// WorkerCount resolves Workers (0 or nil context = GOMAXPROCS).
func (c *RunContext) WorkerCount() int {
	if c == nil || c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// RunRows executes count independent sweep-row builders, concurrently up to
// WorkerCount, and returns the rows in index order. Each builder gets its
// own generator split deterministically from r before any goroutine starts
// — row i always receives the i-th split — so the table is identical
// whether rows run serially or interleaved. The first error (by row index)
// wins. Builders must not touch shared mutable state; telemetry through the
// registry is safe (its metrics are atomic).
func (c *RunContext) RunRows(r *rng.RNG, count int, fn func(row int, rr *rng.RNG) ([]string, error)) ([][]string, error) {
	gens := make([]*rng.RNG, count)
	for i := range gens {
		gens[i] = r.Split()
	}
	rows := make([][]string, count)
	errs := make([]error, count)
	workers := c.WorkerCount()
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := range gens {
			rows[i], errs[i] = fn(i, gens[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= count {
						return
					}
					rows[i], errs[i] = fn(i, gens[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// AddRows appends pre-built rows in order.
func (t *Table) AddRows(rows [][]string) {
	t.Rows = append(t.Rows, rows...)
}

// Registry returns the run's metrics registry (nil when disabled).
func (c *RunContext) Registry() *obs.Registry {
	if c == nil {
		return nil
	}
	return c.Obs.Reg()
}

// Log writes one event to the run's journal (no-op when disabled).
func (c *RunContext) Log(event any) {
	if c != nil {
		c.Obs.Log(event)
	}
}

// SimTracer returns a simnet tracer that feeds the run's registry and
// journal, labeled with the experiment ID; budget is the CONGEST
// bytes-per-message cap for utilization reporting. Returns nil when
// telemetry is disabled, so callers can assign it to simnet configs (or
// pass it to the congest drivers' Traced variants) unconditionally.
func (c *RunContext) SimTracer(id string, budget int) simnet.Tracer {
	if c == nil || !c.Obs.Enabled() {
		return nil
	}
	var tracers []simnet.Tracer
	if reg := c.Obs.Reg(); reg != nil {
		tracers = append(tracers, simnet.NewMetricsTracer(reg, budget))
	}
	if j := c.Obs.Jour(); j != nil {
		tracers = append(tracers, simnet.NewJSONLTracer(j, id, budget))
	}
	return simnet.MultiTracer(tracers...)
}

// Runner executes one experiment.
type Runner func(ctx *RunContext) (*Table, error)

// Experiment couples an identifier with its runner.
type Experiment struct {
	// ID is the table identifier, Description the one-line summary shown
	// by cmd/unifbench -list.
	ID          string
	Description string
	Run         Runner
}

// RunResult couples a rendered table with the run's measured telemetry.
type RunResult struct {
	Table *Table
	// Duration is the experiment's wall time.
	Duration time.Duration
	// Metrics is the registry delta attributable to this experiment (empty
	// when telemetry is disabled).
	Metrics obs.Snapshot
}

// StartEvent opens an experiment in the JSONL journal.
type StartEvent struct {
	Kind string `json:"kind"` // "experiment_start"
	ID   string `json:"id"`
	Mode string `json:"mode"`
	Seed uint64 `json:"seed"`
}

// EndEvent closes an experiment in the JSONL journal.
type EndEvent struct {
	Kind       string  `json:"kind"` // "experiment_end"
	ID         string  `json:"id"`
	DurationMS float64 `json:"duration_ms"`
	Rows       int     `json:"rows"`
	Error      string  `json:"error,omitempty"`
}

// Execute runs the experiment under ctx, recording its duration and
// journal start/end events, and attributing the metric delta over the run
// to the result. When a registry is attached the delta is also appended to
// the table's notes, so rendered tables carry their own telemetry.
func (e Experiment) Execute(ctx *RunContext) (*RunResult, error) {
	if ctx == nil {
		ctx = NewRunContext(Quick, 1)
	}
	reg := ctx.Registry()
	before := reg.Snapshot()
	ctx.Log(StartEvent{Kind: "experiment_start", ID: e.ID, Mode: ctx.Mode.String(), Seed: ctx.Seed})
	//unifvet:allow wallclock experiment duration is telemetry (notes/journal), never a table value
	start := time.Now()
	tbl, err := e.Run(ctx)
	elapsed := time.Since(start) //unifvet:allow wallclock experiment duration is telemetry (notes/journal), never a table value
	reg.Counter("experiment.runs").Inc()
	reg.Histogram("experiment.duration_ns", obs.LatencyBuckets()).Observe(elapsed.Nanoseconds())
	end := EndEvent{Kind: "experiment_end", ID: e.ID, DurationMS: float64(elapsed.Microseconds()) / 1e3}
	if err != nil {
		end.Error = err.Error()
		ctx.Log(end)
		return nil, err
	}
	end.Rows = len(tbl.Rows)
	ctx.Log(end)
	delta := reg.Snapshot().Diff(before)
	if reg != nil && !delta.Empty() {
		for _, line := range delta.Lines() {
			tbl.AddNote("telemetry: %s", line)
		}
	}
	return &RunResult{Table: tbl, Duration: elapsed, Metrics: delta}, nil
}

// registry holds all experiments, populated by the e*.go files.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiment: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// fmtFloat renders a float compactly for table cells.
func fmtFloat(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

// fmtProb renders a probability.
func fmtProb(v float64) string {
	return fmt.Sprintf("%.3f", v)
}

// fmtBool renders a feasibility flag.
func fmtBool(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
