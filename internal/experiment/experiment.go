// Package experiment defines the paper-reproduction experiments E1–E15
// (see DESIGN.md for the index) and renders their result tables. Each
// experiment regenerates one theorem's quantitative content as a
// paper-bound vs. measured table; cmd/unifbench runs them all and
// EXPERIMENTS.md records the outputs.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Mode selects the experiment scale.
type Mode int

const (
	// Quick is the CI-friendly scale: minutes for the full suite.
	Quick Mode = iota + 1
	// Full is the EXPERIMENTS.md scale: more trials, bigger regimes.
	Full
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Table is one experiment's rendered result.
type Table struct {
	// ID is the experiment identifier (e.g. "E3").
	ID string
	// Title describes the reproduced result.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes are free-form lines printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(cell))
			}
			parts[i] = cell + strings.Repeat(" ", pad)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes a GitHub-flavored markdown table with the notes as
// a trailing list.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n- %s", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes a CSV rendering (no notes).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := make([]string, 0, len(t.Columns))
	for _, c := range t.Columns {
		row = append(row, esc(c))
	}
	if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row = row[:0]
		for _, c := range r {
			row = append(row, esc(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Runner executes one experiment.
type Runner func(mode Mode, seed uint64) (*Table, error)

// Experiment couples an identifier with its runner.
type Experiment struct {
	// ID is the table identifier, Description the one-line summary shown
	// by cmd/unifbench -list.
	ID          string
	Description string
	Run         Runner
}

// registry holds all experiments, populated by the e*.go files.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiment: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// fmtFloat renders a float compactly for table cells.
func fmtFloat(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

// fmtProb renders a probability.
func fmtProb(v float64) string {
	return fmt.Sprintf("%.3f", v)
}

// fmtBool renders a feasibility flag.
func fmtBool(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
