package experiment

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/congest"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
)

func init() {
	register(Experiment{
		ID:          "E6",
		Description: "Theorem 5.1: τ-token packaging in O(D+τ) CONGEST rounds",
		Run:         runE6,
	})
}

// runE6 runs token packaging across topologies and package sizes and
// compares measured rounds against D+τ, checking Definition 2's invariants
// on every run.
func runE6(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	k := 400
	if mode == Full {
		k = 2000
	}
	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("τ-token packaging (k=%d)", k),
		Columns: []string{
			"topology", "D", "τ", "rounds", "D+τ", "rounds/(D+τ)",
			"packages", "leftover", "invariants",
		},
	}
	r := rng.New(seed)
	topologies := []*graph.Graph{
		graph.NewLine(k),
		graph.NewRing(k),
		graph.NewStar(k),
		graph.NewGrid(k/20, 20),
		graph.NewBalancedTree(k, 2),
		graph.NewRandomConnected(k, 8.0/float64(k), seed),
	}
	for _, g := range topologies {
		d := g.Diameter()
		for _, tau := range []int{4, 16, 64} {
			tokens := make([]uint64, g.N())
			for i := range tokens {
				tokens[i] = r.Uint64() % 1024
			}
			res, err := congest.RunTokenPackagingTraced(g, tokens, tau, r.Uint64(), ctx.SimTracer("E6", congest.Bandwidth()))
			if err != nil {
				return nil, fmt.Errorf("%s τ=%d: %w", g.Name(), tau, err)
			}
			ok := res.Discarded <= tau-1
			total := res.Discarded
			for _, pkg := range res.Packages {
				if len(pkg) != tau {
					ok = false
				}
				total += len(pkg)
			}
			if total != g.N() {
				ok = false
			}
			t.AddRow(
				g.Name(), fmtFloat(float64(d)), fmtFloat(float64(tau)),
				fmtFloat(float64(res.Stats.Rounds)), fmtFloat(float64(d+tau)),
				fmtFloat(float64(res.Stats.Rounds)/float64(d+tau)),
				fmtFloat(float64(len(res.Packages))), fmtFloat(float64(res.Discarded)),
				fmtBool(ok),
			)
		}
	}
	t.AddNote("paper: O(D+τ) rounds; the rounds/(D+τ) column is the realized constant")
	t.AddNote("invariants: every package exactly τ tokens, ≤ τ−1 leftover, token conservation")
	return t, nil
}
