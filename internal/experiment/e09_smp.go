package experiment

import (
	"math"

	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/smp"
)

func init() {
	register(Experiment{
		ID:          "E9",
		Description: "Lemma 7.3: SMP Equality with error (1−τδ, δ) at cost O(√(τδn))",
		Run:         runE9,
	})
}

// runE9 measures the SMP Equality protocol: acceptance on equal inputs
// (always 1), rejection rate on single-bit-different inputs vs the τδ
// guarantee, and message cost vs the paper's √(24τδn) chunk formula.
func runE9(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 20000
	if mode == Full {
		trials = 120000
	}
	t := &Table{
		ID:    "E9",
		Title: "SMP Equality with asymmetric error",
		Columns: []string{
			"n bits", "δ", "τ", "t chunk", "√(24τδn)", "msg bits",
			"acc|eq", "rej|neq", "τδ guar",
		},
	}
	r := rng.New(seed)
	cases := []struct {
		n     int
		delta float64
		tau   float64
	}{
		{n: 256, delta: 0.01, tau: 2},
		{n: 1024, delta: 0.01, tau: 2},
		{n: 4096, delta: 0.01, tau: 2},
		{n: 1024, delta: 0.01, tau: 4},
		{n: 1024, delta: 0.002, tau: 8},
	}
	for _, c := range cases {
		e, err := smp.NewEquality(c.n, c.delta, c.tau)
		if err != nil {
			return nil, err
		}
		x := make([]byte, (c.n+7)/8)
		for i := range x {
			x[i] = byte(r.Intn(256))
		}
		y := append([]byte(nil), x...)
		y[0] ^= 1 // single-bit difference: hardest unequal pair
		rejEq, err := e.EstimateRejectProbParallel(x, x, trials/4, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		rejNeq, err := e.EstimateRejectProbParallel(x, y, trials, ctx.WorkerCount(), r)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmtFloat(float64(c.n)), fmtFloat(c.delta), fmtFloat(c.tau),
			fmtFloat(float64(e.ChunkLen())),
			fmtFloat(math.Sqrt(24*c.tau*c.delta*float64(c.n))),
			fmtFloat(float64(e.MessageBits())),
			fmtProb(1-rejEq), fmtProb(rejNeq),
			fmtFloat(e.GuaranteedReject()),
		)
	}
	t.AddNote("paper: accept equal inputs w.p. ≥ 1−δ (this construction: always); reject unequal w.p. ≥ τδ")
	t.AddNote("chunk t tracks the paper's ⌈√(24τδn)⌉ because the concatenated code realizes m≈4n, d≈m/6")
	t.AddNote("%d trials per rejection cell", trials)
	return t, nil
}
