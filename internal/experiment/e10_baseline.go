package experiment

import (
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func init() {
	register(Experiment{
		ID:          "E10",
		Description: "baseline: centralized Θ(√n/ε²) collision counting vs the distributed threshold tester",
		Run:         runE10,
	})
}

// runE10 compares the classical centralized tester with the paper's
// distributed threshold tester: per-node samples shrink by ~√k while the
// network-wide total pays a constant-factor premium.
func runE10(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 60
	if mode == Full {
		trials = 300
	}
	const (
		eps = 1.0
		k   = 8000
	)
	t := &Table{
		ID:    "E10",
		Title: "centralized baseline vs distributed threshold tester (ε=1, k=8000)",
		Columns: []string{
			"n", "s central", "s/node dist", "node saving", "total dist",
			"total/central", "errU cen", "errFar cen", "errU dist", "errFar dist",
		},
	}
	ns := []int{1 << 14, 1 << 16, 1 << 18}
	rows, err := ctx.RunRows(rng.New(seed), len(ns), func(row int, r *rng.RNG) ([]string, error) {
		n := ns[row]
		cc, err := tester.NewCollisionCounting(n, eps, 0)
		if err != nil {
			return nil, err
		}
		cfg, err := zeroround.SolveThreshold(n, k, eps)
		if err != nil {
			return nil, err
		}
		nw, err := zeroround.BuildThreshold(cfg)
		if err != nil {
			return nil, err
		}
		nw.Workers = ctx.Workers
		far := dist.NewTwoBump(n, eps, r.Uint64())
		errUC := tester.EstimateRejectProb(cc, dist.NewUniform(n), trials, r)
		errFC := 1 - tester.EstimateRejectProb(cc, far, trials, r)
		errUD := nw.EstimateErrorParallel(dist.NewUniform(n), true, trials, r)
		errFD := nw.EstimateErrorParallel(far, false, trials, r)
		total := nw.TotalSamples()
		return []string{
			fmtFloat(float64(n)), fmtFloat(float64(cc.SampleSize())),
			fmtFloat(float64(cfg.SamplesPerNode)),
			fmtFloat(float64(cc.SampleSize()) / float64(cfg.SamplesPerNode)),
			fmtFloat(float64(total)),
			fmtFloat(float64(total) / float64(cc.SampleSize())),
			fmtProb(errUC), fmtProb(errFC), fmtProb(errUD), fmtProb(errFD),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRows(rows)
	t.AddNote("crossover: distributing wins on per-node samples (≈√k saving) and loses a constant factor in total samples")
	t.AddNote("central errors are (reject uniform, accept far); distributed are network errors; %d trials each", trials)
	return t, nil
}
