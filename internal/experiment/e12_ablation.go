package experiment

import (
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func init() {
	register(Experiment{
		ID:          "E12",
		Description: "ablation: collision statistics vs distinct-count vs plug-in TV at s = Θ(√n/ε²)",
		Run:         runE12,
	})
}

// runE12 compares centralized statistics at the same sample budget: the
// paper's collision statistic works at s = Θ(√n); the distinct-element
// count is its equivalent; the plug-in TV estimator is blind until
// s = Ω(n) — the reason collision-based testing is the right primitive to
// distribute.
func runE12(ctx *RunContext) (*Table, error) {
	mode, seed := ctx.Mode, ctx.Seed
	trials := 120
	if mode == Full {
		trials = 600
	}
	const eps = 1.0
	t := &Table{
		ID:    "E12",
		Title: "centralized statistic ablation (ε=1, two-bump far instance)",
		Columns: []string{
			"n", "s", "statistic", "rej|U", "rej|far", "separates",
		},
	}
	r := rng.New(seed)
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		s := tester.BaselineSampleSize(n, eps)
		cc, err := tester.NewCollisionCounting(n, eps, s)
		if err != nil {
			return nil, err
		}
		dc, err := tester.NewDistinctCount(n, eps, s)
		if err != nil {
			return nil, err
		}
		tv, err := tester.NewEmpiricalTV(n, eps, s)
		if err != nil {
			return nil, err
		}
		far := dist.NewTwoBump(n, eps, r.Uint64())
		u := dist.NewUniform(n)
		for _, tst := range []tester.Tester{cc, dc, tv} {
			rejU := tester.EstimateRejectProb(tst, u, trials, r)
			rejF := tester.EstimateRejectProb(tst, far, trials, r)
			t.AddRow(
				fmtFloat(float64(n)), fmtFloat(float64(s)), tst.Name(),
				fmtProb(rejU), fmtProb(rejF),
				fmtBool(rejU <= 1.0/3 && rejF >= 2.0/3),
			)
		}
	}
	t.AddNote("collision counting and distinct counting both separate at s=Θ(√n/ε²)")
	t.AddNote("the plug-in TV estimator needs s=Ω(n): at √n its sampling noise swamps ε (the χ²-style statistic is an affine transform of collision counting and is covered by it)")
	t.AddNote("%d trials per cell", trials)
	return t, nil
}
