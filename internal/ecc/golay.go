package ecc

// golayB is the 12×12 component of the extended binary Golay code's
// systematic generator matrix G = [I₁₂ | B] (the standard bordered
// circulant construction). Row i is stored as a 12-bit mask, bit j = column
// j. The resulting [24,12] code has minimum distance 8, verified
// exhaustively in the tests.
var golayB = [12]uint16{
	0b011111111111,
	0b111011100010,
	0b110111000101,
	0b101110001011,
	0b111100010110,
	0b111000101101,
	0b110001011011,
	0b100010110111,
	0b100101101110,
	0b101011011100,
	0b110110111000,
	0b101101110001,
}

// golayEncode maps a 12-bit message to its 24-bit extended Golay codeword:
// the low 12 bits are the message (systematic part), the high 12 bits the
// parity part m·B.
func golayEncode(msg uint16) uint32 {
	msg &= 0xfff
	parity := uint16(0)
	for i := 0; i < 12; i++ {
		if msg&(1<<i) != 0 {
			parity ^= golayB[i]
		}
	}
	return uint32(msg) | uint32(parity)<<12
}

// golayMinDistance is the extended Golay code's minimum distance.
const golayMinDistance = 8
