package ecc

import (
	"fmt"
	"sync"
)

// fieldOnce lazily builds the shared GF(2¹²) tables (Uber guide: no init
// magic; construction is deterministic).
var (
	fieldOnce sync.Once
	fieldInst *gf
)

func field() *gf {
	fieldOnce.Do(func() { fieldInst = newGF() })
	return fieldInst
}

// Code is the concatenated RS∘Golay binary code: message bits are packed
// into 12-bit field symbols, Reed–Solomon encoded at rate 1/2, and each of
// the resulting symbols is expanded to 24 bits by the extended Golay code.
// The composition has rate 1/4 and minimum distance ≥ (N/2+1)·8, which is
// ≥ 1/6 of the code length — the property Lemma 7.3 needs.
type Code struct {
	rs       *rs
	msgBits  int
	kSymbols int
	nSymbols int
}

// NewCode builds a concatenated code for messages of msgBits bits.
// msgBits must be in [1, 12·2047] so the outer RS code fits in GF(2¹²).
func NewCode(msgBits int) (*Code, error) {
	if msgBits < 1 {
		return nil, fmt.Errorf("ecc: message length %d < 1", msgBits)
	}
	k := (msgBits + gfBits - 1) / gfBits
	n := 2 * k
	r, err := newRS(field(), k, n)
	if err != nil {
		return nil, fmt.Errorf("ecc: message length %d too large: %w", msgBits, err)
	}
	return &Code{rs: r, msgBits: msgBits, kSymbols: k, nSymbols: n}, nil
}

// MessageBits returns the code's message length in bits.
func (c *Code) MessageBits() int { return c.msgBits }

// CodeBits returns the codeword length in bits (24 per outer symbol).
func (c *Code) CodeBits() int { return 24 * c.nSymbols }

// MinDistance returns the guaranteed minimum Hamming distance between
// codewords of distinct messages: (outer distance) × (inner distance).
func (c *Code) MinDistance() int {
	return c.rs.minDistance() * golayMinDistance
}

// EncodeScratch holds the intermediate symbol buffers of one encoding.
// Reusing one scratch across calls (one per goroutine — a scratch is not
// safe for concurrent use) makes EncodeInto allocation-free, which is what
// the SMP trial loops need: they encode fixed inputs tens of thousands of
// times per experiment cell.
type EncodeScratch struct {
	symbols []uint16
	outer   []uint16
}

// NewEncodeScratch returns scratch sized for c's symbol counts.
func (c *Code) NewEncodeScratch() *EncodeScratch {
	return &EncodeScratch{
		symbols: make([]uint16, c.kSymbols),
		outer:   make([]uint16, c.nSymbols),
	}
}

// Encode maps a message bitset (LSB-first within each byte; at least
// ⌈MessageBits/8⌉ bytes) to its codeword bitset of CodeBits() bits.
func (c *Code) Encode(msg []byte) ([]byte, error) {
	return c.EncodeInto(msg, nil, nil)
}

// EncodeInto is Encode reusing caller-provided buffers: dst receives the
// codeword bitset (grown if shorter than ⌈CodeBits/8⌉ bytes, reused
// otherwise) and sc holds the intermediate symbol buffers (nil allocates
// fresh ones). It returns the codeword bitset, which aliases dst when dst
// had capacity. With a warm scratch and a full-size dst the call is
// allocation-free.
func (c *Code) EncodeInto(msg, dst []byte, sc *EncodeScratch) ([]byte, error) {
	if got, want := len(msg), (c.msgBits+7)/8; got < want {
		return nil, fmt.Errorf("ecc: message has %d bytes, want at least %d", got, want)
	}
	if sc == nil {
		sc = c.NewEncodeScratch()
	}
	if len(sc.symbols) != c.kSymbols || len(sc.outer) != c.nSymbols {
		return nil, fmt.Errorf("ecc: scratch sized for another code (%d/%d symbols, want %d/%d)",
			len(sc.symbols), len(sc.outer), c.kSymbols, c.nSymbols)
	}
	// Pack bits into 12-bit symbols (zero padded).
	symbols := sc.symbols
	for i := range symbols {
		symbols[i] = 0
	}
	for i := 0; i < c.msgBits; i++ {
		if msg[i/8]&(1<<(i%8)) != 0 {
			symbols[i/gfBits] |= 1 << (i % gfBits)
		}
	}
	if err := c.rs.encodeInto(symbols, sc.outer); err != nil {
		return nil, err
	}
	// Inner Golay expansion.
	want := (c.CodeBits() + 7) / 8
	if cap(dst) < want {
		dst = make([]byte, want)
	} else {
		dst = dst[:want]
		for i := range dst {
			dst[i] = 0
		}
	}
	for i, sym := range sc.outer {
		cw := golayEncode(sym)
		base := 24 * i
		for b := 0; b < 24; b++ {
			if cw&(1<<b) != 0 {
				pos := base + b
				dst[pos/8] |= 1 << (pos % 8)
			}
		}
	}
	return dst, nil
}

// Bit reports bit i of a bitset produced by Encode.
func Bit(bits []byte, i int) bool {
	return bits[i/8]&(1<<(i%8)) != 0
}

// SetBit sets bit i of a bitset.
func SetBit(bits []byte, i int) {
	bits[i/8] |= 1 << (i % 8)
}

// HammingDistance counts differing bits among the first n bits of two
// bitsets.
func HammingDistance(a, b []byte, n int) int {
	d := 0
	for i := 0; i < n; i++ {
		if Bit(a, i) != Bit(b, i) {
			d++
		}
	}
	return d
}
