package ecc

import (
	"math/bits"
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/rng"
)

func TestGFFieldAxioms(t *testing.T) {
	f := field()
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		a := uint16(r.Intn(gfOrder))
		b := uint16(r.Intn(gfOrder))
		c := uint16(r.Intn(gfOrder))
		// Commutativity.
		if f.mul(a, b) != f.mul(b, a) {
			t.Fatalf("mul not commutative: %d, %d", a, b)
		}
		// Associativity.
		if f.mul(f.mul(a, b), c) != f.mul(a, f.mul(b, c)) {
			t.Fatalf("mul not associative: %d, %d, %d", a, b, c)
		}
		// Distributivity.
		if f.mul(a, f.add(b, c)) != f.add(f.mul(a, b), f.mul(a, c)) {
			t.Fatalf("not distributive: %d, %d, %d", a, b, c)
		}
		// Identity and zero.
		if f.mul(a, 1) != a || f.mul(a, 0) != 0 {
			t.Fatalf("identity/zero failed for %d", a)
		}
		// Inverses.
		if a != 0 && f.mul(a, f.inv(a)) != 1 {
			t.Fatalf("inverse failed for %d", a)
		}
	}
}

func TestGFExpLogConsistency(t *testing.T) {
	f := field()
	seen := make(map[uint16]bool, gfOrder-1)
	for i := 0; i < gfOrder-1; i++ {
		v := f.exp[i]
		if v == 0 {
			t.Fatalf("exp[%d] = 0", i)
		}
		if seen[v] {
			t.Fatalf("exp[%d] = %d repeats: polynomial not primitive", i, v)
		}
		seen[v] = true
		if f.log[v] != uint16(i) {
			t.Fatalf("log(exp(%d)) = %d", i, f.log[v])
		}
	}
}

func TestGFPow(t *testing.T) {
	f := field()
	if f.pow(0, 0) != 1 {
		t.Error("0^0 should be 1 by convention")
	}
	if f.pow(0, 3) != 0 {
		t.Error("0^3 should be 0")
	}
	a := uint16(0x123)
	want := uint16(1)
	for e := 0; e < 20; e++ {
		if got := f.pow(a, e); got != want {
			t.Fatalf("pow(%d, %d) = %d, want %d", a, e, got, want)
		}
		want = f.mul(want, a)
	}
}

func TestGolayMinimumDistanceExhaustive(t *testing.T) {
	// The [24,12] extended Golay code has minimum distance exactly 8; by
	// linearity it suffices to check the minimum weight over all 4095
	// nonzero codewords.
	min := 24
	for m := uint16(1); m < 1<<12; m++ {
		if w := bits.OnesCount32(golayEncode(m)); w < min {
			min = w
		}
	}
	if min != golayMinDistance {
		t.Fatalf("Golay minimum weight = %d, want %d", min, golayMinDistance)
	}
}

func TestGolayLinearity(t *testing.T) {
	f := func(a, b uint16) bool {
		a, b = a&0xfff, b&0xfff
		return golayEncode(a)^golayEncode(b) == golayEncode(a^b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGolaySystematic(t *testing.T) {
	for _, m := range []uint16{0, 1, 0xfff, 0x5a5} {
		if got := golayEncode(m) & 0xfff; got != uint32(m) {
			t.Fatalf("systematic part of %#x is %#x", m, got)
		}
	}
}

func TestRSDistance(t *testing.T) {
	f := field()
	r, err := newRS(f, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.minDistance() != 5 {
		t.Fatalf("minDistance = %d, want 5", r.minDistance())
	}
	rr := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		a := make([]uint16, 4)
		b := make([]uint16, 4)
		for i := range a {
			a[i] = uint16(rr.Intn(gfOrder))
			b[i] = uint16(rr.Intn(gfOrder))
		}
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
		}
		if same {
			continue
		}
		ca, err := r.encode(a)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := r.encode(b)
		if err != nil {
			t.Fatal(err)
		}
		d := 0
		for i := range ca {
			if ca[i] != cb[i] {
				d++
			}
		}
		if d < 5 {
			t.Fatalf("RS distance %d < 5 for %v vs %v", d, a, b)
		}
	}
}

func TestRSValidation(t *testing.T) {
	f := field()
	if _, err := newRS(f, 0, 4); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := newRS(f, 5, 4); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := newRS(f, 1, gfOrder); err == nil {
		t.Error("n=4096 accepted")
	}
	r, err := newRS(f, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.encode([]uint16{1}); err == nil {
		t.Error("short message accepted")
	}
}

func TestCodeParameters(t *testing.T) {
	c, err := NewCode(100)
	if err != nil {
		t.Fatal(err)
	}
	// 100 bits → 9 symbols → RS [18, 9] → 18·24 = 432 bits, distance
	// (18−9+1)·8 = 80.
	if c.CodeBits() != 432 {
		t.Errorf("CodeBits = %d, want 432", c.CodeBits())
	}
	if c.MinDistance() != 80 {
		t.Errorf("MinDistance = %d, want 80", c.MinDistance())
	}
	if c.MessageBits() != 100 {
		t.Errorf("MessageBits = %d", c.MessageBits())
	}
	// Relative distance ≥ 1/6 (Lemma 7.3's requirement).
	if rel := float64(c.MinDistance()) / float64(c.CodeBits()); rel < 1.0/6 {
		t.Errorf("relative distance %v < 1/6", rel)
	}
}

func TestCodeRelativeDistanceAlwaysAboveSixth(t *testing.T) {
	for _, bits := range []int{1, 12, 13, 64, 100, 1000, 12 * 2047} {
		c, err := NewCode(bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if rel := float64(c.MinDistance()) / float64(c.CodeBits()); rel < 1.0/6 {
			t.Errorf("bits=%d: relative distance %v < 1/6", bits, rel)
		}
	}
}

func TestCodeValidation(t *testing.T) {
	if _, err := NewCode(0); err == nil {
		t.Error("0-bit message accepted")
	}
	if _, err := NewCode(12*2047 + 13); err == nil {
		t.Error("oversized message accepted")
	}
	c, err := NewCode(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(make([]byte, 7)); err == nil {
		t.Error("short message buffer accepted")
	}
}

func TestEncodeDistanceOnRandomPairs(t *testing.T) {
	c, err := NewCode(96)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		a := make([]byte, 12)
		b := make([]byte, 12)
		for i := range a {
			a[i] = byte(r.Intn(256))
			b[i] = byte(r.Intn(256))
		}
		if string(a) == string(b) {
			continue
		}
		ca, err := c.Encode(a)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := c.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		if d := HammingDistance(ca, cb, c.CodeBits()); d < c.MinDistance() {
			t.Fatalf("distance %d < guaranteed %d", d, c.MinDistance())
		}
	}
}

func TestEncodeDistanceAdversarialSingleBitFlips(t *testing.T) {
	// Messages differing in exactly one bit are the closest pairs a random
	// test might miss.
	c, err := NewCode(48)
	if err != nil {
		t.Fatal(err)
	}
	base := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	cBase, err := c.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		flipped := append([]byte(nil), base...)
		flipped[i/8] ^= 1 << (i % 8)
		cf, err := c.Encode(flipped)
		if err != nil {
			t.Fatal(err)
		}
		if d := HammingDistance(cBase, cf, c.CodeBits()); d < c.MinDistance() {
			t.Fatalf("bit %d flip: distance %d < %d", i, d, c.MinDistance())
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	c, err := NewCode(64)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("Encode not deterministic")
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	for _, bits := range []int{1, 7, 64, 200, 1024} {
		c, err := NewCode(bits)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, (bits+7)/8)
		for i := range msg {
			msg[i] = byte(3*i + 1)
		}
		want, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		sc := c.NewEncodeScratch()
		dst := make([]byte, (c.CodeBits()+7)/8)
		// Reuse the same scratch and dst repeatedly, including with dirty
		// contents, to catch missing resets of the |= packing loops.
		for rep := 0; rep < 3; rep++ {
			for i := range dst {
				dst[i] = 0xff
			}
			got, err := c.EncodeInto(msg, dst, sc)
			if err != nil {
				t.Fatal(err)
			}
			if &got[0] != &dst[0] {
				t.Fatalf("bits=%d rep=%d: EncodeInto did not reuse dst", bits, rep)
			}
			if string(got) != string(want) {
				t.Fatalf("bits=%d rep=%d: EncodeInto differs from Encode", bits, rep)
			}
		}
		// nil dst and nil scratch allocate but must still agree.
		got, err := c.EncodeInto(msg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("bits=%d: EncodeInto(nil, nil) differs from Encode", bits)
		}
	}
}

func TestEncodeIntoRejectsForeignScratch(t *testing.T) {
	a, err := NewCode(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCode(256)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	if _, err := a.EncodeInto(msg, nil, b.NewEncodeScratch()); err == nil {
		t.Fatal("EncodeInto accepted scratch sized for another code")
	}
}

func TestEncodeIntoAllocationFree(t *testing.T) {
	c, err := NewCode(1024)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 128)
	for i := range msg {
		msg[i] = byte(i)
	}
	sc := c.NewEncodeScratch()
	dst := make([]byte, (c.CodeBits()+7)/8)
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.EncodeInto(msg, dst, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeInto with warm scratch allocates %.1f times per call, want 0", allocs)
	}
}

func TestBitHelpers(t *testing.T) {
	bits := make([]byte, 2)
	SetBit(bits, 3)
	SetBit(bits, 9)
	if !Bit(bits, 3) || !Bit(bits, 9) {
		t.Fatal("set bits not readable")
	}
	if Bit(bits, 0) || Bit(bits, 8) {
		t.Fatal("unset bits read as set")
	}
	if d := HammingDistance([]byte{0xff}, []byte{0x0f}, 8); d != 4 {
		t.Fatalf("HammingDistance = %d, want 4", d)
	}
}

func BenchmarkEncode1KBit(b *testing.B) {
	c, err := NewCode(1024)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 128)
	for i := range msg {
		msg[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeInto1KBit(b *testing.B) {
	c, err := NewCode(1024)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 128)
	for i := range msg {
		msg[i] = byte(i)
	}
	sc := c.NewEncodeScratch()
	dst := make([]byte, (c.CodeBits()+7)/8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeInto(msg, dst, sc); err != nil {
			b.Fatal(err)
		}
	}
}
