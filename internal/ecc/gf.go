// Package ecc provides the error-correcting code used by the SMP Equality
// protocol of Lemma 7.3. The paper uses a Justesen code with rate 1/3 and
// relative distance ≥ 1/6; we substitute a concatenated code — an outer
// Reed–Solomon code over GF(2¹²) at rate 1/2 composed with the inner
// extended binary Golay [24,12,8] code — with rate 1/4 and guaranteed
// relative distance ≥ 1/6. The protocol only needs *some* constant-rate
// binary code with relative distance 1/6 (see DESIGN.md §3.4); the rate
// constant is absorbed into the message-length bound.
package ecc

import "fmt"

// gfBits is the field degree: GF(2^12) with 4096 elements, chosen so field
// symbols align exactly with Golay 12-bit messages.
const (
	gfBits  = 12
	gfOrder = 1 << gfBits // 4096
	// gfPoly is the primitive polynomial x¹² + x⁶ + x⁴ + x + 1.
	gfPoly = 0x1053
)

// gf implements arithmetic in GF(2¹²) via exp/log tables.
type gf struct {
	exp [2 * (gfOrder - 1)]uint16
	log [gfOrder]uint16
}

// newGF builds the field tables from the primitive polynomial.
func newGF() *gf {
	f := &gf{}
	x := uint32(1)
	for i := 0; i < gfOrder-1; i++ {
		f.exp[i] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&gfOrder != 0 {
			x ^= gfPoly
		}
	}
	// Duplicate the exp table so products of logs never need a modulo.
	for i := gfOrder - 1; i < len(f.exp); i++ {
		f.exp[i] = f.exp[i-(gfOrder-1)]
	}
	return f
}

// add returns a+b (XOR in characteristic 2).
func (f *gf) add(a, b uint16) uint16 { return a ^ b }

// mul returns a·b.
func (f *gf) mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// inv returns a⁻¹. It panics on zero.
func (f *gf) inv(a uint16) uint16 {
	if a == 0 {
		panic("ecc: inverse of zero")
	}
	return f.exp[(gfOrder-1)-int(f.log[a])]
}

// pow returns a^e for e ≥ 0.
func (f *gf) pow(a uint16, e int) uint16 {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (int(f.log[a]) * e) % (gfOrder - 1)
	return f.exp[le]
}

// rs is an evaluation-style Reed–Solomon encoder over GF(2¹²): a message of
// k symbols is interpreted as a degree-(k−1) polynomial and evaluated at
// the points α⁰, …, α^{N−1}. Distinct messages agree on at most k−1
// points, so the minimum distance is N−k+1.
type rs struct {
	field *gf
	k, n  int
	// points[i] is the i-th evaluation point.
	points []uint16
	// pointLogs[i] is log_α(points[i]), precomputed once per code so the
	// Horner inner loop multiplies with a single table lookup instead of a
	// log lookup per step. Every point α^i is nonzero, so the log always
	// exists.
	pointLogs []int
}

// newRS builds an [n, k] Reed–Solomon code. It requires 1 ≤ k ≤ n ≤ 4095.
func newRS(field *gf, k, n int) (*rs, error) {
	if k < 1 || n < k || n > gfOrder-1 {
		return nil, fmt.Errorf("ecc: invalid RS parameters k=%d n=%d", k, n)
	}
	points := make([]uint16, n)
	pointLogs := make([]int, n)
	for i := range points {
		points[i] = field.exp[i] // α^i, distinct for i < 4095
		pointLogs[i] = int(field.log[points[i]])
	}
	return &rs{field: field, k: k, n: n, points: points, pointLogs: pointLogs}, nil
}

// encode evaluates the message polynomial at every point (Horner's rule).
func (r *rs) encode(msg []uint16) ([]uint16, error) {
	out := make([]uint16, r.n)
	if err := r.encodeInto(msg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// encodeInto is encode writing into a caller-provided slice of exactly n
// symbols. The inner loop inlines GF multiplication against the
// precomputed point logs: acc·α^i is one exp-table lookup.
func (r *rs) encodeInto(msg, out []uint16) error {
	if len(msg) != r.k {
		return fmt.Errorf("ecc: RS message has %d symbols, want %d", len(msg), r.k)
	}
	if len(out) != r.n {
		return fmt.Errorf("ecc: RS output has %d symbols, want %d", len(out), r.n)
	}
	exp, log := &r.field.exp, &r.field.log
	for i, lx := range r.pointLogs {
		acc := uint16(0)
		for j := r.k - 1; j >= 0; j-- {
			if acc != 0 {
				acc = exp[int(log[acc])+lx]
			}
			acc ^= msg[j]
		}
		out[i] = acc
	}
	return nil
}

// minDistance returns the RS minimum distance N−k+1.
func (r *rs) minDistance() int { return r.n - r.k + 1 }
