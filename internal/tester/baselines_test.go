package tester

import (
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

func TestDistinctCountBasics(t *testing.T) {
	n, eps := 1<<14, 0.8
	dc, err := NewDistinctCount(n, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	const trials = 300
	rejU := EstimateRejectProb(dc, dist.NewUniform(n), trials, r)
	rejFar := EstimateRejectProb(dc, dist.NewTwoBump(n, eps, 5), trials, r)
	if rejU > 1.0/3 {
		t.Errorf("distinct-count rejects uniform with prob %v", rejU)
	}
	if rejFar < 2.0/3 {
		t.Errorf("distinct-count rejects far instance with prob only %v", rejFar)
	}
}

func TestDistinctCountValidation(t *testing.T) {
	if _, err := NewDistinctCount(1, 0.5, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewDistinctCount(100, 0, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewDistinctCount(100, 3, 0); err == nil {
		t.Error("eps>2 accepted")
	}
	if _, err := NewDistinctCount(100, 1, 1); err == nil {
		t.Error("s=1 accepted")
	}
}

func TestDistinctCountPanicsOnWrongSize(t *testing.T) {
	dc, err := NewDistinctCount(1000, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong size did not panic")
		}
	}()
	dc.Test([]int{1, 2})
}

func TestCountDistinct(t *testing.T) {
	tests := []struct {
		name string
		xs   []int
		want int
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "single", xs: []int{5}, want: 1},
		{name: "all same", xs: []int{2, 2, 2}, want: 1},
		{name: "all distinct", xs: []int{3, 1, 2}, want: 3},
		{name: "mixed", xs: []int{1, 2, 1, 3, 2}, want: 3},
	}
	sc := dist.NewCollisionScratch()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sc.CountDistinct(10, tt.xs); got != tt.want {
				t.Fatalf("CountDistinct(%v) = %d, want %d", tt.xs, got, tt.want)
			}
		})
	}
}

func TestCountDistinctMatchesMap(t *testing.T) {
	sc := dist.NewCollisionScratch()
	f := func(seed uint64, sRaw uint8) bool {
		r := rng.New(seed)
		xs := dist.SampleN(dist.NewUniform(10), int(sRaw%30)+1, r)
		m := make(map[int]bool)
		for _, x := range xs {
			m[x] = true
		}
		return sc.CountDistinct(10, xs) == len(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalTVAcceptsUniform(t *testing.T) {
	n, eps := 1<<12, 1.0
	tv, err := NewEmpiricalTV(n, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	const trials = 150
	rejU := EstimateRejectProb(tv, dist.NewUniform(n), trials, r)
	if rejU > 1.0/3 {
		t.Errorf("plug-in TV rejects uniform with prob %v", rejU)
	}
}

func TestEmpiricalTVStrongSignal(t *testing.T) {
	// With s ≈ n the plug-in tester does detect an extreme instance.
	n := 1 << 10
	tv, err := NewEmpiricalTV(n, 1.0, 4*n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	const trials = 100
	rejFar := EstimateRejectProb(tv, dist.NewHalfSupport(n), trials, r)
	if rejFar < 2.0/3 {
		t.Errorf("plug-in TV with s=4n rejects half-support with prob only %v", rejFar)
	}
}

func TestEmpiricalTVWeakInSublinearRegime(t *testing.T) {
	// The ablation point: at s = Θ(√n) the plug-in TV estimator cannot see
	// the two-bump perturbation (its sampling noise dwarfs ε), while the
	// collision tester at the same s can.
	n, eps := 1<<14, 1.0
	s := BaselineSampleSize(n, eps)
	tv, err := NewEmpiricalTV(n, eps, s)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCollisionCounting(n, eps, s)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	const trials = 120
	far := dist.NewTwoBump(n, eps, 7)
	rejTV := EstimateRejectProb(tv, far, trials, r)
	rejCC := EstimateRejectProb(cc, far, trials, r)
	if rejCC < 2.0/3 {
		t.Errorf("collision tester should catch two-bump (got %v)", rejCC)
	}
	if rejTV > rejCC {
		t.Errorf("plug-in TV (%v) unexpectedly beat collisions (%v) at s=√n", rejTV, rejCC)
	}
}

func TestEmpiricalTVValidation(t *testing.T) {
	if _, err := NewEmpiricalTV(1, 0.5, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewEmpiricalTV(100, -1, 0); err == nil {
		t.Error("eps<0 accepted")
	}
}

func TestExpectedPluginTVSanity(t *testing.T) {
	// With very few samples the plug-in TV is near its maximum (~1); with
	// s ≫ n it tends to 0.
	if v := expectedPluginTV(1000, 10); v < 0.9 {
		t.Errorf("E[TV] with s≪n = %v, want ≈ 1", v)
	}
	if v := expectedPluginTV(100, 100000); v > 0.1 {
		t.Errorf("E[TV] with s≫n = %v, want ≈ 0", v)
	}
	// Monotone in s.
	prev := 2.0
	for _, s := range []int{10, 100, 1000, 10000} {
		v := expectedPluginTV(500, s)
		if v > prev+1e-9 {
			t.Errorf("E[TV] not decreasing at s=%d", s)
		}
		prev = v
	}
}

func BenchmarkDistinctCountTest(b *testing.B) {
	n := 1 << 16
	dc, err := NewDistinctCount(n, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	samples := dist.SampleN(dist.NewUniform(n), dc.SampleSize(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dc.Test(samples)
	}
}
