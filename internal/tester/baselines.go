package tester

import (
	"fmt"
	"math"

	"github.com/unifdist/unifdist/internal/dist"
)

// This file holds alternative centralized statistics used by the ablation
// experiment (E12): the distinct-element count (Paninski's original
// statistic) and the empirical-TV plug-in tester. The χ²-style statistic
// Σ(N_i − s/n)² − N_i is an affine transform of the colliding-pair count,
// so CollisionCounting already covers it.

// DistinctCount accepts iff the number of distinct elements among the s
// samples is large: under uniform nearly all samples are distinct, while an
// ε-far distribution loses ≈ C(s,2)(1+ε²)/n of them to repeats.
type DistinctCount struct {
	n         int
	s         int
	eps       float64
	threshold float64 // accept iff (s − distinct) ≤ threshold
}

// NewDistinctCount builds the distinct-element tester for domain size n
// and distance eps, using s samples (0 = the collision-counting default).
func NewDistinctCount(n int, eps float64, s int) (*DistinctCount, error) {
	if n < 2 {
		return nil, fmt.Errorf("tester: domain size %d too small", n)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("tester: eps %v outside (0, 2]", eps)
	}
	if s <= 0 {
		s = BaselineSampleSize(n, eps)
	}
	if s < 2 {
		return nil, fmt.Errorf("tester: sample size %d too small", s)
	}
	// Expected "missing distinct" ≈ expected colliding pairs for sparse
	// sampling; place the cutoff midway between the uniform and ε-far
	// expectations.
	pairs := float64(s) * float64(s-1) / 2
	expU := pairs / float64(n)
	expFar := pairs * (1 + eps*eps) / float64(n)
	return &DistinctCount{
		n:         n,
		s:         s,
		eps:       eps,
		threshold: (expU + expFar) / 2,
	}, nil
}

// SampleSize implements Tester.
func (t *DistinctCount) SampleSize() int { return t.s }

// Test accepts iff the repeat count s − distinct is at most the threshold.
func (t *DistinctCount) Test(samples []int) bool {
	return t.TestScratch(samples, nil)
}

// TestScratch implements ScratchTester.
func (t *DistinctCount) TestScratch(samples []int, sc *dist.CollisionScratch) bool {
	if len(samples) != t.s {
		panic(fmt.Sprintf("tester: got %d samples, want %d", len(samples), t.s))
	}
	return float64(t.s-sc.CountDistinct(t.n, samples)) <= t.threshold
}

// Name implements Tester.
func (t *DistinctCount) Name() string {
	return fmt.Sprintf("distinct-count(s=%d)", t.s)
}

// Threshold returns the repeat-count acceptance threshold.
func (t *DistinctCount) Threshold() float64 { return t.threshold }

// EmpiricalTV accepts iff the plug-in total-variation distance between the
// empirical histogram and the uniform distribution is below a cutoff. It
// needs s = Ω(n) samples to be meaningful — the point of including it in
// the ablation is to show how badly a plug-in estimator loses to
// collision statistics in the sublinear regime.
type EmpiricalTV struct {
	n         int
	s         int
	threshold float64
}

// NewEmpiricalTV builds the plug-in tester. The cutoff is placed midway
// between the expected plug-in TV under uniform (which is large for
// s ≪ n: sampling noise alone inflates it) and the uniform-expectation
// plus ε/2.
func NewEmpiricalTV(n int, eps float64, s int) (*EmpiricalTV, error) {
	if n < 2 {
		return nil, fmt.Errorf("tester: domain size %d too small", n)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("tester: eps %v outside (0, 2]", eps)
	}
	if s <= 0 {
		s = BaselineSampleSize(n, eps)
	}
	if s < 2 {
		return nil, fmt.Errorf("tester: sample size %d too small", s)
	}
	return &EmpiricalTV{
		n:         n,
		s:         s,
		threshold: expectedPluginTV(n, s) + eps/4,
	}, nil
}

// expectedPluginTV approximates E[TV(µ̂, U)] for uniform µ via the
// Poissonized occupancy expectation: each count N_i ≈ Poisson(λ), λ = s/n,
// and TV = Σ|N_i/s − 1/n|/2 = n·E|N − λ|/(2s).
func expectedPluginTV(n, s int) float64 {
	lambda := float64(s) / float64(n)
	// E|Poisson(λ) − λ| computed by direct summation.
	ead := 0.0
	p := math.Exp(-lambda)
	for k := 0; ; k++ {
		ead += p * math.Abs(float64(k)-lambda)
		if float64(k) > lambda+40*math.Sqrt(lambda+1) {
			break
		}
		p *= lambda / float64(k+1)
	}
	return float64(n) * ead / (2 * float64(s))
}

// SampleSize implements Tester.
func (t *EmpiricalTV) SampleSize() int { return t.s }

// Test computes the plug-in TV distance and compares to the cutoff.
func (t *EmpiricalTV) Test(samples []int) bool {
	if len(samples) != t.s {
		panic(fmt.Sprintf("tester: got %d samples, want %d", len(samples), t.s))
	}
	counts := make(map[int]int, len(samples))
	for _, v := range samples {
		counts[v]++
	}
	u := 1 / float64(t.n)
	tv := 0.0
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(t.s) - u)
	}
	// Elements never seen contribute u each.
	tv += float64(t.n-len(counts)) * u
	tv /= 2
	return tv <= t.threshold
}

// Name implements Tester.
func (t *EmpiricalTV) Name() string {
	return fmt.Sprintf("empirical-tv(s=%d)", t.s)
}

// Threshold returns the TV acceptance cutoff.
func (t *EmpiricalTV) Threshold() float64 { return t.threshold }
