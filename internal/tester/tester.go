// Package tester implements the centralized uniformity testers of the
// paper: the single-collision (δ, 1+γε²)-gap tester A_δ of Section 3.1, its
// m-repetition gap amplification of Section 3.2.1, and the classical
// collision-counting baseline (Paninski-style, Θ(√n/ε²) samples) used for
// comparison in experiment E10.
//
// A tester consumes a slice of samples from the unknown distribution and
// outputs accept ("looks uniform") or reject. Parameter solvers translate
// the paper's displayed inequalities into concrete integer sample counts and
// report whether the paper's rigorous sufficient conditions
// (δ < ε⁴/64, n > 64/(ε⁴δ), slack γ ≥ 1/2) hold for the chosen parameters.
package tester

import (
	"fmt"
	"math"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

// Tester distinguishes the uniform distribution from ε-far distributions
// given i.i.d. samples.
type Tester interface {
	// SampleSize returns the number of samples Test expects.
	SampleSize() int
	// Test returns true to accept ("uniform") and false to reject. It
	// panics if len(samples) != SampleSize().
	Test(samples []int) bool
	// Name returns a short description for tables and logs.
	Name() string
}

// ScratchTester is implemented by testers whose statistic can be computed
// against a reusable dist.CollisionScratch, making repeated Test calls
// allocation-free. TestScratch(samples, nil) must equal Test(samples); the
// zeroround trial engines thread one scratch per worker through this path.
type ScratchTester interface {
	Tester
	// TestScratch is Test using sc's reusable buffers.
	TestScratch(samples []int, sc *dist.CollisionScratch) bool
}

// Run draws the tester's required samples from d and returns its verdict.
func Run(t Tester, d dist.Distribution, r *rng.RNG) bool {
	return t.Test(dist.SampleN(d, t.SampleSize(), r))
}

// GapParams holds the resolved parameters of a single-collision gap tester.
type GapParams struct {
	// N is the domain size.
	N int
	// Eps is the L1 distance parameter.
	Eps float64
	// S is the integer number of samples, chosen so that C(S,2)/N ≈ δ.
	S int
	// Delta is the effective completeness error C(S,2)/N realized by S.
	Delta float64
	// Gamma is the slack term of eq. (1); the tester's gap is 1 + Gamma·ε².
	Gamma float64
	// Alpha is the soundness gap 1 + Gamma·ε² (meaningful when Gamma > 0).
	Alpha float64
	// Rigorous reports whether the paper's sufficient conditions for
	// γ ≥ 1/2 hold: δ < ε⁴/64 and n > 64/(ε⁴δ).
	Rigorous bool
}

// SolveGap computes the sample count and realized parameters of the
// single-collision tester A_δ on domain size n with target completeness
// error delta and distance parameter eps. The returned Delta is the
// realized (not requested) completeness error.
func SolveGap(n int, delta, eps float64) (GapParams, error) {
	if n < 2 {
		return GapParams{}, fmt.Errorf("tester: domain size %d too small", n)
	}
	if delta <= 0 || delta >= 1 {
		return GapParams{}, fmt.Errorf("tester: delta %v outside (0, 1)", delta)
	}
	if eps <= 0 || eps > 2 {
		return GapParams{}, fmt.Errorf("tester: eps %v outside (0, 2]", eps)
	}
	// s(s−1) = 2δn  ⇒  s = (1 + √(1+8δn))/2, rounded to the nearest
	// integer ≥ 2.
	s := int(math.Round((1 + math.Sqrt(1+8*delta*float64(n))) / 2))
	if s < 2 {
		s = 2
	}
	p := GapParams{N: n, Eps: eps, S: s}
	p.Delta = float64(s) * float64(s-1) / (2 * float64(n))
	p.Gamma = gapGamma(s, p.Delta, eps)
	p.Alpha = 1 + p.Gamma*eps*eps
	e4 := math.Pow(eps, 4)
	p.Rigorous = p.Delta < e4/64 && float64(n) > 64/(e4*p.Delta) && p.Gamma >= 0.5
	return p, nil
}

// gapGamma evaluates the slack term of eq. (1):
//
//	γ = 1 − 1/s − √(2δ(1+ε²)) − (1/s + √(2δ(1+ε²)))/ε².
func gapGamma(s int, delta, eps float64) float64 {
	root := math.Sqrt(2 * delta * (1 + eps*eps))
	inv := 1 / float64(s)
	return 1 - inv - root - (inv+root)/(eps*eps)
}

// UniformNoCollisionProb returns the exact probability that s uniform
// samples from a domain of size n are pairwise distinct:
// Π_{i=1}^{s−1}(1 − i/n). One minus this is the exact completeness error of
// the single-collision tester (the paper bounds it by δ via Markov).
func UniformNoCollisionProb(n, s int) float64 {
	if s <= 1 {
		return 1
	}
	if s > n {
		return 0
	}
	p := 1.0
	for i := 1; i < s; i++ {
		p *= 1 - float64(i)/float64(n)
	}
	return p
}

// FarRejectLowerBound returns a rigorous lower bound on the probability
// that the single-collision tester rejects (sees a collision in) s samples
// from any distribution ε-far from uniform: combining Lemma 3.2
// (χ(µ) > (1+ε²)/n) with Lemma 3.3 ([Wiener]: Pr[no collision] ≤
// e^{−t}(1+t) for t = (s−1)√χ) gives Pr[reject] ≥ 1 − e^{−t}(1+t).
func FarRejectLowerBound(n, s int, eps float64) float64 {
	if s <= 1 {
		return 0
	}
	t := float64(s-1) * math.Sqrt((1+eps*eps)/float64(n))
	lb := 1 - math.Exp(-t)*(1+t)
	if lb < 0 {
		return 0
	}
	return lb
}

// FarRejectPoisson returns the Poisson-approximated collision probability
// for a distribution whose collision probability is exactly (1+ε²)/n — the
// canonical two-bump ε-far instance: 1 − exp(−C(s,2)(1+ε²)/n). This is the
// calibrated (non-worst-case) model used by the experiment harness's
// calibrated parameter mode; see DESIGN.md §3.1.
func FarRejectPoisson(n, s int, eps float64) float64 {
	pairs := float64(s) * float64(s-1) / 2
	return 1 - math.Exp(-pairs*(1+eps*eps)/float64(n))
}

// SingleCollision is the tester A_δ of Section 3.1: draw s samples and
// accept iff they are pairwise distinct. With s(s−1) = 2δn it accepts the
// uniform distribution with probability ≥ 1−δ and accepts any ε-far
// distribution with probability ≤ 1−(1+γε²)δ (Lemma 3.4).
type SingleCollision struct {
	params GapParams
}

// NewSingleCollision builds A_δ for domain size n, completeness error delta
// and distance parameter eps.
func NewSingleCollision(n int, delta, eps float64) (*SingleCollision, error) {
	p, err := SolveGap(n, delta, eps)
	if err != nil {
		return nil, err
	}
	return &SingleCollision{params: p}, nil
}

// Params returns the resolved tester parameters.
func (t *SingleCollision) Params() GapParams { return t.params }

// SampleSize implements Tester.
func (t *SingleCollision) SampleSize() int { return t.params.S }

// Test accepts iff the samples are pairwise distinct.
func (t *SingleCollision) Test(samples []int) bool {
	return t.TestScratch(samples, nil)
}

// TestScratch implements ScratchTester.
func (t *SingleCollision) TestScratch(samples []int, sc *dist.CollisionScratch) bool {
	if len(samples) != t.params.S {
		panic(fmt.Sprintf("tester: got %d samples, want %d", len(samples), t.params.S))
	}
	return !sc.HasCollision(t.params.N, samples)
}

// Name implements Tester.
func (t *SingleCollision) Name() string {
	return fmt.Sprintf("single-collision(s=%d,δ=%.3g)", t.params.S, t.params.Delta)
}

// Amplified runs m independent copies of A_δ′ and rejects iff all m copies
// reject (Section 3.2.1). If each copy is a (δ′, α)-gap tester, the result
// is a (δ′^m, α^m)-gap tester: the gap amplifies geometrically while the
// completeness error shrinks to δ′^m.
type Amplified struct {
	inner *SingleCollision
	m     int
}

// NewAmplified builds the m-repetition amplification of A_deltaPrime.
func NewAmplified(n int, deltaPrime, eps float64, m int) (*Amplified, error) {
	if m < 1 {
		return nil, fmt.Errorf("tester: repetitions m=%d < 1", m)
	}
	inner, err := NewSingleCollision(n, deltaPrime, eps)
	if err != nil {
		return nil, err
	}
	return &Amplified{inner: inner, m: m}, nil
}

// Inner returns the repeated single-collision tester.
func (t *Amplified) Inner() *SingleCollision { return t.inner }

// Repetitions returns m.
func (t *Amplified) Repetitions() int { return t.m }

// CompletenessError returns δ′^m, the probability that the uniform
// distribution is rejected.
func (t *Amplified) CompletenessError() float64 {
	return math.Pow(t.inner.params.Delta, float64(t.m))
}

// Gap returns α^m = (1+γε²)^m, the amplified soundness gap.
func (t *Amplified) Gap() float64 {
	return math.Pow(t.inner.params.Alpha, float64(t.m))
}

// SampleSize implements Tester.
func (t *Amplified) SampleSize() int { return t.m * t.inner.params.S }

// Test partitions the samples into m blocks and rejects iff every block
// contains a collision.
func (t *Amplified) Test(samples []int) bool {
	return t.TestScratch(samples, nil)
}

// TestScratch implements ScratchTester.
func (t *Amplified) TestScratch(samples []int, sc *dist.CollisionScratch) bool {
	if len(samples) != t.SampleSize() {
		panic(fmt.Sprintf("tester: got %d samples, want %d", len(samples), t.SampleSize()))
	}
	s := t.inner.params.S
	n := t.inner.params.N
	for i := 0; i < t.m; i++ {
		if !sc.HasCollision(n, samples[i*s:(i+1)*s]) {
			return true // some block saw no collision ⇒ accept
		}
	}
	return false
}

// Name implements Tester.
func (t *Amplified) Name() string {
	return fmt.Sprintf("amplified(m=%d,%s)", t.m, t.inner.Name())
}

// CollisionCounting is the classical centralized baseline [Paninski 2008;
// Goldreich–Ron]: draw s = Θ(√n/ε²) samples, count colliding pairs, and
// accept iff the count is below a threshold placed between the uniform
// expectation C(s,2)/n and the ε-far expectation C(s,2)(1+ε²)/n.
type CollisionCounting struct {
	n         int
	s         int
	eps       float64
	threshold float64
}

// BaselineSampleSize returns the baseline's sample count c·√n/ε² (c = 4,
// calibrated so the tester's error is ≤ 1/3 across the experiment regimes).
func BaselineSampleSize(n int, eps float64) int {
	s := int(math.Ceil(4 * math.Sqrt(float64(n)) / (eps * eps)))
	if s < 2 {
		s = 2
	}
	return s
}

// NewCollisionCounting builds the baseline tester for domain size n and
// distance eps, using s samples. If s <= 0, BaselineSampleSize is used.
func NewCollisionCounting(n int, eps float64, s int) (*CollisionCounting, error) {
	if n < 2 {
		return nil, fmt.Errorf("tester: domain size %d too small", n)
	}
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("tester: eps %v outside (0, 2]", eps)
	}
	if s <= 0 {
		s = BaselineSampleSize(n, eps)
	}
	if s < 2 {
		return nil, fmt.Errorf("tester: sample size %d too small", s)
	}
	pairs := float64(s) * float64(s-1) / 2
	threshold := pairs * (1 + eps*eps/2) / float64(n)
	return &CollisionCounting{n: n, s: s, eps: eps, threshold: threshold}, nil
}

// Threshold returns the collision-count acceptance threshold.
func (t *CollisionCounting) Threshold() float64 { return t.threshold }

// SampleSize implements Tester.
func (t *CollisionCounting) SampleSize() int { return t.s }

// Test counts colliding pairs and accepts iff the count is at most the
// threshold.
func (t *CollisionCounting) Test(samples []int) bool {
	return t.TestScratch(samples, nil)
}

// TestScratch implements ScratchTester.
func (t *CollisionCounting) TestScratch(samples []int, sc *dist.CollisionScratch) bool {
	if len(samples) != t.s {
		panic(fmt.Sprintf("tester: got %d samples, want %d", len(samples), t.s))
	}
	return float64(sc.CountCollisions(t.n, samples)) <= t.threshold
}

// Name implements Tester.
func (t *CollisionCounting) Name() string {
	return fmt.Sprintf("collision-counting(s=%d)", t.s)
}

// EstimateRejectProb runs t on trials independent sample sets from d and
// returns the empirical rejection probability. Sampling goes through the
// batch kernels and, for ScratchTesters, the statistic reuses one
// allocation-free scratch across all trials.
func EstimateRejectProb(t Tester, d dist.Distribution, trials int, r *rng.RNG) float64 {
	rejects := 0
	buf := make([]int, t.SampleSize())
	st, scratchable := t.(ScratchTester)
	var sc *dist.CollisionScratch
	if scratchable {
		sc = dist.NewCollisionScratch()
	}
	for i := 0; i < trials; i++ {
		dist.SampleInto(d, buf, r)
		accept := false
		if scratchable {
			accept = st.TestScratch(buf, sc)
		} else {
			accept = t.Test(buf)
		}
		if !accept {
			rejects++
		}
	}
	return float64(rejects) / float64(trials)
}
