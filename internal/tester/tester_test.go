package tester

import (
	"math"
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

func TestSolveGapAlgebra(t *testing.T) {
	// s must satisfy s(s−1) ≈ 2δn, i.e. the realized Delta must be close to
	// the requested delta whenever s is reasonably large.
	for _, tt := range []struct {
		n     int
		delta float64
	}{
		{n: 1 << 20, delta: 0.01},
		{n: 1 << 20, delta: 0.001},
		{n: 1 << 16, delta: 0.05},
		{n: 1 << 24, delta: 1e-4},
	} {
		p, err := SolveGap(tt.n, tt.delta, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if p.S < 2 {
			t.Fatalf("n=%d δ=%v: s=%d < 2", tt.n, tt.delta, p.S)
		}
		rel := math.Abs(p.Delta-tt.delta) / tt.delta
		if p.S > 20 && rel > 0.25 {
			t.Errorf("n=%d δ=%v: realized δ=%v deviates %.0f%%", tt.n, tt.delta, p.Delta, rel*100)
		}
	}
}

func TestSolveGapScaling(t *testing.T) {
	// s = Θ(√(δn)): quadrupling n should roughly double s.
	p1, err := SolveGap(1<<20, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SolveGap(1<<22, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(p2.S) / float64(p1.S)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("4×n changed s by %vx, want ~2x", ratio)
	}
}

func TestSolveGapErrors(t *testing.T) {
	if _, err := SolveGap(1, 0.1, 0.5); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := SolveGap(100, 0, 0.5); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := SolveGap(100, 1, 0.5); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := SolveGap(100, 0.1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := SolveGap(100, 0.1, 3); err == nil {
		t.Error("eps=3 accepted")
	}
}

func TestSolveGapRigorousFlag(t *testing.T) {
	// Large n, tiny delta, large eps: rigorous conditions should hold.
	p, err := SolveGap(1<<26, 1e-4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Rigorous {
		t.Errorf("n=2^26, δ=1e-4, ε=1: expected rigorous regime (γ=%v)", p.Gamma)
	}
	// Small eps with moderate delta: conditions must fail.
	p, err = SolveGap(1<<16, 0.01, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rigorous {
		t.Error("δ=0.01, ε=0.1: rigorous flag should be false (δ ≥ ε⁴/64)")
	}
}

func TestGammaApproachesOne(t *testing.T) {
	// Eq. (1): γ → 1 as δ → 0 with n → ∞ and fixed ε.
	prev := -math.MaxFloat64
	for _, n := range []int{1 << 16, 1 << 20, 1 << 24, 1 << 28} {
		p, err := SolveGap(n, 1e-5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Gamma < prev-0.05 {
			t.Fatalf("γ decreased: %v after %v", p.Gamma, prev)
		}
		prev = p.Gamma
	}
	if prev < 0.9 || prev > 1 {
		t.Fatalf("γ = %v at n=2^28, want in [0.9, 1]", prev)
	}
}

func TestSingleCollisionCompleteness(t *testing.T) {
	// On the uniform distribution, Pr[reject] ≤ δ (Lemma 3.4(1)).
	n := 1 << 18
	sc, err := NewSingleCollision(n, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(100)
	const trials = 20000
	rej := EstimateRejectProb(sc, dist.NewUniform(n), trials, r)
	delta := sc.Params().Delta
	// Allow 5σ of sampling noise above δ.
	slack := 5 * math.Sqrt(delta*(1-delta)/trials)
	if rej > delta+slack {
		t.Fatalf("uniform rejected with prob %v > δ=%v (+%v slack)", rej, delta, slack)
	}
}

func TestSingleCollisionSoundnessGap(t *testing.T) {
	// On an ε-far distribution, Pr[reject] ≥ (1+γε²)δ when γ is meaningful.
	n := 1 << 18
	eps := 1.0
	sc, err := NewSingleCollision(n, 0.05, eps)
	if err != nil {
		t.Fatal(err)
	}
	p := sc.Params()
	far := dist.NewTwoBump(n, eps, 7)
	r := rng.New(200)
	const trials = 40000
	rejFar := EstimateRejectProb(sc, far, trials, r)
	rejUnif := EstimateRejectProb(sc, dist.NewUniform(n), trials, r)
	// The measured far-rejection probability must exceed the measured
	// uniform-rejection probability by a factor that reflects the gap. We
	// check against the guaranteed (1+γε²) with sampling slack when γ > 0,
	// and in all cases that the far instance is rejected strictly more often.
	if rejFar <= rejUnif {
		t.Fatalf("no separation: far %v ≤ uniform %v", rejFar, rejUnif)
	}
	if p.Gamma > 0 {
		want := (1 + p.Gamma*eps*eps) * p.Delta
		slack := 5 * math.Sqrt(want/trials)
		if rejFar < want-slack {
			t.Errorf("far rejection %v below guaranteed %v − %v", rejFar, want, slack)
		}
	}
}

func TestSingleCollisionTestPanicsOnWrongSize(t *testing.T) {
	sc, err := NewSingleCollision(1000, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong sample count did not panic")
		}
	}()
	sc.Test([]int{1, 2, 3})
}

func TestAmplifiedGapAlgebra(t *testing.T) {
	n := 1 << 20
	am, err := NewAmplified(n, 0.01, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	inner := am.Inner().Params()
	if got, want := am.CompletenessError(), math.Pow(inner.Delta, 3); math.Abs(got-want) > 1e-15 {
		t.Errorf("completeness error %v, want %v", got, want)
	}
	if got, want := am.Gap(), math.Pow(inner.Alpha, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("gap %v, want %v", got, want)
	}
	if got, want := am.SampleSize(), 3*inner.S; got != want {
		t.Errorf("sample size %d, want %d", got, want)
	}
}

func TestAmplifiedRejectsIffAllBlocksCollide(t *testing.T) {
	am, err := NewAmplified(1000, 0.05, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := am.Inner().SampleSize()
	mk := func(blockHasCollision ...bool) []int {
		var out []int
		next := 0
		for _, col := range blockHasCollision {
			block := make([]int, s)
			for i := range block {
				block[i] = next
				next++
			}
			if col {
				block[s-1] = block[0]
			}
			out = append(out, block...)
		}
		return out
	}
	if am.Test(mk(true, true)) {
		t.Error("all blocks collide: should reject")
	}
	if !am.Test(mk(true, false)) {
		t.Error("one clean block: should accept")
	}
	if !am.Test(mk(false, false)) {
		t.Error("all clean: should accept")
	}
}

func TestAmplifiedErrors(t *testing.T) {
	if _, err := NewAmplified(1000, 0.05, 1, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewAmplified(1, 0.05, 1, 2); err == nil {
		t.Error("tiny domain accepted")
	}
}

func TestAmplifiedEmpiricalGap(t *testing.T) {
	// The m-fold amplification should multiply the rejection-probability
	// ratio between far and uniform instances.
	n, eps, m := 1<<16, 1.0, 2
	am, err := NewAmplified(n, 0.2, eps, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	const trials = 60000
	far := dist.NewTwoBump(n, eps, 11)
	rejFar := EstimateRejectProb(am, far, trials, r)
	rejUnif := EstimateRejectProb(am, dist.NewUniform(n), trials, r)
	if rejUnif == 0 {
		t.Skip("uniform rejection too rare to measure at this trial count")
	}
	ratio := rejFar / rejUnif
	inner := am.Inner().Params()
	// Expected ratio ≈ α², but α here is the *guaranteed lower bound*; the
	// realized ratio should be at least α²'s guarantee minus noise. Use a
	// lenient floor: the amplified ratio must exceed the single-copy ratio.
	if ratio < inner.Alpha {
		t.Errorf("amplified ratio %v below single-copy alpha %v", ratio, inner.Alpha)
	}
}

func TestCollisionCountingBaseline(t *testing.T) {
	n, eps := 1<<14, 0.8
	cc, err := NewCollisionCounting(n, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(55)
	const trials = 300
	rejUnif := EstimateRejectProb(cc, dist.NewUniform(n), trials, r)
	rejFar := EstimateRejectProb(cc, dist.NewTwoBump(n, eps, 3), trials, r)
	if rejUnif > 1.0/3 {
		t.Errorf("baseline rejects uniform with prob %v > 1/3", rejUnif)
	}
	if rejFar < 2.0/3 {
		t.Errorf("baseline rejects far instance with prob %v < 2/3", rejFar)
	}
}

func TestCollisionCountingErrors(t *testing.T) {
	if _, err := NewCollisionCounting(1, 0.5, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewCollisionCounting(100, 0, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewCollisionCounting(100, 2.5, 0); err == nil {
		t.Error("eps>2 accepted")
	}
}

func TestBaselineSampleSizeScaling(t *testing.T) {
	// Θ(√n/ε²): 4×n doubles s; halving ε quadruples s.
	s1 := BaselineSampleSize(1<<16, 1)
	s2 := BaselineSampleSize(1<<18, 1)
	if r := float64(s2) / float64(s1); r < 1.9 || r > 2.1 {
		t.Errorf("n scaling ratio %v, want ~2", r)
	}
	s3 := BaselineSampleSize(1<<16, 0.5)
	if r := float64(s3) / float64(s1); r < 3.9 || r > 4.1 {
		t.Errorf("eps scaling ratio %v, want ~4", r)
	}
}

func TestScratchTestMatchesTest(t *testing.T) {
	// TestScratch(samples, sc) must agree with Test(samples) for every
	// scratch-aware tester, across repeated scratch reuse.
	n := 1 << 10
	sc1, err := NewSingleCollision(n, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	am, err := NewAmplified(n, 0.3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCollisionCounting(n, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := NewDistinctCount(n, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	scratch := dist.NewCollisionScratch()
	for _, tc := range []ScratchTester{sc1, am, cc, dc} {
		d := dist.NewTwoBump(n, 1, 5)
		for trial := 0; trial < 50; trial++ {
			samples := dist.SampleN(d, tc.SampleSize(), r)
			if got, want := tc.TestScratch(samples, scratch), tc.Test(samples); got != want {
				t.Fatalf("%s trial %d: TestScratch=%v Test=%v", tc.Name(), trial, got, want)
			}
		}
	}
}

func TestHasCollisionDoesNotMutate(t *testing.T) {
	xs := []int{3, 1, 2, 1}
	dist.HasCollision(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 || xs[3] != 1 {
		t.Fatal("HasCollision mutated input")
	}
}

func TestBirthdayParadoxSanity(t *testing.T) {
	// With s = √(2n·δ) and δ = 0.5 the collision probability on uniform
	// should be near 1 − e^(−1/2) ≈ 0.39 (birthday bound).
	n := 1 << 16
	sc, err := NewSingleCollision(n, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	got := EstimateRejectProb(sc, dist.NewUniform(n), 20000, r)
	// Markov gives Pr ≤ δ; Poissonization says Pr ≈ 1−e^{−δ} = 0.33.
	want := 1 - math.Exp(-sc.Params().Delta)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("collision prob %v, want ≈ %v", got, want)
	}
}

func TestWienerBoundLemma33(t *testing.T) {
	// Lemma 3.3 ([Wiener]): Pr[no collision] ≤ e^{−(s−1)√χ}(1+(s−1)√χ).
	// Verify empirically on uniform, where χ = 1/n.
	n := 1 << 12
	sc, err := NewSingleCollision(n, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	const trials = 30000
	acc := 1 - EstimateRejectProb(sc, dist.NewUniform(n), trials, r)
	x := float64(sc.Params().S-1) / math.Sqrt(float64(n))
	bound := math.Exp(-x) * (1 + x)
	slack := 5 / math.Sqrt(trials)
	if acc > bound+slack {
		t.Fatalf("Pr[no collision] = %v exceeds Wiener bound %v", acc, bound)
	}
}

func BenchmarkSingleCollisionTest(b *testing.B) {
	n := 1 << 20
	sc, err := NewSingleCollision(n, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	samples := dist.SampleN(dist.NewUniform(n), sc.SampleSize(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Test(samples)
	}
}

func BenchmarkCollisionCountingTest(b *testing.B) {
	n := 1 << 16
	cc, err := NewCollisionCounting(n, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	samples := dist.SampleN(dist.NewUniform(n), cc.SampleSize(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cc.Test(samples)
	}
}
