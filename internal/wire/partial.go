// Partial-verdict frames: the aggregation tier's wire protocol. An
// aggregator terminates a window of node connections, folds their votes
// into per-trial partial sums, and forwards those sums upstream as
// PartialVerdict frames — the monoid elements whose merge at the root is
// exactly the flat-star tally. AggHello is the aggregator's handshake,
// announcing the node-ID window it speaks for.
//
// Raw PartialVerdict payload layout (varints are minimal LEB128):
//
//	[agg u32 BE]          sender's aggregator ID, echoed from AggHello
//	[flags u8]            bit0 = sketch mode, other bits zero
//	[count uvarint]       1 .. MaxPartialEntries
//	[trial column]        first value uvarint, then zigzag-uvarint deltas
//	[votes column]        same encoding (votes seen for the trial, ≥ 1)
//	[rejects column]      same encoding (≤ the votes column entry)
//	sketch mode:
//	  [samples column]    u64 sums, wrapping zigzag deltas
//	  [collisions column] same encoding
//
// Like VoteBatch, the encoding is canonical and bijective: minimal
// varints, zero spare flag bits, per-entry validity (votes ≥ 1,
// rejects ≤ votes) and exact payload length are all enforced at decode,
// so every decodable frame re-encodes to the identical bytes —
// FuzzPartialVerdictRoundTrip pins this. Both types are only legal at
// PartialVersion and flag their optional 16-byte trace suffix through the
// type byte's high bit, exactly like the batch types at v3.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MaxPartialEntries caps the per-trial entries one PartialVerdict may
// carry. Worst-case encoding (adversarial values, sketch mode, ≤ 35
// bytes per entry) stays under MaxBatchFrameBytes with room for the
// trace suffix.
const MaxPartialEntries = 2048

// maxPartialPayloadBytes bounds a partial payload so the full frame body
// (version + type + payload + trace suffix) fits MaxBatchFrameBytes.
const maxPartialPayloadBytes = MaxBatchFrameBytes - 2 - traceContextBytes

// AggHello opens an aggregator's upstream session: it announces the
// contiguous node-ID window [Lo, Hi) whose votes the sender terminates
// and folds. The receiver validates K/Trials like a node Hello, checks
// the window against its own, and keys partial-sum dedup on Agg.
type AggHello struct {
	// Agg is the sender's aggregator ID, unique among the receiver's
	// aggregator children.
	Agg uint32
	// K and Trials echo the session shape, validated like Hello.
	K      uint32
	Trials uint32
	// Lo and Hi bound the node-ID window [Lo, Hi) this aggregator serves.
	Lo uint32
	Hi uint32
}

// PartialEntry is one trial's folded sums inside a PartialVerdict.
type PartialEntry struct {
	// Trial indexes the Monte-Carlo trial in [0, Trials).
	Trial uint32
	// Votes counts the distinct (trial, node) votes folded into this
	// entry — at least 1, at most the width of the sender's window.
	Votes uint32
	// Rejects counts the rejecting votes among them (≤ Votes). Both
	// decision rules fold through this one sum: threshold compares the
	// merged total against T, and AND accepts iff it stays zero.
	Rejects uint32
	// Samples and Collisions are the sketch-mode sums of the folded
	// nodes' raw collision statistics; zero in vote mode.
	Samples    uint64
	Collisions uint64
}

// PartialVerdict carries an aggregator's per-trial partial sums upstream.
// The receiver merges each entry into its own tally exactly once per
// (trial, Agg) — retransmitted frames are deduplicated, so retries are
// idempotent.
type PartialVerdict struct {
	// Agg echoes the sender's AggHello identity.
	Agg uint32
	// Sketch marks sketch-mode sums (samples/collisions columns present).
	Sketch bool
	// Entries are the per-trial sums, at most MaxPartialEntries.
	Entries []PartialEntry
}

func (AggHello) Type() byte       { return TypeAggHello }
func (PartialVerdict) Type() byte { return TypePartialVerdict }

func (AggHello) payloadSize() int { return 20 }

func (h AggHello) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, h.Agg)
	dst = binary.BigEndian.AppendUint32(dst, h.K)
	dst = binary.BigEndian.AppendUint32(dst, h.Trials)
	dst = binary.BigEndian.AppendUint32(dst, h.Lo)
	return binary.BigEndian.AppendUint32(dst, h.Hi)
}

func (h *AggHello) decodePayload(p []byte) error {
	h.Agg = binary.BigEndian.Uint32(p[0:4])
	h.K = binary.BigEndian.Uint32(p[4:8])
	h.Trials = binary.BigEndian.Uint32(p[8:12])
	h.Lo = binary.BigEndian.Uint32(p[12:16])
	h.Hi = binary.BigEndian.Uint32(p[16:20])
	if h.Lo >= h.Hi {
		return fmt.Errorf("%w: agghello window [%d, %d)", ErrFrameSize, h.Lo, h.Hi)
	}
	return nil
}

// Partial column accessors for the shared delta codec. Columns are
// encoded as wrapping uint64 deltas (first value plain, then
// zigzag(v-prev) with mod-2⁶⁴ arithmetic), which is bijective over the
// full u64 domain; u32 columns additionally bound every reconstructed
// value.
func appendPartialColumn(dst []byte, es []PartialEntry, get func(*PartialEntry) uint64) []byte {
	prev := get(&es[0])
	dst = binary.AppendUvarint(dst, prev)
	for i := 1; i < len(es); i++ {
		v := get(&es[i])
		dst = binary.AppendUvarint(dst, zigzag(int64(v-prev)))
		prev = v
	}
	return dst
}

func partialColumnSize(es []PartialEntry, get func(*PartialEntry) uint64) int {
	prev := get(&es[0])
	n := uvarintLen(prev)
	for i := 1; i < len(es); i++ {
		v := get(&es[i])
		n += uvarintLen(zigzag(int64(v - prev)))
		prev = v
	}
	return n
}

// decodePartialColumn fills one field of es from a delta column at
// p[off:], bounding every reconstructed value by maxVal.
func decodePartialColumn(p []byte, off int, es []PartialEntry, set func(*PartialEntry, uint64), maxVal uint64) (int, error) {
	v, off, err := readUvarint(p, off)
	if err != nil {
		return 0, err
	}
	if v > maxVal {
		return 0, fmt.Errorf("%w: partial column value %d out of range", ErrFrameSize, v)
	}
	set(&es[0], v)
	prev := v
	for i := 1; i < len(es); i++ {
		u, noff, err := readUvarint(p, off)
		if err != nil {
			return 0, err
		}
		val := prev + uint64(unzigzag(u)) // wrapping: one delta per (prev, val) pair
		if val > maxVal {
			return 0, fmt.Errorf("%w: partial column value %d out of range", ErrFrameSize, val)
		}
		set(&es[i], val)
		prev = val
		off = noff
	}
	return off, nil
}

func getTrial(e *PartialEntry) uint64        { return uint64(e.Trial) }
func getVotes(e *PartialEntry) uint64        { return uint64(e.Votes) }
func getRejects(e *PartialEntry) uint64      { return uint64(e.Rejects) }
func getSamples(e *PartialEntry) uint64      { return e.Samples }
func getCollisions(e *PartialEntry) uint64   { return e.Collisions }
func setTrial(e *PartialEntry, v uint64)     { e.Trial = uint32(v) }
func setVotes(e *PartialEntry, v uint64)     { e.Votes = uint32(v) }
func setRejects(e *PartialEntry, v uint64)   { e.Rejects = uint32(v) }
func setSamples(e *PartialEntry, v uint64)   { e.Samples = v }
func setCollision(e *PartialEntry, v uint64) { e.Collisions = v }

func (p PartialVerdict) payloadSize() int {
	n := 4 + 1 + uvarintLen(uint64(len(p.Entries)))
	n += partialColumnSize(p.Entries, getTrial)
	n += partialColumnSize(p.Entries, getVotes)
	n += partialColumnSize(p.Entries, getRejects)
	if p.Sketch {
		n += partialColumnSize(p.Entries, getSamples)
		n += partialColumnSize(p.Entries, getCollisions)
	}
	return n
}

func (p PartialVerdict) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, p.Agg)
	flags := byte(0)
	if p.Sketch {
		flags = 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(p.Entries)))
	dst = appendPartialColumn(dst, p.Entries, getTrial)
	dst = appendPartialColumn(dst, p.Entries, getVotes)
	dst = appendPartialColumn(dst, p.Entries, getRejects)
	if p.Sketch {
		dst = appendPartialColumn(dst, p.Entries, getSamples)
		dst = appendPartialColumn(dst, p.Entries, getCollisions)
	}
	return dst
}

func (p *PartialVerdict) decodePayload(b []byte) error {
	if len(b) < 6 {
		return fmt.Errorf("%w: %d-byte partial payload", ErrFrameSize, len(b))
	}
	p.Agg = binary.BigEndian.Uint32(b[0:4])
	flags := b[4]
	if flags&^1 != 0 {
		return fmt.Errorf("%w: partial flags %#x", ErrFrameSize, flags)
	}
	p.Sketch = flags&1 != 0
	cnt, off, err := readUvarint(b, 5)
	if err != nil {
		return err
	}
	if cnt == 0 {
		return fmt.Errorf("%w: empty partial verdict", ErrFrameSize)
	}
	if cnt > MaxPartialEntries {
		return fmt.Errorf("%w: partial of %d entries (limit %d)", ErrOversize, cnt, MaxPartialEntries)
	}
	count := int(cnt)
	if cap(p.Entries) < count {
		p.Entries = make([]PartialEntry, count)
	} else {
		p.Entries = p.Entries[:count]
		// Scratch reuse: sketch sums from a previous decode must not leak
		// into a vote-mode frame.
		clear(p.Entries)
	}
	if off, err = decodePartialColumn(b, off, p.Entries, setTrial, math.MaxUint32); err != nil {
		return err
	}
	if off, err = decodePartialColumn(b, off, p.Entries, setVotes, math.MaxUint32); err != nil {
		return err
	}
	if off, err = decodePartialColumn(b, off, p.Entries, setRejects, math.MaxUint32); err != nil {
		return err
	}
	if p.Sketch {
		if off, err = decodePartialColumn(b, off, p.Entries, setSamples, math.MaxUint64); err != nil {
			return err
		}
		if off, err = decodePartialColumn(b, off, p.Entries, setCollision, math.MaxUint64); err != nil {
			return err
		}
	}
	if off != len(b) {
		return fmt.Errorf("%w: %d trailing partial bytes", ErrFrameSize, len(b)-off)
	}
	for i := range p.Entries {
		e := &p.Entries[i]
		if e.Votes == 0 {
			return fmt.Errorf("%w: partial entry for trial %d with zero votes", ErrFrameSize, e.Trial)
		}
		if e.Rejects > e.Votes {
			return fmt.Errorf("%w: partial entry with %d rejects over %d votes", ErrFrameSize, e.Rejects, e.Votes)
		}
	}
	return nil
}

// AppendPartial appends p's wire encoding carrying tc to dst, enforcing
// the entry-count and payload-size caps the decoder will apply. Partial
// payloads are never block-compressed: a typical entry is a handful of
// delta varints, far below MinCompressibleSize per entry.
func AppendPartial(dst []byte, p *PartialVerdict, tc TraceContext) ([]byte, error) {
	if len(p.Entries) == 0 {
		return dst, fmt.Errorf("wire: empty partial verdict")
	}
	if len(p.Entries) > MaxPartialEntries {
		return dst, fmt.Errorf("%w: partial of %d entries (limit %d)", ErrOversize, len(p.Entries), MaxPartialEntries)
	}
	if size := p.payloadSize(); size > maxPartialPayloadBytes {
		return dst, fmt.Errorf("%w: %d-byte partial payload (limit %d)", ErrOversize, size, maxPartialPayloadBytes)
	}
	return AppendTraced(dst, p, tc), nil
}

// decodePartialBody parses a PartialVersion frame body: trace flag in the
// type byte, AggHello or PartialVerdict payload, optional trace suffix.
func decodePartialBody(body []byte, sc *DecodeScratch) (Frame, TraceContext, error) {
	t := body[1]
	base := t &^ traceFlag
	if base != TypeAggHello && base != TypePartialVerdict {
		if base >= TypeHello && base <= TypeSessionReport {
			// Every type has exactly one valid version; re-encoding another
			// type at v4 would break the canonical-bytes invariant.
			return nil, TraceContext{}, fmt.Errorf("%w: type %d not valid at v%d", ErrVersion, base, PartialVersion)
		}
		return nil, TraceContext{}, fmt.Errorf("%w: type %d", ErrUnknownType, base)
	}
	if len(body) > FrameCap(base) {
		return nil, TraceContext{}, fmt.Errorf("%w: %d-byte %s frame (limit %d)",
			ErrOversize, len(body), TypeName(base), FrameCap(base))
	}
	payload := body[2:]
	var tc TraceContext
	if t&traceFlag != 0 {
		if len(payload) < traceContextBytes {
			return nil, TraceContext{}, fmt.Errorf("%w: traced %s frame with %d-byte body",
				ErrFrameSize, TypeName(base), len(body))
		}
		tail := payload[len(payload)-traceContextBytes:]
		tc.Trace = binary.BigEndian.Uint64(tail[:8])
		tc.Span = binary.BigEndian.Uint64(tail[8:])
		if tc.Trace == 0 {
			return nil, TraceContext{}, fmt.Errorf("%w: zero trace ID on a v%d frame", ErrTraceContext, PartialVersion)
		}
		payload = payload[:len(payload)-traceContextBytes]
	}
	f, err := decodePartialPayload(base, payload, sc)
	if err != nil {
		return nil, TraceContext{}, err
	}
	return f, tc, nil
}

// decodePartialPayload parses an AggHello or PartialVerdict payload
// (shared by the v4 and v5 decode paths).
func decodePartialPayload(base byte, payload []byte, sc *DecodeScratch) (Frame, error) {
	if base == TypeAggHello {
		var h *AggHello
		if sc != nil {
			h = &sc.aggHello
		} else {
			h = &AggHello{}
		}
		if len(payload) != h.payloadSize() {
			return nil, fmt.Errorf("%w: agghello payload %d bytes, want %d",
				ErrFrameSize, len(payload), h.payloadSize())
		}
		if err := h.decodePayload(payload); err != nil {
			return nil, err
		}
		return h, nil
	}
	var pv *PartialVerdict
	if sc != nil {
		pv = &sc.partial
	} else {
		pv = &PartialVerdict{}
	}
	if err := pv.decodePayload(payload); err != nil {
		return nil, err
	}
	return pv, nil
}
