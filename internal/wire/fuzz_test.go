package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip drives the codec from both ends. Structured inputs
// build one frame of every type from the fuzzed fields and assert the
// encode→decode round trip is lossless through both Decode and Reader;
// the raw tail bytes are then decoded as-is to assert adversarial input
// never panics and only ever fails with the codec's typed errors —
// truncated, oversized, bad-version, unknown-type and mis-sized frames
// all degrade to errors, exactly as a referee facing a hostile peer
// requires.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0), false, []byte{})
	f.Add(uint32(7), uint32(2000), uint32(60), uint32(3), true, Append(nil, &Vote{Trial: 1, Node: 2, Reject: true}))
	f.Add(uint32(1<<31), uint32(1), uint32(1<<20), uint32(9), false, []byte{0, 0, 0, 200, 1, 2})
	f.Add(uint32(3), uint32(4), uint32(5), uint32(6), true, []byte{0, 0, 0, 2, 2, 2})
	f.Add(uint32(0), uint32(1), uint32(2), uint32(3), false, []byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, a, b, c, d uint32, flag bool, raw []byte) {
		frames := []Frame{
			&Hello{Node: a, K: b, Trials: c},
			&Vote{Trial: a, Node: b, Reject: flag},
			&Sketch{Trial: a, Node: b, Samples: c, Collisions: d},
			&Done{Node: d},
			&Verdict{Trials: a, Accepts: b, Missing: c},
		}
		// A nonzero trace ID derived from the fuzzed fields; every frame is
		// exercised both untraced (v1) and traced (v2).
		tc := TraceContext{Trace: uint64(a)<<32 | uint64(b) | 1, Span: uint64(c)<<32 | uint64(d)}
		var stream []byte
		for _, fr := range frames {
			enc := Append(nil, fr)
			if len(enc) != EncodedSize(fr) {
				t.Fatalf("%T: encoded %d bytes, EncodedSize %d", fr, len(enc), EncodedSize(fr))
			}
			if len(enc)-4 > MaxFrameBytes {
				t.Fatalf("%T: frame body %d bytes exceeds MaxFrameBytes", fr, len(enc)-4)
			}
			got, n, err := Decode(enc)
			if err != nil {
				t.Fatalf("%T: decode own encoding: %v", fr, err)
			}
			if n != len(enc) {
				t.Fatalf("%T: consumed %d of %d", fr, n, len(enc))
			}
			if !reflect.DeepEqual(got, fr) {
				t.Fatalf("round trip: got %#v, want %#v", got, fr)
			}
			stream = append(stream, enc...)

			traced := AppendTraced(nil, fr, tc)
			if len(traced) != EncodedSizeTraced(fr, tc) {
				t.Fatalf("%T: traced encoded %d bytes, EncodedSizeTraced %d", fr, len(traced), EncodedSizeTraced(fr, tc))
			}
			if len(traced)-4 > MaxFrameBytes {
				t.Fatalf("%T: traced frame body %d bytes exceeds MaxFrameBytes", fr, len(traced)-4)
			}
			gotT, gotTC, n, err := DecodeTraced(traced)
			if err != nil {
				t.Fatalf("%T: decode own traced encoding: %v", fr, err)
			}
			if n != len(traced) || gotTC != tc || !reflect.DeepEqual(gotT, fr) {
				t.Fatalf("traced round trip: got (%#v, %+v, %d), want (%#v, %+v, %d)", gotT, gotTC, n, fr, tc, len(traced))
			}
			stream = append(stream, traced...)
		}
		// The same frames concatenated must stream-decode in order,
		// alternating untraced and traced copies.
		r := NewReader(bytes.NewReader(stream))
		for i, want := range frames {
			got, err := r.ReadFrame()
			if err != nil {
				t.Fatalf("stream frame %d: %v", i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stream frame %d: got %#v, want %#v", i, got, want)
			}
			gotT, gotTC, err := r.ReadFrameTraced()
			if err != nil {
				t.Fatalf("stream traced frame %d: %v", i, err)
			}
			if !reflect.DeepEqual(gotT, want) || gotTC != tc {
				t.Fatalf("stream traced frame %d: got (%#v, %+v)", i, gotT, gotTC)
			}
		}
		if _, err := r.ReadFrame(); err != io.EOF {
			t.Fatalf("stream end: err = %v, want io.EOF", err)
		}

		// Adversarial path: arbitrary bytes must decode to a frame or a
		// typed codec error, never panic, and consumed bytes must stay in
		// bounds.
		checkErr := func(err error) {
			if err == nil || err == io.EOF {
				return
			}
			for _, known := range []error{ErrTruncated, ErrOversize, ErrVersion, ErrUnknownType, ErrFrameSize, ErrTraceContext} {
				if errors.Is(err, known) {
					return
				}
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		fr, ftc, n, err := DecodeTraced(raw)
		if err == nil {
			if fr == nil || n < 4 || n > len(raw) {
				t.Fatalf("Decode(raw) = (%v, %d, nil) on %d bytes", fr, n, len(raw))
			}
			// Whatever decoded must re-encode to the exact consumed bytes:
			// the codec is canonical (untraced frames are always v1, traced
			// frames always v2 with a nonzero trace ID).
			if re := AppendTraced(nil, fr, ftc); !bytes.Equal(re, raw[:n]) {
				t.Fatalf("re-encode mismatch: %x vs %x", re, raw[:n])
			}
		} else {
			checkErr(err)
		}
		rr := NewReader(bytes.NewReader(raw))
		for {
			_, err := rr.ReadFrame()
			if err != nil {
				checkErr(err)
				break
			}
		}
	})
}
