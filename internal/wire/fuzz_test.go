package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip drives the codec from both ends. Structured inputs
// build one frame of every type from the fuzzed fields and assert the
// encode→decode round trip is lossless through both Decode and Reader;
// the raw tail bytes are then decoded as-is to assert adversarial input
// never panics and only ever fails with the codec's typed errors —
// truncated, oversized, bad-version, unknown-type and mis-sized frames
// all degrade to errors, exactly as a referee facing a hostile peer
// requires.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0), false, []byte{})
	f.Add(uint32(7), uint32(2000), uint32(60), uint32(3), true, Append(nil, &Vote{Trial: 1, Node: 2, Reject: true}))
	f.Add(uint32(1<<31), uint32(1), uint32(1<<20), uint32(9), false, []byte{0, 0, 0, 200, 1, 2})
	f.Add(uint32(3), uint32(4), uint32(5), uint32(6), true, []byte{0, 0, 0, 2, 2, 2})
	f.Add(uint32(0), uint32(1), uint32(2), uint32(3), false, []byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, a, b, c, d uint32, flag bool, raw []byte) {
		frames := []Frame{
			&Hello{Node: a, K: b, Trials: c},
			&Vote{Trial: a, Node: b, Reject: flag},
			&Sketch{Trial: a, Node: b, Samples: c, Collisions: d},
			&Done{Node: d},
			&Verdict{Trials: a, Accepts: b, Missing: c},
		}
		// A nonzero trace ID derived from the fuzzed fields; every frame is
		// exercised both untraced (v1) and traced (v2).
		tc := TraceContext{Trace: uint64(a)<<32 | uint64(b) | 1, Span: uint64(c)<<32 | uint64(d)}
		var stream []byte
		for _, fr := range frames {
			enc := Append(nil, fr)
			if len(enc) != EncodedSize(fr) {
				t.Fatalf("%T: encoded %d bytes, EncodedSize %d", fr, len(enc), EncodedSize(fr))
			}
			if len(enc)-4 > MaxFrameBytes {
				t.Fatalf("%T: frame body %d bytes exceeds MaxFrameBytes", fr, len(enc)-4)
			}
			got, n, err := Decode(enc)
			if err != nil {
				t.Fatalf("%T: decode own encoding: %v", fr, err)
			}
			if n != len(enc) {
				t.Fatalf("%T: consumed %d of %d", fr, n, len(enc))
			}
			if !reflect.DeepEqual(got, fr) {
				t.Fatalf("round trip: got %#v, want %#v", got, fr)
			}
			stream = append(stream, enc...)

			traced := AppendTraced(nil, fr, tc)
			if len(traced) != EncodedSizeTraced(fr, tc) {
				t.Fatalf("%T: traced encoded %d bytes, EncodedSizeTraced %d", fr, len(traced), EncodedSizeTraced(fr, tc))
			}
			if len(traced)-4 > MaxFrameBytes {
				t.Fatalf("%T: traced frame body %d bytes exceeds MaxFrameBytes", fr, len(traced)-4)
			}
			gotT, gotTC, n, err := DecodeTraced(traced)
			if err != nil {
				t.Fatalf("%T: decode own traced encoding: %v", fr, err)
			}
			if n != len(traced) || gotTC != tc || !reflect.DeepEqual(gotT, fr) {
				t.Fatalf("traced round trip: got (%#v, %+v, %d), want (%#v, %+v, %d)", gotT, gotTC, n, fr, tc, len(traced))
			}
			stream = append(stream, traced...)
		}
		// The same frames concatenated must stream-decode in order,
		// alternating untraced and traced copies.
		r := NewReader(bytes.NewReader(stream))
		for i, want := range frames {
			got, err := r.ReadFrame()
			if err != nil {
				t.Fatalf("stream frame %d: %v", i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stream frame %d: got %#v, want %#v", i, got, want)
			}
			gotT, gotTC, err := r.ReadFrameTraced()
			if err != nil {
				t.Fatalf("stream traced frame %d: %v", i, err)
			}
			if !reflect.DeepEqual(gotT, want) || gotTC != tc {
				t.Fatalf("stream traced frame %d: got (%#v, %+v)", i, gotT, gotTC)
			}
		}
		if _, err := r.ReadFrame(); err != io.EOF {
			t.Fatalf("stream end: err = %v, want io.EOF", err)
		}

		// Adversarial path: arbitrary bytes must decode to a frame or a
		// typed codec error, never panic, and consumed bytes must stay in
		// bounds.
		checkErr := func(err error) {
			if err == nil || err == io.EOF {
				return
			}
			for _, known := range []error{ErrTruncated, ErrOversize, ErrVersion, ErrUnknownType, ErrFrameSize, ErrTraceContext, ErrCompression} {
				if errors.Is(err, known) {
					return
				}
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		fr, ftc, n, err := DecodeTraced(raw)
		if err == nil {
			if fr == nil || n < 4 || n > len(raw) {
				t.Fatalf("Decode(raw) = (%v, %d, nil) on %d bytes", fr, n, len(raw))
			}
			// Whatever decoded must re-encode to the exact consumed bytes:
			// the codec is canonical (untraced frames are always v1, traced
			// frames always v2 with a nonzero trace ID, raw batches always
			// bijective v3). The one exception is a compressed batch — any
			// valid compressor output is accepted, so equality there is
			// semantic: re-encode raw, decode, same votes.
			if vb, ok := fr.(*VoteBatch); ok && vb.Compressed {
				re := AppendTraced(nil, vb, ftc)
				f2, tc2, _, err := DecodeTraced(re)
				if err != nil || tc2 != ftc {
					t.Fatalf("compressed batch re-encode decode: %v", err)
				}
				vb2 := f2.(*VoteBatch)
				if vb2.Sketch != vb.Sketch || !reflect.DeepEqual(vb2.Votes, vb.Votes) {
					t.Fatal("compressed batch re-encode lost votes")
				}
			} else if re := AppendTraced(nil, fr, ftc); !bytes.Equal(re, raw[:n]) {
				t.Fatalf("re-encode mismatch: %x vs %x", re, raw[:n])
			}
		} else {
			checkErr(err)
		}
		rr := NewReader(bytes.NewReader(raw))
		for {
			_, err := rr.ReadFrame()
			if err != nil {
				checkErr(err)
				break
			}
		}
	})
}

// FuzzVoteBatchRoundTrip drives the batch codec from both ends: fuzzed
// batches (typical and adversarial shapes, raw and compressed, traced and
// untraced) must round-trip losslessly with decode→re-encode byte equality
// for raw frames; fuzzed raw bytes framed as batch payloads must decode or
// fail with typed errors — never panic — with the count and size caps
// enforced.
func FuzzVoteBatchRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint32(0), uint64(0), false, false, []byte{})
	f.Add(uint16(100), uint32(42), uint64(7), false, true, []byte{0, 1, 2})
	f.Add(uint16(64), uint32(3), uint64(9), true, true, Append(nil, &VoteBatch{Votes: []BatchVote{{Trial: 1, Node: 2}}})[4:])
	f.Add(uint16(4096), uint32(1999), uint64(3), false, false, []byte{1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, count uint16, node uint32, seed uint64, sketch, compress bool, raw []byte) {
		n := int(count)%MaxBatchVotes + 1
		b := &VoteBatch{Sketch: sketch}
		if seed%2 == 0 {
			// Typical shape: one node, trials in order.
			for i := 0; i < n; i++ {
				v := BatchVote{Trial: uint32(i), Node: node}
				if sketch {
					v.Samples, v.Collisions = 48, uint32(i%2)
				} else {
					v.Reject = (uint64(i)+seed)%3 == 0
				}
				b.Votes = append(b.Votes, v)
			}
		} else {
			b.Votes = advVotes(seed, n, sketch)
		}
		tc := TraceContext{Trace: seed | 1, Span: seed >> 1}
		for _, ctx := range []TraceContext{{}, tc} {
			enc, err := AppendBatch(nil, b, ctx, compress)
			if err != nil {
				t.Fatalf("encode %d votes: %v", n, err)
			}
			if len(enc)-4 > MaxBatchFrameBytes {
				t.Fatalf("batch frame body %d bytes exceeds cap", len(enc)-4)
			}
			got, gotTC, consumed, err := DecodeTraced(enc)
			if err != nil {
				t.Fatalf("decode own encoding: %v", err)
			}
			vb := got.(*VoteBatch)
			if consumed != len(enc) || gotTC != ctx || vb.Sketch != b.Sketch || !reflect.DeepEqual(vb.Votes, b.Votes) {
				t.Fatal("batch round trip mismatch")
			}
			if !vb.Compressed {
				// Raw batches are bijective.
				if re := AppendTraced(nil, vb, ctx); !bytes.Equal(re, enc) {
					t.Fatalf("raw batch re-encode mismatch: %x vs %x", re, enc)
				}
			} else if vb.Saved <= 0 {
				t.Fatalf("compressed batch with Saved = %d", vb.Saved)
			}
		}
		// Cap enforcement survives fuzzing.
		over := &VoteBatch{Votes: make([]BatchVote, MaxBatchVotes+1)}
		if _, err := AppendBatch(nil, over, TraceContext{}, compress); !errors.Is(err, ErrOversize) {
			t.Fatalf("oversize batch: err = %v", err)
		}

		// Adversarial path: raw bytes framed as each batch type must decode
		// (then re-encode canonically, checked by the main fuzz target's
		// logic) or fail typed.
		var sc DecodeScratch
		for _, typ := range []byte{TypeVoteBatch, TypeVoteBatchZ, TypeVoteBatch | 0x80} {
			body := append([]byte{BatchVersion, typ}, raw...)
			if len(body) > MaxBatchFrameBytes {
				body = body[:MaxBatchFrameBytes]
			}
			fr, _, err := DecodeBodyScratch(body, &sc)
			if err == nil {
				vb := fr.(*VoteBatch)
				if len(vb.Votes) == 0 || len(vb.Votes) > MaxBatchVotes {
					t.Fatalf("decoded batch with %d votes", len(vb.Votes))
				}
				if typ == TypeVoteBatch {
					// Untraced raw batches are bijective: the decoded batch
					// re-encodes to the exact bytes that decoded.
					re := AppendTraced(nil, vb, TraceContext{})
					if !bytes.Equal(re[4:], body) {
						t.Fatalf("adversarial raw batch not canonical")
					}
				}
				continue
			}
			for _, known := range []error{ErrTruncated, ErrOversize, ErrVersion, ErrUnknownType, ErrFrameSize, ErrTraceContext, ErrCompression} {
				if errors.Is(err, known) {
					err = nil
					break
				}
			}
			if err != nil {
				t.Fatalf("unexpected error class: %v", err)
			}
		}
	})
}

// advPartialEntries builds adversarial partial entries from a seed:
// trial/votes/rejects jump across the u32 range (worst-case deltas) and
// sketch sums across the u64 range, always keeping the per-entry validity
// the decoder enforces (votes ≥ 1, rejects ≤ votes).
func advPartialEntries(seed uint64, n int, sketch bool) []PartialEntry {
	es := make([]PartialEntry, n)
	s := seed
	for i := range es {
		s = s*6364136223846793005 + 1442695040888963407
		e := &es[i]
		e.Trial = uint32(s >> 32)
		e.Votes = uint32(s)%1000 + 1
		e.Rejects = uint32(s>>16) % (e.Votes + 1)
		if sketch {
			s = s*6364136223846793005 + 1442695040888963407
			e.Samples = s
			e.Collisions = s >> 7
		}
	}
	return es
}

// FuzzPartialVerdictRoundTrip drives the aggregation-tier codec from both
// ends: fuzzed partial verdicts (typical and adversarial shapes, traced
// and untraced, vote and sketch mode) must round-trip losslessly with
// decode→re-encode byte equality; fuzzed raw bytes framed as v4 bodies
// must decode canonically or fail with typed errors — never panic — with
// the entry-count and frame-size caps enforced.
func FuzzPartialVerdictRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint32(0), uint64(0), false, []byte{})
	f.Add(uint16(64), uint32(3), uint64(7), true, []byte{0, 1, 2})
	f.Add(uint16(500), uint32(9), uint64(2), false, AppendTraced(nil, &AggHello{Agg: 1, K: 8, Trials: 4, Lo: 0, Hi: 4}, TraceContext{})[4:])
	f.Add(uint16(2048), uint32(1), uint64(5), true, []byte{4, 9, 0, 0, 0, 1, 0, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, count uint16, agg uint32, seed uint64, sketch bool, raw []byte) {
		n := int(count)%MaxPartialEntries + 1
		p := &PartialVerdict{Agg: agg, Sketch: sketch}
		if seed%2 == 0 {
			// Typical shape: consecutive trials, near-constant sums.
			p.Entries = make([]PartialEntry, n)
			for i := range p.Entries {
				e := &p.Entries[i]
				e.Trial = uint32(i)
				e.Votes = uint32(seed%64) + 1
				e.Rejects = uint32((seed + uint64(i))) % (e.Votes + 1)
				if sketch {
					e.Samples = uint64(e.Votes) * 48
					e.Collisions = uint64(i % 3)
				}
			}
		} else {
			p.Entries = advPartialEntries(seed, n, sketch)
		}
		tc := TraceContext{Trace: seed | 1, Span: seed >> 1}
		for _, ctx := range []TraceContext{{}, tc} {
			enc, err := AppendPartial(nil, p, ctx)
			if err != nil {
				t.Fatalf("encode %d entries: %v", n, err)
			}
			if len(enc)-4 > MaxBatchFrameBytes {
				t.Fatalf("partial frame body %d bytes exceeds cap", len(enc)-4)
			}
			got, gotTC, consumed, err := DecodeTraced(enc)
			if err != nil {
				t.Fatalf("decode own encoding: %v", err)
			}
			pv := got.(*PartialVerdict)
			if consumed != len(enc) || gotTC != ctx || pv.Sketch != p.Sketch || !reflect.DeepEqual(pv.Entries, p.Entries) {
				t.Fatal("partial round trip mismatch")
			}
			// Partial frames are bijective: decode→re-encode is identity.
			if re := AppendTraced(nil, pv, ctx); !bytes.Equal(re, enc) {
				t.Fatalf("partial re-encode mismatch: %x vs %x", re, enc)
			}
		}
		// Cap enforcement survives fuzzing.
		over := &PartialVerdict{Agg: agg, Entries: make([]PartialEntry, MaxPartialEntries+1)}
		if _, err := AppendPartial(nil, over, TraceContext{}); !errors.Is(err, ErrOversize) {
			t.Fatalf("oversize partial: err = %v", err)
		}

		// Adversarial path: raw bytes framed as each v4 type must decode
		// canonically or fail typed.
		var sc DecodeScratch
		for _, typ := range []byte{TypeAggHello, TypePartialVerdict, TypePartialVerdict | 0x80} {
			body := append([]byte{PartialVersion, typ}, raw...)
			if len(body) > MaxBatchFrameBytes {
				body = body[:MaxBatchFrameBytes]
			}
			fr, ftc, err := DecodeBodyScratch(body, &sc)
			if err == nil {
				if pv, ok := fr.(*PartialVerdict); ok {
					if len(pv.Entries) == 0 || len(pv.Entries) > MaxPartialEntries {
						t.Fatalf("decoded partial with %d entries", len(pv.Entries))
					}
				}
				// Every decodable v4 body is canonical: re-encoding the frame
				// with its trace context reproduces the exact input bytes.
				re := AppendTraced(nil, fr, ftc)
				if !bytes.Equal(re[4:], body) {
					t.Fatalf("adversarial %s not canonical: %x vs %x", TypeName(typ&^0x80), re[4:], body)
				}
				continue
			}
			for _, known := range []error{ErrTruncated, ErrOversize, ErrVersion, ErrUnknownType, ErrFrameSize, ErrTraceContext} {
				if errors.Is(err, known) {
					err = nil
					break
				}
			}
			if err != nil {
				t.Fatalf("unexpected error class: %v", err)
			}
		}
	})
}

// FuzzCompressRoundTrip pins the compressor's contract on arbitrary
// blocks: compression is deterministic, only reported when it strictly
// shrinks the input (incompressible and sub-threshold blocks return nil),
// and always inverts exactly; the decompressor never panics and never
// exceeds its output cap on arbitrary input.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0}, 100))
	f.Add(bytes.Repeat([]byte("abc"), 50))
	f.Add(goldenBatchPayload())
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4*MaxBatchFrameBytes {
			data = data[:4*MaxBatchFrameBytes]
		}
		comp := CompressBlock(data, nil)
		if comp != nil {
			if len(comp) >= len(data) {
				t.Fatalf("compressed %d ≥ raw %d", len(comp), len(data))
			}
			out, err := DecompressBlock(comp, nil, len(data))
			if err != nil || !bytes.Equal(out, data) {
				t.Fatalf("round trip failed: %v", err)
			}
			// Determinism: a second pass is byte-identical.
			if !bytes.Equal(CompressBlock(data, nil), comp) {
				t.Fatal("compressor is nondeterministic")
			}
		}
		// The input itself treated as a compressed block: bounded, typed,
		// panic-free.
		out, err := DecompressBlock(data, nil, 1<<12)
		if err == nil {
			if len(out) > 1<<12 {
				t.Fatalf("output %d exceeds cap", len(out))
			}
		} else if !errors.Is(err, ErrCompression) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
