// Session frames: the multi-tenant serving layer's wire protocol. A
// version-5 frame carries a session context so one long-running referee
// process can multiplex many concurrent testing sessions over a single
// listener. Two kinds of frames are involved:
//
//   - Session control frames (SessionOpen, SessionAccept, SessionReject,
//     SessionReport) are new types that exist only at SessionVersion. They
//     carry any session identity inside their payload and take no suffix.
//
//   - Established frame types (Hello..PartialVerdict) gain a 4-byte
//     big-endian session-ID suffix appended after the payload (and before
//     the optional trace suffix — the type byte's high bit flags tracing
//     exactly like v3/v4):
//
//     [len u32 BE][5][type|traceFlag?][payload][session u32 BE][trace 16B?]
//
// The encoding mirrors the v1/v2 trace-suffix trick: session 0 means "no
// session" and encodes at the frame's classic version, byte-identical to
// the pre-session protocol, while the decoder rejects an explicit zero
// session at v5 (ErrSession). Every (frame, session) pair therefore keeps
// exactly one canonical byte representation, which
// FuzzSessionFrameRoundTrip pins, and v1–v4 peers interoperate with a v5
// service unchanged.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// sessionBytes is the encoded size of the session-ID suffix.
const sessionBytes = 4

// MaxReportTrials caps the per-trial entries one SessionReport may carry.
// Worst-case encoding (adversarial values, ≤ 16 bytes per trial) stays
// under MaxBatchFrameBytes with room for the trace suffix.
const MaxReportTrials = 8192

// maxReportPayloadBytes bounds a report payload so the full frame body
// (version + type + payload + trace suffix) fits MaxBatchFrameBytes.
const maxReportPayloadBytes = MaxBatchFrameBytes - 2 - traceContextBytes

// Session decision-rule identifiers carried by SessionOpen. The service
// reconstructs the referee's rule from the (Rule, Thresh) pair; unknown
// values are rejected at admission (RejectRule), not at decode, so the
// reject path can name the offending byte.
const (
	// RuleAND is the AND rule: accept iff no node rejects.
	RuleAND = byte(iota + 1)
	// RuleThreshold is the threshold rule: reject iff at least Thresh
	// nodes reject.
	RuleThreshold
)

// Typed admission-rejection reasons carried by SessionReject.
const (
	// RejectSessions: the service's concurrent-session quota is full.
	RejectSessions = byte(iota + 1)
	// RejectBudget: the tenant's in-flight vote budget is exhausted.
	RejectBudget
	// RejectShape: the requested shape is malformed (zero K or Trials).
	RejectShape
	// RejectRule: the rule byte is not a known decision rule.
	RejectRule
	// RejectDefault: a default (legacy-peer) session is already open.
	RejectDefault

	rejectReasonMax = RejectDefault
)

// RejectReasonName returns a short lowercase name for a rejection reason
// byte ("sessions", "budget", ...; "reason<N>" when unknown).
func RejectReasonName(r byte) string {
	switch r {
	case RejectSessions:
		return "sessions"
	case RejectBudget:
		return "budget"
	case RejectShape:
		return "shape"
	case RejectRule:
		return "rule"
	case RejectDefault:
		return "default"
	default:
		return fmt.Sprintf("reason%d", r)
	}
}

// SessionOpen asks the service to admit a new testing session. It carries
// the full session shape so the service can build an isolated referee —
// rule, trial count and seed included — before any node connects.
type SessionOpen struct {
	// Tenant identifies the requesting tenant for quota accounting.
	Tenant uint32
	// K and Trials are the session shape, as in Hello.
	K      uint32
	Trials uint32
	// Seed is the session's base seed (provenance; votes are a pure
	// function of (Seed, trial, node) on the client side).
	Seed uint64
	// Rule selects the decision rule (RuleAND, RuleThreshold).
	Rule byte
	// Thresh is the threshold rule's T; zero for rules without one.
	Thresh uint32
	// Sketch marks a sketch-mode session (nodes submit raw collision
	// statistics; the referee derives votes server-side).
	Sketch bool
	// Default additionally registers this session as the target for
	// legacy sessionless (v1–v4) peers; at most one may be open.
	Default bool
	// EarlyClose lets the referee hang up as soon as every trial is
	// decided.
	EarlyClose bool
}

// SessionAccept is the service's admission grant: the session ID every
// subsequent frame of the session must carry.
type SessionAccept struct {
	// Session is the granted session ID, never zero.
	Session uint32
	// Tenant echoes the request's tenant.
	Tenant uint32
}

// SessionReject is the service's typed admission denial.
type SessionReject struct {
	// Tenant echoes the request's tenant.
	Tenant uint32
	// Reason is one of the Reject* constants.
	Reason byte
}

// SessionReport is the service's closing summary to the session opener:
// the full per-trial tally, columnar like PartialVerdict. The opener
// reconstructs the session report from it; transport statistics are
// deliberately absent so reports compare byte-identical across transports.
type SessionReport struct {
	// Session identifies the finished session.
	Session uint32
	// K is the session's network size.
	K uint32
	// Verdicts holds the per-trial network verdict (true = accept); its
	// length is the trial count, 1..MaxReportTrials.
	Verdicts []bool
	// Rejects, Votes and Missing are per-trial counts: rejecting votes,
	// votes seen, and votes never seen (quorum-decided trials only).
	// Per trial, Rejects ≤ Votes and Votes + Missing ≤ K.
	Rejects []uint32
	Votes   []uint32
	Missing []uint32
}

func (SessionOpen) Type() byte   { return TypeSessionOpen }
func (SessionAccept) Type() byte { return TypeSessionAccept }
func (SessionReject) Type() byte { return TypeSessionReject }
func (SessionReport) Type() byte { return TypeSessionReport }

func (SessionOpen) payloadSize() int   { return 26 }
func (SessionAccept) payloadSize() int { return 8 }
func (SessionReject) payloadSize() int { return 5 }

const (
	openFlagSketch     = 1 << 0
	openFlagDefault    = 1 << 1
	openFlagEarlyClose = 1 << 2
	openFlagMask       = openFlagSketch | openFlagDefault | openFlagEarlyClose
)

func (o SessionOpen) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, o.Tenant)
	dst = binary.BigEndian.AppendUint32(dst, o.K)
	dst = binary.BigEndian.AppendUint32(dst, o.Trials)
	dst = binary.BigEndian.AppendUint64(dst, o.Seed)
	dst = append(dst, o.Rule)
	dst = binary.BigEndian.AppendUint32(dst, o.Thresh)
	flags := byte(0)
	if o.Sketch {
		flags |= openFlagSketch
	}
	if o.Default {
		flags |= openFlagDefault
	}
	if o.EarlyClose {
		flags |= openFlagEarlyClose
	}
	return append(dst, flags)
}

func (o *SessionOpen) decodePayload(p []byte) error {
	o.Tenant = binary.BigEndian.Uint32(p[0:4])
	o.K = binary.BigEndian.Uint32(p[4:8])
	o.Trials = binary.BigEndian.Uint32(p[8:12])
	o.Seed = binary.BigEndian.Uint64(p[12:20])
	o.Rule = p[20]
	o.Thresh = binary.BigEndian.Uint32(p[21:25])
	flags := p[25]
	if flags&^byte(openFlagMask) != 0 {
		return fmt.Errorf("%w: sessionopen flags %#x", ErrFrameSize, flags)
	}
	o.Sketch = flags&openFlagSketch != 0
	o.Default = flags&openFlagDefault != 0
	o.EarlyClose = flags&openFlagEarlyClose != 0
	return nil
}

func (a SessionAccept) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a.Session)
	return binary.BigEndian.AppendUint32(dst, a.Tenant)
}

func (a *SessionAccept) decodePayload(p []byte) error {
	a.Session = binary.BigEndian.Uint32(p[0:4])
	a.Tenant = binary.BigEndian.Uint32(p[4:8])
	if a.Session == 0 {
		return fmt.Errorf("%w: sessionaccept with session 0", ErrSession)
	}
	return nil
}

func (r SessionReject) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.Tenant)
	return append(dst, r.Reason)
}

func (r *SessionReject) decodePayload(p []byte) error {
	r.Tenant = binary.BigEndian.Uint32(p[0:4])
	r.Reason = p[4]
	if r.Reason == 0 || r.Reason > rejectReasonMax {
		return fmt.Errorf("%w: sessionreject reason %d", ErrFrameSize, r.Reason)
	}
	return nil
}

// Report column codec: first value uvarint, then zigzag-uvarint deltas,
// exactly like the batch columns (bijective over uint32 values).
func appendReportColumn(dst []byte, vals []uint32) []byte {
	prev := int64(vals[0])
	dst = binary.AppendUvarint(dst, uint64(prev))
	for i := 1; i < len(vals); i++ {
		v := int64(vals[i])
		dst = binary.AppendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

func reportColumnSize(vals []uint32) int {
	prev := int64(vals[0])
	n := uvarintLen(uint64(prev))
	for i := 1; i < len(vals); i++ {
		v := int64(vals[i])
		n += uvarintLen(zigzag(v - prev))
		prev = v
	}
	return n
}

func decodeReportColumn(p []byte, off int, vals []uint32) (int, error) {
	first, off, err := readUvarint(p, off)
	if err != nil {
		return 0, err
	}
	if first > math.MaxUint32 {
		return 0, fmt.Errorf("%w: report column value %d out of range", ErrFrameSize, first)
	}
	vals[0] = uint32(first)
	prev := int64(first)
	for i := 1; i < len(vals); i++ {
		u, noff, err := readUvarint(p, off)
		if err != nil {
			return 0, err
		}
		d := unzigzag(u)
		if d > math.MaxUint32 || d < -math.MaxUint32 {
			return 0, fmt.Errorf("%w: report column delta %d out of range", ErrFrameSize, d)
		}
		val := prev + d
		if val < 0 || val > math.MaxUint32 {
			return 0, fmt.Errorf("%w: report column value %d out of range", ErrFrameSize, val)
		}
		vals[i] = uint32(val)
		prev = val
		off = noff
	}
	return off, nil
}

func (r SessionReport) payloadSize() int {
	n := 4 + 4 + uvarintLen(uint64(len(r.Verdicts)))
	n += (len(r.Verdicts) + 7) / 8
	n += reportColumnSize(r.Rejects)
	n += reportColumnSize(r.Votes)
	n += reportColumnSize(r.Missing)
	return n
}

func (r SessionReport) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.Session)
	dst = binary.BigEndian.AppendUint32(dst, r.K)
	dst = binary.AppendUvarint(dst, uint64(len(r.Verdicts)))
	nb := (len(r.Verdicts) + 7) / 8
	base := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	for i := range r.Verdicts {
		if r.Verdicts[i] {
			dst[base+i>>3] |= 1 << (i & 7)
		}
	}
	dst = appendReportColumn(dst, r.Rejects)
	dst = appendReportColumn(dst, r.Votes)
	return appendReportColumn(dst, r.Missing)
}

func (r *SessionReport) decodePayload(p []byte) error {
	if len(p) < 10 {
		return fmt.Errorf("%w: %d-byte report payload", ErrFrameSize, len(p))
	}
	r.Session = binary.BigEndian.Uint32(p[0:4])
	if r.Session == 0 {
		return fmt.Errorf("%w: sessionreport with session 0", ErrSession)
	}
	r.K = binary.BigEndian.Uint32(p[4:8])
	cnt, off, err := readUvarint(p, 8)
	if err != nil {
		return err
	}
	if cnt == 0 {
		return fmt.Errorf("%w: empty session report", ErrFrameSize)
	}
	if cnt > MaxReportTrials {
		return fmt.Errorf("%w: report of %d trials (limit %d)", ErrOversize, cnt, MaxReportTrials)
	}
	count := int(cnt)
	if cap(r.Verdicts) < count {
		r.Verdicts = make([]bool, count)
		r.Rejects = make([]uint32, count)
		r.Votes = make([]uint32, count)
		r.Missing = make([]uint32, count)
	} else {
		r.Verdicts = r.Verdicts[:count]
		r.Rejects = r.Rejects[:count]
		r.Votes = r.Votes[:count]
		r.Missing = r.Missing[:count]
	}
	nb := (count + 7) / 8
	if len(p)-off < nb {
		return fmt.Errorf("%w: report bitset truncated", ErrFrameSize)
	}
	bits := p[off : off+nb]
	if rem := count & 7; rem != 0 && bits[nb-1]>>rem != 0 {
		return fmt.Errorf("%w: nonzero trailing report bits", ErrFrameSize)
	}
	for i := range r.Verdicts {
		r.Verdicts[i] = bits[i>>3]>>(i&7)&1 == 1
	}
	off += nb
	if off, err = decodeReportColumn(p, off, r.Rejects); err != nil {
		return err
	}
	if off, err = decodeReportColumn(p, off, r.Votes); err != nil {
		return err
	}
	if off, err = decodeReportColumn(p, off, r.Missing); err != nil {
		return err
	}
	if off != len(p) {
		return fmt.Errorf("%w: %d trailing report bytes", ErrFrameSize, len(p)-off)
	}
	for t := 0; t < count; t++ {
		if r.Rejects[t] > r.Votes[t] {
			return fmt.Errorf("%w: report trial %d with %d rejects over %d votes", ErrFrameSize, t, r.Rejects[t], r.Votes[t])
		}
		if uint64(r.Votes[t])+uint64(r.Missing[t]) > uint64(r.K) {
			return fmt.Errorf("%w: report trial %d with %d votes + %d missing over k=%d",
				ErrFrameSize, t, r.Votes[t], r.Missing[t], r.K)
		}
	}
	return nil
}

// AppendSessionReport appends r's wire encoding carrying tc to dst,
// enforcing the trial-count and payload-size caps the decoder will apply.
func AppendSessionReport(dst []byte, r *SessionReport, tc TraceContext) ([]byte, error) {
	n := len(r.Verdicts)
	if n == 0 {
		return dst, fmt.Errorf("wire: empty session report")
	}
	if n > MaxReportTrials {
		return dst, fmt.Errorf("%w: report of %d trials (limit %d)", ErrOversize, n, MaxReportTrials)
	}
	if len(r.Rejects) != n || len(r.Votes) != n || len(r.Missing) != n {
		return dst, fmt.Errorf("wire: ragged session report columns")
	}
	if size := r.payloadSize(); size > maxReportPayloadBytes {
		return dst, fmt.Errorf("%w: %d-byte report payload (limit %d)", ErrOversize, size, maxReportPayloadBytes)
	}
	return AppendTraced(dst, r, tc), nil
}

// AppendSession appends f's wire encoding bound to a session. Session 0
// means "no session": the frame encodes at its classic version,
// byte-identical to Append/AppendTraced, so pre-session peers decode it
// unchanged. A nonzero session stamps the frame at SessionVersion with the
// 4-byte session suffix. Session control frames carry their session inside
// the payload and never take a suffix, whatever session says.
func AppendSession(dst []byte, f Frame, session uint32, tc TraceContext) []byte {
	t := f.Type()
	if session == 0 || t >= TypeSessionOpen {
		return AppendTraced(dst, f, tc)
	}
	return appendFlaggedFrame(dst, SessionVersion, t, f.payloadSize()+sessionBytes, func(d []byte) []byte {
		d = f.appendPayload(d)
		return binary.BigEndian.AppendUint32(d, session)
	}, tc)
}

// EncodedSizeSession returns the on-wire size of f when bound to session
// and carrying tc.
func EncodedSizeSession(f Frame, session uint32, tc TraceContext) int {
	n := EncodedSizeTraced(f, tc)
	if session != 0 && f.Type() < TypeSessionOpen {
		n += sessionBytes
	}
	return n
}

// WriteFrameSession writes f's session-bound encoding to w in one Write
// call; session 0 is byte-identical to WriteFrameTraced.
func WriteFrameSession(w io.Writer, f Frame, session uint32, tc TraceContext) error {
	buf := make([]byte, 0, EncodedSizeSession(f, session, tc))
	buf = AppendSession(buf, f, session, tc)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write %T: %w", f, err)
	}
	return nil
}

// AppendSession is the session-bound form of BatchEncoder.Append: raw or
// opportunistically compressed batch payload, then the session suffix.
// Session 0 delegates to the classic encoding.
func (e *BatchEncoder) AppendSession(dst []byte, b *VoteBatch, session uint32, tc TraceContext, compress bool) ([]byte, error) {
	if session == 0 {
		return e.Append(dst, b, tc, compress)
	}
	if len(b.Votes) == 0 {
		return dst, fmt.Errorf("wire: empty vote batch")
	}
	if len(b.Votes) > MaxBatchVotes {
		return dst, fmt.Errorf("%w: batch of %d votes (limit %d)", ErrOversize, len(b.Votes), MaxBatchVotes)
	}
	size := b.payloadSize()
	if size+sessionBytes > maxBatchPayloadBytes {
		return dst, fmt.Errorf("%w: %d-byte batch payload (limit %d)", ErrOversize, size, maxBatchPayloadBytes-sessionBytes)
	}
	if compress && size >= MinCompressibleSize {
		e.raw = b.appendPayload(e.raw[:0])
		if comp := CompressBlock(e.raw, e.comp[:0]); comp != nil {
			e.comp = comp
			zsize := uvarintLen(uint64(size)) + len(comp)
			if zsize < size && e.roundTrips(comp, size) {
				return appendFlaggedFrame(dst, SessionVersion, TypeVoteBatchZ, zsize+sessionBytes, func(d []byte) []byte {
					d = binary.AppendUvarint(d, uint64(size))
					d = append(d, comp...)
					return binary.BigEndian.AppendUint32(d, session)
				}, tc), nil
			}
		}
		return appendFlaggedFrame(dst, SessionVersion, TypeVoteBatch, size+sessionBytes, func(d []byte) []byte {
			d = append(d, e.raw...)
			return binary.BigEndian.AppendUint32(d, session)
		}, tc), nil
	}
	return AppendSession(dst, b, session, tc), nil
}

// AppendPartialSession is the session-bound form of AppendPartial.
func AppendPartialSession(dst []byte, p *PartialVerdict, session uint32, tc TraceContext) ([]byte, error) {
	if session == 0 {
		return AppendPartial(dst, p, tc)
	}
	if len(p.Entries) == 0 {
		return dst, fmt.Errorf("wire: empty partial verdict")
	}
	if len(p.Entries) > MaxPartialEntries {
		return dst, fmt.Errorf("%w: partial of %d entries (limit %d)", ErrOversize, len(p.Entries), MaxPartialEntries)
	}
	if size := p.payloadSize(); size+sessionBytes > maxPartialPayloadBytes {
		return dst, fmt.Errorf("%w: %d-byte partial payload (limit %d)", ErrOversize, size, maxPartialPayloadBytes-sessionBytes)
	}
	return AppendSession(dst, p, session, tc), nil
}

// decodeSessionBody parses a SessionVersion frame body: trace flag in the
// type byte, session suffix on established types, control-frame payloads
// for the session types themselves.
func decodeSessionBody(body []byte, sc *DecodeScratch) (Frame, TraceContext, uint32, error) {
	t := body[1]
	base := t &^ traceFlag
	if base < TypeHello || base > TypeSessionReport {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: type %d", ErrUnknownType, base)
	}
	if len(body) > FrameCap(base) {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: %d-byte %s frame (limit %d)",
			ErrOversize, len(body), TypeName(base), FrameCap(base))
	}
	payload := body[2:]
	var tc TraceContext
	if t&traceFlag != 0 {
		if len(payload) < traceContextBytes {
			return nil, TraceContext{}, 0, fmt.Errorf("%w: traced %s frame with %d-byte body",
				ErrFrameSize, TypeName(base), len(body))
		}
		tail := payload[len(payload)-traceContextBytes:]
		tc.Trace = binary.BigEndian.Uint64(tail[:8])
		tc.Span = binary.BigEndian.Uint64(tail[8:])
		if tc.Trace == 0 {
			return nil, TraceContext{}, 0, fmt.Errorf("%w: zero trace ID on a v%d frame", ErrTraceContext, SessionVersion)
		}
		payload = payload[:len(payload)-traceContextBytes]
	}
	var session uint32
	if base < TypeSessionOpen {
		if len(payload) < sessionBytes {
			return nil, TraceContext{}, 0, fmt.Errorf("%w: %s frame missing session suffix", ErrFrameSize, TypeName(base))
		}
		session = binary.BigEndian.Uint32(payload[len(payload)-sessionBytes:])
		if session == 0 {
			// Session 0 has exactly one canonical encoding: the classic
			// version without the suffix.
			return nil, TraceContext{}, 0, fmt.Errorf("%w: session 0 must encode at v%d or below", ErrSession, PartialVersion)
		}
		payload = payload[:len(payload)-sessionBytes]
	}
	var f Frame
	switch base {
	case TypeVoteBatch, TypeVoteBatchZ:
		vb, err := decodeBatchPayload(base, payload, sc)
		if err != nil {
			return nil, TraceContext{}, 0, err
		}
		return vb, tc, session, nil
	case TypeAggHello, TypePartialVerdict:
		af, err := decodePartialPayload(base, payload, sc)
		if err != nil {
			return nil, TraceContext{}, 0, err
		}
		return af, tc, session, nil
	case TypeSessionReport:
		var r *SessionReport
		if sc != nil {
			r = &sc.report
		} else {
			r = &SessionReport{}
		}
		if err := r.decodePayload(payload); err != nil {
			return nil, TraceContext{}, 0, err
		}
		return r, tc, 0, nil
	case TypeSessionOpen:
		if sc != nil {
			f = &sc.open
		} else {
			f = &SessionOpen{}
		}
	case TypeSessionAccept:
		if sc != nil {
			f = &sc.accept
		} else {
			f = &SessionAccept{}
		}
	case TypeSessionReject:
		if sc != nil {
			f = &sc.reject
		} else {
			f = &SessionReject{}
		}
	default:
		f = scratchSingleFrame(base, sc)
	}
	if len(payload) != f.payloadSize() {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: type %d v%d payload %d bytes, want %d",
			ErrFrameSize, base, SessionVersion, len(payload), f.payloadSize())
	}
	if err := f.decodePayload(payload); err != nil {
		return nil, TraceContext{}, 0, err
	}
	return f, tc, session, nil
}

// BodyType returns the base frame type of an encoded frame body with the
// trace flag stripped, or 0 when the body is too short to carry one. It
// never validates the body — use it to route a frame before the full
// decode, never instead of it.
func BodyType(body []byte) byte {
	if len(body) < 2 {
		return 0
	}
	return body[1] &^ traceFlag
}

// SessionOf extracts the session ID a frame body is bound to without a
// full decode: the trailing suffix of an established-type SessionVersion
// frame, or 0 for earlier versions, control frames, and bodies too short
// to carry a suffix (which the full decode will reject). Like BodyType it
// is a routing peek, not a validator.
func SessionOf(body []byte) uint32 {
	if len(body) < 2 || body[0] != SessionVersion {
		return 0
	}
	base := body[1] &^ traceFlag
	if base >= TypeSessionOpen {
		return 0
	}
	end := len(body)
	if body[1]&traceFlag != 0 {
		end -= traceContextBytes
	}
	if end < 2+sessionBytes {
		return 0
	}
	return binary.BigEndian.Uint32(body[end-sessionBytes : end])
}
