package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

func samplePartial() *PartialVerdict {
	return &PartialVerdict{
		Agg: 3,
		Entries: []PartialEntry{
			{Trial: 0, Votes: 32, Rejects: 4},
			{Trial: 1, Votes: 32, Rejects: 0},
			{Trial: 5, Votes: 7, Rejects: 7},
		},
	}
}

func TestPartialVerdictRoundTrip(t *testing.T) {
	for _, tc := range []TraceContext{{}, {Trace: 9, Span: 11}} {
		for _, sketch := range []bool{false, true} {
			p := samplePartial()
			p.Sketch = sketch
			if sketch {
				for i := range p.Entries {
					p.Entries[i].Samples = uint64(1000 + i*3)
					p.Entries[i].Collisions = uint64(i)
				}
			}
			enc, err := AppendPartial(nil, p, tc)
			if err != nil {
				t.Fatal(err)
			}
			got, gotTC, n, err := DecodeTraced(enc)
			if err != nil {
				t.Fatalf("decode own encoding: %v", err)
			}
			if n != len(enc) || gotTC != tc {
				t.Fatalf("consumed %d of %d, tc %+v", n, len(enc), gotTC)
			}
			pv, ok := got.(*PartialVerdict)
			if !ok || !reflect.DeepEqual(pv, p) {
				t.Fatalf("round trip: got %#v, want %#v", got, p)
			}
			// Canonical bytes: re-encoding the decoded frame is identical.
			if re := AppendTraced(nil, pv, tc); !bytes.Equal(re, enc) {
				t.Fatalf("re-encode mismatch:\n%x\n%x", re, enc)
			}
		}
	}
}

func TestAggHelloRoundTrip(t *testing.T) {
	h := &AggHello{Agg: 2, K: 100, Trials: 16, Lo: 25, Hi: 50}
	for _, tc := range []TraceContext{{}, {Trace: 5, Span: 6}} {
		enc := AppendTraced(nil, h, tc)
		if len(enc)-4 > MaxFrameBytes {
			t.Fatalf("agghello body %d bytes exceeds MaxFrameBytes", len(enc)-4)
		}
		got, gotTC, n, err := DecodeTraced(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) || gotTC != tc || !reflect.DeepEqual(got, h) {
			t.Fatalf("round trip: got %#v tc=%+v n=%d", got, gotTC, n)
		}
	}
}

func TestPartialVerdictValidation(t *testing.T) {
	enc := func(p *PartialVerdict) []byte { return AppendTraced(nil, p, TraceContext{}) }
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty entries", append([]byte{0, 0, 0, 8, PartialVersion, TypePartialVerdict, 0, 0, 0, 1, 0, 0}, 0), ErrFrameSize},
		{"zero votes", enc(&PartialVerdict{Agg: 1, Entries: []PartialEntry{{Trial: 0, Votes: 0}}}), ErrFrameSize},
		{"rejects over votes", enc(&PartialVerdict{Agg: 1, Entries: []PartialEntry{{Trial: 0, Votes: 2, Rejects: 3}}}), ErrFrameSize},
		{"agghello at v1", Append(nil, &Hello{})[:0], nil}, // placeholder replaced below
	}
	// AggHello encoded at the wrong version must be rejected.
	v1 := []byte{0, 0, 0, 22, MinVersion, TypeAggHello}
	v1 = append(v1, make([]byte, 20)...)
	cases[3] = struct {
		name string
		raw  []byte
		want error
	}{"agghello at v1", v1, ErrVersion}

	for _, c := range cases {
		if _, _, err := Decode(c.raw); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}

	// Inverted window.
	bad := &AggHello{Agg: 1, K: 10, Trials: 2, Lo: 5, Hi: 5}
	if _, _, err := Decode(AppendTraced(nil, bad, TraceContext{})); !errors.Is(err, ErrFrameSize) {
		t.Errorf("inverted window: err = %v, want ErrFrameSize", err)
	}

	// Entry-count cap at encode and decode.
	over := &PartialVerdict{Agg: 1, Entries: make([]PartialEntry, MaxPartialEntries+1)}
	if _, err := AppendPartial(nil, over, TraceContext{}); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize encode: err = %v, want ErrOversize", err)
	}

	// Old types must not decode at v4.
	old := []byte{0, 0, 0, 11, PartialVersion, TypeVote, 0, 0, 0, 0, 0, 0, 0, 1, 0}
	if _, _, err := Decode(old); !errors.Is(err, ErrVersion) {
		t.Errorf("vote at v4: err = %v, want ErrVersion", err)
	}
	// Partial types must not decode at v3 or below.
	p := samplePartial()
	enc3 := AppendTraced(nil, p, TraceContext{})
	enc3[4] = BatchVersion
	if _, _, err := Decode(enc3); !errors.Is(err, ErrVersion) {
		t.Errorf("partial at v3: err = %v, want ErrVersion", err)
	}
}

func TestPartialVerdictWorstCaseFitsCap(t *testing.T) {
	// MaxPartialEntries adversarial entries (maximal per-column varints)
	// must still encode under the frame cap with a trace suffix.
	es := make([]PartialEntry, MaxPartialEntries)
	for i := range es {
		v := uint32(math.MaxUint32 - uint32(i))
		if i%2 == 0 {
			v = uint32(i)
		}
		s := uint64(math.MaxUint64) - uint64(i)
		if i%2 == 0 {
			s = uint64(i)
		}
		es[i] = PartialEntry{Trial: v, Votes: v | 1, Rejects: v | 1, Samples: s, Collisions: s}
	}
	p := &PartialVerdict{Agg: math.MaxUint32, Sketch: true, Entries: es}
	enc, err := AppendPartial(nil, p, TraceContext{Trace: 1, Span: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc)-4 > MaxBatchFrameBytes {
		t.Fatalf("worst-case partial body %d bytes exceeds cap %d", len(enc)-4, MaxBatchFrameBytes)
	}
	got, _, _, err := DecodeTraced(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.(*PartialVerdict).Entries, es) {
		t.Fatal("worst-case round trip lost entries")
	}
}

func TestPartialScratchReuse(t *testing.T) {
	// A sketch-mode decode followed by a vote-mode decode through the same
	// scratch must not leak sums.
	var sc DecodeScratch
	sk := &PartialVerdict{Agg: 1, Sketch: true,
		Entries: []PartialEntry{{Trial: 0, Votes: 2, Rejects: 1, Samples: 7, Collisions: 3}}}
	plain := &PartialVerdict{Agg: 1,
		Entries: []PartialEntry{{Trial: 0, Votes: 2, Rejects: 1}}}
	for _, p := range []*PartialVerdict{sk, plain} {
		enc := AppendTraced(nil, p, TraceContext{})
		got, _, err := DecodeBodyScratch(enc[4:], &sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("scratch decode: got %#v, want %#v", got, p)
		}
	}
}
