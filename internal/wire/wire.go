// Package wire is the cluster runtime's binary codec: a length-prefixed,
// versioned framing for the messages the 0-round protocols exchange over
// real connections — a node's Hello, its per-trial Vote (or collision
// Sketch), the Done marker closing its vote stream, and the referee's
// Verdict.
//
// Every frame on the wire is
//
//	[4-byte big-endian frame length][1-byte version][1-byte type][payload]
//
// where the length counts the version, type and payload bytes (not the
// prefix itself). Five versions are in play: version 1 frames carry the
// bare payload; version 2 frames append a 16-byte trace context (trace ID +
// span ID, both big-endian uint64, trace ID nonzero) that links the frame
// into the telemetry plane's distributed trace; version 3 frames carry the
// batch types (VoteBatch, and its compressed form) whose type byte's high
// bit flags an optional trace-context suffix; version 4 frames carry the
// aggregation-tier types (AggHello, PartialVerdict — partial.go) with the
// same high-bit trace flagging; version 5 frames carry the multi-tenant
// session context (session.go) — the session control types, and any
// established type bound to a nonzero session ID via a 4-byte suffix. The
// encoder stamps the lowest version that can represent a frame — untraced
// single-vote traffic is byte-identical to the pre-trace protocol, traced
// single-vote traffic is byte-identical to v2, session-0 traffic is
// byte-identical to v4 and below — and the decoder accepts all five,
// rejecting anything newer with ErrVersion. Each frame has exactly one
// valid version (batch types only at v3, aggregation types only at v4,
// session-bound and session-control frames only at v5, everything else at
// v1/v2), so every message keeps a single canonical byte representation.
// Trace context is observability metadata only: the referee's verdicts
// never depend on it.
//
// Single-vote frames are tiny and fixed-size per type; the decoder
// enforces both the per-type payload size and the MaxFrameBytes cap before
// reading a body, mirroring the simulator's CONGEST bandwidth check
// (simnet.ErrBandwidthExceeded): a peer cannot make the referee allocate or
// buffer unbounded memory by lying in the length prefix, and an oversized
// frame is a protocol error, not a crash. Batch frames amortize framing
// across up to MaxBatchVotes tuples and get their own, larger cap
// (MaxBatchFrameBytes) — a typed per-frame-type limit, not a raising of the
// CONGEST-mirror cap, which keeps applying to every single-vote type.
//
// Decoding never panics on adversarial input: truncated, oversized,
// wrong-version, unknown-type, mis-sized and bad-trace-context frames all
// surface as typed errors (ErrTruncated, ErrOversize, ErrVersion,
// ErrUnknownType, ErrFrameSize, ErrTraceContext), which FuzzWireRoundTrip
// pins.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the current protocol version: version-5 frames carry the
// multi-tenant session context. The encoder stamps each frame at the
// lowest version that can represent it (see TraceVersion), so old frame
// types never encode at v3/v4/v5 and old decoders keep accepting
// untraced/traced single-vote traffic.
const Version = 5

// SessionVersion is the version byte of session-context frames: the
// session control types (SessionOpen, SessionAccept, SessionReject,
// SessionReport) and any established frame type carrying a nonzero
// session-ID suffix (session.go). They are only legal at this version and
// flag their optional trace suffix through the type byte like v3/v4.
const SessionVersion = 5

// BatchVersion is the version byte of batch frames (VoteBatch and its
// compressed form). Batch types are only legal at this version.
const BatchVersion = 3

// PartialVersion is the version byte of the aggregation-tier frames
// (AggHello, PartialVerdict). They are only legal at this version and
// flag their optional trace suffix through the type byte like v3.
const PartialVersion = 4

// TraceVersion is the version stamped on traced single-vote frames: the
// payload followed by a 16-byte TraceContext suffix. Untraced single-vote
// frames encode at MinVersion so pre-trace decoders still accept them.
const TraceVersion = 2

// MinVersion is the oldest protocol version the decoder accepts: the
// trace-free framing of the original cluster runtime.
const MinVersion = 1

// MaxFrameBytes caps the on-wire frame length (version + type + payload +
// optional trace context) of every single-vote frame type. All defined
// single-vote frames are ≤ 34 bytes; the cap leaves headroom while keeping
// the referee's per-connection buffer trivially bounded — the cluster
// analogue of the CONGEST per-edge bandwidth limit. Batch types have their
// own cap (MaxBatchFrameBytes); FrameCap resolves the bound per type.
const MaxFrameBytes = 64

// MaxBatchFrameBytes caps the on-wire length of a batch frame. It bounds
// MaxBatchVotes worst-case-encoded tuples (≤ 21 bytes each in sketch mode)
// with room for the trace suffix, while still keeping per-connection
// buffering small enough that 10⁴+ concurrent peers fit in memory.
const MaxBatchFrameBytes = 1 << 17

// FrameCap returns the on-wire frame-length cap (excluding the 4-byte
// prefix) for a frame type byte: MaxBatchFrameBytes for batch types,
// MaxFrameBytes for everything else (including unknown types, which are
// rejected before the cap matters).
func FrameCap(t byte) int {
	if t == TypeVoteBatch || t == TypeVoteBatchZ || t == TypePartialVerdict || t == TypeSessionReport {
		return MaxBatchFrameBytes
	}
	return MaxFrameBytes
}

// headerBytes is the length prefix size.
const headerBytes = 4

// traceContextBytes is the encoded size of a TraceContext suffix.
const traceContextBytes = 16

// TraceContext is the optional trace correlation suffix of a version-2
// frame: the sender's trace ID and the span that emitted the frame. A zero
// Trace means "absent" — such frames encode at MinVersion without the
// suffix, and the decoder rejects a version-2 frame whose trace ID is zero
// (ErrTraceContext) so every encoding has exactly one byte representation.
type TraceContext struct {
	Trace uint64
	Span  uint64
}

// IsZero reports whether the context is absent (no trace ID).
func (tc TraceContext) IsZero() bool { return tc.Trace == 0 }

// Frame type identifiers.
const (
	// TypeHello opens a node's session: node ID, network size, trial count.
	TypeHello = byte(iota + 1)
	// TypeVote carries one node's accept/reject for one trial.
	TypeVote
	// TypeSketch carries one node's raw collision statistic for one trial,
	// letting the referee derive the vote server-side (single-collision
	// testers: reject iff Collisions > 0).
	TypeSketch
	// TypeDone marks the end of a node's vote stream.
	TypeDone
	// TypeVerdict is the referee's closing summary to each node.
	TypeVerdict
	// TypeVoteBatch packs many (trial, node, vote) tuples — or sketch
	// tuples — into one delta/bit-packed frame (batch.go).
	TypeVoteBatch
	// TypeVoteBatchZ is a VoteBatch whose payload is block-compressed
	// (compress.go); only emitted when compression actually saves bytes.
	TypeVoteBatchZ
	// TypeAggHello opens an aggregator's upstream session, announcing the
	// node-ID window it terminates (partial.go).
	TypeAggHello
	// TypePartialVerdict carries an aggregator's per-trial partial sums
	// upstream (partial.go).
	TypePartialVerdict
	// TypeSessionOpen asks the multi-tenant service to admit a new testing
	// session (session.go).
	TypeSessionOpen
	// TypeSessionAccept grants admission, assigning the session ID.
	TypeSessionAccept
	// TypeSessionReject denies admission with a typed reason.
	TypeSessionReject
	// TypeSessionReport is the service's closing per-trial tally to the
	// session opener.
	TypeSessionReport
)

// traceFlag is the high bit of a BatchVersion frame's type byte: set when
// a 16-byte TraceContext suffix follows the payload. Single-vote versions
// signal tracing through the version byte instead.
const traceFlag = 0x80

// TypeName returns a short lowercase name for a frame type byte, for
// metric and span labels ("hello", "vote", ...; "type<N>" when unknown).
func TypeName(t byte) string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeVote:
		return "vote"
	case TypeSketch:
		return "sketch"
	case TypeDone:
		return "done"
	case TypeVerdict:
		return "verdict"
	case TypeVoteBatch:
		return "votebatch"
	case TypeVoteBatchZ:
		return "votebatchz"
	case TypeAggHello:
		return "agghello"
	case TypePartialVerdict:
		return "partialverdict"
	case TypeSessionOpen:
		return "sessionopen"
	case TypeSessionAccept:
		return "sessionaccept"
	case TypeSessionReject:
		return "sessionreject"
	case TypeSessionReport:
		return "sessionreport"
	default:
		return fmt.Sprintf("type%d", t)
	}
}

// Codec errors. Decode and ReadFrame wrap these with positional detail;
// match with errors.Is.
var (
	// ErrTruncated marks a frame cut short: a header or body shorter than
	// its declared length.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrOversize marks a length prefix beyond MaxFrameBytes.
	ErrOversize = errors.New("wire: frame exceeds size limit")
	// ErrVersion marks a version byte outside MinVersion..Version, or a
	// frame type encoded at a version that is not its canonical one.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrUnknownType marks an unrecognized frame type byte.
	ErrUnknownType = errors.New("wire: unknown frame type")
	// ErrFrameSize marks a known frame type with a malformed payload
	// (wrong size, or a non-canonical batch encoding).
	ErrFrameSize = errors.New("wire: wrong payload size for frame type")
	// ErrTraceContext marks a traced frame whose trace context is
	// malformed (zero trace ID).
	ErrTraceContext = errors.New("wire: invalid trace context")
	// ErrSession marks a malformed session context: a zero session ID on a
	// version-5 session-suffixed frame (session 0 must encode at the
	// frame's classic version) or in a control frame requiring one.
	ErrSession = errors.New("wire: invalid session ID")
)

// Frame is one protocol message. Implementations are small value types;
// encoding is allocation-free via AppendTo.
type Frame interface {
	// Type returns the frame's type byte.
	Type() byte
	// payloadSize returns the exact encoded payload length.
	payloadSize() int
	// appendPayload appends the payload encoding to dst.
	appendPayload(dst []byte) []byte
	// decodePayload parses a payload of exactly payloadSize bytes.
	decodePayload(p []byte) error
}

// Hello opens a node's session with the referee.
type Hello struct {
	// Node is the sender's ID in [0, K).
	Node uint32
	// K is the network size the node was configured with; the referee
	// rejects mismatches.
	K uint32
	// Trials is the number of votes the node will submit.
	Trials uint32
}

// Vote is one node's verdict on one trial.
type Vote struct {
	// Trial indexes the Monte-Carlo trial in [0, Trials).
	Trial uint32
	// Node is the voting node's ID.
	Node uint32
	// Reject is true when the node's tester rejected its sample block.
	Reject bool
}

// Sketch is the raw statistic behind a vote: the node's sample count and
// collision count for one trial. For single-collision testers the referee
// derives Reject = Collisions > 0, so Vote and Sketch submissions yield
// identical verdicts.
type Sketch struct {
	Trial uint32
	Node  uint32
	// Samples is the number of samples the node drew this trial.
	Samples uint32
	// Collisions is the number of colliding pairs among them.
	Collisions uint32
}

// Done closes a node's vote stream; the referee treats the node as
// complete even if some of its votes were lost in transit.
type Done struct {
	Node uint32
}

// Verdict is the referee's closing summary, broadcast to every node still
// connected when the run finalizes.
type Verdict struct {
	// Trials is the number of trials decided; Accepts of them accepted.
	Trials  uint32
	Accepts uint32
	// Missing is the total number of votes that never arrived (decided by
	// quorum policy instead).
	Missing uint32
}

func (Hello) Type() byte   { return TypeHello }
func (Vote) Type() byte    { return TypeVote }
func (Sketch) Type() byte  { return TypeSketch }
func (Done) Type() byte    { return TypeDone }
func (Verdict) Type() byte { return TypeVerdict }

func (Hello) payloadSize() int   { return 12 }
func (Vote) payloadSize() int    { return 9 }
func (Sketch) payloadSize() int  { return 16 }
func (Done) payloadSize() int    { return 4 }
func (Verdict) payloadSize() int { return 12 }

func (h Hello) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, h.Node)
	dst = binary.BigEndian.AppendUint32(dst, h.K)
	return binary.BigEndian.AppendUint32(dst, h.Trials)
}

func (h *Hello) decodePayload(p []byte) error {
	h.Node = binary.BigEndian.Uint32(p[0:4])
	h.K = binary.BigEndian.Uint32(p[4:8])
	h.Trials = binary.BigEndian.Uint32(p[8:12])
	return nil
}

func (v Vote) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, v.Trial)
	dst = binary.BigEndian.AppendUint32(dst, v.Node)
	flag := byte(0)
	if v.Reject {
		flag = 1
	}
	return append(dst, flag)
}

func (v *Vote) decodePayload(p []byte) error {
	v.Trial = binary.BigEndian.Uint32(p[0:4])
	v.Node = binary.BigEndian.Uint32(p[4:8])
	switch p[8] {
	case 0:
		v.Reject = false
	case 1:
		v.Reject = true
	default:
		return fmt.Errorf("%w: vote flag %d", ErrFrameSize, p[8])
	}
	return nil
}

func (s Sketch) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, s.Trial)
	dst = binary.BigEndian.AppendUint32(dst, s.Node)
	dst = binary.BigEndian.AppendUint32(dst, s.Samples)
	return binary.BigEndian.AppendUint32(dst, s.Collisions)
}

func (s *Sketch) decodePayload(p []byte) error {
	s.Trial = binary.BigEndian.Uint32(p[0:4])
	s.Node = binary.BigEndian.Uint32(p[4:8])
	s.Samples = binary.BigEndian.Uint32(p[8:12])
	s.Collisions = binary.BigEndian.Uint32(p[12:16])
	return nil
}

func (d Done) appendPayload(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, d.Node)
}

func (d *Done) decodePayload(p []byte) error {
	d.Node = binary.BigEndian.Uint32(p[0:4])
	return nil
}

func (v Verdict) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, v.Trials)
	dst = binary.BigEndian.AppendUint32(dst, v.Accepts)
	return binary.BigEndian.AppendUint32(dst, v.Missing)
}

func (v *Verdict) decodePayload(p []byte) error {
	v.Trials = binary.BigEndian.Uint32(p[0:4])
	v.Accepts = binary.BigEndian.Uint32(p[4:8])
	v.Missing = binary.BigEndian.Uint32(p[8:12])
	return nil
}

// Append appends f's full wire encoding (length prefix, version, type,
// payload) to dst and returns the extended slice. Frames encoded this way
// carry no trace context and are stamped MinVersion — byte-identical to the
// pre-trace protocol.
func Append(dst []byte, f Frame) []byte {
	return AppendTraced(dst, f, TraceContext{})
}

// AppendTraced appends f's wire encoding carrying tc. A context with a zero
// trace ID is treated as absent and encodes exactly like Append; a nonzero
// one adds the 16-byte suffix — stamping single-vote frames at TraceVersion
// and setting the trace flag on batch frames (which are always stamped
// BatchVersion). Batch frames encode their raw (uncompressed) form here;
// use a BatchEncoder to opportunistically compress.
func AppendTraced(dst []byte, f Frame, tc TraceContext) []byte {
	switch t := f.Type(); t {
	case TypeVoteBatch, TypeVoteBatchZ:
		return appendFlaggedFrame(dst, BatchVersion, t, f.payloadSize(), f.appendPayload, tc)
	case TypeAggHello, TypePartialVerdict:
		return appendFlaggedFrame(dst, PartialVersion, t, f.payloadSize(), f.appendPayload, tc)
	case TypeSessionOpen, TypeSessionAccept, TypeSessionReject, TypeSessionReport:
		return appendFlaggedFrame(dst, SessionVersion, t, f.payloadSize(), f.appendPayload, tc)
	}
	if tc.IsZero() {
		n := 2 + f.payloadSize() // version + type + payload
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		dst = append(dst, MinVersion, f.Type())
		return f.appendPayload(dst)
	}
	n := 2 + f.payloadSize() + traceContextBytes
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, TraceVersion, f.Type())
	dst = f.appendPayload(dst)
	dst = binary.BigEndian.AppendUint64(dst, tc.Trace)
	return binary.BigEndian.AppendUint64(dst, tc.Span)
}

// appendFlaggedFrame writes a frame whose type byte's high bit flags the
// trace suffix (batch and aggregation versions): the payload producer is a
// callback so raw VoteBatch encoding, pre-compressed payloads and partial
// verdicts all share the header/suffix logic.
func appendFlaggedFrame(dst []byte, version, typ byte, size int, payload func([]byte) []byte, tc TraceContext) []byte {
	n := 2 + size
	t := typ
	if !tc.IsZero() {
		n += traceContextBytes
		t |= traceFlag
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, version, t)
	dst = payload(dst)
	if !tc.IsZero() {
		dst = binary.BigEndian.AppendUint64(dst, tc.Trace)
		dst = binary.BigEndian.AppendUint64(dst, tc.Span)
	}
	return dst
}

// EncodedSize returns the full untraced on-wire size of f including the
// length prefix.
func EncodedSize(f Frame) int { return headerBytes + 2 + f.payloadSize() }

// EncodedSizeTraced returns the on-wire size of f when carrying tc.
func EncodedSizeTraced(f Frame, tc TraceContext) int {
	if tc.IsZero() {
		return EncodedSize(f)
	}
	return EncodedSize(f) + traceContextBytes
}

// Decode parses one frame from the front of b, returning the frame and the
// number of bytes consumed (any trace context is validated but dropped; use
// DecodeTraced to keep it). An incomplete buffer returns ErrTruncated (a
// stream reader should read more and retry); a malformed one returns
// ErrOversize, ErrVersion, ErrUnknownType, ErrFrameSize or ErrTraceContext.
func Decode(b []byte) (Frame, int, error) {
	f, _, n, err := DecodeTraced(b)
	return f, n, err
}

// DecodeTraced parses one frame and its trace context from the front of b.
// The context is zero for version-1 frames.
func DecodeTraced(b []byte) (Frame, TraceContext, int, error) {
	if len(b) < headerBytes {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxBatchFrameBytes {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: declared %d bytes (limit %d)", ErrOversize, n, MaxBatchFrameBytes)
	}
	if n < 2 {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: declared %d bytes, need ≥ 2", ErrFrameSize, n)
	}
	total := headerBytes + int(n)
	if len(b) < total {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: have %d of %d bytes", ErrTruncated, len(b), total)
	}
	f, tc, err := decodeBody(b[headerBytes:total], nil)
	if err != nil {
		return nil, TraceContext{}, 0, err
	}
	return f, tc, total, nil
}

// DecodeScratch holds reusable frame values and buffers so a steady-state
// decode loop allocates nothing. Frames returned from a scratch-backed
// decode are only valid until the next decode with the same scratch; each
// connection handler owns its own scratch.
type DecodeScratch struct {
	hello   Hello
	vote    Vote
	sketch  Sketch
	done    Done
	verdict Verdict
	batch   VoteBatch
	// aggHello and partial back the aggregation-tier frame types.
	aggHello AggHello
	partial  PartialVerdict
	// open, accept, reject and report back the session control types.
	open   SessionOpen
	accept SessionAccept
	reject SessionReject
	report SessionReport
	// zbuf holds a decompressed batch payload between decodes.
	zbuf []byte
}

// decodeBody parses version, type, payload and optional trace context from
// a complete frame body, validating but dropping any session context. With
// a non-nil scratch the returned frame aliases scratch storage instead of
// allocating.
func decodeBody(body []byte, sc *DecodeScratch) (Frame, TraceContext, error) {
	f, tc, _, err := decodeBodyAll(body, sc)
	return f, tc, err
}

// scratchSingleFrame returns the scratch-held value for a single-vote
// frame type (nil scratch allocates). The scratch values avoid a per-frame
// allocation on the referee's hot decode loop; decodePayload writes every
// field (all payloads are fixed-shape), so no reset between reuses is
// needed.
func scratchSingleFrame(t byte, sc *DecodeScratch) Frame {
	if sc == nil {
		switch t {
		case TypeHello:
			return &Hello{}
		case TypeVote:
			return &Vote{}
		case TypeSketch:
			return &Sketch{}
		case TypeDone:
			return &Done{}
		default:
			return &Verdict{}
		}
	}
	switch t {
	case TypeHello:
		return &sc.hello
	case TypeVote:
		return &sc.vote
	case TypeSketch:
		return &sc.sketch
	case TypeDone:
		return &sc.done
	default:
		return &sc.verdict
	}
}

// decodeBodyAll is the full-fidelity body decoder: frame, trace context
// and session ID (zero below SessionVersion and for control frames, which
// carry any session identity in their payload instead).
func decodeBodyAll(body []byte, sc *DecodeScratch) (Frame, TraceContext, uint32, error) {
	v := body[0]
	if v < MinVersion || v > Version {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: got %d, want %d..%d", ErrVersion, v, MinVersion, Version)
	}
	switch v {
	case BatchVersion:
		f, tc, err := decodeBatchBody(body, sc)
		return f, tc, 0, err
	case PartialVersion:
		f, tc, err := decodePartialBody(body, sc)
		return f, tc, 0, err
	case SessionVersion:
		return decodeSessionBody(body, sc)
	}
	var f Frame
	switch t := body[1]; t {
	case TypeHello, TypeVote, TypeSketch, TypeDone, TypeVerdict:
		f = scratchSingleFrame(t, sc)
	case TypeVoteBatch, TypeVoteBatchZ:
		return nil, TraceContext{}, 0, fmt.Errorf("%w: batch type %d requires v%d, got v%d",
			ErrVersion, t, BatchVersion, v)
	case TypeAggHello, TypePartialVerdict:
		return nil, TraceContext{}, 0, fmt.Errorf("%w: aggregation type %d requires v%d, got v%d",
			ErrVersion, t, PartialVersion, v)
	case TypeSessionOpen, TypeSessionAccept, TypeSessionReject, TypeSessionReport:
		return nil, TraceContext{}, 0, fmt.Errorf("%w: session type %d requires v%d, got v%d",
			ErrVersion, t, SessionVersion, v)
	default:
		return nil, TraceContext{}, 0, fmt.Errorf("%w: type %d", ErrUnknownType, t)
	}
	payload := body[2:]
	var tc TraceContext
	if v >= TraceVersion {
		// Version 2 requires the trace-context suffix.
		want := f.payloadSize() + traceContextBytes
		if len(payload) != want {
			return nil, TraceContext{}, 0, fmt.Errorf("%w: type %d v%d payload %d bytes, want %d",
				ErrFrameSize, body[1], v, len(payload), want)
		}
		tail := payload[f.payloadSize():]
		tc.Trace = binary.BigEndian.Uint64(tail[:8])
		tc.Span = binary.BigEndian.Uint64(tail[8:])
		if tc.Trace == 0 {
			return nil, TraceContext{}, 0, fmt.Errorf("%w: zero trace ID on a v%d frame", ErrTraceContext, v)
		}
		payload = payload[:f.payloadSize()]
	} else if len(payload) != f.payloadSize() {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: type %d payload %d bytes, want %d",
			ErrFrameSize, body[1], len(payload), f.payloadSize())
	}
	if err := f.decodePayload(payload); err != nil {
		return nil, TraceContext{}, 0, err
	}
	return f, tc, 0, nil
}

// decodeBatchBody parses a BatchVersion frame body: trace flag in the type
// byte, batch payload (optionally compressed), optional trace suffix.
func decodeBatchBody(body []byte, sc *DecodeScratch) (Frame, TraceContext, error) {
	t := body[1]
	base := t &^ traceFlag
	if base != TypeVoteBatch && base != TypeVoteBatchZ {
		if base >= TypeHello && base <= TypeSessionReport {
			// Every type has exactly one valid version; re-encoding another
			// type at v3 would break the canonical-bytes invariant.
			return nil, TraceContext{}, fmt.Errorf("%w: type %d not valid at v%d", ErrVersion, base, BatchVersion)
		}
		return nil, TraceContext{}, fmt.Errorf("%w: type %d", ErrUnknownType, base)
	}
	if len(body) > FrameCap(base) {
		return nil, TraceContext{}, fmt.Errorf("%w: %d-byte %s frame (limit %d)",
			ErrOversize, len(body), TypeName(base), FrameCap(base))
	}
	payload := body[2:]
	var tc TraceContext
	if t&traceFlag != 0 {
		if len(payload) < traceContextBytes {
			return nil, TraceContext{}, fmt.Errorf("%w: traced %s frame with %d-byte body",
				ErrFrameSize, TypeName(base), len(body))
		}
		tail := payload[len(payload)-traceContextBytes:]
		tc.Trace = binary.BigEndian.Uint64(tail[:8])
		tc.Span = binary.BigEndian.Uint64(tail[8:])
		if tc.Trace == 0 {
			return nil, TraceContext{}, fmt.Errorf("%w: zero trace ID on a v%d frame", ErrTraceContext, BatchVersion)
		}
		payload = payload[:len(payload)-traceContextBytes]
	}
	vb, err := decodeBatchPayload(base, payload, sc)
	if err != nil {
		return nil, TraceContext{}, err
	}
	return vb, tc, nil
}

// decodeBatchPayload parses a raw or compressed batch payload (shared by
// the v3 and v5 decode paths).
func decodeBatchPayload(base byte, payload []byte, sc *DecodeScratch) (*VoteBatch, error) {
	var vb *VoteBatch
	if sc != nil {
		vb = &sc.batch
	} else {
		vb = &VoteBatch{}
	}
	if base == TypeVoteBatch {
		vb.Compressed, vb.Saved = false, 0
		if err := vb.decodePayload(payload); err != nil {
			return nil, err
		}
		return vb, nil
	}
	raw, saved, err := decodeZPayload(payload, sc)
	if err != nil {
		return nil, err
	}
	if err := vb.decodePayload(raw); err != nil {
		return nil, err
	}
	vb.Compressed, vb.Saved = true, saved
	return vb, nil
}

// WriteFrame writes f's encoding to w in one Write call (frames are small
// enough that partial writes only occur on a failing connection).
func WriteFrame(w io.Writer, f Frame) error {
	return WriteFrameTraced(w, f, TraceContext{})
}

// WriteFrameTraced writes f's encoding carrying tc to w in one Write call.
func WriteFrameTraced(w io.Writer, f Frame, tc TraceContext) error {
	buf := make([]byte, 0, EncodedSizeTraced(f, tc))
	buf = AppendTraced(buf, f, tc)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write %T: %w", f, err)
	}
	return nil
}

// Reader decodes a frame stream from an io.Reader with reusable buffers:
// an inline array covering every single-vote frame and a lazily-allocated,
// reused spill buffer for batch frames (bounded by MaxBatchFrameBytes).
type Reader struct {
	r   io.Reader
	big []byte
	buf [headerBytes + MaxFrameBytes]byte
}

// NewReader wraps r as a frame stream.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadFrame reads and decodes the next frame, dropping any trace context.
// io.EOF is returned unwrapped at a clean frame boundary; an EOF mid-frame
// surfaces as ErrTruncated.
func (r *Reader) ReadFrame() (Frame, error) {
	f, _, err := r.ReadFrameTraced()
	return f, err
}

// ReadFrameTraced reads and decodes the next frame along with its trace
// context (zero for version-1 frames).
func (r *Reader) ReadFrameTraced() (Frame, TraceContext, error) {
	body, err := r.ReadBody()
	if err != nil {
		return nil, TraceContext{}, err
	}
	return DecodeBody(body)
}

// DecodeBody parses a complete frame body (version, type, payload, optional
// trace context) as returned by Reader.ReadBody. Callers that want to time
// decoding separately from blocking I/O use ReadBody + DecodeBody; the
// fused form is ReadFrameTraced.
func DecodeBody(body []byte) (Frame, TraceContext, error) {
	return decodeBody(body, nil)
}

// DecodeBodyScratch is DecodeBody with caller-owned scratch: the returned
// frame aliases scratch storage, so steady-state decode allocates nothing.
// The frame is only valid until the next decode with the same scratch.
func DecodeBodyScratch(body []byte, sc *DecodeScratch) (Frame, TraceContext, error) {
	return decodeBody(body, sc)
}

// DecodeBodySession is the session-aware form of DecodeBodyScratch: it
// additionally returns the frame's session ID — zero for frames below
// SessionVersion and for the session control types, which carry any
// session identity inside their payload. Scratch may be nil.
func DecodeBodySession(body []byte, sc *DecodeScratch) (Frame, TraceContext, uint32, error) {
	return decodeBodyAll(body, sc)
}

// ReadBody reads the next frame's body into the reader's internal buffer
// and returns it without decoding. The slice is only valid until the next
// read call. Single-vote bodies land in a fixed inline array; batch-sized
// bodies use a second buffer that is allocated on first use and reused for
// the life of the reader, so steady-state reads allocate nothing.
func (r *Reader) ReadBody() ([]byte, error) {
	head := r.buf[:headerBytes]
	if _, err := io.ReadFull(r.r, head); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: EOF inside length prefix", ErrTruncated)
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(head)
	if n > MaxBatchFrameBytes {
		return nil, fmt.Errorf("%w: declared %d bytes (limit %d)", ErrOversize, n, MaxBatchFrameBytes)
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: declared %d bytes, need ≥ 2", ErrFrameSize, n)
	}
	var body []byte
	if n <= MaxFrameBytes {
		body = r.buf[headerBytes : headerBytes+int(n)]
	} else {
		if cap(r.big) < int(n) {
			// Grow geometrically to the declared size: steady-state streams
			// reuse the buffer, and a reader of small batches never pays for
			// the full MaxBatchFrameBytes cap.
			want := 2 * cap(r.big)
			if want < int(n) {
				want = int(n)
			}
			if want > MaxBatchFrameBytes {
				want = MaxBatchFrameBytes
			}
			r.big = make([]byte, want)
		}
		body = r.big[:n]
	}
	if _, err := io.ReadFull(r.r, body); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: EOF inside %d-byte body", ErrTruncated, n)
		}
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	return body, nil
}
