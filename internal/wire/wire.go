// Package wire is the cluster runtime's binary codec: a length-prefixed,
// versioned framing for the messages the 0-round protocols exchange over
// real connections — a node's Hello, its per-trial Vote (or collision
// Sketch), the Done marker closing its vote stream, and the referee's
// Verdict.
//
// Every frame on the wire is
//
//	[4-byte big-endian frame length][1-byte version][1-byte type][payload]
//
// where the length counts the version, type and payload bytes (not the
// prefix itself). Two versions are in play: version 1 frames carry the bare
// payload, and version 2 frames append a 16-byte trace context (trace ID +
// span ID, both big-endian uint64, trace ID nonzero) that links the frame
// into the telemetry plane's distributed trace. The encoder stamps version
// 1 whenever no trace context is attached — untraced traffic is
// byte-identical to the pre-trace protocol, so version-1-only decoders keep
// accepting it — and the decoder accepts both versions, rejecting anything
// newer with ErrVersion. Trace context is observability metadata only: the
// referee's verdicts never depend on it.
//
// Frames are tiny and fixed-size per type; the decoder enforces both the
// per-type payload size and a global MaxFrameBytes cap before reading a
// body, mirroring the simulator's CONGEST bandwidth check
// (simnet.ErrBandwidthExceeded): a peer cannot make the referee allocate or
// buffer unbounded memory by lying in the length prefix, and an oversized
// frame is a protocol error, not a crash.
//
// Decoding never panics on adversarial input: truncated, oversized,
// wrong-version, unknown-type, mis-sized and bad-trace-context frames all
// surface as typed errors (ErrTruncated, ErrOversize, ErrVersion,
// ErrUnknownType, ErrFrameSize, ErrTraceContext), which FuzzWireRoundTrip
// pins.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the current protocol version: version-2 frames carry a
// trailing TraceContext. The encoder only stamps it on traced frames;
// untraced frames encode at MinVersion so pre-trace decoders still accept
// them.
const Version = 2

// MinVersion is the oldest protocol version the decoder accepts: the
// trace-free framing of the original cluster runtime.
const MinVersion = 1

// MaxFrameBytes caps the on-wire frame length (version + type + payload +
// optional trace context). All defined frames are ≤ 34 bytes; the cap
// leaves headroom for future frame types while keeping the referee's
// per-connection buffer trivially bounded — the cluster analogue of the
// CONGEST per-edge bandwidth limit.
const MaxFrameBytes = 64

// headerBytes is the length prefix size.
const headerBytes = 4

// traceContextBytes is the encoded size of a TraceContext suffix.
const traceContextBytes = 16

// TraceContext is the optional trace correlation suffix of a version-2
// frame: the sender's trace ID and the span that emitted the frame. A zero
// Trace means "absent" — such frames encode at MinVersion without the
// suffix, and the decoder rejects a version-2 frame whose trace ID is zero
// (ErrTraceContext) so every encoding has exactly one byte representation.
type TraceContext struct {
	Trace uint64
	Span  uint64
}

// IsZero reports whether the context is absent (no trace ID).
func (tc TraceContext) IsZero() bool { return tc.Trace == 0 }

// Frame type identifiers.
const (
	// TypeHello opens a node's session: node ID, network size, trial count.
	TypeHello = byte(iota + 1)
	// TypeVote carries one node's accept/reject for one trial.
	TypeVote
	// TypeSketch carries one node's raw collision statistic for one trial,
	// letting the referee derive the vote server-side (single-collision
	// testers: reject iff Collisions > 0).
	TypeSketch
	// TypeDone marks the end of a node's vote stream.
	TypeDone
	// TypeVerdict is the referee's closing summary to each node.
	TypeVerdict
)

// TypeName returns a short lowercase name for a frame type byte, for
// metric and span labels ("hello", "vote", ...; "type<N>" when unknown).
func TypeName(t byte) string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeVote:
		return "vote"
	case TypeSketch:
		return "sketch"
	case TypeDone:
		return "done"
	case TypeVerdict:
		return "verdict"
	default:
		return fmt.Sprintf("type%d", t)
	}
}

// Codec errors. Decode and ReadFrame wrap these with positional detail;
// match with errors.Is.
var (
	// ErrTruncated marks a frame cut short: a header or body shorter than
	// its declared length.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrOversize marks a length prefix beyond MaxFrameBytes.
	ErrOversize = errors.New("wire: frame exceeds size limit")
	// ErrVersion marks a version byte other than Version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrUnknownType marks an unrecognized frame type byte.
	ErrUnknownType = errors.New("wire: unknown frame type")
	// ErrFrameSize marks a known frame type with the wrong payload size.
	ErrFrameSize = errors.New("wire: wrong payload size for frame type")
	// ErrTraceContext marks a version-2 frame whose trace context is
	// malformed (zero trace ID).
	ErrTraceContext = errors.New("wire: invalid trace context")
)

// Frame is one protocol message. Implementations are small value types;
// encoding is allocation-free via AppendTo.
type Frame interface {
	// Type returns the frame's type byte.
	Type() byte
	// payloadSize returns the exact encoded payload length.
	payloadSize() int
	// appendPayload appends the payload encoding to dst.
	appendPayload(dst []byte) []byte
	// decodePayload parses a payload of exactly payloadSize bytes.
	decodePayload(p []byte) error
}

// Hello opens a node's session with the referee.
type Hello struct {
	// Node is the sender's ID in [0, K).
	Node uint32
	// K is the network size the node was configured with; the referee
	// rejects mismatches.
	K uint32
	// Trials is the number of votes the node will submit.
	Trials uint32
}

// Vote is one node's verdict on one trial.
type Vote struct {
	// Trial indexes the Monte-Carlo trial in [0, Trials).
	Trial uint32
	// Node is the voting node's ID.
	Node uint32
	// Reject is true when the node's tester rejected its sample block.
	Reject bool
}

// Sketch is the raw statistic behind a vote: the node's sample count and
// collision count for one trial. For single-collision testers the referee
// derives Reject = Collisions > 0, so Vote and Sketch submissions yield
// identical verdicts.
type Sketch struct {
	Trial uint32
	Node  uint32
	// Samples is the number of samples the node drew this trial.
	Samples uint32
	// Collisions is the number of colliding pairs among them.
	Collisions uint32
}

// Done closes a node's vote stream; the referee treats the node as
// complete even if some of its votes were lost in transit.
type Done struct {
	Node uint32
}

// Verdict is the referee's closing summary, broadcast to every node still
// connected when the run finalizes.
type Verdict struct {
	// Trials is the number of trials decided; Accepts of them accepted.
	Trials  uint32
	Accepts uint32
	// Missing is the total number of votes that never arrived (decided by
	// quorum policy instead).
	Missing uint32
}

func (Hello) Type() byte   { return TypeHello }
func (Vote) Type() byte    { return TypeVote }
func (Sketch) Type() byte  { return TypeSketch }
func (Done) Type() byte    { return TypeDone }
func (Verdict) Type() byte { return TypeVerdict }

func (Hello) payloadSize() int   { return 12 }
func (Vote) payloadSize() int    { return 9 }
func (Sketch) payloadSize() int  { return 16 }
func (Done) payloadSize() int    { return 4 }
func (Verdict) payloadSize() int { return 12 }

func (h Hello) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, h.Node)
	dst = binary.BigEndian.AppendUint32(dst, h.K)
	return binary.BigEndian.AppendUint32(dst, h.Trials)
}

func (h *Hello) decodePayload(p []byte) error {
	h.Node = binary.BigEndian.Uint32(p[0:4])
	h.K = binary.BigEndian.Uint32(p[4:8])
	h.Trials = binary.BigEndian.Uint32(p[8:12])
	return nil
}

func (v Vote) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, v.Trial)
	dst = binary.BigEndian.AppendUint32(dst, v.Node)
	flag := byte(0)
	if v.Reject {
		flag = 1
	}
	return append(dst, flag)
}

func (v *Vote) decodePayload(p []byte) error {
	v.Trial = binary.BigEndian.Uint32(p[0:4])
	v.Node = binary.BigEndian.Uint32(p[4:8])
	switch p[8] {
	case 0:
		v.Reject = false
	case 1:
		v.Reject = true
	default:
		return fmt.Errorf("%w: vote flag %d", ErrFrameSize, p[8])
	}
	return nil
}

func (s Sketch) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, s.Trial)
	dst = binary.BigEndian.AppendUint32(dst, s.Node)
	dst = binary.BigEndian.AppendUint32(dst, s.Samples)
	return binary.BigEndian.AppendUint32(dst, s.Collisions)
}

func (s *Sketch) decodePayload(p []byte) error {
	s.Trial = binary.BigEndian.Uint32(p[0:4])
	s.Node = binary.BigEndian.Uint32(p[4:8])
	s.Samples = binary.BigEndian.Uint32(p[8:12])
	s.Collisions = binary.BigEndian.Uint32(p[12:16])
	return nil
}

func (d Done) appendPayload(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, d.Node)
}

func (d *Done) decodePayload(p []byte) error {
	d.Node = binary.BigEndian.Uint32(p[0:4])
	return nil
}

func (v Verdict) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, v.Trials)
	dst = binary.BigEndian.AppendUint32(dst, v.Accepts)
	return binary.BigEndian.AppendUint32(dst, v.Missing)
}

func (v *Verdict) decodePayload(p []byte) error {
	v.Trials = binary.BigEndian.Uint32(p[0:4])
	v.Accepts = binary.BigEndian.Uint32(p[4:8])
	v.Missing = binary.BigEndian.Uint32(p[8:12])
	return nil
}

// Append appends f's full wire encoding (length prefix, version, type,
// payload) to dst and returns the extended slice. Frames encoded this way
// carry no trace context and are stamped MinVersion — byte-identical to the
// pre-trace protocol.
func Append(dst []byte, f Frame) []byte {
	return AppendTraced(dst, f, TraceContext{})
}

// AppendTraced appends f's wire encoding carrying tc. A context with a zero
// trace ID is treated as absent and encodes exactly like Append; a nonzero
// one stamps the frame at Version with the 16-byte suffix.
func AppendTraced(dst []byte, f Frame, tc TraceContext) []byte {
	if tc.IsZero() {
		n := 2 + f.payloadSize() // version + type + payload
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		dst = append(dst, MinVersion, f.Type())
		return f.appendPayload(dst)
	}
	n := 2 + f.payloadSize() + traceContextBytes
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, Version, f.Type())
	dst = f.appendPayload(dst)
	dst = binary.BigEndian.AppendUint64(dst, tc.Trace)
	return binary.BigEndian.AppendUint64(dst, tc.Span)
}

// EncodedSize returns the full untraced on-wire size of f including the
// length prefix.
func EncodedSize(f Frame) int { return headerBytes + 2 + f.payloadSize() }

// EncodedSizeTraced returns the on-wire size of f when carrying tc.
func EncodedSizeTraced(f Frame, tc TraceContext) int {
	if tc.IsZero() {
		return EncodedSize(f)
	}
	return EncodedSize(f) + traceContextBytes
}

// Decode parses one frame from the front of b, returning the frame and the
// number of bytes consumed (any trace context is validated but dropped; use
// DecodeTraced to keep it). An incomplete buffer returns ErrTruncated (a
// stream reader should read more and retry); a malformed one returns
// ErrOversize, ErrVersion, ErrUnknownType, ErrFrameSize or ErrTraceContext.
func Decode(b []byte) (Frame, int, error) {
	f, _, n, err := DecodeTraced(b)
	return f, n, err
}

// DecodeTraced parses one frame and its trace context from the front of b.
// The context is zero for version-1 frames.
func DecodeTraced(b []byte) (Frame, TraceContext, int, error) {
	if len(b) < headerBytes {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxFrameBytes {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: declared %d bytes (limit %d)", ErrOversize, n, MaxFrameBytes)
	}
	if n < 2 {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: declared %d bytes, need ≥ 2", ErrFrameSize, n)
	}
	total := headerBytes + int(n)
	if len(b) < total {
		return nil, TraceContext{}, 0, fmt.Errorf("%w: have %d of %d bytes", ErrTruncated, len(b), total)
	}
	f, tc, err := decodeBody(b[headerBytes:total])
	if err != nil {
		return nil, TraceContext{}, 0, err
	}
	return f, tc, total, nil
}

// decodeBody parses version, type, payload and optional trace context from
// a complete frame body.
func decodeBody(body []byte) (Frame, TraceContext, error) {
	v := body[0]
	if v < MinVersion || v > Version {
		return nil, TraceContext{}, fmt.Errorf("%w: got %d, want %d..%d", ErrVersion, v, MinVersion, Version)
	}
	var f Frame
	switch t := body[1]; t {
	case TypeHello:
		f = &Hello{}
	case TypeVote:
		f = &Vote{}
	case TypeSketch:
		f = &Sketch{}
	case TypeDone:
		f = &Done{}
	case TypeVerdict:
		f = &Verdict{}
	default:
		return nil, TraceContext{}, fmt.Errorf("%w: type %d", ErrUnknownType, t)
	}
	payload := body[2:]
	var tc TraceContext
	if v >= Version {
		// Version 2 requires the trace-context suffix.
		want := f.payloadSize() + traceContextBytes
		if len(payload) != want {
			return nil, TraceContext{}, fmt.Errorf("%w: type %d v%d payload %d bytes, want %d",
				ErrFrameSize, body[1], v, len(payload), want)
		}
		tail := payload[f.payloadSize():]
		tc.Trace = binary.BigEndian.Uint64(tail[:8])
		tc.Span = binary.BigEndian.Uint64(tail[8:])
		if tc.Trace == 0 {
			return nil, TraceContext{}, fmt.Errorf("%w: zero trace ID on a v%d frame", ErrTraceContext, v)
		}
		payload = payload[:f.payloadSize()]
	} else if len(payload) != f.payloadSize() {
		return nil, TraceContext{}, fmt.Errorf("%w: type %d payload %d bytes, want %d",
			ErrFrameSize, body[1], len(payload), f.payloadSize())
	}
	if err := f.decodePayload(payload); err != nil {
		return nil, TraceContext{}, err
	}
	return f, tc, nil
}

// WriteFrame writes f's encoding to w in one Write call (frames are small
// enough that partial writes only occur on a failing connection).
func WriteFrame(w io.Writer, f Frame) error {
	return WriteFrameTraced(w, f, TraceContext{})
}

// WriteFrameTraced writes f's encoding carrying tc to w in one Write call.
func WriteFrameTraced(w io.Writer, f Frame, tc TraceContext) error {
	buf := make([]byte, 0, EncodedSizeTraced(f, tc))
	buf = AppendTraced(buf, f, tc)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write %T: %w", f, err)
	}
	return nil
}

// Reader decodes a frame stream from an io.Reader with a single reusable
// buffer bounded by MaxFrameBytes.
type Reader struct {
	r   io.Reader
	buf [headerBytes + MaxFrameBytes]byte
}

// NewReader wraps r as a frame stream.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadFrame reads and decodes the next frame, dropping any trace context.
// io.EOF is returned unwrapped at a clean frame boundary; an EOF mid-frame
// surfaces as ErrTruncated.
func (r *Reader) ReadFrame() (Frame, error) {
	f, _, err := r.ReadFrameTraced()
	return f, err
}

// ReadFrameTraced reads and decodes the next frame along with its trace
// context (zero for version-1 frames).
func (r *Reader) ReadFrameTraced() (Frame, TraceContext, error) {
	body, err := r.ReadBody()
	if err != nil {
		return nil, TraceContext{}, err
	}
	return DecodeBody(body)
}

// DecodeBody parses a complete frame body (version, type, payload, optional
// trace context) as returned by Reader.ReadBody. Callers that want to time
// decoding separately from blocking I/O use ReadBody + DecodeBody; the
// fused form is ReadFrameTraced.
func DecodeBody(body []byte) (Frame, TraceContext, error) {
	return decodeBody(body)
}

// ReadBody reads the next frame's body into the reader's internal buffer
// and returns it without decoding. The slice is only valid until the next
// read call.
func (r *Reader) ReadBody() ([]byte, error) {
	head := r.buf[:headerBytes]
	if _, err := io.ReadFull(r.r, head); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: EOF inside length prefix", ErrTruncated)
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(head)
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: declared %d bytes (limit %d)", ErrOversize, n, MaxFrameBytes)
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: declared %d bytes, need ≥ 2", ErrFrameSize, n)
	}
	body := r.buf[headerBytes : headerBytes+int(n)]
	if _, err := io.ReadFull(r.r, body); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: EOF inside %d-byte body", ErrTruncated, n)
		}
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	return body, nil
}
