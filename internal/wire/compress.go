// Block compression for batch frames: a small, stdlib-only LZ77 codec in
// the LZ4 block format family (greedy hash-chain matcher, token byte with
// nibble-encoded literal/match lengths, 2-byte little-endian offsets).
//
// Rolling our own — rather than compress/flate — buys a property the
// differential tests rely on: the encoder is deterministic by
// construction. Output bytes are a pure function of the input block (one
// fixed hash function, one greedy parse, no heuristics keyed to internal
// buffer states), so identical batches encode identically across runs, Go
// versions and architectures, and golden-byte tests can pin the encoding.
// Like goXRPLd's peer-message compression, a block is only sent compressed
// when compression actually shrank it: CompressBlock returns nil on
// expansion and the caller falls back to the raw form.
//
// The decoder never panics on adversarial input: every read is
// bounds-checked, offsets must point inside the produced output, and the
// caller supplies a hard output cap so a malicious block cannot expand
// beyond the frame limits (no decompression bombs).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MinCompressibleSize is the smallest raw batch payload the encoder
// attempts to compress. Below it the token/offset overhead dominates any
// plausible saving, so batches stay raw (mirroring the threshold idiom in
// production peer-message compressors).
const MinCompressibleSize = 64

// ErrCompression marks a malformed compressed block: truncated sequence,
// out-of-range match offset, or output beyond the caller's cap.
var ErrCompression = errors.New("wire: malformed compressed block")

const (
	// zMinMatch is the shortest back-reference worth a sequence: token +
	// offset cost 3 bytes, so 4-byte matches are the break-even floor.
	zMinMatch = 4
	// zHashBits sizes the match table: 8 KiB of positions, plenty for
	// payloads capped at MaxBatchFrameBytes.
	zHashBits = 13
	// zMaxOffset is the farthest back-reference a 2-byte offset reaches.
	zMaxOffset = 1<<16 - 1
)

// zHash maps the 4 bytes at the match point into the table index
// (multiplicative hashing by the 32-bit golden-ratio constant).
func zHash(v uint32) uint32 { return v * 2654435761 >> (32 - zHashBits) }

// appendVarLen appends an LZ4-style length extension: runs of 255 with a
// final byte < 255.
func appendVarLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// readVarLen reads a length extension at src[off:], bounding the
// accumulated value by max so corrupt runs cannot overflow.
func readVarLen(src []byte, off, max int) (int, int, error) {
	v := 0
	for {
		if off >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length run", ErrCompression)
		}
		b := src[off]
		off++
		v += int(b)
		if v > max {
			return 0, 0, fmt.Errorf("%w: length run exceeds %d", ErrCompression, max)
		}
		if b < 255 {
			return v, off, nil
		}
	}
}

// appendSequence emits one [token][litLen ext][literals][offset][matchLen
// ext] sequence; matchLen == 0 marks the trailing literal-only sequence
// (no offset follows).
func appendSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	ext := 0
	if matchLen > 0 {
		ext = matchLen - zMinMatch
		if ext >= 15 {
			token |= 15
		} else {
			token |= byte(ext)
		}
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendVarLen(dst, litLen-15)
	}
	dst = append(dst, literals...)
	if matchLen > 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(offset))
		if ext >= 15 {
			dst = appendVarLen(dst, ext-15)
		}
	}
	return dst
}

// CompressBlock appends a compressed copy of src to dst and returns the
// extended slice, or nil when the compressed form would not be strictly
// smaller than src (the caller then sends the block raw). Deterministic:
// the output depends only on src.
func CompressBlock(src, dst []byte) []byte {
	if len(src) < zMinMatch*2 {
		return nil
	}
	base := len(dst)
	// Positions are stored +1 so the zero value means "empty slot".
	var table [1 << zHashBits]int32
	// Stop matching zMinMatch before the end so the 4-byte loads below
	// stay in bounds.
	limit := len(src) - zMinMatch
	anchor, i := 0, 0
	for i <= limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := zHash(v)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > zMaxOffset || binary.LittleEndian.Uint32(src[cand:]) != v {
			i++
			continue
		}
		ml := zMinMatch
		for i+ml < len(src) && src[cand+ml] == src[i+ml] {
			ml++
		}
		dst = appendSequence(dst, src[anchor:i], i-cand, ml)
		i += ml
		anchor = i
		if len(dst)-base >= len(src) {
			return nil
		}
	}
	dst = appendSequence(dst, src[anchor:], 0, 0)
	if len(dst)-base >= len(src) {
		return nil
	}
	return dst
}

// DecompressBlock appends the decompression of src to dst, refusing to
// produce more than maxOut bytes beyond dst's initial length. Adversarial
// input surfaces as ErrCompression, never a panic.
func DecompressBlock(src, dst []byte, maxOut int) ([]byte, error) {
	base := len(dst)
	off := 0
	for off < len(src) {
		token := src[off]
		off++
		lit := int(token >> 4)
		if lit == 15 {
			ext, noff, err := readVarLen(src, off, maxOut)
			if err != nil {
				return nil, err
			}
			lit += ext
			off = noff
		}
		if off+lit > len(src) {
			return nil, fmt.Errorf("%w: truncated literals", ErrCompression)
		}
		if len(dst)-base+lit > maxOut {
			return nil, fmt.Errorf("%w: output exceeds %d bytes", ErrCompression, maxOut)
		}
		dst = append(dst, src[off:off+lit]...)
		off += lit
		if off == len(src) {
			// Trailing literal-only sequence: the stream ends here.
			return dst, nil
		}
		if off+2 > len(src) {
			return nil, fmt.Errorf("%w: truncated match offset", ErrCompression)
		}
		offset := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if offset == 0 || offset > len(dst)-base {
			return nil, fmt.Errorf("%w: match offset %d outside output", ErrCompression, offset)
		}
		ml := int(token & 15)
		if ml == 15 {
			ext, noff, err := readVarLen(src, off, maxOut)
			if err != nil {
				return nil, err
			}
			ml += ext
			off = noff
		}
		ml += zMinMatch
		if len(dst)-base+ml > maxOut {
			return nil, fmt.Errorf("%w: output exceeds %d bytes", ErrCompression, maxOut)
		}
		// Byte-at-a-time copy: overlapping matches (offset < length) are
		// legal and replicate the run, as in every LZ77 family codec.
		start := len(dst) - offset
		for j := 0; j < ml; j++ {
			dst = append(dst, dst[start+j])
		}
	}
	return dst, nil
}
