package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
)

// goldenBatchPayload is a realistic batch payload: one node's 96 votes in
// trial order.
func goldenBatchPayload() []byte {
	b := VoteBatch{Votes: make([]BatchVote, 96)}
	for i := range b.Votes {
		b.Votes[i] = BatchVote{Trial: uint32(i), Node: 1234, Reject: i%7 == 0}
	}
	return b.appendPayload(nil)
}

// TestCompressGolden pins the encoder's exact output for a fixed input:
// the determinism contract (identical input → byte-identical compressed
// bytes, across runs, Go versions and architectures) reduced to a golden
// byte string. If this test ever needs a new golden value, the encoder
// changed and every differential guarantee must be re-checked.
func TestCompressGolden(t *testing.T) {
	const golden = "4f0060000201004b3fd2090001004b7181402010080402070000"
	src := goldenBatchPayload()
	got := CompressBlock(src, nil)
	if hex.EncodeToString(got) != golden {
		t.Fatalf("compressed bytes drifted:\n got %s\nwant %s", hex.EncodeToString(got), golden)
	}
	// And it round-trips.
	out, err := DecompressBlock(got, nil, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("golden block does not round-trip: %v", err)
	}
	// Re-running the encoder (fresh scratch, dirty dst prefix) reproduces
	// the same bytes.
	again := CompressBlock(src, []byte("prefix"))
	if hex.EncodeToString(again[len("prefix"):]) != golden {
		t.Fatal("encoder output depends on dst state")
	}
}

func TestCompressRoundTripVariety(t *testing.T) {
	lcg := uint32(12345)
	noise := func(n int) []byte {
		p := make([]byte, n)
		for i := range p {
			lcg = lcg*1664525 + 1013904223
			p[i] = byte(lcg >> 24)
		}
		return p
	}
	cases := []struct {
		name string
		src  []byte
	}{
		{"zeros", make([]byte, 300)},
		{"run", bytes.Repeat([]byte{0xAB}, 1000)},
		{"pattern", bytes.Repeat([]byte("abcdefg-"), 64)},
		{"batch", goldenBatchPayload()},
		{"mixed", append(noise(100), make([]byte, 400)...)},
	}
	for _, c := range cases {
		comp := CompressBlock(c.src, nil)
		if comp == nil {
			t.Fatalf("%s: compressible input rejected", c.name)
		}
		if len(comp) >= len(c.src) {
			t.Fatalf("%s: compressed %d ≥ raw %d", c.name, len(comp), len(c.src))
		}
		out, err := DecompressBlock(comp, nil, len(c.src))
		if err != nil || !bytes.Equal(out, c.src) {
			t.Fatalf("%s: round trip failed: %v", c.name, err)
		}
	}

	// Incompressible and tiny inputs return nil — the caller sends raw.
	if CompressBlock(noise(256), nil) != nil {
		t.Fatal("random bytes reported as compressible")
	}
	if CompressBlock([]byte{1, 2, 3}, nil) != nil {
		t.Fatal("tiny input reported as compressible")
	}
	if CompressBlock(nil, nil) != nil {
		t.Fatal("empty input reported as compressible")
	}
}

// TestDecompressAdversarial feeds malformed blocks and checks for typed
// errors, bounded output and no panics.
func TestDecompressAdversarial(t *testing.T) {
	src := goldenBatchPayload()
	comp := CompressBlock(src, nil)

	// Every truncation fails cleanly or yields a short (never oversized)
	// output.
	for cut := 0; cut < len(comp); cut++ {
		out, err := DecompressBlock(comp[:cut], nil, len(src))
		if err == nil && len(out) > len(src) {
			t.Fatalf("cut %d: output %d exceeds cap", cut, len(out))
		}
	}
	// Every single-byte corruption decodes to something bounded or errors.
	for i := range comp {
		mut := append([]byte(nil), comp...)
		mut[i] ^= 0xFF
		out, err := DecompressBlock(mut, nil, len(src))
		if err == nil && len(out) > len(src) {
			t.Fatalf("corrupt byte %d: output %d exceeds cap", i, len(out))
		}
	}

	// A decompression bomb (huge match runs) is stopped at maxOut.
	bomb := []byte{0x1F, 0xAA} // 1 literal, match len 15+ext
	bomb = append(bomb, 0x01, 0x00)
	for i := 0; i < 100; i++ {
		bomb = append(bomb, 255)
	}
	bomb = append(bomb, 0)
	if _, err := DecompressBlock(bomb, nil, 64); !errors.Is(err, ErrCompression) {
		t.Fatalf("bomb: err = %v, want ErrCompression", err)
	}

	// Offset pointing before the output start.
	bad := []byte{0x10, 0xAA, 0x05, 0x00, 0x00}
	if _, err := DecompressBlock(bad, nil, 64); !errors.Is(err, ErrCompression) {
		t.Fatalf("bad offset: err = %v, want ErrCompression", err)
	}
}

// TestCompressOverlappingRuns exercises the RLE-style overlapping match
// copy (offset < match length).
func TestCompressOverlappingRuns(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 500)
	comp := CompressBlock(src, nil)
	if comp == nil || len(comp) > 16 {
		t.Fatalf("run-length input compressed to %d bytes", len(comp))
	}
	out, err := DecompressBlock(comp, nil, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("overlap round trip failed: %v", err)
	}
}
