package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// seqVotes builds the cluster's typical batch shape: one node's votes in
// trial order.
func seqVotes(node, n int, sketch bool) []BatchVote {
	votes := make([]BatchVote, n)
	for i := range votes {
		votes[i] = BatchVote{Trial: uint32(i), Node: uint32(node)}
		if sketch {
			votes[i].Samples = 48
			votes[i].Collisions = uint32(i % 3)
		} else {
			votes[i].Reject = i%3 == 0
		}
	}
	return votes
}

// advVotes builds adversarially jumpy values exercising wide deltas, from
// a tiny inline splitmix so the fixture is seeded and reproducible.
func advVotes(seed uint64, n int, sketch bool) []BatchVote {
	next := func() uint32 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return uint32(z ^ z>>31)
	}
	votes := make([]BatchVote, n)
	for i := range votes {
		votes[i] = BatchVote{Trial: next(), Node: next()}
		if sketch {
			votes[i].Samples = next()
			votes[i].Collisions = next()
		} else {
			votes[i].Reject = next()&1 == 0
		}
	}
	return votes
}

func TestVoteBatchRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: 0xfeed, Span: 0xbead}
	cases := []struct {
		name  string
		batch *VoteBatch
	}{
		{"single", &VoteBatch{Votes: []BatchVote{{Trial: 7, Node: 1999, Reject: true}}}},
		{"sequential", &VoteBatch{Votes: seqVotes(42, 100, false)}},
		{"sketch", &VoteBatch{Sketch: true, Votes: seqVotes(3, 64, true)}},
		{"adversarial", &VoteBatch{Votes: advVotes(1, 257, false)}},
		{"adversarial sketch", &VoteBatch{Sketch: true, Votes: advVotes(2, 33, true)}},
		{"max", &VoteBatch{Votes: seqVotes(0, MaxBatchVotes, false)}},
	}
	for _, c := range cases {
		for _, ctx := range []TraceContext{{}, tc} {
			buf := AppendTraced(nil, c.batch, ctx)
			if len(buf) != EncodedSizeTraced(c.batch, ctx) {
				t.Errorf("%s: encoded %d bytes, EncodedSizeTraced says %d", c.name, len(buf), EncodedSizeTraced(c.batch, ctx))
			}
			if buf[4] != BatchVersion {
				t.Errorf("%s: stamped version %d, want %d", c.name, buf[4], BatchVersion)
			}
			got, gotTC, n, err := DecodeTraced(buf)
			if err != nil {
				t.Fatalf("%s: decode: %v", c.name, err)
			}
			if n != len(buf) || gotTC != ctx {
				t.Errorf("%s: consumed %d of %d bytes, tc %+v want %+v", c.name, n, len(buf), gotTC, ctx)
			}
			vb, ok := got.(*VoteBatch)
			if !ok {
				t.Fatalf("%s: decoded %T", c.name, got)
			}
			if vb.Compressed || vb.Saved != 0 {
				t.Errorf("%s: raw batch decoded as compressed (%v, %d)", c.name, vb.Compressed, vb.Saved)
			}
			if vb.Sketch != c.batch.Sketch || !reflect.DeepEqual(vb.Votes, c.batch.Votes) {
				t.Errorf("%s: round trip mismatch", c.name)
			}
			// Bijectivity: re-encoding the decoded batch reproduces the bytes.
			if !bytes.Equal(AppendTraced(nil, vb, ctx), buf) {
				t.Errorf("%s: re-encode is not byte-identical", c.name)
			}
		}
	}
}

// TestVoteBatchDenseEncoding pins the point of delta encoding: the typical
// shape (one node, trials in order) costs ~2 bytes per vote, far below the
// 15-byte v1 single-vote frame.
func TestVoteBatchDenseEncoding(t *testing.T) {
	b := &VoteBatch{Votes: seqVotes(1234, 1000, false)}
	if got, limit := b.payloadSize(), 3*len(b.Votes); got > limit {
		t.Fatalf("sequential batch payload %d bytes for %d votes, want ≤ %d", got, len(b.Votes), limit)
	}
}

func TestVoteBatchCaps(t *testing.T) {
	over := &VoteBatch{Votes: make([]BatchVote, MaxBatchVotes+1)}
	if _, err := AppendBatch(nil, over, TraceContext{}, false); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize batch: err = %v, want ErrOversize", err)
	}
	if _, err := AppendBatch(nil, &VoteBatch{}, TraceContext{}, false); err == nil {
		t.Fatal("empty batch: want error")
	}
	// A frame declaring more votes than MaxBatchVotes is rejected at decode.
	buf := Append(nil, &VoteBatch{Votes: seqVotes(0, 1, false)})
	// payload starts at byte 6: flags, then the count varint (1 → one byte).
	buf[7] = 0x81 // still one tuple encoded, but count now claims 129 …
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("corrupt count accepted")
	}
}

func TestVoteBatchRejectsNonCanonical(t *testing.T) {
	enc := func(b *VoteBatch) []byte { return Append(nil, b) }
	mut := func(name string, raw []byte, wantErr error) {
		t.Helper()
		_, _, err := Decode(raw)
		if wantErr != nil && !errors.Is(err, wantErr) {
			t.Errorf("%s: err = %v, want %v", name, err, wantErr)
		}
		if wantErr == nil && err == nil {
			t.Errorf("%s: corrupt batch accepted", name)
		}
	}

	// Spare flag bits must be zero.
	raw := enc(&VoteBatch{Votes: seqVotes(0, 9, false)})
	raw[6] |= 2
	mut("spare flags", raw, ErrFrameSize)

	// Trailing bits of the reject bitset must be zero (9 votes → 2 bitset
	// bytes, 7 spare bits in the last one).
	raw = enc(&VoteBatch{Votes: seqVotes(0, 9, false)})
	raw[len(raw)-1] |= 0x80
	mut("trailing bitset bits", raw, ErrFrameSize)

	// Non-minimal varint: count 1 encoded as two bytes.
	body := []byte{0}               // flags
	body = append(body, 0x81, 0x00) // count = 1, overlong
	body = append(body, 5, 6, 0)    // trial, node columns, bitset
	frame := append([]byte{0, 0, 0, byte(2 + len(body)), BatchVersion, TypeVoteBatch}, body...)
	mut("non-minimal varint", frame, ErrFrameSize)

	// Truncated and padded payloads.
	raw = enc(&VoteBatch{Votes: seqVotes(0, 9, false)})
	short := append([]byte(nil), raw[:len(raw)-1]...)
	putLen(short)
	mut("truncated", short, nil)
	long := append(append([]byte(nil), raw...), 0)
	putLen(long)
	mut("trailing bytes", long, ErrFrameSize)
}

// putLen rewrites the 4-byte prefix to match the buffer.
func putLen(b []byte) {
	n := len(b) - 4
	b[0], b[1], b[2], b[3] = 0, 0, byte(n>>8), byte(n)
}

func TestVoteBatchCompressedRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: 9, Span: 4}
	b := &VoteBatch{Votes: seqVotes(7, 512, false)}
	buf, err := AppendBatch(nil, b, tc, true)
	if err != nil {
		t.Fatal(err)
	}
	if typ := buf[5] &^ 0x80; typ != TypeVoteBatchZ {
		t.Fatalf("compressible batch encoded as %s, want votebatchz", TypeName(typ))
	}
	rawSize := len(AppendTraced(nil, b, tc))
	if len(buf) >= rawSize {
		t.Fatalf("compressed frame %d bytes ≥ raw %d", len(buf), rawSize)
	}
	got, gotTC, _, err := DecodeTraced(buf)
	if err != nil {
		t.Fatal(err)
	}
	vb := got.(*VoteBatch)
	if gotTC != tc || !vb.Compressed || vb.Saved != rawSize-len(buf) {
		t.Fatalf("decode: tc %+v, compressed %v, saved %d (want %d)", gotTC, vb.Compressed, vb.Saved, rawSize-len(buf))
	}
	if !reflect.DeepEqual(vb.Votes, b.Votes) {
		t.Fatal("compressed round trip lost votes")
	}

	// Incompressible content falls back to the raw frame.
	adv := &VoteBatch{Sketch: true, Votes: advVotes(3, 200, true)}
	buf, err = AppendBatch(nil, adv, TraceContext{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if typ := buf[5] &^ 0x80; typ != TypeVoteBatch {
		t.Fatalf("adversarial batch encoded as %s, want raw votebatch", TypeName(typ))
	}
	// Sub-threshold batches stay raw even when compressible.
	tiny := &VoteBatch{Votes: seqVotes(0, 8, false)}
	if tiny.payloadSize() >= MinCompressibleSize {
		t.Fatalf("test batch not sub-threshold: %d bytes", tiny.payloadSize())
	}
	buf, err = AppendBatch(nil, tiny, TraceContext{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if typ := buf[5] &^ 0x80; typ != TypeVoteBatch {
		t.Fatalf("sub-threshold batch encoded as %s, want raw votebatch", TypeName(typ))
	}
}

// TestDecodeScratchReuse interleaves frame shapes through one scratch and
// checks no state leaks between decodes.
func TestDecodeScratchReuse(t *testing.T) {
	var sc DecodeScratch
	sketch := &VoteBatch{Sketch: true, Votes: seqVotes(2, 40, true)}
	plain := &VoteBatch{Votes: seqVotes(2, 17, false)}
	vote := &Vote{Trial: 5, Node: 2, Reject: true}
	zbatch := &VoteBatch{Votes: seqVotes(9, 300, false)}
	zbuf, err := AppendBatch(nil, zbatch, TraceContext{}, true)
	if err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		raw  []byte
		want Frame
	}{
		{Append(nil, sketch), sketch},
		{Append(nil, plain), plain},
		{Append(nil, vote), vote},
		{zbuf, zbatch},
		{Append(nil, sketch), sketch},
	}
	for i, s := range steps {
		f, _, err := DecodeBodyScratch(s.raw[4:], &sc)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		switch want := s.want.(type) {
		case *VoteBatch:
			got := f.(*VoteBatch)
			if got.Sketch != want.Sketch || !reflect.DeepEqual(got.Votes, want.Votes) {
				t.Fatalf("step %d: batch state leaked across scratch reuse", i)
			}
		default:
			if !reflect.DeepEqual(f, s.want) {
				t.Fatalf("step %d: got %#v", i, f)
			}
		}
	}
}

// TestSteadyStateDecodeAllocs pins the allocation-bounded Reader contract
// claimed in PR 5: after warm-up, reading and decoding vote traffic —
// single frames and batches, raw and compressed — allocates nothing.
func TestSteadyStateDecodeAllocs(t *testing.T) {
	var stream []byte
	stream = Append(stream, &Vote{Trial: 1, Node: 2, Reject: true})
	stream = AppendTraced(stream, &Vote{Trial: 2, Node: 2}, TraceContext{Trace: 3, Span: 4})
	stream = Append(stream, &Sketch{Trial: 3, Node: 2, Samples: 9, Collisions: 1})
	stream = Append(stream, &VoteBatch{Votes: seqVotes(2, 200, false)})
	var err error
	if stream, err = AppendBatch(stream, &VoteBatch{Votes: seqVotes(2, 300, false)}, TraceContext{}, true); err != nil {
		t.Fatal(err)
	}

	br := bytes.NewReader(stream)
	r := NewReader(br)
	var sc DecodeScratch
	decodeAll := func() {
		br.Reset(stream)
		for {
			body, err := r.ReadBody()
			if err != nil {
				if err == io.EOF {
					break
				}
				t.Fatalf("read: %v", err)
			}
			if _, _, err := DecodeBodyScratch(body, &sc); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
	}
	decodeAll() // warm-up: sizes the spill buffer and scratch slices
	if n := testing.AllocsPerRun(50, decodeAll); n != 0 {
		t.Fatalf("steady-state decode allocates %v per pass, want 0", n)
	}
}
