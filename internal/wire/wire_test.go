package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

// everyFrame returns one instance of each frame type with distinctive
// field values.
func everyFrame() []Frame {
	return []Frame{
		&Hello{Node: 7, K: 2000, Trials: 60},
		&Vote{Trial: 3, Node: 1999, Reject: true},
		&Vote{Trial: 0, Node: 0, Reject: false},
		&Sketch{Trial: 12, Node: 5, Samples: 48, Collisions: 2},
		&Done{Node: 42},
		&Verdict{Trials: 60, Accepts: 59, Missing: 3},
	}
}

func TestRoundTripEveryType(t *testing.T) {
	for _, f := range everyFrame() {
		buf := Append(nil, f)
		if len(buf) != EncodedSize(f) {
			t.Errorf("%T: encoded %d bytes, EncodedSize says %d", f, len(buf), EncodedSize(f))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", f, err)
		}
		if n != len(buf) {
			t.Errorf("%T: consumed %d of %d bytes", f, n, len(buf))
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("round trip: got %#v, want %#v", got, f)
		}
	}
}

func TestReaderStream(t *testing.T) {
	frames := everyFrame()
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: got %#v, want %#v", i, got, want)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	full := Append(nil, &Vote{Trial: 1, Node: 2, Reject: true})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Decode(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReaderRejectsMidFrameEOF(t *testing.T) {
	full := Append(nil, &Sketch{Trial: 1, Node: 2, Samples: 3, Collisions: 1})
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.ReadFrame(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeRejectsOversize(t *testing.T) {
	// The stream-level cap is the batch frame limit.
	var b []byte
	b = binary.BigEndian.AppendUint32(b, MaxBatchFrameBytes+1)
	b = append(b, make([]byte, MaxBatchFrameBytes+1)...)
	if _, _, err := Decode(b); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	if _, err := NewReader(bytes.NewReader(b)).ReadFrame(); !errors.Is(err, ErrOversize) {
		t.Fatalf("reader err = %v, want ErrOversize", err)
	}
	// The 64-byte CONGEST-mirror cap still applies to single-vote types:
	// a vote frame padded past MaxFrameBytes is a protocol error even
	// though the stream-level cap now admits larger (batch) frames.
	var v []byte
	v = binary.BigEndian.AppendUint32(v, MaxFrameBytes+1)
	v = append(v, MinVersion, TypeVote)
	v = append(v, make([]byte, MaxFrameBytes-1)...)
	if _, _, err := Decode(v); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversize vote err = %v, want ErrFrameSize", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	b := Append(nil, &Done{Node: 1})
	b[4] = Version + 1
	if _, _, err := Decode(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	b := Append(nil, &Done{Node: 1})
	b[5] = 0xEE
	if _, _, err := Decode(b); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestDecodeRejectsWrongPayloadSize(t *testing.T) {
	// A Done frame claiming a Hello-sized payload.
	var b []byte
	b = binary.BigEndian.AppendUint32(b, 2+12)
	b = append(b, MinVersion, TypeDone)
	b = append(b, make([]byte, 12)...)
	if _, _, err := Decode(b); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

func TestDecodeRejectsBadVoteFlag(t *testing.T) {
	b := Append(nil, &Vote{Trial: 1, Node: 2})
	b[len(b)-1] = 7 // flag byte must be 0 or 1
	if _, _, err := Decode(b); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

func TestTracedRoundTripEveryType(t *testing.T) {
	tc := TraceContext{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef}
	for _, f := range everyFrame() {
		buf := AppendTraced(nil, f, tc)
		if len(buf) != EncodedSizeTraced(f, tc) {
			t.Errorf("%T: encoded %d bytes, EncodedSizeTraced says %d", f, len(buf), EncodedSizeTraced(f, tc))
		}
		if buf[4] != TraceVersion {
			t.Errorf("%T: traced frame stamped version %d, want %d", f, buf[4], TraceVersion)
		}
		got, gotTC, n, err := DecodeTraced(buf)
		if err != nil {
			t.Fatalf("%T: decode traced: %v", f, err)
		}
		if n != len(buf) {
			t.Errorf("%T: consumed %d of %d bytes", f, n, len(buf))
		}
		if gotTC != tc {
			t.Errorf("%T: trace context %+v, want %+v", f, gotTC, tc)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("round trip: got %#v, want %#v", got, f)
		}
		// The plain decoder must accept the same frame, dropping the context.
		if plain, _, err := Decode(buf); err != nil || !reflect.DeepEqual(plain, f) {
			t.Errorf("Decode(traced) = (%#v, %v)", plain, err)
		}
	}
}

func TestTracedReaderStream(t *testing.T) {
	frames := everyFrame()
	var buf bytes.Buffer
	for i, f := range frames {
		// Alternate traced and untraced frames in one stream.
		tc := TraceContext{}
		if i%2 == 0 {
			tc = TraceContext{Trace: uint64(i) + 1, Span: uint64(i) * 7}
		}
		if err := WriteFrameTraced(&buf, f, tc); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, tc, err := r.ReadFrameTraced()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: got %#v, want %#v", i, got, want)
		}
		if i%2 == 0 && tc.Trace != uint64(i)+1 {
			t.Errorf("frame %d: trace %d, want %d", i, tc.Trace, i+1)
		}
		if i%2 == 1 && !tc.IsZero() {
			t.Errorf("frame %d: unexpected trace context %+v", i, tc)
		}
	}
}

// TestVersionNegotiation pins the cross-version contract: v1 frames (the
// pre-trace encoding) decode with a zero context, v2 frames require a
// well-formed trace context, and a v-next frame is rejected with ErrVersion
// rather than a panic.
func TestVersionNegotiation(t *testing.T) {
	vote := &Vote{Trial: 3, Node: 9, Reject: true}
	tc := TraceContext{Trace: 77, Span: 88}

	t.Run("v1 accepted without context", func(t *testing.T) {
		b := Append(nil, vote)
		if b[4] != MinVersion {
			t.Fatalf("untraced frame stamped version %d, want %d", b[4], MinVersion)
		}
		f, gotTC, _, err := DecodeTraced(b)
		if err != nil || !gotTC.IsZero() || !reflect.DeepEqual(f, vote) {
			t.Fatalf("DecodeTraced(v1) = (%#v, %+v, %v)", f, gotTC, err)
		}
	})
	t.Run("zero context encodes as v1", func(t *testing.T) {
		if !bytes.Equal(AppendTraced(nil, vote, TraceContext{}), Append(nil, vote)) {
			t.Fatal("AppendTraced with zero context is not byte-identical to Append")
		}
	})
	t.Run("v1 with trailing context bytes rejected", func(t *testing.T) {
		b := AppendTraced(nil, vote, tc)
		b[4] = MinVersion // claim v1 while carrying the 16-byte suffix
		binary.BigEndian.PutUint32(b, uint32(len(b)-headerBytes))
		if _, _, err := Decode(b); !errors.Is(err, ErrFrameSize) {
			t.Fatalf("err = %v, want ErrFrameSize", err)
		}
	})
	t.Run("v2 without context rejected", func(t *testing.T) {
		b := Append(nil, vote)
		b[4] = TraceVersion
		if _, _, err := Decode(b); !errors.Is(err, ErrFrameSize) {
			t.Fatalf("err = %v, want ErrFrameSize", err)
		}
	})
	t.Run("v2 with zero trace ID rejected", func(t *testing.T) {
		b := AppendTraced(nil, vote, tc)
		zero := make([]byte, 8)
		copy(b[len(b)-traceContextBytes:], zero)
		if _, _, err := Decode(b); !errors.Is(err, ErrTraceContext) {
			t.Fatalf("err = %v, want ErrTraceContext", err)
		}
	})
	t.Run("old type at v3 rejected", func(t *testing.T) {
		// Batch framing is v3-only; re-encoding a single-vote type there
		// would give it a second byte representation.
		b := Append(nil, vote)
		b[4] = BatchVersion
		if _, _, err := Decode(b); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("batch type below v3 rejected", func(t *testing.T) {
		vb := &VoteBatch{Votes: []BatchVote{{Trial: 1, Node: 2, Reject: true}}}
		for _, ver := range []byte{MinVersion, TraceVersion} {
			b := Append(nil, vb)
			b[4] = ver
			if _, _, err := Decode(b); !errors.Is(err, ErrVersion) {
				t.Fatalf("v%d batch err = %v, want ErrVersion", ver, err)
			}
		}
	})
	t.Run("v-next rejected gracefully", func(t *testing.T) {
		for _, base := range [][]byte{Append(nil, vote), AppendTraced(nil, vote, tc)} {
			b := append([]byte(nil), base...)
			b[4] = Version + 1
			if _, _, err := Decode(b); !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode err = %v, want ErrVersion", err)
			}
			if _, err := NewReader(bytes.NewReader(b)).ReadFrame(); !errors.Is(err, ErrVersion) {
				t.Fatalf("Reader err = %v, want ErrVersion", err)
			}
		}
	})
}

func TestDecodeConsumesOneFrameOfMany(t *testing.T) {
	first := Append(nil, &Vote{Trial: 9, Node: 1, Reject: true})
	b := Append(append([]byte(nil), first...), &Done{Node: 1})
	f, n, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(first) {
		t.Fatalf("consumed %d, want %d", n, len(first))
	}
	if v, ok := f.(*Vote); !ok || v.Trial != 9 {
		t.Fatalf("first frame = %#v", f)
	}
}
