package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// sessionTestFrames returns one frame of every established type with
// distinctive field values.
func sessionTestFrames() []Frame {
	return []Frame{
		&Hello{Node: 3, K: 100, Trials: 7},
		&Vote{Trial: 2, Node: 3, Reject: true},
		&Sketch{Trial: 1, Node: 4, Samples: 48, Collisions: 2},
		&Done{Node: 3},
		&Verdict{Trials: 7, Accepts: 5, Missing: 1},
		&VoteBatch{Votes: []BatchVote{{Trial: 0, Node: 3}, {Trial: 1, Node: 3, Reject: true}}},
		&AggHello{Agg: 2, K: 100, Trials: 7, Lo: 10, Hi: 20},
		&PartialVerdict{Agg: 2, Entries: []PartialEntry{{Trial: 0, Votes: 10, Rejects: 4}}},
	}
}

// TestSessionZeroByteIdentical pins the interop invariant: binding a frame
// to session 0 is a no-op on the wire — byte-identical to the v4-and-below
// encoding — so session-unaware peers keep working against a v5 service.
func TestSessionZeroByteIdentical(t *testing.T) {
	tcs := []TraceContext{{}, {Trace: 9, Span: 4}}
	for _, fr := range sessionTestFrames() {
		for _, tc := range tcs {
			classic := AppendTraced(nil, fr, tc)
			bound := AppendSession(nil, fr, 0, tc)
			if !bytes.Equal(classic, bound) {
				t.Errorf("%T: session-0 encoding differs: %x vs %x", fr, bound, classic)
			}
			if n := EncodedSizeSession(fr, 0, tc); n != len(bound) {
				t.Errorf("%T: EncodedSizeSession(0) = %d, want %d", fr, n, len(bound))
			}
		}
	}
}

// TestSessionSuffixRoundTrip pins the nonzero-session path: every
// established type round-trips through the v5 suffix encoding with the
// session ID intact and decode∘encode the identity.
func TestSessionSuffixRoundTrip(t *testing.T) {
	tcs := []TraceContext{{}, {Trace: 9, Span: 4}}
	var sc DecodeScratch
	for _, fr := range sessionTestFrames() {
		for _, tc := range tcs {
			for _, sess := range []uint32{1, 7, 1 << 30} {
				enc := AppendSession(nil, fr, sess, tc)
				if enc[4] != SessionVersion {
					t.Fatalf("%T: session frame stamped v%d", fr, enc[4])
				}
				if n := EncodedSizeSession(fr, sess, tc); n != len(enc) {
					t.Errorf("%T: EncodedSizeSession = %d, want %d", fr, n, len(enc))
				}
				got, gotTC, gotSess, err := DecodeBodySession(enc[4:], &sc)
				if err != nil {
					t.Fatalf("%T: decode own session encoding: %v", fr, err)
				}
				if gotSess != sess || gotTC != tc {
					t.Fatalf("%T: got (session %d, %+v), want (%d, %+v)", fr, gotSess, gotTC, sess, tc)
				}
				if !framesEqual(got, fr) {
					t.Fatalf("%T: session round trip: got %#v", fr, got)
				}
				if re := AppendSession(nil, got, gotSess, gotTC); !bytes.Equal(re, enc) {
					t.Fatalf("%T: session re-encode mismatch: %x vs %x", fr, re, enc)
				}
				// The session-unaware decode path accepts the frame too,
				// dropping the session like Decode drops the trace.
				plain, plainTC, _, err := DecodeTraced(enc)
				if err != nil || plainTC != tc || !framesEqual(plain, fr) {
					t.Fatalf("%T: session-unaware decode: %v", fr, err)
				}
			}
		}
	}
}

// framesEqual compares two decoded frames, ignoring the decoder-output
// Compressed/Saved fields of a VoteBatch.
func framesEqual(got, want Frame) bool {
	if gb, ok := got.(*VoteBatch); ok {
		wb, ok := want.(*VoteBatch)
		return ok && gb.Sketch == wb.Sketch && reflect.DeepEqual(gb.Votes, wb.Votes)
	}
	return reflect.DeepEqual(got, want)
}

// TestSessionZeroSuffixRejected pins canonicality: an explicit zero
// session at v5 is rejected (session 0's unique encoding is the classic
// version), so every (frame, session) pair has exactly one byte form.
func TestSessionZeroSuffixRejected(t *testing.T) {
	enc := AppendSession(nil, &Vote{Trial: 1, Node: 2}, 7, TraceContext{})
	body := append([]byte(nil), enc[4:]...)
	// Overwrite the trailing session suffix with zero.
	for i := len(body) - sessionBytes; i < len(body); i++ {
		body[i] = 0
	}
	if _, _, _, err := DecodeBodySession(body, nil); !errors.Is(err, ErrSession) {
		t.Fatalf("zero session suffix: err = %v, want ErrSession", err)
	}
}

// TestSessionControlRoundTrip pins the codec of the four session control
// frames, traced and untraced.
func TestSessionControlRoundTrip(t *testing.T) {
	frames := []Frame{
		&SessionOpen{Tenant: 5, K: 100, Trials: 7, Seed: 99, Rule: RuleThreshold, Thresh: 11, Sketch: true, EarlyClose: true},
		&SessionOpen{Tenant: 1, K: 10, Trials: 2, Seed: 3, Rule: RuleAND, Default: true},
		&SessionAccept{Session: 12, Tenant: 5},
		&SessionReject{Tenant: 5, Reason: RejectBudget},
		&SessionReport{Session: 12, K: 10, Verdicts: []bool{true, false, true},
			Rejects: []uint32{0, 4, 1}, Votes: []uint32{10, 9, 10}, Missing: []uint32{0, 1, 0}},
	}
	var sc DecodeScratch
	for _, fr := range frames {
		for _, tc := range []TraceContext{{}, {Trace: 3, Span: 8}} {
			enc := AppendTraced(nil, fr, tc)
			if enc[4] != SessionVersion {
				t.Fatalf("%T: control frame stamped v%d", fr, enc[4])
			}
			got, gotTC, gotSess, err := DecodeBodySession(enc[4:], &sc)
			if err != nil {
				t.Fatalf("%T: decode: %v", fr, err)
			}
			if gotSess != 0 {
				t.Fatalf("%T: control frame decoded with suffix session %d", fr, gotSess)
			}
			if gotTC != tc || !reflect.DeepEqual(got, fr) {
				t.Fatalf("%T: round trip: got (%#v, %+v)", fr, got, gotTC)
			}
			if re := AppendTraced(nil, got, gotTC); !bytes.Equal(re, enc) {
				t.Fatalf("%T: re-encode mismatch", fr)
			}
			// AppendSession never stamps a suffix on control frames.
			if withSess := AppendSession(nil, fr, 42, tc); !bytes.Equal(withSess, enc) {
				t.Fatalf("%T: AppendSession added a suffix to a control frame", fr)
			}
		}
	}
}

// TestSessionControlValidation pins the typed decode errors of the control
// frames: out-of-range reject reasons, zero accept sessions, spare open
// flags, and control types at pre-session versions.
func TestSessionControlValidation(t *testing.T) {
	if _, _, _, err := DecodeBodySession(AppendTraced(nil, &SessionReject{Tenant: 1, Reason: 99}, TraceContext{})[4:], nil); !errors.Is(err, ErrFrameSize) {
		t.Errorf("reason 99: err = %v, want ErrFrameSize", err)
	}
	if _, _, _, err := DecodeBodySession(AppendTraced(nil, &SessionAccept{Session: 0, Tenant: 1}, TraceContext{})[4:], nil); !errors.Is(err, ErrSession) {
		t.Errorf("accept session 0: err = %v, want ErrSession", err)
	}
	open := AppendTraced(nil, &SessionOpen{Tenant: 1, K: 2, Trials: 3, Rule: RuleAND}, TraceContext{})
	body := append([]byte(nil), open[4:]...)
	body[len(body)-1] |= 0x80 // spare flag bit
	if _, _, _, err := DecodeBodySession(body, nil); !errors.Is(err, ErrFrameSize) {
		t.Errorf("spare open flags: err = %v, want ErrFrameSize", err)
	}
	// Control types are only legal at v5.
	for _, v := range []byte{MinVersion, TraceVersion, BatchVersion, PartialVersion} {
		bad := append([]byte(nil), open[4:]...)
		bad[0] = v
		if _, _, _, err := DecodeBodySession(bad, nil); !errors.Is(err, ErrVersion) {
			t.Errorf("sessionopen at v%d: err = %v, want ErrVersion", v, err)
		}
	}
	// Established types stay illegal at v5 without a session suffix only
	// when the remaining payload is mis-sized; a well-formed suffix is
	// what makes them legal — a bare v5 vote body must fail.
	vote := Append(nil, &Vote{Trial: 1, Node: 2})
	bare := append([]byte(nil), vote[4:]...)
	bare[0] = SessionVersion
	if _, _, _, err := DecodeBodySession(bare, nil); !errors.Is(err, ErrFrameSize) {
		t.Errorf("bare v5 vote: err = %v, want ErrFrameSize", err)
	}
}

// TestSessionReportValidation pins the report codec's caps and per-trial
// validity checks.
func TestSessionReportValidation(t *testing.T) {
	mk := func(n int) *SessionReport {
		r := &SessionReport{Session: 1, K: 100,
			Verdicts: make([]bool, n), Rejects: make([]uint32, n),
			Votes: make([]uint32, n), Missing: make([]uint32, n)}
		for i := 0; i < n; i++ {
			r.Votes[i] = 100
		}
		return r
	}
	if _, err := AppendSessionReport(nil, mk(MaxReportTrials+1), TraceContext{}); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize report: err = %v, want ErrOversize", err)
	}
	if _, err := AppendSessionReport(nil, &SessionReport{Session: 1}, TraceContext{}); err == nil {
		t.Error("empty report: err = nil")
	}
	ragged := mk(4)
	ragged.Votes = ragged.Votes[:3]
	if _, err := AppendSessionReport(nil, ragged, TraceContext{}); err == nil {
		t.Error("ragged report: err = nil")
	}
	// Decoder-side validity: rejects > votes and votes+missing > k fail.
	bad := mk(2)
	bad.Rejects[1] = 101
	enc := AppendTraced(nil, bad, TraceContext{})
	if _, _, _, err := DecodeBodySession(enc[4:], nil); !errors.Is(err, ErrFrameSize) {
		t.Errorf("rejects > votes: err = %v, want ErrFrameSize", err)
	}
	bad = mk(2)
	bad.Missing[0] = 1 // votes already 100 of k=100
	enc = AppendTraced(nil, bad, TraceContext{})
	if _, _, _, err := DecodeBodySession(enc[4:], nil); !errors.Is(err, ErrFrameSize) {
		t.Errorf("votes+missing > k: err = %v, want ErrFrameSize", err)
	}
	// A zero-session report is invalid.
	bad = mk(1)
	bad.Session = 0
	enc = AppendTraced(nil, bad, TraceContext{})
	if _, _, _, err := DecodeBodySession(enc[4:], nil); !errors.Is(err, ErrSession) {
		t.Errorf("session-0 report: err = %v, want ErrSession", err)
	}
}

// TestSessionBatchAndPartialCaps pins the session-bound encoders' tighter
// payload bounds (the 4-byte suffix must still fit the frame cap).
func TestSessionBatchAndPartialCaps(t *testing.T) {
	var e BatchEncoder
	over := &VoteBatch{Votes: make([]BatchVote, MaxBatchVotes+1)}
	if _, err := e.AppendSession(nil, over, 3, TraceContext{}, false); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize session batch: err = %v", err)
	}
	overP := &PartialVerdict{Agg: 1, Entries: make([]PartialEntry, MaxPartialEntries+1)}
	if _, err := AppendPartialSession(nil, overP, 3, TraceContext{}); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize session partial: err = %v", err)
	}
	// Session 0 delegates to the classic encoders byte-for-byte.
	b := &VoteBatch{Votes: []BatchVote{{Trial: 0, Node: 1}}}
	classic, err := AppendBatch(nil, b, TraceContext{}, true)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := e.AppendSession(nil, b, 0, TraceContext{}, true)
	if err != nil || !bytes.Equal(classic, bound) {
		t.Errorf("session-0 batch differs: %v", err)
	}
}

// FuzzSessionFrameRoundTrip drives the v5 session codec from both ends:
// fuzzed frames of every kind — established types bound to zero and
// nonzero sessions, control frames, traced and untraced — must round-trip
// losslessly with decode∘encode byte identity (session 0 byte-identical to
// the classic encoding), and fuzzed raw bytes framed as v5 bodies must
// decode canonically or fail with typed errors — never panic — with the
// size caps enforced.
func FuzzSessionFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint64(0), uint16(1), false, []byte{})
	f.Add(uint32(7), uint32(3), uint64(9), uint16(64), true, []byte{0, 1, 2})
	f.Add(uint32(1<<31), uint32(1), uint64(1<<40), uint16(100), false,
		AppendSession(nil, &Vote{Trial: 1, Node: 2, Reject: true}, 3, TraceContext{})[4:])
	f.Add(uint32(5), uint32(2), uint64(11), uint16(4096), true, []byte{2, 9, 0, 0, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, sess, a uint32, seed uint64, count uint16, flag bool, raw []byte) {
		n := int(count)%MaxReportTrials + 1
		report := &SessionReport{Session: sess | 1, K: 1<<31 | a,
			Verdicts: make([]bool, n), Rejects: make([]uint32, n),
			Votes: make([]uint32, n), Missing: make([]uint32, n)}
		s := seed
		for i := 0; i < n; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			report.Votes[i] = uint32(s) % (report.K + 1)
			report.Rejects[i] = uint32(s>>16) % (report.Votes[i] + 1)
			report.Missing[i] = uint32(s>>32) % (report.K - report.Votes[i] + 1)
			report.Verdicts[i] = s>>63 == 1
		}
		frames := []Frame{
			&Hello{Node: a, K: a + 1, Trials: uint32(count)},
			&Vote{Trial: a, Node: sess, Reject: flag},
			&Sketch{Trial: a, Node: sess, Samples: uint32(seed), Collisions: uint32(seed >> 32)},
			&Done{Node: a},
			&Verdict{Trials: uint32(count), Accepts: a, Missing: sess},
			&AggHello{Agg: a, K: sess + 1, Trials: uint32(count), Lo: a, Hi: a + 1},
			&PartialVerdict{Agg: a, Sketch: flag, Entries: advPartialEntries(seed, int(count)%MaxPartialEntries+1, flag)},
			&SessionOpen{Tenant: a, K: sess, Trials: uint32(count), Seed: seed,
				Rule: byte(seed), Thresh: a, Sketch: flag, Default: seed%2 == 0, EarlyClose: seed%3 == 0},
			&SessionAccept{Session: sess | 1, Tenant: a},
			&SessionReject{Tenant: a, Reason: byte(seed)%rejectReasonMax + 1},
			report,
		}
		tc := TraceContext{Trace: seed | 1, Span: seed >> 3}
		var sc DecodeScratch
		for _, fr := range frames {
			for _, ctx := range []TraceContext{{}, tc} {
				for _, session := range []uint32{0, sess | 1} {
					enc := AppendSession(nil, fr, session, ctx)
					if len(enc)-4 > FrameCap(fr.Type()) {
						t.Fatalf("%T: frame body %d bytes exceeds cap", fr, len(enc)-4)
					}
					got, gotTC, gotSess, err := DecodeBodySession(enc[4:], &sc)
					if err != nil {
						t.Fatalf("%T: decode own encoding (session %d): %v", fr, session, err)
					}
					wantSess := session
					if fr.Type() >= TypeSessionOpen {
						wantSess = 0 // control frames never take the suffix
					}
					if gotSess != wantSess || gotTC != ctx || !framesEqual(got, fr) {
						t.Fatalf("%T: session round trip mismatch (session %d→%d)", fr, session, gotSess)
					}
					// The routing peeks agree with the full decode on every
					// valid encoding.
					if SessionOf(enc[4:]) != wantSess {
						t.Fatalf("%T: SessionOf peek = %d, want %d", fr, SessionOf(enc[4:]), wantSess)
					}
					if BodyType(enc[4:]) != fr.Type() {
						t.Fatalf("%T: BodyType peek = %d, want %d", fr, BodyType(enc[4:]), fr.Type())
					}
					// Decode∘encode is the identity: the codec is bijective.
					if re := AppendSession(nil, got, gotSess, gotTC); !bytes.Equal(re, enc) {
						t.Fatalf("%T: re-encode mismatch: %x vs %x", fr, re, enc)
					}
					if session == 0 && fr.Type() < TypeSessionOpen {
						// Session 0 must be byte-identical to the classic
						// pre-session encoding.
						if classic := AppendTraced(nil, fr, ctx); !bytes.Equal(classic, enc) {
							t.Fatalf("%T: session-0 not byte-identical to v4-and-below", fr)
						}
					}
				}
			}
		}
		// Cap enforcement survives fuzzing.
		over := &SessionReport{Session: 1, K: 1, Verdicts: make([]bool, MaxReportTrials+1),
			Rejects: make([]uint32, MaxReportTrials+1), Votes: make([]uint32, MaxReportTrials+1),
			Missing: make([]uint32, MaxReportTrials+1)}
		if _, err := AppendSessionReport(nil, over, TraceContext{}); !errors.Is(err, ErrOversize) {
			t.Fatalf("oversize report: err = %v", err)
		}

		// Adversarial path: raw bytes framed as v5 bodies — suffixed
		// established types, control types, traced variants, and whatever
		// type byte the fuzzer cooks up — must decode canonically or fail
		// with a typed error.
		types := []byte{TypeVote, TypeVote | 0x80, TypeVoteBatch, TypeHello,
			TypeSessionOpen, TypeSessionReport, TypeSessionReport | 0x80, byte(seed)}
		for _, typ := range types {
			body := append([]byte{SessionVersion, typ}, raw...)
			if len(body) > MaxBatchFrameBytes {
				body = body[:MaxBatchFrameBytes]
			}
			fr, ftc, fsess, err := DecodeBodySession(body, &sc)
			if err == nil {
				if vb, ok := fr.(*VoteBatch); ok && vb.Compressed {
					// Any valid compressor output is accepted; equality is
					// semantic (see FuzzWireRoundTrip).
					continue
				}
				re := AppendSession(nil, fr, fsess, ftc)
				if !bytes.Equal(re[4:], body) {
					t.Fatalf("adversarial %s not canonical: %x vs %x", TypeName(typ&^0x80), re[4:], body)
				}
				continue
			}
			for _, known := range []error{ErrTruncated, ErrOversize, ErrVersion, ErrUnknownType, ErrFrameSize, ErrTraceContext, ErrSession, ErrCompression} {
				if errors.Is(err, known) {
					err = nil
					break
				}
			}
			if err != nil {
				t.Fatalf("unexpected error class: %v", err)
			}
		}
	})
}
