// Vote batching: the VoteBatch frame packs many (trial, node, vote) —
// or (trial, node, samples, collisions) sketch — tuples into one wire
// frame, amortizing the 4-byte prefix, the syscall, and the referee's
// per-frame bookkeeping across up to MaxBatchVotes votes.
//
// Raw payload layout (all varints are unsigned LEB128, minimal-length):
//
//	[flags u8]            bit0 = sketch mode, other bits zero
//	[count uvarint]       1 .. MaxBatchVotes
//	[trial column]        first value uvarint, then zigzag-uvarint deltas
//	[node column]         same encoding
//	sketch mode:
//	  [samples column]    same encoding
//	  [collisions column] same encoding
//	vote mode:
//	  [reject bitset]     ⌈count/8⌉ bytes, LSB-first, trailing bits zero
//
// Delta columns exploit the cluster's access pattern — a node sends its
// own votes in trial order, so trial deltas are +1 and node deltas are 0,
// one byte each — without assuming it: any uint32 values round-trip. The
// decoder enforces minimal varints, zero trailing bitset bits, zero spare
// flag bits and exact payload length, so the raw encoding is bijective:
// every decodable batch re-encodes to the identical bytes, the property
// FuzzVoteBatchRoundTrip pins. The compressed form (TypeVoteBatchZ,
// compress.go) wraps this same payload and is only emitted when it is
// strictly smaller.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MaxBatchVotes caps the tuples one VoteBatch may carry. Worst-case
// encoding (adversarial values, sketch mode) stays under
// MaxBatchFrameBytes with room for the trace suffix.
const MaxBatchVotes = 4096

// maxBatchPayloadBytes bounds a batch payload so the full frame body
// (version + type + payload + trace suffix) fits MaxBatchFrameBytes.
const maxBatchPayloadBytes = MaxBatchFrameBytes - 2 - traceContextBytes

// BatchVote is one tuple inside a VoteBatch. In vote mode only Trial,
// Node and Reject are carried; in sketch mode Trial, Node, Samples and
// Collisions are carried and the referee derives the vote server-side
// (reject iff Collisions > 0), mirroring the single-frame Sketch type.
type BatchVote struct {
	Trial      uint32
	Node       uint32
	Reject     bool
	Samples    uint32
	Collisions uint32
}

// VoteBatch is a batch of votes from one node. Compressed and Saved are
// decoder outputs (whether the frame arrived as TypeVoteBatchZ and how
// many wire bytes that saved); they are not part of the encoding.
type VoteBatch struct {
	// Sketch selects the tuple shape: collision statistics instead of a
	// reject bit.
	Sketch bool
	// Votes are the batched tuples, at most MaxBatchVotes.
	Votes []BatchVote
	// Compressed reports (after decode) that the batch arrived
	// block-compressed.
	Compressed bool
	// Saved reports (after decode) the wire bytes compression saved
	// versus the raw batch encoding.
	Saved int
}

// Type implements Frame. A VoteBatch always identifies as TypeVoteBatch;
// the compressed type byte is an encoding detail chosen at Append time.
func (VoteBatch) Type() byte { return TypeVoteBatch }

// Column selectors for the shared delta-encoding helpers.
const (
	colTrial = iota
	colNode
	colSamples
	colCollisions
)

func colVal(v *BatchVote, col int) uint32 {
	switch col {
	case colTrial:
		return v.Trial
	case colNode:
		return v.Node
	case colSamples:
		return v.Samples
	default:
		return v.Collisions
	}
}

func setColVal(v *BatchVote, col int, x uint32) {
	switch col {
	case colTrial:
		v.Trial = x
	case colNode:
		v.Node = x
	case colSamples:
		v.Samples = x
	default:
		v.Collisions = x
	}
}

// zigzag maps a signed delta to an unsigned varint-friendly value
// (0,-1,1,-2,... → 0,1,2,3,...); unzigzag inverts it. Both are bijections,
// so delta columns stay canonical.
func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the minimal LEB128 length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readUvarint decodes a minimal-length uvarint at p[off:], rejecting
// truncated, overlong and non-minimal encodings.
func readUvarint(p []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad varint at batch offset %d", ErrFrameSize, off)
	}
	if n != uvarintLen(v) {
		return 0, 0, fmt.Errorf("%w: non-minimal varint at batch offset %d", ErrFrameSize, off)
	}
	return v, off + n, nil
}

func appendColumn(dst []byte, votes []BatchVote, col int) []byte {
	if len(votes) == 0 {
		return dst
	}
	prev := int64(colVal(&votes[0], col))
	dst = binary.AppendUvarint(dst, uint64(prev))
	for i := 1; i < len(votes); i++ {
		v := int64(colVal(&votes[i], col))
		dst = binary.AppendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

func columnSize(votes []BatchVote, col int) int {
	if len(votes) == 0 {
		return 0
	}
	prev := int64(colVal(&votes[0], col))
	n := uvarintLen(uint64(prev))
	for i := 1; i < len(votes); i++ {
		v := int64(colVal(&votes[i], col))
		n += uvarintLen(zigzag(v - prev))
		prev = v
	}
	return n
}

// decodeColumn fills one field of votes from a delta column at p[off:],
// enforcing that every reconstructed value fits uint32.
func decodeColumn(p []byte, off int, votes []BatchVote, col int) (int, error) {
	first, off, err := readUvarint(p, off)
	if err != nil {
		return 0, err
	}
	if first > math.MaxUint32 {
		return 0, fmt.Errorf("%w: batch column value %d out of range", ErrFrameSize, first)
	}
	setColVal(&votes[0], col, uint32(first))
	prev := int64(first)
	for i := 1; i < len(votes); i++ {
		u, noff, err := readUvarint(p, off)
		if err != nil {
			return 0, err
		}
		d := unzigzag(u)
		// |d| ≤ 2³² keeps prev+d inside int64; the value check below does
		// the rest.
		if d > math.MaxUint32 || d < -math.MaxUint32 {
			return 0, fmt.Errorf("%w: batch column delta %d out of range", ErrFrameSize, d)
		}
		val := prev + d
		if val < 0 || val > math.MaxUint32 {
			return 0, fmt.Errorf("%w: batch column value %d out of range", ErrFrameSize, val)
		}
		setColVal(&votes[i], col, uint32(val))
		prev = val
		off = noff
	}
	return off, nil
}

func (b VoteBatch) payloadSize() int {
	n := 1 + uvarintLen(uint64(len(b.Votes)))
	n += columnSize(b.Votes, colTrial) + columnSize(b.Votes, colNode)
	if b.Sketch {
		n += columnSize(b.Votes, colSamples) + columnSize(b.Votes, colCollisions)
	} else {
		n += (len(b.Votes) + 7) / 8
	}
	return n
}

func (b VoteBatch) appendPayload(dst []byte) []byte {
	flags := byte(0)
	if b.Sketch {
		flags = 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(b.Votes)))
	dst = appendColumn(dst, b.Votes, colTrial)
	dst = appendColumn(dst, b.Votes, colNode)
	if b.Sketch {
		dst = appendColumn(dst, b.Votes, colSamples)
		dst = appendColumn(dst, b.Votes, colCollisions)
		return dst
	}
	nb := (len(b.Votes) + 7) / 8
	base := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	for i := range b.Votes {
		if b.Votes[i].Reject {
			dst[base+i>>3] |= 1 << (i & 7)
		}
	}
	return dst
}

func (b *VoteBatch) decodePayload(p []byte) error {
	if len(p) < 2 {
		return fmt.Errorf("%w: %d-byte batch payload", ErrFrameSize, len(p))
	}
	flags := p[0]
	if flags&^1 != 0 {
		return fmt.Errorf("%w: batch flags %#x", ErrFrameSize, flags)
	}
	b.Sketch = flags&1 != 0
	cnt, off, err := readUvarint(p, 1)
	if err != nil {
		return err
	}
	if cnt == 0 {
		return fmt.Errorf("%w: empty batch", ErrFrameSize)
	}
	if cnt > MaxBatchVotes {
		return fmt.Errorf("%w: batch of %d votes (limit %d)", ErrOversize, cnt, MaxBatchVotes)
	}
	count := int(cnt)
	if cap(b.Votes) < count {
		b.Votes = make([]BatchVote, count)
	} else {
		b.Votes = b.Votes[:count]
		// Scratch reuse: stale fields from the mode not carried by this
		// batch must not leak through.
		clear(b.Votes)
	}
	if off, err = decodeColumn(p, off, b.Votes, colTrial); err != nil {
		return err
	}
	if off, err = decodeColumn(p, off, b.Votes, colNode); err != nil {
		return err
	}
	if b.Sketch {
		if off, err = decodeColumn(p, off, b.Votes, colSamples); err != nil {
			return err
		}
		if off, err = decodeColumn(p, off, b.Votes, colCollisions); err != nil {
			return err
		}
	} else {
		nb := (count + 7) / 8
		if len(p)-off < nb {
			return fmt.Errorf("%w: batch bitset truncated", ErrFrameSize)
		}
		bits := p[off : off+nb]
		if r := count & 7; r != 0 && bits[nb-1]>>r != 0 {
			return fmt.Errorf("%w: nonzero trailing bitset bits", ErrFrameSize)
		}
		for i := range b.Votes {
			b.Votes[i].Reject = bits[i>>3]>>(i&7)&1 == 1
		}
		off += nb
	}
	if off != len(p) {
		return fmt.Errorf("%w: %d trailing batch bytes", ErrFrameSize, len(p)-off)
	}
	return nil
}

// BatchVoteSize returns the payload bytes appending v to a batch adds:
// the per-column varint costs given the previous entry (nil when v is
// first). It excludes the flags/count/bitset overhead — a watermark
// estimate for flush decisions, not an exact encoder.
func BatchVoteSize(prev, v *BatchVote, sketch bool) int {
	if prev == nil {
		n := uvarintLen(uint64(v.Trial)) + uvarintLen(uint64(v.Node))
		if sketch {
			n += uvarintLen(uint64(v.Samples)) + uvarintLen(uint64(v.Collisions))
		}
		return n
	}
	n := uvarintLen(zigzag(int64(v.Trial)-int64(prev.Trial))) +
		uvarintLen(zigzag(int64(v.Node)-int64(prev.Node)))
	if sketch {
		n += uvarintLen(zigzag(int64(v.Samples)-int64(prev.Samples))) +
			uvarintLen(zigzag(int64(v.Collisions)-int64(prev.Collisions)))
	}
	return n
}

// BatchEncoder encodes VoteBatch frames with reusable scratch buffers and
// an opportunistic compression pass: the compressed form is emitted only
// when the block compressor both succeeds and strictly shrinks the
// payload, and every compressed payload is decompressed and compared
// before it is trusted (a failed roundtrip — which would indicate a
// compressor bug — falls back to the raw form rather than corrupting the
// stream). The zero value is ready to use.
type BatchEncoder struct {
	raw    []byte
	comp   []byte
	verify []byte
}

// Append appends b's wire encoding carrying tc to dst. With compress set,
// payloads of at least MinCompressibleSize bytes are block-compressed when
// that saves wire bytes; smaller or incompressible payloads encode raw.
func (e *BatchEncoder) Append(dst []byte, b *VoteBatch, tc TraceContext, compress bool) ([]byte, error) {
	if len(b.Votes) == 0 {
		return dst, fmt.Errorf("wire: empty vote batch")
	}
	if len(b.Votes) > MaxBatchVotes {
		return dst, fmt.Errorf("%w: batch of %d votes (limit %d)", ErrOversize, len(b.Votes), MaxBatchVotes)
	}
	size := b.payloadSize()
	if size > maxBatchPayloadBytes {
		return dst, fmt.Errorf("%w: %d-byte batch payload (limit %d)", ErrOversize, size, maxBatchPayloadBytes)
	}
	if compress && size >= MinCompressibleSize {
		e.raw = b.appendPayload(e.raw[:0])
		if comp := CompressBlock(e.raw, e.comp[:0]); comp != nil {
			e.comp = comp
			zsize := uvarintLen(uint64(size)) + len(comp)
			if zsize < size && e.roundTrips(comp, size) {
				return appendFlaggedFrame(dst, BatchVersion, TypeVoteBatchZ, zsize, func(d []byte) []byte {
					d = binary.AppendUvarint(d, uint64(size))
					return append(d, comp...)
				}, tc), nil
			}
		}
		// Raw fallback, reusing the already-encoded payload.
		return appendFlaggedFrame(dst, BatchVersion, TypeVoteBatch, size, func(d []byte) []byte {
			return append(d, e.raw...)
		}, tc), nil
	}
	return AppendTraced(dst, b, tc), nil
}

// roundTrips verifies comp decompresses back to the rawLen bytes sitting
// in e.raw.
func (e *BatchEncoder) roundTrips(comp []byte, rawLen int) bool {
	out, err := DecompressBlock(comp, e.verify[:0], rawLen)
	if err != nil || len(out) != rawLen {
		return false
	}
	e.verify = out
	for i := range out {
		if out[i] != e.raw[i] {
			return false
		}
	}
	return true
}

// AppendBatch is the convenience form of BatchEncoder.Append with
// throwaway scratch.
func AppendBatch(dst []byte, b *VoteBatch, tc TraceContext, compress bool) ([]byte, error) {
	var e BatchEncoder
	return e.Append(dst, b, tc, compress)
}

// decodeZPayload parses a TypeVoteBatchZ payload — uvarint raw length
// followed by the compressed block — and returns the decompressed raw
// batch payload plus the wire bytes the compression saved. Canonicality
// checks: the raw length must be in the compressible range and the
// compressed payload strictly smaller than it (our encoder never emits
// anything else).
func decodeZPayload(payload []byte, sc *DecodeScratch) ([]byte, int, error) {
	rawLen64, off, err := readUvarint(payload, 0)
	if err != nil {
		return nil, 0, err
	}
	rawLen := int(rawLen64)
	if rawLen64 < MinCompressibleSize || rawLen64 > maxBatchPayloadBytes {
		return nil, 0, fmt.Errorf("%w: compressed batch raw length %d", ErrFrameSize, rawLen64)
	}
	if len(payload) >= rawLen {
		return nil, 0, fmt.Errorf("%w: compressed batch (%d bytes) not smaller than raw (%d)",
			ErrFrameSize, len(payload), rawLen)
	}
	var buf []byte
	if sc != nil {
		buf = sc.zbuf[:0]
	} else {
		buf = make([]byte, 0, rawLen)
	}
	out, err := DecompressBlock(payload[off:], buf, rawLen)
	if sc != nil && cap(out) > cap(sc.zbuf) {
		sc.zbuf = out
	}
	if err != nil {
		return nil, 0, err
	}
	if len(out) != rawLen {
		return nil, 0, fmt.Errorf("%w: compressed batch decompressed to %d bytes, want %d",
			ErrFrameSize, len(out), rawLen)
	}
	return out, rawLen - len(payload), nil
}
