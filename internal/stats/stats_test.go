package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKLBernoulliBasics(t *testing.T) {
	tests := []struct {
		name string
		p, q float64
		want float64
	}{
		{name: "equal distributions", p: 0.3, q: 0.3, want: 0},
		{name: "equal at zero", p: 0, q: 0, want: 0},
		{name: "equal at one", p: 1, q: 1, want: 0},
		{name: "half vs quarter", p: 0.5, q: 0.25, want: 0.5*math.Log(2) + 0.5*math.Log(2.0/3.0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := KLBernoulli(tt.p, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("KL(%v||%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestKLBernoulliInfinite(t *testing.T) {
	got, err := KLBernoulli(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("KL(0.5||0) = %v, want +Inf", got)
	}
}

func TestKLBernoulliInvalid(t *testing.T) {
	if _, err := KLBernoulli(-0.1, 0.5); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := KLBernoulli(0.5, 1.1); err == nil {
		t.Fatal("q > 1 accepted")
	}
}

func TestKLBernoulliNonNegative(t *testing.T) {
	f := func(pRaw, qRaw uint16) bool {
		p := float64(pRaw) / 65535
		q := float64(qRaw)/65535*0.98 + 0.01 // keep q in (0,1) to avoid Inf
		got, err := KLBernoulli(p, q)
		return err == nil && got >= -1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLemma21 verifies the paper's Lemma 2.1:
// D(B_{1-δ} || B_{1-τδ}) ≥ (δ/4)(τ − 1 − ln τ) for δ ∈ (0, 1/4), τ ∈ (1, 1/δ).
func TestLemma21(t *testing.T) {
	f := func(dRaw, tRaw uint16) bool {
		delta := float64(dRaw)/65536*0.2499 + 1e-6 // (0, 1/4)
		tauMax := 1 / delta
		tau := 1 + float64(tRaw)/65536*(tauMax-1-1e-9)
		if tau <= 1 || tau >= tauMax {
			return true
		}
		kl, err := KLBernoulli(1-delta, 1-tau*delta)
		if err != nil {
			return false
		}
		return kl+1e-12 >= KLGapLowerBound(delta, tau)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLemma21Grid(t *testing.T) {
	for _, delta := range []float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.24} {
		for _, tau := range []float64{1.01, 1.1, 1.5, 2, 3, 4} {
			if tau >= 1/delta {
				continue
			}
			kl, err := KLBernoulli(1-delta, 1-tau*delta)
			if err != nil {
				t.Fatal(err)
			}
			if lb := KLGapLowerBound(delta, tau); kl < lb-1e-12 {
				t.Errorf("Lemma 2.1 violated at δ=%v τ=%v: KL=%v < bound=%v", delta, tau, kl, lb)
			}
		}
	}
}

func TestGapF(t *testing.T) {
	if got := GapF(1); math.Abs(got) > 1e-12 {
		t.Fatalf("f(1) = %v, want 0", got)
	}
	prev := 0.0
	for tau := 1.1; tau < 10; tau += 0.1 {
		v := GapF(tau)
		if v <= prev {
			t.Fatalf("f not increasing at τ=%v", tau)
		}
		prev = v
	}
}

func TestChernoffBoundsAgainstBinomial(t *testing.T) {
	// The Chernoff expressions must upper-bound the exact binomial tails.
	const n = 400
	p := 0.1
	mu := float64(n) * p
	for _, beta := range []float64{0.2, 0.5, 0.9} {
		upperCut := int(math.Ceil((1 + beta) * mu))
		exactUpper := BinomialTail(n, p, upperCut)
		if bound := ChernoffUpper(mu, beta); exactUpper > bound+1e-12 {
			t.Errorf("upper tail β=%v: exact %v > bound %v", beta, exactUpper, bound)
		}
		lowerCut := int(math.Floor((1 - beta) * mu))
		exactLower := 1 - BinomialTail(n, p, lowerCut+1)
		if bound := ChernoffLower(mu, beta); exactLower > bound+1e-12 {
			t.Errorf("lower tail β=%v: exact %v > bound %v", beta, exactLower, bound)
		}
	}
}

func TestChernoffDegenerate(t *testing.T) {
	if ChernoffUpper(0, 0.5) != 1 {
		t.Error("ChernoffUpper with µ=0 should be the trivial bound 1")
	}
	if ChernoffLower(10, 0) != 1 {
		t.Error("ChernoffLower with β=0 should be the trivial bound 1")
	}
	if ChernoffUpper(10, 2) >= 1 {
		t.Error("ChernoffUpper with β>1 should still be nontrivial")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] does not contain the point estimate 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval [%v, %v] implausibly wide for 100 trials", lo, hi)
	}
}

func TestWilsonIntervalEdges(t *testing.T) {
	lo, hi := WilsonInterval(0, 100, 1.96)
	if lo != 0 {
		t.Errorf("zero successes: lo = %v, want 0", lo)
	}
	if hi <= 0 || hi > 0.1 {
		t.Errorf("zero successes: hi = %v, want small positive", hi)
	}
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 1-1e-9 {
		t.Errorf("all successes: hi = %v, want ~1", hi)
	}
	if lo >= 1 || lo < 0.9 {
		t.Errorf("all successes: lo = %v, want close to 1", lo)
	}
	lo, hi = WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("no trials: [%v, %v], want [0, 1]", lo, hi)
	}
}

func TestWilsonNarrowsWithTrials(t *testing.T) {
	lo1, hi1 := WilsonInterval(10, 100, 1.96)
	lo2, hi2 := WilsonInterval(1000, 10000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatalf("interval did not narrow: %v vs %v", hi2-lo2, hi1-lo1)
	}
}

func TestLpNormKnownValues(t *testing.T) {
	x := []float64{3, 4}
	if got := LpNorm(x, 2); math.Abs(got-5) > 1e-12 {
		t.Errorf("‖(3,4)‖₂ = %v, want 5", got)
	}
	if got := LpNorm(x, 1); math.Abs(got-7) > 1e-12 {
		t.Errorf("‖(3,4)‖₁ = %v, want 7", got)
	}
	if got := LpNorm(x, math.Inf(1)); math.Abs(got-4) > 1e-12 {
		t.Errorf("‖(3,4)‖∞ = %v, want 4", got)
	}
}

func TestLpNormUnitCostVector(t *testing.T) {
	// Section 4: for all costs 1, ‖T‖₂ = √k.
	for _, k := range []int{1, 4, 100} {
		ones := make([]float64, k)
		for i := range ones {
			ones[i] = 1
		}
		if got, want := LpNorm(ones, 2), math.Sqrt(float64(k)); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d: ‖1‖₂ = %v, want %v", k, got, want)
		}
	}
}

func TestLpNormMonotoneInP(t *testing.T) {
	f := func(a, b, c int8) bool {
		x := []float64{float64(a), float64(b), float64(c)}
		// ‖x‖_p is non-increasing in p.
		prev := math.Inf(1)
		for _, p := range []float64{1, 1.5, 2, 4, 8, 16} {
			v := LpNorm(x, p)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLpNormEmptyAndZero(t *testing.T) {
	if LpNorm(nil, 2) != 0 {
		t.Error("empty vector should have norm 0")
	}
	if LpNorm([]float64{0, 0}, 3) != 0 {
		t.Error("zero vector should have norm 0")
	}
}

func TestLpNormLargePNoOverflow(t *testing.T) {
	x := []float64{1e300, 1e300}
	got := LpNorm(x, 64)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("overflow: %v", got)
	}
	if got < 1e300 {
		t.Fatalf("‖x‖₆₄ = %v, want ≥ max element", got)
	}
}

func TestCollisionEntropy(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got := CollisionEntropy(uniform); math.Abs(got-2) > 1e-12 {
		t.Errorf("H₂(U₄) = %v, want 2", got)
	}
	point := []float64{1, 0, 0}
	if got := CollisionEntropy(point); math.Abs(got) > 1e-12 {
		t.Errorf("H₂(point mass) = %v, want 0", got)
	}
}

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Mean(xs); math.Abs(got-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, math.Sqrt(2.5))
	}
	if got := Median(xs); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its argument")
	}
}

func TestBinomialTail(t *testing.T) {
	tests := []struct {
		n    int
		p    float64
		k    int
		want float64
	}{
		{n: 10, p: 0.5, k: 0, want: 1},
		{n: 10, p: 0.5, k: 11, want: 0},
		{n: 1, p: 0.5, k: 1, want: 0.5},
		{n: 2, p: 0.5, k: 1, want: 0.75},
		{n: 2, p: 0.5, k: 2, want: 0.25},
		{n: 10, p: 0, k: 1, want: 0},
		{n: 10, p: 1, k: 10, want: 1},
	}
	for _, tt := range tests {
		if got := BinomialTail(tt.n, tt.p, tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("BinomialTail(%d, %v, %d) = %v, want %v", tt.n, tt.p, tt.k, got, tt.want)
		}
	}
}

func TestBinomialTailMonotoneInK(t *testing.T) {
	prev := 1.1
	for k := 0; k <= 20; k++ {
		v := BinomialTail(20, 0.3, k)
		if v > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d", k)
		}
		prev = v
	}
}
