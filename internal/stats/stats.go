// Package stats provides the small statistics toolkit the uniformity-testing
// library builds on: KL divergence and the asymmetric-error information bound
// of Lemma 2.1, Chernoff tail bounds in the multiplicative form used by the
// threshold tester (Theorem 1.2), Wilson confidence intervals for the
// empirical error rates reported by the experiment harness, Lp norms of cost
// vectors (Section 4), and collision entropy (Section 7).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInvalidProbability is returned when a probability argument lies outside
// [0, 1].
var ErrInvalidProbability = errors.New("stats: probability outside [0, 1]")

// KLBernoulli returns the Kullback–Leibler divergence D(B_p || B_q) between
// two Bernoulli distributions, in nats. By convention 0·log(0/·) = 0.
// It returns +Inf when q is 0 or 1 while p is not.
func KLBernoulli(p, q float64) (float64, error) {
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return 0, ErrInvalidProbability
	}
	return klTerm(p, q) + klTerm(1-p, 1-q), nil
}

func klTerm(a, b float64) float64 {
	switch {
	case a == 0:
		return 0
	case b == 0:
		return math.Inf(1)
	default:
		return a * math.Log(a/b)
	}
}

// KLGapLowerBound returns the paper's Lemma 2.1 lower bound
//
//	D(B_{1-δ} || B_{1-τδ}) ≥ (δ/4)·(τ − 1 − ln τ)
//
// for δ ∈ (0, 1/4) and τ ∈ (1, 1/δ). This is the minimum information any
// (δ, τ)-gap tester must extract; the experiment harness verifies the
// inequality numerically over a grid and testing/quick verifies it over
// random parameters.
func KLGapLowerBound(delta, tau float64) float64 {
	return delta / 4 * GapF(tau)
}

// GapF is the function f(τ) = τ − 1 − ln τ from Section 7. It is zero at
// τ = 1 and strictly increasing for τ > 1.
func GapF(tau float64) float64 {
	return tau - 1 - math.Log(tau)
}

// ChernoffUpper bounds Pr[X ≥ (1+β)µ] for a sum X of independent 0/1
// variables with mean µ, using the multiplicative form exp(−β²µ/3) valid for
// β ∈ (0, 1] (and a weaker but valid exponent β/3 for β > 1). This is the
// form used in the proof of Theorem 1.2.
func ChernoffUpper(mu, beta float64) float64 {
	if mu <= 0 || beta <= 0 {
		return 1
	}
	if beta > 1 {
		return math.Exp(-beta * mu / 3)
	}
	return math.Exp(-beta * beta * mu / 3)
}

// ChernoffLower bounds Pr[X ≤ (1−β)µ] using exp(−β²µ/2), valid for
// β ∈ (0, 1). This is the lower-tail form used in the proof of Theorem 1.2.
func ChernoffLower(mu, beta float64) float64 {
	if mu <= 0 || beta <= 0 {
		return 1
	}
	if beta >= 1 {
		beta = 1
	}
	return math.Exp(-beta * beta * mu / 2)
}

// WilsonInterval returns the Wilson score interval for an observed
// proportion of successes among trials at confidence parameter z (e.g.
// z = 1.96 for 95%). It is well behaved near 0 and 1, where the experiment
// harness's error-rate estimates live.
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// LpNorm returns ‖x‖_p for p ≥ 1. Section 4 expresses asymmetric-cost
// bounds in terms of ‖T‖₂ and ‖T‖₂ₘ of the inverse-cost vector T.
func LpNorm(x []float64, p float64) float64 {
	if p < 1 {
		panic("stats: LpNorm requires p >= 1")
	}
	if len(x) == 0 {
		return 0
	}
	if math.IsInf(p, 1) {
		max := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
		return max
	}
	// Scale by the max to avoid overflow for large p.
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += math.Pow(math.Abs(v)/max, p)
	}
	return max * math.Pow(sum, 1/p)
}

// CollisionEntropy returns H₂(µ) = −log₂ Σ µ(x)², the collision (Rényi-2)
// entropy of a distribution given as a probability vector. Section 7 uses
// collision entropy to control Pr[X = Y] for independent X, Y ~ µ.
func CollisionEntropy(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v * v
	}
	if s == 0 {
		return math.Inf(1)
	}
	return -math.Log2(s)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// BinomialTail returns Pr[Bin(n, p) ≥ k] computed by direct summation in
// log space. It is exact up to floating-point rounding and is used by the
// solvers to validate threshold choices for moderate n.
func BinomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	logP, logQ := math.Log(p), math.Log1p(-p)
	total := 0.0
	for i := k; i <= n; i++ {
		total += math.Exp(logChoose(n, i) + float64(i)*logP + float64(n-i)*logQ)
	}
	if total > 1 {
		total = 1
	}
	return total
}

// logChoose returns ln C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
