package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, analysis.DetRand,
		"detrand/bad",
		"detrand/allowed",
		"detrand/exempt/rng",
		"detrand/faultplan",
	)
}
