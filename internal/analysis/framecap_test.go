package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestFrameCap(t *testing.T) {
	analysistest.Run(t, analysis.FrameCap,
		"framecap/cluster/bad",
		"framecap/cluster/allowed",
		"framecap/cluster/good",
		"framecap/cluster/aggbad",
		"framecap/cluster/agggood",
		"framecap/cluster/sessfwd",
	)
}
