package analysis

import (
	"go/ast"
)

// QLifecycle requires every goroutine spawned in cluster-segment packages
// to have a reachable shutdown path. A goroutine whose body loops with
// `for {}` and no return or break inside can never be joined: Close hangs,
// tests leak OS threads, and the harness's per-run teardown stops being a
// barrier. Two idioms terminate cleanly and pass without annotation:
//
//   - `for range ch { ... }` — ends when the channel is closed; this is
//     the sendQueue single-writer idiom (producer closes items, the writer
//     drains and signals done).
//   - a `for { select { ... } }` loop where some clause returns or breaks
//     out of the loop (a stop-channel case).
//
// Goroutine bodies without loops run to completion on their own and are
// always fine. The analyzer resolves `go f()` through same-package
// declarations, so a named worker function is held to the same rule as an
// inline literal.
var QLifecycle = &Analyzer{
	Name: "qlifecycle",
	Doc:  "require goroutines in cluster packages to have a reachable shutdown path (no unbreakable for{} loops)",
	Run:  runQLifecycle,
}

func runQLifecycle(pass *Pass) error {
	if !HasPathSegment(pass.Path, "cluster") {
		return nil
	}
	idx := indexFuncs(pass)
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := goBody(pass, idx, g)
			if body == nil {
				return true // dynamic callee: cannot see the body
			}
			checkGoroutineBody(pass, g, body, name)
			return true
		})
	}
	return nil
}

// goBody resolves the spawned function's body: an inline literal, or a
// same-package declaration reached through the call.
func goBody(pass *Pass, idx funcIndex, g *ast.GoStmt) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "goroutine"
	}
	if obj := calleeObject(pass.TypesInfo, g.Call); obj != nil {
		if fd := idx[obj]; fd != nil {
			return fd.Body, obj.Name()
		}
	}
	return nil, ""
}

// checkGoroutineBody flags condition-less for-loops in the goroutine body
// that contain no way out: no return, no (unlabeled) break, no breaking
// labeled statement. `for range ch` is exempt — closing the channel ends
// it — and loops with a condition terminate when it goes false.
func checkGoroutineBody(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt, name string) {
	walkSameFunc(body, func(n ast.Node) {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return
		}
		if loopHasExit(loop) {
			return
		}
		pass.Reportf(g.Pos(), "%s loops forever with no shutdown path: give the for{} a stop case (return/break on a closed channel) or drain a channel with for range so close() ends it", name)
	})
}

// loopHasExit reports whether the condition-less loop body contains a
// return, an unlabeled break at the loop's own level, or a labeled break
// (assumed to target an enclosing label — conservative in the loop's
// favor). Nested loops' own breaks do not count as exits of this loop.
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if exit || n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return // separate goroutine-independent scope
		case *ast.ReturnStmt:
			exit = true
			return
		case *ast.BranchStmt:
			if x.Tok.String() == "break" && (x.Label != nil || depth == 0) {
				exit = true
			}
			if x.Tok.String() == "goto" {
				// A goto can jump past the loop; give it the benefit of
				// the doubt rather than false-positive on state machines.
				exit = true
			}
			return
		case *ast.ForStmt:
			if n != loop {
				walkChildren(n, func(c ast.Node) { walk(c, depth+1) })
				return
			}
		case *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			// break inside these targets the inner statement, not the loop —
			// except select/switch don't consume break for our purposes when
			// labeled, which the Label check above already covers.
			walkChildren(n, func(c ast.Node) { walk(c, depth+1) })
			return
		}
		walkChildren(n, func(c ast.Node) { walk(c, depth) })
	}
	walkChildren(loop, func(c ast.Node) { walk(c, 0) })
	return exit
}

// walkChildren visits n's direct children once each.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}
