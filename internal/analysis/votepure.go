package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// voteContractNames are the function/method names implementing the indexed
// randomness contract (zeroround.VoteAt/RunAt/VoteStream): the vote of
// (base, trial, node) must be a pure function of its arguments. The
// pluggable-statistic roadmap multiplies implementations of these hooks,
// so the contract is enforced by name wherever it appears, not by package.
var voteContractNames = map[string]bool{
	"VoteAt":     true,
	"RunAt":      true,
	"VoteStream": true,
}

// VotePure enforces the purity contract on indexed vote functions: a
// VoteAt/RunAt/VoteStream implementation may not read the wall clock
// (time.Now/Since), draw from the global math/rand stream, or touch
// mutable package-level state — directly or through any same-package
// callee. Purity is what makes batched, retried, and faulted cluster runs
// trial-identical to the in-process reference execution: the cluster's
// differential tests pin VoteAt(base, t, i) equal across any scheduling,
// and that only holds if nothing outside the arguments feeds the vote.
// Receiver and parameter state is allowed (the network's testers are
// configuration, fixed before any trial runs); _test.go files are exempt.
var VotePure = &Analyzer{
	Name: "votepure",
	Doc:  "forbid wall clock, global rand, and mutable package state in VoteAt/RunAt/VoteStream implementations",
	Run:  runVotePure,
}

// impurity is one reason a function is impure.
type impurity struct {
	pos token.Pos
	msg string
}

func runVotePure(pass *Pass) error {
	idx := indexFuncs(pass)
	var contract []*ast.FuncDecl
	for _, fd := range idx {
		if voteContractNames[fd.Name.Name] {
			contract = append(contract, fd) //unifvet:allow maporder diagnostics are position-sorted by RunAnalyzers before output
		}
	}
	if len(contract) == 0 {
		return nil
	}

	// Direct impurities per function, computed lazily and memoized.
	direct := map[*ast.FuncDecl][]impurity{}
	for _, fd := range idx {
		direct[fd] = directImpurities(pass, fd)
	}

	for _, fd := range contract {
		// Report the contract function's own violations at their positions,
		// and violations of same-package callees at the call site that
		// reaches them (one hop of blame: the call is what breaks purity
		// from the contract's point of view).
		for _, imp := range direct[fd] {
			pass.Reportf(imp.pos, "%s: %s — the vote must be a pure function of (base, trial, node)", fd.Name.Name, imp.msg)
		}
		seen := map[*ast.FuncDecl]bool{fd: true}
		walkSameFunc(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeDecl(pass, idx, call)
			if callee == nil || seen[callee] {
				return
			}
			if imp, via := findImpure(pass, idx, direct, callee, map[*ast.FuncDecl]bool{fd: true}); imp != nil {
				seen[callee] = true
				pass.Reportf(call.Pos(), "%s calls %s, which %s (%s) — the vote must be a pure function of (base, trial, node)",
					fd.Name.Name, callee.Name.Name, imp.msg, via)
			}
		})
	}
	return nil
}

// calleeDecl resolves call to a same-package function declaration, or nil.
func calleeDecl(pass *Pass, idx funcIndex, call *ast.CallExpr) *ast.FuncDecl {
	obj := calleeObject(pass.TypesInfo, call)
	if obj == nil {
		return nil
	}
	return idx[obj]
}

// findImpure searches fd and its same-package callees depth-first for an
// impurity, returning the root cause and the function it lives in.
func findImpure(pass *Pass, idx funcIndex, direct map[*ast.FuncDecl][]impurity, fd *ast.FuncDecl, seen map[*ast.FuncDecl]bool) (*impurity, string) {
	if seen[fd] {
		return nil, ""
	}
	seen[fd] = true
	if imps := direct[fd]; len(imps) > 0 {
		return &imps[0], "in " + fd.Name.Name
	}
	var found *impurity
	via := ""
	walkSameFunc(fd.Body, func(n ast.Node) {
		if found != nil {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if callee := calleeDecl(pass, idx, call); callee != nil {
			if imp, v := findImpure(pass, idx, direct, callee, seen); imp != nil {
				found, via = imp, v
			}
		}
	})
	return found, via
}

// directImpurities collects fd's own purity violations: wall-clock reads,
// global math/rand draws, and package-level variable reads or writes.
func directImpurities(pass *Pass, fd *ast.FuncDecl) []impurity {
	var out []impurity
	walkSameFunc(fd.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			switch CalleeIn(x, pass.TypesInfo, "time") {
			case "Now", "Since":
				out = append(out, impurity{x.Pos(), "reads the wall clock"})
			}
			if CalleeIn(x, pass.TypesInfo, "math/rand") != "" || CalleeIn(x, pass.TypesInfo, "math/rand/v2") != "" {
				out = append(out, impurity{x.Pos(), "draws from the shared math/rand stream"})
			}
		case *ast.Ident:
			if obj := packageLevelVar(pass, x); obj != nil {
				out = append(out, impurity{x.Pos(), "touches mutable package state (" + obj.Name() + ")"})
			}
		}
	})
	return out
}

// packageLevelVar returns the object when id resolves to a mutable
// package-level variable of the package under analysis. Constants,
// functions, types, locals, fields, and imported names all return nil.
func packageLevelVar(pass *Pass, id *ast.Ident) types.Object {
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() != pass.Pkg {
		return nil
	}
	if v.Parent() != pass.Pkg.Scope() {
		return nil // local, parameter, or field
	}
	return v
}
