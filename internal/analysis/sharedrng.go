package analysis

import (
	"go/ast"
	"go/types"
)

// SharedRNG flags an rng generator crossing a goroutine boundary: a
// *rng.RNG captured by a `go func(){…}` closure, or passed as an argument
// in a `go` statement. Generators are single-threaded state machines —
// sharing one across goroutines is both a data race and a determinism
// break, because the interleaving decides who draws which variate. Each
// worker must derive its own generator inside the goroutine via rng.At
// (or rng.New with a worker-indexed seed), which is also what makes
// results worker-count-invariant.
var SharedRNG = &Analyzer{
	Name: "sharedrng",
	Doc:  "forbid *rng.RNG values crossing goroutine boundaries; derive per-worker generators via rng.At",
	Run:  runSharedRNG,
}

func runSharedRNG(pass *Pass) error {
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	call := g.Call
	// Generator passed as an argument to the spawned function.
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isRNG(tv.Type) {
			pass.Reportf(arg.Pos(), "*rng.RNG passed into goroutine: derive a per-worker generator inside the goroutine via rng.At(base, worker)")
		}
	}
	// Generator captured by a goroutine closure.
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] || !isRNG(obj.Type()) {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		// Declared outside the func literal ⇒ captured.
		if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
			reported[obj] = true
			pass.Reportf(id.Pos(), "*rng.RNG %q captured by goroutine closure: derive a per-worker generator inside the goroutine via rng.At(base, worker)", id.Name)
		}
		return true
	})
}

// isRNG reports whether t is *rng.RNG (or rng.RNG) from a package whose
// path ends in "rng".
func isRNG(t types.Type) bool {
	return t != nil && NamedFrom(t, "rng", "RNG")
}
