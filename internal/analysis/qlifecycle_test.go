package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestQLifecycle(t *testing.T) {
	analysistest.Run(t, analysis.QLifecycle,
		"qlifecycle/cluster/bad",
		"qlifecycle/cluster/allowed",
		"qlifecycle/cluster/good",
		"qlifecycle/cluster/aggfold",
		"qlifecycle/cluster/reaper",
	)
}
