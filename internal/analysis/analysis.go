// Package analysis implements unifvet, the repository's determinism and
// safety lint suite. It provides a small, dependency-free analog of
// golang.org/x/tools/go/analysis (the container build deliberately vendors
// nothing): an Analyzer inspects one type-checked package at a time through
// a Pass and reports Diagnostics, a driver loads packages via `go list
// -export` and gc export data, and the `//unifvet:allow <analyzer> <reason>`
// directive suppresses individual findings with an audit trail.
//
// The suite exists because the benchmark harness's reproducibility contract
// — byte-identical experiment tables at any worker count — rests on
// invariants no compiler checks: all randomness flows through internal/rng,
// trial paths never read the wall clock, map iteration order never reaches
// a table or JSON document, generators are never shared across goroutines,
// and telemetry always goes through the nil-safe obs accessors. Each
// invariant has a dedicated analyzer; see DESIGN.md §3.8 for the rules
// table.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint rule: a name (used in diagnostics and in
// //unifvet:allow directives), a doc sentence, and a Run function applied
// to each loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer. Analyzers read
// the syntax trees and type information and call Reportf; they must not
// mutate the package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path as the loader resolved it. For
	// fixture packages loaded by the test harness this is the
	// testdata/src-relative path, so analyzers should match path *segments*
	// (see HasPathSegment) rather than full module paths.
	Path string

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix records a diagnostic at pos carrying a suggested fix. Fixes
// must be mechanical and semantics-preserving: `cmd/unifvet -fix` applies
// them verbatim, so an analyzer only attaches one when the rewrite is
// provably equivalent (e.g. obsnil's field-read → nil-safe-accessor swap).
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Package:  p.Path,
		Fix:      fix,
	})
}

// A Diagnostic is one finding. The JSON shape is what cmd/unifvet -json
// embeds in the shared obs run-document envelope.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Package  string `json:"package,omitempty"`
	// Fix, when non-nil, is a mechanical rewrite that resolves the finding;
	// cmd/unifvet -fix applies it.
	Fix *SuggestedFix `json:"suggested_fix,omitempty"`
}

// A TextEdit replaces the bytes [Start, End) of File with New. Offsets are
// byte offsets into the file as parsed (token.Position.Offset).
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// A SuggestedFix is one mechanical rewrite resolving a finding.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Edit builds the single-edit fix replacing [pos, end) with new text.
func (p *Pass) Edit(pos, end token.Pos, msg, new string) *SuggestedFix {
	start := p.Fset.Position(pos)
	stop := p.Fset.Position(end)
	return &SuggestedFix{
		Message: msg,
		Edits:   []TextEdit{{File: start.Filename, Start: start.Offset, End: stop.Offset, New: new}},
	}
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// All returns the full unifvet analyzer suite in reporting order. The
// first five guard the simulation/trial invariants (PR 3); the last four
// guard the cluster runtime's wire-protocol and concurrency contracts.
func All() []*Analyzer {
	return []*Analyzer{
		DetRand,
		WallClock,
		MapOrder,
		SharedRNG,
		ObsNil,
		FrameCap,
		VotePure,
		LockIO,
		QLifecycle,
	}
}

// RunAnalyzers applies each analyzer to each package, filters the findings
// through the packages' //unifvet:allow directives, appends diagnostics for
// malformed directives, and returns everything sorted by file, line,
// column, then analyzer — a deterministic order regardless of package load
// order (unifvet practices what maporder preaches).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, bad := CollectAllows(pkg.Fset, pkg.Files)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, allows.Filter(pass.diags)...)
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// HasPathSegment reports whether path, split on '/', contains seg. Matching
// segments instead of full import paths lets the same analyzers run against
// both the real module tree (github.com/…/internal/rng) and the test
// harness's fixture packages (detrandexempt/rng).
func HasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. The standard
// loader only feeds analyzers non-test sources, but the harness and future
// loaders may not, so analyzers that exempt tests check explicitly.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// NamedFrom reports whether t is the named type `name` declared in a
// package whose import path ends with the segment pkgSeg, unwrapping one
// level of pointer. This is how analyzers recognize rng.RNG and
// obs.Recorder across the real tree and fixture stubs.
func NamedFrom(t types.Type, pkgSeg, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSeg || strings.HasSuffix(path, "/"+pkgSeg)
}

// CalleeIn returns the selector name of call's callee when it resolves to a
// package-level function or method exported from a package whose path ends
// in pkgSeg (e.g. CalleeIn(call, info, "time") == "Now" for time.Now()).
// Returns "" otherwise.
func CalleeIn(call *ast.CallExpr, info *types.Info, pkgSeg string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if path != pkgSeg && !strings.HasSuffix(path, "/"+pkgSeg) {
		return ""
	}
	return obj.Name()
}
