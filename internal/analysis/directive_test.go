package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectAllowsParsesDirectives(t *testing.T) {
	fset, files := parseOne(t, `package p

//unifvet:allow wallclock timing is observability only
var a int

var b int //unifvet:allow maporder consumer is commutative
`)
	allows, bad := CollectAllows(fset, files)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	// Standalone directive suppresses its own line and the next.
	if !allows.Allowed("wallclock", "dir.go", 3) || !allows.Allowed("wallclock", "dir.go", 4) {
		t.Errorf("standalone directive should cover lines 3 and 4")
	}
	if allows.Allowed("wallclock", "dir.go", 5) {
		t.Errorf("directive must not cover line 5")
	}
	// Trailing directive suppresses its own line.
	if !allows.Allowed("maporder", "dir.go", 6) {
		t.Errorf("trailing directive should cover line 6")
	}
	// Analyzer names must match.
	if allows.Allowed("maporder", "dir.go", 4) || allows.Allowed("detrand", "dir.go", 6) {
		t.Errorf("directives must be analyzer-specific")
	}
}

func TestCollectAllowsRequiresReason(t *testing.T) {
	fset, files := parseOne(t, `package p

//unifvet:allow wallclock
var a int

//unifvet:allow
var b int
`)
	allows, bad := CollectAllows(fset, files)
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed-directive diagnostics, got %v", bad)
	}
	if !strings.Contains(bad[0].Message, "needs a trailing reason") {
		t.Errorf("missing-reason message: %q", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, "missing analyzer name") {
		t.Errorf("missing-name message: %q", bad[1].Message)
	}
	if allows.Allowed("wallclock", "dir.go", 3) || allows.Allowed("wallclock", "dir.go", 4) {
		t.Errorf("malformed directive must not suppress anything")
	}
}

func TestCollectAllowsMultiAnalyzer(t *testing.T) {
	fset, files := parseOne(t, `package p

//unifvet:allow lockio,framecap shutdown path flushes one pre-encoded frame
var a int
`)
	allows, bad := CollectAllows(fset, files)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive diagnostics: %v", bad)
	}
	for _, name := range []string{"lockio", "framecap"} {
		if !allows.Allowed(name, "dir.go", 4) {
			t.Errorf("multi-analyzer directive should suppress %s on line 4", name)
		}
	}
	if allows.Allowed("qlifecycle", "dir.go", 4) {
		t.Errorf("multi-analyzer directive must not suppress unlisted analyzers")
	}
}

func TestCollectAllowsMultiAnalyzerNeedsReason(t *testing.T) {
	// The reasonless multi-analyzer form is itself a finding, exactly like
	// the single-analyzer form.
	fset, files := parseOne(t, `package p

//unifvet:allow lockio,framecap
var a int
`)
	allows, bad := CollectAllows(fset, files)
	if len(bad) != 1 {
		t.Fatalf("want 1 malformed-directive diagnostic, got %v", bad)
	}
	if !strings.Contains(bad[0].Message, "needs a trailing reason") {
		t.Errorf("missing-reason message: %q", bad[0].Message)
	}
	if allows.Allowed("lockio", "dir.go", 4) || allows.Allowed("framecap", "dir.go", 4) {
		t.Errorf("reasonless multi-analyzer directive must not suppress anything")
	}
}

func TestCollectAllowsMalformedList(t *testing.T) {
	fset, files := parseOne(t, `package p

//unifvet:allow lockio,,framecap doubled comma is malformed
var a int

//unifvet:allow ,lockio leading comma is malformed
var b int
`)
	allows, bad := CollectAllows(fset, files)
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed-directive diagnostics, got %v", bad)
	}
	for _, d := range bad {
		if !strings.Contains(d.Message, "malformed //unifvet:allow analyzer list") {
			t.Errorf("malformed-list message: %q", d.Message)
		}
	}
	if allows.Allowed("lockio", "dir.go", 4) || allows.Allowed("framecap", "dir.go", 4) || allows.Allowed("lockio", "dir.go", 7) {
		t.Errorf("malformed list must not suppress anything")
	}
}

func TestAllowsFilter(t *testing.T) {
	fset, files := parseOne(t, `package p

var a int //unifvet:allow detrand fixture reason
`)
	allows, bad := CollectAllows(fset, files)
	if len(bad) != 0 {
		t.Fatalf("unexpected diagnostics: %v", bad)
	}
	diags := []Diagnostic{
		{Analyzer: "detrand", File: "dir.go", Line: 3, Message: "suppressed"},
		{Analyzer: "wallclock", File: "dir.go", Line: 3, Message: "kept (wrong analyzer)"},
		{Analyzer: "detrand", File: "dir.go", Line: 9, Message: "kept (wrong line)"},
	}
	kept := allows.Filter(diags)
	if len(kept) != 2 {
		t.Fatalf("want 2 kept, got %v", kept)
	}
	for _, d := range kept {
		if d.Message == "suppressed" {
			t.Errorf("suppressed diagnostic survived the filter")
		}
	}
}

func TestHasPathSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"github.com/unifdist/unifdist/internal/rng", "rng", true},
		{"rng", "rng", true},
		{"detrand/exempt/rng", "rng", true},
		{"github.com/unifdist/unifdist/internal/zeroround", "rng", false},
		{"wrng/x", "rng", false},
	}
	for _, c := range cases {
		if got := HasPathSegment(c.path, c.seg); got != c.want {
			t.Errorf("HasPathSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}

func TestSortDiagnosticsDeterministic(t *testing.T) {
	diags := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "maporder"},
		{File: "a.go", Line: 9, Col: 2, Analyzer: "obsnil"},
		{File: "a.go", Line: 9, Col: 2, Analyzer: "detrand"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "wallclock"},
	}
	SortDiagnostics(diags)
	order := make([]string, len(diags))
	for i, d := range diags {
		order[i] = d.File + "/" + d.Analyzer
	}
	want := []string{"a.go/wallclock", "a.go/detrand", "a.go/obsnil", "b.go/maporder"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
