package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestLockIO(t *testing.T) {
	analysistest.Run(t, analysis.LockIO,
		"lockio/cluster/bad",
		"lockio/cluster/allowed",
		"lockio/cluster/good",
	)
}
