package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fixme.go")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestApplyFixesRewrites(t *testing.T) {
	path := writeFixFile(t, "abc rec.Journal xyz rec.Registry end")
	diags := []Diagnostic{
		{Analyzer: "obsnil", File: path, Line: 1, Col: 5, Message: "journal",
			Fix: &SuggestedFix{Message: "use Jour()", Edits: []TextEdit{{File: path, Start: 8, End: 15, New: "Jour()"}}}},
		{Analyzer: "obsnil", File: path, Line: 1, Col: 21, Message: "registry",
			Fix: &SuggestedFix{Message: "use Reg()", Edits: []TextEdit{{File: path, Start: 24, End: 32, New: "Reg()"}}}},
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed != 2 || len(res.Remaining) != 0 {
		t.Fatalf("Fixed=%d Remaining=%v, want 2 fixed, none remaining", res.Fixed, res.Remaining)
	}
	got, _ := os.ReadFile(path)
	want := "abc rec.Jour() xyz rec.Reg() end"
	if string(got) != want {
		t.Fatalf("rewritten = %q, want %q", got, want)
	}
}

func TestApplyFixesKeepsUnfixable(t *testing.T) {
	path := writeFixFile(t, "unchanged")
	diags := []Diagnostic{
		{Analyzer: "lockio", File: path, Line: 1, Message: "no mechanical fix"},
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed != 0 || len(res.Remaining) != 1 || len(res.Files) != 0 {
		t.Fatalf("res = %+v, want nothing fixed and one remaining", res)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "unchanged" {
		t.Fatalf("file rewritten without a fix: %q", got)
	}
}

func TestApplyFixesOverlapKeepsLoser(t *testing.T) {
	path := writeFixFile(t, "0123456789")
	diags := []Diagnostic{
		{Analyzer: "a", File: path, Line: 1, Col: 1, Message: "wide",
			Fix: &SuggestedFix{Edits: []TextEdit{{File: path, Start: 0, End: 6, New: "W"}}}},
		{Analyzer: "b", File: path, Line: 1, Col: 5, Message: "late",
			Fix: &SuggestedFix{Edits: []TextEdit{{File: path, Start: 4, End: 8, New: "L"}}}},
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	// The later-starting edit applies first (descending order); the earlier
	// one overlaps it and is kept as remaining.
	if res.Fixed != 1 || len(res.Remaining) != 1 {
		t.Fatalf("res = %+v, want one fixed, one remaining", res)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "0123L89" {
		t.Fatalf("rewritten = %q, want %q", got, "0123L89")
	}
}

func TestApplyFixesRejectsOutOfRange(t *testing.T) {
	path := writeFixFile(t, "tiny")
	diags := []Diagnostic{
		{Analyzer: "a", File: path, Message: "bad edit",
			Fix: &SuggestedFix{Edits: []TextEdit{{File: path, Start: 2, End: 99, New: "x"}}}},
	}
	if _, err := ApplyFixes(diags); err == nil {
		t.Fatal("want an out-of-range error")
	}
}
