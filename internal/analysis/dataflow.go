package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the lightweight intra-procedural dataflow engine shared by
// the cluster-runtime analyzers (framecap, votepure): value-origin tracking
// through assignments within one function, and a package-local function
// index + call-graph resolution so purity facts can propagate through
// same-package calls. It deliberately stops at package boundaries — imports
// are compiled export data with no syntax — which matches the analyzers'
// contracts: cross-package callees are judged by name and import path, not
// re-analyzed.

// funcIndex maps the package's function and method objects to their
// declarations, letting analyzers follow same-package calls into bodies.
type funcIndex map[types.Object]*ast.FuncDecl

// indexFuncs builds the package-local function index over non-test files.
func indexFuncs(pass *Pass) funcIndex {
	idx := funcIndex{}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				idx[obj] = fd
			}
		}
	}
	return idx
}

// calleeObject resolves call's callee to its function or method object:
// pkg.F(...), f(...), and recv.M(...) all resolve; dynamic calls (function
// values, interface methods without a concrete callee) return nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// objPkgSegment reports whether obj is declared in a package whose import
// path contains seg as a path segment (fixture-friendly, like
// HasPathSegment).
func objPkgSegment(obj types.Object, seg string) bool {
	return obj != nil && obj.Pkg() != nil && HasPathSegment(obj.Pkg().Path(), seg)
}

// origins resolves, within one function body, the syntactic origins of
// local values: for each local variable, the right-hand expressions it was
// assigned. An analyzer asks where a sink argument came from and gets back
// the producing expressions (calls, literals, parameters), unwrapped
// through chains of local assignments.
type origins struct {
	info    *types.Info
	assigns map[types.Object][]ast.Expr
}

// trackOrigins scans body (skipping nested function literals, which are
// their own scopes) and records every assignment to a local variable.
func trackOrigins(info *types.Info, body *ast.BlockStmt) *origins {
	o := &origins{info: info, assigns: map[types.Object][]ast.Expr{}}
	if body == nil {
		return o
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch {
		case len(as.Lhs) == len(as.Rhs):
			for i, lhs := range as.Lhs {
				o.record(lhs, as.Rhs[i])
			}
		case len(as.Rhs) == 1:
			// Multi-value assignment (buf, err := f(...)): every lhs
			// originates from the one call.
			for _, lhs := range as.Lhs {
				o.record(lhs, as.Rhs[0])
			}
		}
		return true
	})
	return o
}

// record attributes rhs as an origin of the variable behind lhs.
func (o *origins) record(lhs ast.Expr, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := o.info.Defs[id]
	if obj == nil {
		obj = o.info.Uses[id]
	}
	if obj == nil {
		return
	}
	o.assigns[obj] = append(o.assigns[obj], rhs)
}

// resolve unwraps e to its producing expressions: identifiers follow their
// recorded assignments (transitively, cycle-safe); everything else is its
// own origin. A variable with no recorded assignment (parameter, field,
// captured value, range variable) resolves to nil — origin unknown — and
// the caller decides how conservative to be.
func (o *origins) resolve(e ast.Expr) []ast.Expr {
	return o.resolveSeen(e, map[types.Object]bool{})
}

func (o *origins) resolveSeen(e ast.Expr, seen map[types.Object]bool) []ast.Expr {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return []ast.Expr{e}
	}
	obj := o.info.Uses[id]
	if obj == nil {
		obj = o.info.Defs[id]
	}
	if obj == nil || seen[obj] {
		return nil
	}
	seen[obj] = true
	rhs := o.assigns[obj]
	if len(rhs) == 0 {
		return nil // parameter, field, or otherwise untracked
	}
	var out []ast.Expr
	for _, r := range rhs {
		out = append(out, o.resolveSeen(r, seen)...)
	}
	return out
}

// byteSliceType reports whether t is []byte (or a named type whose
// underlying type is []byte).
func byteSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
