// Package obs is a minimal stand-in for internal/obs in obsnil fixtures:
// the analyzer recognizes the Recorder type by name and the "obs" path
// segment.
package obs

// Registry is a stub metrics registry.
type Registry struct{ n int }

// Snapshot returns a stub snapshot value (0 on nil).
func (r *Registry) Snapshot() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Journal is a stub event journal.
type Journal struct{ events int }

// Write records one event (no-op on nil).
func (j *Journal) Write(event any) {
	if j == nil {
		return
	}
	j.events++
}

// Recorder bundles the stub sinks; fields may be nil.
type Recorder struct {
	Registry *Registry
	Journal  *Journal
}

// Reg is the nil-safe registry accessor.
func (r *Recorder) Reg() *Registry {
	if r == nil {
		return nil
	}
	return r.Registry
}

// Jour is the nil-safe journal accessor.
func (r *Recorder) Jour() *Journal {
	if r == nil {
		return nil
	}
	return r.Journal
}

// Log writes one event through the nil-safe path.
func (r *Recorder) Log(event any) {
	if r == nil {
		return
	}
	r.Journal.Write(event)
}
