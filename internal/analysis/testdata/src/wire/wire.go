// Package wire is a minimal stand-in for internal/wire in framecap
// fixtures: the analyzer recognizes frame constructors by the "wire" path
// segment plus an Append/Encode name prefix, and the Reader type by name.
package wire

// Append appends one cap-checked frame to buf.
func Append(buf []byte, payload byte) []byte {
	return append(buf, 1, payload)
}

// AppendTraced appends one cap-checked, trace-stamped frame to buf.
func AppendTraced(buf []byte, payload byte, trace uint64) []byte {
	return append(Append(buf, payload), byte(trace))
}

// AppendSession appends one cap-checked, session-stamped frame to buf.
func AppendSession(buf []byte, payload byte, session uint64) []byte {
	return append(Append(buf, payload), byte(session))
}

// AppendPartial appends one cap-checked partial-verdict frame to buf.
func AppendPartial(buf []byte, payload byte) []byte {
	return append(buf, 7, payload)
}

// EncodeBatch encodes votes as one cap-checked batch frame.
func EncodeBatch(votes []byte) []byte {
	return append([]byte{2, byte(len(votes))}, votes...)
}

// BatchEncoder accumulates votes into cap-checked batch frames.
type BatchEncoder struct{ buf []byte }

// Append adds one vote and returns the running frame bytes.
func (e *BatchEncoder) Append(vote byte) []byte {
	e.buf = append(e.buf, vote)
	return EncodeBatch(e.buf)
}

// Reader decodes frames from a stream (stub).
type Reader struct{ n int }

// ReadFrame consumes one frame (stub).
func (r *Reader) ReadFrame() ([]byte, error) {
	r.n++
	return nil, nil
}
