// Package rng is a minimal stand-in for internal/rng in sharedrng
// fixtures: the analyzer recognizes the RNG type by name and the "rng"
// path segment, so this stub exercises the same matching as the real tree.
package rng

// RNG is a stub deterministic generator.
type RNG struct{ s uint64 }

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{s: seed} }

// At returns the index-th child generator of base.
func At(base, index uint64) *RNG { return &RNG{s: base ^ (index + 1)} }

// Uint64 returns the next value.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return r.s
}

// SeedAt reseeds the generator in place to the index-th child stream of
// base, the allocation-free variant of At used by chunked trial pools.
func (r *RNG) SeedAt(base, index uint64) { r.s = base ^ (index + 1) }
