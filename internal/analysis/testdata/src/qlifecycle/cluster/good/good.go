// Package good holds qlifecycle-clean goroutines, centered on the
// sendQueue single-writer idiom: the writer drains a channel with
// for-range, so closing the channel is the shutdown path.
package good

import "io"

type sendQueue struct {
	items chan []byte
	done  chan struct{}
}

// start launches the single writer goroutine; close(q.items) ends the
// range loop and done signals the drain is complete.
func (q *sendQueue) start(w io.Writer) {
	go func() {
		defer close(q.done)
		for it := range q.items {
			w.Write(it) //unifvet:allow framecap producers pre-encode via wire.Append before enqueue
		}
	}()
}

// pump loops until the stop channel closes — the select clause returns.
func pump(stop chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// bounded loops with a condition, so it terminates on its own.
func bounded(ch chan int) {
	go func() {
		for i := 0; i < 8; i++ {
			ch <- i
		}
	}()
}

// breakOut escapes its loop with an unlabeled break at loop level.
func breakOut(ch chan int) {
	go func() {
		for {
			if _, ok := <-ch; !ok {
				break
			}
		}
	}()
}

// oneShot has no loop at all; it runs to completion.
func oneShot(ch chan int) {
	go func() { ch <- 1 }()
}

// dynamic spawns a caller-supplied function the analyzer cannot see into.
func dynamic(fn func()) {
	go fn()
}
