// Package reaper mirrors the session service's lifecycle goroutines:
// the stalled-session reaper (ticker loop with a stop clause), the
// per-session waiter (single select, no loop), and the leak qlifecycle
// must catch — a sweep loop with no reachable shutdown path.
package reaper

import "time"

type service struct {
	stop  chan struct{}
	stale []int
}

func (s *service) sweep() { s.stale = s.stale[:0] }

// reap is the canonical reaper shape: the select's stop clause returns,
// so the ticker loop has a reachable exit.
func (s *service) reap(interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sweep()
			}
		}
	}()
}

// wait is the per-session waiter: one select over the session's
// terminal events, no loop at all.
func (s *service) wait(decided, closed chan struct{}, finish func()) {
	go func() {
		select {
		case <-decided:
		case <-closed:
		case <-s.stop:
		}
		finish()
	}()
}

// leakyReap sweeps on every tick with no stop clause anywhere — the
// goroutine outlives every session and the service itself.
func leakyReap(tick <-chan time.Time, sweep func()) {
	go func() { // want "goroutine loops forever with no shutdown path"
		for {
			<-tick
			sweep()
		}
	}()
}
