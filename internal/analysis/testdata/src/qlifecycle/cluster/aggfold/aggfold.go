// Package aggfold exercises qlifecycle on the aggregator's fold goroutine:
// a cond.Wait loop folding completed trials into partial sums. The drain
// phase sets stop under the lock and broadcasts, so the loop needs a
// reachable `if stop { return }` after every wakeup.
package aggfold

import "sync"

type foldState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []int
	stop    bool
}

// startFold is the clean shape: each wakeup snapshots pending under the
// lock and the stop flag gives the condition-less loop its exit.
func startFold(s *foldState) {
	go func() {
		for {
			s.mu.Lock()
			for len(s.pending) == 0 && !s.stop {
				s.cond.Wait()
			}
			batch := s.pending
			s.pending = nil
			stop := s.stop
			s.mu.Unlock()
			_ = batch
			if stop {
				return
			}
		}
	}()
}

// startFoldLeaky never checks a stop flag: close/drain can broadcast all
// it wants, the goroutine re-enters cond.Wait and is never joined.
func startFoldLeaky(s *foldState) {
	go func() { // want "goroutine loops forever with no shutdown path"
		for {
			s.mu.Lock()
			for len(s.pending) == 0 {
				s.cond.Wait()
			}
			s.pending = nil
			s.mu.Unlock()
		}
	}()
}
