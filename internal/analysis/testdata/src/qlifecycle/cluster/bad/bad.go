// Package bad exercises qlifecycle's violation cases: goroutines whose
// loops have no reachable shutdown path.
package bad

func drainForever(ch chan int) {
	go func() { // want "goroutine loops forever with no shutdown path"
		for {
			<-ch
		}
	}()
}

func spinWorker(ch chan int) {
	var total int
	go func() { // want "goroutine loops forever with no shutdown path"
		for {
			select {
			case v := <-ch:
				total += v
			}
		}
	}()
	_ = total
}

func pump(ch chan int) {
	for {
		ch <- 1
	}
}

func spawnNamed(ch chan int) {
	go pump(ch) // want "pump loops forever with no shutdown path"
}
