// Package allowed verifies //unifvet:allow suppresses a qlifecycle finding.
package allowed

func heartbeat(ch chan int) {
	//unifvet:allow qlifecycle process-lifetime daemon, reaped at exit
	go func() {
		for {
			<-ch
		}
	}()
}
