// Package good derives per-worker generators inside each goroutine — the
// pattern that keeps results identical at any worker count.
package good

import (
	"sync/atomic"

	"rng"
)

// Derive gives each worker its own indexed child generator.
func Derive(base uint64) {
	done := make(chan struct{}, 4)
	for w := uint64(0); w < 4; w++ {
		w := w
		go func() {
			g := rng.At(base, w)
			_ = g.Uint64()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

// Sequential use of a generator never crosses a goroutine.
func Sequential(base uint64) uint64 {
	g := rng.New(base)
	return g.Uint64()
}

// Suppressed demonstrates a justified handoff: ownership transfers and the
// parent never touches g again.
func Suppressed() {
	g := rng.New(3)
	done := make(chan struct{})
	go func() {
		_ = g.Uint64() //unifvet:allow sharedrng fixture goroutine is the sole user after handoff
		close(done)
	}()
	<-done
}

// ChunkedPool is the work-stealing trial-pool shape used by the parallel
// estimators: workers claim chunks of trial indices from a shared atomic
// counter and reseed a goroutine-local generator by index. No *RNG value
// crosses a goroutine boundary, so the analyzer must stay silent.
func ChunkedPool(base uint64, trials int) uint64 {
	var next int64
	results := make(chan uint64, 4)
	for w := 0; w < 4; w++ {
		go func() {
			gen := rng.New(0)
			var local uint64
			for {
				lo := int(atomic.AddInt64(&next, 8)) - 8
				if lo >= trials {
					break
				}
				hi := lo + 8
				if hi > trials {
					hi = trials
				}
				for i := lo; i < hi; i++ {
					gen.SeedAt(base, uint64(i))
					local += gen.Uint64()
				}
			}
			results <- local
		}()
	}
	var total uint64
	for i := 0; i < 4; i++ {
		total += <-results
	}
	return total
}
