// Package good derives per-worker generators inside each goroutine — the
// pattern that keeps results identical at any worker count.
package good

import "rng"

// Derive gives each worker its own indexed child generator.
func Derive(base uint64) {
	done := make(chan struct{}, 4)
	for w := uint64(0); w < 4; w++ {
		w := w
		go func() {
			g := rng.At(base, w)
			_ = g.Uint64()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

// Sequential use of a generator never crosses a goroutine.
func Sequential(base uint64) uint64 {
	g := rng.New(base)
	return g.Uint64()
}

// Suppressed demonstrates a justified handoff: ownership transfers and the
// parent never touches g again.
func Suppressed() {
	g := rng.New(3)
	done := make(chan struct{})
	go func() {
		_ = g.Uint64() //unifvet:allow sharedrng fixture goroutine is the sole user after handoff
		close(done)
	}()
	<-done
}
