// Package sendqueue is the cluster bounded-send-queue idiom: a single
// writer goroutine drains a channel of pre-encoded frames. All
// randomness — fault draws, batch contents — is consumed by the producer
// BEFORE a frame enters the queue, so the writer goroutine never touches
// a generator and the realized fault pattern cannot depend on writer
// scheduling.
package sendqueue

import "rng"

// Queue drains pre-encoded frames through one writer goroutine — the
// analyzer must stay silent: only []byte crosses the boundary.
func Queue(seed uint64, frames int) {
	g := rng.At(seed, 0)
	items := make(chan []byte, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range items {
		}
	}()
	for i := 0; i < frames; i++ {
		if g.Uint64()&1 == 0 { // fault draw happens producer-side
			continue
		}
		items <- []byte{byte(i)}
	}
	close(items)
	<-done
}

// DrainWithRNG is the corresponding mistake: deciding faults inside the
// writer goroutine with a captured generator, so the draw order — and
// therefore which frames are dropped — depends on queue scheduling.
func DrainWithRNG(seed uint64, frames int) {
	g := rng.At(seed, 0)
	items := make(chan []byte, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range items {
			_ = g.Uint64() // want "rng.RNG .g. captured by goroutine closure"
		}
	}()
	for i := 0; i < frames; i++ {
		items <- []byte{byte(i)}
	}
	close(items)
	<-done
}
