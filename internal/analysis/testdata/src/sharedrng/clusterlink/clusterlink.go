// Package clusterlink is the cluster fault-link idiom: every node client
// goroutine derives its link's private fault generator inside itself via
// rng.At(seed, linkID), so no *rng.RNG value ever crosses a goroutine
// boundary and the fault pattern stays a pure function of (seed, node,
// attempt) at any scheduling.
package clusterlink

import "rng"

// linkID names the fault stream of one node's attempt-th connection.
func linkID(node, attempt int) uint64 {
	return uint64(node)<<16 | uint64(attempt&0xffff)
}

// Links spawns one goroutine per node, each deriving its own link
// generator — the analyzer must stay silent.
func Links(seed uint64, k int) {
	done := make(chan uint64, k)
	for node := 0; node < k; node++ {
		node := node
		go func() {
			g := rng.At(seed, linkID(node, 0))
			done <- g.Uint64()
		}()
	}
	for i := 0; i < k; i++ {
		<-done
	}
}

// SharedLink is the corresponding mistake: one fault generator built
// outside the handlers and captured by all of them, making the realized
// fault pattern depend on goroutine interleaving.
func SharedLink(seed uint64, k int) {
	g := rng.At(seed, 0)
	done := make(chan uint64, k)
	for node := 0; node < k; node++ {
		go func() {
			done <- g.Uint64() // want "rng.RNG .g. captured by goroutine closure"
		}()
	}
	for i := 0; i < k; i++ {
		<-done
	}
}
