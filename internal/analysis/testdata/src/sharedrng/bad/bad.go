// Package bad shares rng generators across goroutine boundaries.
package bad

import "rng"

// Capture leaks a generator into a goroutine closure.
func Capture() {
	g := rng.New(1)
	done := make(chan struct{})
	go func() {
		_ = g.Uint64() // want "rng.RNG .g. captured by goroutine closure"
		close(done)
	}()
	<-done
}

func worker(g *rng.RNG, done chan<- struct{}) {
	_ = g.Uint64()
	close(done)
}

// Pass hands a generator to a spawned function.
func Pass() {
	g := rng.New(2)
	done := make(chan struct{})
	go worker(g, done) // want "rng.RNG passed into goroutine"
	<-done
}
