// Package allowed verifies //unifvet:allow suppresses a votepure finding.
package allowed

import "time"

type Probe struct{}

func (Probe) VoteAt(base, trial, node uint64) bool {
	//unifvet:allow votepure diagnostic-only probe, never used in differential runs
	return time.Now().UnixNano()%2 == 0
}
