// Package good holds votepure-clean contract implementations: votes are
// pure functions of (base, trial, node) plus receiver configuration fixed
// before any trial runs.
package good

import "encoding/binary"

const votePeriod = 7

type Tester struct {
	seed uint64
	eps  float64
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (t Tester) VoteAt(base, trial, node uint64) bool {
	h := mix(t.seed ^ mix(base+trial*votePeriod) ^ mix(node))
	return h&1 == 0
}

func (t Tester) RunAt(trial uint64) bool {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], t.seed+trial)
	return buf[7]&1 == 0
}

func (t Tester) VoteStream(base uint64) []bool {
	out := make([]bool, votePeriod)
	for i := range out {
		out[i] = t.VoteAt(base, uint64(i), 0)
	}
	return out
}
