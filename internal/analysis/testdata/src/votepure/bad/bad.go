// Package bad exercises votepure's violation cases: wall-clock reads,
// global math/rand draws, mutable package state, and impurity reached
// through a same-package helper.
package bad

import (
	"math/rand"
	"time"
)

var drift int

type Tester struct{ bias uint64 }

func (t Tester) VoteAt(base, trial, node uint64) bool {
	now := time.Now() // want "VoteAt: reads the wall clock"
	_ = now
	drift++                  // want "VoteAt: touches mutable package state \(drift\)"
	return rand.Intn(2) == 0 // want "VoteAt: draws from the shared math/rand stream"
}

func jitter() int {
	return rand.Intn(3)
}

func (t Tester) RunAt(trial uint64) bool {
	return jitter() > 0 // want "RunAt calls jitter, which draws from the shared math/rand stream"
}

func deepHelper() time.Time {
	return time.Now()
}

func midHelper() int64 {
	return deepHelper().Unix()
}

func (t Tester) VoteStream(base uint64) []bool {
	n := midHelper() // want "VoteStream calls midHelper, which reads the wall clock \(in deepHelper\)"
	return []bool{n%2 == 0}
}
