// Package good holds lockio-clean code, centered on the recordLocked
// pattern the real referee uses: all blocking I/O (reads, decodes, writes)
// happens outside the critical section; the mutex guards pure bookkeeping.
package good

import (
	"net"
	"sync"
)

type referee struct {
	mu     sync.Mutex
	ch     chan int
	closed bool
	total  int
}

// record is the recordLocked shape: read and decode outside the lock,
// mutate counters inside, respond after releasing.
func (r *referee) record(c net.Conn, buf []byte) error {
	n, err := c.Read(buf)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.total += n
	r.mu.Unlock()
	_, err = c.Write(buf[:n])
	return err
}

// tryNotify sends while holding the lock — legal because the select has a
// default clause and cannot block.
func (r *referee) tryNotify(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- v:
	default:
	}
}

// earlyRelease writes on a branch that has already unlocked; the other
// branch keeps the lock but does no I/O.
func (r *referee) earlyRelease(c net.Conn, b []byte) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Write(b)
		return
	}
	r.total++
	r.mu.Unlock()
}

// deferredWrite builds the response under the lock and performs the write
// in a function literal that runs after the critical section.
func (r *referee) deferredWrite(c net.Conn) func() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := []byte{byte(r.total)}
	return func() error {
		_, err := c.Write(out)
		return err
	}
}
