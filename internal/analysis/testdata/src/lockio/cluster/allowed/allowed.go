// Package allowed verifies //unifvet:allow suppresses a lockio finding.
package allowed

import (
	"net"
	"sync"
)

type gate struct{ mu sync.Mutex }

func (g *gate) flush(c net.Conn, b []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	//unifvet:allow lockio single-connection shutdown path, no concurrent holders
	c.Write(b)
}
