// Package bad exercises lockio's violation cases: blocking I/O of every
// flavor while a mutex is held.
package bad

import (
	"net"
	"sync"
	"time"
)

type referee struct {
	mu    sync.Mutex
	ch    chan int
	total int
}

func (r *referee) connWriteHeld(c net.Conn, b []byte) {
	r.mu.Lock()
	c.Write(b) // want "conn Write while holding r.mu"
	r.mu.Unlock()
}

func (r *referee) connReadHeld(c net.Conn, b []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Read(b) // want "conn Read while holding r.mu"
}

func (r *referee) sendHeld(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ch <- v // want "channel send while holding r.mu"
}

func (r *referee) sleepHeld() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding r.mu"
	r.mu.Unlock()
}

func (r *referee) selectSendHeld(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- v: // want "channel send in a select without default while holding r.mu"
	}
}

func (r *referee) heldInBranch(c net.Conn, b []byte, flush bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if flush {
		c.Write(b) // want "conn Write while holding r.mu"
	}
}
