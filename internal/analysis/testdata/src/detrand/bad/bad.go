// Package bad draws from the global math/rand generators, which detrand
// forbids outside rng-segment packages.
package bad

import (
	"math/rand" // want "import of math/rand: derive randomness from internal/rng"

	randv2 "math/rand/v2" // want "import of math/rand/v2: derive randomness from internal/rng"
)

// Draw mixes both generations of the stdlib global generator.
func Draw() int {
	return rand.Intn(10) + int(randv2.Uint64()%3)
}
