// Package allowed exercises detrand suppression: the directive with a
// reason keeps the import quiet.
package allowed

import "math/rand" //unifvet:allow detrand fixture demonstrates a justified suppression

// Draw uses the suppressed import.
func Draw() int { return rand.Intn(3) }
