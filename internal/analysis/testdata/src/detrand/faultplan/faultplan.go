// Package faultplan is the cluster fault-injection idiom: transport
// misbehavior is drawn from seeded internal/rng streams — one Float64-like
// draw per vote against cumulative rate thresholds — never from math/rand,
// so a fault pattern is reproducible from its seed alone. The analyzer
// must stay silent on this package.
package faultplan

import "rng"

// Plan holds seeded fault rates in cumulative-threshold form.
type Plan struct {
	Seed             uint64
	Disconnect, Drop float64
}

// Outcome classifies one vote frame's fate on a link: 0 deliver,
// 1 drop, 2 disconnect. The draw comes from the link's private seeded
// stream, so outcomes are a pure function of (Seed, link, frame).
func (p Plan) Outcome(link, frame uint64) int {
	g := rng.At(p.Seed, link)
	for i := uint64(0); i < frame; i++ {
		g.Uint64()
	}
	x := float64(g.Uint64()%1000) / 1000
	switch {
	case x < p.Disconnect:
		return 2
	case x < p.Disconnect+p.Drop:
		return 1
	default:
		return 0
	}
}
