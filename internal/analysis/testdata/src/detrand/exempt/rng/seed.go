// Package rng sits under an "rng" path segment, so the math/rand import
// ban is lifted — but seeding any source from the wall clock stays flagged
// even here.
package rng

import (
	"math/rand"
	"time"
)

// ClockSeeded is unreproducible: the stream depends on when it was made.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "wall-clock-seeded rand source"
}

// FixedSeeded is fine: the seed is declared.
func FixedSeeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// Suppressed demonstrates a justified exemption.
func Suppressed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) //unifvet:allow detrand fixture demonstrates a justified suppression
}
