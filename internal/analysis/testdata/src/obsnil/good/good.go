// Package good uses the nil-safe accessors; construction writes stay
// allowed.
package good

import "obs"

// Build constructs a recorder: composite literals and field assignments
// are not reads.
func Build() *obs.Recorder {
	rec := &obs.Recorder{Registry: &obs.Registry{}}
	rec.Journal = &obs.Journal{}
	if rec.Reg() == nil {
		rec.Registry = &obs.Registry{}
	}
	return rec
}

// Use goes through Reg/Jour/Log.
func Use(rec *obs.Recorder) int {
	rec.Log("event")
	if j := rec.Jour(); j != nil {
		j.Write("event")
	}
	return rec.Reg().Snapshot()
}

// Suppressed demonstrates a justified direct read.
func Suppressed(rec *obs.Recorder) int {
	return rec.Registry.Snapshot() //unifvet:allow obsnil fixture caller guarantees a live recorder
}
