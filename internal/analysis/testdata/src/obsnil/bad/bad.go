// Package bad bypasses the nil-safe recorder accessors; every read here
// panics when telemetry is disabled.
package bad

import "obs"

// Snapshot calls through the Registry field directly.
func Snapshot(rec *obs.Recorder) int {
	return rec.Registry.Snapshot() // want "direct read of obs.Recorder.Registry"
}

// Journal calls through the Journal field directly.
func Journal(rec *obs.Recorder) {
	rec.Journal.Write("event") // want "direct read of obs.Recorder.Journal"
}

// Leak returns the raw field.
func Leak(rec *obs.Recorder) *obs.Journal {
	return rec.Journal // want "direct read of obs.Recorder.Journal"
}
