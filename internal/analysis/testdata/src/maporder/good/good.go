// Package good shows the sanctioned patterns around map iteration.
package good

import "sort"

// SortedKeys is the canonical idiom: collect, sort, then use.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert writes into another map — order-independent.
func Invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// PerKey appends only to a loop-local accumulator.
func PerKey(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		local := []int{}
		for _, v := range vs {
			local = append(local, v*2)
		}
		total += len(local)
	}
	return total
}

// SliceSorted sorts via sort.Slice after the loop.
func SliceSorted(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}
