// Package bad leaks map iteration order into ordered output.
package bad

import "fmt"

// Keys appends in map order and never sorts.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to .out. inside range over map"
	}
	return out
}

// Emit prints rows in map order.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "Println call inside range over map"
	}
}

// Fields leaks through a struct-field accumulator declared outside the
// loop.
type Fields struct{ Rows []string }

// Collect appends to an outer struct field.
func (f *Fields) Collect(m map[string]int) {
	for k := range m {
		f.Rows = append(f.Rows, k) // want "append to .f. inside range over map"
	}
}
