// Package allowed exercises maporder suppression.
package allowed

// Unordered is consumed commutatively, so the order leak is harmless; the
// directive records that judgment.
func Unordered(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) //unifvet:allow maporder fixture consumer folds with a commutative sum
	}
	return out
}
