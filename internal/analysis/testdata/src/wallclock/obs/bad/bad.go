// Package bad sits under the restricted "obs" segment but NOT under the
// obs/trace allowlist, so bare clock reads are violations: telemetry
// collection outside the tracer must justify every wall-clock site with a
// directive.
package bad

import "time"

// Stamp reads the clock without a directive — the violation case.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in trial-path package"
}
