// Package trace sits under the allowlisted obs/trace subpath: span
// timestamps are wall-clock observations by design, so the analyzer must
// stay silent here without any //unifvet:allow directives.
package trace

import "time"

// Start stamps a span open — a legitimate clock read.
func Start() time.Time {
	return time.Now()
}

// End measures a span's duration — equally legitimate.
func End(start time.Time) time.Duration {
	return time.Since(start)
}
