// Package cluster sits under a "cluster" path segment, so the wall-clock
// ban applies: the networked runtime's verdicts must be a pure function of
// the base seed. Deadlines that merely bound I/O are the sanctioned
// exemption — each carries an //unifvet:allow wallclock directive naming
// why the clock read cannot reach a verdict.
package cluster

import (
	"net"
	"time"
)

// Deadline is the transport-deadline safety-net idiom used by the referee
// and node clients: the clock bounds how long a read may block, and which
// votes arrive is all that feeds the verdict.
func Deadline(conn net.Conn, d time.Duration) {
	conn.SetReadDeadline(time.Now().Add(d)) //unifvet:allow wallclock I/O safety bound; verdicts depend only on which votes arrive
}

// Stamped decides from the clock — the failure mode the analyzer exists
// to catch in this package.
func Stamped() bool {
	return time.Now().UnixNano()%2 == 0 // want "time.Now in trial-path package"
}

// Elapsed measures a session with time.Since, which is equally banned
// without a directive.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in trial-path package"
}
