// Package tester sits under a "tester" path segment, which wallclock
// treats as a trial-path package: no wall-clock reads without a directive.
package tester

import "time"

// Trial reads the clock on the trial path.
func Trial() int64 {
	now := time.Now() // want "time.Now in trial-path package"
	return now.UnixNano()
}

// Elapsed measures with time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in trial-path package"
}

// Timed demonstrates the sanctioned observability exemption.
func Timed() time.Time {
	return time.Now() //unifvet:allow wallclock fixture demonstrates the observability-timing exemption
}
