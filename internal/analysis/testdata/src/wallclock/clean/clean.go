// Package clean has no trial-path segment in its import path, so
// wall-clock reads are unrestricted here.
package clean

import "time"

// Stamp may read the clock freely outside trial-path packages.
func Stamp() string {
	return time.Now().Format(time.RFC3339)
}
