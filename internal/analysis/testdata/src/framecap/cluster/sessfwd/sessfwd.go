// Package sessfwd mirrors the session service's frame forward paths:
// the control-connection report write and the verdict broadcast must
// originate from wire constructors, and a queued raw body — decoded,
// folded, but never re-framed — must not reach a connection verbatim.
package sessfwd

import (
	"net"

	"wire"
)

// reportForward is the SessionReport delivery: framed by a session-aware
// wire constructor, then written to the control connection.
func reportForward(ctrl net.Conn, payload byte, session uint64) {
	buf := wire.AppendSession(nil, payload, session)
	ctrl.Write(buf)
}

// broadcast is the verdict fan-out at session finish: one constructor
// call, many connection writes.
func broadcast(conns []net.Conn, verdict byte) {
	frame := wire.Append(nil, verdict)
	for _, c := range conns {
		c.Write(frame)
	}
}

// forwardRaw relays a queued frame body without re-framing it; its cap
// was checked by whoever read it, not by this write.
func forwardRaw(c net.Conn, body []byte) {
	c.Write(body) // want "byte slice of unknown origin reaches the connection write"
}

// restamp splices a session suffix onto a raw body by hand instead of
// going through the session-aware constructor.
func restamp(c net.Conn, body []byte, sess byte) {
	buf := append(body, sess) // want "hand-rolled frame bytes reach the connection write"
	c.Write(buf)
}
