// Package bad exercises framecap's violation cases: hand-rolled frame
// bytes and untraceable byte slices reaching connection writes and the
// send-queue surface.
package bad

import "net"

type sendQueue struct{ pending [][]byte }

func (q *sendQueue) send(frame []byte) {
	q.pending = append(q.pending, frame)
}

func handRolled(c net.Conn) {
	buf := []byte{0x01, 0x02, 0x03} // want "hand-rolled frame bytes reach the connection write"
	c.Write(buf)
}

func handRolledAppend(c net.Conn, vote byte) {
	frame := append([]byte{0x01}, vote) // want "hand-rolled frame bytes reach the connection write"
	c.Write(frame)
}

func unknownOrigin(c net.Conn, payload []byte) {
	c.Write(payload) // want "byte slice of unknown origin reaches the connection write"
}

func queueHandRolled(q *sendQueue, vote byte) {
	raw := []byte{0xff, vote} // want "hand-rolled frame bytes reach the send queue"
	q.send(raw)
}
