// Package good holds framecap-clean transport code: every byte slice
// reaching a conn or the send queue comes from a wire constructor.
package good

import (
	"net"

	"wire"
)

type sendQueue struct{ pending [][]byte }

func (q *sendQueue) send(frame []byte) {
	q.pending = append(q.pending, frame)
}

func single(c net.Conn, vote byte) {
	buf := wire.Append(nil, vote)
	c.Write(buf)
}

func traced(c net.Conn, vote byte, trace uint64) {
	frame := wire.AppendTraced(nil, vote, trace)
	c.Write(frame)
}

func batched(c net.Conn, votes []byte) {
	frame := wire.EncodeBatch(votes)
	c.Write(frame)
}

func viaEncoder(q *sendQueue, votes []byte) {
	var enc wire.BatchEncoder
	for _, v := range votes {
		frame := enc.Append(v)
		q.send(frame)
	}
}

func reassigned(c net.Conn, votes []byte) {
	buf := wire.Append(nil, 0)
	for _, v := range votes {
		buf = wire.Append(buf, v)
	}
	c.Write(buf)
}
