// Package agggood holds the framecap-clean aggregator upstream forward
// path: every partial-verdict frame is built by wire.AppendPartial — and
// rebuilt by it on replay, rather than retained as raw bytes — before it
// reaches the send queue or the upstream connection.
package agggood

import (
	"net"

	"wire"
)

type sendQueue struct{ pending [][]byte }

func (q *sendQueue) send(frame []byte) {
	q.pending = append(q.pending, frame)
}

type entry struct{ trial, votes, rejects byte }

type aggregator struct {
	q        *sendQueue
	upstream net.Conn
	flushed  []entry
}

// flush encodes the folded batch with the wire constructor and enqueues it.
func (a *aggregator) flush(batch []entry) {
	frame := wire.AppendPartial(nil, byte(len(batch)))
	a.q.send(frame)
	a.flushed = append(a.flushed, batch...)
}

// replay re-encodes the retained entries on retry, so a resend after a
// reconnect goes back through the cap instead of replaying stale bytes.
func (a *aggregator) replay() {
	for _, e := range a.flushed {
		frame := wire.AppendPartial(nil, e.trial)
		a.upstream.Write(frame)
	}
}

// done signals end-of-stream upstream with a constructor-built frame.
func (a *aggregator) done(id byte) {
	a.upstream.Write(wire.Append(nil, id))
}
