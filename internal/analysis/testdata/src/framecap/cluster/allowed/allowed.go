// Package allowed verifies the //unifvet:allow directive suppresses a
// framecap finding (with the mandatory reason).
package allowed

import "net"

func preEncoded(c net.Conn, frame []byte) {
	//unifvet:allow framecap producers pre-encode via wire.Append before the handoff
	c.Write(frame)
}
