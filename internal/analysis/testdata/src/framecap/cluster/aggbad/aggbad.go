// Package aggbad exercises framecap on the aggregator's upstream forward
// path: partial-verdict frames that reach the upstream send queue or
// connection without passing through a wire constructor bypass the
// per-type frame cap.
package aggbad

import "net"

type sendQueue struct{ pending [][]byte }

func (q *sendQueue) send(frame []byte) {
	q.pending = append(q.pending, frame)
}

type aggregator struct {
	q        *sendQueue
	upstream net.Conn
}

// flushHandRolled builds the partial frame by hand instead of via
// wire.AppendPartial, so the cap and canonical encoding are both skipped.
func (a *aggregator) flushHandRolled(trial int, votes, rejects uint64) {
	frame := []byte{0x07, byte(trial), byte(votes), byte(rejects)} // want "hand-rolled frame bytes reach the send queue"
	a.q.send(frame)
}

// forwardRaw relays a child's frame bytes upstream verbatim; the origin is
// invisible here, so the cap cannot be shown to have applied.
func (a *aggregator) forwardRaw(childFrame []byte) {
	a.upstream.Write(childFrame) // want "byte slice of unknown origin reaches the connection write"
}

// replayHandRolled retries a flush by re-sending raw bytes on the upstream
// conn instead of re-encoding the retained entries.
func (a *aggregator) replayHandRolled() {
	raw := append([]byte{0x07}, 0x01) // want "hand-rolled frame bytes reach the connection write"
	a.upstream.Write(raw)
}
