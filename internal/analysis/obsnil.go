package analysis

import (
	"go/ast"
)

// ObsNil flags reads of an obs.Recorder's Registry or Journal fields
// outside package obs itself. The telemetry layer's contract is that a nil
// *Recorder (telemetry disabled) is always safe to use — but that only
// holds through the nil-safe accessors Reg(), Jour(), and Log(); a direct
// field access like rec.Journal.Write(e) panics the moment telemetry is
// off. Writes (rec.Registry = …) are construction and stay allowed, as do
// composite literals (&obs.Recorder{Registry: …}).
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "forbid direct obs.Recorder field reads; use the nil-safe Reg/Jour/Log accessors",
	Run:  runObsNil,
}

var obsNilAccessor = map[string]string{
	"Registry": "Reg()",
	"Journal":  "Jour()",
}

func runObsNil(pass *Pass) error {
	if HasPathSegment(pass.Path, "obs") {
		return nil // the obs package implements the accessors
	}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		assignedSels := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						assignedSels[sel] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			accessor, watched := obsNilAccessor[sel.Sel.Name]
			if !watched || assignedSels[sel] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok || !NamedFrom(tv.Type, "obs", "Recorder") {
				return true
			}
			// The rewrite is mechanical — the accessor returns exactly the
			// field when the recorder is non-nil — so attach it as a fix.
			fix := pass.Edit(sel.Sel.Pos(), sel.Sel.End(),
				"replace the field read with the nil-safe "+accessor+" accessor", accessor)
			pass.ReportfFix(sel.Pos(), fix, "direct read of obs.Recorder.%s panics when telemetry is disabled (nil recorder): use the nil-safe %s accessor", sel.Sel.Name, accessor)
			return true
		})
	}
	return nil
}
