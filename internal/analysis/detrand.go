package analysis

import (
	"go/ast"
	"strconv"
)

// DetRand forbids the standard library's global random number generators.
// Every source of randomness in trial paths must be an internal/rng
// generator seeded from the run's declared seed — a single math/rand call
// makes experiment tables irreproducible without leaving any trace in the
// output. Packages whose import path contains an "rng" segment are exempt
// (the deterministic generator itself may reference the stdlib for, e.g.,
// compatibility shims), as are _test.go files.
//
// Independently of the import ban, seeding any source from the wall clock
// (rand.NewSource(time.Now()…), rand.Seed(time.Now()…), rand.New(
// rand.NewSource(time.Now()…))) is flagged even inside exempt packages:
// a time-seeded stream is unreproducible no matter where it lives.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand randomness; require internal/rng",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) error {
	exemptPath := HasPathSegment(pass.Path, "rng")
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		if !exemptPath {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "import of %s: derive randomness from internal/rng generators (rng.New / rng.At) so trials replay bit-for-bit", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch CalleeIn(call, pass.TypesInfo, "math/rand") {
			case "NewSource", "Seed", "New":
				if callContainsTimeNow(call, pass) {
					pass.Reportf(call.Pos(), "wall-clock-seeded rand source: seed from the run's declared seed via internal/rng instead of time.Now")
					return false
				}
			}
			return true
		})
	}
	return nil
}

// callContainsTimeNow reports whether any argument subtree of call invokes
// time.Now.
func callContainsTimeNow(call *ast.CallExpr, pass *Pass) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if CalleeIn(inner, pass.TypesInfo, "time") == "Now" {
					found = true
					return false
				}
			}
			return !found
		})
	}
	return found
}
