package analysis

import (
	"go/ast"
	"strings"
)

// wallClockPackages are the import-path segments naming packages on the
// Monte-Carlo trial path. Reading the wall clock there couples results (or
// result-adjacent state) to real time; the only legitimate use is
// observability timing or a transport-deadline safety net, which must
// carry a //unifvet:allow wallclock directive with a reason. The cluster
// runtime is included because its verdicts must remain a pure function of
// the base seed: deadlines may bound I/O, never decide trials.
var wallClockPackages = []string{"tester", "zeroround", "dist", "experiment", "cluster"}

// WallClock flags time.Now and time.Since in trial-path packages
// (internal/{tester,zeroround,dist,experiment,cluster}). Test files are
// exempt.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/time.Since in trial-path packages (internal/{" + strings.Join(wallClockPackages, ",") + "})",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	restricted := false
	for _, seg := range wallClockPackages {
		if HasPathSegment(pass.Path, seg) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := CalleeIn(call, pass.TypesInfo, "time"); name {
			case "Now", "Since":
				pass.Reportf(call.Pos(), "time.%s in trial-path package %s: trial results must not depend on the wall clock (annotate observability timing with %s wallclock <reason>)", name, pass.Path, DirectivePrefix)
			}
			return true
		})
	}
	return nil
}
