package analysis

import (
	"go/ast"
	"strings"
)

// wallClockPackages are the import-path segments naming packages on the
// Monte-Carlo trial path. Reading the wall clock there couples results (or
// result-adjacent state) to real time; the only legitimate use is
// observability timing or a transport-deadline safety net, which must
// carry a //unifvet:allow wallclock directive with a reason. The cluster
// runtime is included because its verdicts must remain a pure function of
// the base seed: deadlines may bound I/O, never decide trials.
var wallClockPackages = []string{"tester", "zeroround", "dist", "experiment", "cluster", "obs"}

// wallClockAllowedSubpaths exempts whole packages from the ban without
// per-line directives. The span tracer is the one sanctioned clock reader
// in the telemetry plane: span timestamps ARE wall-clock observations by
// design, and nothing downstream of them feeds a verdict — the tracer only
// writes journal records.
var wallClockAllowedSubpaths = []string{"obs/trace"}

// WallClock flags time.Now and time.Since in trial-path packages
// (internal/{tester,zeroround,dist,experiment,cluster,obs}). Test files
// and the allowlisted subpaths (obs/trace) are exempt.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since in trial-path packages (internal/{" + strings.Join(wallClockPackages, ",") +
		"}), excepting " + strings.Join(wallClockAllowedSubpaths, ","),
	Run: runWallClock,
}

// hasSubpath reports whether the slash-separated segments of sub occur
// consecutively in path — "a/obs/trace" contains "obs/trace" but
// "a/obs/x/trace" does not.
func hasSubpath(path, sub string) bool {
	segs := strings.Split(path, "/")
	want := strings.Split(sub, "/")
	for i := 0; i+len(want) <= len(segs); i++ {
		match := true
		for j, w := range want {
			if segs[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func runWallClock(pass *Pass) error {
	restricted := false
	for _, seg := range wallClockPackages {
		if HasPathSegment(pass.Path, seg) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	for _, sub := range wallClockAllowedSubpaths {
		if hasSubpath(pass.Path, sub) {
			return nil
		}
	}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := CalleeIn(call, pass.TypesInfo, "time"); name {
			case "Now", "Since":
				pass.Reportf(call.Pos(), "time.%s in trial-path package %s: trial results must not depend on the wall clock (annotate observability timing with %s wallclock <reason>)", name, pass.Path, DirectivePrefix)
			}
			return true
		})
	}
	return nil
}
