package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body lets iteration order escape
// into ordered output: appending to a slice declared outside the loop that
// is never subsequently sorted in the same function, or directly emitting
// (table rows, journal events, JSON encoding, writer output) from inside
// the loop. Go randomizes map iteration order per run, so either pattern
// makes tables and run documents differ between identical runs — the exact
// byte-for-byte property CI diffs. Writing into another map, or appending
// to a slice that is sorted before use, is fine.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map iteration order leaking into slices, tables, or JSON/journal output",
	Run:  runMapOrder,
}

// emitNames are method/function names that move data toward ordered output.
// Calling any of these inside a map-range body is an order leak regardless
// of later sorting, because the emission itself happens in map order.
var emitNames = map[string]bool{
	"Write": true, "WriteString": true, "Encode": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"AddRow": true, "AddNote": true, "Log": true,
}

// sortFuncs maps package segment → function names that establish a
// deterministic order for a previously appended slice.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkMapOrderFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkMapOrderFunc inspects one function body. Nested function literals
// are skipped here — the outer ast.Inspect visits them as their own
// function scope.
func checkMapOrderFunc(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	sortedAt := map[types.Object][]token.Pos{}
	walkSameFunc(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[s.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, s)
				}
			}
		case *ast.CallExpr:
			if obj := sortedArg(pass, s); obj != nil {
				sortedAt[obj] = append(sortedAt[obj], s.Pos())
			}
		}
	})
	for _, rs := range ranges {
		checkMapRange(pass, rs, sortedAt)
	}
}

// walkSameFunc visits nodes in body without descending into nested
// function literals.
func walkSameFunc(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// sortedArg returns the object of the slice being sorted when call is a
// sort.*/slices.Sort* invocation with an identifiable first argument.
func sortedArg(pass *Pass, call *ast.CallExpr) types.Object {
	for seg, names := range sortFuncs {
		if names[CalleeIn(call, pass.TypesInfo, seg)] {
			if len(call.Args) == 0 {
				return nil
			}
			return exprObject(pass, call.Args[0])
		}
	}
	return nil
}

// exprObject resolves an expression to the object of its root variable:
// the base identifier for selectors, index expressions, and dereferences
// (append to dh.Buckets is attributed to dh, so a loop-local struct does
// not inherit its field's package-level declaration position).
func exprObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return pass.TypesInfo.Uses[x.Sel] // package-qualified name
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkMapRange reports order leaks out of one map-range statement.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, sortedAt map[types.Object][]token.Pos) {
	walkSameFunc(rs.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		// append(target, …) where target is declared outside the loop.
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				target := exprObject(pass, call.Args[0])
				if target == nil || target.Pos() == token.NoPos {
					return
				}
				if target.Pos() >= rs.Pos() && target.Pos() < rs.End() {
					return // loop-local accumulator; order cannot escape
				}
				if laterSorted(sortedAt[target], rs.End()) {
					return
				}
				pass.Reportf(call.Pos(), "append to %q inside range over map: iteration order is random per run — collect keys, sort, then iterate (or sort %q before use)", target.Name(), target.Name())
			}
			return
		}
		// Direct emission in map order.
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && emitNames[sel.Sel.Name] {
			if pass.TypesInfo.Uses[sel.Sel] != nil {
				pass.Reportf(call.Pos(), "%s call inside range over map emits in random iteration order — collect keys, sort, then emit", sel.Sel.Name)
			}
		}
	})
}

// laterSorted reports whether any sort position follows end.
func laterSorted(positions []token.Pos, end token.Pos) bool {
	for _, p := range positions {
		if p > end {
			return true
		}
	}
	return false
}
