package analysis

import (
	"fmt"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Fixed counts diagnostics whose suggested fix was applied.
	Fixed int
	// Remaining holds the diagnostics that carried no fix (or whose fix
	// collided with another edit) and therefore still need a human.
	Remaining []Diagnostic
	// Files lists the rewritten files, sorted.
	Files []string
}

// ApplyFixes applies every diagnostic's suggested fix to the files on disk.
// Edits are applied per file in descending offset order so earlier edits
// don't shift later offsets; when two edits overlap, the later-starting one
// wins and the discarded diagnostic is returned in Remaining. The rewrite
// is idempotent by construction: a fixed file no longer produces the
// diagnostic, so a second run has nothing to apply.
func ApplyFixes(diags []Diagnostic) (FixResult, error) {
	res := FixResult{}
	type pendingEdit struct {
		TextEdit
		diag Diagnostic
	}
	byFile := map[string][]pendingEdit{}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			res.Remaining = append(res.Remaining, d)
			continue
		}
		for _, e := range d.Fix.Edits {
			byFile[e.File] = append(byFile[e.File], pendingEdit{e, d})
		}
	}
	fixed := map[string]bool{} // diagnostic key → applied
	for file, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		src, err := os.ReadFile(file)
		if err != nil {
			return res, fmt.Errorf("apply fixes: %w", err)
		}
		out := src
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.Start < 0 || e.End > len(src) || e.Start > e.End {
				return res, fmt.Errorf("apply fixes: %s: edit [%d,%d) out of range", file, e.Start, e.End)
			}
			if e.End > lastStart {
				// Overlaps an already-applied edit; keep the diagnostic.
				res.Remaining = append(res.Remaining, e.diag)
				continue
			}
			out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
			lastStart = e.Start
			fixed[e.diag.String()] = true
		}
		if err := os.WriteFile(file, out, 0o644); err != nil {
			return res, fmt.Errorf("apply fixes: %w", err)
		}
		res.Files = append(res.Files, file)
	}
	for _, d := range diags {
		if fixed[d.String()] {
			res.Fixed++
		}
	}
	sort.Strings(res.Files)
	SortDiagnostics(res.Remaining)
	return res, nil
}
