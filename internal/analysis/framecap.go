package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FrameCap enforces the wire-protocol encoding discipline in the cluster
// runtime: every []byte that reaches a connection — a Write on a
// net.Conn/io.Writer, or a send/Enqueue into a send queue — must have been
// produced by a wire-package constructor (Append, AppendTraced,
// AppendBatch, BatchEncoder.Append, Encode*). Those constructors are where
// the typed per-frame-type size caps (wire.FrameCap, the cluster analogue
// of the CONGEST per-edge bandwidth limit) are enforced; a hand-rolled
// byte slice pushed at the transport bypasses the cap and the canonical
// encoding both. Packages with a "wire" path segment are exempt — they
// implement the constructors — as are _test.go files.
var FrameCap = &Analyzer{
	Name: "framecap",
	Doc:  "require bytes written to conns/send queues in cluster packages to come from wire.Append*/Encode* constructors",
	Run:  runFrameCap,
}

func runFrameCap(pass *Pass) error {
	if !HasPathSegment(pass.Path, "cluster") || HasPathSegment(pass.Path, "wire") {
		return nil
	}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFrameCapFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFrameCapFunc scans one function body for transport sinks and traces
// each sink's byte-slice argument back to its producing expression.
func checkFrameCapFunc(pass *Pass, body *ast.BlockStmt) {
	o := trackOrigins(pass.TypesInfo, body)
	walkSameFunc(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		arg, sink := frameSinkArg(pass, call)
		if arg == nil {
			return
		}
		resolved := o.resolve(arg)
		if len(resolved) == 0 {
			pass.Reportf(arg.Pos(), "byte slice of unknown origin reaches %s: frames must flow through a wire.Append*/Encode* constructor so the per-type frame cap (wire.FrameCap) applies", sink)
			return
		}
		for _, origin := range resolved {
			origin = ast.Unparen(origin)
			switch x := origin.(type) {
			case *ast.CallExpr:
				if !frameConstructor(pass, x) {
					pass.Reportf(origin.Pos(), "hand-rolled frame bytes reach %s: build frames with wire.Append/AppendTraced/BatchEncoder.Append so the per-type frame cap (wire.FrameCap) applies", sink)
				}
			case *ast.CompositeLit, *ast.BasicLit:
				pass.Reportf(origin.Pos(), "hand-rolled frame bytes reach %s: build frames with wire.Append/AppendTraced/BatchEncoder.Append so the per-type frame cap (wire.FrameCap) applies", sink)
			default:
				pass.Reportf(origin.Pos(), "byte slice of unknown origin reaches %s: frames must flow through a wire.Append*/Encode* constructor so the per-type frame cap (wire.FrameCap) applies", sink)
			}
		}
	})
}

// frameSinkArg classifies call as a transport sink and returns its
// byte-slice argument: Write on a net.Conn/io.Writer receiver, or a
// send/Enqueue method taking []byte (the send-queue surface). Returns
// (nil, "") for anything else.
func frameSinkArg(pass *Pass, call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	recvType := func() types.Type {
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return nil
		}
		return tv.Type
	}
	switch sel.Sel.Name {
	case "Write":
		t := recvType()
		if t == nil || !(NamedFrom(t, "net", "Conn") || NamedFrom(t, "io", "Writer") || NamedFrom(t, "net", "TCPConn")) {
			return nil, ""
		}
		if len(call.Args) != 1 || !byteSliceType(pass.TypesInfo.Types[call.Args[0]].Type) {
			return nil, ""
		}
		return call.Args[0], "the connection write"
	case "send", "Enqueue":
		// Same-package queue surface: a method taking a []byte first arg.
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg() != pass.Pkg {
			return nil, ""
		}
		for _, a := range call.Args {
			if tv, ok := pass.TypesInfo.Types[a]; ok && byteSliceType(tv.Type) {
				return a, "the send queue"
			}
		}
	}
	return nil, ""
}

// frameConstructor reports whether call targets a wire-segment package
// function or method whose name starts with Append or Encode — the
// FrameCap-checked constructors.
func frameConstructor(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass.TypesInfo, call)
	if !objPkgSegment(obj, "wire") {
		return false
	}
	name := obj.Name()
	return strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Encode")
}
