package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, analysis.WallClock,
		"wallclock/tester",
		"wallclock/clean",
		"wallclock/cluster",
		"wallclock/obs/trace",
		"wallclock/obs/bad",
	)
}
