package analysis

import (
	"encoding/json"
	"testing"
)

// TestSARIFStructure validates the emitted log against the SARIF 2.1.0
// shapes code scanning requires: schema/version headers, a rule per
// analyzer (zero findings included), and results whose ruleIndex points at
// the matching rule.
func TestSARIFStructure(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "lockio", File: "/repo/internal/cluster/referee.go", Line: 10, Col: 3, Message: "conn Write while holding rf.mu"},
		{Analyzer: "directive", File: "/repo/internal/wire/wire.go", Line: 4, Col: 1, Message: "needs a trailing reason"},
	}
	out, err := SARIF(diags, All(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("missing $schema")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "unifvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every registered analyzer appears as a rule even without findings,
	// plus the directive pseudo-rule.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			t.Errorf("rule %d has empty id", i)
		}
		ruleIDs[r.ID] = i
	}
	for _, name := range []string{"framecap", "votepure", "lockio", "qlifecycle", "directive"} {
		if _, ok := ruleIDs[name]; !ok {
			t.Errorf("rule table missing %s", name)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result %d level = %q", i, r.Level)
		}
		if ruleIDs[r.RuleID] != r.RuleIndex {
			t.Errorf("result %d ruleIndex = %d, want %d for %s", i, r.RuleIndex, ruleIDs[r.RuleID], r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d locations = %d", i, len(r.Locations))
		}
	}
	// Paths relativize against root and use forward slashes.
	uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if uri != "internal/cluster/referee.go" {
		t.Errorf("uri = %q, want repo-relative path", uri)
	}
	if run.Results[0].Locations[0].PhysicalLocation.Region.StartLine != 10 {
		t.Errorf("startLine = %d, want 10", run.Results[0].Locations[0].PhysicalLocation.Region.StartLine)
	}
}

// TestSARIFEmptyIsClean verifies a finding-free run still emits a valid
// log with the full rule table and an empty (not null) results array.
func TestSARIFEmptyIsClean(t *testing.T) {
	out, err := SARIF(nil, All(), "")
	if err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	runs := log["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"].([]any)
	if !ok {
		t.Fatalf("results must be an array, got %T", runs[0].(map[string]any)["results"])
	}
	if len(results) != 0 {
		t.Fatalf("results = %d, want 0", len(results))
	}
}
