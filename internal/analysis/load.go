package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir into type-checked
// packages. It shells out to `go list -export -deps -json`, which both
// enumerates the matched packages and compiles gc export data for every
// dependency; imports are then satisfied from export data, so only the
// matched packages themselves are parsed and type-checked from source.
// Non-test files only: the determinism invariants unifvet enforces apply to
// code that can reach a run document, and tests are exempt by design.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// ExportDataImporter returns a types importer that satisfies imports from
// gc export-data files, as indexed by import path in exports (the Export
// field of `go list -export -json`).
func ExportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeCheck parses files (named relative to dir) and type-checks them as
// one package.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: astFiles, Types: tpkg, Info: info}, nil
}

// NewInfo allocates the types.Info maps analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
