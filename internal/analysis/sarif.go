package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// This file renders diagnostics as SARIF 2.1.0, the interchange format
// GitHub code scanning ingests. Only the structures unifvet emits are
// modeled — a tool driver with one rule per analyzer and one result per
// diagnostic — but the field names and shapes follow the OASIS schema so
// the output validates and uploads unmodified.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diags as an indented SARIF 2.1.0 log. analyzers supplies
// the rule table (every registered analyzer appears, findings or not, plus
// the "directive" pseudo-rule); root, when non-empty, is the directory file
// paths are made relative to so the URIs match the repository layout code
// scanning expects.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	driver := sarifDriver{
		Name:  "unifvet",
		Rules: []sarifRule{},
	}
	ruleIndex := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("directive", "malformed or reasonless //unifvet:allow suppression directive")

	results := []sarifResult{}
	for _, d := range diags {
		if _, ok := ruleIndex[d.Analyzer]; !ok {
			addRule(d.Analyzer, "")
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(d.File, root),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// sarifURI renders file relative to root with forward slashes, as SARIF
// artifact locations require. Files outside root keep their original path.
func sarifURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}
