package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestSharedRNG(t *testing.T) {
	analysistest.Run(t, analysis.SharedRNG,
		"sharedrng/bad",
		"sharedrng/good",
		"sharedrng/clusterlink",
		"sharedrng/sendqueue",
	)
}
