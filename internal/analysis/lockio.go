package analysis

import (
	"go/ast"
)

// LockIO forbids blocking I/O while holding a sync.Mutex/RWMutex in
// cluster-segment packages: connection reads/writes (net.Conn, io.Writer,
// wire.WriteFrame*/ReadFrame*/ReadBody), channel sends (except under a
// select with a default clause, which cannot block), send-queue
// send/Flush/Enqueue calls (QueueBlock applies backpressure while the
// caller holds the lock), and time.Sleep. The referee's hot path is the
// motivating perimeter: recordLocked does pure bookkeeping under rf.mu
// while decode and transport writes stay outside the critical section — a
// blocking call under that mutex stalls every connection handler at once.
// The analyzer tracks lock regions linearly per statement list: a region
// opens at mu.Lock()/mu.RLock(), closes at the matching Unlock in the same
// list, and `defer mu.Unlock()` holds to the end of the function. Nested
// branches inherit (a copy of) the outer state, so an early
// unlock-and-return inside an if releases the region for that branch only.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "forbid blocking I/O (conn writes, channel sends, queue enqueues, sleeps) while holding a sync mutex in cluster packages",
	Run:  runLockIO,
}

func runLockIO(pass *Pass) error {
	if !HasPathSegment(pass.Path, "cluster") {
		return nil
	}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				scanLockRegion(pass, body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// scanLockRegion walks one statement list tracking which mutexes are held.
// held maps the mutex's receiver expression (printed) to true; callers
// pass a copy when descending into branches so an unlock on one path does
// not release the others.
func scanLockRegion(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if key, op := lockOp(pass, st.X); key != "" {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
			if len(held) > 0 {
				checkBlocking(pass, st, held)
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() — the lock stays held for the remainder of
			// the function; nothing to do (Lock already recorded it).
			if len(held) > 0 {
				checkBlocking(pass, st.Call, held)
			}
		case *ast.BlockStmt:
			scanLockRegion(pass, st.List, copyHeld(held))
		case *ast.IfStmt:
			if len(held) > 0 && st.Cond != nil {
				checkBlocking(pass, st.Cond, held)
			}
			scanLockRegion(pass, st.Body.List, copyHeld(held))
			if st.Else != nil {
				scanLockRegion(pass, []ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanLockRegion(pass, st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanLockRegion(pass, st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					scanLockRegion(pass, c.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					scanLockRegion(pass, c.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			checkSelect(pass, st, held)
		default:
			if len(held) > 0 {
				checkBlocking(pass, s, held)
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockOp classifies expr as a mutex Lock/RLock/Unlock/RUnlock call and
// returns the mutex key (the printed receiver expression) and the method.
func lockOp(pass *Pass, expr ast.Expr) (key, op string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !(NamedFrom(tv.Type, "sync", "Mutex") || NamedFrom(tv.Type, "sync", "RWMutex")) {
		return "", ""
	}
	return exprKey(sel.X), sel.Sel.Name
}

// exprKey renders a receiver expression to a comparable key (x.mu, q.mu).
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprKey(x.X)
	default:
		return "<mutex>"
	}
}

// checkBlocking inspects node's subtree (excluding nested function
// literals and selects, which checkSelect handles) for blocking operations
// and reports each against the held mutexes.
func checkBlocking(pass *Pass, node ast.Node, held map[string]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // runs later, not under this lock
		case *ast.SelectStmt:
			checkSelect(pass, x, held)
			return false
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send while holding %s blocks every path through the critical section — buffer the value and send after Unlock", heldName(held))
			return true
		case *ast.CallExpr:
			if msg := blockingCall(pass, x); msg != "" {
				pass.Reportf(x.Pos(), "%s while holding %s: keep blocking I/O outside the critical section (decode outside the lock, record inside — the recordLocked pattern)", msg, heldName(held))
			}
		}
		return true
	})
}

// checkSelect handles a select statement under (possibly) held locks: with
// a default clause the communications cannot block and only the clause
// bodies are scanned; without one, sends in the comm positions block.
func checkSelect(pass *Pass, sel *ast.SelectStmt, held map[string]bool) {
	hasDefault := false
	for _, cc := range sel.Body.List {
		if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
			hasDefault = true
		}
	}
	for _, cc := range sel.Body.List {
		c, ok := cc.(*ast.CommClause)
		if !ok {
			continue
		}
		if c.Comm != nil && !hasDefault && len(held) > 0 {
			if send, isSend := c.Comm.(*ast.SendStmt); isSend {
				pass.Reportf(send.Pos(), "channel send in a select without default while holding %s can block the critical section — add a default or send after Unlock", heldName(held))
			}
		}
		scanLockRegion(pass, c.Body, copyHeld(held))
	}
}

// blockingCall classifies call as blocking I/O: conn/writer reads+writes,
// wire codec stream calls, queue send/Flush/Enqueue, time.Sleep.
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	if CalleeIn(call, pass.TypesInfo, "time") == "Sleep" {
		return "time.Sleep"
	}
	switch name := CalleeIn(call, pass.TypesInfo, "wire"); name {
	case "WriteFrame", "WriteFrameTraced":
		return "wire." + name
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	switch name {
	case "Read", "Write", "ReadFrom", "WriteTo":
		if NamedFrom(t, "net", "Conn") || NamedFrom(t, "net", "TCPConn") ||
			NamedFrom(t, "io", "Writer") || NamedFrom(t, "io", "Reader") {
			return "conn " + name
		}
	case "ReadFrame", "ReadFrameTraced", "ReadBody":
		if NamedFrom(t, "wire", "Reader") {
			return "wire.Reader." + name
		}
	case "send", "Flush", "Enqueue":
		// Same-package queue surface: QueueBlock backpressure can park the
		// caller indefinitely.
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() == pass.Pkg {
			return "queue " + name
		}
	}
	return ""
}

// heldName renders the held mutex set for a message, deterministically.
func heldName(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k) //unifvet:allow maporder names are sorted below before rendering
	}
	if len(names) == 1 {
		return names[0]
	}
	// Multiple mutexes held: sort for deterministic output.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := names[0]
	for _, n := range names[1:] {
		out += "+" + n
	}
	return out
}
