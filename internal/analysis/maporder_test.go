package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder,
		"maporder/bad",
		"maporder/good",
		"maporder/allowed",
	)
}
