package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestVotePure(t *testing.T) {
	analysistest.Run(t, analysis.VotePure,
		"votepure/bad",
		"votepure/allowed",
		"votepure/good",
	)
}
