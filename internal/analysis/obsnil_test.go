package analysis_test

import (
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
	"github.com/unifdist/unifdist/internal/analysis/analysistest"
)

func TestObsNil(t *testing.T) {
	analysistest.Run(t, analysis.ObsNil,
		"obsnil/bad",
		"obsnil/good",
	)
}
