// Package analysistest runs unifvet analyzers against fixture packages, in
// the manner of golang.org/x/tools/go/analysis/analysistest (which the
// build deliberately does not vendor). Fixtures live under
// internal/analysis/testdata/src/<path>/; each expected finding is marked
// with a trailing
//
//	// want "regexp"
//
// comment on the offending line, and `//unifvet:allow` directives in
// fixtures are honored exactly as the cmd/unifvet driver honors them — so
// suppressed-case fixtures verify the directive machinery end to end.
//
// Fixture imports resolve in two steps: a path with a directory under
// testdata/src (e.g. "rng", "obs") loads that fixture package recursively;
// anything else is treated as a standard-library import and satisfied from
// gc export data via one `go list -export -deps -json` call per run.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/unifdist/unifdist/internal/analysis"
)

// Run loads each fixture package (paths relative to testdata/src), applies
// the analyzer with directive suppression, and compares findings against
// the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	loader := newLoader(t, "testdata/src")
	for _, fixture := range fixtures {
		fixture := fixture
		t.Run(strings.ReplaceAll(fixture, "/", "_"), func(t *testing.T) {
			t.Helper()
			pkg := loader.load(t, fixture)
			diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
			}
			check(t, loader.fset, pkg, diags)
		})
	}
}

// check diffs reported diagnostics against want comments, per file+line.
func check(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string]map[int]*wantSpec{} // file → line → spec
	for _, f := range pkg.Files {
		name := fset.Position(f.Pos()).Filename
		wants[name] = collectWants(t, fset, f)
	}
	for _, d := range diags {
		spec := wants[d.File][d.Line]
		switch {
		case spec == nil:
			t.Errorf("%s: unexpected diagnostic: %s", relPath(d.File), d.String())
		case !spec.re.MatchString(d.Message):
			t.Errorf("%s:%d: diagnostic %q does not match want %q", relPath(d.File), d.Line, d.Message, spec.re)
			spec.matched = true
		default:
			spec.matched = true
		}
	}
	for file, lines := range wants {
		for line, spec := range lines {
			if !spec.matched {
				t.Errorf("%s:%d: no diagnostic matching want %q", relPath(file), line, spec.re)
			}
		}
	}
}

type wantSpec struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+"(.*)"\s*$`)

// collectWants extracts // want "regexp" comments keyed by line.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) map[int]*wantSpec {
	t.Helper()
	out := map[int]*wantSpec{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("bad want regexp %q: %v", m[1], err)
			}
			out[fset.Position(c.Pos()).Line] = &wantSpec{re: re}
		}
	}
	return out
}

// relPath trims the fixture path down to the testdata-relative tail for
// readable failure messages.
func relPath(p string) string {
	if i := strings.Index(p, "testdata"+string(filepath.Separator)); i >= 0 {
		return p[i:]
	}
	return p
}

// loader loads fixture packages with memoization and shared stdlib export
// data.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	mu      sync.Mutex
	pkgs    map[string]*analysis.Package
	exports map[string]string
	std     types.Importer
}

var (
	sharedLoaderOnce sync.Once
	sharedLoader     *loader
)

// newLoader returns the process-wide fixture loader (fixtures are
// immutable inputs, so all tests can share parse and type-check work).
func newLoader(t *testing.T, srcRoot string) *loader {
	t.Helper()
	sharedLoaderOnce.Do(func() {
		abs, err := filepath.Abs(srcRoot)
		if err != nil {
			abs = srcRoot
		}
		l := &loader{
			srcRoot: abs,
			fset:    token.NewFileSet(),
			pkgs:    map[string]*analysis.Package{},
			exports: map[string]string{},
		}
		l.std = analysis.ExportDataImporter(l.fset, l.exports)
		sharedLoader = l
	})
	return sharedLoader
}

// load parses and type-checks the fixture package at srcRoot/path.
func (l *loader) load(t *testing.T, path string) *analysis.Package {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	pkg, err := l.loadLocked(path, map[string]bool{})
	if err != nil {
		t.Fatalf("load fixture %s: %v", path, err)
	}
	return pkg
}

func (l *loader) loadLocked(path string, inProgress map[string]bool) (*analysis.Package, error) {
	if pkg := l.pkgs[path]; pkg != nil {
		return pkg, nil
	}
	if inProgress[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	inProgress[path] = true
	defer delete(inProgress, path)

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var stdImports []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, statErr := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(ipath))); statErr == nil {
				if _, err := l.loadLocked(ipath, inProgress); err != nil {
					return nil, err
				}
			} else {
				stdImports = append(stdImports, ipath)
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	if err := l.ensureExports(stdImports); err != nil {
		return nil, err
	}

	info := analysis.NewInfo()
	conf := types.Config{
		Importer: fixtureImporter{loader: l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	pkg := &analysis.Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ensureExports adds gc export data for any not-yet-seen stdlib imports
// (and their dependency closure) to the shared export map.
func (l *loader) ensureExports(paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := l.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %v: %v\n%s", missing, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list: decode: %w", err)
		}
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
	}
	return nil
}

// fixtureImporter resolves fixture-local packages first, stdlib second.
type fixtureImporter struct{ loader *loader }

func (i fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg := i.loader.pkgs[path]; pkg != nil {
		return pkg.Types, nil
	}
	return i.loader.std.Import(path)
}
