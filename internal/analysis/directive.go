package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment. The full syntax is
//
//	//unifvet:allow <analyzer>[,<analyzer>…] <reason…>
//
// placed either at the end of the offending line or on its own line
// immediately above. One line can suppress several analyzers at once by
// naming them comma-separated (no spaces): `//unifvet:allow
// lockio,framecap <reason>`. The reason is mandatory in every form: a
// suppression without a recorded justification is itself reported as a
// finding, so `unifvet` output stays the audit trail for every exemption.
const DirectivePrefix = "//unifvet:allow"

// An Allow is one parsed suppression directive.
type Allow struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// Allows indexes suppression directives by file and line for filtering.
type Allows struct {
	byLine map[string]map[int]map[string]bool // file → line → analyzer
}

// CollectAllows parses every //unifvet:allow directive in files. Malformed
// directives — a missing analyzer name or a missing reason — are returned
// as diagnostics under the pseudo-analyzer "directive" so the driver fails
// the build on them.
func CollectAllows(fset *token.FileSet, files []*ast.File) (Allows, []Diagnostic) {
	allows := Allows{byLine: map[string]map[int]map[string]bool{}}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //unifvet:allow directive: missing analyzer name",
					})
					continue
				}
				if len(fields) < 2 {
					// The reason is mandatory in the single- and multi-analyzer
					// forms alike: a reasonless `//unifvet:allow lockio,framecap`
					// is a finding, not a suppression.
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "//unifvet:allow " + fields[0] + " needs a trailing reason explaining the exemption",
					})
					continue
				}
				analyzers, ok := splitAnalyzerList(fields[0])
				if !ok {
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //unifvet:allow analyzer list " + fields[0] + ": comma-separated names, no empty entries",
					})
					continue
				}
				lines := allows.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					allows.byLine[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, a := range analyzers {
					names[a] = true
				}
			}
		}
	}
	return allows, bad
}

// splitAnalyzerList parses the directive's analyzer field: one name, or
// several comma-separated (`lockio,framecap`). Empty entries — a leading,
// trailing, or doubled comma — make the whole list malformed.
func splitAnalyzerList(field string) ([]string, bool) {
	parts := strings.Split(field, ",")
	for _, p := range parts {
		if p == "" {
			return nil, false
		}
	}
	return parts, true
}

// Allowed reports whether a diagnostic from analyzer at file:line is
// suppressed: a directive for that analyzer sits on the same line (trailing
// comment) or on the line directly above (standalone comment).
func (a Allows) Allowed(analyzer, file string, line int) bool {
	lines := a.byLine[file]
	if lines == nil {
		return false
	}
	return lines[line][analyzer] || lines[line-1][analyzer]
}

// Filter returns the diagnostics not suppressed by a directive.
func (a Allows) Filter(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !a.Allowed(d.Analyzer, d.File, d.Line) {
			kept = append(kept, d)
		}
	}
	return kept
}
