package smp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/rng"
)

func TestNewEqualityValidation(t *testing.T) {
	if _, err := NewEquality(0, 0.01, 2); err == nil {
		t.Error("nBits=0 accepted")
	}
	if _, err := NewEquality(100, 0, 2); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := NewEquality(100, 0.01, 1); err == nil {
		t.Error("tau=1 accepted")
	}
	if _, err := NewEquality(100, 0.6, 2); err == nil {
		t.Error("τδ > 1 accepted")
	}
	// τδ close to 1 makes the chunk longer than the torus side.
	if _, err := NewEquality(100, 0.4, 2); err == nil {
		t.Error("τδ = 0.8 should be infeasible (needs t > g)")
	}
}

func TestEqualInputsAlwaysAccepted(t *testing.T) {
	e, err := NewEquality(128, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	x := make([]byte, 16)
	for i := range x {
		x[i] = byte(i * 17)
	}
	for trial := 0; trial < 5000; trial++ {
		acc, err := e.Run(x, x, r)
		if err != nil {
			t.Fatal(err)
		}
		if !acc {
			t.Fatal("equal inputs rejected (completeness must be perfect)")
		}
	}
}

func TestEqualInputsProperty(t *testing.T) {
	e, err := NewEquality(64, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, raw [8]byte) bool {
		r := rng.New(seed)
		x := raw[:]
		acc, err := e.Run(x, x, r)
		return err == nil && acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnequalInputsRejectedAtGuaranteedRate(t *testing.T) {
	delta, tau := 0.01, 3.0
	e, err := NewEquality(96, delta, tau)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	x := make([]byte, 12)
	y := make([]byte, 12)
	y[0] = 1 // single-bit difference: the hardest unequal pair
	const trials = 60000
	rej, err := e.EstimateRejectProb(x, y, trials, r)
	if err != nil {
		t.Fatal(err)
	}
	want := e.GuaranteedReject()
	slack := 4 * math.Sqrt(want/trials)
	if rej < want-slack {
		t.Fatalf("rejection prob %v below guarantee τδ=%v (slack %v)", rej, want, slack)
	}
}

func TestRejectionScalesWithTau(t *testing.T) {
	delta := 0.01
	r := rng.New(31)
	x := make([]byte, 8)
	y := make([]byte, 8)
	y[3] = 0x80
	var prev float64
	for _, tau := range []float64{2, 4, 8} {
		e, err := NewEquality(64, delta, tau)
		if err != nil {
			t.Fatal(err)
		}
		rej, err := e.EstimateRejectProb(x, y, 40000, r)
		if err != nil {
			t.Fatal(err)
		}
		if rej <= prev {
			t.Fatalf("τ=%v: rejection %v did not increase from %v", tau, rej, prev)
		}
		prev = rej
	}
}

func TestMessageCostScaling(t *testing.T) {
	// Lemma 7.3: cost O(√(τδn)). Quadrupling n should at most roughly
	// double the chunk, plus coordinate overhead.
	e1, err := NewEquality(1024, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEquality(4096, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(e2.ChunkLen()) / float64(e1.ChunkLen())
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("4×n changed chunk by %vx, want ~2x", ratio)
	}
	// And the cost stays far below sending the whole input.
	if e2.MessageBits() >= 4096 {
		t.Fatalf("message cost %d not sublinear in n=4096", e2.MessageBits())
	}
}

func TestChunkMatchesPaperFormula(t *testing.T) {
	// With the concatenated code, t should track the paper's ⌈√(24τδn)⌉ up
	// to the padding constant.
	n, delta, tau := 4096, 0.01, 2.0
	e, err := NewEquality(n, delta, tau)
	if err != nil {
		t.Fatal(err)
	}
	paper := math.Sqrt(24 * tau * delta * float64(n))
	ratio := float64(e.ChunkLen()) / paper
	if ratio < 0.8 || ratio > 1.6 {
		t.Fatalf("chunk %d vs paper formula %v (ratio %v)", e.ChunkLen(), paper, ratio)
	}
}

func TestRefereeGeometry(t *testing.T) {
	e, err := NewEquality(64, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, tl := e.Grid(), e.ChunkLen()
	mk := func(row, col int, bits []bool) Message {
		return Message{Row: row, Col: col, Bits: bits}
	}
	ones := make([]bool, tl)
	zeros := make([]bool, tl)
	for i := range ones {
		ones[i] = true
	}
	// Intersecting chunks with differing bits must reject: Alice's column 0
	// rows 0..t−1 (all ones), Bob's row 0 columns 0..t−1 (all zeros);
	// shared cell (0,0).
	if e.Referee(mk(0, 0, ones), mk(0, 0, zeros)) {
		t.Error("differing shared cell accepted")
	}
	// Same but agreeing bits must accept.
	if !e.Referee(mk(0, 0, ones), mk(0, 0, ones)) {
		t.Error("agreeing shared cell rejected")
	}
	// Disjoint chunks (Bob's row far below Alice's chunk) must accept.
	farRow := (tl + 1) % g
	if farRow < tl { // grid too small to be disjoint; skip
		t.Skip("grid too small for disjoint case")
	}
	if !e.Referee(mk(0, 0, ones), mk(farRow, 0, zeros)) {
		t.Error("disjoint chunks rejected")
	}
}

func TestRefereeTorusWraparound(t *testing.T) {
	e, err := NewEquality(64, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, tl := e.Grid(), e.ChunkLen()
	if tl < 2 {
		t.Skip("chunk too short for wraparound test")
	}
	ones := make([]bool, tl)
	zeros := make([]bool, tl)
	for i := range ones {
		ones[i] = true
	}
	// Alice starts at the last row; her chunk wraps to row 0, which is
	// Bob's row: cell (0, alice.Col) is shared via wraparound.
	alice := Message{Row: g - 1, Col: 0, Bits: ones}
	bob := Message{Row: 0, Col: 0, Bits: zeros}
	if e.Referee(alice, bob) {
		t.Error("wrapped intersection not detected")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	e, err := NewEquality(64, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m1, err := e.AliceMessage(x, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.AliceMessage(x, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Row != m2.Row || m1.Col != m2.Col {
		t.Fatal("same seed produced different chunks")
	}
}

func TestMessageBitsAccounting(t *testing.T) {
	e, err := NewEquality(256, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	coord := int(math.Ceil(math.Log2(float64(e.Grid()))))
	if got, want := e.MessageBits(), 2*coord+e.ChunkLen(); got != want {
		t.Fatalf("MessageBits = %d, want %d", got, want)
	}
	if e.MessageBits() > int(e.CostBound()) {
		t.Fatalf("cost %d exceeds bound %v", e.MessageBits(), e.CostBound())
	}
}

func BenchmarkEqualityRun(b *testing.B) {
	e, err := NewEquality(1024, 0.01, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	x := make([]byte, 128)
	y := make([]byte, 128)
	y[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(x, y, r); err != nil {
			b.Fatal(err)
		}
	}
}
