package smp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/unifdist/unifdist/internal/ecc"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

// This file holds the parallel trial estimators for the SMP protocols. The
// experiment cells (E9, E13, E14) run each protocol tens of thousands of
// times on a fixed input pair, so the estimators here hoist everything that
// does not depend on the trial's coins out of the loop — above all the ECC
// encoding, which dominates a single protocol run — and fan the trials
// across a worker pool.
//
// Every estimator is bit-for-bit deterministic in the caller's RNG at any
// worker count: trial i's generator is reseeded by index (rng.SeedAt with a
// base drawn once from r), workers claim chunks of trial indices from one
// atomic counter and fold verdicts into per-worker partial sums, and the
// total is a commutative sum. The sequential estimators draw from r
// directly, so the two families sample different (equally valid) trial
// sets.

// countParallel runs trials indexed 0…trials−1 across workers (0 means
// GOMAXPROCS) and returns how many reported true. newWorker builds one
// per-worker trial closure owning whatever scratch it needs; the closure
// receives the trial index and a generator already reseeded for that index.
// On error the failure of the lowest trial index wins.
func countParallel(trials, workers int, base uint64, newWorker func() func(int, *rng.RNG) (bool, error)) (int, error) {
	if trials <= 0 {
		return 0, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	runRange := func(lo, hi int, gen *rng.RNG, fn func(int, *rng.RNG) (bool, error)) (int, int, error) {
		count := 0
		for i := lo; i < hi; i++ {
			gen.SeedAt(base, uint64(i))
			hit, err := fn(i, gen)
			if err != nil {
				return count, i, err
			}
			if hit {
				count++
			}
		}
		return count, -1, nil
	}

	if workers == 1 {
		count, _, err := runRange(0, trials, rng.New(0), newWorker())
		return count, err
	}

	chunk := trials / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	var (
		next, total atomic.Int64
		wg          sync.WaitGroup
		mu          sync.Mutex
		firstIdx    = trials
		firstErr    error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			gen := rng.New(0)
			fn := newWorker()
			local := 0
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= trials {
					break
				}
				hi := lo + chunk
				if hi > trials {
					hi = trials
				}
				count, idx, err := runRange(lo, hi, gen, fn)
				local += count
				if err != nil {
					mu.Lock()
					if idx < firstIdx {
						firstIdx, firstErr = idx, err
					}
					mu.Unlock()
					break
				}
			}
			total.Add(int64(local))
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return int(total.Load()), nil
}

// encodePair encodes both players' inputs through one shared symbol
// scratch (ecc.EncodeInto): the estimators encode exactly twice per call,
// however many trials follow.
func encodePair(code *ecc.Code, x, y []byte) (cx, cy []byte, err error) {
	sc := code.NewEncodeScratch()
	if cx, err = code.EncodeInto(x, nil, sc); err != nil {
		return nil, nil, err
	}
	if cy, err = code.EncodeInto(y, nil, sc); err != nil {
		return nil, nil, err
	}
	return cx, cy, nil
}

// EstimateRejectProbParallel is EstimateRejectProb with the codewords
// computed once and the trials fanned across workers (0 means GOMAXPROCS).
func (e *Equality) EstimateRejectProbParallel(x, y []byte, trials, workers int, r *rng.RNG) (float64, error) {
	if trials <= 0 {
		return 0, nil
	}
	cx, cy, err := encodePair(e.code, x, y)
	if err != nil {
		return 0, err
	}
	base := r.Uint64()
	rejects, err := countParallel(trials, workers, base, func() func(int, *rng.RNG) (bool, error) {
		return func(_ int, gen *rng.RNG) (bool, error) {
			return !e.runPrepared(cx, cy, gen), nil
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(rejects) / float64(trials), nil
}

// runPrepared is one chunk-protocol run on pre-encoded inputs. It draws the
// same coins in the same order as Run (Alice's row and column, then Bob's)
// and decides identically, but only ever reads the single torus cell where
// the two chunks can intersect — the chunks themselves are never
// materialized.
func (e *Equality) runPrepared(cx, cy []byte, r *rng.RNG) bool {
	aRow, aCol := r.Intn(e.grid), r.Intn(e.grid)
	bRow, bCol := r.Intn(e.grid), r.Intn(e.grid)
	di := (bRow - aRow + e.grid) % e.grid // index into Alice's chunk
	dj := (aCol - bCol + e.grid) % e.grid // index into Bob's chunk
	if di >= e.t || dj >= e.t {
		return true // no intersection
	}
	// The shared cell is (bRow, aCol): Alice's chunk reaches it walking down
	// column aCol, Bob's walking across row bRow.
	return e.bitAt(cx, bRow, aCol) == e.bitAt(cy, bRow, aCol)
}

// EstimateRejectProbParallel is SingleCellEquality.EstimateRejectProb with
// the codewords computed once and the trials fanned across workers.
func (s *SingleCellEquality) EstimateRejectProbParallel(x, y []byte, trials, workers int, r *rng.RNG) (float64, error) {
	if trials <= 0 {
		return 0, nil
	}
	cx, cy, err := encodePair(s.code, x, y)
	if err != nil {
		return 0, err
	}
	m := s.code.CodeBits()
	base := r.Uint64()
	type probe struct {
		idx int
		bit bool
	}
	rejects, err := countParallel(trials, workers, base, func() func(int, *rng.RNG) (bool, error) {
		alice := make([]probe, s.reps)
		bob := make([]probe, s.reps)
		return func(_ int, gen *rng.RNG) (bool, error) {
			for i := 0; i < s.reps; i++ {
				ai := gen.Intn(m)
				bi := gen.Intn(m)
				alice[i] = probe{idx: ai, bit: ecc.Bit(cx, ai)}
				bob[i] = probe{idx: bi, bit: ecc.Bit(cy, bi)}
			}
			for _, a := range alice {
				for _, b := range bob {
					if a.idx == b.idx && a.bit != b.bit {
						return true, nil
					}
				}
			}
			return false, nil
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(rejects) / float64(trials), nil
}

// EstimateAcceptProbParallel is EstimateAcceptProb with the codewords and
// the tester hoisted out of the trial loop: inputs are encoded once per
// call and each worker builds the tester once and reuses one sample buffer.
func (e *EqualityFromTester) EstimateAcceptProbParallel(x, y []byte, trials, workers int, r *rng.RNG) (float64, error) {
	if trials <= 0 {
		return 0, nil
	}
	cx, cy, err := encodePair(e.code, x, y)
	if err != nil {
		return 0, err
	}
	base := r.Uint64()
	accepts, err := countParallel(trials, workers, base, func() func(int, *rng.RNG) (bool, error) {
		var (
			t       tester.Tester
			samples []int
			initErr error
		)
		t, initErr = e.build(e.Domain())
		if initErr == nil {
			samples = make([]int, t.SampleSize())
		}
		return func(_ int, gen *rng.RNG) (bool, error) {
			if initErr != nil {
				return false, initErr
			}
			for i := range samples {
				// Interleave as in Run: even positions from Alice's µ_X, odd
				// from Bob's ν_Y.
				coord := gen.Intn(e.m)
				if i%2 == 0 {
					bit := 0
					if ecc.Bit(cx, coord) {
						bit = 1
					}
					samples[i] = 2*coord + bit
				} else {
					bit := 1
					if ecc.Bit(cy, coord) {
						bit = 0
					}
					samples[i] = 2*coord + bit
				}
			}
			return t.Test(samples), nil
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(accepts) / float64(trials), nil
}
