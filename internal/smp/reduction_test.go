package smp

import (
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func TestTrivialEquality(t *testing.T) {
	te, err := NewTrivialEquality(64)
	if err != nil {
		t.Fatal(err)
	}
	x := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	y := append([]byte(nil), x...)
	acc, err := te.Run(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !acc {
		t.Error("equal inputs rejected")
	}
	y[3] ^= 0x10
	acc, err = te.Run(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc {
		t.Error("unequal inputs accepted")
	}
	if te.MessageBits() != 64 {
		t.Errorf("cost %d, want 64", te.MessageBits())
	}
	if _, err := te.Run([]byte{1}, y, nil); err == nil {
		t.Error("short input accepted")
	}
	if _, err := NewTrivialEquality(0); err == nil {
		t.Error("nBits=0 accepted")
	}
}

func TestSingleCellEqualityCompleteness(t *testing.T) {
	sc, err := NewSingleCellEquality(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	x := make([]byte, 16)
	for i := range x {
		x[i] = byte(i)
	}
	for trial := 0; trial < 2000; trial++ {
		acc, err := sc.Run(x, x, r)
		if err != nil {
			t.Fatal(err)
		}
		if !acc {
			t.Fatal("equal inputs rejected")
		}
	}
}

func TestSingleCellEqualityDetectionGrowsWithReps(t *testing.T) {
	r := rng.New(7)
	x := make([]byte, 16)
	y := make([]byte, 16)
	y[0] = 1
	prev := -1.0
	for _, reps := range []int{4, 32, 128} {
		sc, err := NewSingleCellEquality(128, reps)
		if err != nil {
			t.Fatal(err)
		}
		rej, err := sc.EstimateRejectProb(x, y, 4000, r)
		if err != nil {
			t.Fatal(err)
		}
		if rej < prev {
			t.Fatalf("reps=%d: rejection %v decreased from %v", reps, rej, prev)
		}
		prev = rej
	}
	if prev < 0.2 {
		t.Errorf("128 probes detect a far pair with prob only %v", prev)
	}
}

func TestSingleCellEqualityValidation(t *testing.T) {
	if _, err := NewSingleCellEquality(0, 4); err == nil {
		t.Error("nBits=0 accepted")
	}
	if _, err := NewSingleCellEquality(64, 0); err == nil {
		t.Error("reps=0 accepted")
	}
}

func buildGapTester(delta float64) func(domain int) (tester.Tester, error) {
	return func(domain int) (tester.Tester, error) {
		// The reduction guarantees a 1/6 L1 gap; ε = 1/6 in the tester.
		return tester.NewSingleCollision(domain, delta, 1.0/6)
	}
}

func TestReductionGapIsSixth(t *testing.T) {
	e, err := NewEqualityFromTester(96, buildGapTester(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Gap() < 1.0/6 {
		t.Fatalf("reduction gap %v < 1/6", e.Gap())
	}
	if e.Domain() != 2*24*16 { // 96 bits → 8 symbols → RS 16 → ×24 bits = 384; domain 768
		t.Fatalf("domain %d, want 768", e.Domain())
	}
}

func TestReductionEqualInputsLookUniform(t *testing.T) {
	// With X = Y the referee's merged stream is perfectly uniform on [2m],
	// so the tester's acceptance probability must match its completeness
	// 1 − δ.
	delta := 0.1
	e, err := NewEqualityFromTester(96, buildGapTester(delta))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	x := make([]byte, 12)
	for i := range x {
		x[i] = byte(3 * i)
	}
	acc, err := e.EstimateAcceptProb(x, x, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 1-delta-0.02 {
		t.Fatalf("equal inputs accepted with prob %v, want ≥ %v", acc, 1-delta)
	}
}

func TestReductionUnequalInputsRejectedMoreOften(t *testing.T) {
	// The (δ, 1+γε²)-gap must survive the reduction: unequal inputs are
	// rejected strictly more often than equal ones.
	delta := 0.2
	e, err := NewEqualityFromTester(96, buildGapTester(delta))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	x := make([]byte, 12)
	y := append([]byte(nil), x...)
	y[0] = 0xff // many flipped bits: well past the distance bound
	const trials = 40000
	accEq, err := e.EstimateAcceptProb(x, x, trials, r)
	if err != nil {
		t.Fatal(err)
	}
	accNeq, err := e.EstimateAcceptProb(x, y, trials, r)
	if err != nil {
		t.Fatal(err)
	}
	if accNeq >= accEq {
		t.Fatalf("no separation: accept(neq)=%v ≥ accept(eq)=%v", accNeq, accEq)
	}
}

func TestReductionMessageCost(t *testing.T) {
	// Theorem 7.1: cost = q·log(domain) bits, split across the two players.
	e, err := NewEqualityFromTester(96, buildGapTester(0.1))
	if err != nil {
		t.Fatal(err)
	}
	bits, err := e.MessageBits()
	if err != nil {
		t.Fatal(err)
	}
	inner, err := buildGapTester(0.1)(e.Domain())
	if err != nil {
		t.Fatal(err)
	}
	logD := 1
	for 1<<logD < e.Domain() {
		logD++
	}
	want := (inner.SampleSize() + 1) / 2 * logD
	if bits != want {
		t.Fatalf("cost %d, want %d", bits, want)
	}
}

func TestReductionValidation(t *testing.T) {
	if _, err := NewEqualityFromTester(0, buildGapTester(0.1)); err == nil {
		t.Error("nBits=0 accepted")
	}
	if _, err := NewEqualityFromTester(64, nil); err == nil {
		t.Error("nil constructor accepted")
	}
}

func BenchmarkReductionRun(b *testing.B) {
	e, err := NewEqualityFromTester(96, buildGapTester(0.1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	x := make([]byte, 12)
	y := make([]byte, 12)
	y[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(x, y, r); err != nil {
			b.Fatal(err)
		}
	}
}
