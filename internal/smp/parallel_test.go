package smp

import (
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func testInputs(t *testing.T, nBits int) (x, y []byte) {
	t.Helper()
	nBytes := (nBits + 7) / 8
	x = make([]byte, nBytes)
	y = make([]byte, nBytes)
	for i := range x {
		x[i] = byte(37*i + 5)
		y[i] = byte(91*i + 2)
	}
	return x, y
}

// pinWorkerInvariance runs est at several worker counts from identical
// caller streams and requires identical estimates and identical caller-RNG
// advancement.
func pinWorkerInvariance(t *testing.T, name string, est func(workers int, r *rng.RNG) (float64, error)) {
	t.Helper()
	type outcome struct {
		est  float64
		next uint64
	}
	var want outcome
	for i, workers := range []int{1, 2, 3, 8} {
		r := rng.New(19)
		got, err := est(workers, r)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", name, workers, err)
		}
		o := outcome{est: got, next: r.Uint64()}
		if i == 0 {
			want = o
			continue
		}
		if o != want {
			t.Fatalf("%s workers=%d: (est=%v next=%d), want (est=%v next=%d)",
				name, workers, o.est, o.next, want.est, want.next)
		}
	}
}

func TestEqualityParallelWorkerInvariant(t *testing.T) {
	e, err := NewEquality(512, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, y := testInputs(t, 512)
	pinWorkerInvariance(t, "chunk", func(workers int, r *rng.RNG) (float64, error) {
		return e.EstimateRejectProbParallel(x, y, 400, workers, r)
	})
}

func TestEqualityParallelMatchesGuarantees(t *testing.T) {
	e, err := NewEquality(512, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, y := testInputs(t, 512)
	r := rng.New(3)
	// Equal inputs are never rejected.
	rejEq, err := e.EstimateRejectProbParallel(x, x, 500, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if rejEq != 0 {
		t.Fatalf("equal inputs rejected with probability %v", rejEq)
	}
	// Unequal inputs are rejected at least at the guaranteed rate (with
	// slack for sampling noise over 4000 trials).
	rejNeq, err := e.EstimateRejectProbParallel(x, y, 4000, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if rejNeq < e.GuaranteedReject()*0.5 {
		t.Fatalf("unequal inputs rejected with probability %v < half the guarantee %v",
			rejNeq, e.GuaranteedReject())
	}
}

// TestRunPreparedMatchesRun pins that the prepared fast path decides every
// trial exactly as the message-materializing Run does on the same coins.
func TestRunPreparedMatchesRun(t *testing.T) {
	e, err := NewEquality(512, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, y := testInputs(t, 512)
	cx, cy, err := encodePair(e.code, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2][]byte{{x, y}, {x, x}} {
		ca, cb := cx, cy
		if &pair[1][0] == &x[0] {
			cb = cx
		}
		for seed := uint64(0); seed < 200; seed++ {
			r1, r2 := rng.New(seed), rng.New(seed)
			want, err := e.Run(pair[0], pair[1], r1)
			if err != nil {
				t.Fatal(err)
			}
			if got := e.runPrepared(ca, cb, r2); got != want {
				t.Fatalf("seed %d: runPrepared=%v, Run=%v", seed, got, want)
			}
			if r1.Uint64() != r2.Uint64() {
				t.Fatalf("seed %d: coin streams diverged", seed)
			}
		}
	}
}

func TestSingleCellParallelWorkerInvariant(t *testing.T) {
	s, err := NewSingleCellEquality(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	x, y := testInputs(t, 512)
	pinWorkerInvariance(t, "singlecell", func(workers int, r *rng.RNG) (float64, error) {
		return s.EstimateRejectProbParallel(x, y, 400, workers, r)
	})
	// Equal inputs are never rejected.
	rej, err := s.EstimateRejectProbParallel(x, x, 300, 0, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if rej != 0 {
		t.Fatalf("equal inputs rejected with probability %v", rej)
	}
}

func TestReductionParallelWorkerInvariant(t *testing.T) {
	build := func(domain int) (tester.Tester, error) {
		return tester.NewSingleCollision(domain, 0.1, 1.0/6)
	}
	e, err := NewEqualityFromTester(128, build)
	if err != nil {
		t.Fatal(err)
	}
	x, y := testInputs(t, 128)
	pinWorkerInvariance(t, "reduction", func(workers int, r *rng.RNG) (float64, error) {
		return e.EstimateAcceptProbParallel(x, y, 60, workers, r)
	})
	// Sanity: equal inputs make the mixture exactly uniform, so acceptance
	// should be high.
	acc, err := e.EstimateAcceptProbParallel(x, x, 120, 0, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("equal-input acceptance %v < 0.5", acc)
	}
}
