// Package smp implements the simultaneous-message-passing (SMP) protocol
// for Equality with asymmetric error from Lemma 7.3: Alice and Bob hold
// n-bit inputs X and Y, each sends one short private-coin message to a
// referee, and the referee outputs 1 ("equal") or 0.
//
// Construction (following the paper's proof, with the Justesen code
// replaced by the concatenated code of package ecc): both players encode
// their input with a binary code C of relative distance ≥ 1/6, view the
// padded codeword as a g×g torus, and send a random axis-aligned chunk of
// t bits — Alice a vertical chunk, Bob a horizontal one. The chunks
// intersect in at most one cell; when they do, the referee compares the two
// bits there. Equal inputs are always accepted; inputs with X ≠ Y are
// rejected with probability ≥ (t²/m)·(d/m) ≥ τδ for t = ⌈√(τδ·m²/d)⌉.
package smp

import (
	"fmt"
	"math"

	"github.com/unifdist/unifdist/internal/ecc"
	"github.com/unifdist/unifdist/internal/rng"
)

// Message is one player's message to the referee: the chunk's starting
// cell plus t codeword bits.
type Message struct {
	// Row, Col are the torus coordinates of the chunk's first bit.
	Row, Col int
	// Bits is the chunk, length t: Alice's chunk walks down the rows of
	// one column, Bob's walks across the columns of one row.
	Bits []bool
}

// Equality is the Lemma 7.3 protocol for inputs of a fixed bit length.
type Equality struct {
	nBits int
	code  *ecc.Code
	grid  int // torus side g (m = g²)
	t     int // chunk length
	delta float64
	tau   float64
}

// NewEquality builds the protocol for nBits-bit inputs with target error
// profile (1−τδ, δ): equal inputs accepted always (≥ 1−δ), unequal inputs
// rejected with probability ≥ τδ.
func NewEquality(nBits int, delta, tau float64) (*Equality, error) {
	if nBits < 1 {
		return nil, fmt.Errorf("smp: nBits=%d < 1", nBits)
	}
	if delta <= 0 || tau <= 1 || tau*delta > 1 {
		return nil, fmt.Errorf("smp: need δ > 0, τ > 1, τδ ≤ 1 (got δ=%v τ=%v)", delta, tau)
	}
	code, err := ecc.NewCode(nBits)
	if err != nil {
		return nil, fmt.Errorf("smp: %w", err)
	}
	// Pad the codeword to the next torus m = g². (The paper uses
	// m = (6m₀)²; any perfect square works as long as the distance fraction
	// d/m is used exactly, which the t computation below does.)
	grid := int(math.Ceil(math.Sqrt(float64(code.CodeBits()))))
	m := grid * grid
	// Rejection probability ≥ (t²/m)·(d/m) ⇒ t = ⌈√(τδ·m²/d)⌉.
	d := float64(code.MinDistance())
	t := int(math.Ceil(math.Sqrt(tau * delta * float64(m) * float64(m) / d)))
	if t < 1 {
		t = 1
	}
	if t > grid {
		return nil, fmt.Errorf("smp: parameters need chunk %d > torus side %d; τδ=%v too large for n=%d",
			t, grid, tau*delta, nBits)
	}
	return &Equality{
		nBits: nBits,
		code:  code,
		grid:  grid,
		t:     t,
		delta: delta,
		tau:   tau,
	}, nil
}

// ChunkLen returns the chunk length t = Θ(√(τδn)).
func (e *Equality) ChunkLen() int { return e.t }

// Grid returns the torus side length g.
func (e *Equality) Grid() int { return e.grid }

// MessageBits returns the worst-case message cost in bits: two coordinates
// plus the chunk.
func (e *Equality) MessageBits() int {
	coord := int(math.Ceil(math.Log2(float64(e.grid))))
	return 2*coord + e.t
}

// CostBound returns the Lemma 7.3 upper bound O(√(δn)) (for constant τ)
// against which the experiment tables compare MessageBits.
func (e *Equality) CostBound() float64 {
	return math.Sqrt(e.tau*e.delta*float64(e.nBits))*10 + 2*math.Log2(float64(e.grid)) + 10
}

// AliceMessage encodes x and returns a random vertical chunk.
func (e *Equality) AliceMessage(x []byte, r *rng.RNG) (Message, error) {
	cw, err := e.code.Encode(x)
	if err != nil {
		return Message{}, err
	}
	row, col := r.Intn(e.grid), r.Intn(e.grid)
	bits := make([]bool, e.t)
	for i := range bits {
		bits[i] = e.bitAt(cw, (row+i)%e.grid, col)
	}
	return Message{Row: row, Col: col, Bits: bits}, nil
}

// BobMessage encodes y and returns a random horizontal chunk.
func (e *Equality) BobMessage(y []byte, r *rng.RNG) (Message, error) {
	cw, err := e.code.Encode(y)
	if err != nil {
		return Message{}, err
	}
	row, col := r.Intn(e.grid), r.Intn(e.grid)
	bits := make([]bool, e.t)
	for i := range bits {
		bits[i] = e.bitAt(cw, row, (col+i)%e.grid)
	}
	return Message{Row: row, Col: col, Bits: bits}, nil
}

// Referee outputs the protocol's decision: if the vertical and horizontal
// chunks share a torus cell, accept iff the two bits there agree;
// otherwise accept.
func (e *Equality) Referee(alice, bob Message) bool {
	// The shared cell, if any, is (bob.Row, alice.Col).
	di := (bob.Row - alice.Row + e.grid) % e.grid // index into Alice's chunk
	dj := (alice.Col - bob.Col + e.grid) % e.grid // index into Bob's chunk
	if di >= e.t || dj >= e.t {
		return true // no intersection
	}
	return alice.Bits[di] == bob.Bits[dj]
}

// Run executes one protocol instance end to end.
func (e *Equality) Run(x, y []byte, r *rng.RNG) (bool, error) {
	a, err := e.AliceMessage(x, r)
	if err != nil {
		return false, err
	}
	b, err := e.BobMessage(y, r)
	if err != nil {
		return false, err
	}
	return e.Referee(a, b), nil
}

// EstimateRejectProb measures the empirical rejection probability on a
// fixed input pair over trials runs.
func (e *Equality) EstimateRejectProb(x, y []byte, trials int, r *rng.RNG) (float64, error) {
	rejects := 0
	for i := 0; i < trials; i++ {
		acc, err := e.Run(x, y, r)
		if err != nil {
			return 0, err
		}
		if !acc {
			rejects++
		}
	}
	return float64(rejects) / float64(trials), nil
}

// GuaranteedReject returns the protocol's lower bound τδ on the rejection
// probability of unequal inputs.
func (e *Equality) GuaranteedReject() float64 { return e.tau * e.delta }

// bitAt reads torus cell (row, col) of a padded codeword (cells beyond the
// codeword are zero padding).
func (e *Equality) bitAt(cw []byte, row, col int) bool {
	pos := row*e.grid + col
	if pos >= e.code.CodeBits() {
		return false
	}
	return ecc.Bit(cw, pos)
}
