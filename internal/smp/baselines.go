package smp

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/ecc"
	"github.com/unifdist/unifdist/internal/rng"
)

// This file holds the comparison protocols for experiment E14: the trivial
// deterministic protocol (send everything) and the classical
// constant-error simultaneous protocol in the style of Ambainis [2]
// (each player sends one random codeword cell; the referee compares when
// the cells coincide), against which Lemma 7.3's asymmetric-error chunk
// protocol is measured.

// TrivialEquality is the deterministic SMP protocol: both players send
// their full input and the referee compares. Zero error, n bits per
// message.
type TrivialEquality struct {
	nBits int
}

// NewTrivialEquality builds the protocol for nBits-bit inputs.
func NewTrivialEquality(nBits int) (*TrivialEquality, error) {
	if nBits < 1 {
		return nil, fmt.Errorf("smp: nBits=%d < 1", nBits)
	}
	return &TrivialEquality{nBits: nBits}, nil
}

// MessageBits returns the per-player cost n.
func (t *TrivialEquality) MessageBits() int { return t.nBits }

// Run compares the inputs exactly.
func (t *TrivialEquality) Run(x, y []byte, _ *rng.RNG) (bool, error) {
	want := (t.nBits + 7) / 8
	if len(x) < want || len(y) < want {
		return false, fmt.Errorf("smp: inputs shorter than %d bytes", want)
	}
	for i := 0; i < t.nBits; i++ {
		if ecc.Bit(x, i) != ecc.Bit(y, i) {
			return false, nil
		}
	}
	return true, nil
}

// SingleCellEquality is the classical constant-gap private-coin protocol:
// each player sends one uniformly random cell (index, bit) of its
// codeword; when the indices coincide (probability 1/m) the referee
// compares the bits. Repeating r times drives Pr[detect | X≠Y] to
// ≈ 1 − (1 − d/(6m)·…)^r; with r = Θ(√m) repetitions arranged as in [2]
// the classical O(√n) bound is recovered. Here the repetitions parameter
// is explicit so E14 can chart the error/cost trade-off.
type SingleCellEquality struct {
	nBits int
	code  *ecc.Code
	reps  int
}

// NewSingleCellEquality builds the protocol with the given number of
// independent cell probes per player.
func NewSingleCellEquality(nBits, reps int) (*SingleCellEquality, error) {
	if nBits < 1 {
		return nil, fmt.Errorf("smp: nBits=%d < 1", nBits)
	}
	if reps < 1 {
		return nil, fmt.Errorf("smp: reps=%d < 1", reps)
	}
	code, err := ecc.NewCode(nBits)
	if err != nil {
		return nil, err
	}
	return &SingleCellEquality{nBits: nBits, code: code, reps: reps}, nil
}

// MessageBits returns the per-player cost: reps × (index + bit).
func (s *SingleCellEquality) MessageBits() int {
	idxBits := 1
	for 1<<idxBits < s.code.CodeBits() {
		idxBits++
	}
	return s.reps * (idxBits + 1)
}

// Run executes the protocol: the players probe reps random cells each; the
// referee rejects iff some coinciding index carries differing bits.
func (s *SingleCellEquality) Run(x, y []byte, r *rng.RNG) (bool, error) {
	cx, err := s.code.Encode(x)
	if err != nil {
		return false, err
	}
	cy, err := s.code.Encode(y)
	if err != nil {
		return false, err
	}
	m := s.code.CodeBits()
	type probe struct {
		idx int
		bit bool
	}
	alice := make([]probe, s.reps)
	bob := make([]probe, s.reps)
	for i := 0; i < s.reps; i++ {
		ai := r.Intn(m)
		bi := r.Intn(m)
		alice[i] = probe{idx: ai, bit: ecc.Bit(cx, ai)}
		bob[i] = probe{idx: bi, bit: ecc.Bit(cy, bi)}
	}
	for _, a := range alice {
		for _, b := range bob {
			if a.idx == b.idx && a.bit != b.bit {
				return false, nil
			}
		}
	}
	return true, nil
}

// EstimateRejectProb measures the empirical rejection probability on a
// fixed input pair.
func (s *SingleCellEquality) EstimateRejectProb(x, y []byte, trials int, r *rng.RNG) (float64, error) {
	rejects := 0
	for i := 0; i < trials; i++ {
		acc, err := s.Run(x, y, r)
		if err != nil {
			return 0, err
		}
		if !acc {
			rejects++
		}
	}
	return float64(rejects) / float64(trials), nil
}
