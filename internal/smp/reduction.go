package smp

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/ecc"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

// This file implements the reduction behind Theorem 7.1 ([Blais–Canonne–
// Gur 2017]): a q-sample uniformity tester yields a simultaneous Equality
// protocol with cost q·log n. It is the bridge the paper crosses to turn
// its Equality lower bound (Theorem 7.2) into the uniformity-testing lower
// bound (Corollary 7.4); running it forward demonstrates the connection
// operationally and is measured in experiment E13.
//
// Construction. Both players encode their inputs with the distance-1/6
// code C into m bits and define distributions on [2m]:
//
//	µ_X(2i + C(X)_i)     = 1/m   (Alice puts mass on cell "bit value"),
//	ν_Y(2i + 1 − C(Y)_i) = 1/m   (Bob puts mass on the complement cell).
//
// If X = Y the mixture (µ_X + ν_Y)/2 is exactly uniform on [2m]: each
// pair {2i, 2i+1} receives its two masses on opposite cells. If X ≠ Y, at
// least m/6 coordinates place both masses on the same cell, leaving the
// sibling cell empty, so the mixture is at least 1/6-far from uniform in
// L1. Each player samples its own distribution with private randomness
// and sends the samples (⌈log 2m⌉ bits each); the referee interleaves the
// two streams and feeds them to the uniformity tester.

// EqualityFromTester is an SMP Equality protocol built from a black-box
// uniformity tester via the Theorem 7.1 reduction.
type EqualityFromTester struct {
	nBits int
	code  *ecc.Code
	m     int // codeword length; the tester's domain is 2m
	build func(domain int) (tester.Tester, error)
}

// NewEqualityFromTester wraps a tester constructor. The constructor
// receives the reduction's domain size 2m and must return a tester whose
// distance parameter is at most the reduction's gap 1/6 (wired by the
// caller).
func NewEqualityFromTester(nBits int, build func(domain int) (tester.Tester, error)) (*EqualityFromTester, error) {
	if nBits < 1 {
		return nil, fmt.Errorf("smp: nBits=%d < 1", nBits)
	}
	if build == nil {
		return nil, fmt.Errorf("smp: nil tester constructor")
	}
	code, err := ecc.NewCode(nBits)
	if err != nil {
		return nil, err
	}
	return &EqualityFromTester{
		nBits: nBits,
		code:  code,
		m:     code.CodeBits(),
		build: build,
	}, nil
}

// Domain returns the tester's domain size 2m.
func (e *EqualityFromTester) Domain() int { return 2 * e.m }

// Gap returns the guaranteed L1 distance of the mixture from uniform when
// X ≠ Y: 2·d/(2m) ≥ 1/6 for the concatenated code.
func (e *EqualityFromTester) Gap() float64 {
	return float64(e.code.MinDistance()) / float64(e.m)
}

// MessageBits returns the per-player cost: q/2 samples of ⌈log 2m⌉ bits,
// where q is the tester's sample complexity — Theorem 7.1's q·log n.
func (e *EqualityFromTester) MessageBits() (int, error) {
	t, err := e.build(e.Domain())
	if err != nil {
		return 0, err
	}
	logDomain := 1
	for 1<<logDomain < e.Domain() {
		logDomain++
	}
	q := t.SampleSize()
	return (q + 1) / 2 * logDomain, nil
}

// Run executes the protocol: each player samples its derived distribution
// and the referee runs the tester on the interleaved streams, accepting
// iff the tester says "uniform".
func (e *EqualityFromTester) Run(x, y []byte, r *rng.RNG) (bool, error) {
	t, err := e.build(e.Domain())
	if err != nil {
		return false, err
	}
	cx, err := e.code.Encode(x)
	if err != nil {
		return false, err
	}
	cy, err := e.code.Encode(y)
	if err != nil {
		return false, err
	}
	q := t.SampleSize()
	samples := make([]int, q)
	for i := range samples {
		// Interleave: even positions from Alice's µ_X, odd from Bob's ν_Y.
		// (A uniformly random interleaving would match the mixture exactly;
		// the referee's alternating merge is the standard stratified
		// surrogate and only reduces the variance of the per-pair counts.)
		coord := r.Intn(e.m)
		if i%2 == 0 {
			bit := 0
			if ecc.Bit(cx, coord) {
				bit = 1
			}
			samples[i] = 2*coord + bit
		} else {
			bit := 1
			if ecc.Bit(cy, coord) {
				bit = 0
			}
			samples[i] = 2*coord + bit
		}
	}
	return t.Test(samples), nil
}

// EstimateAcceptProb measures the empirical acceptance probability on a
// fixed input pair.
func (e *EqualityFromTester) EstimateAcceptProb(x, y []byte, trials int, r *rng.RNG) (float64, error) {
	accepts := 0
	for i := 0; i < trials; i++ {
		acc, err := e.Run(x, y, r)
		if err != nil {
			return 0, err
		}
		if acc {
			accepts++
		}
	}
	return float64(accepts) / float64(trials), nil
}
