package zeroround

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func TestANDRule(t *testing.T) {
	r := ANDRule{}
	if !r.Accept(0, 10) {
		t.Error("no rejections should accept")
	}
	if r.Accept(1, 10) {
		t.Error("one rejection should reject")
	}
	if r.Accept(10, 10) {
		t.Error("all rejections should reject")
	}
}

func TestThresholdRule(t *testing.T) {
	r := ThresholdRule{T: 3}
	if !r.Accept(0, 10) || !r.Accept(2, 10) {
		t.Error("below threshold should accept")
	}
	if r.Accept(3, 10) || r.Accept(10, 10) {
		t.Error("at/above threshold should reject")
	}
}

func TestRuleMonotonicity(t *testing.T) {
	// Both rules are monotone: more rejections never flips reject→accept.
	f := func(tRaw, r1Raw, r2Raw uint8) bool {
		k := 50
		thr := ThresholdRule{T: int(tRaw%50) + 1}
		r1, r2 := int(r1Raw)%51, int(r2Raw)%51
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		if !thr.Accept(r1, k) && thr.Accept(r2, k) {
			return false
		}
		and := ANDRule{}
		return !(!and.Accept(r1, k) && and.Accept(r2, k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(nil, ANDRule{}); err == nil {
		t.Error("empty network accepted")
	}
	sc, err := tester.NewSingleCollision(100, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetwork([]tester.Tester{sc}, nil); err == nil {
		t.Error("nil rule accepted")
	}
}

func TestCP(t *testing.T) {
	// For p = 1/3: C_p = ln 3 / ln 1.5 ≈ 2.7095 (paper: "α ≈ 2.7").
	got := CP(1.0 / 3)
	if math.Abs(got-2.7095) > 0.001 {
		t.Fatalf("C_{1/3} = %v, want ≈ 2.7095", got)
	}
	// C_p grows as p shrinks (harder target ⇒ bigger gap needed).
	if CP(0.1) <= CP(1.0/3) {
		t.Error("C_p should increase as p decreases")
	}
}

func TestSolveANDBasics(t *testing.T) {
	cfg, err := SolveAND(1<<20, 1000, 1, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.M < 1 {
		t.Fatalf("m = %d", cfg.M)
	}
	if cfg.SamplesPerNode < 2 {
		t.Fatalf("samples per node = %d", cfg.SamplesPerNode)
	}
	if cfg.RequiredGap < 2.7 || cfg.RequiredGap > 2.72 {
		t.Fatalf("required gap = %v", cfg.RequiredGap)
	}
}

func TestSolveANDSampleSavings(t *testing.T) {
	// Theorem 1.1's point: in the feasible regime, per-node samples shrink
	// as k grows (fixed n, eps) and stay well below a solo tester's
	// Θ(√n/ε²). With ε=1 the rigorous constants need k ≳ 10⁴.
	n, eps := 1<<24, 1.0
	single, err := tester.SolveGap(n, 0.5, eps)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.MaxInt
	for _, k := range []int{10000, 100000, 1000000} {
		cfg, err := SolveAND(n, k, eps, 1.0/3)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Feasible {
			t.Fatalf("k=%d: expected feasible config, got %+v", k, cfg)
		}
		if cfg.SamplesPerNode >= prev {
			t.Errorf("k=%d: samples %d did not decrease from %d", k, cfg.SamplesPerNode, prev)
		}
		if cfg.SamplesPerNode >= single.S {
			t.Errorf("k=%d: samples %d not below solo %d", k, cfg.SamplesPerNode, single.S)
		}
		prev = cfg.SamplesPerNode
	}
}

func TestSolveANDErrors(t *testing.T) {
	if _, err := SolveAND(1000, 0, 1, 1.0/3); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SolveAND(1000, 10, 1, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := SolveAND(1000, 10, 1, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := SolveAND(1000, 10, 0, 1.0/3); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestBuildANDSeparation(t *testing.T) {
	// Even in a non-rigorous (small) regime, the AND network must separate
	// uniform from far: it should reject the far instance strictly more
	// often. We use a regime where the node gap is meaningful.
	n, k, eps := 1<<16, 64, 1.0
	cfg, err := SolveAND(n, k, eps, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildAND(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nw.K() != k {
		t.Fatalf("network size %d, want %d", nw.K(), k)
	}
	r := rng.New(7)
	const trials = 150
	errU := nw.EstimateError(dist.NewUniform(n), true, trials, r)
	errFar := nw.EstimateError(dist.NewTwoBump(n, eps, 3), false, trials, r)
	// errU = Pr[some node rejects uniform]; errFar = Pr[no node rejects far].
	// Separation: accepting far must be less likely than accepting uniform.
	if 1-errU <= errFar {
		t.Fatalf("no separation: accept-uniform %v ≤ accept-far %v", 1-errU, errFar)
	}
}

func TestSolveThresholdBasics(t *testing.T) {
	cfg, err := SolveThreshold(1<<16, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Fatalf("expected feasible config, got %+v", cfg)
	}
	if cfg.T < 1 {
		t.Fatalf("T = %d", cfg.T)
	}
	if cfg.EtaFar <= cfg.EtaUniform {
		t.Fatalf("ηFar %v ≤ ηU %v", cfg.EtaFar, cfg.EtaUniform)
	}
	// T must sit strictly between the two expectations.
	if float64(cfg.T) <= cfg.EtaUniform || float64(cfg.T) >= cfg.EtaFar {
		t.Fatalf("T=%d outside (ηU=%v, ηFar=%v)", cfg.T, cfg.EtaUniform, cfg.EtaFar)
	}
}

func TestSolveThresholdScaling(t *testing.T) {
	// Theorem 1.2: s = Θ(√(n/k)/ε²). Quadrupling k should roughly halve s.
	cfg1, err := SolveThreshold(1<<20, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := SolveThreshold(1<<20, 32000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(cfg1.SamplesPerNode) / float64(cfg2.SamplesPerNode)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("4×k changed s by %vx, want ~2x", ratio)
	}
	// T is Θ(1/ε⁴), independent of k.
	if d := math.Abs(float64(cfg1.T-cfg2.T)) / float64(cfg1.T); d > 0.25 {
		t.Errorf("T changed by %v%% with k; should be k-independent", d*100)
	}
}

func TestSolveThresholdErrors(t *testing.T) {
	if _, err := SolveThreshold(1000, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SolveThreshold(1000, 10, -1); err == nil {
		t.Error("eps<0 accepted")
	}
}

func TestThresholdNetworkErrorBound(t *testing.T) {
	// Theorem 1.2 end-to-end: error ≤ 1/3 on both sides in a feasible
	// regime.
	n, k, eps := 1<<16, 8000, 1.0
	cfg, err := SolveThreshold(n, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible {
		t.Skipf("regime infeasible: %+v", cfg)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	const trials = 60
	errU := nw.EstimateError(dist.NewUniform(n), true, trials, r)
	errFar := nw.EstimateError(dist.NewTwoBump(n, eps, 5), false, trials, r)
	if errU > 1.0/3 {
		t.Errorf("uniform error %v > 1/3", errU)
	}
	if errFar > 1.0/3 {
		t.Errorf("far error %v > 1/3", errFar)
	}
}

func TestRunReturnsRejectCounts(t *testing.T) {
	n := 1 << 16
	cfg, err := SolveThreshold(n, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	_, rejects := nw.Run(dist.NewUniform(n), r)
	if rejects < 0 || rejects > nw.K() {
		t.Fatalf("rejects = %d out of range [0, %d]", rejects, nw.K())
	}
}

func TestTotalAndMaxSamples(t *testing.T) {
	sc, err := tester.NewSingleCollision(1000, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	am, err := tester.NewAmplified(1000, 0.1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork([]tester.Tester{sc, am}, ANDRule{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nw.TotalSamples(), sc.SampleSize()+am.SampleSize(); got != want {
		t.Errorf("TotalSamples = %d, want %d", got, want)
	}
	if got, want := nw.MaxSamplesPerNode(), am.SampleSize(); got != want {
		t.Errorf("MaxSamplesPerNode = %d, want %d", got, want)
	}
}

func TestAsymmetricThresholdRecoversSymmetric(t *testing.T) {
	// Section 4: with all costs 1, ‖T‖₂ = √k and the per-node sample count
	// must match the symmetric solution up to rounding and the solvers'
	// shared constants.
	n, k, eps := 1<<20, 8000, 1.0
	costs := make([]float64, k)
	for i := range costs {
		costs[i] = 1
	}
	asym, err := SolveAsymmetricThreshold(n, eps, costs)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := SolveThreshold(n, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		if asym.Samples[i] != asym.Samples[0] {
			t.Fatalf("unit costs but asymmetric samples: node %d has %d vs %d", i, asym.Samples[i], asym.Samples[0])
		}
	}
	ratio := float64(asym.Samples[0]) / float64(sym.SamplesPerNode)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("asymmetric %d vs symmetric %d samples (ratio %v)", asym.Samples[0], sym.SamplesPerNode, ratio)
	}
	if got, want := asym.Norm, math.Sqrt(float64(k)); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("‖T‖₂ = %v, want √k = %v", got, want)
	}
}

func TestAsymmetricThresholdCostProportionality(t *testing.T) {
	// Expensive nodes must draw fewer samples; everyone pays ≈ the same
	// cost.
	n, eps := 1<<20, 1.0
	costs := []float64{1, 1, 2, 4, 8}
	// Replicate to a reasonable network size.
	full := make([]float64, 0, 1000)
	for len(full) < 1000 {
		full = append(full, costs...)
	}
	cfg, err := SolveAsymmetricThreshold(n, eps, full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		for j := range full {
			if full[i] < full[j] && cfg.Samples[i] < cfg.Samples[j] {
				t.Fatalf("node %d (cost %v) got %d samples < node %d (cost %v) with %d",
					i, full[i], cfg.Samples[i], j, full[j], cfg.Samples[j])
			}
		}
		if len(full) > 10 {
			break // pairwise check on the first node is enough
		}
	}
	// Realized max cost within rounding of the solver's C.
	if got := cfg.MaxCost(); got > cfg.Cost*1.5+8 {
		t.Errorf("max individual cost %v far above planned %v", got, cfg.Cost)
	}
}

func TestAsymmetricThresholdEndToEnd(t *testing.T) {
	n, eps := 1<<16, 1.0
	full := make([]float64, 2000)
	for i := range full {
		full[i] = 1 + float64(i%4) // costs 1..4
	}
	cfg, err := SolveAsymmetricThreshold(n, eps, full)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildAsymmetric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	const trials = 40
	errU := nw.EstimateError(dist.NewUniform(n), true, trials, r)
	errFar := nw.EstimateError(dist.NewTwoBump(n, eps, 21), false, trials, r)
	if errU > 0.4 {
		t.Errorf("uniform error %v too high", errU)
	}
	if errFar > 0.4 {
		t.Errorf("far error %v too high", errFar)
	}
}

func TestAsymmetricANDBasics(t *testing.T) {
	n, eps, p := 1<<20, 1.0, 1.0/3
	costs := []float64{1, 2, 4}
	cfg, err := SolveAsymmetricAND(n, eps, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.M < 1 {
		t.Fatalf("m = %d", cfg.M)
	}
	if cfg.T != 0 {
		t.Fatalf("AND config has threshold %d", cfg.T)
	}
	// Cheaper nodes draw at least as many samples.
	if cfg.Samples[0] < cfg.Samples[2] {
		t.Errorf("cost-1 node has %d samples < cost-4 node's %d", cfg.Samples[0], cfg.Samples[2])
	}
	// Completeness budget: Σδ_i should be ≈ ln(1/(1−p)) (it can be below
	// due to sample rounding, and is slightly above only via the min-clamp).
	total := 0.0
	for _, d := range cfg.Deltas {
		total += d
	}
	if total > 2*math.Log(1/(1-p)) {
		t.Errorf("Σδ = %v far above budget %v", total, math.Log(1/(1-p)))
	}
}

func TestAsymmetricANDUnitCostsNorm(t *testing.T) {
	n, eps, p := 1<<20, 1.0, 1.0/3
	k := 100
	costs := make([]float64, k)
	for i := range costs {
		costs[i] = 1
	}
	cfg, err := SolveAsymmetricAND(n, eps, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ‖T‖₂ₘ = k^{1/(2m)} for unit costs.
	want := math.Pow(float64(k), 1/float64(2*cfg.M))
	if math.Abs(cfg.Norm-want)/want > 1e-9 {
		t.Fatalf("‖T‖₂ₘ = %v, want %v", cfg.Norm, want)
	}
}

func TestAsymmetricErrors(t *testing.T) {
	if _, err := SolveAsymmetricThreshold(1000, 1, nil); err == nil {
		t.Error("empty costs accepted")
	}
	if _, err := SolveAsymmetricThreshold(1000, 1, []float64{1, 0}); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := SolveAsymmetricThreshold(1000, 3, []float64{1}); err == nil {
		t.Error("eps>2 accepted")
	}
	if _, err := SolveAsymmetricAND(1000, 1, 0.5, []float64{-1}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := SolveAsymmetricAND(1000, 1, 1.5, []float64{1}); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestBuildAsymmetricAND(t *testing.T) {
	n, eps, p := 1<<16, 1.0, 1.0/3
	costs := make([]float64, 32)
	for i := range costs {
		costs[i] = 1 + float64(i%2)
	}
	cfg, err := SolveAsymmetricAND(n, eps, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildAsymmetric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nw.K() != len(costs) {
		t.Fatalf("network size %d", nw.K())
	}
	if _, ok := nw.Rule().(ANDRule); !ok {
		t.Fatalf("rule %T, want ANDRule", nw.Rule())
	}
	r := rng.New(5)
	accept, _ := nw.Run(dist.NewUniform(n), r)
	_ = accept // smoke: must not panic
}

func BenchmarkThresholdNetworkRun(b *testing.B) {
	n, k := 1<<16, 1000
	cfg, err := SolveThreshold(n, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		b.Fatal(err)
	}
	u := dist.NewUniform(n)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = nw.Run(u, r)
	}
}

// TestEarlyDeciderMatchesAccept checks that Decided, whenever it claims the
// verdict is fixed, agrees with Accept for every completion of the
// remaining votes.
func TestEarlyDeciderMatchesAccept(t *testing.T) {
	const k = 12
	rules := []Rule{ANDRule{}, ThresholdRule{T: 1}, ThresholdRule{T: 4}, ThresholdRule{T: k}}
	for _, rule := range rules {
		ed, ok := rule.(EarlyDecider)
		if !ok {
			t.Fatalf("%s does not implement EarlyDecider", rule.Name())
		}
		for rejects := 0; rejects <= k; rejects++ {
			for remaining := 0; remaining <= k-rejects; remaining++ {
				accept, done := ed.Decided(rejects, remaining)
				if remaining == 0 && !done {
					t.Errorf("%s: Decided(%d, 0) not done", rule.Name(), rejects)
					continue
				}
				if !done {
					continue
				}
				// Every completion must yield the claimed verdict.
				for extra := 0; extra <= remaining; extra++ {
					if got := rule.Accept(rejects+extra, k); got != accept {
						t.Errorf("%s: Decided(%d, %d) = %v but Accept(%d) = %v",
							rule.Name(), rejects, remaining, accept, rejects+extra, got)
					}
				}
			}
		}
	}
}

// TestRunVerdictMatchesRunWith replays identical per-trial streams through
// the short-circuiting verdict path and the full-scan RunWith and demands
// identical verdicts under both rules.
func TestRunVerdictMatchesRunWith(t *testing.T) {
	const n = 1 << 10
	node, err := tester.NewSingleCollision(n, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]tester.Tester, 40)
	for i := range nodes {
		nodes[i] = node
	}
	for _, rule := range []Rule{ANDRule{}, ThresholdRule{T: 5}} {
		nw, err := NewNetwork(nodes, rule)
		if err != nil {
			t.Fatal(err)
		}
		sc := nw.NewScratch()
		for _, d := range []dist.Distribution{dist.NewUniform(n), dist.NewTwoBump(n, 1, 3)} {
			for trial := 0; trial < 60; trial++ {
				fast := nw.runVerdict(d, rng.At(9, uint64(trial)), sc)
				slow, _ := nw.RunWith(d, rng.At(9, uint64(trial)), sc)
				if fast != slow {
					t.Fatalf("%s trial %d: runVerdict = %v, RunWith = %v", rule.Name(), trial, fast, slow)
				}
			}
		}
	}
}
