package zeroround

import (
	"sync"
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

// estimateErrorParallelChannelRef is the pre-PR-2 trial engine, kept
// verbatim (modulo Run → RunWith(nil)) as the benchmark baseline: one
// generator pre-split per trial, one unbuffered channel send per trial, and
// a mutexed tally. BenchmarkEstimateParallelEngine measures the
// replacement; the delta is the dispatch overhead the chunked atomic engine
// removes.
func (nw *Network) estimateErrorParallelChannelRef(d dist.Distribution, wantAccept bool, trials, workers int, r *rng.RNG) float64 {
	if trials <= 0 {
		return 0
	}
	if workers > trials {
		workers = trials
	}
	gens := make([]*rng.RNG, trials)
	for i := range gens {
		gens[i] = r.Split()
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		wrong int
	)
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := 0
			for i := range next {
				if got, _ := nw.Run(d, gens[i]); got != wantAccept {
					local++
				}
			}
			mu.Lock()
			wrong += local
			mu.Unlock()
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return float64(wrong) / float64(trials)
}

// benchNetwork builds a small threshold network so the per-trial statistic
// is cheap and the engines' dispatch overhead dominates.
func benchNetwork(b *testing.B) (*Network, dist.Distribution) {
	b.Helper()
	cfg, err := SolveThreshold(1<<12, 200, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return nw, dist.NewUniform(1 << 12)
}

func BenchmarkEstimateParallelChannelRef(b *testing.B) {
	nw, d := benchNetwork(b)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.estimateErrorParallelChannelRef(d, true, 256, nw.workerCount(256), r)
	}
}

func BenchmarkEstimateParallelEngine(b *testing.B) {
	nw, d := benchNetwork(b)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.EstimateErrorParallel(d, true, 256, r)
	}
}

func BenchmarkEstimateSerial(b *testing.B) {
	nw, d := benchNetwork(b)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.EstimateError(d, true, 256, r)
	}
}
