package zeroround

import (
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

// This file is the network's vote contract with the cluster runtime
// (internal/cluster): an indexed randomness assignment that names every
// (trial, node) sample stream independently of execution order.
//
// Run and RunWith draw all nodes' samples from one sequential stream, so
// node i's samples depend on how many draws nodes 0…i−1 consumed — fine in
// a single-threaded simulator, impossible to reproduce when k real machines
// sample concurrently. VoteStream instead derives node i's generator for
// trial t directly from (base, t, i), so a distributed execution — any
// connection ordering, any scheduling, any retry — produces exactly the
// votes of the in-process reference execution RunAt. The cluster's
// differential tests pin this equivalence trial for trial.

// VoteStream seeds g as the private sample stream of node `node` in trial
// `trial` of a k-node indexed execution with base seed base. Streams for
// distinct (trial, node) pairs are statistically independent (rng.SeedAt),
// and the mapping is pure: any party that knows (base, k) can reproduce any
// node's randomness for any trial.
func VoteStream(g *rng.RNG, base, trial uint64, node, k int) {
	g.SeedAt(base, trial*uint64(k)+uint64(node))
}

// Node returns node i's tester (the vote hook the cluster node client runs
// against its own sample block).
func (nw *Network) Node(i int) tester.Tester { return nw.nodes[i] }

// VoteAt computes node `node`'s vote for indexed trial `trial`: it reseeds
// g via VoteStream, draws the node's sample block from d through the batch
// kernels, and returns true when the node rejects. A nil sc allocates
// per call; Monte-Carlo loops should reuse one Scratch.
func (nw *Network) VoteAt(d dist.Distribution, base, trial uint64, node int, g *rng.RNG, sc *Scratch) (reject bool) {
	if sc == nil {
		sc = nw.NewScratch()
	}
	VoteStream(g, base, trial, node, len(nw.nodes))
	nd := nw.nodes[node]
	block := sc.buf[:nd.SampleSize()]
	dist.SampleInto(d, block, g)
	if st := nw.scratchNodes[node]; st != nil {
		return !st.TestScratch(block, sc.col)
	}
	return !nd.Test(block)
}

// RunAt executes indexed trial `trial` in full — every node votes through
// VoteAt, no early stopping — and returns the network verdict with the
// rejecting-node count. It is the order-independent reference execution
// the cluster runtime is differentially tested against: permuting the node
// loop (or distributing it over real connections) cannot change the
// result, because each node's randomness is fixed by (base, trial, node)
// alone. nil g or sc allocate per call.
func (nw *Network) RunAt(d dist.Distribution, base, trial uint64, g *rng.RNG, sc *Scratch) (accept bool, rejects int) {
	if g == nil {
		g = rng.New(0)
	}
	if sc == nil {
		sc = nw.NewScratch()
	}
	for i := range nw.nodes {
		if nw.VoteAt(d, base, trial, i, g, sc) {
			rejects++
		}
	}
	return nw.rule.Accept(rejects, len(nw.nodes)), rejects
}

// EstimateErrorAt is EstimateError over the indexed execution RunAt:
// the fraction of trials [0, trials) whose verdict differs from
// wantAccept. It consumes no generator state beyond the base it is given,
// so it names the exact trial set a cluster run at the same base executes.
func (nw *Network) EstimateErrorAt(d dist.Distribution, wantAccept bool, trials int, base uint64) float64 {
	g := rng.New(0)
	sc := nw.NewScratch()
	wrong := 0
	for t := 0; t < trials; t++ {
		if accept, _ := nw.RunAt(d, base, uint64(t), g, sc); accept != wantAccept {
			wrong++
		}
	}
	return float64(wrong) / float64(trials)
}
