package zeroround

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
)

// EstimateErrorParallel is EstimateError with trials fanned out across
// worker goroutines. The result is bit-for-bit deterministic in r at any
// worker count and any GOMAXPROCS:
//
//   - trial i's generator is derived by index — rng.At(base, i) for a base
//     drawn once from r — so the assignment of randomness to trials depends
//     on neither scheduling nor the number of workers, with no O(trials)
//     pre-split allocation;
//   - workers claim chunks of trial indices from one atomic counter
//     (work-stealing: fast workers take more chunks) and fold verdicts into
//     per-worker partial sums, published once per worker; the total is a
//     commutative sum, so the estimate is schedule-independent.
//
// Each worker owns one Scratch, so steady-state trials allocate only the
// per-trial generator reseed (nothing on the heap). The old engine paid an
// unbuffered channel send plus a mutexed tally per trial; see
// BenchmarkEstimateParallelEngine vs BenchmarkEstimateParallelChannelRef.
//
// When nw.Obs is attached, each worker records per-trial latencies into the
// shared zeroround.trial_ns histogram and the trial/wrong counters; the
// registry's atomic metrics make this safe and cheap enough to leave on
// across the pool.
func (nw *Network) EstimateErrorParallel(d dist.Distribution, wantAccept bool, trials int, r *rng.RNG) float64 {
	if trials <= 0 {
		return 0
	}
	// One draw fixes every trial's randomness and advances r, mirroring the
	// old engine's property that estimation perturbs the caller's stream
	// deterministically.
	base := r.Uint64()
	workers := nw.workerCount(trials)
	var trialNS *obs.Histogram
	if nw.Obs != nil {
		trialNS = nw.Obs.Histogram("zeroround.trial_ns", obs.LatencyBuckets())
	}

	runRange := func(lo, hi int, gen *rng.RNG, sc *Scratch) int {
		wrong := 0
		for i := lo; i < hi; i++ {
			gen.SeedAt(base, uint64(i))
			if trialNS != nil {
				start := time.Now() //unifvet:allow wallclock per-trial latency histogram; verdicts don't read the clock
				got := nw.runVerdict(d, gen, sc)
				trialNS.Observe(time.Since(start).Nanoseconds()) //unifvet:allow wallclock per-trial latency histogram; verdicts don't read the clock
				if got != wantAccept {
					wrong++
				}
				continue
			}
			if nw.runVerdict(d, gen, sc) != wantAccept {
				wrong++
			}
		}
		return wrong
	}

	var wrong int
	if workers == 1 {
		wrong = runRange(0, trials, rng.New(0), nw.NewScratch())
	} else {
		chunk := chunkSize(trials, workers)
		var next, total atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				gen := rng.New(0)
				sc := nw.NewScratch()
				local := 0
				for {
					lo := int(next.Add(int64(chunk))) - chunk
					if lo >= trials {
						break
					}
					hi := lo + chunk
					if hi > trials {
						hi = trials
					}
					local += runRange(lo, hi, gen, sc)
				}
				total.Add(int64(local))
			}()
		}
		wg.Wait()
		wrong = int(total.Load())
	}

	if nw.Obs != nil {
		nw.Obs.Counter("zeroround.trials").Add(int64(trials))
		nw.Obs.Counter("zeroround.wrong").Add(int64(wrong))
	}
	return float64(wrong) / float64(trials)
}

// workerCount resolves nw.Workers (0 = GOMAXPROCS) and caps it at trials.
func (nw *Network) workerCount(trials int) int {
	workers := nw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// chunkSize picks the work-stealing grain: small enough that slow trials
// cannot strand one worker with a long tail (≥ 8 chunks per worker when
// trials allow), large enough to amortize the atomic claim.
func chunkSize(trials, workers int) int {
	chunk := trials / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	return chunk
}
