package zeroround

import (
	"runtime"
	"sync"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

// EstimateErrorParallel is EstimateError with trials fanned out across
// worker goroutines, each with an independent generator split from r. The
// result is deterministic in r regardless of scheduling: trial i always
// uses the i-th split.
func (nw *Network) EstimateErrorParallel(d dist.Distribution, wantAccept bool, trials int, r *rng.RNG) float64 {
	if trials <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	// Pre-split one generator per trial so the assignment of randomness to
	// trials does not depend on goroutine interleaving.
	gens := make([]*rng.RNG, trials)
	for i := range gens {
		gens[i] = r.Split()
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		wrong int
	)
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := 0
			for i := range next {
				if got, _ := nw.Run(d, gens[i]); got != wantAccept {
					local++
				}
			}
			mu.Lock()
			wrong += local
			mu.Unlock()
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return float64(wrong) / float64(trials)
}
