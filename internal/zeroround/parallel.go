package zeroround

import (
	"runtime"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
)

// EstimateErrorParallel is EstimateError with trials fanned out across
// worker goroutines, each with an independent generator split from r. The
// result is deterministic in r regardless of scheduling: trial i always
// uses the i-th split.
//
// When nw.Obs is attached, each worker records per-trial latencies into the
// shared zeroround.trial_ns histogram and the trial/wrong counters; the
// registry's atomic metrics make this safe and cheap enough to leave on
// across the pool.
func (nw *Network) EstimateErrorParallel(d dist.Distribution, wantAccept bool, trials int, r *rng.RNG) float64 {
	if trials <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var trialNS *obs.Histogram
	if nw.Obs != nil {
		trialNS = nw.Obs.Histogram("zeroround.trial_ns", obs.LatencyBuckets())
	}
	// Pre-split one generator per trial so the assignment of randomness to
	// trials does not depend on goroutine interleaving.
	gens := make([]*rng.RNG, trials)
	for i := range gens {
		gens[i] = r.Split()
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		wrong int
	)
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := 0
			for i := range next {
				if trialNS != nil {
					start := time.Now()
					got, _ := nw.Run(d, gens[i])
					trialNS.Observe(time.Since(start).Nanoseconds())
					if got != wantAccept {
						local++
					}
					continue
				}
				if got, _ := nw.Run(d, gens[i]); got != wantAccept {
					local++
				}
			}
			mu.Lock()
			wrong += local
			mu.Unlock()
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if nw.Obs != nil {
		nw.Obs.Counter("zeroround.trials").Add(int64(trials))
		nw.Obs.Counter("zeroround.wrong").Add(int64(wrong))
	}
	return float64(wrong) / float64(trials)
}
