package zeroround

import (
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
)

// The telemetry overhead benchmarks: BenchmarkEstimateTelemetryDisabled
// must stay within 5% of BenchmarkEstimateBaseline (the nil-Obs fast path
// is one pointer check per estimate call), and ...Enabled bounds the cost
// of leaving the registry attached across the parallel trial pool. The
// workload matches one BenchmarkE2ANDRule cell (E2's k=1000 row at quick
// scale).
func benchEstimate(b *testing.B, reg *obs.Registry) {
	b.Helper()
	cfg, err := SolveAND(1<<20, 1000, 1.0, 1.0/3)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := BuildAND(cfg)
	if err != nil {
		b.Fatal(err)
	}
	nw.Obs = reg
	d := dist.NewUniform(1 << 20)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.EstimateErrorParallel(d, true, 25, r)
	}
}

// BenchmarkEstimateBaseline is the pre-telemetry workload (no Obs field
// consulted beyond the nil check).
func BenchmarkEstimateBaseline(b *testing.B) { benchEstimate(b, nil) }

// BenchmarkEstimateTelemetryDisabled is identical to Baseline — it
// documents that a nil registry IS the disabled path.
func BenchmarkEstimateTelemetryDisabled(b *testing.B) { benchEstimate(b, nil) }

// BenchmarkEstimateTelemetryEnabled measures the cost of per-trial latency
// histograms and counters with a live registry.
func BenchmarkEstimateTelemetryEnabled(b *testing.B) { benchEstimate(b, obs.NewRegistry()) }

// TestParallelTelemetryCounts verifies the instrumented parallel pool
// records exactly one observation per trial.
func TestParallelTelemetryCounts(t *testing.T) {
	cfg, err := SolveAND(1<<16, 100, 1.0, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildAND(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	nw.Obs = reg
	const trials = 40
	nw.EstimateErrorParallel(dist.NewUniform(1<<16), true, trials, rng.New(1))
	nw.EstimateError(dist.NewUniform(1<<16), true, trials, rng.New(2))
	s := reg.Snapshot()
	if got := s.Counters["zeroround.trials"]; got != 2*trials {
		t.Errorf("zeroround.trials = %d, want %d", got, 2*trials)
	}
	if h := s.Histograms["zeroround.trial_ns"]; h.Count != 2*trials {
		t.Errorf("trial_ns count = %d, want %d", h.Count, 2*trials)
	}
	if s.Counters["zeroround.wrong"] > 2*trials {
		t.Errorf("zeroround.wrong = %d out of range", s.Counters["zeroround.wrong"])
	}
}

// TestParallelDeterminismWithTelemetry: attaching a registry must not
// change the estimate (randomness assignment is unchanged).
func TestParallelDeterminismWithTelemetry(t *testing.T) {
	cfg, err := SolveAND(1<<16, 200, 1.0, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	build := func(reg *obs.Registry) float64 {
		nw, err := BuildAND(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nw.Obs = reg
		return nw.EstimateErrorParallel(dist.NewTwoBump(1<<16, 1, 7), false, 30, rng.New(42))
	}
	if a, b := build(nil), build(obs.NewRegistry()); a != b {
		t.Errorf("telemetry changed the estimate: %g vs %g", a, b)
	}
}
