package zeroround

import (
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

func buildThresholdNetwork(t *testing.T, n, k int) (*Network, ThresholdConfig) {
	t.Helper()
	cfg, err := SolveThreshold(n, k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw, cfg
}

func TestRunAtDeterministic(t *testing.T) {
	nw, _ := buildThresholdNetwork(t, 4096, 120)
	d := dist.NewTwoBump(4096, 1.0, 9)
	for trial := uint64(0); trial < 8; trial++ {
		a1, r1 := nw.RunAt(d, 42, trial, nil, nil)
		a2, r2 := nw.RunAt(d, 42, trial, rng.New(99), nw.NewScratch())
		if a1 != a2 || r1 != r2 {
			t.Fatalf("trial %d: (%v, %d) vs (%v, %d) across calls", trial, a1, r1, a2, r2)
		}
	}
}

func TestRunAtOrderInvariant(t *testing.T) {
	nw, _ := buildThresholdNetwork(t, 4096, 120)
	d := dist.NewTwoBump(4096, 1.0, 9)
	g := rng.New(0)
	sc := nw.NewScratch()
	perm := rng.New(5).Perm(nw.K())
	for trial := uint64(0); trial < 6; trial++ {
		_, want := nw.RunAt(d, 7, trial, g, sc)
		rejects := 0
		for _, i := range perm {
			if nw.VoteAt(d, 7, trial, i, g, sc) {
				rejects++
			}
		}
		if rejects != want {
			t.Fatalf("trial %d: %d rejects in permuted order, %d in index order", trial, rejects, want)
		}
		if accept, _ := nw.RunAt(d, 7, trial, g, sc); accept != nw.Rule().Accept(rejects, nw.K()) {
			t.Fatalf("trial %d: verdict inconsistent with rule over votes", trial)
		}
	}
}

func TestVoteStreamIndependentOfCallOrder(t *testing.T) {
	// The same (base, trial, node) names the same stream no matter what the
	// generator did before.
	g1, g2 := rng.New(1), rng.New(2)
	g2.Uint64()
	g2.Uint64()
	VoteStream(g1, 11, 3, 17, 100)
	VoteStream(g2, 11, 3, 17, 100)
	for i := 0; i < 4; i++ {
		if a, b := g1.Uint64(), g2.Uint64(); a != b {
			t.Fatalf("draw %d differs: %d vs %d", i, a, b)
		}
	}
	// Distinct trials and nodes name distinct streams.
	VoteStream(g1, 11, 3, 17, 100)
	VoteStream(g2, 11, 4, 17, 100)
	if g1.Uint64() == g2.Uint64() {
		t.Fatal("adjacent trials share a stream")
	}
	VoteStream(g1, 11, 3, 17, 100)
	VoteStream(g2, 11, 3, 18, 100)
	if g1.Uint64() == g2.Uint64() {
		t.Fatal("adjacent nodes share a stream")
	}
}

func TestEstimateErrorAtMatchesManualLoop(t *testing.T) {
	nw, _ := buildThresholdNetwork(t, 4096, 120)
	d := dist.NewUniform(4096)
	const trials = 40
	got := nw.EstimateErrorAt(d, true, trials, 13)
	wrong := 0
	for tr := 0; tr < trials; tr++ {
		if accept, _ := nw.RunAt(d, 13, uint64(tr), nil, nil); !accept {
			wrong++
		}
	}
	if want := float64(wrong) / trials; got != want {
		t.Fatalf("EstimateErrorAt = %v, manual loop = %v", got, want)
	}
}

func TestRunAtErrorWithinBound(t *testing.T) {
	// The indexed execution is a fair Monte-Carlo engine: at feasible
	// threshold parameters both error sides stay within the paper's 1/3.
	nw, cfg := buildThresholdNetwork(t, 1<<16, 2000)
	if !cfg.Feasible {
		t.Skipf("threshold config infeasible at n=%d k=%d", cfg.N, cfg.K)
	}
	const trials = 60
	if errU := nw.EstimateErrorAt(dist.NewUniform(cfg.N), true, trials, 3); errU > 1.0/3 {
		t.Errorf("err|U = %v > 1/3", errU)
	}
	far := dist.NewTwoBump(cfg.N, cfg.Eps, 3)
	if errFar := nw.EstimateErrorAt(far, false, trials, 4); errFar > 1.0/3 {
		t.Errorf("err|far = %v > 1/3", errFar)
	}
}
