package zeroround

import (
	"math"
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

func TestEstimateErrorParallelDeterministic(t *testing.T) {
	n := 1 << 14
	cfg, err := SolveThreshold(n, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := dist.NewUniform(n)
	a := nw.EstimateErrorParallel(u, true, 40, rng.New(5))
	b := nw.EstimateErrorParallel(u, true, 40, rng.New(5))
	if a != b {
		t.Fatalf("parallel estimation not deterministic: %v vs %v", a, b)
	}
}

func TestEstimateErrorParallelMatchesSerialStatistically(t *testing.T) {
	n := 1 << 14
	cfg, err := SolveThreshold(n, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	far := dist.NewTwoBump(n, 1, 3)
	const trials = 60
	serial := nw.EstimateError(far, false, trials, rng.New(7))
	parallel := nw.EstimateErrorParallel(far, false, trials, rng.New(7))
	// Different random draws, same distribution: agree within a generous
	// binomial margin.
	if math.Abs(serial-parallel) > 0.35 {
		t.Fatalf("serial %v vs parallel %v disagree beyond noise", serial, parallel)
	}
}

func TestEstimateErrorParallelZeroTrials(t *testing.T) {
	sc, err := SolveThreshold(1<<12, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.EstimateErrorParallel(dist.NewUniform(1<<12), true, 0, rng.New(1)); got != 0 {
		t.Fatalf("zero trials returned %v", got)
	}
}
