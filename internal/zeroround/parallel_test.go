package zeroround

import (
	"math"
	"runtime"
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

func TestEstimateErrorParallelDeterministic(t *testing.T) {
	n := 1 << 14
	cfg, err := SolveThreshold(n, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := dist.NewUniform(n)
	a := nw.EstimateErrorParallel(u, true, 40, rng.New(5))
	b := nw.EstimateErrorParallel(u, true, 40, rng.New(5))
	if a != b {
		t.Fatalf("parallel estimation not deterministic: %v vs %v", a, b)
	}
}

func TestEstimateErrorParallelMatchesSerialStatistically(t *testing.T) {
	n := 1 << 14
	cfg, err := SolveThreshold(n, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	far := dist.NewTwoBump(n, 1, 3)
	const trials = 60
	serial := nw.EstimateError(far, false, trials, rng.New(7))
	parallel := nw.EstimateErrorParallel(far, false, trials, rng.New(7))
	// Different random draws, same distribution: agree within a generous
	// binomial margin.
	if math.Abs(serial-parallel) > 0.35 {
		t.Fatalf("serial %v vs parallel %v disagree beyond noise", serial, parallel)
	}
}

func TestEstimateErrorParallelZeroTrials(t *testing.T) {
	sc, err := SolveThreshold(1<<12, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.EstimateErrorParallel(dist.NewUniform(1<<12), true, 0, rng.New(1)); got != 0 {
		t.Fatalf("zero trials returned %v", got)
	}
}

// TestEstimateErrorParallelWorkerCountInvariant checks the engine's core
// guarantee: the estimate is bit-for-bit identical at every worker count,
// and at any GOMAXPROCS.
func TestEstimateErrorParallelWorkerCountInvariant(t *testing.T) {
	n := 1 << 14
	cfg, err := SolveThreshold(n, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	far := dist.NewTwoBump(n, 1, 3)
	want := -1.0
	for _, workers := range []int{1, 2, 3, 8} {
		nw.Workers = workers
		got := nw.EstimateErrorParallel(far, false, 37, rng.New(11))
		if want < 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: estimate %v, want %v", workers, got, want)
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		nw.Workers = 0 // default to GOMAXPROCS
		if got := nw.EstimateErrorParallel(far, false, 37, rng.New(11)); got != want {
			t.Fatalf("GOMAXPROCS=%d: estimate %v, want %v", procs, got, want)
		}
	}
}

// TestEstimateErrorParallelAdvancesCaller checks estimation consumes the
// caller's stream deterministically: two estimates from one generator give
// the same pair of results as a fresh generator's two estimates.
func TestEstimateErrorParallelAdvancesCaller(t *testing.T) {
	n := 1 << 12
	cfg, err := SolveThreshold(n, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := dist.NewUniform(n)
	r1 := rng.New(21)
	a1 := nw.EstimateErrorParallel(u, true, 20, r1)
	a2 := nw.EstimateErrorParallel(u, true, 20, r1)
	r2 := rng.New(21)
	b1 := nw.EstimateErrorParallel(u, true, 20, r2)
	b2 := nw.EstimateErrorParallel(u, true, 20, r2)
	if a1 != b1 || a2 != b2 {
		t.Fatalf("replayed estimates differ: (%v,%v) vs (%v,%v)", a1, a2, b1, b2)
	}
}

func TestChunkSize(t *testing.T) {
	if got := chunkSize(10, 4); got != 1 {
		t.Errorf("chunkSize(10,4) = %d, want 1", got)
	}
	if got := chunkSize(1000, 2); got != 62 {
		t.Errorf("chunkSize(1000,2) = %d, want 62", got)
	}
	if got := chunkSize(100000, 4); got != 64 {
		t.Errorf("chunkSize(100000,4) = %d, want 64 (cap)", got)
	}
}

func TestWorkerCount(t *testing.T) {
	nw := &Network{Workers: 5}
	if got := nw.workerCount(3); got != 3 {
		t.Errorf("workerCount capped = %d, want 3", got)
	}
	if got := nw.workerCount(100); got != 5 {
		t.Errorf("workerCount = %d, want 5", got)
	}
	nw.Workers = 0
	if got := nw.workerCount(100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workerCount = %d, want GOMAXPROCS", got)
	}
}
