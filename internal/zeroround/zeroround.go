// Package zeroround implements the paper's 0-round distributed uniformity
// testers: k nodes each draw samples from the unknown distribution and
// output accept/reject with no communication; the network's verdict is
// obtained by a decision rule over the individual votes.
//
// Two decision rules are supported, matching Section 3.2:
//
//   - the AND rule ("standard distributed decision"): the network accepts
//     iff every node accepts (Theorem 1.1), and
//   - the threshold rule: the network rejects iff at least T nodes reject
//     (Theorem 1.2).
//
// Section 4's asymmetric-cost generalizations are provided by
// SolveAsymmetricAND and SolveAsymmetricThreshold, which assign each node a
// different per-node sample budget s_i so that all nodes pay the same
// maximum individual cost C = s_i·c_i.
package zeroround

import (
	"fmt"
	"math"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/stats"
	"github.com/unifdist/unifdist/internal/tester"
)

// Rule is a network decision rule mapping individual votes to a network
// verdict.
type Rule interface {
	// Accept reports the network verdict given the number of rejecting
	// nodes out of k.
	Accept(rejects, k int) bool
	// Name returns a short description.
	Name() string
}

// EarlyDecider is an optional Rule refinement: rules whose verdict can
// become fixed before every node has voted implement it, and the
// Monte-Carlo estimators stop sampling the remaining nodes as soon as the
// outcome is determined. The verdict is identical to a full scan — only
// the work (and the per-trial randomness consumed) shrinks — so
// estimators stay deterministic for a fixed seed. Run and RunWith never
// short-circuit: their rejects count is part of the API.
type EarlyDecider interface {
	// Decided reports whether the verdict is already fixed after observing
	// rejects rejecting votes with remaining nodes still unpolled, and if
	// so what the verdict is.
	Decided(rejects, remaining int) (accept, done bool)
}

// ANDRule accepts iff no node rejects.
type ANDRule struct{}

// Accept implements Rule.
func (ANDRule) Accept(rejects, _ int) bool { return rejects == 0 }

// Decided implements EarlyDecider: one rejection settles the verdict.
func (ANDRule) Decided(rejects, remaining int) (accept, done bool) {
	if rejects > 0 {
		return false, true
	}
	return true, remaining == 0
}

// Name implements Rule.
func (ANDRule) Name() string { return "AND" }

// ThresholdRule rejects iff at least T nodes reject.
type ThresholdRule struct {
	// T is the rejection threshold.
	T int
}

// Accept implements Rule.
func (t ThresholdRule) Accept(rejects, _ int) bool { return rejects < t.T }

// Decided implements EarlyDecider: the verdict is fixed once T rejections
// have been seen, or once too few nodes remain to reach T.
func (t ThresholdRule) Decided(rejects, remaining int) (accept, done bool) {
	if rejects >= t.T {
		return false, true
	}
	if rejects+remaining < t.T {
		return true, true
	}
	return false, false
}

// Name implements Rule.
func (t ThresholdRule) Name() string { return fmt.Sprintf("threshold(T=%d)", t.T) }

// Network is a 0-round distributed tester: per-node centralized testers
// plus a decision rule.
type Network struct {
	nodes []tester.Tester
	rule  Rule
	// scratchNodes[i] is nodes[i] as a ScratchTester, or nil; resolved once
	// at construction so Run pays no type assertion per node per trial.
	scratchNodes []tester.ScratchTester
	// early is rule as an EarlyDecider, or nil; resolved once likewise.
	early EarlyDecider
	// maxSamples caches MaxSamplesPerNode.
	maxSamples int

	// Obs, when non-nil, receives per-trial telemetry from EstimateError
	// and EstimateErrorParallel: the zeroround.trials counter,
	// zeroround.wrong counter, and the zeroround.trial_ns latency
	// histogram. Leave nil to disable (the cost is one pointer check per
	// estimate call).
	Obs *obs.Registry

	// Workers bounds the goroutines used by EstimateErrorParallel;
	// 0 means GOMAXPROCS. The estimate is bit-for-bit identical at any
	// worker count.
	Workers int
}

// NewNetwork builds a 0-round network. All nodes may share one tester value
// (testers are stateless); len(nodes) is the network size k.
func NewNetwork(nodes []tester.Tester, rule Rule) (*Network, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("zeroround: empty network")
	}
	if rule == nil {
		return nil, fmt.Errorf("zeroround: nil decision rule")
	}
	nw := &Network{
		nodes:        nodes,
		rule:         rule,
		scratchNodes: make([]tester.ScratchTester, len(nodes)),
	}
	for i, nd := range nodes {
		if st, ok := nd.(tester.ScratchTester); ok {
			nw.scratchNodes[i] = st
		}
		if s := nd.SampleSize(); s > nw.maxSamples {
			nw.maxSamples = s
		}
	}
	if ed, ok := rule.(EarlyDecider); ok {
		nw.early = ed
	}
	return nw, nil
}

// K returns the network size.
func (nw *Network) K() int { return len(nw.nodes) }

// Rule returns the network's decision rule.
func (nw *Network) Rule() Rule { return nw.rule }

// TotalSamples returns the number of samples drawn network-wide per run.
func (nw *Network) TotalSamples() int {
	total := 0
	for _, nd := range nw.nodes {
		total += nd.SampleSize()
	}
	return total
}

// MaxSamplesPerNode returns the largest per-node sample count.
func (nw *Network) MaxSamplesPerNode() int { return nw.maxSamples }

// Scratch holds the reusable buffers of one Run execution: the sample
// buffer and the collision-statistic scratch. One Scratch serves any number
// of sequential Run calls on the same network; it is not safe for
// concurrent use, so parallel estimators allocate one per worker.
type Scratch struct {
	buf []int
	col *dist.CollisionScratch
}

// NewScratch returns run scratch sized for nw.
func (nw *Network) NewScratch() *Scratch {
	return &Scratch{
		buf: make([]int, nw.maxSamples),
		col: dist.NewCollisionScratch(),
	}
}

// Run draws fresh samples for every node from d and returns the network
// verdict (true = accept) along with the number of rejecting nodes.
//
// Run allocates a sample buffer per call; Monte-Carlo loops should
// allocate one Scratch via NewScratch and call RunWith instead.
func (nw *Network) Run(d dist.Distribution, r *rng.RNG) (accept bool, rejects int) {
	return nw.RunWith(d, r, nil)
}

// RunWith is Run using sc's reusable buffers (nil sc allocates). For every
// node the sample block is drawn through the batch kernels and the verdict
// computed against the shared collision scratch, so a warm Scratch makes a
// trial allocation-free.
func (nw *Network) RunWith(d dist.Distribution, r *rng.RNG, sc *Scratch) (accept bool, rejects int) {
	var buf []int
	var col *dist.CollisionScratch
	if sc != nil {
		buf, col = sc.buf, sc.col
	} else {
		buf = make([]int, nw.maxSamples)
	}
	for i, nd := range nw.nodes {
		s := nd.SampleSize()
		block := buf[:s]
		dist.SampleInto(d, block, r)
		var ok bool
		if st := nw.scratchNodes[i]; st != nil {
			ok = st.TestScratch(block, col)
		} else {
			ok = nd.Test(block)
		}
		if !ok {
			rejects++
		}
	}
	return nw.rule.Accept(rejects, len(nw.nodes)), rejects
}

// runVerdict is RunWith restricted to the verdict: when the rule is an
// EarlyDecider it stops polling nodes as soon as the outcome is fixed
// (e.g. the first rejection under AND, the T-th under threshold). The
// Monte-Carlo estimators go through here; each trial's verdict is
// unchanged, only its cost.
func (nw *Network) runVerdict(d dist.Distribution, r *rng.RNG, sc *Scratch) bool {
	buf, col := sc.buf, sc.col
	k := len(nw.nodes)
	rejects := 0
	for i, nd := range nw.nodes {
		block := buf[:nd.SampleSize()]
		dist.SampleInto(d, block, r)
		var ok bool
		if st := nw.scratchNodes[i]; st != nil {
			ok = st.TestScratch(block, col)
		} else {
			ok = nd.Test(block)
		}
		if !ok {
			rejects++
		}
		if nw.early != nil {
			if accept, done := nw.early.Decided(rejects, k-i-1); done {
				return accept
			}
		}
	}
	return nw.rule.Accept(rejects, k)
}

// EstimateError runs trials independent executions on d and returns the
// fraction that produced the wrong verdict, where wantAccept states the
// correct verdict for d.
func (nw *Network) EstimateError(d dist.Distribution, wantAccept bool, trials int, r *rng.RNG) float64 {
	wrong := 0
	sc := nw.NewScratch()
	if nw.Obs == nil {
		for i := 0; i < trials; i++ {
			if nw.runVerdict(d, r, sc) != wantAccept {
				wrong++
			}
		}
		return float64(wrong) / float64(trials)
	}
	trialNS := nw.Obs.Histogram("zeroround.trial_ns", obs.LatencyBuckets())
	for i := 0; i < trials; i++ {
		start := time.Now() //unifvet:allow wallclock per-trial latency histogram; verdicts don't read the clock
		got := nw.runVerdict(d, r, sc)
		trialNS.Observe(time.Since(start).Nanoseconds()) //unifvet:allow wallclock per-trial latency histogram; verdicts don't read the clock
		if got != wantAccept {
			wrong++
		}
	}
	nw.Obs.Counter("zeroround.trials").Add(int64(trials))
	nw.Obs.Counter("zeroround.wrong").Add(int64(wrong))
	return float64(wrong) / float64(trials)
}

// CP returns the gap constant C_p = ln(1/p) / ln(1/(1−p)) required of each
// node's tester under the AND rule (Section 3.2.1). For p = 1/3 it is
// ≈ 2.7095.
func CP(p float64) float64 {
	return math.Log(1/p) / math.Log(1/(1-p))
}

// ANDConfig holds the resolved parameters of the symmetric AND-rule tester
// of Theorem 1.1.
type ANDConfig struct {
	// N, K are the domain and network sizes; Eps the distance parameter;
	// P the target network error probability.
	N, K int
	Eps  float64
	P    float64
	// M is the per-node repetition count m = Θ(C_p/ε²).
	M int
	// DeltaPrime is the per-repetition completeness error δ′ = Θ(1/k^{1/m}).
	DeltaPrime float64
	// SamplesPerNode is s = m·s(δ′), the per-node sample complexity of
	// Theorem 1.1.
	SamplesPerNode int
	// NodeGap is the per-node amplified gap (1+γε²)^m actually achieved.
	NodeGap float64
	// RequiredGap is C_p, the gap needed for network error ≤ p.
	RequiredGap float64
	// Gamma is the realized slack of the inner tester.
	Gamma float64
	// Feasible reports whether NodeGap ≥ RequiredGap with a positive slack
	// γ, i.e. whether the paper's error guarantee holds at these concrete
	// parameters (it requires large n/k; see DESIGN.md §3.1).
	Feasible bool
}

// SolveAND resolves Theorem 1.1's parameters for domain size n, network
// size k, distance eps and target error p. It searches over the repetition
// count m for the assignment minimizing per-node samples among those
// meeting the gap requirement; if no m meets it (the regime is too small
// for the rigorous constants), it returns the best-effort assignment with
// Feasible=false.
func SolveAND(n, k int, eps, p float64) (ANDConfig, error) {
	if k < 1 {
		return ANDConfig{}, fmt.Errorf("zeroround: k=%d < 1", k)
	}
	if p <= 0 || p >= 1 {
		return ANDConfig{}, fmt.Errorf("zeroround: p=%v outside (0, 1)", p)
	}
	if eps <= 0 || eps > 2 {
		return ANDConfig{}, fmt.Errorf("zeroround: eps=%v outside (0, 2]", eps)
	}
	cp := CP(p)
	// Per-node completeness budget: (1−q0)^k ≥ 1−p ⇒ q0 ≤ 1−(1−p)^{1/k}.
	q0 := 1 - math.Pow(1-p, 1/float64(k))

	cfg := ANDConfig{N: n, K: k, Eps: eps, P: p, RequiredGap: cp}
	bestFeasible := false
	bestSamples := math.MaxInt
	bestGap := 0.0
	found := false
	const maxM = 64
	for m := 1; m <= maxM; m++ {
		deltaPrime := math.Pow(q0, 1/float64(m))
		gp, err := tester.SolveGap(n, deltaPrime, eps)
		if err != nil {
			continue
		}
		// Amplification multiplies the gap only when the single-copy gap
		// exceeds 1; with no proven gap (α ≤ 1, possible in small regimes)
		// repetitions cannot help.
		gap := gp.Alpha
		if gap > 1 {
			gap = math.Pow(gap, float64(m))
		}
		samples := m * gp.S
		feasible := gp.Gamma > 0 && gap >= cp
		better := false
		switch {
		case feasible && !bestFeasible:
			better = true
		case feasible == bestFeasible && feasible:
			better = samples < bestSamples
		case feasible == bestFeasible && !feasible:
			better = gap > bestGap
		}
		if !found || better {
			found = true
			bestFeasible = feasible
			bestSamples = samples
			bestGap = gap
			cfg.M = m
			cfg.DeltaPrime = gp.Delta
			cfg.SamplesPerNode = samples
			cfg.NodeGap = gap
			cfg.Gamma = gp.Gamma
			cfg.Feasible = feasible
		}
	}
	if !found {
		return ANDConfig{}, fmt.Errorf("zeroround: no valid parameters for n=%d k=%d eps=%v", n, k, eps)
	}
	return cfg, nil
}

// BuildAND constructs the symmetric AND-rule network realizing cfg: every
// node runs the m-repetition amplified tester and the network applies the
// AND rule.
func BuildAND(cfg ANDConfig) (*Network, error) {
	node, err := tester.NewAmplified(cfg.N, cfg.DeltaPrime, cfg.Eps, cfg.M)
	if err != nil {
		return nil, fmt.Errorf("zeroround: build AND node: %w", err)
	}
	nodes := make([]tester.Tester, cfg.K)
	for i := range nodes {
		nodes[i] = node
	}
	return NewNetwork(nodes, ANDRule{})
}

// ThresholdConfig holds the resolved parameters of the symmetric
// threshold-rule tester of Theorem 1.2.
type ThresholdConfig struct {
	// N, K, Eps as in ANDConfig.
	N, K int
	Eps  float64
	// Delta is the per-node completeness error of A_δ.
	Delta float64
	// SamplesPerNode is s = Θ(√(n/k)/ε²).
	SamplesPerNode int
	// T is the rejection threshold T = Θ(1/ε⁴).
	T int
	// EtaUniform is the expected number of rejections under uniform (≤ kδ);
	// EtaFar is the guaranteed expectation under any ε-far distribution.
	EtaUniform, EtaFar float64
	// Gamma is the realized slack of the per-node tester.
	Gamma float64
	// Feasible reports whether eq. (5) holds with the realized γ, i.e.
	// whether both Chernoff tails are below 1/3.
	Feasible bool
}

// SolveThreshold resolves Theorem 1.2's parameters: it finds the smallest
// per-node completeness error δ for which a threshold T satisfying the
// paper's eq. (5),
//
//	η(U) + √(3·ln3·η(U)) ≤ T ≤ η(µ) − √(2·ln3·η(µ)),
//
// exists (with η(U) = kδ and η(µ) ≥ kδ(1+γε²)), then places T in the
// middle of the window. Increasing δ widens the window through
// concentration but erodes the slack γ, so the feasible δ form an interval;
// a log-grid scan locates its low end, which minimizes per-node samples
// s = √(2δn).
func SolveThreshold(n, k int, eps float64) (ThresholdConfig, error) {
	if k < 1 {
		return ThresholdConfig{}, fmt.Errorf("zeroround: k=%d < 1", k)
	}
	if eps <= 0 || eps > 2 {
		return ThresholdConfig{}, fmt.Errorf("zeroround: eps=%v outside (0, 2]", eps)
	}
	ln3 := math.Log(3)
	eval := func(delta float64) (cfg ThresholdConfig, window float64, err error) {
		gp, err := tester.SolveGap(n, delta, eps)
		if err != nil {
			return ThresholdConfig{}, 0, err
		}
		// Tight rigorous per-node probabilities: the exact uniform
		// collision probability, and the Lemma 3.2+3.3 lower bound on the
		// ε-far rejection probability. Both dominate the linearized
		// (δ, 1+γε²) accounting; see DESIGN.md §3.1.
		pU := 1 - tester.UniformNoCollisionProb(n, gp.S)
		pFar := tester.FarRejectLowerBound(n, gp.S, eps)
		etaU := float64(k) * pU
		etaFar := float64(k) * pFar
		lower := etaU + math.Sqrt(3*ln3*etaU)
		upper := etaFar - math.Sqrt(2*ln3*math.Max(etaFar, 0))
		t := int(math.Ceil((lower + upper) / 2))
		if t < 1 {
			t = 1
		}
		cfg = ThresholdConfig{
			N:              n,
			K:              k,
			Eps:            eps,
			Delta:          gp.Delta,
			SamplesPerNode: gp.S,
			T:              t,
			EtaUniform:     etaU,
			EtaFar:         etaFar,
			Gamma:          gp.Gamma,
			Feasible:       lower <= upper && float64(t) >= lower && float64(t) <= upper,
		}
		return cfg, upper - lower, nil
	}

	var (
		best       ThresholdConfig
		bestWindow = math.Inf(-1)
		found      bool
	)
	// Log grid from δ = 1e-8 up to 0.5; the first feasible point (smallest
	// δ, hence fewest samples) wins.
	const gridPoints = 240
	for i := 0; i < gridPoints; i++ {
		delta := math.Pow(10, -8+7.7*float64(i)/float64(gridPoints-1)) // 1e-8 … ~0.5
		cfg, window, err := eval(delta)
		if err != nil {
			continue
		}
		if cfg.Feasible {
			return cfg, nil
		}
		if !found || window > bestWindow {
			found = true
			bestWindow = window
			best = cfg
		}
	}
	if !found {
		return ThresholdConfig{}, fmt.Errorf("zeroround: no threshold parameters for n=%d k=%d eps=%v", n, k, eps)
	}
	return best, nil
}

// BuildThreshold constructs the symmetric threshold-rule network realizing
// cfg: every node runs A_δ once and the network rejects iff at least T
// nodes reject.
func BuildThreshold(cfg ThresholdConfig) (*Network, error) {
	node, err := tester.NewSingleCollision(cfg.N, cfg.Delta, cfg.Eps)
	if err != nil {
		return nil, fmt.Errorf("zeroround: build threshold node: %w", err)
	}
	nodes := make([]tester.Tester, cfg.K)
	for i := range nodes {
		nodes[i] = node
	}
	return NewNetwork(nodes, ThresholdRule{T: cfg.T})
}

// AsymmetricConfig holds per-node parameters for the asymmetric-cost
// testers of Section 4, where node i pays c_i per sample and all nodes are
// assigned the same maximum individual cost C = s_i·c_i.
type AsymmetricConfig struct {
	// N, K, Eps as in the symmetric configs.
	N, K int
	Eps  float64
	// Costs is the per-sample cost vector c; InverseCosts is T with
	// T_i = 1/c_i.
	Costs, InverseCosts []float64
	// Cost is the common maximum individual cost C.
	Cost float64
	// Samples is the per-node sample count s_i = C·T_i (rounded).
	Samples []int
	// Deltas is the per-node completeness error δ_i.
	Deltas []float64
	// M is the per-node repetition count (1 for the threshold rule).
	M int
	// T is the rejection threshold (threshold rule only; 0 under AND).
	T int
	// Norm records the norm of T used: ‖T‖₂ for threshold, ‖T‖₂ₘ for AND.
	Norm float64
}

// SolveAsymmetricThreshold resolves Section 4.2: Σδ_i = Θ(1/ε⁴) with
// δ_i = C²T_i²/(2n), giving C = Θ(√n/ε²)/‖T‖₂.
func SolveAsymmetricThreshold(n int, eps float64, costs []float64) (AsymmetricConfig, error) {
	k := len(costs)
	if k == 0 {
		return AsymmetricConfig{}, fmt.Errorf("zeroround: empty cost vector")
	}
	if eps <= 0 || eps > 2 {
		return AsymmetricConfig{}, fmt.Errorf("zeroround: eps=%v outside (0, 2]", eps)
	}
	inv := make([]float64, k)
	for i, c := range costs {
		if c <= 0 {
			return AsymmetricConfig{}, fmt.Errorf("zeroround: cost %v at node %d not positive", c, i)
		}
		inv[i] = 1 / c
	}
	ln3 := math.Log(3)
	norm2 := stats.LpNorm(inv, 2)

	// eval resolves the configuration for a total rejection mass x = Σδ_i:
	// Σδ_i = C²·ΣT_i²/(2n) = x ⇒ C = √(2n·x)/‖T‖₂. Feasibility mirrors the
	// symmetric eq. (5) window, using the worst (smallest) per-node slack γ.
	eval := func(x float64) (AsymmetricConfig, float64, bool) {
		c := math.Sqrt(2*float64(n)*x) / norm2
		cfg := AsymmetricConfig{
			N:            n,
			K:            k,
			Eps:          eps,
			Costs:        append([]float64(nil), costs...),
			InverseCosts: inv,
			Cost:         c,
			Samples:      make([]int, k),
			Deltas:       make([]float64, k),
			M:            1,
			Norm:         norm2,
		}
		etaU := 0.0
		etaFar := 0.0
		for i := range inv {
			s := int(math.Round(c * inv[i]))
			if s < 2 {
				s = 2
			}
			cfg.Samples[i] = s
			delta := float64(s) * float64(s-1) / (2 * float64(n))
			if delta >= 1 {
				return cfg, math.Inf(-1), false
			}
			cfg.Deltas[i] = delta
			etaU += 1 - tester.UniformNoCollisionProb(n, s)
			etaFar += tester.FarRejectLowerBound(n, s, eps)
		}
		lower := etaU + math.Sqrt(3*ln3*etaU)
		upper := etaFar - math.Sqrt(2*ln3*math.Max(etaFar, 0))
		cfg.T = int(math.Ceil((lower + upper) / 2))
		if cfg.T < 1 {
			cfg.T = 1
		}
		feasible := lower <= upper &&
			float64(cfg.T) >= lower && float64(cfg.T) <= upper
		return cfg, upper - lower, feasible
	}

	var (
		best       AsymmetricConfig
		bestWindow = math.Inf(-1)
		found      bool
	)
	const gridPoints = 160
	for i := 0; i < gridPoints; i++ {
		// Total mass grid: x from 1 to 10⁴ (Θ(1/ε⁴) lives well inside).
		x := math.Pow(10, 4*float64(i)/float64(gridPoints-1))
		cfg, window, feasible := eval(x)
		if feasible {
			return cfg, nil
		}
		if !found || window > bestWindow {
			found = true
			bestWindow = window
			best = cfg
		}
	}
	if !found {
		return AsymmetricConfig{}, fmt.Errorf("zeroround: no asymmetric threshold parameters for n=%d eps=%v", n, eps)
	}
	return best, nil
}

// SolveAsymmetricAND resolves Section 4.1: m repetitions per node,
// δ_i = (C·T_i)^{2m}/((2n)^m·m^{2m}), with Σδ_i = ln(1/(1−p)) so that the
// uniform distribution is accepted by all nodes with probability ≥ 1−p.
// This yields C = (ln(1/(1−p)))^{1/(2m)}·m·√(2n)/‖T‖₂ₘ.
func SolveAsymmetricAND(n int, eps, p float64, costs []float64) (AsymmetricConfig, error) {
	k := len(costs)
	if k == 0 {
		return AsymmetricConfig{}, fmt.Errorf("zeroround: empty cost vector")
	}
	if p <= 0 || p >= 1 {
		return AsymmetricConfig{}, fmt.Errorf("zeroround: p=%v outside (0, 1)", p)
	}
	if eps <= 0 || eps > 2 {
		return AsymmetricConfig{}, fmt.Errorf("zeroround: eps=%v outside (0, 2]", eps)
	}
	inv := make([]float64, k)
	for i, c := range costs {
		if c <= 0 {
			return AsymmetricConfig{}, fmt.Errorf("zeroround: cost %v at node %d not positive", c, i)
		}
		inv[i] = 1 / c
	}
	// m = Θ(C_p/ε²): the repetitions needed to amplify a (1+ε²/2) gap to C_p.
	cp := CP(p)
	m := int(math.Ceil(math.Log(cp) / math.Log1p(eps*eps/2)))
	if m < 1 {
		m = 1
	}
	norm2m := stats.LpNorm(inv, float64(2*m))
	budget := math.Log(1 / (1 - p)) // Σδ_i target
	c := math.Pow(budget, 1/float64(2*m)) * float64(m) * math.Sqrt(2*float64(n)) / norm2m

	cfg := AsymmetricConfig{
		N:            n,
		K:            k,
		Eps:          eps,
		Costs:        append([]float64(nil), costs...),
		InverseCosts: inv,
		Cost:         c,
		Samples:      make([]int, k),
		Deltas:       make([]float64, k),
		M:            m,
		Norm:         norm2m,
	}
	for i := range inv {
		s := int(math.Round(c * inv[i]))
		if s < 2*m {
			s = 2 * m
		}
		cfg.Samples[i] = s
		// Per-repetition sample count s/m gives δ′_i = (s/m)²/(2n)
		// (approximately), hence δ_i = δ′_i^m.
		sPer := float64(s) / float64(m)
		deltaPrime := sPer * (sPer - 1) / (2 * float64(n))
		if deltaPrime < 0 {
			deltaPrime = 0
		}
		cfg.Deltas[i] = math.Pow(deltaPrime, float64(m))
	}
	return cfg, nil
}

// BuildAsymmetric constructs a 0-round network from an asymmetric config.
// Under the AND rule each node runs an m-repetition amplified tester sized
// to its budget; under the threshold rule each node runs A_{δ_i} once.
func BuildAsymmetric(cfg AsymmetricConfig) (*Network, error) {
	nodes := make([]tester.Tester, cfg.K)
	for i := range nodes {
		sPer := cfg.Samples[i] / cfg.M
		if sPer < 2 {
			sPer = 2
		}
		deltaPrime := float64(sPer) * float64(sPer-1) / (2 * float64(cfg.N))
		if deltaPrime >= 1 {
			return nil, fmt.Errorf("zeroround: node %d per-repetition delta %v ≥ 1", i, deltaPrime)
		}
		if cfg.M == 1 {
			sc, err := tester.NewSingleCollision(cfg.N, deltaPrime, cfg.Eps)
			if err != nil {
				return nil, fmt.Errorf("zeroround: node %d: %w", i, err)
			}
			nodes[i] = sc
			continue
		}
		am, err := tester.NewAmplified(cfg.N, deltaPrime, cfg.Eps, cfg.M)
		if err != nil {
			return nil, fmt.Errorf("zeroround: node %d: %w", i, err)
		}
		nodes[i] = am
	}
	var rule Rule = ANDRule{}
	if cfg.T > 0 {
		rule = ThresholdRule{T: cfg.T}
	}
	return NewNetwork(nodes, rule)
}

// MaxCost returns the realized maximum individual cost max_i s_i·c_i of a
// built asymmetric network (it can differ slightly from cfg.Cost due to
// rounding of the s_i).
func (cfg AsymmetricConfig) MaxCost() float64 {
	max := 0.0
	for i, s := range cfg.Samples {
		if c := float64(s) * cfg.Costs[i]; c > max {
			max = c
		}
	}
	return max
}
