// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the library.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every trial, every simulated network node, and every sampler must be
// seedable so that experiment tables can be regenerated bit-for-bit. The
// standard library's math/rand/v2 generators are excellent, but they do not
// offer a documented, stable "split" operation for deriving independent
// child generators; this package does.
//
// The generator is xoshiro256++ seeded through splitmix64, the construction
// recommended by the xoshiro authors. Splitting derives a child seed by
// hashing the parent's stream with splitmix64, which keeps parent and child
// streams statistically independent for simulation purposes.
package rng

import "math/bits"

// RNG is a deterministic xoshiro256++ pseudo-random generator.
//
// The zero value is not usable; construct with New. RNG is not safe for
// concurrent use; give each goroutine its own generator via Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Split returns a new generator whose stream is independent of r's future
// output. Splitting advances r.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// Seed re-initializes r in place from seed via splitmix64, exactly as New
// does. It lets hot loops re-seed one generator instead of allocating a
// fresh RNG per work item.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro256++ requires a nonzero state; splitmix64 output is zero for
	// all four words with probability 2^-256, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// SeedAt re-initializes r in place as the index-th child stream of base:
// the seed is splitmix64-hashed from base and index, so streams for
// different indices are statistically independent and any (base, index)
// pair names the same stream on every call. This is the indexed analogue of
// Split for deterministic parallel fan-out — worker goroutines derive trial
// i's generator from (base, i) with no shared state and no pre-split array.
func (r *RNG) SeedAt(base, index uint64) {
	_, h := splitmix64(base + (index+1)*0x9e3779b97f4a7c15)
	r.Seed(h)
}

// At returns the index-th child generator of base; see SeedAt.
func At(base, index uint64) *RNG {
	var r RNG
	r.SeedAt(base, index)
	return &r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniformly distributed non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uint64n returns a uniformly distributed integer in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bool returns a uniformly distributed boolean.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly distributed permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, as in math/rand.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// splitmix64 advances the splitmix64 state and returns the new state and
// the next output value.
func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}
