package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 agreed on %d of 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child agreed on %d of 100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split of identical parents diverged at draw %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		n := 1 + i%37
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", trials, mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v by more than 5σ", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(29)
	const trials = 100000
	heads := 0
	for i := 0; i < trials; i++ {
		if r.Bool() {
			heads++
		}
	}
	if math.Abs(float64(heads)-trials/2) > 5*math.Sqrt(trials/4) {
		t.Fatalf("Bool: %d heads of %d", heads, trials)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000003)
	}
}

func TestSeedMatchesNew(t *testing.T) {
	var r RNG
	r.Seed(99)
	fresh := New(99)
	for i := 0; i < 100; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatal("Seed diverges from New")
		}
	}
	// Re-seeding in place restarts the stream.
	r.Seed(99)
	if r.Uint64() != New(99).Uint64() {
		t.Fatal("re-Seed did not restart the stream")
	}
}

func TestAtDeterministicAndDistinct(t *testing.T) {
	a, b := At(5, 17), At(5, 17)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("At(5, 17) not deterministic")
		}
	}
	// Adjacent indices and adjacent bases must give distinct streams.
	pairs := [][2]*RNG{
		{At(5, 0), At(5, 1)},
		{At(5, 3), At(6, 3)},
		{At(0, 0), At(0, 1)},
	}
	for pi, p := range pairs {
		same := 0
		for i := 0; i < 100; i++ {
			if p[0].Uint64() == p[1].Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("pair %d agreed on %d of 100 draws", pi, same)
		}
	}
}

func TestSeedAtMatchesAt(t *testing.T) {
	var r RNG
	r.SeedAt(11, 4)
	want := At(11, 4)
	for i := 0; i < 50; i++ {
		if r.Uint64() != want.Uint64() {
			t.Fatal("SeedAt diverges from At")
		}
	}
}
