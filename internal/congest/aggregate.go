package congest

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/simnet"
)

// AggregateOp is a commutative, associative reduction over node values.
type AggregateOp int

const (
	// AggSum adds the values.
	AggSum AggregateOp = iota + 1
	// AggMin takes the minimum.
	AggMin
	// AggMax takes the maximum.
	AggMax
)

// String implements fmt.Stringer.
func (op AggregateOp) String() string {
	switch op {
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggregateOp(%d)", int(op))
	}
}

func (op AggregateOp) apply(a, b uint64) uint64 {
	switch op {
	case AggSum:
		return a + b
	case AggMin:
		if b < a {
			return b
		}
		return a
	case AggMax:
		if b > a {
			return b
		}
		return a
	default:
		return a
	}
}

// AggregateResult reports a distributed reduction.
type AggregateResult struct {
	// Value is the network-wide reduction, known to every node on return.
	Value uint64
	// Root is the elected leader.
	Root int
	// Stats is the simulator accounting; rounds are O(D).
	Stats simnet.Stats
}

// Aggregate computes a global reduction (sum, min or max) of per-node
// values in O(D) CONGEST rounds, using the same leader-election + echo
// substrate as the uniformity protocol: values ride up the completion
// echoes and the root broadcasts the result. It is exposed as a reusable
// building block — the uniformity protocol's report phase is exactly an
// AggSum of per-node rejection counts.
func Aggregate(g *graph.Graph, values []uint64, op AggregateOp, seed uint64) (AggregateResult, error) {
	if len(values) != g.N() {
		return AggregateResult{}, fmt.Errorf("congest: %d values for %d nodes", len(values), g.N())
	}
	switch op {
	case AggSum, AggMin, AggMax:
	default:
		return AggregateResult{}, fmt.Errorf("congest: unknown aggregate op %d", op)
	}
	nodes := make([]simnet.Node, g.N())
	impls := make([]*aggNode, g.N())
	for v := range nodes {
		impls[v] = &aggNode{op: op, value: values[v]}
		nodes[v] = impls[v]
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{
		MaxBytesPerMessage: congestBandwidth,
		Seed:               seed,
	})
	if err != nil {
		return AggregateResult{}, err
	}
	res := AggregateResult{Root: -1, Stats: stats}
	for v, nd := range impls {
		if nd.err != nil {
			return AggregateResult{}, fmt.Errorf("congest: node %d: %w", v, nd.err)
		}
		if !nd.haveResult {
			return AggregateResult{}, fmt.Errorf("congest: node %d ended without the result", v)
		}
		if nd.isRoot() {
			if res.Root != -1 {
				return AggregateResult{}, fmt.Errorf("congest: multiple roots")
			}
			res.Root = v
			res.Value = nd.result
		} else if v == 0 {
			res.Value = nd.result
		}
	}
	if res.Root == -1 {
		return AggregateResult{}, fmt.Errorf("congest: no root elected")
	}
	// Consistency check: every node must hold the same result.
	for v, nd := range impls {
		if nd.result != res.Value {
			return AggregateResult{}, fmt.Errorf("congest: node %d holds %d, root %d", v, nd.result, res.Value)
		}
	}
	return res, nil
}

// Aggregate wire protocol: the tree wave reuses msgAnnounce/Accept/Reject/
// Complete semantics; the aggregated value follows the completion echo as a
// msgToken on the same FIFO (value fits the 9-byte token format), and the
// root broadcasts the result as a msgDecision-style msgToken downward after
// a msgStart marker.
type aggNode struct {
	ctx   *simnet.Context
	op    AggregateOp
	value uint64

	outQ [][]message

	root         int
	dist         int
	parentPort   int
	pending      map[int]bool
	children     map[int]bool
	childSize    map[int]uint32
	childValue   map[int]uint64
	childHasVal  map[int]bool
	sawBigger    bool
	completeSent bool

	haveResult bool
	result     uint64
	err        error
}

// Init implements simnet.Node.
func (nd *aggNode) Init(ctx *simnet.Context) {
	nd.ctx = ctx
	nd.outQ = make([][]message, ctx.Degree)
	nd.root = ctx.ID
	nd.parentPort = -1
	nd.reset()
	for p := 0; p < ctx.Degree; p++ {
		nd.enqueue(p, message{typ: msgAnnounce, a: uint64(nd.root), b: 0})
		nd.pending[p] = true
	}
}

func (nd *aggNode) reset() {
	nd.pending = make(map[int]bool)
	nd.children = make(map[int]bool)
	nd.childSize = make(map[int]uint32)
	nd.childValue = make(map[int]uint64)
	nd.childHasVal = make(map[int]bool)
	nd.sawBigger = false
	nd.completeSent = false
}

// Round implements simnet.Node.
func (nd *aggNode) Round(in []simnet.PortMessage) ([]simnet.PortMessage, bool) {
	for _, pm := range in {
		m, err := decode(pm.Payload)
		if err != nil {
			nd.err = err
			return nil, true
		}
		nd.handle(pm.Port, m)
	}
	nd.step()
	out := nd.flush()
	return out, nd.haveResult && len(out) == 0
}

func (nd *aggNode) isRoot() bool { return nd.parentPort < 0 }

func (nd *aggNode) handle(port int, m message) {
	switch m.typ {
	case msgAnnounce:
		root, dist := int(m.a), int(m.b)
		if root > nd.root {
			nd.root = root
			nd.dist = dist + 1
			nd.parentPort = port
			nd.reset()
			// Drop queued value tokens from the superseded root: they are
			// not root-tagged, and a stale one delivered to a node that
			// became our parent under the new root would be misread as the
			// result broadcast.
			nd.purgeTokens()
			nd.enqueue(port, message{typ: msgAccept, a: uint64(root)})
			for p := 0; p < nd.ctx.Degree; p++ {
				if p != port {
					nd.enqueue(p, message{typ: msgAnnounce, a: uint64(root), b: uint64(nd.dist)})
					nd.pending[p] = true
				}
			}
			return
		}
		nd.enqueue(port, message{typ: msgReject, a: m.a, b: uint64(nd.root)})
	case msgAccept:
		if int(m.a) == nd.root && nd.pending[port] {
			delete(nd.pending, port)
			nd.children[port] = true
		}
	case msgReject:
		if int(m.a) == nd.root && nd.pending[port] {
			delete(nd.pending, port)
			if int(m.b) > nd.root {
				nd.sawBigger = true
			}
		}
	case msgComplete:
		if int(m.a) == nd.root && nd.children[port] {
			nd.childSize[port] = uint32(m.b) & completeSizeMask
			if m.b&completeBiggerBit != 0 {
				nd.sawBigger = true
			}
		}
	case msgToken:
		// Before the result broadcast: a child's aggregated value (follows
		// its COMPLETE on the same FIFO). After: the root's result arriving
		// from the parent.
		if nd.children[port] && !nd.childHasVal[port] {
			nd.childValue[port] = m.a
			nd.childHasVal[port] = true
			return
		}
		if port == nd.parentPort && !nd.haveResult {
			nd.haveResult = true
			nd.result = m.a
			for p := range nd.children {
				nd.enqueue(p, message{typ: msgToken, a: m.a})
			}
		}
	}
}

func (nd *aggNode) step() {
	if nd.completeSent || len(nd.pending) > 0 {
		return
	}
	for p := range nd.children {
		if _, ok := nd.childSize[p]; !ok {
			return
		}
		if !nd.childHasVal[p] {
			return
		}
	}
	size := 1
	agg := nd.value
	for p := range nd.children {
		size += int(nd.childSize[p])
		agg = nd.op.apply(agg, nd.childValue[p])
	}
	if !nd.isRoot() {
		nd.completeSent = true
		packed := uint64(size) & completeSizeMask
		if nd.sawBigger {
			packed |= completeBiggerBit
		}
		nd.enqueue(nd.parentPort, message{typ: msgComplete, a: uint64(nd.root), b: packed})
		nd.enqueue(nd.parentPort, message{typ: msgToken, a: agg})
		return
	}
	if nd.root == nd.ctx.ID && !nd.sawBigger {
		nd.completeSent = true
		nd.haveResult = true
		nd.result = agg
		for p := range nd.children {
			nd.enqueue(p, message{typ: msgToken, a: agg})
		}
	}
}

func (nd *aggNode) enqueue(port int, m message) {
	nd.outQ[port] = append(nd.outQ[port], m)
}

// purgeTokens removes queued value tokens after a root change.
func (nd *aggNode) purgeTokens() {
	for p := range nd.outQ {
		kept := nd.outQ[p][:0]
		for _, m := range nd.outQ[p] {
			if m.typ != msgToken {
				kept = append(kept, m)
			}
		}
		nd.outQ[p] = kept
	}
}

func (nd *aggNode) flush() []simnet.PortMessage {
	var out []simnet.PortMessage
	for p := range nd.outQ {
		for len(nd.outQ[p]) > 0 {
			m := nd.outQ[p][0]
			if nd.isStale(m) {
				nd.outQ[p] = nd.outQ[p][1:]
				continue
			}
			nd.outQ[p] = nd.outQ[p][1:]
			out = append(out, simnet.PortMessage{Port: p, Payload: encode(m)})
			break
		}
	}
	return out
}

func (nd *aggNode) isStale(m message) bool {
	switch m.typ {
	case msgAnnounce, msgAccept, msgComplete:
		return int(m.a) != nd.root
	default:
		return false
	}
}
