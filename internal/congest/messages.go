package congest

import (
	"encoding/binary"
	"fmt"
)

// Wire format: one type byte followed by fixed-width little-endian fields.
// Every message fits in 16 bytes, the simulator's CONGEST budget of
// B = Θ(log n) bits per edge per round.
type msgType byte

const (
	// msgAnnounce carries (root, dist): "join my BFS tree for root".
	msgAnnounce msgType = iota + 1
	// msgAccept answers an announce: the sender becomes a child for root.
	msgAccept
	// msgReject answers an announce: the sender declines for root.
	msgReject
	// msgComplete is the echo: the sender's subtree for root is complete,
	// carrying the subtree size.
	msgComplete
	// msgStart begins the parameter broadcast and token pipeline, carrying
	// the protocol parameters (τ, T) chosen by the root — which allows the
	// root to derive them from the discovered network size when k is not
	// known in advance.
	msgStart
	// msgCount is the second convergecast: c(v), the number of tokens the
	// sender will forward up (computable only once τ is known).
	msgCount
	// msgToken carries one sample value up the tree.
	msgToken
	// msgTokDone signals the sender has forwarded all its c(v) tokens.
	msgTokDone
	// msgReport aggregates (rejecting, total) virtual-node counts up the
	// tree.
	msgReport
	// msgDecision broadcasts the root's verdict (1 = accept) down the tree.
	msgDecision
)

// message is the decoded form of a wire payload.
type message struct {
	typ msgType
	// a, b are the two generic fields: (root, dist) for announce,
	// (root, 0) for accept/reject, (root, size) for complete,
	// (tau, T) for start, (c, 0) for count, (value, 0) for token,
	// (rejects, virtuals) for report, (accept, 0) for decision.
	a, b uint64
}

func encode(m message) []byte {
	switch m.typ {
	case msgTokDone:
		return []byte{byte(m.typ)}
	case msgToken:
		buf := make([]byte, 9)
		buf[0] = byte(m.typ)
		binary.LittleEndian.PutUint64(buf[1:], m.a)
		return buf
	default:
		buf := make([]byte, 9)
		buf[0] = byte(m.typ)
		binary.LittleEndian.PutUint32(buf[1:], uint32(m.a))
		binary.LittleEndian.PutUint32(buf[5:], uint32(m.b))
		return buf
	}
}

func decode(payload []byte) (message, error) {
	if len(payload) == 0 {
		return message{}, fmt.Errorf("congest: empty payload")
	}
	m := message{typ: msgType(payload[0])}
	switch m.typ {
	case msgTokDone:
		if len(payload) != 1 {
			return message{}, fmt.Errorf("congest: bad %d-byte control message", len(payload))
		}
	case msgToken:
		if len(payload) != 9 {
			return message{}, fmt.Errorf("congest: bad %d-byte token", len(payload))
		}
		m.a = binary.LittleEndian.Uint64(payload[1:])
	case msgAnnounce, msgAccept, msgReject, msgComplete, msgStart, msgCount, msgReport, msgDecision:
		if len(payload) != 9 {
			return message{}, fmt.Errorf("congest: bad %d-byte message type %d", len(payload), m.typ)
		}
		m.a = uint64(binary.LittleEndian.Uint32(payload[1:]))
		m.b = uint64(binary.LittleEndian.Uint32(payload[5:]))
	default:
		return message{}, fmt.Errorf("congest: unknown message type %d", m.typ)
	}
	return m, nil
}
