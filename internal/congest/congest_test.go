package congest

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []message{
		{typ: msgAnnounce, a: 42, b: 7},
		{typ: msgAccept, a: 42},
		{typ: msgReject, a: 41},
		{typ: msgComplete, a: 42, b: 19 | completeBiggerBit},
		{typ: msgStart, a: 7, b: 3},
		{typ: msgCount, a: 5},
		{typ: msgToken, a: 1<<50 + 17},
		{typ: msgTokDone},
		{typ: msgReport, a: 5, b: 12},
		{typ: msgDecision, a: 1},
	}
	for _, m := range msgs {
		payload := encode(m)
		if len(payload) > congestBandwidth {
			t.Errorf("type %d: %d bytes exceeds CONGEST budget", m.typ, len(payload))
		}
		got, err := decode(payload)
		if err != nil {
			t.Fatalf("type %d: %v", m.typ, err)
		}
		if got != m {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},                      // unknown type
		{byte(msgToken), 1, 2},    // short token
		{byte(msgTokDone), 0},     // oversized control
		{byte(msgComplete), 1, 2}, // short complete
	}
	for _, payload := range cases {
		if _, err := decode(payload); err == nil {
			t.Errorf("decode(%v) accepted", payload)
		}
	}
}

// checkPackagingInvariants verifies the three requirements of Definition 2
// plus token conservation.
func checkPackagingInvariants(t *testing.T, res PackagingResult, tokens []uint64, tau int) {
	t.Helper()
	for i, pkg := range res.Packages {
		if len(pkg) != tau {
			t.Fatalf("package %d has size %d, want exactly %d", i, len(pkg), tau)
		}
	}
	if res.Discarded > tau-1 {
		t.Fatalf("root discarded %d tokens, want ≤ τ−1 = %d", res.Discarded, tau-1)
	}
	// Conservation: packaged + discarded = all tokens, as multisets.
	var packaged []uint64
	for _, pkg := range res.Packages {
		packaged = append(packaged, pkg...)
	}
	if got, want := len(packaged)+res.Discarded, len(tokens); got != want {
		t.Fatalf("packaged %d + discarded %d != %d tokens", len(packaged), res.Discarded, want)
	}
	// Each token in at most one package: multiset inclusion. Count values.
	counts := make(map[uint64]int, len(tokens))
	for _, tok := range tokens {
		counts[tok]++
	}
	for _, v := range packaged {
		counts[v]--
		if counts[v] < 0 {
			t.Fatalf("token value %d packaged more times than it exists", v)
		}
	}
}

func TestTokenPackagingTopologies(t *testing.T) {
	topologies := []*graph.Graph{
		graph.NewLine(17),
		graph.NewRing(12),
		graph.NewStar(15),
		graph.NewGrid(4, 6),
		graph.NewBalancedTree(31, 2),
		graph.NewComplete(9),
		graph.NewRandomConnected(40, 0.08, 11),
	}
	for _, g := range topologies {
		t.Run(g.Name(), func(t *testing.T) {
			for _, tau := range []int{1, 2, 3, 5} {
				tokens := make([]uint64, g.N())
				for i := range tokens {
					tokens[i] = uint64(1000 + i)
				}
				res, err := RunTokenPackaging(g, tokens, tau, 5)
				if err != nil {
					t.Fatalf("tau=%d: %v", tau, err)
				}
				checkPackagingInvariants(t, res, tokens, tau)
				if res.Root != g.N()-1 {
					t.Errorf("tau=%d: root %d, want max ID %d", tau, res.Root, g.N()-1)
				}
			}
		})
	}
}

func TestTokenPackagingRoundBound(t *testing.T) {
	// Theorem 5.1: O(D + τ) rounds. Our staggered implementation costs a
	// constant factor; assert rounds ≤ c·(D+τ) + c′ with c = 6, c′ = 20.
	cases := []struct {
		g   *graph.Graph
		tau int
	}{
		{g: graph.NewLine(60), tau: 4},
		{g: graph.NewLine(30), tau: 25},
		{g: graph.NewRing(50), tau: 10},
		{g: graph.NewStar(80), tau: 12},
		{g: graph.NewGrid(8, 8), tau: 7},
		{g: graph.NewRandomConnected(100, 0.05, 3), tau: 9},
	}
	for _, tc := range cases {
		tokens := make([]uint64, tc.g.N())
		for i := range tokens {
			tokens[i] = uint64(i)
		}
		res, err := RunTokenPackaging(tc.g, tokens, tc.tau, 9)
		if err != nil {
			t.Fatalf("%s tau=%d: %v", tc.g.Name(), tc.tau, err)
		}
		d := tc.g.Diameter()
		bound := 6*(d+tc.tau) + 20
		if res.Stats.Rounds > bound {
			t.Errorf("%s tau=%d: %d rounds > %d = 6(D+τ)+20 (D=%d)",
				tc.g.Name(), tc.tau, res.Stats.Rounds, bound, d)
		}
	}
}

func TestTokenPackagingProperty(t *testing.T) {
	// Invariants hold on random connected graphs with random τ and token
	// values (duplicates included).
	f := func(seed uint64, kRaw, tauRaw uint8) bool {
		k := int(kRaw%40) + 2
		tau := int(tauRaw%6) + 1
		g := graph.NewRandomConnected(k, 0.1, seed)
		r := rng.New(seed ^ 0xabc)
		tokens := make([]uint64, k)
		for i := range tokens {
			tokens[i] = uint64(r.Intn(8)) // deliberately collision-heavy
		}
		res, err := RunTokenPackaging(g, tokens, tau, seed)
		if err != nil {
			return false
		}
		if res.Discarded > tau-1 {
			return false
		}
		total := res.Discarded
		for _, pkg := range res.Packages {
			if len(pkg) != tau {
				return false
			}
			total += len(pkg)
		}
		return total == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveParamsFeasibleRegime(t *testing.T) {
	// Rigorous feasibility needs tens of thousands of nodes (DESIGN.md
	// §3.1); the calibrated model is feasible at k=8000.
	p, err := SolveParamsCalibrated(1<<12, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatalf("expected feasible calibrated params, got %+v", p)
	}
	if !p.Calibrated {
		t.Fatal("calibrated flag not set")
	}
	rig, err := SolveParams(1<<12, 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rig.Feasible {
		t.Fatalf("expected feasible rigorous params at k=40000, got %+v", rig)
	}
	if rig.Calibrated {
		t.Fatal("rigorous params marked calibrated")
	}
	if p.Tau < 2 {
		t.Fatalf("tau = %d", p.Tau)
	}
	if p.VirtualNodes < 1 {
		t.Fatalf("virtual nodes = %d", p.VirtualNodes)
	}
	if float64(p.T) <= p.EtaUniform || float64(p.T) >= p.EtaFar {
		t.Fatalf("T=%d outside (ηU=%v, ηFar=%v)", p.T, p.EtaUniform, p.EtaFar)
	}
}

func TestSolveParamsTauScaling(t *testing.T) {
	// τ = Θ(n/(kε⁴)): quadrupling n should roughly quadruple τ.
	p1, err := SolveParamsCalibrated(1<<12, 16000, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SolveParamsCalibrated(1<<14, 16000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Feasible || !p2.Feasible {
		t.Skipf("infeasible regime: %+v / %+v", p1, p2)
	}
	ratio := float64(p2.Tau) / float64(p1.Tau)
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("4×n changed τ by %vx, want ~4x (τ₁=%d τ₂=%d)", ratio, p1.Tau, p2.Tau)
	}
}

func TestSolveParamsErrors(t *testing.T) {
	if _, err := SolveParams(1000, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := SolveParams(1000, 100, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestUniformityProtocolEndToEnd(t *testing.T) {
	// Theorem 1.4 end-to-end on a random graph: error ≤ 1/3 on both sides.
	n, k, eps := 1<<12, 8000, 1.0
	p, err := SolveParamsCalibrated(n, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Skipf("infeasible regime: %+v", p)
	}
	g := graph.NewRandomConnected(k, 0.0008, 1)
	r := rng.New(12)
	const trials = 12
	errU, err := EstimateError(g, dist.NewUniform(n), p, true, trials, r)
	if err != nil {
		t.Fatal(err)
	}
	errFar, err := EstimateError(g, dist.NewTwoBump(n, eps, 3), p, false, trials, r)
	if err != nil {
		t.Fatal(err)
	}
	if errU > 1.0/3+0.2 {
		t.Errorf("uniform error %v too high", errU)
	}
	if errFar > 1.0/3+0.2 {
		t.Errorf("far error %v too high", errFar)
	}
}

func TestUniformityDecisionConsistency(t *testing.T) {
	// Every node must end with the root's decision; the root is the max ID;
	// virtual-node counts must match the packages.
	n, k := 1<<12, 600
	p, err := SolveParams(n, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.NewGrid(20, 30)
	r := rng.New(5)
	res, err := RunUniformityOnDistribution(g, dist.NewUniform(n), p, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root != k-1 {
		t.Errorf("root %d, want %d", res.Root, k-1)
	}
	if res.Virtuals != len(res.Packages) {
		t.Errorf("root counted %d virtual nodes, %d packages exist", res.Virtuals, len(res.Packages))
	}
	rej := 0
	for _, pkg := range res.Packages {
		if hasCollision(pkg) {
			rej++
		}
	}
	if rej != res.Rejects {
		t.Errorf("root counted %d rejects, packages show %d", res.Rejects, rej)
	}
	if got, want := res.Accept, rej < p.T; got != want {
		t.Errorf("decision %v inconsistent with rejects %d vs T=%d", got, rej, p.T)
	}
}

func TestUniformityRoundBound(t *testing.T) {
	// Theorem 1.4: O(D + n/(kε⁴)) = O(D + τ) rounds.
	n, k := 1<<12, 600
	p, err := SolveParams(n, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{
		graph.NewLine(k),
		graph.NewGrid(20, 30),
		graph.NewRandomConnected(k, 0.01, 2),
	} {
		r := rng.New(77)
		res, err := RunUniformityOnDistribution(g, dist.NewUniform(n), p, r)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		d := g.Diameter()
		bound := 8*(d+p.Tau) + 30
		if res.Stats.Rounds > bound {
			t.Errorf("%s: %d rounds > %d (D=%d, τ=%d)",
				g.Name(), res.Stats.Rounds, bound, d, p.Tau)
		}
	}
}

func TestUniformityBandwidthIsCONGEST(t *testing.T) {
	n, k := 1<<12, 200
	p, err := SolveParams(n, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.NewRandomConnected(k, 0.02, 9)
	r := rng.New(3)
	res, err := RunUniformityOnDistribution(g, dist.NewUniform(n), p, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxMessageBytes > congestBandwidth {
		t.Fatalf("max message %d bytes exceeds CONGEST budget %d",
			res.Stats.MaxMessageBytes, congestBandwidth)
	}
}

func TestRunUniformityRejectsTinyTau(t *testing.T) {
	g := graph.NewLine(4)
	if _, err := RunUniformity(g, []uint64{1, 2, 3, 4}, Params{Tau: 1, T: 1}, 1); err == nil {
		t.Fatal("τ=1 accepted for uniformity protocol")
	}
}

func TestBuildNodesValidation(t *testing.T) {
	g := graph.NewLine(3)
	if _, _, err := buildNodes(g, []uint64{1}, ModePackagingOnly, 2, 0, nil); err == nil {
		t.Error("token/node mismatch accepted")
	}
	if _, _, err := buildNodes(g, []uint64{1, 2, 3}, ModePackagingOnly, 0, 0, nil); err == nil {
		t.Error("τ=0 accepted")
	}
}

func TestSingleNodeDegenerate(t *testing.T) {
	// k=1: the lone node is the root, packages nothing (its token is the
	// leftover), and accepts.
	g := graph.New(1, "single")
	res, err := RunTokenPackaging(g, []uint64{7}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 0 || res.Discarded != 1 {
		t.Fatalf("packages=%d discarded=%d, want 0/1", len(res.Packages), res.Discarded)
	}
}

func TestPackagesSortedWithinNetworkHaveAllTokens(t *testing.T) {
	g := graph.NewBalancedTree(20, 3)
	tokens := make([]uint64, 20)
	for i := range tokens {
		tokens[i] = uint64(100 * i)
	}
	res, err := RunTokenPackaging(g, tokens, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, pkg := range res.Packages {
		got = append(got, pkg...)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 20-res.Discarded {
		t.Fatalf("%d tokens packaged, want %d", len(got), 20-res.Discarded)
	}
	// No token appears twice.
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("token %d packaged twice", got[i])
		}
	}
}

func TestPredictedTau(t *testing.T) {
	if got := PredictedTau(1000, 10, 1); math.Abs(got-100) > 1e-9 {
		t.Fatalf("PredictedTau = %v, want 100", got)
	}
	if got := PredictedTau(1000, 10, 0.5); math.Abs(got-1600) > 1e-9 {
		t.Fatalf("PredictedTau(eps=0.5) = %v, want 1600", got)
	}
}

func BenchmarkTokenPackagingGrid(b *testing.B) {
	g := graph.NewGrid(10, 10)
	tokens := make([]uint64, g.N())
	for i := range tokens {
		tokens[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTokenPackaging(g, tokens, 5, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniformityProtocol(b *testing.B) {
	n, k := 1<<12, 400
	p, err := SolveParams(n, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.NewGrid(20, 20)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunUniformityOnDistribution(g, dist.NewUniform(n), p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnknownKDiscoversNetworkSize(t *testing.T) {
	// The unknown-k extension: nodes are never told k; the root must
	// discover it exactly and derive working parameters.
	n, eps := 1<<12, 1.0
	for _, g := range []*graph.Graph{
		graph.NewGrid(20, 30),
		graph.NewRandomConnected(500, 0.01, 4),
		graph.NewLine(200),
	} {
		r := rng.New(9)
		tokens := make([]uint64, g.N())
		for i := range tokens {
			tokens[i] = uint64(dist.NewUniform(n).Sample(r))
		}
		res, err := RunUniformityUnknownK(g, tokens, n, eps, 7)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if res.DiscoveredK != g.N() {
			t.Errorf("%s: root discovered k=%d, want %d", g.Name(), res.DiscoveredK, g.N())
		}
		if res.Tau < 2 || res.T < 1 {
			t.Errorf("%s: derived params τ=%d T=%d", g.Name(), res.Tau, res.T)
		}
		// The packaging invariants must hold with the derived τ.
		total := res.Discarded
		for _, pkg := range res.Packages {
			if len(pkg) != res.Tau {
				t.Errorf("%s: package size %d != derived τ %d", g.Name(), len(pkg), res.Tau)
			}
			total += len(pkg)
		}
		if total != g.N() {
			t.Errorf("%s: token conservation broken: %d != %d", g.Name(), total, g.N())
		}
	}
}

func TestUnknownKMatchesKnownKDecision(t *testing.T) {
	// With the same seed and tokens, the unknown-k run must use the same
	// parameters the calibrated solver would give for the true k, and the
	// known-k run must agree on the verdict.
	n, eps := 1<<12, 1.0
	g := graph.NewRandomConnected(600, 0.008, 2)
	p, err := SolveParamsCalibrated(n, g.N(), eps)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	tokens := make([]uint64, g.N())
	for i := range tokens {
		tokens[i] = uint64(dist.NewHalfSupport(n).Sample(r))
	}
	unknown, err := RunUniformityUnknownK(g, tokens, n, eps, 5)
	if err != nil {
		t.Fatal(err)
	}
	known, err := RunUniformity(g, tokens, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if unknown.Tau != p.Tau || unknown.T != p.T {
		t.Errorf("derived (τ=%d,T=%d) != solver (τ=%d,T=%d)", unknown.Tau, unknown.T, p.Tau, p.T)
	}
	if unknown.Accept != known.Accept {
		t.Errorf("verdicts differ: unknown-k %v vs known-k %v", unknown.Accept, known.Accept)
	}
}

func TestUnknownKRoundOverheadIsOneDiameter(t *testing.T) {
	// The extra COUNT wave costs O(D) more rounds, not more.
	n, eps := 1<<12, 1.0
	g := graph.NewLine(300)
	p, err := SolveParamsCalibrated(n, g.N(), eps)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	tokens := make([]uint64, g.N())
	for i := range tokens {
		tokens[i] = uint64(dist.NewUniform(n).Sample(r))
	}
	known, err := RunUniformity(g, tokens, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	unknown, err := RunUniformityUnknownK(g, tokens, n, eps, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Diameter()
	if unknown.Stats.Rounds > known.Stats.Rounds+3*d+20 {
		t.Errorf("unknown-k took %d rounds vs known-k %d (D=%d)",
			unknown.Stats.Rounds, known.Stats.Rounds, d)
	}
}

func TestMultiSamplePerNode(t *testing.T) {
	// The s > 1 generalization: 100 nodes × 5 samples behave like 500
	// tokens — invariants hold and all samples are packaged or discarded.
	g := graph.NewRandomConnected(100, 0.05, 3)
	r := rng.New(13)
	const sPer = 5
	per := make([][]uint64, g.N())
	total := 0
	for v := range per {
		per[v] = make([]uint64, sPer)
		for j := range per[v] {
			per[v][j] = uint64(1000*v + j)
			total++
		}
	}
	p := Params{Tau: 7, T: 3}
	res, err := RunUniformityMulti(g, per, p, r.Uint64())
	if err != nil {
		t.Fatal(err)
	}
	packaged := res.Discarded
	seen := make(map[uint64]bool)
	for _, pkg := range res.Packages {
		if len(pkg) != p.Tau {
			t.Fatalf("package size %d", len(pkg))
		}
		for _, tok := range pkg {
			if seen[tok] {
				t.Fatalf("token %d packaged twice", tok)
			}
			seen[tok] = true
		}
		packaged += len(pkg)
	}
	if packaged != total {
		t.Fatalf("packaged+discarded %d, want %d", packaged, total)
	}
	if res.Discarded > p.Tau-1 {
		t.Fatalf("discarded %d > τ−1", res.Discarded)
	}
}

func TestMultiSampleEmptyNodesAllowed(t *testing.T) {
	// Nodes with zero samples still participate in the tree and pipeline.
	g := graph.NewLine(6)
	per := make([][]uint64, 6)
	per[0] = []uint64{1, 2, 3}
	per[3] = []uint64{4}
	res, err := RunUniformityMulti(g, per, Params{Tau: 2, T: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	packaged := res.Discarded
	for _, pkg := range res.Packages {
		packaged += len(pkg)
	}
	if packaged != 4 {
		t.Fatalf("accounted %d tokens, want 4", packaged)
	}
}
