package congest

import (
	"strings"
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
)

// newTestNode wires a node with a 3-port context for white-box tests.
func newTestNode(id, degree int, tau int) *node {
	nd := newNode(ModePackagingOnly, tau, 0, []uint64{uint64(100 + id)}, nil)
	nd.Init(&simnet.Context{ID: id, Degree: degree, NumNodes: 10, RNG: rng.New(uint64(id))})
	return nd
}

func TestNodeInitAnnouncesItself(t *testing.T) {
	nd := newTestNode(5, 3, 2)
	out := nd.flush()
	if len(out) != 3 {
		t.Fatalf("initial flush sent %d messages, want 3 announces", len(out))
	}
	for _, pm := range out {
		m, err := decode(pm.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if m.typ != msgAnnounce || m.a != 5 || m.b != 0 {
			t.Fatalf("unexpected initial message %+v", m)
		}
	}
}

func TestNodeAdoptsLargerRootOnly(t *testing.T) {
	nd := newTestNode(5, 3, 2)
	nd.flush()
	// Smaller root: reject.
	nd.handle(0, message{typ: msgAnnounce, a: 3, b: 0})
	if nd.root != 5 {
		t.Fatalf("adopted smaller root %d", nd.root)
	}
	out := nd.flush()
	if len(out) != 1 {
		t.Fatalf("want 1 reject, got %d messages", len(out))
	}
	m, _ := decode(out[0].Payload)
	if m.typ != msgReject || m.a != 3 || m.b != 5 {
		t.Fatalf("reject = %+v, want root 3 with our root 5", m)
	}
	// Larger root: adopt, accept toward the parent, announce elsewhere.
	nd.handle(1, message{typ: msgAnnounce, a: 9, b: 2})
	if nd.root != 9 || nd.dist != 3 || nd.parentPort != 1 {
		t.Fatalf("adoption state root=%d dist=%d parent=%d", nd.root, nd.dist, nd.parentPort)
	}
	out = nd.flush()
	seenAccept := false
	announces := 0
	for _, pm := range out {
		m, _ := decode(pm.Payload)
		switch m.typ {
		case msgAccept:
			seenAccept = true
			if pm.Port != 1 || m.a != 9 {
				t.Fatalf("accept on port %d for root %d", pm.Port, m.a)
			}
		case msgAnnounce:
			announces++
			if m.a != 9 || m.b != 3 {
				t.Fatalf("announce %+v, want root 9 dist 3", m)
			}
		}
	}
	if !seenAccept || announces != 2 {
		t.Fatalf("accept=%v announces=%d, want accept + 2 announces", seenAccept, announces)
	}
}

func TestNodeStaleMessagesDropped(t *testing.T) {
	nd := newTestNode(5, 2, 2)
	nd.flush() // drain initial announces for root 5
	// Queue a COMPLETE for root 5, then adopt root 9: the stale COMPLETE
	// must never hit the wire.
	nd.enqueue(0, message{typ: msgComplete, a: 5, b: 1})
	nd.handle(1, message{typ: msgAnnounce, a: 9, b: 0})
	for i := 0; i < 5; i++ {
		for _, pm := range nd.flush() {
			m, _ := decode(pm.Payload)
			if m.typ == msgComplete && m.a == 5 {
				t.Fatal("stale complete for superseded root was sent")
			}
		}
	}
}

func TestNodeBiggerRootEvidencePropagates(t *testing.T) {
	// A reject carrying a larger current root sets sawBigger; the
	// completion echo then carries the evidence bit.
	nd := newTestNode(5, 1, 2)
	nd.flush()
	nd.handle(0, message{typ: msgReject, a: 5, b: 7})
	if !nd.sawBigger {
		t.Fatal("bigger-root evidence not recorded")
	}
	// With pending resolved and no children, a non-root would now complete;
	// this node is its own root, so it must NOT start the pipeline.
	nd.step()
	if nd.started {
		t.Fatal("non-maximal root started the pipeline")
	}
}

func TestNodeBenignRejectDoesNotBlockRoot(t *testing.T) {
	// Same-root rejects (cross edges within the tree) carry b == a and must
	// not count as bigger-root evidence.
	nd := newTestNode(9, 1, 2)
	nd.flush()
	nd.handle(0, message{typ: msgReject, a: 9, b: 9})
	if nd.sawBigger {
		t.Fatal("benign reject recorded as bigger-root evidence")
	}
	nd.step()
	if !nd.started || !nd.treeDone {
		t.Fatal("maximal root with clean echoes did not start")
	}
	if nd.treeSize != 1 {
		t.Fatalf("tree size %d, want 1", nd.treeSize)
	}
}

func TestNodeCountWave(t *testing.T) {
	// A node with two children: counts arrive, c(v) = (1+c1+c2) mod τ.
	nd := newTestNode(5, 3, 4)
	nd.flush()
	// Become a child of port 0 for root 9, with children on ports 1,2.
	nd.handle(0, message{typ: msgAnnounce, a: 9, b: 0})
	nd.flush()
	nd.handle(1, message{typ: msgAccept, a: 9})
	nd.handle(2, message{typ: msgAccept, a: 9})
	nd.handle(1, message{typ: msgComplete, a: 9, b: 3})
	nd.handle(2, message{typ: msgComplete, a: 9, b: 2})
	nd.step() // sends its own COMPLETE(size=6)
	found := false
	for _, pm := range nd.flush() {
		m, _ := decode(pm.Payload)
		if m.typ == msgComplete {
			found = true
			if m.a != 9 || m.b&completeSizeMask != 6 {
				t.Fatalf("complete %+v, want root 9 size 6", m)
			}
		}
	}
	if !found {
		t.Fatal("no completion echo sent")
	}
	// Start arrives with τ=4, T=1; children report counts 3 and 6.
	nd.handle(0, message{typ: msgStart, a: 4, b: 1})
	nd.handle(1, message{typ: msgCount, a: 3})
	nd.handle(2, message{typ: msgCount, a: 6})
	nd.step()
	if !nd.haveCount {
		t.Fatal("count not computed")
	}
	if nd.cSelf != (1+3+6)%4 {
		t.Fatalf("c(v) = %d, want %d", nd.cSelf, (1+3+6)%4)
	}
}

func TestNodeInvalidStartParams(t *testing.T) {
	nd := newTestNode(5, 1, 0)
	nd.flush()
	nd.handle(0, message{typ: msgAnnounce, a: 9, b: 0})
	nd.flush()
	nd.handle(0, message{typ: msgStart, a: 0, b: 0})
	if nd.err == nil || !strings.Contains(nd.err.Error(), "invalid τ") {
		t.Fatalf("invalid τ not rejected: %v", nd.err)
	}
}

func TestNodeSolverFailureSurfaces(t *testing.T) {
	nd := newNode(ModePackagingOnly, 0, 0, []uint64{1}, nil)
	nd.Init(&simnet.Context{ID: 9, Degree: 0, NumNodes: 1, RNG: rng.New(1)})
	nd.step() // lone root completes; no params and no solver
	if nd.err == nil || !strings.Contains(nd.err.Error(), "no parameters") {
		t.Fatalf("missing solver not surfaced: %v", nd.err)
	}
}

func TestHasCollisionPackage(t *testing.T) {
	if hasCollision([]uint64{1, 2, 3}) {
		t.Error("distinct package flagged")
	}
	if !hasCollision([]uint64{4, 5, 4}) {
		t.Error("colliding package missed")
	}
	if hasCollision(nil) {
		t.Error("empty package flagged")
	}
}
