package congest

import (
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
)

func TestAggregateOps(t *testing.T) {
	g := graph.NewGrid(5, 8)
	values := make([]uint64, g.N())
	sum := uint64(0)
	for i := range values {
		values[i] = uint64(3*i + 1)
		sum += values[i]
	}
	tests := []struct {
		op   AggregateOp
		want uint64
	}{
		{op: AggSum, want: sum},
		{op: AggMin, want: 1},
		{op: AggMax, want: uint64(3*(g.N()-1) + 1)},
	}
	for _, tt := range tests {
		t.Run(tt.op.String(), func(t *testing.T) {
			res, err := Aggregate(g, values, tt.op, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != tt.want {
				t.Fatalf("%s = %d, want %d", tt.op, res.Value, tt.want)
			}
			if res.Root != g.N()-1 {
				t.Fatalf("root %d, want max ID", res.Root)
			}
		})
	}
}

func TestAggregateRoundsLinearInDiameter(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewLine(120),
		graph.NewRing(80),
		graph.NewStar(100),
		graph.NewRandomConnected(150, 0.04, 5),
	} {
		values := make([]uint64, g.N())
		for i := range values {
			values[i] = uint64(i)
		}
		res, err := Aggregate(g, values, AggSum, 3)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		d := g.Diameter()
		if res.Stats.Rounds > 8*d+20 {
			t.Errorf("%s: %d rounds > 8D+20 (D=%d)", g.Name(), res.Stats.Rounds, d)
		}
	}
}

func TestAggregatePropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64, kRaw uint8, raw []uint8) bool {
		k := int(kRaw%30) + 1
		g := graph.NewRandomConnected(k, 0.1, seed)
		values := make([]uint64, k)
		var sum, max uint64
		min := ^uint64(0)
		r := rng.New(seed ^ 99)
		for i := range values {
			values[i] = r.Uint64() % 1000
			sum += values[i]
			if values[i] < min {
				min = values[i]
			}
			if values[i] > max {
				max = values[i]
			}
		}
		_ = raw
		s, err := Aggregate(g, values, AggSum, seed)
		if err != nil || s.Value != sum {
			return false
		}
		mn, err := Aggregate(g, values, AggMin, seed)
		if err != nil || mn.Value != min {
			return false
		}
		mx, err := Aggregate(g, values, AggMax, seed)
		return err == nil && mx.Value == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateValidation(t *testing.T) {
	g := graph.NewLine(3)
	if _, err := Aggregate(g, []uint64{1}, AggSum, 1); err == nil {
		t.Error("value/node mismatch accepted")
	}
	if _, err := Aggregate(g, []uint64{1, 2, 3}, AggregateOp(99), 1); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestAggregateSingleNode(t *testing.T) {
	g := graph.New(1, "single")
	res, err := Aggregate(g, []uint64{42}, AggMax, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42 || res.Root != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestAggregateOpString(t *testing.T) {
	if AggSum.String() != "sum" || AggMin.String() != "min" || AggMax.String() != "max" {
		t.Error("op strings wrong")
	}
	if AggregateOp(9).String() != "AggregateOp(9)" {
		t.Error("unknown op string wrong")
	}
}
