package congest

import "testing"

// FuzzDecode ensures arbitrary payloads never panic the wire decoder and
// that valid messages survive a decode→encode→decode round trip.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(msgAnnounce), 1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{byte(msgToken), 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{byte(msgTokDone)})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decode(payload)
		if err != nil {
			return
		}
		re, err := decode(encode(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re != m {
			t.Fatalf("round trip changed message: %+v vs %+v", m, re)
		}
	})
}
