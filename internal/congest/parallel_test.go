package congest

import (
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
)

// TestEstimateErrorParallelWorkerInvariant pins the estimator's central
// claim: the same caller stream yields the same estimate at any worker
// count, and the caller's RNG advances identically.
func TestEstimateErrorParallelWorkerInvariant(t *testing.T) {
	g := graph.NewGrid(4, 5)
	n := 256
	p, err := SolveParamsCalibrated(n, g.N(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	d := dist.NewUniform(n)

	type outcome struct {
		est  float64
		next uint64
	}
	var want outcome
	for i, workers := range []int{1, 2, 3, 8} {
		r := rng.New(7)
		est, err := EstimateErrorParallel(g, d, p, true, 25, workers, r)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := outcome{est: est, next: r.Uint64()}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: (est=%v, next=%d), want (est=%v, next=%d)",
				workers, got.est, got.next, want.est, want.next)
		}
	}
}

func TestEstimateErrorParallelRejectsFar(t *testing.T) {
	g := graph.NewRandomConnected(2000, 6.0/2000, 3)
	n := 1024
	p, err := SolveParamsCalibrated(n, g.N(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	far := dist.NewHalfSupport(n)
	est, err := EstimateErrorParallel(g, far, p, false, 12, 0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if est > 1.0/3 {
		t.Fatalf("far-input error rate %v > 1/3", est)
	}
}

func TestEstimateErrorParallelPropagatesError(t *testing.T) {
	g := graph.NewRing(8)
	if _, err := EstimateErrorParallel(g, dist.NewUniform(16), Params{Tau: 1}, true, 4, 2, rng.New(1)); err == nil {
		t.Fatal("expected error for τ < 2")
	}
}

// benchUniformityEngine measures one full uniformity run per iteration on
// the given simulator engine — the CONGEST-path before/after pair for the
// flat engine (BenchmarkUniformityFlat vs BenchmarkUniformityChannelRef).
func benchUniformityEngine(b *testing.B, engine func(*graph.Graph, []simnet.Node, simnet.Config) (simnet.Stats, error)) {
	b.Helper()
	n, k := 1<<12, 400
	p, err := SolveParams(n, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.NewGrid(20, 20)
	r := rng.New(1)
	d := dist.NewUniform(n)
	tokens := make([]uint64, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range tokens {
			tokens[v] = uint64(d.Sample(r))
		}
		nodes, impls, err := buildNodes(g, tokens, ModeUniformity, p.Tau, p.T, nil)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := engine(g, nodes, simnet.Config{MaxBytesPerMessage: congestBandwidth, Seed: r.Uint64()})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := collectUniformity(stats, impls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniformityFlat(b *testing.B)       { benchUniformityEngine(b, simnet.Run) }
func BenchmarkUniformityChannelRef(b *testing.B) { benchUniformityEngine(b, simnet.RunChannel) }

// TestUniformityEnginesAgree runs the full uniformity protocol under both
// simulator engines on a spread of topologies and requires identical
// verdicts, aggregates and stats — the congest-level differential test for
// the flat engine.
func TestUniformityEnginesAgree(t *testing.T) {
	n := 256
	topologies := []*graph.Graph{
		graph.NewLine(20),
		graph.NewRing(24),
		graph.NewStar(16),
		graph.NewGrid(4, 6),
		graph.NewBalancedTree(21, 2),
		graph.NewRandomConnected(30, 0.15, 9),
	}
	for _, g := range topologies {
		p, err := SolveParamsCalibrated(n, g.N(), 1.0)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		r := rng.New(11)
		tokens := make([]uint64, g.N())
		d := dist.NewUniform(n)
		for v := range tokens {
			tokens[v] = uint64(d.Sample(r))
		}
		seed := r.Uint64()

		run := func(engine func(*graph.Graph, []simnet.Node, simnet.Config) (simnet.Stats, error)) (UniformityResult, error) {
			nodes, impls, err := buildNodes(g, tokens, ModeUniformity, p.Tau, p.T, nil)
			if err != nil {
				return UniformityResult{}, err
			}
			stats, err := engine(g, nodes, simnet.Config{MaxBytesPerMessage: congestBandwidth, Seed: seed})
			if err != nil {
				return UniformityResult{}, err
			}
			return collectUniformity(stats, impls)
		}
		flat, ferr := run(simnet.Run)
		legacy, lerr := run(simnet.RunChannel)
		if (ferr == nil) != (lerr == nil) || (ferr != nil && ferr.Error() != lerr.Error()) {
			t.Fatalf("%s: errors differ: flat=%v legacy=%v", g.Name(), ferr, lerr)
		}
		if ferr != nil {
			continue
		}
		if flat.Accept != legacy.Accept || flat.Rejects != legacy.Rejects ||
			flat.Virtuals != legacy.Virtuals || flat.Root != legacy.Root ||
			flat.Discarded != legacy.Discarded || flat.Stats != legacy.Stats {
			t.Fatalf("%s: results differ:\nflat:   %+v\nlegacy: %+v", g.Name(), flat, legacy)
		}
	}
}
