package congest

import (
	"fmt"
	"math"

	"github.com/unifdist/unifdist/internal/tester"
)

// Params holds the resolved parameters of the CONGEST uniformity protocol
// (Theorem 1.4): τ-token packaging followed by the threshold tester of
// Theorem 1.2 over ℓ ≈ k/τ virtual nodes with τ samples each.
type Params struct {
	// N is the domain size, K the network size, Eps the distance parameter.
	N, K int
	Eps  float64
	// Tau is the package size τ = Θ(n/(kε⁴)).
	Tau int
	// Delta is a package's completeness error C(τ,2)/n.
	Delta float64
	// T is the rejection threshold over virtual nodes.
	T int
	// VirtualNodes is the planned number of packages ⌊k/τ⌋.
	VirtualNodes int
	// EtaUniform and EtaFar are the expected rejecting-package counts under
	// uniform and (guaranteed, worst-case) ε-far inputs.
	EtaUniform, EtaFar float64
	// Gamma is the realized slack of the per-package tester.
	Gamma float64
	// Feasible reports whether eq. (5)'s window contains the integer T.
	Feasible bool
	// Calibrated reports that the far-side probability model is the
	// canonical two-bump Poisson estimate rather than the worst-case
	// Lemma 3.3 bound (see DESIGN.md §3.1). Calibrated parameters need far
	// fewer nodes but guarantee the error bound only for instances whose
	// collision probability is ≈ (1+ε²)/n.
	Calibrated bool
}

// SolveParams finds the smallest package size τ for which the virtual-node
// threshold tester is feasible. Growing τ raises each package's rejection
// mass quadratically while shrinking the package count linearly, so the
// total mass ℓ·δ ≈ k(τ−1)/(2n) grows with τ; the tradeoff against the
// slack γ mirrors SolveThreshold.
func SolveParams(n, k int, eps float64) (Params, error) {
	return solveParams(n, k, eps, false)
}

// SolveParamsCalibrated is SolveParams with the far-side probability
// modeled by the canonical two-bump Poisson estimate (collision probability
// exactly (1+ε²)/n) instead of the worst-case Lemma 3.3 bound. It is
// feasible at much smaller network sizes and is what the quick experiment
// mode uses; see DESIGN.md §3.1.
func SolveParamsCalibrated(n, k int, eps float64) (Params, error) {
	return solveParams(n, k, eps, true)
}

func solveParams(n, k int, eps float64, calibrated bool) (Params, error) {
	if k < 2 {
		return Params{}, fmt.Errorf("congest: k=%d < 2", k)
	}
	if eps <= 0 || eps > 2 {
		return Params{}, fmt.Errorf("congest: eps=%v outside (0, 2]", eps)
	}
	ln3 := math.Log(3)
	eval := func(tau int) (Params, float64) {
		delta := float64(tau) * float64(tau-1) / (2 * float64(n))
		if delta >= 1 {
			return Params{}, math.Inf(-1)
		}
		ell := k / tau
		if ell < 1 {
			return Params{}, math.Inf(-1)
		}
		gp, err := tester.SolveGap(n, delta, eps)
		if err != nil {
			return Params{}, math.Inf(-1)
		}
		pU := 1 - tester.UniformNoCollisionProb(n, tau)
		pFar := tester.FarRejectLowerBound(n, tau, eps)
		if calibrated {
			pFar = tester.FarRejectPoisson(n, tau, eps)
		}
		etaU := float64(ell) * pU
		etaFar := float64(ell) * pFar
		lower := etaU + math.Sqrt(3*ln3*etaU)
		upper := etaFar - math.Sqrt(2*ln3*math.Max(etaFar, 0))
		t := int(math.Ceil((lower + upper) / 2))
		if t < 1 {
			t = 1
		}
		p := Params{
			N:            n,
			K:            k,
			Eps:          eps,
			Tau:          tau,
			Delta:        delta,
			T:            t,
			VirtualNodes: ell,
			EtaUniform:   etaU,
			EtaFar:       etaFar,
			Gamma:        gp.Gamma,
			Feasible: lower <= upper &&
				float64(t) >= lower && float64(t) <= upper,
			Calibrated: calibrated,
		}
		return p, upper - lower
	}

	var (
		best       Params
		bestWindow = math.Inf(-1)
		found      bool
	)
	maxTau := k / 2
	if maxTau < 2 {
		maxTau = 2
	}
	for tau := 2; tau <= maxTau; tau++ {
		p, window := eval(tau)
		if p.Tau == 0 {
			continue
		}
		if p.Feasible {
			return p, nil
		}
		if !found || window > bestWindow {
			found = true
			bestWindow = window
			best = p
		}
	}
	if !found {
		return Params{}, fmt.Errorf("congest: no parameters for n=%d k=%d eps=%v", n, k, eps)
	}
	return best, nil
}

// PredictedTau returns the paper's asymptotic package size n/(kε⁴), used by
// the experiment tables to compare the solver's τ against the theorem's
// scaling.
func PredictedTau(n, k int, eps float64) float64 {
	return float64(n) / (float64(k) * math.Pow(eps, 4))
}
