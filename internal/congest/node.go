// Package congest implements the paper's CONGEST-model protocols: leader
// election and BFS-tree construction by max-ID flooding with echo
// termination, τ-token packaging (Theorem 5.1), and the full distributed
// uniformity tester of Theorem 1.4 built on top of them.
//
// The implementation is faithful to the model — and slightly stronger than
// the paper's assumptions: nodes need to know neither the diameter D nor
// the network size k. Completion is detected via echoes carrying subtree
// sizes and "bigger root seen" evidence (a completed tree with no such
// evidence necessarily spans the whole graph), and the root derives the
// protocol parameters (τ, T) from the discovered k before broadcasting
// them with the start signal. Every message fits in the simulator's
// CONGEST budget (16 bytes = Θ(log n) bits).
package congest

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/simnet"
)

// Mode selects how much of the protocol runs.
type Mode int

const (
	// ModePackagingOnly stops after τ-token packaging (Theorem 5.1).
	ModePackagingOnly Mode = iota + 1
	// ModeUniformity additionally tests each package, aggregates rejection
	// counts up the tree and broadcasts the root's decision (Theorem 1.4).
	ModeUniformity
)

// completeSizeMask packs the subtree size and the bigger-root-evidence flag
// into msgComplete's b field.
const (
	completeSizeMask  = 0x7fffffff
	completeBiggerBit = 1 << 31
)

// node is the per-vertex protocol state machine.
type node struct {
	ctx    *simnet.Context
	mode   Mode
	tokens []uint64 // this node's initial samples (s ≥ 1 supported)

	// Configured parameters; cfgTau == 0 means "unknown k": the root
	// derives (τ, T) from the discovered network size via paramSolver.
	cfgTau, cfgT int
	paramSolver  func(k int) (tau, threshold int, err error)

	// Active parameters, fixed once the start broadcast arrives (or, at
	// the root, once the tree completes).
	tau, t int

	// Per-port outgoing FIFO queues; at most one message per port drains
	// per round, which serializes logical messages sharing an edge.
	outQ [][]message

	// BFS / leader-election state (reset on adopting a larger root).
	root         int
	dist         int
	parentPort   int // −1 while the node believes it is the root
	pending      map[int]bool
	children     map[int]bool
	childSize    map[int]uint32
	sawBigger    bool // evidence that a root larger than ours exists
	completeSent bool
	treeDone     bool // true root only
	treeSize     int  // root only: discovered k

	// COUNT-wave state (computable only after τ is known).
	started    bool
	childCount map[int]uint32
	haveCount  bool
	cSelf      int
	mPrime     int

	// Token-pipeline state.
	sentUp       int
	tokDoneSent  bool
	childTokDone map[int]bool
	held         []uint64
	finalized    bool
	packages     [][]uint64
	discarded    int

	// Report/decision state (ModeUniformity).
	localRejects  int
	localVirtuals int
	childReports  map[int][2]uint64
	reportSent    bool
	totalRejects  int
	totalVirtuals int
	decision      int // −1 unknown, 0 reject, 1 accept

	// err records a protocol-invariant violation for the driver.
	err error
}

func newNode(mode Mode, tau, threshold int, tokens []uint64, solver func(k int) (int, int, error)) *node {
	return &node{
		mode:        mode,
		cfgTau:      tau,
		cfgT:        threshold,
		paramSolver: solver,
		tokens:      tokens,
		decision:    -1,
	}
}

// Init implements simnet.Node.
func (nd *node) Init(ctx *simnet.Context) {
	nd.ctx = ctx
	nd.outQ = make([][]message, ctx.Degree)
	nd.root = ctx.ID
	nd.dist = 0
	nd.parentPort = -1
	nd.resetTreeState()
	nd.held = append([]uint64(nil), nd.tokens...)
	// The initial announce wave: claim to be the root.
	for p := 0; p < ctx.Degree; p++ {
		nd.enqueue(p, message{typ: msgAnnounce, a: uint64(nd.root), b: uint64(nd.dist)})
		nd.pending[p] = true
	}
}

// resetTreeState clears all per-root bookkeeping.
func (nd *node) resetTreeState() {
	nd.pending = make(map[int]bool)
	nd.children = make(map[int]bool)
	nd.childSize = make(map[int]uint32)
	nd.sawBigger = false
	nd.completeSent = false
}

// Round implements simnet.Node.
func (nd *node) Round(in []simnet.PortMessage) ([]simnet.PortMessage, bool) {
	for _, pm := range in {
		m, err := decode(pm.Payload)
		if err != nil {
			nd.fail(err)
			return nil, true
		}
		nd.handle(pm.Port, m)
	}
	nd.step()
	out := nd.flush()
	return out, nd.isDone() && len(out) == 0
}

// Err returns the first protocol violation observed, if any.
func (nd *node) Err() error { return nd.err }

func (nd *node) fail(err error) {
	if nd.err == nil {
		nd.err = err
	}
}

func (nd *node) isRoot() bool { return nd.parentPort < 0 }

// handle processes one incoming message.
func (nd *node) handle(port int, m message) {
	switch m.typ {
	case msgAnnounce:
		root, dist := int(m.a), int(m.b)
		if root > nd.root {
			nd.adopt(root, dist+1, port)
			return
		}
		// Decline, reporting our current root: the announcer records
		// "bigger root exists" evidence when ours is strictly larger.
		nd.enqueue(port, message{typ: msgReject, a: m.a, b: uint64(nd.root)})
	case msgAccept:
		if int(m.a) == nd.root && nd.pending[port] {
			delete(nd.pending, port)
			nd.children[port] = true
		}
	case msgReject:
		if int(m.a) == nd.root && nd.pending[port] {
			delete(nd.pending, port)
			if int(m.b) > nd.root {
				nd.sawBigger = true
			}
		}
	case msgComplete:
		if int(m.a) == nd.root && nd.children[port] {
			if _, dup := nd.childSize[port]; !dup {
				nd.childSize[port] = uint32(m.b) & completeSizeMask
				if m.b&completeBiggerBit != 0 {
					nd.sawBigger = true
				}
			}
		}
	case msgStart:
		if port == nd.parentPort && !nd.started {
			nd.startPipeline(int(m.a), int(m.b))
		}
	case msgCount:
		if nd.children[port] {
			nd.childCount[port] = uint32(m.a)
		}
	case msgToken:
		if nd.children[port] {
			nd.held = append(nd.held, m.a)
		}
	case msgTokDone:
		if nd.children[port] {
			nd.childTokDone[port] = true
		}
	case msgReport:
		if nd.children[port] {
			nd.childReports[port] = [2]uint64{m.a, m.b}
		}
	case msgDecision:
		if port == nd.parentPort && nd.decision < 0 {
			nd.decision = int(m.a)
			for p := range nd.children {
				nd.enqueue(p, message{typ: msgDecision, a: m.a})
			}
		}
	}
}

// adopt switches to a larger root announced on port with the given
// distance.
func (nd *node) adopt(root, dist, port int) {
	nd.root = root
	nd.dist = dist
	nd.parentPort = port
	nd.resetTreeState()
	nd.enqueue(port, message{typ: msgAccept, a: uint64(root)})
	for p := 0; p < nd.ctx.Degree; p++ {
		if p == port {
			continue
		}
		nd.enqueue(p, message{typ: msgAnnounce, a: uint64(root), b: uint64(dist)})
		nd.pending[p] = true
	}
}

// startPipeline fixes the protocol parameters and forwards the start
// signal down the tree; leaves can emit their COUNT immediately.
func (nd *node) startPipeline(tau, threshold int) {
	if tau < 1 {
		nd.fail(fmt.Errorf("congest: node %d received invalid τ=%d", nd.ctx.ID, tau))
		return
	}
	nd.started = true
	nd.tau = tau
	nd.t = threshold
	nd.childCount = make(map[int]uint32)
	nd.childTokDone = make(map[int]bool)
	nd.childReports = make(map[int][2]uint64)
	for p := range nd.children {
		nd.enqueue(p, message{typ: msgStart, a: uint64(tau), b: uint64(threshold)})
	}
}

// step advances local state transitions after all messages of the round
// were handled.
func (nd *node) step() {
	nd.stepTreeCompletion()
	if nd.started {
		nd.stepCount()
	}
	if nd.haveCount {
		nd.stepPipeline()
	}
	if nd.mode == ModeUniformity && nd.finalized {
		nd.stepReport()
	}
}

// stepTreeCompletion sends the completion echo once every neighbor has
// responded to our announce and every child subtree has completed. A
// completed tree with no "bigger root" evidence necessarily spans the
// whole graph (every boundary response would otherwise carry a bigger
// root), so the root needs to know neither D nor k to declare victory.
func (nd *node) stepTreeCompletion() {
	if nd.completeSent || len(nd.pending) > 0 {
		return
	}
	for p := range nd.children {
		if _, ok := nd.childSize[p]; !ok {
			return
		}
	}
	size := 1
	for p := range nd.children {
		size += int(nd.childSize[p])
	}
	if !nd.isRoot() {
		nd.completeSent = true
		packed := uint64(size) & completeSizeMask
		if nd.sawBigger {
			packed |= completeBiggerBit
		}
		nd.enqueue(nd.parentPort, message{typ: msgComplete, a: uint64(nd.root), b: packed})
		return
	}
	if nd.root == nd.ctx.ID && !nd.sawBigger && !nd.started {
		nd.completeSent = true
		nd.treeDone = true
		nd.treeSize = size
		tau, threshold := nd.cfgTau, nd.cfgT
		if tau == 0 {
			if nd.paramSolver == nil {
				nd.fail(fmt.Errorf("congest: node %d has no parameters and no solver", nd.ctx.ID))
				return
			}
			var err error
			tau, threshold, err = nd.paramSolver(size)
			if err != nil {
				nd.fail(fmt.Errorf("congest: parameter solver for k=%d: %w", size, err))
				return
			}
		}
		nd.startPipeline(tau, threshold)
	}
}

// stepCount emits c(v) = (1 + Σ c(children)) mod τ once every child's
// count arrived — the second convergecast, possible only after τ is known.
func (nd *node) stepCount() {
	if nd.haveCount {
		return
	}
	for p := range nd.children {
		if _, ok := nd.childCount[p]; !ok {
			return
		}
	}
	sum := 0
	for p := range nd.children {
		sum += int(nd.childCount[p])
	}
	// The paper's s = 1 start generalizes directly: this node contributes
	// its own |tokens| samples instead of one.
	nd.mPrime = len(nd.tokens) + sum
	nd.cSelf = nd.mPrime % nd.tau
	nd.haveCount = true
	if !nd.isRoot() {
		nd.enqueue(nd.parentPort, message{typ: msgCount, a: uint64(nd.cSelf)})
	}
}

// stepPipeline forwards at most one token per round and finalizes
// packaging once the subtree's token stream has drained.
func (nd *node) stepPipeline() {
	if nd.sentUp < nd.cSelf && len(nd.held) > 0 {
		tok := nd.held[0]
		nd.held = nd.held[1:]
		if nd.isRoot() {
			nd.discarded++ // the paper's root discards its c(r) tokens
		} else {
			nd.enqueue(nd.parentPort, message{typ: msgToken, a: tok})
		}
		nd.sentUp++
	}
	if nd.sentUp == nd.cSelf && !nd.tokDoneSent {
		nd.tokDoneSent = true
		if !nd.isRoot() {
			nd.enqueue(nd.parentPort, message{typ: msgTokDone})
		}
	}
	if nd.finalized || !nd.tokDoneSent || nd.sentUp < nd.cSelf {
		return
	}
	for p := range nd.children {
		if !nd.childTokDone[p] {
			return
		}
	}
	// All tokens this node will ever hold have arrived.
	if len(nd.held)%nd.tau != 0 {
		nd.fail(fmt.Errorf("congest: node %d kept %d tokens, not a multiple of τ=%d",
			nd.ctx.ID, len(nd.held), nd.tau))
	}
	for len(nd.held) >= nd.tau {
		pkg := nd.held[:nd.tau:nd.tau]
		nd.held = nd.held[nd.tau:]
		nd.packages = append(nd.packages, pkg)
	}
	nd.localVirtuals = len(nd.packages)
	for _, pkg := range nd.packages {
		if hasCollision(pkg) {
			nd.localRejects++
		}
	}
	nd.finalized = true
}

// stepReport aggregates (rejects, virtuals) once all children reported;
// the root then decides and broadcasts.
func (nd *node) stepReport() {
	if nd.reportSent {
		return
	}
	for p := range nd.children {
		if _, ok := nd.childReports[p]; !ok {
			return
		}
	}
	rej, vir := nd.localRejects, nd.localVirtuals
	for _, r := range nd.childReports {
		rej += int(r[0])
		vir += int(r[1])
	}
	nd.totalRejects, nd.totalVirtuals = rej, vir
	nd.reportSent = true
	if !nd.isRoot() {
		nd.enqueue(nd.parentPort, message{typ: msgReport, a: uint64(rej), b: uint64(vir)})
		return
	}
	// Root decision: reject iff at least T virtual nodes reject.
	acc := uint64(0)
	if rej < nd.t {
		acc = 1
	}
	nd.decision = int(acc)
	for p := range nd.children {
		nd.enqueue(p, message{typ: msgDecision, a: acc})
	}
}

// isDone reports whether the node's role in the protocol has ended. The
// caller additionally requires the outgoing queues to have drained.
func (nd *node) isDone() bool {
	if nd.err != nil {
		return true
	}
	if !nd.finalized {
		return false
	}
	if nd.mode == ModePackagingOnly {
		return true
	}
	return nd.decision >= 0
}

// enqueue appends a message to a port's outgoing FIFO.
func (nd *node) enqueue(port int, m message) {
	nd.outQ[port] = append(nd.outQ[port], m)
}

// flush pops at most one message per port, dropping stale tree-protocol
// messages that refer to a superseded root.
func (nd *node) flush() []simnet.PortMessage {
	var out []simnet.PortMessage
	for p := range nd.outQ {
		for len(nd.outQ[p]) > 0 {
			m := nd.outQ[p][0]
			if nd.isStale(m) {
				nd.outQ[p] = nd.outQ[p][1:]
				continue
			}
			nd.outQ[p] = nd.outQ[p][1:]
			out = append(out, simnet.PortMessage{Port: p, Payload: encode(m)})
			break
		}
	}
	return out
}

// isStale reports whether a queued tree message refers to a root we no
// longer believe in. Responses to other nodes' announces (rejects) are
// never stale: the sender needs them tagged with its own root.
func (nd *node) isStale(m message) bool {
	switch m.typ {
	case msgAnnounce, msgAccept, msgComplete:
		return int(m.a) != nd.root
	default:
		return false
	}
}

// hasCollision reports whether the package contains two equal samples.
func hasCollision(pkg []uint64) bool {
	seen := make(map[uint64]struct{}, len(pkg))
	for _, v := range pkg {
		if _, ok := seen[v]; ok {
			return true
		}
		seen[v] = struct{}{}
	}
	return false
}
