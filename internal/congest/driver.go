package congest

import (
	"fmt"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
)

// congestBandwidth is the simulator's CONGEST budget in bytes per edge per
// round: 16 bytes = 128 bits = Θ(log n) for every domain this library
// targets.
const congestBandwidth = 16

// Bandwidth returns the simulator's CONGEST budget in bytes per edge per
// round, for tracers reporting bandwidth utilization against it.
func Bandwidth() int { return congestBandwidth }

// PackagingResult reports a τ-token-packaging execution (Theorem 5.1).
type PackagingResult struct {
	// Stats is the simulator's round/message accounting.
	Stats simnet.Stats
	// Packages is every package output by any node.
	Packages [][]uint64
	// PerNodePackages[v] is the number of packages node v output.
	PerNodePackages []int
	// Discarded is the number of tokens the root discarded (≤ τ−1).
	Discarded int
	// Root is the elected leader (the maximum ID).
	Root int
}

// RunTokenPackaging solves τ-token packaging on g: node v starts with
// tokens[v], and the nodes collectively output packages of exactly tau
// tokens with at most tau−1 tokens lost (discarded at the root).
func RunTokenPackaging(g *graph.Graph, tokens []uint64, tau int, seed uint64) (PackagingResult, error) {
	return RunTokenPackagingTraced(g, tokens, tau, seed, nil)
}

// RunTokenPackagingTraced is RunTokenPackaging with a simulator tracer
// attached (see simnet.Tracer), used by cmd/congestsim -trace.
func RunTokenPackagingTraced(g *graph.Graph, tokens []uint64, tau int, seed uint64, tracer simnet.Tracer) (PackagingResult, error) {
	return RunTokenPackagingTracedWorkers(g, tokens, tau, seed, tracer, 0)
}

// RunTokenPackagingTracedWorkers is RunTokenPackagingTraced with an explicit
// bound on the simulator's node-execution pool (0 means GOMAXPROCS); the
// result is identical at any value.
func RunTokenPackagingTracedWorkers(g *graph.Graph, tokens []uint64, tau int, seed uint64, tracer simnet.Tracer, workers int) (PackagingResult, error) {
	nodes, impls, err := buildNodes(g, tokens, ModePackagingOnly, tau, 0, nil)
	if err != nil {
		return PackagingResult{}, err
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{
		MaxBytesPerMessage: congestBandwidth,
		Seed:               seed,
		Tracer:             tracer,
		Workers:            workers,
	})
	if err != nil {
		return PackagingResult{}, err
	}
	res := PackagingResult{
		Stats:           stats,
		PerNodePackages: make([]int, g.N()),
		Root:            -1,
	}
	for v, nd := range impls {
		if nd.Err() != nil {
			return PackagingResult{}, fmt.Errorf("congest: node %d: %w", v, nd.Err())
		}
		res.Packages = append(res.Packages, nd.packages...)
		res.PerNodePackages[v] = len(nd.packages)
		if nd.isRoot() {
			if res.Root != -1 {
				return PackagingResult{}, fmt.Errorf("congest: multiple roots %d and %d", res.Root, v)
			}
			res.Root = v
			res.Discarded = nd.discarded
		}
	}
	if res.Root == -1 {
		return PackagingResult{}, fmt.Errorf("congest: no root elected")
	}
	return res, nil
}

// UniformityResult reports a full Theorem 1.4 execution.
type UniformityResult struct {
	// Accept is the network's verdict (true = "uniform").
	Accept bool
	// Rejects and Virtuals are the root's aggregated counts of rejecting
	// packages and total packages.
	Rejects, Virtuals int
	// Stats, Packages, Discarded and Root are as in PackagingResult.
	Stats     simnet.Stats
	Packages  [][]uint64
	Discarded int
	Root      int
	// DiscoveredK is the network size the root learned from the completion
	// echoes; Tau and T are the parameters actually used (equal to the
	// configured ones, or solver-derived in the unknown-k extension).
	DiscoveredK int
	Tau, T      int
}

// RunUniformity runs the CONGEST uniformity tester with one sample per node
// (tokens[v] is node v's sample from the unknown distribution).
func RunUniformity(g *graph.Graph, tokens []uint64, p Params, seed uint64) (UniformityResult, error) {
	return RunUniformityTraced(g, tokens, p, seed, nil)
}

// RunUniformityTraced is RunUniformity with a simulator tracer attached.
func RunUniformityTraced(g *graph.Graph, tokens []uint64, p Params, seed uint64, tracer simnet.Tracer) (UniformityResult, error) {
	return RunUniformityTracedWorkers(g, tokens, p, seed, tracer, 0)
}

// RunUniformityTracedWorkers is RunUniformityTraced with an explicit bound
// on the simulator's node-execution pool (0 means GOMAXPROCS). The verdict,
// stats and trace are identical at any value — cmd/congestsim -workers
// exposes the knob so CI can diff runs at different counts.
func RunUniformityTracedWorkers(g *graph.Graph, tokens []uint64, p Params, seed uint64, tracer simnet.Tracer, workers int) (UniformityResult, error) {
	if p.Tau < 2 {
		return UniformityResult{}, fmt.Errorf("congest: package size τ=%d < 2", p.Tau)
	}
	nodes, impls, err := buildNodes(g, tokens, ModeUniformity, p.Tau, p.T, nil)
	if err != nil {
		return UniformityResult{}, err
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{
		MaxBytesPerMessage: congestBandwidth,
		Seed:               seed,
		Tracer:             tracer,
		Workers:            workers,
	})
	if err != nil {
		return UniformityResult{}, err
	}
	return collectUniformity(stats, impls)
}

// collectUniformity gathers the per-node outcomes of a uniformity run.
func collectUniformity(stats simnet.Stats, impls []*node) (UniformityResult, error) {
	res := UniformityResult{
		Stats: stats,
		Root:  -1,
	}
	for v, nd := range impls {
		if nd.Err() != nil {
			return UniformityResult{}, fmt.Errorf("congest: node %d: %w", v, nd.Err())
		}
		if nd.decision < 0 {
			return UniformityResult{}, fmt.Errorf("congest: node %d ended without a decision", v)
		}
		res.Packages = append(res.Packages, nd.packages...)
		if nd.isRoot() {
			if res.Root != -1 {
				return UniformityResult{}, fmt.Errorf("congest: multiple roots %d and %d", res.Root, v)
			}
			res.Root = v
			res.Discarded = nd.discarded
			res.Accept = nd.decision == 1
			res.Rejects = nd.totalRejects
			res.Virtuals = nd.totalVirtuals
			res.DiscoveredK = nd.treeSize
			res.Tau = nd.tau
			res.T = nd.t
		}
	}
	if res.Root == -1 {
		return UniformityResult{}, fmt.Errorf("congest: no root elected")
	}
	return res, nil
}

// RunUniformityOnDistribution draws one sample per node from d and runs the
// uniformity protocol.
func RunUniformityOnDistribution(g *graph.Graph, d dist.Distribution, p Params, r *rng.RNG) (UniformityResult, error) {
	return RunUniformityOnDistributionTraced(g, d, p, r, nil)
}

// RunUniformityOnDistributionTraced is RunUniformityOnDistribution with a
// simulator tracer attached.
func RunUniformityOnDistributionTraced(g *graph.Graph, d dist.Distribution, p Params, r *rng.RNG, tracer simnet.Tracer) (UniformityResult, error) {
	tokens := make([]uint64, g.N())
	for v := range tokens {
		tokens[v] = uint64(d.Sample(r))
	}
	return RunUniformityTraced(g, tokens, p, r.Uint64(), tracer)
}

// RunUniformityUnknownK runs the uniformity protocol without telling the
// nodes the network size: the elected root discovers k from the completion
// echoes, derives (τ, T) with the calibrated solver, and broadcasts them
// with the start signal — an extension beyond the paper, which assumes k
// is known to all nodes.
func RunUniformityUnknownK(g *graph.Graph, tokens []uint64, n int, eps float64, seed uint64) (UniformityResult, error) {
	solver := func(k int) (int, int, error) {
		p, err := SolveParamsCalibrated(n, k, eps)
		if err != nil {
			return 0, 0, err
		}
		return p.Tau, p.T, nil
	}
	nodes, impls, err := buildNodes(g, tokens, ModeUniformity, 0, 0, solver)
	if err != nil {
		return UniformityResult{}, err
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{
		MaxBytesPerMessage: congestBandwidth,
		Seed:               seed,
	})
	if err != nil {
		return UniformityResult{}, err
	}
	return collectUniformity(stats, impls)
}

// EstimateError runs trials executions on fresh samples from d and returns
// the fraction of wrong verdicts, where wantAccept is the correct verdict.
func EstimateError(g *graph.Graph, d dist.Distribution, p Params, wantAccept bool, trials int, r *rng.RNG) (float64, error) {
	wrong := 0
	for i := 0; i < trials; i++ {
		res, err := RunUniformityOnDistribution(g, d, p, r)
		if err != nil {
			return 0, err
		}
		if res.Accept != wantAccept {
			wrong++
		}
	}
	return float64(wrong) / float64(trials), nil
}

func buildNodes(g *graph.Graph, tokens []uint64, mode Mode, tau, threshold int, solver func(k int) (int, int, error)) ([]simnet.Node, []*node, error) {
	if len(tokens) != g.N() {
		return nil, nil, fmt.Errorf("congest: %d tokens for %d nodes", len(tokens), g.N())
	}
	per := make([][]uint64, len(tokens))
	for v, tok := range tokens {
		per[v] = []uint64{tok}
	}
	return buildNodesMulti(g, per, mode, tau, threshold, solver)
}

// buildNodesMulti is buildNodes for the multi-sample generalization: node v
// starts with the sample multiset tokensPerNode[v].
func buildNodesMulti(g *graph.Graph, tokensPerNode [][]uint64, mode Mode, tau, threshold int, solver func(k int) (int, int, error)) ([]simnet.Node, []*node, error) {
	if len(tokensPerNode) != g.N() {
		return nil, nil, fmt.Errorf("congest: %d token sets for %d nodes", len(tokensPerNode), g.N())
	}
	if tau < 1 && solver == nil {
		return nil, nil, fmt.Errorf("congest: package size τ=%d < 1", tau)
	}
	nodes := make([]simnet.Node, g.N())
	impls := make([]*node, g.N())
	for v := range nodes {
		impls[v] = newNode(mode, tau, threshold, tokensPerNode[v], solver)
		nodes[v] = impls[v]
	}
	return nodes, impls, nil
}

// RunUniformityMulti runs the uniformity protocol with s ≥ 1 samples per
// node — the paper's "generalizes in a straightforward manner to larger s":
// node v contributes every sample in tokensPerNode[v] to the token
// pipeline.
func RunUniformityMulti(g *graph.Graph, tokensPerNode [][]uint64, p Params, seed uint64) (UniformityResult, error) {
	if p.Tau < 2 {
		return UniformityResult{}, fmt.Errorf("congest: package size τ=%d < 2", p.Tau)
	}
	nodes, impls, err := buildNodesMulti(g, tokensPerNode, ModeUniformity, p.Tau, p.T, nil)
	if err != nil {
		return UniformityResult{}, err
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{
		MaxBytesPerMessage: congestBandwidth,
		Seed:               seed,
	})
	if err != nil {
		return UniformityResult{}, err
	}
	return collectUniformity(stats, impls)
}
