package congest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
)

// EstimateErrorParallel is EstimateError with trials fanned out across
// worker goroutines (0 means GOMAXPROCS). The result is bit-for-bit
// deterministic in r at any worker count:
//
//   - trial i's randomness is derived by index — rng.SeedAt(base, i) for a
//     base drawn once from r — so the tokens and simulator seed of a trial
//     depend on neither scheduling nor the worker count;
//   - workers claim chunks of trial indices from one atomic counter
//     (work-stealing) and fold verdicts into per-worker partial sums; the
//     total is a commutative sum, so the estimate is schedule-independent;
//   - each trial's simulator runs single-threaded (simnet.Config.Workers=1)
//     so trial-level parallelism is not oversubscribed by node-level
//     parallelism;
//   - on error the failure of the lowest trial index wins, which is what a
//     sequential loop over the same indexed streams would report first.
//
// The sequential EstimateError draws tokens straight from r, so the two
// estimators sample different (equally valid) trial sets; only
// EstimateErrorParallel is invariant under its workers argument.
func EstimateErrorParallel(g *graph.Graph, d dist.Distribution, p Params, wantAccept bool, trials, workers int, r *rng.RNG) (float64, error) {
	if p.Tau < 2 {
		return 0, fmt.Errorf("congest: package size τ=%d < 2", p.Tau)
	}
	if trials <= 0 {
		return 0, nil
	}
	// One draw fixes every trial's randomness and advances r by the same
	// amount at any worker count.
	base := r.Uint64()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	// runRange executes trials [lo, hi) on worker-owned scratch and reports
	// the wrong-verdict count plus the first (lowest-index) failure.
	runRange := func(lo, hi int, gen *rng.RNG, tokens []uint64) (int, int, error) {
		wrong := 0
		for i := lo; i < hi; i++ {
			gen.SeedAt(base, uint64(i))
			for v := range tokens {
				tokens[v] = uint64(d.Sample(gen))
			}
			res, err := runUniformityTrial(g, tokens, p, gen.Uint64())
			if err != nil {
				return wrong, i, err
			}
			if res.Accept != wantAccept {
				wrong++
			}
		}
		return wrong, -1, nil
	}

	if workers == 1 {
		wrong, _, err := runRange(0, trials, rng.New(0), make([]uint64, g.N()))
		if err != nil {
			return 0, err
		}
		return float64(wrong) / float64(trials), nil
	}

	chunk := trials / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	var (
		next, total atomic.Int64
		wg          sync.WaitGroup
		mu          sync.Mutex
		firstIdx    = trials
		firstErr    error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			gen := rng.New(0)
			tokens := make([]uint64, g.N())
			local := 0
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= trials {
					break
				}
				hi := lo + chunk
				if hi > trials {
					hi = trials
				}
				wrong, idx, err := runRange(lo, hi, gen, tokens)
				local += wrong
				if err != nil {
					mu.Lock()
					if idx < firstIdx {
						firstIdx, firstErr = idx, err
					}
					mu.Unlock()
					break
				}
			}
			total.Add(int64(local))
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(int(total.Load())) / float64(trials), nil
}

// runUniformityTrial is one estimator trial: a single-threaded simulation
// (trial-level parallelism already saturates the cores) with no tracer.
func runUniformityTrial(g *graph.Graph, tokens []uint64, p Params, seed uint64) (UniformityResult, error) {
	nodes, impls, err := buildNodes(g, tokens, ModeUniformity, p.Tau, p.T, nil)
	if err != nil {
		return UniformityResult{}, err
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{
		MaxBytesPerMessage: congestBandwidth,
		Seed:               seed,
		Workers:            1,
	})
	if err != nil {
		return UniformityResult{}, err
	}
	return collectUniformity(stats, impls)
}
