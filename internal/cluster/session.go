// Service surface of the referee: the multi-tenant session service
// (internal/cluster/service) terminates the transport itself — one
// listener multiplexing many sessions — so it cannot use Referee.Serve,
// which owns a listener for exactly one session. Instead the service
// routes each decoded frame to the referee of the frame's session
// through the Peer API below: Handshake registers the connection's
// identity, Apply folds its subsequent frames, and Decided/Finalize
// expose the trigger/finalization halves Serve normally drives. Every
// path lands in the same voteSink fold as a solo run, which is what
// keeps a multiplexed session's report byte-identical (sans transport
// stats) to its flat-star equivalent.

package cluster

import (
	"fmt"
	"net"

	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/wire"
)

// Peer is one registered peer of a service-hosted referee: either a
// direct leaf (Hello) or a child aggregator (AggHello). The zero Peer is
// invalid; obtain one from Referee.Handshake.
type Peer struct {
	rf   *Referee
	node int      // leaf node ID, or -1 for aggregator peers
	agg  *aggPeer // registered child aggregator, or nil
	recv *obs.Counter
}

// Handshake validates and registers a peer's opening frame (Hello or
// AggHello), mirroring exactly the checks the referee's own connection
// handler applies. A failed handshake counts a bad frame and returns an
// error; the caller should terminate the transport.
func (rf *Referee) Handshake(f wire.Frame) (*Peer, error) {
	switch m := f.(type) {
	case *wire.Hello:
		if int(m.K) != rf.k || int(m.Trials) != rf.cfg.Trials ||
			int(m.Node) < rf.lo || int(m.Node) >= rf.hi || !rf.registerLeaf(int(m.Node)) {
			rf.countBadFrame()
			return nil, fmt.Errorf("cluster: hello rejected: node %d of k=%d trials=%d", m.Node, m.K, m.Trials)
		}
		p := &Peer{rf: rf, node: int(m.Node)}
		if rf.reg != nil {
			p.recv = rf.reg.Counter(rf.metricName(fmt.Sprintf("peer.%d.recv", p.node)))
		}
		p.recv.Inc() // the Hello itself
		return p, nil
	case *wire.AggHello:
		ap := rf.registerAgg(m)
		if ap == nil {
			rf.countBadFrame()
			return nil, fmt.Errorf("cluster: agghello rejected: agg %d window [%d, %d)", m.Agg, m.Lo, m.Hi)
		}
		p := &Peer{rf: rf, node: -1, agg: ap}
		if rf.reg != nil {
			p.recv = rf.reg.Counter(rf.metricName(fmt.Sprintf("aggpeer.%d.recv", ap.id)))
		}
		p.recv.Inc() // the AggHello itself
		return p, nil
	default:
		rf.countBadFrame()
		return nil, fmt.Errorf("cluster: handshake frame type %d is not Hello or AggHello", f.Type())
	}
}

// Apply folds one post-handshake frame from the peer into its referee —
// the same validation, dedup and incremental-decision path a directly
// served connection takes. wireBytes is the frame's on-wire size (body
// plus length prefix) for the byte accounting. It returns done=true when
// the frame was the peer's Done marker: the peer sends nothing further
// and waits for the verdict. A returned error means the frame violated
// the protocol (counted as a bad frame); the caller should terminate the
// transport, as a mismatched handshake would.
func (p *Peer) Apply(f wire.Frame, tc wire.TraceContext, wireBytes int) (bool, error) {
	rf := p.rf
	rf.mu.Lock()
	rf.stats.Frames++
	rf.stats.Bytes += int64(wireBytes)
	rf.mu.Unlock()
	rf.m.frames.Inc()
	p.recv.Inc()

	switch m := f.(type) {
	case *wire.Vote:
		if p.node < 0 || int(m.Node) != p.node {
			rf.countBadFrame()
			return false, fmt.Errorf("cluster: vote from node %d on peer %d", m.Node, p.node)
		}
		rf.apply(int(m.Trial), p.node, m.Reject, 0, 0, tc)
	case *wire.Sketch:
		if p.node < 0 || int(m.Node) != p.node {
			rf.countBadFrame()
			return false, fmt.Errorf("cluster: sketch from node %d on peer %d", m.Node, p.node)
		}
		rf.apply(int(m.Trial), p.node, m.Collisions > 0, uint64(m.Samples), uint64(m.Collisions), tc)
	case *wire.VoteBatch:
		if p.node < 0 {
			rf.countBadFrame()
			return false, fmt.Errorf("cluster: vote batch on aggregator peer")
		}
		for i := range m.Votes {
			if int(m.Votes[i].Node) != p.node {
				rf.countBadFrame()
				return false, fmt.Errorf("cluster: batch smuggles node %d on peer %d", m.Votes[i].Node, p.node)
			}
		}
		rf.applyBatch(m, p.node, tc)
	case *wire.PartialVerdict:
		if p.agg == nil || m.Agg != p.agg.id {
			rf.countBadFrame()
			return false, fmt.Errorf("cluster: partial from agg %d on peer", m.Agg)
		}
		rf.applyPartial(m, p.agg, tc)
	case *wire.Done:
		if p.agg != nil {
			if int(m.Node) != int(p.agg.id) {
				rf.countBadFrame()
				return false, fmt.Errorf("cluster: done from agg %d on peer %d", m.Node, p.agg.id)
			}
			rf.markDoneRange(p.agg)
		} else {
			if int(m.Node) != p.node {
				rf.countBadFrame()
				return false, fmt.Errorf("cluster: done from node %d on peer %d", m.Node, p.node)
			}
			rf.markDone(p.node)
		}
		return true, nil
	default:
		rf.countBadFrame()
		return false, fmt.Errorf("cluster: unexpected frame type %d after handshake", f.Type())
	}
	return false, nil
}

// Register records conn for the verdict broadcast at finalization and
// counts the accepted connection. It reports false when the session
// already finalized — the caller should close conn itself.
func (rf *Referee) Register(conn net.Conn) bool {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.closed {
		return false
	}
	rf.conns = append(rf.conns, conn)
	rf.stats.Connections++
	return true
}

// Decided returns the channel closed when the session's outcome is
// fixed: every node done, or every verdict early-decided under
// Config.EarlyClose.
func (rf *Referee) Decided() <-chan struct{} {
	return rf.trigger
}

// Finalize decides the remaining trials via the quorum policy, closes
// the session against further folds, and returns the report, the
// verdict broadcast frame, and the registered connections to flush it
// to. Callers own closing the connections.
func (rf *Referee) Finalize() (*Report, wire.Verdict, []net.Conn) {
	return rf.finalize()
}

// MarkExpired records that the session hit its deadline (or was evicted
// as stalled) and fires the decision trigger, so a Decided waiter
// proceeds to Finalize with the quorum fallback covering the missing
// votes.
func (rf *Referee) MarkExpired() {
	rf.mu.Lock()
	rf.stats.DeadlineExpired = true
	rf.mu.Unlock()
	rf.fire()
}
