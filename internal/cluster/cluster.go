// Package cluster executes the paper's 0-round testers over real
// connections instead of the in-process simulator: k node clients each
// draw their sample block, vote, and push the vote over a length-prefixed
// wire protocol (internal/wire) to a referee service that applies the
// network decision rule incrementally as votes arrive.
//
// The runtime is the client/server form of zeroround.Network. The two are
// tied together by the indexed randomness contract zeroround.VoteStream:
// node i's samples for trial t are a pure function of (base seed, t, i),
// so a cluster run — any connection ordering, any scheduling, any
// retransmission — produces trial-for-trial the same votes as the
// reference execution zeroround.(*Network).RunAt. Differential tests pin
// that equivalence exactly.
//
// Unlike the simulator, the transport can misbehave: a seeded FaultPlan
// drops, duplicates, delays or disconnects vote frames deterministically,
// and the referee degrades gracefully — its quorum policy decides each
// trial from the votes that arrived, recording how many went missing. This
// expresses a robustness property the simulator cannot: the measured
// network error stays within the paper's 1/3 under bounded vote loss.
//
// Topology: Referee serves any net.Listener (TCP for real deployments);
// NewPipeListener provides a zero-copy in-memory transport (net.Pipe) for
// single-process clusters and tests. RunPipe/RunTCP assemble the full
// referee-plus-k-nodes session either way.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// QuorumPolicy decides what the referee does with trials whose votes did
// not all arrive by the end of the run.
type QuorumPolicy int

const (
	// QuorumObserved decides each trial from the votes that arrived: the
	// decision rule is applied to the observed rejecting count over the
	// full network size, i.e. a missing vote counts as an accept. This is
	// the graceful-degradation mode: bounded vote loss shifts the verdict
	// threshold by at most the loss rate.
	QuorumObserved QuorumPolicy = iota
	// QuorumStrict requires every vote: any missing vote fails the run
	// with an error (verdicts are still reported, decided as in
	// QuorumObserved, so the caller can inspect what the quorum would have
	// said).
	QuorumStrict
)

// String returns the policy name.
func (p QuorumPolicy) String() string {
	switch p {
	case QuorumObserved:
		return "observed"
	case QuorumStrict:
		return "strict"
	default:
		return fmt.Sprintf("QuorumPolicy(%d)", int(p))
	}
}

// DefaultDeadline bounds a session when peers stall; see Config.Deadline.
const DefaultDeadline = 10 * time.Second

// QueuePolicy selects what a node's bounded send queue does when it is
// full: apply backpressure or shed load.
type QueuePolicy int

const (
	// QueueBlock applies backpressure: the sender waits for the writer to
	// drain. This is the deterministic default — every computed vote is
	// offered to the wire exactly as in the unbatched path.
	QueueBlock QueuePolicy = iota
	// QueueDrop sheds frames when the queue is full (counted in
	// cluster.queue_dropped). It trades the batched/unbatched determinism
	// guarantee for bounded latency: which frames are shed depends on
	// writer scheduling, so verdicts may differ run-to-run exactly as they
	// would on a saturated real link.
	QueueDrop
)

// String returns the policy name.
func (p QueuePolicy) String() string {
	switch p {
	case QueueBlock:
		return "block"
	case QueueDrop:
		return "drop"
	default:
		return fmt.Sprintf("QueuePolicy(%d)", int(p))
	}
}

// DefaultFlushBytes is the byte watermark at which a partially-filled
// batch is flushed to the send queue.
const DefaultFlushBytes = 8 << 10

// DefaultQueueDepth is the per-peer send-queue bound, in frames.
const DefaultQueueDepth = 16

// Config holds the session parameters shared by the referee and every
// node client.
type Config struct {
	// Trials is the number of Monte-Carlo trials voted on in this session.
	Trials int
	// BaseSeed fixes the indexed randomness of every (trial, node) sample
	// stream (zeroround.VoteStream) and thereby the entire run.
	BaseSeed uint64
	// Policy decides trials with missing votes; see QuorumPolicy.
	Policy QuorumPolicy
	// EarlyClose lets the referee shut the session down as soon as every
	// trial's verdict is fixed (EarlyDecider rules can fix a verdict
	// before all votes arrive). Verdicts are unchanged; only trailing
	// traffic is saved. Nodes still mid-submission observe their
	// connection closing, which is expected, so loopback harnesses ignore
	// node-side errors once the referee closed early.
	EarlyClose bool
	// Sketch switches the nodes to submitting raw collision sketches
	// (wire.Sketch) instead of precomputed votes; the referee derives the
	// vote as Collisions > 0. Valid only for single-collision testers
	// (the threshold rule), where that derivation is the tester.
	Sketch bool
	// DomainN is the sample domain size, required in Sketch mode to run
	// the collision statistic.
	DomainN int
	// Deadline bounds the whole session at the referee and each node
	// client I/O attempt; 0 means DefaultDeadline. It is a safety net
	// against stalled peers — fault-free runs finish on protocol events
	// (all votes in, or all nodes done), never on the clock.
	Deadline time.Duration
	// Retries is how many times a node client redials and resubmits after
	// a transport error; Backoff is the sleep before the first retry
	// (doubling each attempt).
	Retries int
	Backoff time.Duration
	// Obs, when non-nil, receives connection/vote/fault metrics. Nil
	// disables telemetry.
	Obs *obs.Registry
	// Batch, when ≥ 2, switches node clients to the high-throughput path:
	// up to Batch votes are coalesced into each wire.VoteBatch frame
	// (clamped to wire.MaxBatchVotes) and written through a bounded send
	// queue. 0 or 1 keeps the one-frame-per-vote path. Batching never
	// changes verdicts: the referee applies batched votes through the same
	// dedup/rule/quorum pipeline, and differential tests pin batched runs
	// trial-for-trial identical to unbatched ones.
	Batch int
	// Compress block-compresses batch payloads ≥ wire.MinCompressibleSize
	// when that strictly saves wire bytes (wire.BatchEncoder). Only
	// meaningful with Batch ≥ 2.
	Compress bool
	// FlushBytes is the byte watermark flushing a partially-filled batch
	// (0 = DefaultFlushBytes). Flushes happen on watermarks and explicit
	// protocol points only — never on a wall-clock timer — so the batched
	// path stays deterministic.
	FlushBytes int
	// QueueDepth bounds each node's send queue in frames (0 =
	// DefaultQueueDepth); QueuePolicy picks blocking backpressure or load
	// shedding when it fills.
	QueueDepth  int
	QueuePolicy QueuePolicy
	// Session binds every frame this configuration sends — and every frame
	// its referee accepts — to a wire v5 session ID. 0, the default, keeps
	// the classic single-session encoding (byte-identical to codec ≤ v4).
	// The multi-tenant service (internal/cluster/service) assigns nonzero
	// IDs so many concurrent sessions share one transport endpoint; the
	// referee rejects frames whose session does not match as bad frames.
	Session uint32
	// MetricSuffix, when non-empty, is appended verbatim to every sink
	// metric name (e.g. ";session=3"), which the Prometheus exporter
	// (internal/obs/export) renders as labels. The service sets it per
	// session slot so each slot gets its own labeled series under a
	// cardinality bounded by the session quota.
	MetricSuffix string
	// Trace, when non-nil, emits causally-linked spans for the session
	// (node sample → frame send → referee apply → verdict) into the
	// tracer's journal and stamps vote frames with a wire trace context
	// (codec version 2). Tracing is observability only: verdicts, vote
	// payloads and decision flow are unchanged — only the vote frame
	// encoding grows by the 16-byte context, which shows up in the byte
	// accounting but never in a verdict.
	Trace *trace.Tracer
}

// deadline resolves the configured deadline.
func (c Config) deadline() time.Duration {
	if c.Deadline <= 0 {
		return DefaultDeadline
	}
	return c.Deadline
}

// batchSize resolves the effective batch size: 0 when batching is off
// (Batch < 2), otherwise Batch clamped to the wire cap.
func (c Config) batchSize() int {
	if c.Batch < 2 {
		return 0
	}
	if c.Batch > wire.MaxBatchVotes {
		return wire.MaxBatchVotes
	}
	return c.Batch
}

// flushBytes resolves the batch flush watermark.
func (c Config) flushBytes() int {
	if c.FlushBytes <= 0 {
		return DefaultFlushBytes
	}
	return c.FlushBytes
}

// queueDepth resolves the send-queue bound.
func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return DefaultQueueDepth
	}
	return c.QueueDepth
}

// Report is the referee's account of one session.
type Report struct {
	// K and Trials echo the session shape.
	K      int `json:"k"`
	Trials int `json:"trials"`
	// Verdicts[t] is trial t's network verdict (true = accept); Rejects[t]
	// the rejecting votes observed; Votes[t] the votes that arrived;
	// Missing[t] the votes a quorum decision had to do without (0 for
	// trials decided on full or early-decided information).
	Verdicts []bool `json:"verdicts"`
	Rejects  []int  `json:"rejects"`
	Votes    []int  `json:"votes"`
	Missing  []int  `json:"missing"`
	// Accepts counts accepting trials; MissingVotes sums Missing.
	Accepts      int `json:"accepts"`
	MissingVotes int `json:"missing_votes"`
	// QuorumTrials counts trials decided by the quorum fallback;
	// EarlyTrials counts trials fixed by the rule's EarlyDecider before
	// all their votes arrived.
	QuorumTrials int `json:"quorum_trials"`
	EarlyTrials  int `json:"early_trials"`
	// Stats aggregates transport-level accounting.
	Stats RefereeStats `json:"stats"`
}

// ErrorRate returns the fraction of trials whose verdict differs from
// wantAccept — the cluster analogue of zeroround.EstimateError.
func (r *Report) ErrorRate(wantAccept bool) float64 {
	if r.Trials == 0 {
		return 0
	}
	wrong := 0
	for _, a := range r.Verdicts {
		if a != wantAccept {
			wrong++
		}
	}
	return float64(wrong) / float64(r.Trials)
}

// RefereeStats is the transport-level accounting of one session.
type RefereeStats struct {
	// Connections counts accepted connections (retries reconnect, so this
	// can exceed k); Frames and Bytes count everything received.
	Connections int   `json:"connections"`
	Frames      int   `json:"frames"`
	Bytes       int64 `json:"bytes"`
	// Votes counts distinct (trial, node) votes recorded; DuplicateVotes
	// the deduplicated resubmissions; BadFrames the frames rejected by
	// validation (range, identity or codec errors).
	Votes          int `json:"votes"`
	DuplicateVotes int `json:"duplicate_votes"`
	BadFrames      int `json:"bad_frames"`
	// BatchFrames counts VoteBatch frames received and BatchedVotes the
	// votes they carried; BytesSaved sums the wire bytes compressed
	// batches saved versus their raw encoding.
	BatchFrames  int   `json:"batch_frames,omitempty"`
	BatchedVotes int   `json:"batched_votes,omitempty"`
	BytesSaved   int64 `json:"bytes_saved,omitempty"`
	// PartialFrames counts PartialVerdict frames folded and PartialVotes
	// the votes they carried (also counted in Votes); DuplicatePartials
	// the (trial, child) entries deduplicated as retransmissions. All zero
	// in flat-star sessions.
	PartialFrames     int `json:"partial_frames,omitempty"`
	PartialVotes      int `json:"partial_votes,omitempty"`
	DuplicatePartials int `json:"duplicate_partials,omitempty"`
	// IdlePeers counts nodes that had finished their stream (Done) and
	// were idling on the verdict when the session finalized — protocol
	// state, not wall-clock idleness.
	IdlePeers int `json:"idle_peers,omitempty"`
	// EarlyClosed reports the session ended because every verdict was
	// fixed; DeadlineExpired that the safety-net deadline fired.
	EarlyClosed     bool `json:"early_closed,omitempty"`
	DeadlineExpired bool `json:"deadline_expired,omitempty"`
}

// RunPipe executes one full session in-process over net.Pipe transports:
// a referee for nw's rule plus one node client per network node, faults
// injected per plan (nil plan = clean links). It returns the referee's
// report; node-side errors fail the run only when the referee did not
// close the session early (see Config.EarlyClose).
func RunPipe(cfg Config, nw *zeroround.Network, d dist.Distribution, plan *FaultPlan) (*Report, error) {
	l := NewPipeListener()
	return runSession(cfg, nw, d, plan, l, l.Dial)
}

// RunTCP is RunPipe over a real TCP loopback listener.
func RunTCP(cfg Config, nw *zeroround.Network, d dist.Distribution, plan *FaultPlan) (*Report, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	addr := l.Addr().String()
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	return runSession(cfg, nw, d, plan, l, dial)
}

// runSession starts the referee on l, launches nw.K() node clients that
// connect via dial, and reconciles both sides' outcomes.
func runSession(cfg Config, nw *zeroround.Network, d dist.Distribution, plan *FaultPlan, l net.Listener, dial func() (net.Conn, error)) (*Report, error) {
	k := nw.K()
	rf := NewReferee(k, nw.Rule(), cfg)

	type nodeErr struct {
		node int
		err  error
	}
	errCh := make(chan nodeErr, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for i := 0; i < k; i++ {
		nc := &NodeClient{
			ID:     i,
			K:      k,
			Tester: nw.Node(i),
			Config: cfg,
			Dial:   dial,
			Faults: plan,
		}
		go func(i int, nc *NodeClient) {
			defer wg.Done()
			if _, err := nc.Run(d); err != nil {
				errCh <- nodeErr{node: i, err: err}
			}
		}(i, nc)
	}

	rep, err := rf.Serve(l)
	wg.Wait()
	close(errCh)
	if err != nil {
		return rep, err
	}
	for ne := range errCh {
		// Early close severs connections of nodes whose verdicts were no
		// longer needed; their errors are expected, not failures.
		if rep != nil && rep.Stats.EarlyClosed {
			continue
		}
		return rep, fmt.Errorf("cluster: node %d: %w", ne.node, ne.err)
	}
	return rep, nil
}

// pipeListener hands out net.Pipe pairs through the net.Listener
// interface, so the referee serves in-memory transports exactly as it
// serves TCP.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

// NewPipeListener returns an in-memory listener whose Dial returns the
// client half of a fresh net.Pipe.
func NewPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

// Accept returns the server half of the next dialed pipe.
func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close stops the listener; pending and future Dials fail.
func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// Dial creates a pipe and delivers the server half to Accept.
func (l *pipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	}
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
