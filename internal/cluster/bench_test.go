package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/unifdist/unifdist/internal/wire"
)

// benchRule accepts on a reject threshold and deliberately implements no
// EarlyDecider: every vote must be decoded, deduplicated and recorded, so
// the benchmark measures the referee's full per-vote path rather than a
// short-circuit.
type benchRule struct{ thr int }

func (r benchRule) Accept(rejects, k int) bool { return rejects <= r.thr }
func (r benchRule) Name() string               { return "bench" }

// benchPayload precomputes node's full wire stream — Hello, votes (one
// frame each, or VoteBatch frames of up to batch votes), Done — so the
// benchmark loop measures referee-side decode+apply, not client-side
// sampling or encoding.
func benchPayload(node, k, trials, batch int, compress bool) []byte {
	buf := wire.AppendTraced(nil, &wire.Hello{Node: uint32(node), K: uint32(k), Trials: uint32(trials)}, wire.TraceContext{})
	if batch <= 0 {
		for t := 0; t < trials; t++ {
			v := &wire.Vote{Trial: uint32(t), Node: uint32(node), Reject: (t+node)%3 == 0}
			buf = wire.AppendTraced(buf, v, wire.TraceContext{})
		}
	} else {
		var enc wire.BatchEncoder
		var vb wire.VoteBatch
		for t := 0; t < trials; {
			n := batch
			if trials-t < n {
				n = trials - t
			}
			vb.Votes = vb.Votes[:0]
			for i := 0; i < n; i++ {
				vb.Votes = append(vb.Votes, wire.BatchVote{
					Trial: uint32(t + i), Node: uint32(node), Reject: (t+i+node)%3 == 0,
				})
			}
			out, err := enc.Append(buf, &vb, wire.TraceContext{}, compress)
			if err != nil {
				panic(err)
			}
			buf = out
			t += n
		}
	}
	return wire.AppendTraced(buf, &wire.Done{Node: uint32(node)}, wire.TraceContext{})
}

// benchSession runs b.N full referee sessions, each synthetic peer
// replaying its precomputed stream, and reports aggregate votes/sec —
// the headline throughput number for the high-throughput transport.
// The peers are the k leaves of a flat star, or — when len(payloads) is
// smaller — the pre-aggregated children of a sharded tree's root; either
// way the session folds k*trials votes.
func benchSession(b *testing.B, k, trials int, payloads [][]byte,
	transport func() (net.Listener, func() (net.Conn, error)), dialLimit int) {
	b.ReportAllocs()
	children := len(payloads)
	for i := 0; i < b.N; i++ {
		l, dial := transport()
		rf := NewReferee(k, benchRule{thr: k}, Config{Trials: trials, Deadline: time.Minute})
		repCh := make(chan *Report, 1)
		go func() {
			rep, err := rf.Serve(l)
			if err != nil {
				b.Error(err)
			}
			repCh <- rep
		}()
		sem := make(chan struct{}, dialLimit)
		var wg sync.WaitGroup
		wg.Add(children)
		for node := 0; node < children; node++ {
			go func(p []byte) {
				defer wg.Done()
				sem <- struct{}{}
				conn, err := dial()
				<-sem
				if err != nil {
					b.Error(err)
					return
				}
				defer conn.Close()
				if _, err := conn.Write(p); err != nil {
					b.Error(err)
					return
				}
				// Hold the connection for the verdict broadcast, like a real
				// node: the session is not over until the referee answers.
				if _, err := wire.NewReader(conn).ReadFrame(); err != nil {
					b.Error(err)
				}
			}(payloads[node])
		}
		wg.Wait()
		rep := <-repCh
		if rep == nil || rep.Stats.Votes != k*trials {
			b.Fatalf("session recorded %d votes, want %d", rep.Stats.Votes, k*trials)
		}
	}
	b.ReportMetric(float64(k*trials)*float64(b.N)/b.Elapsed().Seconds(), "votes/sec")
}

// BenchmarkRefereePipe measures one referee on in-memory transports at
// k = 10^4 peers: the per-frame baseline against the batched and
// batched+compressed paths.
func BenchmarkRefereePipe(b *testing.B) {
	const k = 10_000
	pipe := func() (net.Listener, func() (net.Conn, error)) {
		l := NewPipeListener()
		return l, l.Dial
	}
	cases := []struct {
		name     string
		trials   int
		batch    int
		compress bool
	}{
		// Fewer trials on the per-frame baseline keep the iteration time
		// sane; votes/sec is a rate, so the comparison stands.
		{"frame", 16, 0, false},
		{"batch128", 128, 128, false},
		{"batch128z", 128, 128, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			payloads := make([][]byte, k)
			for node := 0; node < k; node++ {
				payloads[node] = benchPayload(node, k, c.trials, c.batch, c.compress)
			}
			b.ResetTimer()
			benchSession(b, k, c.trials, payloads, pipe, k)
		})
	}
}

// aggChildPayload precomputes one first-tier aggregator's full upstream
// stream — AggHello, PartialVerdict frames carrying the window's
// per-trial sums, Done — so BenchmarkAggTree measures the root's ingest
// of pre-aggregated traffic, not the aggregation itself.
func aggChildPayload(aggID, lo, hi, k, trials int) []byte {
	buf := wire.AppendTraced(nil, &wire.AggHello{
		Agg: uint32(aggID), K: uint32(k), Trials: uint32(trials),
		Lo: uint32(lo), Hi: uint32(hi),
	}, wire.TraceContext{})
	width := hi - lo
	entries := make([]wire.PartialEntry, 0, trials)
	for t := 0; t < trials; t++ {
		// The same (t+node)%3 reject pattern benchPayload uses, pre-summed
		// over the window.
		rejects := 0
		for n := lo; n < hi; n++ {
			if (t+n)%3 == 0 {
				rejects++
			}
		}
		entries = append(entries, wire.PartialEntry{
			Trial: uint32(t), Votes: uint32(width), Rejects: uint32(rejects),
		})
	}
	for len(entries) > 0 {
		n := len(entries)
		if n > wire.MaxPartialEntries {
			n = wire.MaxPartialEntries
		}
		out, err := wire.AppendPartial(buf, &wire.PartialVerdict{Agg: uint32(aggID), Entries: entries[:n]}, wire.TraceContext{})
		if err != nil {
			panic(err)
		}
		buf = out
		entries = entries[n:]
	}
	return wire.AppendTraced(buf, &wire.Done{Node: uint32(aggID)}, wire.TraceContext{})
}

// BenchmarkAggTree measures the root referee's ingest capacity under the
// two topologies, same harness and transport: a flat star terminates
// every leaf's vote stream at the root, a sharded tree terminates only
// its first-tier aggregators' partial-sum streams there. votes/sec is
// votes folded into the root's tallies per second of session wall time —
// the single-server bottleneck the aggregator tier exists to remove. The
// aggregation work itself scales horizontally across shard servers (and
// is exercised end-to-end by BenchmarkAggTreeEndToEnd); here the
// children replay precomputed streams so the number isolates the root.
func BenchmarkAggTree(b *testing.B) {
	pipe := func() (net.Listener, func() (net.Conn, error)) {
		l := NewPipeListener()
		return l, l.Dial
	}
	const trials = 16
	cases := []struct {
		name   string
		k      int
		fanout int // 0 = flat star (per-frame leaf streams)
	}{
		{"flat/k1e4", 10_000, 0},
		{"fanout8/k1e4", 10_000, 8},
		{"fanout32/k1e4", 10_000, 32},
		{"fanout256/k1e4", 10_000, 256},
		{"flat/k1e5", 100_000, 0},
		{"fanout8/k1e5", 100_000, 8},
		{"fanout32/k1e5", 100_000, 32},
		{"fanout256/k1e5", 100_000, 256},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var payloads [][]byte
			if c.fanout == 0 {
				payloads = make([][]byte, c.k)
				for node := 0; node < c.k; node++ {
					payloads[node] = benchPayload(node, c.k, trials, 0, false)
				}
			} else {
				payloads = make([][]byte, c.fanout)
				for a := 0; a < c.fanout; a++ {
					lo, hi := a*c.k/c.fanout, (a+1)*c.k/c.fanout
					payloads[a] = aggChildPayload(a, lo, hi, c.k, trials)
				}
			}
			b.ResetTimer()
			benchSession(b, c.k, trials, payloads, pipe, len(payloads))
		})
	}
}

// BenchmarkAggTreeEndToEnd runs the whole tree in-process — real
// Aggregator servers folding real leaf streams — against the flat star.
// On a single machine every tier shares the same cores, so this measures
// protocol overhead rather than the scale-out win; the root-isolating
// BenchmarkAggTree is the headline number.
func BenchmarkAggTreeEndToEnd(b *testing.B) {
	const k, trials = 10_000, 16
	const workers = 512
	run := func(b *testing.B, fanout int) {
		b.ReportAllocs()
		payloads := make([][]byte, k)
		for node := 0; node < k; node++ {
			payloads[node] = benchPayload(node, k, trials, 0, false)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rootL := NewPipeListener()
			cfg := Config{Trials: trials, Deadline: time.Minute, Batch: 256}
			rf := NewReferee(k, benchRule{thr: k}, cfg)
			repCh := make(chan *Report, 1)
			go func() {
				rep, err := rf.Serve(rootL)
				if err != nil {
					b.Error(err)
				}
				repCh <- rep
			}()
			dials := make([]func() (net.Conn, error), k)
			var aggWG sync.WaitGroup
			if fanout > 0 {
				for a := 0; a < fanout; a++ {
					lo, hi := a*k/fanout, (a+1)*k/fanout
					aggL := NewPipeListener()
					agg := &Aggregator{ID: uint32(a), Lo: lo, Hi: hi, K: k, Tier: 1,
						Dial: rootL.Dial, Config: cfg}
					aggWG.Add(1)
					go func() {
						defer aggWG.Done()
						if err := agg.Serve(aggL); err != nil {
							b.Error(err)
						}
					}()
					for n := lo; n < hi; n++ {
						dials[n] = aggL.Dial
					}
				}
			} else {
				for n := range dials {
					dials[n] = rootL.Dial
				}
			}
			// Worker-pool leaves: replay the stream and hang up — the
			// verdict broadcast to a closed peer is a bounded no-op, and the
			// pool keeps peak goroutine count independent of k.
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for node := w; node < k; node += workers {
						conn, err := dials[node]()
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := conn.Write(payloads[node]); err != nil {
							b.Error(err)
						}
						conn.Close()
					}
				}(w)
			}
			wg.Wait()
			rep := <-repCh
			aggWG.Wait()
			if rep == nil || rep.Stats.Votes != k*trials {
				b.Fatalf("session recorded %d votes, want %d", rep.Stats.Votes, k*trials)
			}
		}
		b.ReportMetric(float64(k*trials)*float64(b.N)/b.Elapsed().Seconds(), "votes/sec")
	}
	b.Run("flat", func(b *testing.B) { run(b, 0) })
	b.Run("fanout32", func(b *testing.B) { run(b, 32) })
}

// BenchmarkRefereeTCP is the loopback-socket variant. k stays under the
// container's file-descriptor budget (two fds per connection), and dials
// are throttled so the kernel accept backlog is never overrun.
func BenchmarkRefereeTCP(b *testing.B) {
	const k = 8192
	tcp := func() (net.Listener, func() (net.Conn, error)) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addr := l.Addr().String()
		return l, func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	cases := []struct {
		name     string
		trials   int
		batch    int
		compress bool
	}{
		{"frame", 16, 0, false},
		{"batch128", 128, 128, false},
		{"batch128z", 128, 128, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			payloads := make([][]byte, k)
			for node := 0; node < k; node++ {
				payloads[node] = benchPayload(node, k, c.trials, c.batch, c.compress)
			}
			b.ResetTimer()
			benchSession(b, k, c.trials, payloads, tcp, 256)
		})
	}
}
