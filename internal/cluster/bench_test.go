package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/unifdist/unifdist/internal/wire"
)

// benchRule accepts on a reject threshold and deliberately implements no
// EarlyDecider: every vote must be decoded, deduplicated and recorded, so
// the benchmark measures the referee's full per-vote path rather than a
// short-circuit.
type benchRule struct{ thr int }

func (r benchRule) Accept(rejects, k int) bool { return rejects <= r.thr }
func (r benchRule) Name() string               { return "bench" }

// benchPayload precomputes node's full wire stream — Hello, votes (one
// frame each, or VoteBatch frames of up to batch votes), Done — so the
// benchmark loop measures referee-side decode+apply, not client-side
// sampling or encoding.
func benchPayload(node, k, trials, batch int, compress bool) []byte {
	buf := wire.AppendTraced(nil, &wire.Hello{Node: uint32(node), K: uint32(k), Trials: uint32(trials)}, wire.TraceContext{})
	if batch <= 0 {
		for t := 0; t < trials; t++ {
			v := &wire.Vote{Trial: uint32(t), Node: uint32(node), Reject: (t+node)%3 == 0}
			buf = wire.AppendTraced(buf, v, wire.TraceContext{})
		}
	} else {
		var enc wire.BatchEncoder
		var vb wire.VoteBatch
		for t := 0; t < trials; {
			n := batch
			if trials-t < n {
				n = trials - t
			}
			vb.Votes = vb.Votes[:0]
			for i := 0; i < n; i++ {
				vb.Votes = append(vb.Votes, wire.BatchVote{
					Trial: uint32(t + i), Node: uint32(node), Reject: (t+i+node)%3 == 0,
				})
			}
			out, err := enc.Append(buf, &vb, wire.TraceContext{}, compress)
			if err != nil {
				panic(err)
			}
			buf = out
			t += n
		}
	}
	return wire.AppendTraced(buf, &wire.Done{Node: uint32(node)}, wire.TraceContext{})
}

// benchSession runs b.N full referee sessions of k synthetic peers each
// replaying its precomputed stream, and reports aggregate votes/sec —
// the headline throughput number for the high-throughput transport.
func benchSession(b *testing.B, k, trials int, payloads [][]byte,
	transport func() (net.Listener, func() (net.Conn, error)), dialLimit int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, dial := transport()
		rf := NewReferee(k, benchRule{thr: k}, Config{Trials: trials, Deadline: time.Minute})
		repCh := make(chan *Report, 1)
		go func() {
			rep, err := rf.Serve(l)
			if err != nil {
				b.Error(err)
			}
			repCh <- rep
		}()
		sem := make(chan struct{}, dialLimit)
		var wg sync.WaitGroup
		wg.Add(k)
		for node := 0; node < k; node++ {
			go func(p []byte) {
				defer wg.Done()
				sem <- struct{}{}
				conn, err := dial()
				<-sem
				if err != nil {
					b.Error(err)
					return
				}
				defer conn.Close()
				if _, err := conn.Write(p); err != nil {
					b.Error(err)
					return
				}
				// Hold the connection for the verdict broadcast, like a real
				// node: the session is not over until the referee answers.
				if _, err := wire.NewReader(conn).ReadFrame(); err != nil {
					b.Error(err)
				}
			}(payloads[node])
		}
		wg.Wait()
		rep := <-repCh
		if rep == nil || rep.Stats.Votes != k*trials {
			b.Fatalf("session recorded %d votes, want %d", rep.Stats.Votes, k*trials)
		}
	}
	b.ReportMetric(float64(k*trials)*float64(b.N)/b.Elapsed().Seconds(), "votes/sec")
}

// BenchmarkRefereePipe measures one referee on in-memory transports at
// k = 10^4 peers: the per-frame baseline against the batched and
// batched+compressed paths.
func BenchmarkRefereePipe(b *testing.B) {
	const k = 10_000
	pipe := func() (net.Listener, func() (net.Conn, error)) {
		l := NewPipeListener()
		return l, l.Dial
	}
	cases := []struct {
		name     string
		trials   int
		batch    int
		compress bool
	}{
		// Fewer trials on the per-frame baseline keep the iteration time
		// sane; votes/sec is a rate, so the comparison stands.
		{"frame", 16, 0, false},
		{"batch128", 128, 128, false},
		{"batch128z", 128, 128, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			payloads := make([][]byte, k)
			for node := 0; node < k; node++ {
				payloads[node] = benchPayload(node, k, c.trials, c.batch, c.compress)
			}
			b.ResetTimer()
			benchSession(b, k, c.trials, payloads, pipe, k)
		})
	}
}

// BenchmarkRefereeTCP is the loopback-socket variant. k stays under the
// container's file-descriptor budget (two fds per connection), and dials
// are throttled so the kernel accept backlog is never overrun.
func BenchmarkRefereeTCP(b *testing.B) {
	const k = 8192
	tcp := func() (net.Listener, func() (net.Conn, error)) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addr := l.Addr().String()
		return l, func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	cases := []struct {
		name     string
		trials   int
		batch    int
		compress bool
	}{
		{"frame", 16, 0, false},
		{"batch128", 128, 128, false},
		{"batch128z", 128, 128, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			payloads := make([][]byte, k)
			for node := 0; node < k; node++ {
				payloads[node] = benchPayload(node, k, c.trials, c.batch, c.compress)
			}
			b.ResetTimer()
			benchSession(b, k, c.trials, payloads, tcp, 256)
		})
	}
}
