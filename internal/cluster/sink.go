package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/wire"
)

// voteSink is the connection-terminating half shared by the Referee and
// the Aggregator: it accepts peer connections, validates and
// deduplicates their frames, and folds votes into per-trial sums. What
// happens when a trial's tally advances is the owner's business — the
// referee runs its incremental decision rule, an aggregator watches for
// window completion — expressed through the onTrial hook, called under
// the sink mutex after every fold.
//
// A sink terminates the contiguous node-ID window [lo, hi) of a k-node
// network; the root referee's window is the whole network, an
// aggregator's is its shard. Peers are either direct leaves (Hello) or
// child aggregators (AggHello). Registration keeps them mutually
// exclusive — a leaf cannot claim a node inside a registered aggregator
// window and aggregator windows are pairwise disjoint — and partial
// entries are bounded by their sender's window width, so votes[t] can
// never exceed hi-lo and completion (votes[t] == hi-lo) means every node
// in the window was folded exactly once.
type voteSink struct {
	k      int // global network size (validated against Hello.K)
	lo, hi int // node-ID window [lo, hi) this sink terminates
	span   int // hi - lo
	cfg    Config
	reg    *obs.Registry
	prefix string // metric namespace: "cluster" (referee) or "agg"
	spanNS string // span namespace: "referee" or "agg"
	m      sinkMetrics

	// onTrial is invoked under mu after every vote or partial entry folded
	// into trial, so the owner can advance its decision/completion state.
	onTrial func(trial int)

	mu        sync.Mutex
	voted     []uint64 // (trial, local node) dedup bitset, span*trials bits
	votes     []int    // per-trial votes folded (direct + partial)
	rejects   []int
	samples   []uint64 // sketch-mode per-trial sums; nil in vote mode
	collides  []uint64
	direct    []bool // local node claimed by a direct leaf Hello
	nodeDone  []bool // by local node index
	doneCount int
	aggs      []*aggPeer
	conns     []net.Conn
	closed    bool
	stats     RefereeStats

	trigger     chan struct{}
	triggerOnce sync.Once
}

// aggPeer is one registered child aggregator: its window and the
// per-trial dedup bitset that makes retransmitted partials idempotent.
// Re-registration (a retrying child redialing) reuses the peer, so dedup
// state survives reconnects.
type aggPeer struct {
	id     uint32
	lo, hi int
	seen   []uint64 // per-trial dedup bitset
}

// sinkMetrics caches the hot-path counters so the per-vote path costs
// one atomic add instead of a registry map lookup per event. All fields
// no-op when telemetry is off (nil-registry metrics are nil no-ops).
type sinkMetrics struct {
	votes       *obs.Counter
	votesDup    *obs.Counter
	badFrames   *obs.Counter
	frames      *obs.Counter
	batchSaved  *obs.Counter // <prefix>.batch_bytes_saved
	batchFill   *obs.Histogram
	dedup       *obs.Gauge
	peersIdle   *obs.Gauge   // <prefix>.peers_idle: nodes that sent Done
	fanin       *obs.Counter // agg.fanin: child aggregators registered
	partials    *obs.Counter // <prefix>.partials: partial frames folded
	partialsDup *obs.Counter // <prefix>.partials_dup: deduplicated entries
}

// init prepares the sink for one session terminating [lo, hi) of a
// k-node network, with metrics under prefix and spans under spanNS.
func (s *voteSink) init(k, lo, hi int, cfg Config, prefix, spanNS string) {
	span := hi - lo
	s.k, s.lo, s.hi, s.span = k, lo, hi, span
	s.cfg = cfg
	s.reg = cfg.Obs
	s.prefix = prefix
	s.spanNS = spanNS
	s.voted = make([]uint64, (span*cfg.Trials+63)/64)
	s.votes = make([]int, cfg.Trials)
	s.rejects = make([]int, cfg.Trials)
	if cfg.Sketch {
		s.samples = make([]uint64, cfg.Trials)
		s.collides = make([]uint64, cfg.Trials)
	}
	s.direct = make([]bool, span)
	s.nodeDone = make([]bool, span)
	s.trigger = make(chan struct{})
	s.m = sinkMetrics{
		votes:       s.reg.Counter(s.metricName("votes")),
		votesDup:    s.reg.Counter(s.metricName("votes_dup")),
		badFrames:   s.reg.Counter(s.metricName("bad_frames")),
		frames:      s.reg.Counter(s.metricName("frames")),
		batchSaved:  s.reg.Counter(s.metricName("batch_bytes_saved")),
		batchFill:   s.reg.Histogram(s.metricName("batch_fill"), obs.BytesBuckets()),
		dedup:       s.reg.Gauge(s.metricName("dedup_occupancy")),
		peersIdle:   s.reg.Gauge(s.metricName("peers_idle")),
		fanin:       s.reg.Counter("agg.fanin" + cfg.MetricSuffix),
		partials:    s.reg.Counter(s.metricName("partials")),
		partialsDup: s.reg.Counter(s.metricName("partials_dup")),
	}
}

// metricName builds one sink metric name: the namespace prefix, the base
// name, and the config's label suffix (";k=v", rendered as Prometheus
// labels by the exporter; empty outside the multi-tenant service).
func (s *voteSink) metricName(name string) string {
	return s.prefix + "." + name + s.cfg.MetricSuffix
}

// acceptLoop runs the listener until it closes, spawning one handler per
// connection. wg tracks the handlers; Add happens inside the critical
// section — the owner's finalize sets closed under the same mutex, so no
// handler can appear after the session closed and before wg.Wait.
func (s *voteSink) acceptLoop(l net.Listener, deadline time.Duration, wg *sync.WaitGroup) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns = append(s.conns, conn)
		s.stats.Connections++
		wg.Add(1)
		s.mu.Unlock()
		s.reg.Counter(s.metricName("connections")).Inc()
		go func() {
			defer wg.Done()
			// Absolute per-connection read bound: a stalled peer cannot
			// hold its handler past the session deadline.
			end := time.Now().Add(deadline) //unifvet:allow wallclock connection-deadline safety net; verdicts depend only on which votes arrive
			s.handle(conn, end)
		}()
	}
}

// handle drains one connection's frame stream into the sink.
func (s *voteSink) handle(conn net.Conn, end time.Time) {
	conn.SetReadDeadline(end)
	r := wire.NewReader(conn)
	node := -1        // set by a leaf Hello
	var peer *aggPeer // set by a child AggHello
	frameBytes := s.reg.Histogram(s.metricName("frame_bytes"), obs.BytesBuckets())
	s.reg.Gauge(s.metricName("peers_connected")).Add(1)
	defer s.reg.Gauge(s.metricName("peers_connected")).Add(-1)
	// Per-frame-type decode and apply latency histograms, resolved once per
	// connection; nil (and never timed) when telemetry is off, so the hot
	// path pays no clock reads by default.
	var decodeNS, applyNS [wire.TypePartialVerdict + 1]*obs.Histogram
	if s.reg != nil {
		for t := wire.TypeHello; t <= wire.TypePartialVerdict; t++ {
			name := wire.TypeName(t)
			decodeNS[t] = s.reg.Histogram(s.metricName("decode_ns."+name), obs.LatencyBuckets())
			applyNS[t] = s.reg.Histogram(s.metricName("apply_ns."+name), obs.LatencyBuckets())
		}
	}
	var peerRecv *obs.Counter // resolved after Hello identifies the peer
	// Per-connection decode scratch: steady-state vote, batch and partial
	// decoding reuses these buffers, so the hot loop does not allocate per
	// frame.
	var sc wire.DecodeScratch
	for {
		body, err := r.ReadBody()
		if err != nil {
			// EOF, peer close, injected disconnect, or framing error:
			// framing errors count as a bad frame, transport ends either way.
			if !isClosedErr(err) {
				s.countBadFrame()
			}
			return
		}
		var t0 time.Time
		if s.reg != nil {
			t0 = time.Now() //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
		}
		f, tc, sess, err := wire.DecodeBodySession(body, &sc)
		if err != nil {
			// Codec error: count it and end the transport, as before the
			// read/decode split.
			s.countBadFrame()
			return
		}
		if sess != s.cfg.Session {
			// A frame bound to another session (or a bare legacy frame on a
			// session-bound sink) is a misdirected peer: terminate the
			// transport so its votes cannot leak across sessions.
			s.countBadFrame()
			conn.Close()
			return
		}
		ft := f.Type()
		// A compressed batch decodes to the same VoteBatch frame; attribute
		// its latency samples to the votebatchz series.
		if vb, ok := f.(*wire.VoteBatch); ok && vb.Compressed {
			ft = wire.TypeVoteBatchZ
		}
		if s.reg != nil && int(ft) < len(decodeNS) {
			decodeNS[ft].Observe(int64(time.Since(t0))) //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
			t0 = time.Now()                             //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
		}
		// Wire bytes as received: the frame body plus the length prefix.
		// (EncodedSizeTraced would re-encode raw and misreport compressed
		// batches.)
		n := len(body) + 4
		frameBytes.Observe(int64(n))
		s.mu.Lock()
		s.stats.Frames++
		s.stats.Bytes += int64(n)
		s.mu.Unlock()
		s.m.frames.Inc()
		peerRecv.Inc()

		switch m := f.(type) {
		case *wire.Hello:
			if peer != nil || int(m.K) != s.k || int(m.Trials) != s.cfg.Trials ||
				int(m.Node) < s.lo || int(m.Node) >= s.hi || !s.registerLeaf(int(m.Node)) {
				s.countBadFrame()
				conn.Close()
				return
			}
			node = int(m.Node)
			if s.reg != nil {
				peerRecv = s.reg.Counter(s.metricName(fmt.Sprintf("peer.%d.recv", node)))
				peerRecv.Inc() // the Hello itself
			}
		case *wire.AggHello:
			if node >= 0 {
				s.countBadFrame()
				conn.Close()
				return
			}
			p := s.registerAgg(m)
			if p == nil {
				s.countBadFrame()
				conn.Close()
				return
			}
			peer = p
			if s.reg != nil {
				peerRecv = s.reg.Counter(s.metricName(fmt.Sprintf("aggpeer.%d.recv", peer.id)))
				peerRecv.Inc() // the AggHello itself
			}
		case *wire.Vote:
			if node < 0 || int(m.Node) != node {
				s.countBadFrame()
				continue
			}
			s.apply(int(m.Trial), node, m.Reject, 0, 0, tc)
		case *wire.Sketch:
			if node < 0 || int(m.Node) != node {
				s.countBadFrame()
				continue
			}
			// Single-collision vote derived server-side: reject iff the
			// node saw any colliding pair.
			s.apply(int(m.Trial), node, m.Collisions > 0, uint64(m.Samples), uint64(m.Collisions), tc)
		case *wire.VoteBatch:
			if node < 0 {
				s.countBadFrame()
				continue
			}
			ok := true
			for i := range m.Votes {
				if int(m.Votes[i].Node) != node {
					ok = false
					break
				}
			}
			if !ok {
				// A batch smuggling another node's votes is rejected whole,
				// like a mismatched single-vote frame.
				s.countBadFrame()
				continue
			}
			s.applyBatch(m, node, tc)
		case *wire.PartialVerdict:
			if peer == nil || m.Agg != peer.id {
				s.countBadFrame()
				continue
			}
			s.applyPartial(m, peer, tc)
		case *wire.Done:
			if peer != nil {
				if int(m.Node) != int(peer.id) {
					s.countBadFrame()
					continue
				}
				s.markDoneRange(peer)
			} else {
				if node < 0 || int(m.Node) != node {
					s.countBadFrame()
					continue
				}
				s.markDone(node)
			}
			if s.reg != nil && int(ft) < len(applyNS) {
				applyNS[ft].Observe(int64(time.Since(t0))) //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
			}
			// The peer sends nothing further; keep the connection open for
			// the verdict broadcast and release the handler.
			return
		default:
			s.countBadFrame()
		}
		if s.reg != nil && int(ft) < len(applyNS) {
			applyNS[ft].Observe(int64(time.Since(t0))) //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
		}
	}
}

// registerLeaf claims a node ID for a direct leaf connection; it fails
// when a registered child aggregator's window covers the node, keeping
// the votes[t] ≤ span invariant (the node's votes would arrive twice:
// raw and folded into the aggregator's partial sums).
func (s *voteSink) registerLeaf(node int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.aggs {
		if node >= p.lo && node < p.hi {
			return false
		}
	}
	s.direct[node-s.lo] = true
	return true
}

// registerAgg validates and registers a child aggregator's window. A
// reconnecting child (same ID, same window) reuses its existing peer so
// the partial dedup bitset survives the retry; anything inconsistent —
// shape mismatch, window outside the sink's, overlap with another
// aggregator or with a direct leaf — is rejected.
func (s *voteSink) registerAgg(h *wire.AggHello) *aggPeer {
	if int(h.K) != s.k || int(h.Trials) != s.cfg.Trials {
		return nil
	}
	lo, hi := int(h.Lo), int(h.Hi)
	if lo < s.lo || hi > s.hi { // the codec already enforced lo < hi
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.aggs {
		if p.id == h.Agg {
			if p.lo == lo && p.hi == hi {
				return p // reconnect: dedup state survives
			}
			return nil
		}
		if lo < p.hi && p.lo < hi {
			return nil // overlapping aggregator windows
		}
	}
	for n := lo; n < hi; n++ {
		if s.direct[n-s.lo] {
			return nil // a direct leaf already claimed a covered node
		}
	}
	p := &aggPeer{id: h.Agg, lo: lo, hi: hi,
		seen: make([]uint64, (s.cfg.Trials+63)/64)}
	s.aggs = append(s.aggs, p)
	s.m.fanin.Inc()
	return p
}

// apply records one vote under a <spanNS>.apply span parented on the
// frame's wire trace context, linking the sink's side of the trace to
// the node's send span across the connection.
func (s *voteSink) apply(trial, node int, reject bool, samples, collisions uint64, tc wire.TraceContext) {
	if !s.cfg.Trace.Enabled() {
		s.record(trial, node, reject, samples, collisions)
		return
	}
	sp := s.cfg.Trace.Start(s.spanNS+".apply",
		trace.Context{Trace: trace.ID(tc.Trace), Span: trace.ID(tc.Span)},
		trace.A("trial", trial), trace.A("node", node))
	s.record(trial, node, reject, samples, collisions)
	sp.End()
}

// applyBatch records a whole VoteBatch under one mutex acquisition: the
// incremental fold, dedup bitset and done bookkeeping see the batch as
// the same sequence of per-vote record calls the unbatched path makes,
// just without k lock round-trips. When tracing is on, the batch gets an
// apply span parented on the frame's wire context, and each vote a
// derived child span — so a batched trace keeps per-vote granularity.
func (s *voteSink) applyBatch(b *wire.VoteBatch, node int, tc wire.TraceContext) {
	var sp *trace.Span
	ctx := trace.Context{Trace: trace.ID(tc.Trace), Span: trace.ID(tc.Span)}
	if s.cfg.Trace.Enabled() {
		sp = s.cfg.Trace.Start(s.spanNS+".applybatch", ctx,
			trace.A("node", node), trace.A("votes", len(b.Votes)),
			trace.A("compressed", b.Compressed))
		ctx = sp.Context()
	}
	s.mu.Lock()
	if !s.closed {
		s.stats.BatchFrames++
		s.stats.BatchedVotes += len(b.Votes)
		s.stats.BytesSaved += int64(b.Saved)
		for i := range b.Votes {
			v := &b.Votes[i]
			reject := v.Reject
			if b.Sketch {
				reject = v.Collisions > 0
			}
			s.recordLocked(int(v.Trial), node, reject, uint64(v.Samples), uint64(v.Collisions))
		}
	}
	s.mu.Unlock()
	s.m.batchFill.Observe(int64(len(b.Votes)))
	s.m.batchSaved.Add(int64(b.Saved))
	if sp != nil {
		for i := range b.Votes {
			v := &b.Votes[i]
			vsp := s.cfg.Trace.StartID(s.spanNS+".apply",
				trace.Derive(s.spanNS+".apply", uint64(ctx.Trace), uint64(v.Trial), uint64(node)),
				ctx, trace.A("trial", int(v.Trial)), trace.A("node", node))
			vsp.End()
		}
		sp.End()
	}
}

// applyPartial merges a child aggregator's per-trial partial sums under
// one mutex acquisition. Each (trial, child) pair folds exactly once —
// the peer's seen bitset deduplicates retransmitted entries, so a
// retrying child replaying its flushed log is idempotent. Entry validity
// is bounded by the sender's window: a partial claiming more votes than
// the window holds is a bad frame, which keeps votes[t] ≤ span and the
// completion/quorum arithmetic exact.
func (s *voteSink) applyPartial(pv *wire.PartialVerdict, peer *aggPeer, tc wire.TraceContext) {
	var sp *trace.Span
	if s.cfg.Trace.Enabled() {
		sp = s.cfg.Trace.Start(s.spanNS+".applypartial",
			trace.Context{Trace: trace.ID(tc.Trace), Span: trace.ID(tc.Span)},
			trace.A("agg", int(pv.Agg)), trace.A("entries", len(pv.Entries)))
	}
	width := peer.hi - peer.lo
	s.mu.Lock()
	if !s.closed {
		if pv.Sketch != (s.samples != nil) {
			// Mode mismatch: sketch sums into a vote-mode session or vice
			// versa would silently drop columns.
			s.stats.BadFrames++
			s.m.badFrames.Inc()
		} else {
			s.stats.PartialFrames++
			for i := range pv.Entries {
				e := &pv.Entries[i]
				trial := int(e.Trial)
				if trial < 0 || trial >= s.cfg.Trials || int(e.Votes) > width {
					s.stats.BadFrames++
					s.m.badFrames.Inc()
					continue
				}
				if peer.seen[trial/64]&(1<<(trial%64)) != 0 {
					s.stats.DuplicatePartials++
					s.m.partialsDup.Inc()
					continue
				}
				peer.seen[trial/64] |= 1 << (trial % 64)
				s.votes[trial] += int(e.Votes)
				s.rejects[trial] += int(e.Rejects)
				if s.samples != nil {
					s.samples[trial] += e.Samples
					s.collides[trial] += e.Collisions
				}
				s.stats.Votes += int(e.Votes)
				s.stats.PartialVotes += int(e.Votes)
				s.m.votes.Add(int64(e.Votes))
				s.m.dedup.Set(float64(s.stats.Votes) / float64(s.span*s.cfg.Trials))
				if s.onTrial != nil {
					s.onTrial(trial)
				}
			}
		}
	}
	s.mu.Unlock()
	s.m.partials.Inc()
	if sp != nil {
		sp.End()
	}
}

// record registers one deduplicated vote and notifies the owner.
func (s *voteSink) record(trial, node int, reject bool, samples, collisions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.recordLocked(trial, node, reject, samples, collisions)
}

// recordLocked is record's body; callers hold s.mu and have checked
// s.closed.
func (s *voteSink) recordLocked(trial, node int, reject bool, samples, collisions uint64) {
	if trial < 0 || trial >= s.cfg.Trials {
		s.stats.BadFrames++
		s.m.badFrames.Inc()
		return
	}
	idx := trial*s.span + (node - s.lo)
	if s.voted[idx/64]&(1<<(idx%64)) != 0 {
		s.stats.DuplicateVotes++
		s.m.votesDup.Inc()
		return
	}
	s.voted[idx/64] |= 1 << (idx % 64)
	s.votes[trial]++
	if reject {
		s.rejects[trial]++
	}
	if s.samples != nil {
		s.samples[trial] += samples
		s.collides[trial] += collisions
	}
	s.stats.Votes++
	s.m.votes.Inc()
	// Fraction of the (trial, node) dedup bitset that is set — a live
	// progress probe for the export server.
	s.m.dedup.Set(float64(s.stats.Votes) / float64(s.span*s.cfg.Trials))
	if s.onTrial != nil {
		s.onTrial(trial)
	}
}

// markDone registers a leaf's Done marker; the sink fires when every
// node in its window reported done.
func (s *voteSink) markDone(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.nodeDone[node-s.lo] {
		return
	}
	s.nodeDone[node-s.lo] = true
	s.doneCount++
	// Idle-peer accounting: a node that sent Done holds its connection
	// open only for the verdict broadcast.
	s.m.peersIdle.Add(1)
	if s.doneCount == s.span {
		s.fire()
	}
}

// markDoneRange registers a child aggregator's Done: the child only
// sends it after every leaf in its window reported done, so the whole
// window is marked at once.
func (s *voteSink) markDoneRange(peer *aggPeer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for n := peer.lo; n < peer.hi; n++ {
		if s.nodeDone[n-s.lo] {
			continue
		}
		s.nodeDone[n-s.lo] = true
		s.doneCount++
		s.m.peersIdle.Add(1)
	}
	if s.doneCount == s.span {
		s.fire()
	}
}

// fire triggers session finalization once; callers hold s.mu.
func (s *voteSink) fire() {
	s.triggerOnce.Do(func() { close(s.trigger) })
}

// countBadFrame tallies a rejected frame.
func (s *voteSink) countBadFrame() {
	s.mu.Lock()
	s.stats.BadFrames++
	s.mu.Unlock()
	s.m.badFrames.Inc()
}
