package cluster

import (
	"fmt"
	"net"
	"sync"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// RunTreePipe executes one full session as a hierarchical aggregation
// tree over in-process net.Pipe transports: a root referee, depth tiers
// of aggregators splitting the node-ID space into contiguous windows of
// at most fanout children per parent, and one node client per network
// node dialing its bottom-tier aggregator. Faults are injected per plan
// on the leaf links (nil plan = clean links) — fault streams are keyed
// by (node, attempt) only, independent of the dial target, so a tree run
// loses exactly the votes the flat star would.
//
// Verdicts are pinned trial-for-trial identical to RunPipe and to
// zeroround.(*Network).RunAt: partial sums compose the same monoid the
// flat referee folds vote by vote.
func RunTreePipe(cfg Config, nw *zeroround.Network, d dist.Distribution, plan *FaultPlan, fanout, depth int) (*Report, error) {
	newListener := func() (net.Listener, func() (net.Conn, error), error) {
		l := NewPipeListener()
		return l, l.Dial, nil
	}
	return runTree(cfg, nw, d, plan, fanout, depth, newListener)
}

// RunTreeTCP is RunTreePipe over real TCP loopback listeners, one per
// tree server.
func RunTreeTCP(cfg Config, nw *zeroround.Network, d dist.Distribution, plan *FaultPlan, fanout, depth int) (*Report, error) {
	newListener := func() (net.Listener, func() (net.Conn, error), error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: listen: %w", err)
		}
		addr := l.Addr().String()
		return l, func() (net.Conn, error) { return net.Dial("tcp", addr) }, nil
	}
	return runTree(cfg, nw, d, plan, fanout, depth, newListener)
}

// runTree builds the aggregation tree, launches the leaves, and
// reconciles every tier's outcome like runSession does for the star.
func runTree(cfg Config, nw *zeroround.Network, d dist.Distribution, plan *FaultPlan, fanout, depth int,
	newListener func() (net.Listener, func() (net.Conn, error), error)) (*Report, error) {
	k := nw.K()
	if fanout < 2 {
		return nil, fmt.Errorf("cluster: tree fanout must be ≥ 2, got %d", fanout)
	}
	if depth < 1 {
		return nil, fmt.Errorf("cluster: tree depth must be ≥ 1, got %d", depth)
	}
	rf := NewReferee(k, nw.Rule(), cfg)
	rootL, rootDial, err := newListener()
	if err != nil {
		return nil, err
	}

	var (
		aggWG   sync.WaitGroup
		aggMu   sync.Mutex
		aggErrs []error
	)
	leafDial := make([]func() (net.Conn, error), k)
	nextID := uint32(0)
	// build splits [lo, hi) into at most fanout contiguous windows per
	// tier; tier counts down to the leaves, so bottom-tier aggregators are
	// Tier 1 and the root's children Tier depth.
	var build func(lo, hi, tier int, dial func() (net.Conn, error)) error
	build = func(lo, hi, tier int, dial func() (net.Conn, error)) error {
		if tier == 0 {
			for n := lo; n < hi; n++ {
				leafDial[n] = dial
			}
			return nil
		}
		span := hi - lo
		chunks := fanout
		if chunks > span {
			chunks = span
		}
		for c := 0; c < chunks; c++ {
			clo := lo + c*span/chunks
			chi := lo + (c+1)*span/chunks
			l, ldial, lerr := newListener()
			if lerr != nil {
				return lerr
			}
			agg := &Aggregator{ID: nextID, Lo: clo, Hi: chi, K: k, Tier: tier, Dial: dial, Config: cfg}
			nextID++
			aggWG.Add(1)
			go func() {
				defer aggWG.Done()
				if serr := agg.Serve(l); serr != nil {
					aggMu.Lock()
					aggErrs = append(aggErrs, serr)
					aggMu.Unlock()
				}
			}()
			if berr := build(clo, chi, tier-1, ldial); berr != nil {
				return berr
			}
		}
		return nil
	}
	if err := build(0, k, depth, rootDial); err != nil {
		rootL.Close()
		return nil, err
	}

	type nodeErr struct {
		node int
		err  error
	}
	errCh := make(chan nodeErr, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for i := 0; i < k; i++ {
		nc := &NodeClient{
			ID:     i,
			K:      k,
			Tester: nw.Node(i),
			Config: cfg,
			Dial:   leafDial[i],
			Faults: plan,
		}
		go func(i int, nc *NodeClient) {
			defer wg.Done()
			if _, rerr := nc.Run(d); rerr != nil {
				errCh <- nodeErr{node: i, err: rerr}
			}
		}(i, nc)
	}

	rep, err := rf.Serve(rootL)
	wg.Wait()
	aggWG.Wait()
	close(errCh)
	if err != nil {
		return rep, err
	}
	// Early close severs connections of peers whose verdicts were no
	// longer needed — leaves and aggregators alike; their errors are
	// expected, not failures.
	tolerate := rep != nil && rep.Stats.EarlyClosed
	for ne := range errCh {
		if tolerate {
			continue
		}
		return rep, fmt.Errorf("cluster: node %d: %w", ne.node, ne.err)
	}
	for _, aerr := range aggErrs {
		if tolerate {
			continue
		}
		return rep, aerr
	}
	return rep, nil
}
