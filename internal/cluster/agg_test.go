package cluster

import (
	"io"
	"strings"
	"testing"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// treeRun adapts RunTreePipe/RunTreeTCP to checkDifferential's runner
// signature at a fixed topology.
func treeRun(tree func(Config, *zeroround.Network, dist.Distribution, *FaultPlan, int, int) (*Report, error), fanout, depth int) func(Config, *zeroround.Network, dist.Distribution, *FaultPlan) (*Report, error) {
	return func(cfg Config, nw *zeroround.Network, d dist.Distribution, plan *FaultPlan) (*Report, error) {
		return tree(cfg, nw, d, plan, fanout, depth)
	}
}

func TestTreePipeMatchesReferenceThreshold(t *testing.T) {
	// The tree pin mirrors the flat-star differential: every (fanout,
	// depth) shard layout must land on RunAt's verdicts trial for trial,
	// because partial sums compose the same (votes, rejects) monoid the
	// flat referee folds vote by vote.
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 9)
	for _, tc := range []struct{ fanout, depth int }{
		{2, 1}, {8, 1}, {4, 2}, {2, 3},
	} {
		checkDifferential(t, nw, d, Config{Trials: 10, BaseSeed: 77},
			treeRun(RunTreePipe, tc.fanout, tc.depth))
	}
}

func TestTreePipeMatchesReferenceAND(t *testing.T) {
	nw := andNetwork(t, 1<<10, 16)
	d := dist.NewUniform(1 << 10)
	checkDifferential(t, nw, d, Config{Trials: 6, BaseSeed: 41}, treeRun(RunTreePipe, 4, 2))
}

func TestTreeTCPMatchesReference(t *testing.T) {
	nw := thresholdNetwork(t, 64, 40)
	d := dist.NewTwoBump(64, 1.0, 5)
	checkDifferential(t, nw, d, Config{Trials: 8, BaseSeed: 5}, treeRun(RunTreeTCP, 4, 2))
}

func TestTreeSketchMatchesReference(t *testing.T) {
	// Sketch-mode partials carry the extra samples/collisions columns;
	// the root's derived verdicts must still match the reference.
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 2)
	checkDifferential(t, nw, d,
		Config{Trials: 8, BaseSeed: 9, Sketch: true, DomainN: 64},
		treeRun(RunTreePipe, 8, 2))
}

func TestTreeMatchesFlatStarExactly(t *testing.T) {
	// Beyond matching the reference, the tree must reproduce the flat
	// star's full report: verdicts, rejects, votes, missing — while the
	// root hears about every single vote only through partial frames.
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 4)
	cfg := Config{Trials: 10, BaseSeed: 1234}
	flat, err := RunPipe(cfg, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := RunTreePipe(cfg, nw, d, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for tr := 0; tr < cfg.Trials; tr++ {
		if tree.Verdicts[tr] != flat.Verdicts[tr] || tree.Rejects[tr] != flat.Rejects[tr] ||
			tree.Votes[tr] != flat.Votes[tr] || tree.Missing[tr] != flat.Missing[tr] {
			t.Errorf("trial %d: tree (%v, %d, %d, %d) vs flat (%v, %d, %d, %d)", tr,
				tree.Verdicts[tr], tree.Rejects[tr], tree.Votes[tr], tree.Missing[tr],
				flat.Verdicts[tr], flat.Rejects[tr], flat.Votes[tr], flat.Missing[tr])
		}
	}
	if tree.Stats.PartialFrames == 0 {
		t.Error("tree root folded no partial frames")
	}
	if want := nw.K() * cfg.Trials; tree.Stats.PartialVotes != want {
		t.Errorf("root folded %d votes via partials, want all %d", tree.Stats.PartialVotes, want)
	}
	if flat.Stats.PartialFrames != 0 || flat.Stats.PartialVotes != 0 {
		t.Errorf("flat star reported partial traffic (%d frames, %d votes)",
			flat.Stats.PartialFrames, flat.Stats.PartialVotes)
	}
}

func TestTreeFaultDropMatchesFlatStar(t *testing.T) {
	// Fault streams are keyed by (node, attempt) alone — independent of
	// the dial target — so a lossy tree run must lose exactly the votes
	// the lossy flat star loses, and the quorum fallback must land on the
	// identical verdicts and per-trial missing counts.
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 4)
	cfg := Config{Trials: 10, BaseSeed: 2}
	plan := &FaultPlan{Seed: 7, Drop: 0.10}
	flat, err := RunPipe(cfg, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}
	if flat.MissingVotes == 0 {
		t.Fatal("drop plan lost no votes; fault injection inert")
	}
	for _, depth := range []int{1, 2} {
		tree, err := RunTreePipe(cfg, nw, d, plan, 4, depth)
		if err != nil {
			t.Fatal(err)
		}
		if tree.MissingVotes != flat.MissingVotes {
			t.Errorf("depth %d: tree lost %d votes, flat lost %d", depth, tree.MissingVotes, flat.MissingVotes)
		}
		for tr := 0; tr < cfg.Trials; tr++ {
			if tree.Verdicts[tr] != flat.Verdicts[tr] || tree.Missing[tr] != flat.Missing[tr] ||
				tree.Rejects[tr] != flat.Rejects[tr] {
				t.Errorf("depth %d trial %d: tree (%v, %d rejects, %d missing) vs flat (%v, %d, %d)",
					depth, tr, tree.Verdicts[tr], tree.Rejects[tr], tree.Missing[tr],
					flat.Verdicts[tr], flat.Rejects[tr], flat.Missing[tr])
			}
		}
	}
}

func TestTreeMixedBatchedLeavesMatchReference(t *testing.T) {
	// One shard's leaves may batch while another's submit frame-by-frame;
	// the fold is transport-agnostic, so the verdicts must not move.
	nw := thresholdNetwork(t, 64, 8)
	d := dist.NewTwoBump(64, 1.0, 3)
	k := nw.K()
	reg := obs.NewRegistry()
	cfg := Config{Trials: 6, BaseSeed: 11, Obs: reg}

	rootL := NewPipeListener()
	rf := NewReferee(k, nw.Rule(), cfg)
	mid := k / 2
	for i, win := range [][2]int{{0, mid}, {mid, k}} {
		aggL := NewPipeListener()
		agg := &Aggregator{ID: uint32(i), Lo: win[0], Hi: win[1], K: k, Tier: 1,
			Dial: rootL.Dial, Config: cfg}
		go agg.Serve(aggL)
		for n := win[0]; n < win[1]; n++ {
			leafCfg := cfg
			if n%2 == 0 {
				leafCfg.Batch = 3 // batched even leaves, unbatched odd ones
			}
			nc := &NodeClient{ID: n, K: k, Tester: nw.Node(n), Config: leafCfg, Dial: aggL.Dial}
			go nc.Run(d)
		}
	}
	rep, err := rf.Serve(rootL)
	if err != nil {
		t.Fatal(err)
	}
	for tr := 0; tr < cfg.Trials; tr++ {
		wantAccept, wantRejects := nw.RunAt(d, cfg.BaseSeed, uint64(tr), nil, nil)
		if rep.Verdicts[tr] != wantAccept || rep.Rejects[tr] != wantRejects || rep.Votes[tr] != k {
			t.Errorf("trial %d: (%v, %d rejects, %d votes), reference (%v, %d, %d)", tr,
				rep.Verdicts[tr], rep.Rejects[tr], rep.Votes[tr], wantAccept, wantRejects, k)
		}
	}
	// Batch frames terminate at the aggregator tier, not the root; the
	// node-side per-peer sent counters prove the even leaves batched.
	if reg.Counter("cluster.peer.0.sent").Value() == 0 {
		t.Error("no leaf batched; the mixed-transport pin tested nothing")
	}
	if reg.Counter("agg.votes").Value() != int64(k*cfg.Trials) {
		t.Errorf("aggregator tier folded %d votes, want %d", reg.Counter("agg.votes").Value(), k*cfg.Trials)
	}
}

func TestTreeEarlyCloseKeepsVerdicts(t *testing.T) {
	// Far-from-uniform input under AND: partial sums alone must feed the
	// root's early decider, and the early-closed tree must relay the
	// verdict down without erroring any tier.
	nw := andNetwork(t, 1<<10, 16)
	d := dist.NewTwoBump(1<<10, 1.0, 8)
	full, err := RunPipe(Config{Trials: 8, BaseSeed: 21}, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	early, err := RunTreePipe(Config{Trials: 8, BaseSeed: 21, EarlyClose: true}, nw, d, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !early.Stats.EarlyClosed {
		t.Fatal("far input under AND did not early-close the tree session")
	}
	for tr := range full.Verdicts {
		if full.Verdicts[tr] != early.Verdicts[tr] {
			t.Fatalf("trial %d: early tree verdict %v, full flat run %v", tr, early.Verdicts[tr], full.Verdicts[tr])
		}
	}
}

func TestTreeDeterministicAcrossRuns(t *testing.T) {
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 4)
	cfg := Config{Trials: 8, BaseSeed: 99}
	first, err := RunTreePipe(cfg, nw, d, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := RunTreePipe(cfg, nw, d, nil, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		for tr := range got.Verdicts {
			if got.Verdicts[tr] != first.Verdicts[tr] || got.Rejects[tr] != first.Rejects[tr] {
				t.Fatalf("repeat %d trial %d: (%v, %d) vs first (%v, %d)", rep, tr,
					got.Verdicts[tr], got.Rejects[tr], first.Verdicts[tr], first.Rejects[tr])
			}
		}
		// The flush schedule may chunk differently across runs, but the
		// folded totals are fixed by the configuration.
		if got.Stats.PartialVotes != first.Stats.PartialVotes {
			t.Fatalf("repeat %d folded %d partial votes, first %d", rep,
				got.Stats.PartialVotes, first.Stats.PartialVotes)
		}
	}
}

// fakeAggConn dials a referee and speaks the child-aggregator protocol by
// hand: AggHello, then the given frames. It returns the session verdict.
func fakeAggSession(t *testing.T, rf *Referee, l *pipeListener, hello *wire.AggHello, frames []wire.Frame) (*Report, error) {
	t.Helper()
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = rf.Serve(l)
	}()
	conn, derr := l.Dial()
	if derr != nil {
		t.Fatal(derr)
	}
	defer conn.Close()
	if werr := wire.WriteFrame(conn, hello); werr != nil {
		t.Fatal(werr)
	}
	for _, f := range frames {
		if werr := wire.WriteFrame(conn, f); werr != nil {
			t.Fatal(werr)
		}
	}
	// Drain the verdict broadcast so the referee's bounded best-effort
	// write never has to wait out its deadline on a synchronous pipe.
	go io.Copy(io.Discard, conn)
	<-done
	return rep, err
}

func TestDuplicatedPartialsFoldOnce(t *testing.T) {
	// A retrying child replays its whole flushed log; the per-(trial,
	// child) dedup must fold every entry exactly once.
	nw := thresholdNetwork(t, 64, 10)
	k := nw.K()
	cfg := Config{Trials: 4, BaseSeed: 6, Deadline: 5 * time.Second}
	rf := NewReferee(k, nw.Rule(), cfg)
	entries := make([]wire.PartialEntry, cfg.Trials)
	for tr := range entries {
		entries[tr] = wire.PartialEntry{Trial: uint32(tr), Votes: uint32(k), Rejects: 1}
	}
	pv := &wire.PartialVerdict{Agg: 3, Entries: entries}
	rep, err := fakeAggSession(t, rf, NewPipeListener(),
		&wire.AggHello{Agg: 3, K: uint32(k), Trials: uint32(cfg.Trials), Lo: 0, Hi: uint32(k)},
		[]wire.Frame{pv, pv, &wire.Done{Node: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.DuplicatePartials != cfg.Trials {
		t.Errorf("%d duplicate partial entries counted, want %d", rep.Stats.DuplicatePartials, cfg.Trials)
	}
	for tr := 0; tr < cfg.Trials; tr++ {
		if rep.Votes[tr] != k || rep.Rejects[tr] != 1 {
			t.Errorf("trial %d: %d votes, %d rejects after replay; want %d, 1", tr, rep.Votes[tr], rep.Rejects[tr], k)
		}
	}
	if rep.Stats.DeadlineExpired {
		t.Error("session hit the deadline despite a complete replayed window")
	}
}

func TestPartialExceedingWindowRejected(t *testing.T) {
	// An entry claiming more votes than its sender's window holds would
	// break votes[t] ≤ k; it must count as a bad frame and fold nothing.
	nw := thresholdNetwork(t, 64, 10)
	k := nw.K()
	cfg := Config{Trials: 2, BaseSeed: 6, Deadline: time.Second}
	rf := NewReferee(k, nw.Rule(), cfg)
	oversized := &wire.PartialVerdict{Agg: 1, Entries: []wire.PartialEntry{
		{Trial: 0, Votes: 3, Rejects: 0}, // window [0, 2) holds 2 votes
	}}
	rep, err := fakeAggSession(t, rf, NewPipeListener(),
		&wire.AggHello{Agg: 1, K: uint32(k), Trials: uint32(cfg.Trials), Lo: 0, Hi: 2},
		[]wire.Frame{oversized, &wire.Done{Node: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.BadFrames == 0 {
		t.Error("window-exceeding partial entry not counted as a bad frame")
	}
	if rep.Votes[0] != 0 {
		t.Errorf("%d votes folded from an invalid entry", rep.Votes[0])
	}
}

func TestQuorumPolicyOnSilentSubtree(t *testing.T) {
	// A subtree that disconnects mid-trial leaves its unreported votes
	// missing. QuorumObserved falls back (missing vote = accept);
	// QuorumStrict must fail the run and account for the loss.
	nw := thresholdNetwork(t, 64, 10)
	k := nw.K()
	partial := func() []wire.Frame {
		// The child covers [0, k) but only k-1 leaves reported each trial.
		entries := make([]wire.PartialEntry, 2)
		for tr := range entries {
			entries[tr] = wire.PartialEntry{Trial: uint32(tr), Votes: uint32(k - 1), Rejects: 0}
		}
		return []wire.Frame{
			&wire.PartialVerdict{Agg: 1, Entries: entries},
			&wire.Done{Node: 1},
		}
	}

	cfg := Config{Trials: 2, BaseSeed: 6, Deadline: 5 * time.Second}
	rep, err := fakeAggSession(t, NewReferee(k, nw.Rule(), cfg), NewPipeListener(),
		&wire.AggHello{Agg: 1, K: uint32(k), Trials: 2, Lo: 0, Hi: uint32(k)}, partial())
	if err != nil {
		t.Fatalf("observed quorum rejected a lossy subtree: %v", err)
	}
	for tr := 0; tr < 2; tr++ {
		if rep.Votes[tr] != k-1 || rep.Missing[tr] != 1 {
			t.Errorf("trial %d: %d votes, %d missing; want %d, 1", tr, rep.Votes[tr], rep.Missing[tr], k-1)
		}
	}
	if rep.QuorumTrials != 2 {
		t.Errorf("%d quorum trials, want 2", rep.QuorumTrials)
	}

	cfg.Policy = QuorumStrict
	rep, err = fakeAggSession(t, NewReferee(k, nw.Rule(), cfg), NewPipeListener(),
		&wire.AggHello{Agg: 1, K: uint32(k), Trials: 2, Lo: 0, Hi: uint32(k)}, partial())
	if err == nil {
		t.Fatal("strict quorum accepted a lossy subtree")
	}
	if !strings.Contains(err.Error(), "strict quorum") {
		t.Fatalf("unexpected error: %v", err)
	}
	if rep == nil || rep.MissingVotes != 2 {
		t.Fatal("strict failure did not account for the subtree's missing votes")
	}
}

func TestAggregatorDrainsPartialOnDeadline(t *testing.T) {
	// Drain-on-disconnect: when a leaf never reports, the aggregator's
	// deadline fires and it must still flush the votes it did fold, so
	// the root's quorum fallback sees exactly what arrived.
	nw := thresholdNetwork(t, 64, 10)
	k := nw.K()
	rootCfg := Config{Trials: 3, BaseSeed: 4, Deadline: 10 * time.Second}
	aggCfg := rootCfg
	aggCfg.Deadline = 300 * time.Millisecond

	rootL := NewPipeListener()
	rf := NewReferee(k, nw.Rule(), rootCfg)
	aggL := NewPipeListener()
	agg := &Aggregator{ID: 0, Lo: 0, Hi: 2, K: k, Tier: 1, Dial: rootL.Dial, Config: aggCfg}
	aggDone := make(chan error, 1)
	go func() { aggDone <- agg.Serve(aggL) }()

	d := dist.NewTwoBump(64, 1.0, 3)
	// Leaf 0 reports through the aggregator; leaf 1 of the window never
	// shows up. The remaining leaves dial the root directly.
	go (&NodeClient{ID: 0, K: k, Tester: nw.Node(0), Config: aggCfg, Dial: aggL.Dial}).Run(d)
	for n := 2; n < k; n++ {
		go (&NodeClient{ID: n, K: k, Tester: nw.Node(n), Config: rootCfg, Dial: rootL.Dial}).Run(d)
	}

	rep, err := rf.Serve(rootL)
	if err != nil {
		t.Fatal(err)
	}
	if aerr := <-aggDone; aerr != nil {
		t.Fatalf("aggregator: %v", aerr)
	}
	for tr := 0; tr < rootCfg.Trials; tr++ {
		if rep.Votes[tr] != k-1 {
			t.Errorf("trial %d: %d votes arrived, want %d with only node 1 silent", tr, rep.Votes[tr], k-1)
		}
	}
	// Every trial misses exactly node 1's vote: it either settles early
	// (the threshold decider decides with one vote outstanding) or falls
	// back to quorum with one recorded missing vote — never both.
	if rep.EarlyTrials+rep.QuorumTrials != rootCfg.Trials || rep.MissingVotes != rep.QuorumTrials {
		t.Errorf("accounting: %d early + %d quorum trials of %d, %d missing votes",
			rep.EarlyTrials, rep.QuorumTrials, rootCfg.Trials, rep.MissingVotes)
	}
	if rep.Stats.PartialVotes != rootCfg.Trials {
		t.Errorf("root folded %d partial votes, want %d (node 0's drained sums)",
			rep.Stats.PartialVotes, rootCfg.Trials)
	}
}
