package cluster

import (
	"fmt"
	"net"
	"time"

	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/wire"
)

// FaultPlan is a seeded description of transport misbehavior. Faults are
// injected at the frame layer of each node→referee link: every vote (or
// sketch) frame a node sends draws once from the link's private generator
// and is then dropped, duplicated, preceded by a delay, or replaced by a
// hard disconnect according to the configured rates. Control frames
// (Hello, Done, Verdict) are delivered whenever the link is up, so a
// lossy-but-alive link models "votes may be lost", not "TCP is broken".
//
// Each link's generator is derived as rng.At(Seed, linkID) where linkID
// encodes (node, attempt) — so a run's fault pattern is a pure function of
// (Seed, rates), reproducible across executions and independent of
// scheduling. With Delay == 0 the realized verdicts of a drop/dup plan are
// fully deterministic, which is what lets the fault-injection tests assert
// exact error rates.
type FaultPlan struct {
	// Seed derives every link's fault stream.
	Seed uint64
	// Drop is the probability a vote frame is silently discarded.
	Drop float64
	// Dup is the probability a vote frame is transmitted twice (the
	// referee deduplicates by (trial, node)).
	Dup float64
	// Disconnect is the probability that, instead of sending a given vote
	// frame, the link hard-closes — the node client sees the write error
	// and falls back to its retry/backoff path on a fresh connection.
	Disconnect float64
	// Delay, when positive, sleeps a uniform duration in [0, Delay) before
	// each vote frame send. Delay perturbs timing only, never verdicts.
	Delay time.Duration
}

// Active reports whether the plan injects any fault at all; a nil plan is
// inactive.
func (p *FaultPlan) Active() bool {
	return p != nil && (p.Drop > 0 || p.Dup > 0 || p.Disconnect > 0 || p.Delay > 0)
}

// linkID names the fault stream of one node's attempt-th connection.
func linkID(node, attempt int) uint64 {
	return uint64(node)<<16 | uint64(attempt&0xffff)
}

// faultAction is the outcome of one per-vote fault draw.
type faultAction int

const (
	faultDeliver faultAction = iota
	faultDrop
	faultDup
	faultDisconnect
)

// decide draws the fault outcome for the next vote from g, consuming
// exactly the stream sendVote historically consumed: an optional delay
// draw (when Delay > 0, with the sleep applied here), then one uniform
// draw against the cumulative disconnect/drop/dup thresholds. The batched
// and per-frame send paths both route through decide, so a (Seed, rates)
// plan realizes the identical per-vote fault pattern regardless of how
// votes are packed into frames.
func (p *FaultPlan) decide(g *rng.RNG, reg *obs.Registry) faultAction {
	if p.Delay > 0 {
		d := time.Duration(g.Float64() * float64(p.Delay))
		reg.Counter("cluster.faults_delayed").Inc()
		time.Sleep(d)
	}
	x := g.Float64()
	switch {
	case x < p.Disconnect:
		reg.Counter("cluster.faults_disconnect").Inc()
		return faultDisconnect
	case x < p.Disconnect+p.Drop:
		reg.Counter("cluster.faults_dropped").Inc()
		return faultDrop
	case x < p.Disconnect+p.Drop+p.Dup:
		reg.Counter("cluster.faults_dup").Inc()
		return faultDup
	default:
		return faultDeliver
	}
}

// link is one node→referee connection with the fault plan applied to its
// vote frames. Control frames bypass injection. Every frame the link
// writes is bound to sess (0 = the classic single-session encoding).
type link struct {
	conn net.Conn
	plan *FaultPlan
	g    *rng.RNG // nil when the plan is inactive
	reg  *obs.Registry
	sess uint32
	// Per-peer live counters (nil no-ops when telemetry is disabled).
	sent    *obs.Counter
	dropped *obs.Counter
}

// newLink wraps conn for node's attempt-th connection under plan.
func newLink(conn net.Conn, plan *FaultPlan, node, attempt int, reg *obs.Registry, sess uint32) *link {
	l := &link{conn: conn, plan: plan, reg: reg, sess: sess}
	if plan.Active() {
		l.g = rng.At(plan.Seed, linkID(node, attempt))
	}
	if reg != nil {
		l.sent = reg.Counter(fmt.Sprintf("cluster.peer.%d.sent", node))
		l.dropped = reg.Counter(fmt.Sprintf("cluster.peer.%d.dropped", node))
	}
	return l
}

// sendControl writes a control frame with no fault injection.
func (l *link) sendControl(f wire.Frame) error {
	l.sent.Inc()
	return wire.WriteFrameSession(l.conn, f, l.sess, wire.TraceContext{})
}

// sendVote writes one vote/sketch frame through the fault plan, stamping
// the trace context when one is attached. A dropped frame returns nil (the
// loss is silent, as on a real lossy link); a disconnect closes the
// connection and returns the resulting write error.
func (l *link) sendVote(f wire.Frame, tc wire.TraceContext) error {
	if l.g == nil {
		l.sent.Inc()
		return wire.WriteFrameSession(l.conn, f, l.sess, tc)
	}
	switch l.plan.decide(l.g, l.reg) {
	case faultDisconnect:
		l.conn.Close()
		return wire.WriteFrameSession(l.conn, f, l.sess, tc) // surfaces the closed-link error
	case faultDrop:
		l.dropped.Inc()
		return nil
	case faultDup:
		if err := wire.WriteFrameSession(l.conn, f, l.sess, tc); err != nil {
			return err
		}
		l.sent.Add(2)
		return wire.WriteFrameSession(l.conn, f, l.sess, tc)
	default:
		l.sent.Inc()
		return wire.WriteFrameSession(l.conn, f, l.sess, tc)
	}
}
