package service_test

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/unifdist/unifdist/internal/cluster"
	"github.com/unifdist/unifdist/internal/cluster/service"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func andNetwork(t testing.TB, n, k int) *zeroround.Network {
	t.Helper()
	cfg, err := zeroround.SolveAND(n, k, 1.0, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := zeroround.BuildAND(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func thresholdNetwork(t testing.TB, n, k int) *zeroround.Network {
	t.Helper()
	cfg, err := zeroround.SolveThreshold(n, k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := zeroround.BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// sansStats strips transport accounting and EarlyTrials, as the cluster
// package's differential tests do: those fields legitimately differ
// between transports (and the wire report intentionally omits them).
func sansStats(r *cluster.Report) cluster.Report {
	c := *r
	c.Stats = cluster.RefereeStats{}
	c.EarlyTrials = 0
	return c
}

// startService runs a service over an in-memory listener and returns the
// dial function; cleanup closes the service.
func startService(t testing.TB, cfg service.Config) (*service.Service, func() (net.Conn, error)) {
	t.Helper()
	svc := service.New(cfg)
	l := cluster.NewPipeListener()
	go svc.Serve(l)
	t.Cleanup(func() { svc.Close() })
	return svc, l.Dial
}

// sessionCase is one tenant's workload in the multi-session tests.
type sessionCase struct {
	name string
	nw   *zeroround.Network
	d    dist.Distribution
	cfg  cluster.Config
	plan *cluster.FaultPlan
}

// mixedCases builds the headline workload: ≥8 sessions mixing rules,
// seeds, batching, sketch mode and seeded 10% vote drop.
func mixedCases(t testing.TB) []sessionCase {
	thr := thresholdNetwork(t, 64, 60)
	and := andNetwork(t, 1<<10, 16)
	twoBump := dist.NewTwoBump(64, 1.0, 9)
	uni := dist.NewUniform(1 << 10)
	return []sessionCase{
		{"thr-seed1", thr, twoBump, cluster.Config{Trials: 12, BaseSeed: 1}, nil},
		{"thr-seed77-batch", thr, twoBump, cluster.Config{Trials: 12, BaseSeed: 77, Batch: 16}, nil},
		{"and-seed3", and, uni, cluster.Config{Trials: 8, BaseSeed: 3}, nil},
		{"and-seed41-batch", and, uni, cluster.Config{Trials: 8, BaseSeed: 41, Batch: 64, Compress: true}, nil},
		{"thr-sketch", thr, twoBump, cluster.Config{Trials: 10, BaseSeed: 5, Sketch: true, DomainN: 64}, nil},
		{"thr-drop", thr, twoBump, cluster.Config{Trials: 10, BaseSeed: 9}, &cluster.FaultPlan{Seed: 7, Drop: 0.10}},
		{"thr-drop-batch", thr, twoBump, cluster.Config{Trials: 10, BaseSeed: 13, Batch: 8}, &cluster.FaultPlan{Seed: 11, Drop: 0.10, Dup: 0.10}},
		{"and-drop", and, uni, cluster.Config{Trials: 8, BaseSeed: 21}, &cluster.FaultPlan{Seed: 5, Drop: 0.10}},
	}
}

// TestConcurrentSessionsMatchSolo is the headline differential: many
// concurrent sessions multiplexed over one service, each byte-identical
// (sans transport stats) to its solo flat-star run, and — for the
// fault-free ones — trial-for-trial identical to the indexed reference
// RunAt. Interleaving under seeded faults included.
func TestConcurrentSessionsMatchSolo(t *testing.T) {
	cases := mixedCases(t)
	if len(cases) < 8 {
		t.Fatalf("headline workload has %d sessions, want ≥ 8", len(cases))
	}
	_, dial := startService(t, service.Config{MaxSessions: len(cases)})

	got := make([]*cluster.Report, len(cases))
	errs := make([]error, len(cases))
	var wg sync.WaitGroup
	wg.Add(len(cases))
	for i, c := range cases {
		go func(i int, c sessionCase) {
			defer wg.Done()
			got[i], errs[i] = service.Submit(dial, c.cfg, c.nw, c.d, c.plan, uint32(i+1), false)
		}(i, c)
	}
	wg.Wait()

	for i, c := range cases {
		if errs[i] != nil {
			t.Fatalf("%s: %v", c.name, errs[i])
		}
		want, err := cluster.RunPipe(c.cfg, c.nw, c.d, c.plan)
		if err != nil {
			t.Fatalf("%s: solo run: %v", c.name, err)
		}
		if !reflect.DeepEqual(sansStats(got[i]), sansStats(want)) {
			t.Errorf("%s: service report diverged from solo run:\n got %+v\nwant %+v",
				c.name, sansStats(got[i]), sansStats(want))
		}
		if !c.plan.Active() && !c.cfg.Sketch {
			for tr := 0; tr < c.cfg.Trials; tr++ {
				wantAccept, wantRejects := c.nw.RunAt(c.d, c.cfg.BaseSeed, uint64(tr), nil, nil)
				if got[i].Verdicts[tr] != wantAccept || got[i].Rejects[tr] != wantRejects {
					t.Errorf("%s trial %d: (%v, %d), reference (%v, %d)", c.name, tr,
						got[i].Verdicts[tr], got[i].Rejects[tr], wantAccept, wantRejects)
				}
			}
		}
		// Cross-session dedup isolation: every vote of this session — and
		// none from any other — landed in its referee.
		if got[i].K != c.nw.K() || got[i].Trials != c.cfg.Trials {
			t.Errorf("%s: report shape (%d, %d), want (%d, %d)",
				c.name, got[i].K, got[i].Trials, c.nw.K(), c.cfg.Trials)
		}
	}
}

// TestLegacyPeersViaDefaultSession pins v3/v4 interop: node clients that
// speak the sessionless encoding (Config.Session = 0, frames
// byte-identical to wire v4) are served by the designated default
// session.
func TestLegacyPeersViaDefaultSession(t *testing.T) {
	nw := thresholdNetwork(t, 64, 40)
	d := dist.NewTwoBump(64, 1.0, 5)
	for _, cfg := range []cluster.Config{
		{Trials: 8, BaseSeed: 6},            // per-vote frames, the v3 shape
		{Trials: 8, BaseSeed: 6, Batch: 16}, // batched frames, the v4 shape
	} {
		_, dial := startService(t, service.Config{})
		rep, err := service.Submit(dial, cfg, nw, d, nil, 9, true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cluster.RunPipe(cfg, nw, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sansStats(rep), sansStats(want)) {
			t.Fatalf("batch=%d: legacy-peer session diverged from solo run:\n got %+v\nwant %+v",
				cfg.Batch, sansStats(rep), sansStats(want))
		}
	}
}

func mustOpen(t *testing.T, dial func() (net.Conn, error), open *wire.SessionOpen) *service.Client {
	t.Helper()
	c, err := service.Open(dial, open)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func wantReject(t *testing.T, dial func() (net.Conn, error), open *wire.SessionOpen, reason byte) {
	t.Helper()
	_, err := service.Open(dial, open)
	var re *service.RejectError
	if !errors.As(err, &re) {
		t.Fatalf("open succeeded or failed untyped (%v), want reject %s", err, wire.RejectReasonName(reason))
	}
	if re.Reason != reason {
		t.Fatalf("rejected with %s, want %s", wire.RejectReasonName(re.Reason), wire.RejectReasonName(reason))
	}
}

// TestAdmissionQuotas walks every typed rejection reason.
func TestAdmissionQuotas(t *testing.T) {
	_, dial := startService(t, service.Config{
		MaxSessions:  3,
		TenantBudget: 1000,
		MaxK:         256,
		MaxTrials:    64,
	})
	ok := &wire.SessionOpen{Tenant: 1, K: 10, Trials: 10, Rule: wire.RuleAND}

	// Shape: zero K, zero trials, K or trials over the cap.
	for _, bad := range []*wire.SessionOpen{
		{Tenant: 1, K: 0, Trials: 10, Rule: wire.RuleAND},
		{Tenant: 1, K: 10, Trials: 0, Rule: wire.RuleAND},
		{Tenant: 1, K: 1000, Trials: 10, Rule: wire.RuleAND},
		{Tenant: 1, K: 10, Trials: 1000, Rule: wire.RuleAND},
	} {
		wantReject(t, dial, bad, wire.RejectShape)
	}
	// Rule: unknown byte, threshold without T, sketch under AND.
	for _, bad := range []*wire.SessionOpen{
		{Tenant: 1, K: 10, Trials: 10, Rule: 99},
		{Tenant: 1, K: 10, Trials: 10, Rule: wire.RuleThreshold},
		{Tenant: 1, K: 10, Trials: 10, Rule: wire.RuleAND, Sketch: true},
	} {
		wantReject(t, dial, bad, wire.RejectRule)
	}
	// Budget: tenant 1 holds 100 of 1000; 950 more would overflow, while
	// tenant 2 starts fresh.
	c1 := mustOpen(t, dial, ok)
	defer c1.Close()
	wantReject(t, dial, &wire.SessionOpen{Tenant: 1, K: 95, Trials: 10, Rule: wire.RuleAND}, wire.RejectBudget)
	// Default: at most one.
	c2 := mustOpen(t, dial, &wire.SessionOpen{Tenant: 2, K: 10, Trials: 10, Rule: wire.RuleAND, Default: true})
	defer c2.Close()
	wantReject(t, dial, &wire.SessionOpen{Tenant: 3, K: 10, Trials: 10, Rule: wire.RuleAND, Default: true}, wire.RejectDefault)
	// Sessions: all three slots held.
	c3 := mustOpen(t, dial, &wire.SessionOpen{Tenant: 3, K: 10, Trials: 10, Rule: wire.RuleAND})
	defer c3.Close()
	wantReject(t, dial, &wire.SessionOpen{Tenant: 4, K: 10, Trials: 10, Rule: wire.RuleAND}, wire.RejectSessions)
}

// openUntilAccepted retries an open while the service finishes a prior
// session asynchronously.
func openUntilAccepted(t *testing.T, dial func() (net.Conn, error), open *wire.SessionOpen) *service.Client {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := service.Open(dial, open)
		if err == nil {
			return c
		}
		var re *service.RejectError
		if !errors.As(err, &re) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: still rejected with %s", wire.RejectReasonName(re.Reason))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExplicitCloseReclaimsSlot pins the explicit-close path: hanging up
// the control connection finalizes the session and frees its slot,
// tenant budget and default designation for the next tenant.
func TestExplicitCloseReclaimsSlot(t *testing.T) {
	_, dial := startService(t, service.Config{MaxSessions: 1, TenantBudget: 200})
	open := &wire.SessionOpen{Tenant: 1, K: 10, Trials: 10, Rule: wire.RuleAND, Default: true}
	c := mustOpen(t, dial, open)
	wantReject(t, dial, &wire.SessionOpen{Tenant: 2, K: 10, Trials: 10, Rule: wire.RuleAND}, wire.RejectSessions)
	c.Close()
	// The same shape — same budget, same default flag — must be admittable
	// again once the close lands.
	c2 := openUntilAccepted(t, dial, open)
	c2.Close()
}

// TestReaperEvictsStalledSession pins stalled-session eviction: a session
// whose nodes never show up is expired at the deadline and finalized
// through the quorum fallback, without disturbing a live session that is
// still making progress; its slot is reusable afterwards.
func TestReaperEvictsStalledSession(t *testing.T) {
	reg := obs.NewRegistry()
	_, dial := startService(t, service.Config{
		MaxSessions:  2,
		Deadline:     300 * time.Millisecond,
		ReapInterval: 20 * time.Millisecond,
		Obs:          reg,
	})
	// The stalled session: opened, no nodes ever connect.
	stalled := mustOpen(t, dial, &wire.SessionOpen{Tenant: 1, K: 4, Trials: 3, Rule: wire.RuleAND})
	// The live session: runs to completion well inside the deadline.
	nw := thresholdNetwork(t, 64, 40)
	d := dist.NewTwoBump(64, 1.0, 5)
	cfg := cluster.Config{Trials: 6, BaseSeed: 6}
	liveRep, err := service.Submit(dial, cfg, nw, d, nil, 2, false)
	if err != nil {
		t.Fatalf("live session: %v", err)
	}
	want, err := cluster.RunPipe(cfg, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sansStats(liveRep), sansStats(want)) {
		t.Errorf("live session diverged while the reaper ran:\n got %+v\nwant %+v",
			sansStats(liveRep), sansStats(want))
	}
	// The stalled session's report arrives once the reaper fires: every
	// trial quorum-decided with all votes missing.
	rep, err := stalled.Wait()
	if err != nil {
		t.Fatalf("evicted session report: %v", err)
	}
	if rep.Trials != 3 || rep.MissingVotes != 4*3 || rep.QuorumTrials != 3 {
		t.Fatalf("evicted report: trials=%d missing=%d quorum=%d, want 3/12/3",
			rep.Trials, rep.MissingVotes, rep.QuorumTrials)
	}
	if got := reg.Counter("svc.sessions_evicted").Value(); got != 1 {
		t.Errorf("sessions_evicted = %d, want 1", got)
	}
	// Both slots must be free again.
	c1 := openUntilAccepted(t, dial, &wire.SessionOpen{Tenant: 3, K: 4, Trials: 3, Rule: wire.RuleAND})
	defer c1.Close()
	c2 := openUntilAccepted(t, dial, &wire.SessionOpen{Tenant: 4, K: 4, Trials: 3, Rule: wire.RuleAND})
	defer c2.Close()
	if got := reg.Gauge("svc.sessions_active").Value(); got != 2 {
		t.Errorf("sessions_active = %v after reopen, want 2", got)
	}
}

// TestServiceMetrics pins the telemetry contract: the active gauge rises
// and falls with sessions, per-session metric names carry the slot label,
// and label cardinality is bounded by the session quota no matter how
// many sessions have been served.
func TestServiceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	const quota = 2
	_, dial := startService(t, service.Config{MaxSessions: quota, Obs: reg})
	nw := thresholdNetwork(t, 64, 40)
	d := dist.NewTwoBump(64, 1.0, 5)
	// Serve more sessions than the quota, sequentially, so slots recycle.
	for i := 0; i < 5; i++ {
		cfg := cluster.Config{Trials: 4, BaseSeed: uint64(i)}
		if _, err := service.Submit(dial, cfg, nw, d, nil, uint32(i+1), false); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("svc.sessions_opened").Value(); got != 5 {
		t.Errorf("sessions_opened = %d, want 5", got)
	}
	// The last report is delivered just before its session's state is
	// reclaimed, so the gauge settles asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("svc.sessions_active").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions_active = %v after all sessions ended, want 0",
				reg.Gauge("svc.sessions_active").Value())
		}
		time.Sleep(time.Millisecond)
	}
	snap := reg.Snapshot()
	slots := map[string]bool{}
	for name := range snap.Counters {
		if i := indexOfLabel(name); i >= 0 {
			slot := name[i:]
			slots[slot] = true
		}
	}
	for name := range snap.Gauges {
		if i := indexOfLabel(name); i >= 0 {
			slots[slot(name)] = true
		}
	}
	if len(slots) > quota {
		t.Errorf("metrics carry %d distinct session labels %v, quota is %d", len(slots), slots, quota)
	}
	if !slots[";session=0"] {
		t.Errorf("no metric carries the slot-0 session label; saw %v", slots)
	}
	if reg.Counter("svc.frames;session=0").Value() == 0 {
		t.Error("svc.frames;session=0 never counted")
	}
}

func indexOfLabel(name string) int {
	for i := 0; i+9 <= len(name); i++ {
		if name[i:i+9] == ";session=" {
			return i
		}
	}
	return -1
}

func slot(name string) string { return name[indexOfLabel(name):] }

// BenchmarkServiceConcurrentSessions measures aggregate fold throughput
// (votes/sec) and fairness (spread: slowest session's wall time over the
// fastest's) at 1, 4 and 16 concurrent sessions.
func BenchmarkServiceConcurrentSessions(b *testing.B) {
	nw := thresholdNetwork(b, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 9)
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			// Slot reclaim is asynchronous (the report reaches the client
			// before the slot frees), so back-to-back iterations need
			// headroom; concurrency stays capped by the submit goroutines.
			_, dial := startService(b, service.Config{MaxSessions: 2 * sessions})
			// Enough trials that steady-state round-robin folding, not
			// per-session connection setup, dominates each wall time.
			const trials = 32
			votes := nw.K() * trials * sessions
			var total time.Duration
			var spreadSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				durs := make([]time.Duration, sessions)
				var wg sync.WaitGroup
				wg.Add(sessions)
				for s := 0; s < sessions; s++ {
					go func(s int) {
						defer wg.Done()
						start := time.Now()
						cfg := cluster.Config{Trials: trials, BaseSeed: uint64(i*sessions + s), Batch: 16}
						if _, err := service.Submit(dial, cfg, nw, d, nil, uint32(s+1), false); err != nil {
							b.Error(err)
						}
						durs[s] = time.Since(start)
					}(s)
				}
				wg.Wait()
				worst, best := durs[0], durs[0]
				for _, du := range durs {
					if du > worst {
						worst = du
					}
					if du < best {
						best = du
					}
				}
				total += worst
				if best > 0 {
					spreadSum += float64(worst) / float64(best)
				}
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(float64(votes)*float64(b.N)/total.Seconds(), "votes/sec")
			}
			b.ReportMetric(spreadSum/float64(b.N), "fairness-spread")
		})
	}
}
