package service

import (
	"net"
	"sync"

	"github.com/unifdist/unifdist/internal/cluster"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/wire"
)

// The scheduler decouples reading frames from folding them. Each session
// owns a bounded FIFO of raw frame bodies; reader goroutines offer into
// it (blocking when their session's queue is full — backpressure is per
// session, never cross-tenant), and a fixed worker pool serves the
// sessions round-robin, draining at most one quantum per turn before the
// session goes to the back of the ring. Two invariants carry the
// correctness argument:
//
//   - One worker per session at a time. A session is either idle, queued
//     in the ring, or owned by exactly one draining worker — never in
//     two workers at once — so frames from one connection fold in the
//     order they arrived, which Done-after-votes ordering requires.
//   - Fairness is structural, not probabilistic. A hot session re-enters
//     the ring behind every session that was already waiting, so k
//     sessions with pending work each get every k-th quantum regardless
//     of offered load.
//
// All scheduler state — ring, per-session queues, lifecycle flags —
// lives under one mutex, with two condition variables (work: the ring
// has an entry; room: some queue has capacity again). Frame decoding and
// folding happen strictly outside the lock.

// frameItem is one queued frame: the raw body (owned copy — the reader's
// buffer is reused) plus the peer and connection it arrived on.
type frameItem struct {
	peer *cluster.Peer
	conn net.Conn
	body []byte
}

// Session queue states.
const (
	qIdle     = iota // empty or unserved, not in the ring
	qRinged          // in the ring, awaiting a worker
	qDraining        // owned by exactly one worker
)

// sessQueue is one session's inbound frame queue; all fields except the
// metric handles are guarded by the scheduler mutex.
type sessQueue struct {
	state int
	dead  bool        // session finished: drop everything, admit nothing
	items []frameItem // FIFO; head at index 0
	free  [][]byte    // recycled body buffers

	depth  *obs.Gauge   // svc.queue_depth;session=<slot>
	frames *obs.Counter // svc.frames;session=<slot>
}

type scheduler struct {
	quantum  int
	depthCap int

	mu      sync.Mutex
	work    *sync.Cond // ring gained an entry, or stopping
	room    *sync.Cond // a queue drained below cap, or a session died
	ring    []*session // sessions in state qRinged, FIFO
	stopped bool

	wg sync.WaitGroup
}

func newScheduler(cfg Config) *scheduler {
	s := &scheduler{quantum: cfg.Quantum, depthCap: cfg.QueueDepth}
	if s.quantum <= 0 {
		s.quantum = DefaultQuantum
	}
	if s.depthCap <= 0 {
		s.depthCap = DefaultQueueDepth
	}
	s.work = sync.NewCond(&s.mu)
	s.room = sync.NewCond(&s.mu)
	return s
}

func (s *scheduler) start(workers int) {
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// offer queues one frame body for sess, copying it out of the reader's
// reused buffer. It blocks while the session's queue is full (per-session
// backpressure) and reports false when the session is finished or the
// scheduler stopped — the caller should close the connection.
func (s *scheduler) offer(sess *session, peer *cluster.Peer, conn net.Conn, body []byte) bool {
	s.mu.Lock()
	q := &sess.q
	for len(q.items) >= s.depthCap && !q.dead && !s.stopped {
		s.room.Wait()
	}
	if q.dead || s.stopped {
		s.mu.Unlock()
		return false
	}
	var buf []byte
	if n := len(q.free); n > 0 {
		buf = q.free[n-1][:0]
		q.free = q.free[:n-1]
	}
	q.items = append(q.items, frameItem{peer: peer, conn: conn, body: append(buf, body...)})
	q.depth.Set(float64(len(q.items)))
	q.frames.Inc()
	if q.state == qIdle {
		q.state = qRinged
		s.ring = append(s.ring, sess)
		s.work.Signal()
	}
	s.mu.Unlock()
	return true
}

// worker serves ringed sessions until shutdown: pop, drain one quantum,
// fold outside the lock, release.
func (s *scheduler) worker() {
	defer s.wg.Done()
	var sc wire.DecodeScratch
	batch := make([]frameItem, 0, s.quantum)
	for {
		s.mu.Lock()
		for len(s.ring) == 0 && !s.stopped {
			s.work.Wait()
		}
		if len(s.ring) == 0 { // stopped, ring fully drained
			s.mu.Unlock()
			return
		}
		sess := s.ring[0]
		s.ring = s.ring[:copy(s.ring, s.ring[1:])]
		q := &sess.q
		q.state = qDraining
		n := len(q.items)
		if n > s.quantum {
			n = s.quantum
		}
		batch = append(batch[:0], q.items[:n]...)
		rest := copy(q.items, q.items[n:])
		for i := rest; i < len(q.items); i++ {
			q.items[i] = frameItem{} // release body references to the free list's benefit
		}
		q.items = q.items[:rest]
		q.depth.Set(float64(rest))
		s.room.Broadcast()
		s.mu.Unlock()

		for i := range batch {
			s.apply(sess, &batch[i], &sc)
		}

		s.mu.Lock()
		for i := range batch {
			if len(q.free) < s.depthCap {
				q.free = append(q.free, batch[i].body[:0])
			}
			batch[i] = frameItem{}
		}
		if q.dead {
			q.items = nil
			q.state = qIdle
		} else if len(q.items) > 0 {
			q.state = qRinged
			s.ring = append(s.ring, sess)
			s.work.Signal()
		} else {
			q.state = qIdle
		}
		s.mu.Unlock()
	}
}

// apply decodes and folds one frame. A decode or protocol error
// terminates the offending connection, exactly as the solo referee's
// handler does; the session itself keeps running on its other peers.
func (s *scheduler) apply(sess *session, it *frameItem, sc *wire.DecodeScratch) {
	f, tc, _, err := wire.DecodeBodySession(it.body, sc)
	if err != nil {
		it.conn.Close()
		return
	}
	if _, err := it.peer.Apply(f, tc, len(it.body)+4); err != nil { // +4: the length prefix
		it.conn.Close()
	}
}

// kill marks sess finished: pending frames drop, blocked offers return
// false, and workers skip it. Safe to call repeatedly and concurrently
// with a draining worker — the drain finishes its current batch (folds
// into a referee that is already closed, which no-ops) and then parks
// the queue.
func (s *scheduler) kill(sess *session) {
	s.mu.Lock()
	sess.q.dead = true
	sess.q.items = nil
	sess.q.free = nil
	s.room.Broadcast()
	s.mu.Unlock()
}

// shutdown stops the workers after the ring drains and blocks until they
// exit. Offers racing shutdown either queue (and fold) or return false.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	s.stopped = true
	s.work.Broadcast()
	s.room.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
