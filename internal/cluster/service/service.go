// Package service is the multi-tenant serving layer over the cluster
// runtime: one long-running process multiplexes many concurrent testing
// sessions — each an isolated referee with its own dedup bitsets, quorum
// state, EarlyDecider progress, journal stream and seed — over a single
// listener, without restarting between runs. This is the regime real
// distribution-testing services operate in: many independent (rule, seed,
// trials) queries against shared infrastructure, the explicit
// "multi-tenant aggregation service" step beyond the one-session-per-
// deployment runtimes of the flat star and the aggregation tree.
//
// The protocol is wire v5. A client opens a control connection and sends
// SessionOpen (tenant, rule shape, trials, seed, sketch mode); the
// service admits it — or rejects it with a typed reason when quotas or
// shape validation fail — and answers SessionAccept carrying the session
// ID. Node clients then connect exactly as they would to a solo referee,
// with every frame bound to that session by the v5 session suffix; a
// session-0 peer (codec v3/v4) routes to the designated default session,
// so pre-session peers interoperate unchanged. When the session decides,
// the service streams a SessionReport back on the control connection and
// broadcasts the verdict to the session's peers, then reclaims all
// per-session state.
//
// Fairness: inbound frames are not applied on the reader goroutine.
// Each session owns a bounded frame queue, and a fixed worker pool
// drains the queues round-robin with a per-turn quantum, so one hot
// tenant saturating its links cannot starve the other sessions' folds.
// Determinism is untouched by any of this: votes are pure functions of
// (seed, trial, node) and the fold is order-independent, so each
// multiplexed session reports byte-identical (sans transport stats) to
// its solo flat-star run — the package's headline differential test.
package service

import (
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/cluster"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// Defaults for the service knobs; see Config.
const (
	DefaultMaxSessions  = 16
	DefaultWorkers      = 4
	DefaultQuantum      = 32
	DefaultQueueDepth   = 64
	DefaultReapInterval = 250 * time.Millisecond
)

// Config shapes one Service.
type Config struct {
	// MaxSessions bounds the concurrently open sessions (0 =
	// DefaultMaxSessions). Each session occupies one slot in [0,
	// MaxSessions); the slot index is the `session` label on /metrics, so
	// label cardinality is bounded by this quota, not by the unbounded
	// session-ID space.
	MaxSessions int
	// TenantBudget bounds a tenant's in-flight votes: the sum of k×trials
	// over the tenant's open sessions. A SessionOpen that would exceed it
	// is rejected with RejectBudget. 0 disables the budget.
	TenantBudget int
	// MaxK and MaxTrials cap a single session's shape (RejectShape).
	// MaxTrials is additionally clamped to wire.MaxReportTrials so the
	// final SessionReport always fits its frame cap; 0 means exactly that
	// clamp (and no K cap).
	MaxK      int
	MaxTrials int
	// Deadline bounds each session: a session still undecided this long
	// after admission is expired by the reaper and finalized through the
	// quorum fallback. 0 = cluster.DefaultDeadline.
	Deadline time.Duration
	// ReapInterval is the stalled-session sweep period (0 =
	// DefaultReapInterval).
	ReapInterval time.Duration
	// Workers sizes the frame-fold worker pool (0 = DefaultWorkers);
	// Quantum is how many frames one worker drains from a session before
	// moving to the next in round-robin order (0 = DefaultQuantum);
	// QueueDepth bounds each session's inbound frame queue, applying
	// backpressure to that session's readers alone (0 =
	// DefaultQueueDepth).
	Workers    int
	Quantum    int
	QueueDepth int
	// Obs receives service and per-session metrics; nil disables
	// telemetry.
	Obs *obs.Registry
	// JournalDir, when non-empty, streams each session's lifecycle and
	// per-trial verdicts to <JournalDir>/session-<id>.jsonl.
	JournalDir string
}

func (c Config) maxSessions() int {
	if c.MaxSessions <= 0 {
		return DefaultMaxSessions
	}
	return c.MaxSessions
}

func (c Config) maxTrials() int {
	if c.MaxTrials <= 0 || c.MaxTrials > wire.MaxReportTrials {
		return wire.MaxReportTrials
	}
	return c.MaxTrials
}

func (c Config) deadline() time.Duration {
	if c.Deadline <= 0 {
		return cluster.DefaultDeadline
	}
	return c.Deadline
}

func (c Config) reapInterval() time.Duration {
	if c.ReapInterval <= 0 {
		return DefaultReapInterval
	}
	return c.ReapInterval
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return DefaultWorkers
	}
	return c.Workers
}

// Service is the session multiplexer. Build with New, run with Serve,
// stop with Close.
type Service struct {
	cfg Config
	reg *obs.Registry

	mu          sync.Mutex
	sessions    map[uint32]*session // by session ID
	slots       []*session          // by slot index; nil = free
	tenantUse   map[uint32]int      // tenant → in-flight vote budget used
	defaultSess *session            // serves session-0 (legacy v3/v4) peers
	nextID      uint32
	closed      bool
	l           net.Listener

	sched    *scheduler
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	active   *obs.Gauge   // svc.sessions_active
	opened   *obs.Counter // svc.sessions_opened
	evicted  *obs.Counter // svc.sessions_evicted
	badConns *obs.Counter // svc.bad_conns: connections dropped for protocol errors
}

// New builds a service; it owns no transport until Serve.
func New(cfg Config) *Service {
	s := &Service{
		cfg:       cfg,
		reg:       cfg.Obs,
		sessions:  map[uint32]*session{},
		slots:     make([]*session, cfg.maxSessions()),
		tenantUse: map[uint32]int{},
		stop:      make(chan struct{}),
		active:    cfg.Obs.Gauge("svc.sessions_active"),
		opened:    cfg.Obs.Counter("svc.sessions_opened"),
		evicted:   cfg.Obs.Counter("svc.sessions_evicted"),
		badConns:  cfg.Obs.Counter("svc.bad_conns"),
	}
	s.sched = newScheduler(cfg)
	return s
}

// Serve accepts connections on l until the listener closes (normally via
// Close). Each connection self-identifies with its first frame:
// SessionOpen starts the admission handshake, Hello/AggHello joins an
// open session. Serve itself never blocks on a peer — per-connection
// reader goroutines feed the worker pool.
func (s *Service) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("service: serve after Close")
	}
	s.l = l
	s.mu.Unlock()
	s.sched.start(s.cfg.workers())
	s.wg.Add(1)
	go s.reap()
	for {
		conn, err := l.Accept()
		if err != nil {
			return nil // listener closed: orderly shutdown
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Close stops the service: the listener closes, every open session
// finalizes through the quorum fallback (reports still stream to their
// control connections), and Close blocks until all goroutines drained.
// It is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.l
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if l != nil {
		l.Close()
	}
	// Finish every session synchronously: Close must not race the
	// waiters' finish calls, and finishSession is idempotent either way.
	for _, sess := range s.openSessions() {
		s.finishSession(sess, "service_close")
	}
	s.sched.shutdown()
	s.wg.Wait()
	return nil
}

// openSessions snapshots the open sessions in ascending session-ID order
// (map iteration order is not deterministic; shutdown and reaping must
// be).
func (s *Service) openSessions() []*session {
	s.mu.Lock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// handleConn routes one accepted connection by its first frame.
func (s *Service) handleConn(conn net.Conn) {
	defer s.wg.Done()
	// Absolute read bound: an idle or stalled peer cannot hold its reader
	// past the session deadline plus a report-delivery grace.
	conn.SetReadDeadline(time.Now().Add(s.cfg.deadline() + time.Second)) //unifvet:allow wallclock connection-deadline safety net; verdicts depend only on which votes arrive
	r := wire.NewReader(conn)
	body, err := r.ReadBody()
	if err != nil {
		conn.Close()
		return
	}
	switch wire.BodyType(body) {
	case wire.TypeSessionOpen:
		var sc wire.DecodeScratch
		f, _, _, err := wire.DecodeBodySession(body, &sc)
		if err != nil {
			s.badConns.Inc()
			conn.Close()
			return
		}
		s.admit(conn, r, f.(*wire.SessionOpen))
	case wire.TypeHello, wire.TypeAggHello:
		s.servePeer(conn, r, body)
	default:
		s.badConns.Inc()
		conn.Close()
	}
}

// admit runs the admission handshake for one SessionOpen: quota and
// shape checks in rejection-priority order, then session construction
// and the SessionAccept reply. The connection becomes the session's
// control connection: it receives the SessionReport when the session
// decides, and closing it early is the explicit-close signal.
func (s *Service) admit(conn net.Conn, r *wire.Reader, open *wire.SessionOpen) {
	reject := func(reason byte) {
		s.reg.Counter("svc.sessions_rejected." + wire.RejectReasonName(reason)).Inc()
		_ = wire.WriteFrame(conn, &wire.SessionReject{Tenant: open.Tenant, Reason: reason})
		conn.Close()
	}
	k, trials := int(open.K), int(open.Trials)
	if k < 1 || trials < 1 || trials > s.cfg.maxTrials() || (s.cfg.MaxK > 0 && k > s.cfg.MaxK) {
		reject(wire.RejectShape)
		return
	}
	var rule zeroround.Rule
	switch open.Rule {
	case wire.RuleAND:
		if open.Sketch {
			// Sketch mode derives the vote as Collisions > 0 — only the
			// threshold (single-collision) tester is that derivation.
			reject(wire.RejectRule)
			return
		}
		rule = zeroround.ANDRule{}
	case wire.RuleThreshold:
		if open.Thresh < 1 {
			reject(wire.RejectRule)
			return
		}
		rule = zeroround.ThresholdRule{T: int(open.Thresh)}
	default:
		reject(wire.RejectRule)
		return
	}
	cost := k * trials

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	slot := -1
	for i, occ := range s.slots {
		if occ == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		s.mu.Unlock()
		reject(wire.RejectSessions)
		return
	}
	if s.cfg.TenantBudget > 0 && s.tenantUse[open.Tenant]+cost > s.cfg.TenantBudget {
		s.mu.Unlock()
		reject(wire.RejectBudget)
		return
	}
	if open.Default && s.defaultSess != nil {
		s.mu.Unlock()
		reject(wire.RejectDefault)
		return
	}
	id := s.allocID()
	sess := &session{
		id:        id,
		slot:      slot,
		tenant:    open.Tenant,
		cost:      cost,
		isDefault: open.Default,
		ctrl:      conn,
		closeCh:   make(chan struct{}),
		expiry:    time.Now().Add(s.cfg.deadline()), //unifvet:allow wallclock stalled-session eviction bound; verdicts depend only on which votes arrived
	}
	ccfg := cluster.Config{
		Trials:       trials,
		BaseSeed:     open.Seed,
		EarlyClose:   open.EarlyClose,
		Sketch:       open.Sketch,
		Deadline:     s.cfg.deadline(),
		Obs:          s.reg,
		Session:      sess.wireID(),
		MetricSuffix: fmt.Sprintf(";session=%d", slot),
	}
	sess.rf = cluster.NewReferee(k, rule, ccfg)
	sess.q.depth = s.reg.Gauge(fmt.Sprintf("svc.queue_depth;session=%d", slot))
	sess.q.frames = s.reg.Counter(fmt.Sprintf("svc.frames;session=%d", slot))
	s.sessions[id] = sess
	s.slots[slot] = sess
	s.tenantUse[open.Tenant] += cost
	if open.Default {
		s.defaultSess = sess
	}
	s.mu.Unlock()

	s.active.Add(1)
	s.opened.Inc()
	s.openJournal(sess, open)
	if err := wire.WriteFrame(conn, &wire.SessionAccept{Session: id, Tenant: open.Tenant}); err != nil {
		s.finishSession(sess, "accept_write_failed")
		return
	}
	s.wg.Add(1)
	go s.waitSession(sess)
	// This goroutine stays as the control-connection watcher: the client
	// sends nothing further on it, so the next read returns only when the
	// session finished (finish closes the connection) or the client hung
	// up early — the explicit-close signal.
	if _, err := r.ReadBody(); err == nil {
		// Any further frame on the control connection is a protocol
		// violation; treat it as the close signal too.
		s.badConns.Inc()
	}
	sess.requestClose()
}

// allocID hands out the next nonzero, currently-unused session ID;
// callers hold s.mu.
func (s *Service) allocID() uint32 {
	for {
		s.nextID++
		if s.nextID == 0 {
			s.nextID = 1
		}
		if _, used := s.sessions[s.nextID]; !used {
			return s.nextID
		}
	}
}

// servePeer drains one node/aggregator connection into its session's
// frame queue. The first frame (Hello or AggHello) fixes both the
// session — by its v5 suffix, or the default session for session-0
// legacy peers — and the peer identity; every subsequent frame must
// carry the same session.
func (s *Service) servePeer(conn net.Conn, r *wire.Reader, first []byte) {
	sessID := wire.SessionOf(first)
	s.mu.Lock()
	var sess *session
	if sessID == 0 {
		sess = s.defaultSess
	} else {
		sess = s.sessions[sessID]
	}
	s.mu.Unlock()
	if sess == nil {
		s.badConns.Inc()
		conn.Close()
		return
	}
	var sc wire.DecodeScratch
	f, _, _, err := wire.DecodeBodySession(first, &sc)
	if err != nil {
		s.badConns.Inc()
		conn.Close()
		return
	}
	peer, err := sess.rf.Handshake(f)
	if err != nil {
		s.badConns.Inc()
		conn.Close()
		return
	}
	if !sess.rf.Register(conn) {
		conn.Close()
		return
	}
	sess.q.frames.Inc() // the handshake frame itself
	for {
		body, err := r.ReadBody()
		if err != nil {
			// EOF or transport end; the connection stays registered for the
			// verdict broadcast if it is still open.
			return
		}
		if wire.SessionOf(body) != sessID {
			// Cross-session smuggling: terminate before the frame can fold.
			s.badConns.Inc()
			conn.Close()
			return
		}
		if !s.sched.offer(sess, peer, conn, body) {
			// Session finished or evicted while this peer was mid-stream.
			conn.Close()
			return
		}
		if wire.BodyType(body) == wire.TypeDone {
			// The peer sends nothing further; keep the connection open for
			// the verdict broadcast and release the reader. The Done folds
			// in queue order, after every vote that preceded it.
			return
		}
	}
}

// waitSession drives one session to completion: the referee's decision
// trigger, an explicit close from the control connection, or service
// shutdown.
func (s *Service) waitSession(sess *session) {
	defer s.wg.Done()
	reason := "decided"
	select {
	case <-sess.rf.Decided():
	case <-sess.closeCh:
		reason = "closed"
	case <-s.stop:
		reason = "service_close"
	}
	s.finishSession(sess, reason)
}

// finishSession finalizes one session exactly once: quorum-decide the
// remaining trials, stream the SessionReport to the control connection,
// broadcast the verdict to the session's peers, flush the journal, and
// reclaim every per-session resource (slot, tenant budget, queue,
// metrics gauge).
func (s *Service) finishSession(sess *session, reason string) {
	sess.finishOnce.Do(func() {
		s.sched.kill(sess)
		rep, sum, conns := sess.rf.Finalize()

		if sess.ctrl != nil {
			sess.ctrl.SetWriteDeadline(time.Now().Add(time.Second)) //unifvet:allow wallclock bounded best-effort report delivery on shutdown
			if buf, err := wire.AppendSessionReport(nil, reportFrame(sess.id, rep), wire.TraceContext{}); err == nil {
				_, _ = sess.ctrl.Write(buf)
			}
			sess.ctrl.Close()
		}
		for _, c := range conns {
			// Bounded best-effort verdict broadcast, exactly like the solo
			// referee's: a peer that already went away must not stall the
			// service.
			c.SetWriteDeadline(time.Now().Add(time.Second)) //unifvet:allow wallclock bounded best-effort verdict broadcast on shutdown
			_ = wire.WriteFrame(c, &sum)
			c.Close()
		}
		s.closeJournal(sess, rep, reason)

		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.slots[sess.slot] = nil
		s.tenantUse[sess.tenant] -= sess.cost
		if s.tenantUse[sess.tenant] <= 0 {
			delete(s.tenantUse, sess.tenant)
		}
		if s.defaultSess == sess {
			s.defaultSess = nil
		}
		s.mu.Unlock()
		s.active.Add(-1)
		sess.q.depth.Set(0)
		s.reg.Counter("svc.sessions_finished." + reason).Inc()
	})
}

// reap periodically expires sessions that outlived the deadline without
// deciding: their referees fire the decision trigger with the
// deadline-expired stat set, and the waiter finalizes them through the
// quorum fallback — freeing their slot, budget and queue without
// touching any live session.
func (s *Service) reap() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.reapInterval())
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			now := time.Now() //unifvet:allow wallclock stalled-session eviction sweep; verdicts depend only on which votes arrived
			var stale []*session
			s.mu.Lock()
			for _, sess := range s.sessions {
				if now.After(sess.expiry) {
					stale = append(stale, sess)
				}
			}
			s.mu.Unlock()
			sort.Slice(stale, func(i, j int) bool { return stale[i].id < stale[j].id })
			for _, sess := range stale {
				s.evicted.Inc()
				sess.rf.MarkExpired()
			}
		}
	}
}

// openJournal starts the session's JSONL stream when JournalDir is set.
func (s *Service) openJournal(sess *session, open *wire.SessionOpen) {
	if s.cfg.JournalDir == "" {
		return
	}
	j, err := obs.OpenJournal(filepath.Join(s.cfg.JournalDir, fmt.Sprintf("session-%d.jsonl", sess.id)))
	if err != nil {
		s.reg.Counter("svc.journal_errors").Inc()
		return
	}
	sess.journal = j
	j.Write(struct {
		Kind    string `json:"kind"`
		Session uint32 `json:"session"`
		Tenant  uint32 `json:"tenant"`
		K       uint32 `json:"k"`
		Trials  uint32 `json:"trials"`
		Seed    uint64 `json:"seed"`
		Rule    byte   `json:"rule"`
		Thresh  uint32 `json:"thresh,omitempty"`
		Sketch  bool   `json:"sketch,omitempty"`
		Default bool   `json:"default,omitempty"`
	}{Kind: "session_open", Session: sess.id, Tenant: open.Tenant, K: open.K,
		Trials: open.Trials, Seed: open.Seed, Rule: open.Rule, Thresh: open.Thresh,
		Sketch: open.Sketch, Default: open.Default})
}

// closeJournal flushes the session's trial lines and end marker.
func (s *Service) closeJournal(sess *session, rep *cluster.Report, reason string) {
	j := sess.journal
	if j == nil {
		return
	}
	for t := 0; t < rep.Trials; t++ {
		j.Write(struct {
			Kind    string `json:"kind"`
			Trial   int    `json:"trial"`
			Accept  bool   `json:"accept"`
			Rejects int    `json:"rejects"`
			Votes   int    `json:"votes"`
			Missing int    `json:"missing"`
		}{Kind: "cluster_trial", Trial: t, Accept: rep.Verdicts[t],
			Rejects: rep.Rejects[t], Votes: rep.Votes[t], Missing: rep.Missing[t]})
	}
	j.Write(struct {
		Kind    string `json:"kind"`
		Session uint32 `json:"session"`
		Reason  string `json:"reason"`
		Accepts int    `json:"accepts"`
		Missing int    `json:"missing_votes"`
	}{Kind: "session_end", Session: sess.id, Reason: reason,
		Accepts: rep.Accepts, Missing: rep.MissingVotes})
	j.Close()
}
