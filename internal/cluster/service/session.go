package service

import (
	"net"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/cluster"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/wire"
)

// session is one admitted testing session: an isolated referee plus the
// multiplexer state around it. Identity fields are immutable after
// admission; the frame queue is guarded by the scheduler mutex; finish
// is serialized by finishOnce.
type session struct {
	id        uint32 // service-assigned, nonzero, unique among open sessions
	slot      int    // metric-label slot in [0, MaxSessions)
	tenant    uint32
	cost      int  // k×trials charged against the tenant budget
	isDefault bool // serves legacy session-0 peers

	rf      *cluster.Referee
	ctrl    net.Conn // the opener's control connection; receives the SessionReport
	journal *obs.Journal
	expiry  time.Time // reaper eviction bound

	q sessQueue

	closeCh    chan struct{} // closed on explicit client close
	closeOnce  sync.Once
	finishOnce sync.Once
}

// wireID is the session ID node frames must carry. Legacy peers of a
// default session instead send session 0 and are routed here by the
// service, bypassing this check.
func (s *session) wireID() uint32 { return s.id }

// requestClose signals the explicit-close path (control connection gone
// before the session decided). Idempotent.
func (s *session) requestClose() {
	s.closeOnce.Do(func() { close(s.closeCh) })
}

// reportFrame converts a referee report into the wire SessionReport.
// Transport statistics are deliberately not carried: the wire report is
// the transport-independent outcome.
func reportFrame(id uint32, rep *cluster.Report) *wire.SessionReport {
	sr := &wire.SessionReport{
		Session:  id,
		K:        uint32(rep.K),
		Verdicts: rep.Verdicts,
		Rejects:  make([]uint32, rep.Trials),
		Votes:    make([]uint32, rep.Trials),
		Missing:  make([]uint32, rep.Trials),
	}
	for t := 0; t < rep.Trials; t++ {
		sr.Rejects[t] = uint32(rep.Rejects[t])
		sr.Votes[t] = uint32(rep.Votes[t])
		sr.Missing[t] = uint32(rep.Missing[t])
	}
	return sr
}

// reportFromWire reconstructs the client-side cluster.Report from a
// SessionReport: the per-trial columns verbatim, the aggregates recomputed
// from them. Stats stay zero — the wire report intentionally carries no
// transport accounting — and QuorumTrials is recovered as the trials with
// missing votes. EarlyTrials is not recoverable (an early-decided trial
// with all votes present is indistinguishable from a fully-voted one) and
// stays zero; byte-level comparisons against direct runs zero both sides.
func reportFromWire(sr *wire.SessionReport) *cluster.Report {
	trials := len(sr.Verdicts)
	rep := &cluster.Report{
		K:        int(sr.K),
		Trials:   trials,
		Verdicts: sr.Verdicts,
		Rejects:  make([]int, trials),
		Votes:    make([]int, trials),
		Missing:  make([]int, trials),
	}
	for t := 0; t < trials; t++ {
		rep.Rejects[t] = int(sr.Rejects[t])
		rep.Votes[t] = int(sr.Votes[t])
		rep.Missing[t] = int(sr.Missing[t])
		if rep.Verdicts[t] {
			rep.Accepts++
		}
		if rep.Missing[t] > 0 {
			rep.MissingVotes += rep.Missing[t]
			rep.QuorumTrials++
		}
	}
	return rep
}
