package service

import (
	"fmt"
	"net"
	"sync"

	"github.com/unifdist/unifdist/internal/cluster"
	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// RejectError is a typed admission denial from the service.
type RejectError struct {
	Tenant uint32
	Reason byte
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("service: session rejected for tenant %d: %s", e.Tenant, wire.RejectReasonName(e.Reason))
}

// Client is one opened session from the client side: it holds the
// control connection and the granted session ID that node clients must
// stamp on their frames.
type Client struct {
	session uint32
	tenant  uint32
	legacy  bool // default-mode session: peers send session 0
	ctrl    net.Conn
	r       *wire.Reader
}

// Open dials the service, requests a session, and completes admission.
// A denial surfaces as *RejectError; the connection is closed either
// way when Open fails.
func Open(dial func() (net.Conn, error), open *wire.SessionOpen) (*Client, error) {
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("service: dial: %w", err)
	}
	if err := wire.WriteFrame(conn, open); err != nil {
		conn.Close()
		return nil, err
	}
	r := wire.NewReader(conn)
	body, err := r.ReadBody()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("service: admission read: %w", err)
	}
	f, _, _, err := wire.DecodeBodySession(body, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("service: admission decode: %w", err)
	}
	switch m := f.(type) {
	case *wire.SessionAccept:
		return &Client{session: m.Session, tenant: m.Tenant, legacy: open.Default, ctrl: conn, r: r}, nil
	case *wire.SessionReject:
		conn.Close()
		return nil, &RejectError{Tenant: m.Tenant, Reason: m.Reason}
	default:
		conn.Close()
		return nil, fmt.Errorf("service: admission answered with frame type %d", f.Type())
	}
}

// Session returns the granted session ID.
func (c *Client) Session() uint32 { return c.session }

// WireSession returns the session ID node clients must put in
// Config.Session: the granted ID, or 0 for a default-mode session whose
// peers speak the legacy sessionless encoding.
func (c *Client) WireSession() uint32 {
	if c.legacy {
		return 0
	}
	return c.session
}

// Wait blocks until the service finishes the session and returns the
// reconstructed report. Transport statistics are zero by design; see
// reportFromWire.
func (c *Client) Wait() (*cluster.Report, error) {
	body, err := c.r.ReadBody()
	if err != nil {
		return nil, fmt.Errorf("service: report read: %w", err)
	}
	f, _, _, err := wire.DecodeBodySession(body, nil)
	if err != nil {
		return nil, fmt.Errorf("service: report decode: %w", err)
	}
	sr, ok := f.(*wire.SessionReport)
	if !ok {
		return nil, fmt.Errorf("service: report answered with frame type %d", f.Type())
	}
	if sr.Session != c.session {
		return nil, fmt.Errorf("service: report for session %d on session %d", sr.Session, c.session)
	}
	c.ctrl.Close()
	return reportFromWire(sr), nil
}

// Close hangs up the control connection before the session decided — the
// explicit-close signal; the service finalizes the session through the
// quorum fallback and reclaims its state.
func (c *Client) Close() error { return c.ctrl.Close() }

// OpenFrame builds the SessionOpen for running nw under cfg: the rule
// shape is recovered from the network's decision rule. It errors on rules
// the wire protocol cannot name.
func OpenFrame(cfg cluster.Config, nw *zeroround.Network, tenant uint32, isDefault bool) (*wire.SessionOpen, error) {
	open := &wire.SessionOpen{
		Tenant:     tenant,
		K:          uint32(nw.K()),
		Trials:     uint32(cfg.Trials),
		Seed:       cfg.BaseSeed,
		Sketch:     cfg.Sketch,
		Default:    isDefault,
		EarlyClose: cfg.EarlyClose,
	}
	switch r := nw.Rule().(type) {
	case zeroround.ANDRule:
		open.Rule = wire.RuleAND
	case zeroround.ThresholdRule:
		open.Rule = wire.RuleThreshold
		open.Thresh = uint32(r.T)
	default:
		return nil, fmt.Errorf("service: rule %q has no wire encoding", nw.Rule().Name())
	}
	return open, nil
}

// Submit is the full client side of one session: open it, run one node
// client per network node against the service (frames stamped with the
// granted session), and wait for the report. It is the service-transport
// analogue of cluster.RunPipe/RunTCP — same cfg, same network, same
// deterministic vote streams — which is what the differential tests
// compare against.
func Submit(dial func() (net.Conn, error), cfg cluster.Config, nw *zeroround.Network, d dist.Distribution, plan *cluster.FaultPlan, tenant uint32, isDefault bool) (*cluster.Report, error) {
	open, err := OpenFrame(cfg, nw, tenant, isDefault)
	if err != nil {
		return nil, err
	}
	c, err := Open(dial, open)
	if err != nil {
		return nil, err
	}
	k := nw.K()
	ncfg := cfg
	ncfg.Session = c.WireSession()

	errCh := make(chan error, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for i := 0; i < k; i++ {
		nc := &cluster.NodeClient{
			ID:     i,
			K:      k,
			Tester: nw.Node(i),
			Config: ncfg,
			Dial:   dial,
			Faults: plan,
		}
		go func(i int, nc *cluster.NodeClient) {
			defer wg.Done()
			if _, err := nc.Run(d); err != nil {
				errCh <- fmt.Errorf("node %d: %w", i, err)
			}
		}(i, nc)
	}
	rep, werr := c.Wait()
	wg.Wait()
	close(errCh)
	if werr != nil {
		return nil, werr
	}
	if cfg.EarlyClose {
		// Early close severs node connections whose verdicts were no longer
		// needed; their errors are expected, exactly as in runSession.
		return rep, nil
	}
	for err := range errCh {
		return rep, fmt.Errorf("service: %w", err)
	}
	return rep, nil
}
