package cluster

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/wire"
)

// Aggregator is one shard server of a hierarchical aggregation tree: it
// terminates the node clients (or child aggregators) of the window
// [Lo, Hi) exactly like a referee — same handshake, dedup bitsets,
// batching and send-queue machinery, all through the shared voteSink —
// folds their votes into per-trial partial sums, and forwards the sums
// upstream as wire.PartialVerdict frames. Both decision rules are
// commutative monoids over (votes, rejects), so the root referee merging
// the partials decides trial-for-trial exactly as the flat star would.
//
// Flushes happen on count/byte watermarks and at the session drain only
// — never on a wall-clock timer — so a tree run stays deterministic.
// Every flushed entry is also kept in a replay log: if the upstream link
// fails, the aggregator redials and replays the log; the parent's
// per-(trial, child) dedup makes the replay idempotent.
type Aggregator struct {
	// ID identifies this aggregator among its parent's children; it rides
	// the AggHello handshake and every PartialVerdict frame, keying the
	// parent's partial dedup.
	ID uint32
	// Lo, Hi bound the node-ID window [Lo, Hi) this aggregator terminates.
	Lo, Hi int
	// K is the global network size (validated against every Hello).
	K int
	// Tier is the aggregator's level in the tree, 1 = directly above the
	// leaves; it namespaces the upstream queue metrics (agg.tier<N>.*).
	Tier int
	// Dial opens the upstream connection (parent aggregator or root).
	Dial func() (net.Conn, error)
	// Config carries the session shape: the referee-relevant fields
	// (Trials, Sketch, Deadline, Obs, Trace) plus Retries/Backoff for the
	// upstream link and Batch/FlushBytes for the partial flush watermarks.
	Config Config

	voteSink

	// Fold state, guarded by the sink mutex. onTrial appends completed
	// trials to pending and signals cond; the fold goroutine snapshots
	// sums under the mutex and encodes/sends outside it.
	pending  []int
	emitted  []bool // trial already handed to the fold loop
	stopFold bool
	cond     *sync.Cond
	foldErr  error

	// Upstream link. The fold goroutine owns conn/q until it exits
	// (foldDone), then Serve's finalization takes over — a sequential
	// handoff, so no extra lock. upDone and the verdict fields are shared
	// with the reader goroutine and guarded by the sink mutex.
	conn        net.Conn
	q           *sendQueue
	flushed     []wire.PartialEntry // every entry flushed, for replay
	upDone      chan struct{}
	haveVerdict bool
	verdictMsg  wire.Verdict
}

// Serve runs one aggregation session on l: accept leaves, fold, forward
// partials, relay the final verdict back down. It always closes l. The
// returned error reports an upstream or strict-protocol failure; a
// session cut short by the root's early close is not an error when the
// verdict still arrived.
func (a *Aggregator) Serve(l net.Listener) error {
	if a.Config.Trials <= 0 {
		l.Close()
		return fmt.Errorf("cluster: aggregator %d: Trials must be > 0, got %d", a.ID, a.Config.Trials)
	}
	if a.Lo < 0 || a.Hi <= a.Lo || a.Hi > a.K {
		l.Close()
		return fmt.Errorf("cluster: aggregator %d: window [%d, %d) outside [0, %d)", a.ID, a.Lo, a.Hi, a.K)
	}
	a.voteSink.init(a.K, a.Lo, a.Hi, a.Config, "agg", "agg")
	a.onTrial = a.onComplete
	a.emitted = make([]bool, a.cfg.Trials)
	a.cond = sync.NewCond(&a.mu)

	deadline := a.cfg.deadline()
	timer := time.NewTimer(deadline)
	defer timer.Stop()

	sess := a.cfg.Trace.Start("agg.session", trace.Context{},
		trace.A("agg", int(a.ID)), trace.A("lo", a.Lo), trace.A("hi", a.Hi),
		trace.A("tier", a.Tier))
	a.reg.Gauge("agg.sessions_open").Add(1)
	defer a.reg.Gauge("agg.sessions_open").Add(-1)
	defer sess.End()

	if err := a.dialUpstream(sess.Context(), deadline); err != nil {
		l.Close()
		return fmt.Errorf("cluster: aggregator %d: upstream: %w", a.ID, err)
	}

	foldDone := make(chan struct{})
	go a.fold(sess.Context(), foldDone)

	var wg sync.WaitGroup
	go a.acceptLoop(l, deadline, &wg)

	// The session ends on the first of: every node in the window done, an
	// early verdict from upstream (root early close), an upstream failure,
	// or the safety-net deadline.
	select {
	case <-a.trigger:
	case <-timer.C:
		a.mu.Lock()
		a.stats.DeadlineExpired = true
		a.mu.Unlock()
	}
	l.Close()

	// Fresh upstream I/O budget for the drain-and-finish phase: on the
	// deadline path the session bound is already spent exactly when the
	// final flushes, Done and verdict wait still have to happen.
	a.mu.Lock()
	if a.conn != nil {
		a.conn.SetDeadline(time.Now().Add(deadline)) //unifvet:allow wallclock per-phase I/O safety bound; partial sums are folded state and unaffected
	}
	a.mu.Unlock()

	// Drain: hand every trial with folded votes — complete or not — to
	// the fold loop, then stop it. Incomplete sums let the root's quorum
	// fallback see exactly the votes that arrived.
	a.mu.Lock()
	a.closed = true
	for t := 0; t < a.cfg.Trials; t++ {
		if a.votes[t] > 0 && !a.emitted[t] {
			a.emitted[t] = true
			a.pending = append(a.pending, t)
		}
	}
	a.stopFold = true
	a.cond.Broadcast()
	a.mu.Unlock()
	<-foldDone

	verdict, err := a.finishUpstream()
	conns := a.closeSession()
	for _, c := range conns {
		if err == nil {
			// Bounded best-effort verdict relay, exactly like the referee's
			// broadcast: a node that already went away must not stall
			// shutdown.
			c.SetWriteDeadline(time.Now().Add(time.Second)) //unifvet:allow wallclock bounded best-effort verdict broadcast on shutdown
			_ = wire.WriteFrame(c, &verdict)
		}
		c.Close()
	}
	wg.Wait()
	a.q.Close()
	a.conn.Close()
	a.m.peersIdle.Set(0)
	if err != nil {
		return fmt.Errorf("cluster: aggregator %d: %w", a.ID, err)
	}
	return nil
}

// onComplete is the sink's onTrial hook: when the window's every node
// has voted on a trial, the trial's sums are final and the fold loop can
// flush them. Called under the sink mutex; cond.Signal never blocks, so
// no I/O happens under the lock.
func (a *Aggregator) onComplete(trial int) {
	if a.votes[trial] == a.span && !a.emitted[trial] {
		a.emitted[trial] = true
		a.pending = append(a.pending, trial)
		a.cond.Signal()
	}
}

// partialWatermark resolves the count watermark for partial flushes:
// Config.Batch when set, else 1 (flush every completed batch of trials
// the fold loop wakes to — the unbatched analog), capped by the wire
// frame limit.
func (a *Aggregator) partialWatermark() int {
	w := a.cfg.batchSize()
	if w <= 0 {
		w = 1
	}
	if w > wire.MaxPartialEntries {
		w = wire.MaxPartialEntries
	}
	return w
}

// fold is the flush goroutine: it waits for completed trials, snapshots
// their sums under the sink mutex, and encodes/sends PartialVerdict
// frames outside it on the count/byte watermarks. It exits when the
// session drain hands it the final trials (reachable return via
// stopFold) or on an unrecoverable upstream failure.
func (a *Aggregator) fold(sess trace.Context, done chan struct{}) {
	defer close(done)
	watermark := a.partialWatermark()
	maxBytes := a.cfg.flushBytes()
	// Conservative per-entry wire estimate for the byte watermark: three
	// (five in sketch mode) delta varints.
	perEntry := 15
	if a.cfg.Sketch {
		perEntry = 35
	}
	var batch []wire.PartialEntry
	for {
		a.mu.Lock()
		for len(a.pending) == 0 && !a.stopFold {
			a.cond.Wait()
		}
		stop := a.stopFold
		trials := a.pending
		a.pending = nil
		for _, t := range trials {
			e := wire.PartialEntry{Trial: uint32(t), Votes: uint32(a.votes[t]), Rejects: uint32(a.rejects[t])}
			if a.samples != nil {
				e.Samples = a.samples[t]
				e.Collisions = a.collides[t]
			}
			batch = append(batch, e)
		}
		a.mu.Unlock()
		for len(batch) >= watermark || len(batch)*perEntry >= maxBytes || (stop && len(batch) > 0) {
			n := len(batch)
			if n > wire.MaxPartialEntries {
				n = wire.MaxPartialEntries
			}
			if err := a.flushPartial(sess, batch[:n]); err != nil {
				a.failFold(err)
				return
			}
			batch = append(batch[:0], batch[n:]...)
			if len(batch) == 0 {
				break
			}
		}
		if stop {
			return
		}
	}
}

// flushPartial encodes one PartialVerdict frame under an agg.fold span —
// whose context rides the frame, parenting the parent sink's
// applypartial span across the connection — and enqueues it upstream,
// retrying with a full replay on a dead link.
func (a *Aggregator) flushPartial(sess trace.Context, entries []wire.PartialEntry) error {
	// Trial completion order depends on connection scheduling; sorting
	// keeps the frame content canonical for a given completion set.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Trial < entries[j].Trial })
	sp := a.cfg.Trace.Start("agg.fold", sess,
		trace.A("agg", int(a.ID)), trace.A("entries", len(entries)))
	ctx := sp.Context()
	pv := &wire.PartialVerdict{Agg: a.ID, Sketch: a.samples != nil, Entries: entries}
	buf, err := wire.AppendPartialSession(a.q.buffer(), pv, a.cfg.Session,
		wire.TraceContext{Trace: uint64(ctx.Trace), Span: uint64(ctx.Span)})
	if err == nil {
		err = a.q.send(buf)
	}
	sp.End()
	a.reg.Counter("cluster.partials_sent").Inc()
	a.flushed = append(a.flushed, entries...)
	if err != nil {
		return a.retryUpstream(sess)
	}
	return nil
}

// failFold records the fold's terminal error and fires the session
// trigger so Serve stops waiting on peers that can no longer matter.
func (a *Aggregator) failFold(err error) {
	a.mu.Lock()
	if a.foldErr == nil {
		a.foldErr = err
	}
	a.mu.Unlock()
	a.fire()
}

// dialUpstream opens (or reopens) the upstream link: connect, start the
// verdict reader, send AggHello through a fresh send queue. Partials
// must never be shed — a dropped frame loses whole trial windows — so
// the upstream queue always blocks.
func (a *Aggregator) dialUpstream(sess trace.Context, deadline time.Duration) error {
	conn, err := a.Dial()
	if err != nil {
		return err
	}
	// Twice the session bound: the upstream link must outlive the session
	// timer by a full budget, because the drain flushes, Done and the
	// verdict wait all happen after that timer may already have fired.
	conn.SetDeadline(time.Now().Add(2 * deadline)) //unifvet:allow wallclock per-attempt I/O safety bound; partial sums are folded state and unaffected
	q := newSendQueue(conn, a.cfg.queueDepth(), QueueBlock, a.reg,
		fmt.Sprintf("agg.tier%d", a.Tier))
	hello := &wire.AggHello{Agg: a.ID, K: uint32(a.K), Trials: uint32(a.cfg.Trials),
		Lo: uint32(a.Lo), Hi: uint32(a.Hi)}
	buf := wire.AppendSession(q.buffer(), hello, a.cfg.Session,
		wire.TraceContext{Trace: uint64(sess.Trace), Span: uint64(sess.Span)})
	if err := q.send(buf); err != nil {
		q.Close()
		conn.Close()
		return err
	}
	upDone := make(chan struct{})
	go a.readUpstream(conn, upDone)
	a.mu.Lock()
	a.conn, a.q, a.upDone = conn, q, upDone
	a.mu.Unlock()
	return nil
}

// readUpstream watches the upstream connection for the session verdict.
// The root broadcasts it to every connected peer — child aggregators
// included — either at the normal session end or on early close, so the
// reader both completes the normal handshake and cuts the session short
// when the root already decided everything.
func (a *Aggregator) readUpstream(conn net.Conn, done chan struct{}) {
	defer close(done)
	r := wire.NewReader(conn)
	for {
		f, err := r.ReadFrame()
		if err != nil {
			return
		}
		if v, ok := f.(*wire.Verdict); ok {
			a.mu.Lock()
			if !a.haveVerdict {
				a.haveVerdict = true
				a.verdictMsg = *v
			}
			a.mu.Unlock()
			a.fire()
			return
		}
	}
}

// retryUpstream redials the upstream link and replays the full flushed
// log in frame-sized chunks. The parent's per-(trial, child) dedup makes
// the replay idempotent: entries that made it through before the failure
// fold exactly once.
func (a *Aggregator) retryUpstream(sess trace.Context) error {
	backoff := a.cfg.Backoff
	var lastErr error = a.q.Err()
	if lastErr == nil {
		lastErr = fmt.Errorf("upstream send failed")
	}
	for attempt := 0; attempt < a.cfg.Retries; attempt++ {
		a.reg.Counter("agg.upstream_retries").Inc()
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		a.q.Close()
		a.conn.Close()
		if err := a.dialUpstream(sess, a.cfg.deadline()); err != nil {
			lastErr = err
			continue
		}
		if err := a.replay(sess); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("upstream after %d retries: %w", a.cfg.Retries, lastErr)
}

// replay resends every flushed entry through the (fresh) upstream queue.
func (a *Aggregator) replay(sess trace.Context) error {
	log := a.flushed
	for len(log) > 0 {
		n := len(log)
		if n > wire.MaxPartialEntries {
			n = wire.MaxPartialEntries
		}
		sp := a.cfg.Trace.Start("agg.fold", sess,
			trace.A("agg", int(a.ID)), trace.A("entries", n), trace.A("replay", true))
		ctx := sp.Context()
		pv := &wire.PartialVerdict{Agg: a.ID, Sketch: a.samples != nil, Entries: log[:n]}
		buf, err := wire.AppendPartialSession(a.q.buffer(), pv, a.cfg.Session,
			wire.TraceContext{Trace: uint64(ctx.Trace), Span: uint64(ctx.Span)})
		if err == nil {
			err = a.q.send(buf)
		}
		sp.End()
		a.reg.Counter("cluster.partials_sent").Inc()
		if err != nil {
			return err
		}
		log = log[n:]
	}
	return a.q.Flush()
}

// finishUpstream completes the upstream protocol after the fold loop
// exited: send Done, flush the queue, and wait for the verdict the
// reader goroutine collects. A session whose verdict already arrived
// (early close) succeeds regardless of trailing fold errors — the
// decision is fixed, trailing partials are moot.
func (a *Aggregator) finishUpstream() (wire.Verdict, error) {
	a.mu.Lock()
	ferr := a.foldErr
	have, v, upDone := a.haveVerdict, a.verdictMsg, a.upDone
	a.mu.Unlock()
	if have {
		return v, nil
	}
	if ferr != nil {
		return wire.Verdict{}, ferr
	}
	buf := wire.AppendSession(a.q.buffer(), &wire.Done{Node: a.ID}, a.cfg.Session, wire.TraceContext{})
	err := a.q.send(buf)
	if err == nil {
		err = a.q.Flush()
	}
	if err != nil {
		return wire.Verdict{}, fmt.Errorf("upstream done: %w", err)
	}
	// The reader exits on verdict, upstream close, or the connection
	// deadline — all bounded.
	<-upDone
	a.mu.Lock()
	have, v = a.haveVerdict, a.verdictMsg
	a.mu.Unlock()
	if !have {
		return wire.Verdict{}, fmt.Errorf("upstream closed without a verdict")
	}
	return v, nil
}

// closeSession marks the sink closed and detaches its connections for
// the verdict relay.
func (a *Aggregator) closeSession() []net.Conn {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	conns := a.conns
	a.conns = nil
	return conns
}
