package cluster

import (
	"strings"
	"testing"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/zeroround"
)

func andNetwork(t *testing.T, n, k int) *zeroround.Network {
	t.Helper()
	cfg, err := zeroround.SolveAND(n, k, 1.0, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := zeroround.BuildAND(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func thresholdNetwork(t *testing.T, n, k int) *zeroround.Network {
	t.Helper()
	cfg, err := zeroround.SolveThreshold(n, k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := zeroround.BuildThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// checkDifferential runs a fault-free cluster session and demands
// trial-for-trial agreement — verdicts, reject counts, vote counts — with
// the in-process indexed reference execution RunAt at the same base seed.
func checkDifferential(t *testing.T, nw *zeroround.Network, d dist.Distribution, cfg Config, run func(Config, *zeroround.Network, dist.Distribution, *FaultPlan) (*Report, error)) {
	t.Helper()
	rep, err := run(cfg, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != nw.K() || rep.Trials != cfg.Trials {
		t.Fatalf("report shape (k=%d, trials=%d), want (%d, %d)", rep.K, rep.Trials, nw.K(), cfg.Trials)
	}
	if rep.MissingVotes != 0 || rep.QuorumTrials != 0 {
		t.Fatalf("fault-free run reported %d missing votes over %d quorum trials", rep.MissingVotes, rep.QuorumTrials)
	}
	for tr := 0; tr < cfg.Trials; tr++ {
		wantAccept, wantRejects := nw.RunAt(d, cfg.BaseSeed, uint64(tr), nil, nil)
		if rep.Verdicts[tr] != wantAccept {
			t.Errorf("trial %d: cluster verdict %v, reference %v", tr, rep.Verdicts[tr], wantAccept)
		}
		if rep.Rejects[tr] != wantRejects {
			t.Errorf("trial %d: cluster saw %d rejects, reference %d", tr, rep.Rejects[tr], wantRejects)
		}
		if rep.Votes[tr] != nw.K() {
			t.Errorf("trial %d: %d votes arrived, want %d", tr, rep.Votes[tr], nw.K())
		}
	}
}

func TestPipeClusterMatchesReferenceThreshold(t *testing.T) {
	// E3 shape (Theorem 1.2): single-collision nodes under the threshold
	// rule. The tiny domain makes collisions — and thus rejecting votes —
	// frequent, so the trial-for-trial comparison exercises mixed verdicts.
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 9)
	for _, seed := range []uint64{1, 77} {
		checkDifferential(t, nw, d, Config{Trials: 12, BaseSeed: seed}, RunPipe)
	}
}

func TestPipeClusterMatchesReferenceAND(t *testing.T) {
	// E2 shape (Theorem 1.1): amplified nodes under the AND rule.
	nw := andNetwork(t, 1<<10, 16)
	d := dist.NewUniform(1 << 10)
	for _, seed := range []uint64{3, 41} {
		checkDifferential(t, nw, d, Config{Trials: 8, BaseSeed: seed}, RunPipe)
	}
}

func TestTCPClusterMatchesReference(t *testing.T) {
	nw := thresholdNetwork(t, 64, 40)
	d := dist.NewTwoBump(64, 1.0, 5)
	checkDifferential(t, nw, d, Config{Trials: 8, BaseSeed: 5}, RunTCP)
}

func TestSketchModeMatchesReference(t *testing.T) {
	// Sketch submissions carry raw collision counts; the referee's derived
	// vote must land on the identical verdicts.
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 2)
	checkDifferential(t, nw, d, Config{Trials: 10, BaseSeed: 9, Sketch: true, DomainN: 64}, RunPipe)
}

func TestPipeClusterDeterministicAcrossRuns(t *testing.T) {
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 4)
	cfg := Config{Trials: 10, BaseSeed: 1234}
	first, err := RunPipe(cfg, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		got, err := RunPipe(cfg, nw, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		for tr := range got.Verdicts {
			if got.Verdicts[tr] != first.Verdicts[tr] || got.Rejects[tr] != first.Rejects[tr] {
				t.Fatalf("repeat %d trial %d: (%v, %d) vs first (%v, %d)", rep, tr,
					got.Verdicts[tr], got.Rejects[tr], first.Verdicts[tr], first.Rejects[tr])
			}
		}
	}
}

func TestEarlyCloseKeepsVerdicts(t *testing.T) {
	// Far-from-uniform input under the AND rule: one rejecting vote decides
	// a trial, so early close fires constantly. Verdicts must not change.
	nw := andNetwork(t, 1<<10, 16)
	d := dist.NewTwoBump(1<<10, 1.0, 8)
	cfg := Config{Trials: 10, BaseSeed: 21}
	rep, err := RunPipe(cfg, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	early, err := RunPipe(Config{Trials: 10, BaseSeed: 21, EarlyClose: true}, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tr := range rep.Verdicts {
		if rep.Verdicts[tr] != early.Verdicts[tr] {
			t.Fatalf("trial %d: early-close verdict %v, full run %v", tr, early.Verdicts[tr], rep.Verdicts[tr])
		}
	}
}

func TestFaultInjectionDropWithinErrorBound(t *testing.T) {
	// Theorem 1.2 shape with 10% of votes dropped: the quorum fallback
	// (missing vote = accept) must keep both error sides within the paper's
	// 1/3, and the run must account for every lost vote.
	if testing.Short() {
		t.Skip("fault-injection bound test skipped in -short mode")
	}
	const n, k, trials = 1 << 10, 2000, 30
	cfgT, err := zeroround.SolveThreshold(n, k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !cfgT.Feasible {
		t.Fatalf("threshold config infeasible at n=%d k=%d; pick parameters inside Theorem 1.2's regime", n, k)
	}
	nw, err := zeroround.BuildThreshold(cfgT)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Seed: 99, Drop: 0.10}
	reg := obs.NewRegistry()
	cfg := Config{Trials: trials, BaseSeed: 17, Obs: reg}

	repU, err := RunPipe(cfg, nw, dist.NewUniform(n), plan)
	if err != nil {
		t.Fatal(err)
	}
	if repU.Stats.DeadlineExpired {
		t.Fatal("fault-free-transport session hit the safety-net deadline")
	}
	if repU.MissingVotes == 0 {
		t.Fatal("drop plan lost no votes; fault injection inert")
	}
	if got := reg.Counter("cluster.votes_missing").Value(); got < int64(repU.MissingVotes) {
		t.Errorf("votes_missing counter %d < report's %d", got, repU.MissingVotes)
	}
	if got := reg.Counter("cluster.faults_dropped").Value(); got < int64(repU.MissingVotes) {
		t.Errorf("faults_dropped counter %d < missing votes %d", got, repU.MissingVotes)
	}
	sum := 0
	for tr := 0; tr < trials; tr++ {
		if repU.Votes[tr]+repU.Missing[tr] != k {
			t.Errorf("trial %d: %d votes + %d missing != k=%d", tr, repU.Votes[tr], repU.Missing[tr], k)
		}
		sum += repU.Missing[tr]
	}
	if sum != repU.MissingVotes {
		t.Errorf("per-trial missing sums to %d, MissingVotes=%d", sum, repU.MissingVotes)
	}
	if errU := repU.ErrorRate(true); errU > 1.0/3 {
		t.Errorf("err|U = %v > 1/3 under 10%% vote drop", errU)
	}

	cfg.BaseSeed = 18
	plan = &FaultPlan{Seed: 100, Drop: 0.10}
	repFar, err := RunPipe(cfg, nw, dist.NewTwoBump(n, 1.0, 2), plan)
	if err != nil {
		t.Fatal(err)
	}
	if errFar := repFar.ErrorRate(false); errFar > 1.0/3 {
		t.Errorf("err|far = %v > 1/3 under 10%% vote drop", errFar)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	// A drop/dup plan with no delay realizes the identical report on every
	// run: which votes are lost is a pure function of (Seed, rates).
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 4)
	cfg := Config{Trials: 8, BaseSeed: 2}
	plan := &FaultPlan{Seed: 7, Drop: 0.15, Dup: 0.10}
	first, err := RunPipe(cfg, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}
	if first.MissingVotes == 0 {
		t.Fatal("plan dropped nothing")
	}
	if first.Stats.DuplicateVotes == 0 {
		t.Fatal("plan duplicated nothing")
	}
	for rep := 0; rep < 2; rep++ {
		got, err := RunPipe(cfg, nw, d, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got.MissingVotes != first.MissingVotes || got.Stats.DuplicateVotes != first.Stats.DuplicateVotes {
			t.Fatalf("repeat %d: missing=%d dup=%d, first missing=%d dup=%d", rep,
				got.MissingVotes, got.Stats.DuplicateVotes, first.MissingVotes, first.Stats.DuplicateVotes)
		}
		for tr := range got.Verdicts {
			if got.Verdicts[tr] != first.Verdicts[tr] || got.Missing[tr] != first.Missing[tr] {
				t.Fatalf("repeat %d trial %d differs", rep, tr)
			}
		}
	}
}

func TestDisconnectRecoversViaRetry(t *testing.T) {
	nw := thresholdNetwork(t, 64, 30)
	d := dist.NewTwoBump(64, 1.0, 8)
	cfg := Config{Trials: 6, BaseSeed: 4, Retries: 8, Backoff: time.Millisecond}
	plan := &FaultPlan{Seed: 3, Disconnect: 0.02}
	rep, err := RunPipe(cfg, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Connections <= nw.K() {
		t.Fatalf("%d connections for k=%d: no disconnect was injected", rep.Stats.Connections, nw.K())
	}
	// Retries resubmit everything, so every vote eventually lands.
	if rep.MissingVotes != 0 {
		t.Fatalf("%d votes missing despite retries", rep.MissingVotes)
	}
	for tr := 0; tr < cfg.Trials; tr++ {
		wantAccept, wantRejects := nw.RunAt(d, cfg.BaseSeed, uint64(tr), nil, nil)
		if rep.Verdicts[tr] != wantAccept || rep.Rejects[tr] != wantRejects {
			t.Fatalf("trial %d: (%v, %d), reference (%v, %d)", tr,
				rep.Verdicts[tr], rep.Rejects[tr], wantAccept, wantRejects)
		}
	}
}

func TestQuorumStrictFailsOnMissingVotes(t *testing.T) {
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewUniform(64)
	cfg := Config{Trials: 6, BaseSeed: 2, Policy: QuorumStrict}
	plan := &FaultPlan{Seed: 7, Drop: 0.15}
	rep, err := RunPipe(cfg, nw, d, plan)
	if err == nil {
		t.Fatal("strict quorum accepted a lossy run")
	}
	if !strings.Contains(err.Error(), "strict quorum") {
		t.Fatalf("unexpected error: %v", err)
	}
	if rep == nil || rep.MissingVotes == 0 {
		t.Fatal("strict failure did not report the missing votes")
	}
}

func TestRefereeRejectsMismatchedHello(t *testing.T) {
	nw := thresholdNetwork(t, 64, 10)
	d := dist.NewUniform(64)
	// A node configured for the wrong network size must be turned away and
	// its votes never counted.
	l := NewPipeListener()
	cfg := Config{Trials: 4, BaseSeed: 6, Deadline: 2 * time.Second}
	rf := NewReferee(nw.K(), nw.Rule(), cfg)
	done := make(chan struct{})
	var rep *Report
	go func() {
		defer close(done)
		rep, _ = rf.Serve(l)
	}()
	bad := &NodeClient{ID: 0, K: nw.K() + 1, Tester: nw.Node(0), Config: cfg, Dial: l.Dial}
	if _, err := bad.Run(d); err == nil {
		t.Error("mismatched Hello was accepted")
	}
	<-done
	if rep.Stats.Votes != 0 {
		t.Errorf("%d votes recorded from a rejected node", rep.Stats.Votes)
	}
	if rep.Stats.BadFrames == 0 {
		t.Error("rejected Hello not counted as a bad frame")
	}
	if !rep.Stats.DeadlineExpired {
		t.Error("session with no valid nodes should end on the deadline")
	}
}

func TestReportErrorRate(t *testing.T) {
	r := &Report{Trials: 4, Verdicts: []bool{true, true, false, true}}
	if got := r.ErrorRate(true); got != 0.25 {
		t.Fatalf("ErrorRate(true) = %v, want 0.25", got)
	}
	if got := r.ErrorRate(false); got != 0.75 {
		t.Fatalf("ErrorRate(false) = %v, want 0.75", got)
	}
	if got := (&Report{}).ErrorRate(true); got != 0 {
		t.Fatalf("empty report ErrorRate = %v", got)
	}
}

func TestQuorumPolicyString(t *testing.T) {
	if QuorumObserved.String() != "observed" || QuorumStrict.String() != "strict" {
		t.Fatal("policy names drifted")
	}
	if s := QuorumPolicy(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("unknown policy string %q", s)
	}
}
