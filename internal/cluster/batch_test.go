package cluster

import (
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/wire"
)

// sansStats strips the transport accounting, which legitimately differs
// between batched and unbatched executions (frame counts, bytes, batch
// tallies), and EarlyTrials, which records at which arriving vote a trial
// was fixed — pure scheduling bookkeeping that varies even between two
// unbatched runs. Everything else — verdicts, rejects, votes, missing,
// quorum accounting — must be identical.
func sansStats(r *Report) Report {
	c := *r
	c.Stats = RefereeStats{}
	c.EarlyTrials = 0
	return c
}

// TestBatchedMatchesReference pins the batched path to the in-process
// indexed reference (RunAt), trial for trial, across batch sizes that
// exercise single-flush, multi-flush and watermark-remainder shapes.
func TestBatchedMatchesReference(t *testing.T) {
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 9)
	for _, batch := range []int{2, 7, 64, 4096} {
		checkDifferential(t, nw, d, Config{Trials: 12, BaseSeed: 77, Batch: batch}, RunPipe)
	}
	// Compression on top must not change a single verdict.
	checkDifferential(t, nw, d, Config{Trials: 12, BaseSeed: 77, Batch: 64, Compress: true}, RunPipe)
}

func TestBatchedMatchesUnbatchedExactly(t *testing.T) {
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 4)
	// Enough trials that each node's batch payload crosses the
	// MinCompressibleSize threshold, so the Compress cases actually emit
	// VoteBatchZ frames.
	base := Config{Trials: 40, BaseSeed: 31}
	want, err := RunPipe(base, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Trials: 40, BaseSeed: 31, Batch: 16},
		{Trials: 40, BaseSeed: 31, Batch: 256, Compress: true},
		{Trials: 40, BaseSeed: 31, Batch: 256, Compress: true, FlushBytes: 128},
	} {
		got, err := RunPipe(cfg, nw, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sansStats(got), sansStats(want)) {
			t.Fatalf("batch=%d compress=%v: report diverged from unbatched:\n got %+v\nwant %+v",
				cfg.Batch, cfg.Compress, sansStats(got), sansStats(want))
		}
		if got.Stats.BatchFrames == 0 || got.Stats.BatchedVotes != nw.K()*cfg.Trials {
			t.Fatalf("batch=%d: stats claim %d batch frames / %d batched votes",
				cfg.Batch, got.Stats.BatchFrames, got.Stats.BatchedVotes)
		}
		if cfg.Compress && got.Stats.BytesSaved <= 0 {
			t.Fatalf("compressed run saved %d bytes", got.Stats.BytesSaved)
		}
		if got.Stats.Bytes >= want.Stats.Bytes {
			t.Fatalf("batch=%d: batched run used %d wire bytes, unbatched %d",
				cfg.Batch, got.Stats.Bytes, want.Stats.Bytes)
		}
	}
}

func TestBatchedTCPMatchesReference(t *testing.T) {
	nw := thresholdNetwork(t, 64, 40)
	d := dist.NewTwoBump(64, 1.0, 5)
	checkDifferential(t, nw, d, Config{Trials: 8, BaseSeed: 5, Batch: 128, Compress: true}, RunTCP)
}

func TestBatchedSketchMatchesReference(t *testing.T) {
	// Sketch batches carry (samples, collisions) columns; the referee's
	// derived vote must land on identical verdicts.
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 2)
	checkDifferential(t, nw, d,
		Config{Trials: 10, BaseSeed: 9, Sketch: true, DomainN: 64, Batch: 32, Compress: true}, RunPipe)
}

// TestBatchedFaultPlanMatchesUnbatched is the determinism keystone: a
// seeded drop/dup plan must realize the identical delivered-vote multiset
// whether votes travel one frame each or packed in batches, because both
// paths draw the same per-vote fault stream.
func TestBatchedFaultPlanMatchesUnbatched(t *testing.T) {
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 4)
	plan := &FaultPlan{Seed: 7, Drop: 0.10, Dup: 0.10}
	want, err := RunPipe(Config{Trials: 8, BaseSeed: 2}, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}
	if want.MissingVotes == 0 || want.Stats.DuplicateVotes == 0 {
		t.Fatal("plan injected nothing; test is inert")
	}
	got, err := RunPipe(Config{Trials: 8, BaseSeed: 2, Batch: 32, Compress: true}, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sansStats(got), sansStats(want)) {
		t.Fatalf("batched faulty report diverged:\n got %+v\nwant %+v", sansStats(got), sansStats(want))
	}
	if got.Stats.DuplicateVotes != want.Stats.DuplicateVotes {
		t.Fatalf("batched run deduplicated %d votes, unbatched %d",
			got.Stats.DuplicateVotes, want.Stats.DuplicateVotes)
	}
}

// TestBatchedDisconnectDrainsPendingVotes checks the graceful-drain
// contract: when the fault plan kills a batched link, votes batched
// before the disconnect still reach the referee — matching the per-frame
// path, where they were already on the wire — so retries converge on the
// reference verdicts.
func TestBatchedDisconnectDrainsPendingVotes(t *testing.T) {
	nw := thresholdNetwork(t, 64, 30)
	d := dist.NewTwoBump(64, 1.0, 8)
	plan := &FaultPlan{Seed: 3, Disconnect: 0.02}
	cfg := Config{Trials: 6, BaseSeed: 4, Retries: 8, Backoff: time.Millisecond, Batch: 64}
	rep, err := RunPipe(cfg, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Connections <= nw.K() {
		t.Fatalf("%d connections for k=%d: no disconnect was injected", rep.Stats.Connections, nw.K())
	}
	if rep.MissingVotes != 0 {
		t.Fatalf("%d votes missing despite retries", rep.MissingVotes)
	}
	for tr := 0; tr < cfg.Trials; tr++ {
		wantAccept, wantRejects := nw.RunAt(d, cfg.BaseSeed, uint64(tr), nil, nil)
		if rep.Verdicts[tr] != wantAccept || rep.Rejects[tr] != wantRejects {
			t.Fatalf("trial %d: (%v, %d), reference (%v, %d)", tr,
				rep.Verdicts[tr], rep.Rejects[tr], wantAccept, wantRejects)
		}
	}
}

// TestMixedVersionInterop runs one referee session where half the nodes
// speak the batched v3 protocol and half the per-frame v1/v2 protocol:
// the referee must serve both and land on the reference verdicts.
func TestMixedVersionInterop(t *testing.T) {
	nw := thresholdNetwork(t, 64, 60)
	d := dist.NewTwoBump(64, 1.0, 9)
	k := nw.K()
	cfg := Config{Trials: 8, BaseSeed: 13}
	batched := cfg
	batched.Batch = 32
	batched.Compress = true

	l := NewPipeListener()
	rf := NewReferee(k, nw.Rule(), cfg)
	done := make(chan struct{})
	var rep *Report
	var serveErr error
	go func() {
		defer close(done)
		rep, serveErr = rf.Serve(l)
	}()
	errCh := make(chan error, k)
	for i := 0; i < k; i++ {
		nodeCfg := cfg
		if i%2 == 0 {
			nodeCfg = batched
		}
		nc := &NodeClient{ID: i, K: k, Tester: nw.Node(i), Config: nodeCfg, Dial: l.Dial}
		go func() {
			_, err := nc.Run(d)
			errCh <- err
		}()
	}
	for i := 0; i < k; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	if rep.Stats.BatchFrames == 0 || rep.Stats.BatchedVotes != (k+1)/2*cfg.Trials {
		t.Fatalf("mixed session recorded %d batch frames / %d batched votes",
			rep.Stats.BatchFrames, rep.Stats.BatchedVotes)
	}
	if rep.Stats.Votes != k*cfg.Trials {
		t.Fatalf("mixed session recorded %d votes, want %d", rep.Stats.Votes, k*cfg.Trials)
	}
	for tr := 0; tr < cfg.Trials; tr++ {
		wantAccept, wantRejects := nw.RunAt(d, cfg.BaseSeed, uint64(tr), nil, nil)
		if rep.Verdicts[tr] != wantAccept || rep.Rejects[tr] != wantRejects {
			t.Fatalf("trial %d: (%v, %d), reference (%v, %d)", tr,
				rep.Verdicts[tr], rep.Rejects[tr], wantAccept, wantRejects)
		}
	}
}

// blockingWriter blocks every write until released, simulating a peer
// that stopped reading.
type blockingWriter struct{ release chan struct{} }

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestSendQueueDropPolicyShedsLoad(t *testing.T) {
	reg := obs.NewRegistry()
	w := &blockingWriter{release: make(chan struct{})}
	q := newSendQueue(w, 2, QueueDrop, reg, "cluster")
	// The writer is stalled: the first frame is in the writer's hands, the
	// next two fill the queue, everything after is shed.
	for i := 0; i < 10; i++ {
		if err := q.send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("cluster.queue_dropped").Value(); got == 0 {
		t.Fatal("drop policy shed nothing with a stalled writer")
	}
	close(w.release)
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	q.Close()
}

func TestSendQueueStickyError(t *testing.T) {
	// A writer that fails permanently: the queue must surface the error to
	// senders and Flush, and must never deadlock.
	r, wend := net.Pipe()
	r.Close() // every write now fails
	q := newSendQueue(wend, 2, QueueBlock, nil, "cluster")
	defer q.Close()
	var sawErr bool
	for i := 0; i < 20; i++ {
		if err := q.send([]byte{1, 2, 3}); err != nil {
			sawErr = true
			break
		}
	}
	if err := q.Flush(); err == nil && !sawErr {
		t.Fatal("dead connection surfaced no error")
	}
	if err := q.Flush(); err == nil {
		t.Fatal("sticky error cleared itself")
	}
}

func TestSendQueueFlushIsBarrier(t *testing.T) {
	var got []byte
	pr, pw := io.Pipe()
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		buf := make([]byte, 64)
		for {
			n, err := pr.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	q := newSendQueue(pw, 4, QueueBlock, nil, "cluster")
	for i := 0; i < 9; i++ {
		if err := q.send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	pw.Close()
	<-readDone
	want := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("writer delivered %v, want %v (in order, none lost)", got, want)
	}
}

// TestBatcherRespectsFrameCaps drives the batcher with adversarially wide
// votes and checks no emitted frame ever exceeds the wire caps.
func TestBatcherRespectsFrameCaps(t *testing.T) {
	var frames [][]byte
	pr, pw := io.Pipe()
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for {
			buf := make([]byte, 1<<18)
			n, err := pr.Read(buf)
			if n > 0 {
				frames = append(frames, buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	q := newSendQueue(pw, 4, QueueBlock, nil, "cluster")
	cfg := Config{Trials: 1, Batch: 4096, FlushBytes: 4096, Sketch: true, DomainN: 1}
	bt := newBatcher(q, cfg, trace.Context{}, nil)
	// Wide deltas defeat the delta encoding: every column entry costs ~5
	// bytes, so the byte watermark must flush long before MaxBatchVotes.
	for i := 0; i < 20000; i++ {
		v := wire.BatchVote{
			Trial: uint32(i * 2654435761), Node: uint32(i % 64),
			Samples: uint32(i * 40503), Collisions: uint32(i),
		}
		if err := bt.add(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.flush(); err != nil {
		t.Fatal(err)
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	pw.Close()
	<-readDone
	if len(frames) < 2 {
		t.Fatalf("watermark never flushed: %d writes", len(frames))
	}
}
