package cluster

import (
	"fmt"
	"net"
	"time"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// NodeClient is one network node speaking the cluster protocol: it draws
// its sample block for every trial from the indexed randomness contract
// (zeroround.VoteStream), runs its local tester, and submits the resulting
// votes — or raw collision sketches in Config.Sketch mode — to the
// referee, retrying on a fresh connection after transport errors.
type NodeClient struct {
	// ID is this node's index in [0, K); K the network size. Both are
	// echoed in the Hello handshake and validated by the referee.
	ID int
	K  int
	// Tester is the node's local tester (zeroround.(*Network).Node(ID)).
	Tester tester.Tester
	// Config carries the session parameters; it must match the referee's.
	Config Config
	// Dial opens a fresh connection to the referee.
	Dial func() (net.Conn, error)
	// Faults, when non-nil and active, injects transport faults into this
	// node's vote frames; see FaultPlan.
	Faults *FaultPlan
}

// Run computes the node's votes for every trial and submits them,
// returning the referee's verdict broadcast. Votes are computed once, up
// front — retries resubmit identical frames, so transport faults can
// lose or duplicate votes but never change them. A session the referee
// closed before sending a verdict returns an error; callers running
// under Config.EarlyClose treat that as expected.
func (nc *NodeClient) Run(d dist.Distribution) (wire.Verdict, error) {
	cfg := nc.Config
	if cfg.Trials <= 0 {
		return wire.Verdict{}, fmt.Errorf("cluster: node %d: Trials must be > 0, got %d", nc.ID, cfg.Trials)
	}
	if cfg.Sketch && cfg.DomainN <= 0 {
		return wire.Verdict{}, fmt.Errorf("cluster: node %d: Sketch mode needs DomainN > 0", nc.ID)
	}

	sess := cfg.Trace.Start("node.session", trace.Context{}, trace.A("node", nc.ID))
	defer sess.End()

	frames, err := nc.computeFrames(d, sess.Context())
	if err != nil {
		return wire.Verdict{}, err
	}

	backoff := cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			nc.Config.Obs.Counter("cluster.node_retries").Inc()
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
			}
		}
		var v wire.Verdict
		if cfg.batchSize() > 0 {
			v, err = nc.submitBatched(frames, attempt)
		} else {
			v, err = nc.submit(frames, attempt)
		}
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	return wire.Verdict{}, fmt.Errorf("cluster: node %d: %w", nc.ID, lastErr)
}

// outFrame is one precomputed submission frame plus the trace position of
// the sample computation that produced it (zero when tracing is off).
type outFrame struct {
	frame  wire.Frame
	parent trace.Context
}

// computeFrames runs the node's tester for every trial and encodes the
// submission as ready-to-send frames. The sample stream of trial t is
// fixed by (BaseSeed, t, ID) alone, so the frames are a pure function of
// the configuration — independent of scheduling, attempts, or the other
// nodes.
func (nc *NodeClient) computeFrames(d dist.Distribution, sess trace.Context) ([]outFrame, error) {
	g := rng.New(0)
	s := nc.Tester.SampleSize()
	block := make([]int, s)
	var col dist.CollisionScratch
	st, _ := nc.Tester.(tester.ScratchTester)
	tr := nc.Config.Trace

	frames := make([]outFrame, 0, nc.Config.Trials)
	for t := 0; t < nc.Config.Trials; t++ {
		// The sample span's ID is derived from (trace, trial, node), so a
		// rerun of the same configuration yields the same span graph.
		sp := tr.StartID("node.sample",
			trace.Derive("node.sample", uint64(tr.Trace()), uint64(t), uint64(nc.ID)),
			sess, trace.A("trial", t))
		zeroround.VoteStream(g, nc.Config.BaseSeed, uint64(t), nc.ID, nc.K)
		dist.SampleInto(d, block, g)
		var f wire.Frame
		if nc.Config.Sketch {
			// Raw sketch: the referee derives the single-collision vote as
			// Collisions > 0, so this mode is only valid for testers where
			// that derivation IS the test.
			c := col.CountCollisions(nc.Config.DomainN, block)
			f = &wire.Sketch{
				Trial: uint32(t), Node: uint32(nc.ID),
				Samples: uint32(s), Collisions: uint32(c),
			}
		} else {
			var accept bool
			if st != nil {
				accept = st.TestScratch(block, &col)
			} else {
				accept = nc.Tester.Test(block)
			}
			f = &wire.Vote{Trial: uint32(t), Node: uint32(nc.ID), Reject: !accept}
		}
		sp.End()
		frames = append(frames, outFrame{frame: f, parent: sp.Context()})
	}
	return frames, nil
}

// submit performs one connection attempt: handshake, vote stream, Done,
// then blocks for the referee's verdict.
func (nc *NodeClient) submit(frames []outFrame, attempt int) (wire.Verdict, error) {
	conn, err := nc.Dial()
	if err != nil {
		return wire.Verdict{}, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	// Per-attempt I/O bound: if the referee stalls or the link injects a
	// disconnect mid-stream, the attempt fails here and the retry path
	// takes over rather than hanging the node forever.
	conn.SetDeadline(time.Now().Add(nc.Config.deadline())) //unifvet:allow wallclock per-attempt I/O safety bound; votes are precomputed and unaffected

	tr := nc.Config.Trace
	lk := newLink(conn, nc.Faults, nc.ID, attempt, nc.Config.Obs, nc.Config.Session)
	hello := &wire.Hello{Node: uint32(nc.ID), K: uint32(nc.K), Trials: uint32(nc.Config.Trials)}
	if err := lk.sendControl(hello); err != nil {
		return wire.Verdict{}, fmt.Errorf("hello: %w", err)
	}
	for _, of := range frames {
		// The send span's ID rides the frame as its wire trace context, so
		// the referee's apply span can parent on it across the connection.
		sp := tr.Start("node.send", of.parent, trace.A("attempt", attempt))
		ctx := sp.Context()
		err := lk.sendVote(of.frame, wire.TraceContext{Trace: uint64(ctx.Trace), Span: uint64(ctx.Span)})
		sp.End()
		if err != nil {
			return wire.Verdict{}, fmt.Errorf("vote: %w", err)
		}
	}
	if err := lk.sendControl(&wire.Done{Node: uint32(nc.ID)}); err != nil {
		return wire.Verdict{}, fmt.Errorf("done: %w", err)
	}

	r := wire.NewReader(conn)
	f, err := r.ReadFrame()
	if err != nil {
		return wire.Verdict{}, fmt.Errorf("verdict: %w", err)
	}
	v, ok := f.(*wire.Verdict)
	if !ok {
		return wire.Verdict{}, fmt.Errorf("verdict: unexpected frame type %d", f.Type())
	}
	return *v, nil
}

// batchVote flattens one precomputed submission frame into its VoteBatch
// entry. The frames were computed by computeFrames, so only Vote and
// Sketch frames reach here.
func batchVote(f wire.Frame) wire.BatchVote {
	switch fr := f.(type) {
	case *wire.Vote:
		return wire.BatchVote{Trial: fr.Trial, Node: fr.Node, Reject: fr.Reject}
	case *wire.Sketch:
		return wire.BatchVote{Trial: fr.Trial, Node: fr.Node, Samples: fr.Samples, Collisions: fr.Collisions}
	default:
		panic(fmt.Sprintf("cluster: frame type %d is not a vote", f.Type()))
	}
}

// submitBatched is the high-throughput variant of submit: votes coalesce
// into VoteBatch frames behind a bounded send queue instead of one write
// per vote. The fault plan draws the identical per-vote stream as the
// per-frame path (FaultPlan.decide), so a faulty batched run realizes the
// same delivered-vote multiset: drops skip the vote, dups pack it twice
// (the referee dedups), and a disconnect first drains the pending batch —
// mirroring the per-frame path, where earlier votes were already on the
// wire when the link died.
func (nc *NodeClient) submitBatched(frames []outFrame, attempt int) (wire.Verdict, error) {
	cfg := nc.Config
	conn, err := nc.Dial()
	if err != nil {
		return wire.Verdict{}, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(cfg.deadline())) //unifvet:allow wallclock per-attempt I/O safety bound; votes are precomputed and unaffected

	var sent, dropped *obs.Counter
	if cfg.Obs != nil {
		sent = cfg.Obs.Counter(fmt.Sprintf("cluster.peer.%d.sent", nc.ID))
		dropped = cfg.Obs.Counter(fmt.Sprintf("cluster.peer.%d.dropped", nc.ID))
	}
	var g *rng.RNG
	if nc.Faults.Active() {
		g = rng.At(nc.Faults.Seed, linkID(nc.ID, attempt))
	}

	q := newSendQueue(conn, cfg.queueDepth(), cfg.QueuePolicy, cfg.Obs, "cluster")
	defer q.Close()
	sess := trace.Context{}
	if len(frames) > 0 {
		sess = frames[0].parent
	}
	bt := newBatcher(q, cfg, sess, sent)

	hello := &wire.Hello{Node: uint32(nc.ID), K: uint32(nc.K), Trials: uint32(cfg.Trials)}
	if err := q.send(wire.AppendSession(q.buffer(), hello, cfg.Session, wire.TraceContext{})); err != nil {
		return wire.Verdict{}, fmt.Errorf("hello: %w", err)
	}
	for _, of := range frames {
		action := faultDeliver
		if g != nil {
			action = nc.Faults.decide(g, cfg.Obs)
		}
		switch action {
		case faultDisconnect:
			// Drain what the per-frame path would already have written, then
			// kill the link so the retry path takes over.
			bt.flush()
			q.Flush()
			conn.Close()
			return wire.Verdict{}, fmt.Errorf("vote: link disconnected by fault plan")
		case faultDrop:
			dropped.Inc()
			continue
		case faultDup:
			if err := bt.add(batchVote(of.frame)); err != nil {
				return wire.Verdict{}, fmt.Errorf("vote: %w", err)
			}
			if err := bt.add(batchVote(of.frame)); err != nil {
				return wire.Verdict{}, fmt.Errorf("vote: %w", err)
			}
		default:
			if err := bt.add(batchVote(of.frame)); err != nil {
				return wire.Verdict{}, fmt.Errorf("vote: %w", err)
			}
		}
	}
	if err := bt.flush(); err != nil {
		return wire.Verdict{}, err
	}
	if err := q.send(wire.AppendSession(q.buffer(), &wire.Done{Node: uint32(nc.ID)}, cfg.Session, wire.TraceContext{})); err != nil {
		return wire.Verdict{}, fmt.Errorf("done: %w", err)
	}
	// Graceful drain: every queued frame must reach the kernel before we
	// block on the verdict, and before EarlyClose can tear the session down
	// under us with votes still buffered.
	if err := q.Flush(); err != nil {
		return wire.Verdict{}, fmt.Errorf("drain: %w", err)
	}

	r := wire.NewReader(conn)
	f, err := r.ReadFrame()
	if err != nil {
		return wire.Verdict{}, fmt.Errorf("verdict: %w", err)
	}
	v, ok := f.(*wire.Verdict)
	if !ok {
		return wire.Verdict{}, fmt.Errorf("verdict: unexpected frame type %d", f.Type())
	}
	return *v, nil
}
