package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// Referee is the decision service of a cluster session: it accepts node
// connections, validates and deduplicates their votes, applies the
// decision rule incrementally as votes arrive — reusing the rule's
// EarlyDecider so a trial's verdict is fixed at the earliest possible
// vote — and finalizes undecided trials through the quorum policy when
// the session ends. The connection-terminating half (accept loop, frame
// validation, dedup, per-trial fold) is the voteSink shared with the
// Aggregator; the referee layers the rule and quorum machinery on top
// through the sink's onTrial hook. Besides raw leaf connections, the
// sink also terminates aggregator children (AggHello + PartialVerdict
// partial sums), which fold into the same per-trial tallies — both
// decision rules are commutative monoids over (votes, rejects), so the
// merged sums decide exactly as the flat star would.
//
// A session ends on the first of: every node sent Done; every trial's
// verdict is fixed (Config.EarlyClose); or the safety-net deadline
// expired. At that point the referee broadcasts a wire.Verdict summary to
// every connected node and closes the transport.
type Referee struct {
	voteSink
	rule zeroround.Rule
	// early is rule as a zeroround.EarlyDecider, or nil; resolved once.
	early zeroround.EarlyDecider

	// Decision state, guarded by the sink mutex (advance runs under it).
	missing   []int
	decided   []bool
	verdict   []bool
	early_    []bool // trial fixed by EarlyDecider before all votes
	undecided int
}

// NewReferee builds a referee for a k-node network deciding with rule.
func NewReferee(k int, rule zeroround.Rule, cfg Config) *Referee {
	rf := &Referee{
		rule:      rule,
		missing:   make([]int, cfg.Trials),
		decided:   make([]bool, cfg.Trials),
		verdict:   make([]bool, cfg.Trials),
		early_:    make([]bool, cfg.Trials),
		undecided: cfg.Trials,
	}
	rf.voteSink.init(k, 0, k, cfg, "cluster", "referee")
	rf.onTrial = rf.advance
	if ed, ok := rule.(zeroround.EarlyDecider); ok {
		rf.early = ed
	}
	return rf
}

// Serve runs one session on l and returns the referee's report. It always
// closes l. Under QuorumStrict a session with missing votes returns the
// report alongside a non-nil error.
func (rf *Referee) Serve(l net.Listener) (*Report, error) {
	if rf.cfg.Trials <= 0 {
		l.Close()
		return nil, fmt.Errorf("cluster: referee needs Trials > 0, got %d", rf.cfg.Trials)
	}
	deadline := rf.cfg.deadline()
	timer := time.NewTimer(deadline)
	defer timer.Stop()

	sess := rf.cfg.Trace.Start("referee.session", trace.Context{},
		trace.A("k", rf.k), trace.A("trials", rf.cfg.Trials))
	rf.reg.Gauge("cluster.sessions_open").Add(1)
	defer rf.reg.Gauge("cluster.sessions_open").Add(-1)

	var wg sync.WaitGroup
	go rf.acceptLoop(l, deadline, &wg)

	select {
	case <-rf.trigger:
	case <-timer.C:
		rf.mu.Lock()
		rf.stats.DeadlineExpired = true
		rf.mu.Unlock()
	}
	l.Close()

	vspan := rf.cfg.Trace.Start("referee.verdict", sess.Context())
	rep, sum, conns := rf.finalize()
	vspan.Annotate(trace.A("accepts", rep.Accepts), trace.A("missing", rep.MissingVotes),
		trace.A("quorum_trials", rep.QuorumTrials))
	vspan.End()
	sess.End()
	for _, c := range conns {
		// Bounded best-effort verdict delivery: a node that already went
		// away must not stall shutdown (net.Pipe writes block until read).
		c.SetWriteDeadline(time.Now().Add(time.Second)) //unifvet:allow wallclock bounded best-effort verdict broadcast on shutdown
		_ = wire.WriteFrame(c, &sum)
		c.Close()
	}
	wg.Wait()
	rf.m.peersIdle.Set(0) // the broadcast released every idle peer

	if rf.cfg.Policy == QuorumStrict && rep.MissingVotes > 0 {
		return rep, fmt.Errorf("cluster: strict quorum: %d votes missing across %d trials", rep.MissingVotes, rep.QuorumTrials)
	}
	return rep, nil
}

// advance runs the incremental decision for one trial; the sink invokes
// it under its mutex after every fold — a direct vote or a partial-sum
// entry — so EarlyDecider short-circuiting fires from partial counts
// exactly as it does from raw votes.
func (rf *Referee) advance(trial int) {
	if rf.decided[trial] {
		return
	}
	switch {
	case rf.votes[trial] == rf.k:
		rf.settle(trial, rf.rule.Accept(rf.rejects[trial], rf.k), false)
	case rf.early != nil:
		if accept, done := rf.early.Decided(rf.rejects[trial], rf.k-rf.votes[trial]); done {
			rf.settle(trial, accept, true)
		}
	}
}

// settle fixes a trial's verdict; callers hold the sink mutex.
func (rf *Referee) settle(trial int, accept, early bool) {
	rf.decided[trial] = true
	rf.verdict[trial] = accept
	rf.early_[trial] = early
	rf.undecided--
	if rf.undecided == 0 && rf.cfg.EarlyClose {
		rf.stats.EarlyClosed = true
		rf.fire()
	}
}

// finalize decides the remaining trials via the quorum policy and
// assembles the report, the verdict broadcast frame, and the connections
// to flush it to.
func (rf *Referee) finalize() (*Report, wire.Verdict, []net.Conn) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.closed = true

	rep := &Report{
		K:        rf.k,
		Trials:   rf.cfg.Trials,
		Verdicts: make([]bool, rf.cfg.Trials),
		Rejects:  append([]int(nil), rf.rejects...),
		Votes:    append([]int(nil), rf.votes...),
		Missing:  make([]int, rf.cfg.Trials),
	}
	for t := 0; t < rf.cfg.Trials; t++ {
		if !rf.decided[t] {
			// Quorum fallback: decide from the votes that arrived; the
			// absent votes count as accepts.
			rf.verdict[t] = rf.rule.Accept(rf.rejects[t], rf.k)
			rf.decided[t] = true
			rf.missing[t] = rf.k - rf.votes[t]
			rep.QuorumTrials++
		}
		if rf.early_[t] {
			rep.EarlyTrials++
		}
		rep.Verdicts[t] = rf.verdict[t]
		rep.Missing[t] = rf.missing[t]
		rep.MissingVotes += rf.missing[t]
		if rf.verdict[t] {
			rep.Accepts++
		}
	}
	rf.stats.IdlePeers = rf.doneCount
	rep.Stats = rf.stats
	rf.reg.Counter("cluster.votes_missing").Add(int64(rep.MissingVotes))

	sum := wire.Verdict{
		Trials:  uint32(rep.Trials),
		Accepts: uint32(rep.Accepts),
		Missing: uint32(rep.MissingVotes),
	}
	conns := rf.conns
	rf.conns = nil
	return rep, sum, conns
}

// isClosedErr reports whether err is an orderly end of stream rather than
// a protocol violation: EOF, a closed/reset transport, or a deadline.
func isClosedErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	s := err.Error()
	for _, sub := range []string{"closed pipe", "use of closed network connection", "connection reset", "broken pipe"} {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
