package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/wire"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// Referee is the decision service of a cluster session: it accepts node
// connections, validates and deduplicates their votes, applies the
// decision rule incrementally as votes arrive — reusing the rule's
// EarlyDecider so a trial's verdict is fixed at the earliest possible
// vote — and finalizes undecided trials through the quorum policy when
// the session ends.
//
// A session ends on the first of: every node sent Done; every trial's
// verdict is fixed (Config.EarlyClose); or the safety-net deadline
// expired. At that point the referee broadcasts a wire.Verdict summary to
// every connected node and closes the transport.
type Referee struct {
	k    int
	rule zeroround.Rule
	// early is rule as a zeroround.EarlyDecider, or nil; resolved once.
	early zeroround.EarlyDecider
	cfg   Config
	reg   *obs.Registry
	m     refereeMetrics

	mu        sync.Mutex
	voted     []uint64 // (trial, node) bitset, k*trials bits
	rejects   []int
	votes     []int
	missing   []int
	decided   []bool
	verdict   []bool
	early_    []bool // trial fixed by EarlyDecider before all votes
	undecided int
	nodeDone  []bool
	doneCount int
	conns     []net.Conn
	closed    bool
	stats     RefereeStats

	trigger   chan struct{}
	triggerMu sync.Once
}

// refereeMetrics caches the hot-path counters so the per-vote path costs
// one atomic add instead of a registry map lookup per event. All fields
// no-op when telemetry is off (nil-registry metrics are nil no-ops).
type refereeMetrics struct {
	votes      *obs.Counter
	votesDup   *obs.Counter
	badFrames  *obs.Counter
	frames     *obs.Counter
	batchSaved *obs.Counter // cluster.batch_bytes_saved
	batchFill  *obs.Histogram
	dedup      *obs.Gauge
	peersIdle  *obs.Gauge // cluster.peers_idle: nodes that sent Done
}

// NewReferee builds a referee for a k-node network deciding with rule.
func NewReferee(k int, rule zeroround.Rule, cfg Config) *Referee {
	rf := &Referee{
		k:         k,
		rule:      rule,
		cfg:       cfg,
		reg:       cfg.Obs,
		voted:     make([]uint64, (k*cfg.Trials+63)/64),
		rejects:   make([]int, cfg.Trials),
		votes:     make([]int, cfg.Trials),
		missing:   make([]int, cfg.Trials),
		decided:   make([]bool, cfg.Trials),
		verdict:   make([]bool, cfg.Trials),
		early_:    make([]bool, cfg.Trials),
		undecided: cfg.Trials,
		nodeDone:  make([]bool, k),
		trigger:   make(chan struct{}),
	}
	if ed, ok := rule.(zeroround.EarlyDecider); ok {
		rf.early = ed
	}
	rf.m = refereeMetrics{
		votes:      rf.reg.Counter("cluster.votes"),
		votesDup:   rf.reg.Counter("cluster.votes_dup"),
		badFrames:  rf.reg.Counter("cluster.bad_frames"),
		frames:     rf.reg.Counter("cluster.frames"),
		batchSaved: rf.reg.Counter("cluster.batch_bytes_saved"),
		batchFill:  rf.reg.Histogram("cluster.batch_fill", obs.BytesBuckets()),
		dedup:      rf.reg.Gauge("cluster.dedup_occupancy"),
		peersIdle:  rf.reg.Gauge("cluster.peers_idle"),
	}
	return rf
}

// Serve runs one session on l and returns the referee's report. It always
// closes l. Under QuorumStrict a session with missing votes returns the
// report alongside a non-nil error.
func (rf *Referee) Serve(l net.Listener) (*Report, error) {
	if rf.cfg.Trials <= 0 {
		l.Close()
		return nil, fmt.Errorf("cluster: referee needs Trials > 0, got %d", rf.cfg.Trials)
	}
	deadline := rf.cfg.deadline()
	timer := time.NewTimer(deadline)
	defer timer.Stop()

	sess := rf.cfg.Trace.Start("referee.session", trace.Context{},
		trace.A("k", rf.k), trace.A("trials", rf.cfg.Trials))
	rf.reg.Gauge("cluster.sessions_open").Add(1)
	defer rf.reg.Gauge("cluster.sessions_open").Add(-1)

	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			rf.mu.Lock()
			if rf.closed {
				rf.mu.Unlock()
				conn.Close()
				continue
			}
			rf.conns = append(rf.conns, conn)
			rf.stats.Connections++
			// Add inside the critical section: finalize sets closed under
			// the same mutex, so no handler can appear after the session
			// closed and before wg.Wait below.
			wg.Add(1)
			rf.mu.Unlock()
			rf.reg.Counter("cluster.connections").Inc()
			go func() {
				defer wg.Done()
				// Absolute per-connection read bound: a stalled peer cannot
				// hold its handler past the session deadline.
				end := time.Now().Add(deadline) //unifvet:allow wallclock connection-deadline safety net; verdicts depend only on which votes arrive
				rf.handle(conn, end)
			}()
		}
	}()

	select {
	case <-rf.trigger:
	case <-timer.C:
		rf.mu.Lock()
		rf.stats.DeadlineExpired = true
		rf.mu.Unlock()
	}
	l.Close()

	vspan := rf.cfg.Trace.Start("referee.verdict", sess.Context())
	rep, sum, conns := rf.finalize()
	vspan.Annotate(trace.A("accepts", rep.Accepts), trace.A("missing", rep.MissingVotes),
		trace.A("quorum_trials", rep.QuorumTrials))
	vspan.End()
	sess.End()
	for _, c := range conns {
		// Bounded best-effort verdict delivery: a node that already went
		// away must not stall shutdown (net.Pipe writes block until read).
		c.SetWriteDeadline(time.Now().Add(time.Second)) //unifvet:allow wallclock bounded best-effort verdict broadcast on shutdown
		_ = wire.WriteFrame(c, &sum)
		c.Close()
	}
	wg.Wait()
	rf.m.peersIdle.Set(0) // the broadcast released every idle peer

	if rf.cfg.Policy == QuorumStrict && rep.MissingVotes > 0 {
		return rep, fmt.Errorf("cluster: strict quorum: %d votes missing across %d trials", rep.MissingVotes, rep.QuorumTrials)
	}
	return rep, nil
}

// handle drains one connection's frame stream into the aggregator.
func (rf *Referee) handle(conn net.Conn, end time.Time) {
	conn.SetReadDeadline(end)
	r := wire.NewReader(conn)
	node := -1 // set by Hello
	frameBytes := rf.reg.Histogram("cluster.frame_bytes", obs.BytesBuckets())
	rf.reg.Gauge("cluster.peers_connected").Add(1)
	defer rf.reg.Gauge("cluster.peers_connected").Add(-1)
	// Per-frame-type decode and apply latency histograms, resolved once per
	// connection; nil (and never timed) when telemetry is off, so the hot
	// path pays no clock reads by default.
	var decodeNS, applyNS [wire.TypeVoteBatchZ + 1]*obs.Histogram
	if rf.reg != nil {
		for t := wire.TypeHello; t <= wire.TypeVoteBatchZ; t++ {
			name := wire.TypeName(t)
			decodeNS[t] = rf.reg.Histogram("cluster.decode_ns."+name, obs.LatencyBuckets())
			applyNS[t] = rf.reg.Histogram("cluster.apply_ns."+name, obs.LatencyBuckets())
		}
	}
	var peerRecv *obs.Counter // resolved after Hello identifies the peer
	// Per-connection decode scratch: steady-state vote and batch decoding
	// reuses these buffers, so the hot loop does not allocate per frame.
	var sc wire.DecodeScratch
	for {
		body, err := r.ReadBody()
		if err != nil {
			// EOF, peer close, injected disconnect, or framing error:
			// framing errors count as a bad frame, transport ends either way.
			if !isClosedErr(err) {
				rf.countBadFrame()
			}
			return
		}
		var t0 time.Time
		if rf.reg != nil {
			t0 = time.Now() //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
		}
		f, tc, err := wire.DecodeBodyScratch(body, &sc)
		if err != nil {
			// Codec error: count it and end the transport, as before the
			// read/decode split.
			rf.countBadFrame()
			return
		}
		ft := f.Type()
		// A compressed batch decodes to the same VoteBatch frame; attribute
		// its latency samples to the votebatchz series.
		if vb, ok := f.(*wire.VoteBatch); ok && vb.Compressed {
			ft = wire.TypeVoteBatchZ
		}
		if rf.reg != nil && int(ft) < len(decodeNS) {
			decodeNS[ft].Observe(int64(time.Since(t0))) //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
			t0 = time.Now()                             //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
		}
		// Wire bytes as received: the frame body plus the length prefix.
		// (EncodedSizeTraced would re-encode raw and misreport compressed
		// batches.)
		n := len(body) + 4
		frameBytes.Observe(int64(n))
		rf.mu.Lock()
		rf.stats.Frames++
		rf.stats.Bytes += int64(n)
		rf.mu.Unlock()
		rf.m.frames.Inc()
		peerRecv.Inc()

		switch m := f.(type) {
		case *wire.Hello:
			if int(m.K) != rf.k || int(m.Trials) != rf.cfg.Trials || int(m.Node) >= rf.k {
				rf.countBadFrame()
				conn.Close()
				return
			}
			node = int(m.Node)
			if rf.reg != nil {
				peerRecv = rf.reg.Counter(fmt.Sprintf("cluster.peer.%d.recv", node))
				peerRecv.Inc() // the Hello itself
			}
		case *wire.Vote:
			if node < 0 || int(m.Node) != node {
				rf.countBadFrame()
				continue
			}
			rf.apply(int(m.Trial), node, m.Reject, tc)
		case *wire.Sketch:
			if node < 0 || int(m.Node) != node {
				rf.countBadFrame()
				continue
			}
			// Single-collision vote derived server-side: reject iff the
			// node saw any colliding pair.
			rf.apply(int(m.Trial), node, m.Collisions > 0, tc)
		case *wire.VoteBatch:
			if node < 0 {
				rf.countBadFrame()
				continue
			}
			ok := true
			for i := range m.Votes {
				if int(m.Votes[i].Node) != node {
					ok = false
					break
				}
			}
			if !ok {
				// A batch smuggling another node's votes is rejected whole,
				// like a mismatched single-vote frame.
				rf.countBadFrame()
				continue
			}
			rf.applyBatch(m, node, tc)
		case *wire.Done:
			if node < 0 || int(m.Node) != node {
				rf.countBadFrame()
				continue
			}
			rf.markDone(node)
			if rf.reg != nil && int(ft) < len(applyNS) {
				applyNS[ft].Observe(int64(time.Since(t0))) //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
			}
			// The node sends nothing further; keep the connection open for
			// the verdict broadcast and release the handler.
			return
		default:
			rf.countBadFrame()
		}
		if rf.reg != nil && int(ft) < len(applyNS) {
			applyNS[ft].Observe(int64(time.Since(t0))) //unifvet:allow wallclock latency histogram sample; enabled only with telemetry, never read by decisions
		}
	}
}

// apply records one vote under a referee.apply span parented on the frame's
// wire trace context, linking the referee's side of the trace to the node's
// send span across the connection.
func (rf *Referee) apply(trial, node int, reject bool, tc wire.TraceContext) {
	if !rf.cfg.Trace.Enabled() {
		rf.record(trial, node, reject)
		return
	}
	sp := rf.cfg.Trace.Start("referee.apply",
		trace.Context{Trace: trace.ID(tc.Trace), Span: trace.ID(tc.Span)},
		trace.A("trial", trial), trace.A("node", node))
	rf.record(trial, node, reject)
	sp.End()
}

// applyBatch records a whole VoteBatch under one mutex acquisition: the
// incremental rule, dedup bitset and quorum bookkeeping see the batch as
// the same sequence of per-vote record calls the unbatched path makes,
// just without k lock round-trips. When tracing is on, the batch gets an
// apply span parented on the frame's wire context, and each vote a
// derived child span — so a batched trace keeps per-vote granularity.
func (rf *Referee) applyBatch(b *wire.VoteBatch, node int, tc wire.TraceContext) {
	var sp *trace.Span
	ctx := trace.Context{Trace: trace.ID(tc.Trace), Span: trace.ID(tc.Span)}
	if rf.cfg.Trace.Enabled() {
		sp = rf.cfg.Trace.Start("referee.applybatch", ctx,
			trace.A("node", node), trace.A("votes", len(b.Votes)),
			trace.A("compressed", b.Compressed))
		ctx = sp.Context()
	}
	rf.mu.Lock()
	if !rf.closed {
		rf.stats.BatchFrames++
		rf.stats.BatchedVotes += len(b.Votes)
		rf.stats.BytesSaved += int64(b.Saved)
		for i := range b.Votes {
			v := &b.Votes[i]
			reject := v.Reject
			if b.Sketch {
				reject = v.Collisions > 0
			}
			rf.recordLocked(int(v.Trial), node, reject)
		}
	}
	rf.mu.Unlock()
	rf.m.batchFill.Observe(int64(len(b.Votes)))
	rf.m.batchSaved.Add(int64(b.Saved))
	if sp != nil {
		for i := range b.Votes {
			v := &b.Votes[i]
			vsp := rf.cfg.Trace.StartID("referee.apply",
				trace.Derive("referee.apply", uint64(ctx.Trace), uint64(v.Trial), uint64(node)),
				ctx, trace.A("trial", int(v.Trial)), trace.A("node", node))
			vsp.End()
		}
		sp.End()
	}
}

// record registers one deduplicated vote and advances the trial's
// incremental decision.
func (rf *Referee) record(trial, node int, reject bool) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.closed {
		return
	}
	rf.recordLocked(trial, node, reject)
}

// recordLocked is record's body; callers hold rf.mu and have checked
// rf.closed.
func (rf *Referee) recordLocked(trial, node int, reject bool) {
	if trial < 0 || trial >= rf.cfg.Trials {
		rf.stats.BadFrames++
		rf.m.badFrames.Inc()
		return
	}
	idx := trial*rf.k + node
	if rf.voted[idx/64]&(1<<(idx%64)) != 0 {
		rf.stats.DuplicateVotes++
		rf.m.votesDup.Inc()
		return
	}
	rf.voted[idx/64] |= 1 << (idx % 64)
	rf.votes[trial]++
	if reject {
		rf.rejects[trial]++
	}
	rf.stats.Votes++
	rf.m.votes.Inc()
	// Fraction of the (trial, node) dedup bitset that is set — a live
	// progress probe for the export server.
	rf.m.dedup.Set(float64(rf.stats.Votes) / float64(rf.k*rf.cfg.Trials))

	if rf.decided[trial] {
		return
	}
	switch {
	case rf.votes[trial] == rf.k:
		rf.settle(trial, rf.rule.Accept(rf.rejects[trial], rf.k), false)
	case rf.early != nil:
		if accept, done := rf.early.Decided(rf.rejects[trial], rf.k-rf.votes[trial]); done {
			rf.settle(trial, accept, true)
		}
	}
}

// settle fixes a trial's verdict; callers hold rf.mu.
func (rf *Referee) settle(trial int, accept, early bool) {
	rf.decided[trial] = true
	rf.verdict[trial] = accept
	rf.early_[trial] = early
	rf.undecided--
	if rf.undecided == 0 && rf.cfg.EarlyClose {
		rf.stats.EarlyClosed = true
		rf.fire()
	}
}

// markDone registers a node's Done marker; the session ends when all k
// nodes reported done.
func (rf *Referee) markDone(node int) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.closed || rf.nodeDone[node] {
		return
	}
	rf.nodeDone[node] = true
	rf.doneCount++
	// Idle-peer accounting: a node that sent Done holds its connection
	// open only for the verdict broadcast.
	rf.m.peersIdle.Add(1)
	if rf.doneCount == rf.k {
		rf.fire()
	}
}

// fire triggers session finalization once; callers hold rf.mu.
func (rf *Referee) fire() {
	rf.triggerMu.Do(func() { close(rf.trigger) })
}

// countBadFrame tallies a rejected frame.
func (rf *Referee) countBadFrame() {
	rf.mu.Lock()
	rf.stats.BadFrames++
	rf.mu.Unlock()
	rf.reg.Counter("cluster.bad_frames").Inc()
}

// finalize decides the remaining trials via the quorum policy and
// assembles the report, the verdict broadcast frame, and the connections
// to flush it to.
func (rf *Referee) finalize() (*Report, wire.Verdict, []net.Conn) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.closed = true

	rep := &Report{
		K:        rf.k,
		Trials:   rf.cfg.Trials,
		Verdicts: make([]bool, rf.cfg.Trials),
		Rejects:  append([]int(nil), rf.rejects...),
		Votes:    append([]int(nil), rf.votes...),
		Missing:  make([]int, rf.cfg.Trials),
	}
	for t := 0; t < rf.cfg.Trials; t++ {
		if !rf.decided[t] {
			// Quorum fallback: decide from the votes that arrived; the
			// absent votes count as accepts.
			rf.verdict[t] = rf.rule.Accept(rf.rejects[t], rf.k)
			rf.decided[t] = true
			rf.missing[t] = rf.k - rf.votes[t]
			rep.QuorumTrials++
		}
		if rf.early_[t] {
			rep.EarlyTrials++
		}
		rep.Verdicts[t] = rf.verdict[t]
		rep.Missing[t] = rf.missing[t]
		rep.MissingVotes += rf.missing[t]
		if rf.verdict[t] {
			rep.Accepts++
		}
	}
	rf.stats.IdlePeers = rf.doneCount
	rep.Stats = rf.stats
	rf.reg.Counter("cluster.votes_missing").Add(int64(rep.MissingVotes))

	sum := wire.Verdict{
		Trials:  uint32(rep.Trials),
		Accepts: uint32(rep.Accepts),
		Missing: uint32(rep.MissingVotes),
	}
	conns := rf.conns
	rf.conns = nil
	return rep, sum, conns
}

// isClosedErr reports whether err is an orderly end of stream rather than
// a protocol violation: EOF, a closed/reset transport, or a deadline.
func isClosedErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	s := err.Error()
	for _, sub := range []string{"closed pipe", "use of closed network connection", "connection reset", "broken pipe"} {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
