package cluster

import (
	"fmt"
	"io"
	"sync"

	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/trace"
	"github.com/unifdist/unifdist/internal/wire"
)

// sendQueue is the connection-lifecycle layer under a batching node
// client: a bounded queue of encoded frames drained by a single writer
// goroutine, so vote computation never blocks on the kernel send buffer
// and writes coalesce naturally while the queue is non-empty.
//
// Policy on a full queue is QueueBlock (backpressure: the producer waits,
// keeping the batched path deterministic) or QueueDrop (shed the frame,
// counted in cluster.queue_dropped). The first write error is sticky:
// the writer keeps draining — so producers and Flush never deadlock on a
// dead connection — but writes nothing further, and every subsequent
// send/Flush reports the error to trigger the client's retry path.
//
// Frame buffers are recycled through a free list, so a steady-state
// producer allocates only when the queue is deeper than ever before.
type sendQueue struct {
	items  chan queueItem
	free   chan []byte
	policy QueuePolicy

	depth   *obs.Gauge   // cluster.queue_depth, shared across peers
	dropped *obs.Counter // cluster.queue_dropped

	mu  sync.Mutex
	err error

	done      chan struct{}
	closeOnce sync.Once
}

// queueItem is one queued frame, or a flush marker when ack is non-nil.
type queueItem struct {
	buf []byte
	ack chan struct{}
}

// newSendQueue starts the writer goroutine for w with the given bound.
// prefix namespaces the queue's metrics: node clients share "cluster"
// (cluster.queue_depth), aggregator upstream queues use a per-tier
// prefix ("agg.tier1", ...) so each tier's depth is a separate gauge.
func newSendQueue(w io.Writer, depth int, policy QueuePolicy, reg *obs.Registry, prefix string) *sendQueue {
	q := &sendQueue{
		items:   make(chan queueItem, depth),
		free:    make(chan []byte, depth+1),
		policy:  policy,
		depth:   reg.Gauge(prefix + ".queue_depth"),
		dropped: reg.Counter(prefix + ".queue_dropped"),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(q.done)
		for it := range q.items {
			if it.ack != nil {
				close(it.ack)
				continue
			}
			q.depth.Add(-1)
			if q.Err() == nil {
				//unifvet:allow framecap producers encode via wire.Append*/BatchEncoder before Enqueue; the writer drains opaque pre-capped frames
				if _, err := w.Write(it.buf); err != nil {
					q.fail(err)
				}
			}
			select {
			case q.free <- it.buf[:0]:
			default:
			}
		}
	}()
	return q
}

// buffer returns a recycled encode buffer (or nil — append allocates).
func (q *sendQueue) buffer() []byte {
	select {
	case b := <-q.free:
		return b
	default:
		return nil
	}
}

// send enqueues one encoded frame. Under QueueBlock a full queue applies
// backpressure; under QueueDrop the frame is shed and counted. The sticky
// write error is returned so producers stop early on a dead connection.
func (q *sendQueue) send(buf []byte) error {
	if err := q.Err(); err != nil {
		return err
	}
	if q.policy == QueueDrop {
		select {
		case q.items <- queueItem{buf: buf}:
			q.depth.Add(1)
		default:
			q.dropped.Inc()
		}
		return nil
	}
	q.items <- queueItem{buf: buf}
	q.depth.Add(1)
	return nil
}

// Flush blocks until every frame enqueued before it has been handed to
// the connection (or abandoned after a write error), then reports the
// sticky error state. Flush markers always enqueue — even under
// QueueDrop — so a drain point is a hard barrier.
func (q *sendQueue) Flush() error {
	ack := make(chan struct{})
	q.items <- queueItem{ack: ack}
	<-ack
	return q.Err()
}

// Close stops the writer after the queue drains. The owner must not send
// or Flush after Close.
func (q *sendQueue) Close() {
	q.closeOnce.Do(func() { close(q.items) })
	<-q.done
}

// Err returns the sticky first write error.
func (q *sendQueue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

func (q *sendQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
}

// batcher coalesces a node's votes into VoteBatch frames, flushing into
// the send queue on a count watermark (maxVotes), a byte watermark
// (maxBytes), or an explicit flush at a protocol point (disconnect, Done).
// There is no time-based flush: the deterministic path never consults a
// clock.
type batcher struct {
	q        *sendQueue
	enc      wire.BatchEncoder
	batch    wire.VoteBatch
	maxVotes int
	maxBytes int
	compress bool
	session  uint32
	bytes    int

	tr   *trace.Tracer
	sess trace.Context
	fill *obs.Histogram // cluster.batch_fill
	sent *obs.Counter   // per-peer sent frames
}

// newBatcher sizes a batcher from the session config.
func newBatcher(q *sendQueue, cfg Config, sess trace.Context, sent *obs.Counter) *batcher {
	b := &batcher{
		q:        q,
		maxVotes: cfg.batchSize(),
		maxBytes: cfg.flushBytes(),
		compress: cfg.Compress,
		session:  cfg.Session,
		tr:       cfg.Trace,
		sess:     sess,
		fill:     cfg.Obs.Histogram("cluster.batch_fill", obs.BytesBuckets()),
		sent:     sent,
	}
	b.batch.Sketch = cfg.Sketch
	return b
}

// add appends one vote, flushing when a watermark trips.
func (b *batcher) add(v wire.BatchVote) error {
	var prev *wire.BatchVote
	if n := len(b.batch.Votes); n > 0 {
		prev = &b.batch.Votes[n-1]
	} else {
		// Fixed overhead slack: flags, count varint, bitset rounding.
		b.bytes = 16
	}
	b.bytes += wire.BatchVoteSize(prev, &v, b.batch.Sketch)
	if !b.batch.Sketch && len(b.batch.Votes)%8 == 0 {
		b.bytes++ // a fresh reject-bitset byte
	}
	b.batch.Votes = append(b.batch.Votes, v)
	if len(b.batch.Votes) >= b.maxVotes || b.bytes >= b.maxBytes {
		return b.flush()
	}
	return nil
}

// flush encodes and enqueues the pending batch (no-op when empty). The
// batch send span's context rides the frame, so the referee's apply spans
// parent on it across the connection.
func (b *batcher) flush() error {
	n := len(b.batch.Votes)
	if n == 0 {
		return nil
	}
	sp := b.tr.Start("node.sendbatch", b.sess,
		trace.A("votes", n), trace.A("compress", b.compress))
	ctx := sp.Context()
	buf, err := b.enc.AppendSession(b.q.buffer(), &b.batch, b.session,
		wire.TraceContext{Trace: uint64(ctx.Trace), Span: uint64(ctx.Span)}, b.compress)
	if err == nil {
		err = b.q.send(buf)
	}
	sp.End()
	b.fill.Observe(int64(n))
	b.sent.Inc()
	b.batch.Votes = b.batch.Votes[:0]
	b.bytes = 0
	if err != nil {
		return fmt.Errorf("batch flush: %w", err)
	}
	return nil
}
