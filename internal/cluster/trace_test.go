package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/obs"
	"github.com/unifdist/unifdist/internal/obs/trace"
)

// spanRec mirrors the tracer's journal record shape.
type spanRec struct {
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace"`
	Span   string         `json:"span"`
	Parent string         `json:"parent"`
	Attrs  map[string]any `json:"attrs"`
}

func readSpans(t *testing.T, buf *bytes.Buffer) []spanRec {
	t.Helper()
	var out []spanRec
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		var r spanRec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		if r.Kind == "span" {
			out = append(out, r)
		}
	}
	return out
}

// TestTracingPreservesVerdicts is the tentpole's determinism pin: a fully
// traced session (spans on, every vote frame carrying wire trace context)
// must agree trial-for-trial with the untraced indexed reference RunAt, and
// its journal must contain the complete causal chain
// referee.apply → node.send → node.sample → node.session for every vote.
func TestTracingPreservesVerdicts(t *testing.T) {
	nw := andNetwork(t, 64, 24)
	d := dist.NewUniform(64)
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	reg := obs.NewRegistry()
	cfg := Config{
		Trials:   8,
		BaseSeed: 1234,
		Obs:      reg,
		Trace:    trace.New(j, trace.Derive("session", 1234)),
	}

	// checkDifferential asserts verdicts/rejects/votes match RunAt exactly.
	checkDifferential(t, nw, d, cfg, RunPipe)

	k, trials := nw.K(), cfg.Trials
	spans := readSpans(t, &buf)
	byID := map[string]spanRec{}
	counts := map[string]int{}
	for _, s := range spans {
		byID[s.Span] = s
		counts[s.Name]++
		if s.Trace != cfg.Trace.Trace().String() {
			t.Fatalf("span %s on trace %s, want %s", s.Name, s.Trace, cfg.Trace.Trace())
		}
	}
	if counts["referee.session"] != 1 || counts["referee.verdict"] != 1 {
		t.Fatalf("session/verdict spans = %d/%d, want 1/1", counts["referee.session"], counts["referee.verdict"])
	}
	if counts["node.session"] != k {
		t.Fatalf("node.session spans = %d, want %d", counts["node.session"], k)
	}
	want := k * trials
	if counts["node.sample"] != want || counts["node.send"] != want || counts["referee.apply"] != want {
		t.Fatalf("sample/send/apply spans = %d/%d/%d, want %d each",
			counts["node.sample"], counts["node.send"], counts["referee.apply"], want)
	}

	// Every referee.apply must chain back to a node.session through
	// node.send and node.sample.
	for _, s := range spans {
		if s.Name != "referee.apply" {
			continue
		}
		send, ok := byID[s.Parent]
		if !ok || send.Name != "node.send" {
			t.Fatalf("referee.apply parent %q is %q, want a node.send span", s.Parent, send.Name)
		}
		sample, ok := byID[send.Parent]
		if !ok || sample.Name != "node.sample" {
			t.Fatalf("node.send parent %q is %q, want a node.sample span", send.Parent, sample.Name)
		}
		sess, ok := byID[sample.Parent]
		if !ok || sess.Name != "node.session" {
			t.Fatalf("node.sample parent %q is %q, want a node.session span", sample.Parent, sess.Name)
		}
		// The apply and sample spans must agree on the trial coordinate.
		if s.Attrs["trial"] != sample.Attrs["trial"] {
			t.Fatalf("apply trial %v routed to sample trial %v", s.Attrs["trial"], sample.Attrs["trial"])
		}
	}
	// The verdict span parents on the referee session.
	for _, s := range spans {
		if s.Name == "referee.verdict" {
			if p := byID[s.Parent]; p.Name != "referee.session" {
				t.Fatalf("referee.verdict parent is %q", p.Name)
			}
		}
	}

	// Sample spans carry deterministic IDs: re-derive one independently.
	wantID := trace.Derive("node.sample", uint64(cfg.Trace.Trace()), 0, 0).String()
	if _, ok := byID[wantID]; !ok {
		t.Fatalf("derived sample span %s not in journal", wantID)
	}

	// Metrics: traced frames flow through the instrumented hot path.
	snap := reg.Snapshot()
	if got := snap.Counters["cluster.votes"]; got != int64(want) {
		t.Fatalf("cluster.votes = %d, want %d", got, want)
	}
	if h := snap.Histograms["cluster.apply_ns.vote"]; h.Count != int64(want) {
		t.Fatalf("apply_ns.vote count = %d, want %d", h.Count, want)
	}
	if h := snap.Histograms["cluster.decode_ns.vote"]; h.Count != int64(want) {
		t.Fatalf("decode_ns.vote count = %d, want %d", h.Count, want)
	}
	if got := snap.Counters["cluster.peer.0.recv"]; got != int64(trials)+2 {
		// Hello + trials votes + Done.
		t.Fatalf("peer 0 recv = %d, want %d", got, trials+2)
	}
	if got := snap.Counters["cluster.peer.0.sent"]; got != int64(trials)+2 {
		t.Fatalf("peer 0 sent = %d, want %d", got, trials+2)
	}
	if occ := snap.Gauges["cluster.dedup_occupancy"]; occ != 1 {
		t.Fatalf("dedup occupancy = %g, want 1 after a fault-free run", occ)
	}
	if open := snap.Gauges["cluster.sessions_open"]; open != 0 {
		t.Fatalf("sessions_open = %g after the session closed", open)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTracingSketchModeAndFaults exercises the traced path through sketch
// frames and a drop plan: verdicts must match an identically-seeded
// untraced run exactly (tracing must not consume fault randomness), with
// per-peer drop counters live.
func TestTracingSketchModeAndFaults(t *testing.T) {
	nw := thresholdNetwork(t, 256, 16)
	d := dist.NewUniform(256)
	plan := &FaultPlan{Seed: 99, Drop: 0.2}
	base := Config{Trials: 12, BaseSeed: 777, Sketch: true, DomainN: 256}

	plain, err := RunPipe(base, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	reg := obs.NewRegistry()
	traced := base
	traced.Obs = reg
	traced.Trace = trace.New(obs.NewJournal(&buf), trace.Derive("session", 777))
	got, err := RunPipe(traced, nw, d, plan)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Verdicts) != len(plain.Verdicts) {
		t.Fatalf("trials %d vs %d", len(got.Verdicts), len(plain.Verdicts))
	}
	for i := range got.Verdicts {
		if got.Verdicts[i] != plain.Verdicts[i] || got.Rejects[i] != plain.Rejects[i] || got.Votes[i] != plain.Votes[i] {
			t.Fatalf("trial %d diverged under tracing: verdict %v/%v rejects %d/%d votes %d/%d",
				i, got.Verdicts[i], plain.Verdicts[i], got.Rejects[i], plain.Rejects[i], got.Votes[i], plain.Votes[i])
		}
	}
	if got.MissingVotes != plain.MissingVotes {
		t.Fatalf("missing votes %d vs %d", got.MissingVotes, plain.MissingVotes)
	}

	snap := reg.Snapshot()
	var droppedPeers int64
	for i := 0; i < nw.K(); i++ {
		droppedPeers += snap.Counters[peerCounterName(i, "dropped")]
	}
	if droppedPeers != snap.Counters["cluster.faults_dropped"] {
		t.Fatalf("per-peer dropped %d != total dropped %d", droppedPeers, snap.Counters["cluster.faults_dropped"])
	}
	if droppedPeers == 0 {
		t.Fatal("drop plan dropped nothing; test is vacuous")
	}
	if h := snap.Histograms["cluster.apply_ns.sketch"]; h.Count == 0 {
		t.Fatal("no sketch apply latency recorded")
	}
	// Spans only for votes that actually arrived.
	applies := 0
	for _, s := range readSpans(t, &buf) {
		if s.Name == "referee.apply" {
			applies++
		}
	}
	if applies != got.Stats.Votes {
		t.Fatalf("referee.apply spans = %d, recorded votes = %d", applies, got.Stats.Votes)
	}
}

func peerCounterName(node int, kind string) string {
	return "cluster.peer." + itoa(node) + "." + kind
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestUntracedFramesStayVersion1 pins backward compatibility end to end: a
// session without a tracer must put only version-1 frames on the wire (the
// pre-trace protocol), which the differential tests then decode — so this
// just asserts the byte accounting matches the untraced frame sizes.
func TestUntracedFramesStayVersion1(t *testing.T) {
	nw := andNetwork(t, 64, 8)
	d := dist.NewUniform(64)
	cfg := Config{Trials: 4, BaseSeed: 5}
	rep, err := RunPipe(cfg, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per node: Hello(18) + 4 votes(15 each) + Done(10) = 88 bytes.
	wantPerNode := int64(18 + 4*15 + 10)
	if rep.Stats.Bytes != wantPerNode*int64(nw.K()) {
		t.Fatalf("untraced session moved %d bytes, want %d", rep.Stats.Bytes, wantPerNode*int64(nw.K()))
	}
	// A traced run grows every vote frame by exactly the 16-byte context.
	tcfg := cfg
	tcfg.Trace = trace.New(obs.NewJournal(&bytes.Buffer{}), 9)
	trep, err := RunPipe(tcfg, nw, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTraced := (wantPerNode + 4*16) * int64(nw.K())
	if trep.Stats.Bytes != wantTraced {
		t.Fatalf("traced session moved %d bytes, want %d", trep.Stats.Bytes, wantTraced)
	}
	for i := range rep.Verdicts {
		if rep.Verdicts[i] != trep.Verdicts[i] {
			t.Fatalf("trial %d verdict diverged under tracing", i)
		}
	}
}
