package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Provenance records where a run document came from: enough to regenerate
// the numbers (tool, mode, seed) and to explain them later (toolchain,
// host parallelism, VCS revision, timings).
type Provenance struct {
	Tool       string   `json:"tool"`
	Args       []string `json:"args,omitempty"`
	Mode       string   `json:"mode,omitempty"`
	Seed       uint64   `json:"seed"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	// Hostname and PID identify the emitting process — the keys that tell
	// multi-process cluster runs' journals apart when they are merged.
	Hostname string `json:"hostname,omitempty"`
	PID      int    `json:"pid"`
	// Workers is the requested worker-pool bound (0 = GOMAXPROCS); results
	// are worker-count-invariant, so this explains timings, not numbers.
	Workers  int    `json:"workers,omitempty"`
	GitRev   string `json:"git_rev,omitempty"`
	GitDirty bool   `json:"git_dirty,omitempty"`
	// Start is the run's wall-clock start in RFC3339; WallMS the total
	// duration, filled in by the caller when the run finishes.
	Start  string  `json:"start"`
	WallMS float64 `json:"wall_ms,omitempty"`
	// Extra carries tool-specific knobs that change the transport or
	// encoding but not the verdicts (batch size, compression, queue
	// policy) — recorded so a run document says how its bytes moved.
	Extra map[string]string `json:"extra,omitempty"`
}

// CollectProvenance fills a Provenance from the running binary and host.
func CollectProvenance(tool, mode string, seed uint64, args []string) Provenance {
	p := Provenance{
		Tool:       tool,
		Args:       args,
		Mode:       mode,
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		PID:        os.Getpid(),
		Start:      time.Now().Format(time.RFC3339), //unifvet:allow wallclock run-document timestamp; provenance never feeds a verdict
	}
	if host, err := os.Hostname(); err == nil {
		p.Hostname = host
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitRev = s.Value
			case "vcs.modified":
				p.GitDirty = s.Value == "true"
			}
		}
	}
	return p
}

// Document is the machine-readable run document shared by all commands:
// provenance, tool-specific results, and an optional metrics snapshot.
// cmd/unifbench -json, cmd/congestsim -json and cmd/gaptest -json all emit
// this envelope, so downstream tooling (BENCH_*.json extraction, CI smoke
// checks) parses one schema.
type Document struct {
	Provenance Provenance `json:"provenance"`
	Results    any        `json:"results,omitempty"`
	Metrics    *Snapshot  `json:"metrics,omitempty"`
}

// WriteJSON writes the document as indented JSON.
func (d Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("obs: encode document: %w", err)
	}
	return nil
}
