package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type testEvent struct {
	Kind  string `json:"kind"`
	Round int    `json:"round"`
	Bytes int    `json:"bytes,omitempty"`
}

func TestJournalGolden(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Write(testEvent{Kind: "round", Round: 1, Bytes: 64})
	j.Write(testEvent{Kind: "round", Round: 2})
	j.Write(testEvent{Kind: "halt", Round: 2, Bytes: 0})
	const golden = `{"kind":"round","round":1,"bytes":64}
{"kind":"round","round":2}
{"kind":"halt","round":2}
`
	if got := buf.String(); got != golden {
		t.Errorf("journal output:\n%s\nwant:\n%s", got, golden)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalLinesParseIndependently(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	for i := 1; i <= 5; i++ {
		j.Write(testEvent{Kind: "round", Round: i, Bytes: i * 10})
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	for i, line := range lines {
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
		if ev.Round != i+1 {
			t.Errorf("line %d round = %d", i, ev.Round)
		}
	}
}

func TestNilJournalAndRecorder(t *testing.T) {
	var j *Journal
	j.Write(testEvent{Kind: "x"})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var rec *Recorder
	rec.Log(testEvent{Kind: "x"})
	if rec.Reg() != nil {
		t.Error("nil recorder returned a registry")
	}
	if rec.Jour() != nil {
		t.Error("nil recorder returned a journal")
	}
	if rec.Enabled() {
		t.Error("nil recorder enabled")
	}
	// Jour round-trips an attached journal and stays usable directly.
	attached := &Recorder{Journal: NewJournal(io.Discard)}
	if attached.Jour() == nil {
		t.Error("attached recorder hid its journal")
	}
	attached.Jour().Write(testEvent{Kind: "y"})
	if err := attached.Jour().Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(&bytes.Buffer{})
	j.Write(func() {}) // unencodable: first error sticks
	if j.Err() == nil {
		t.Fatal("expected encode error")
	}
	j.Write(testEvent{Kind: "after"})
	if j.Err() == nil {
		t.Fatal("sticky error lost")
	}
}

func TestJournalConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Write(testEvent{Kind: "round", Round: g*50 + i})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestOpenJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Write(testEvent{Kind: "round", Round: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"round"`) {
		t.Errorf("file contents: %s", data)
	}
}

func TestProvenanceAndDocument(t *testing.T) {
	p := CollectProvenance("unifbench", "quick", 7, []string{"-run", "E1"})
	if p.Tool != "unifbench" || p.Seed != 7 || p.GoVersion == "" || p.GOMAXPROCS < 1 {
		t.Errorf("provenance incomplete: %+v", p)
	}
	// Hostname and PID tell concurrent multi-process cluster runs apart in
	// merged journals; PID must be this process, hostname the OS's answer.
	if p.PID != os.Getpid() {
		t.Errorf("provenance pid = %d, want %d", p.PID, os.Getpid())
	}
	if host, err := os.Hostname(); err == nil && p.Hostname != host {
		t.Errorf("provenance hostname = %q, want %q", p.Hostname, host)
	}
	snap := Snapshot{Counters: map[string]int64{"x": 1}}
	var buf bytes.Buffer
	doc := Document{Provenance: p, Results: map[string]any{"tables": []string{"E1"}}, Metrics: &snap}
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("document not parseable: %v", err)
	}
	for _, key := range []string{"provenance", "results", "metrics"} {
		if _, ok := back[key]; !ok {
			t.Errorf("document missing %q", key)
		}
	}
}
