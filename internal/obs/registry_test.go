package obs

import (
	"math"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(5)
	r.Counter("a").Inc()
	r.Gauge("b").Set(1.5)
	r.Histogram("c", BytesBuckets()).Observe(7)
	if v := r.Counter("a").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("b").Value(); v != 0 {
		t.Errorf("nil gauge value = %g", v)
	}
	if s := r.Snapshot(); !s.Empty() {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Inc()
	r.Counter("runs").Add(4)
	r.Gauge("util").Set(0.75)
	if v := r.Counter("runs").Value(); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
	if v := r.Gauge("util").Value(); v != 0.75 {
		t.Errorf("gauge = %g, want 0.75", v)
	}
	// Same name must return the same metric.
	if r.Counter("runs") != r.Counter("runs") {
		t.Error("Counter not idempotent")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	// One observation per region: below first bound, exactly on each bound,
	// between bounds, and past the last bound (overflow).
	for _, v := range []int64{-5, 10, 11, 100, 101, 1000, 1001} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	got := map[int64]int64{}
	var overflow int64
	for _, b := range s.Buckets {
		if b.Overflow {
			overflow = b.Count
			continue
		}
		got[b.UpperBound] = b.Count
	}
	// v ≤ bound lands in the bucket: {-5,10}→10, {11,100}→100, {101,1000}→1000, {1001}→overflow.
	if got[10] != 2 || got[100] != 2 || got[1000] != 2 || overflow != 1 {
		t.Errorf("buckets = %v overflow = %d, want 10:2 100:2 1000:2 overflow:1", got, overflow)
	}
	if s.Min != -5 || s.Max != 1001 {
		t.Errorf("min/max = %d/%d, want -5/1001", s.Min, s.Max)
	}
	if s.Sum != -5+10+11+100+101+1000+1001 {
		t.Errorf("sum = %d", s.Sum)
	}
	if want := float64(s.Sum) / 7; s.Mean() != want {
		t.Errorf("mean = %g, want %g", s.Mean(), want)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{1000, 10, 100})
	h.Observe(50)
	s := r.Snapshot().Histograms["h"]
	if len(s.Buckets) != 1 || s.Buckets[0].UpperBound != 100 {
		t.Errorf("observation of 50 landed in %+v, want bucket le=100", s.Buckets)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("n").Inc()
				r.Histogram("lat", LatencyBuckets()).Observe(int64(id*perG + j))
				r.Gauge("last").Set(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if v := r.Counter("n").Value(); v != goroutines*perG {
		t.Errorf("counter = %d, want %d", v, goroutines*perG)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", s.Count, goroutines*perG)
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", inBuckets, s.Count)
	}
}

// TestSnapshotDuringUpdates pins the export-server contract: Snapshot runs
// while referee goroutines hammer the same metrics, stays race-free (run
// with -race), and every histogram snapshot satisfies Count == Σ bucket
// counts with sane aggregates even mid-update.
func TestSnapshotDuringUpdates(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perG = 5000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(writers)
	for i := 0; i < writers; i++ {
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("votes").Inc()
				r.Gauge("occupancy").Add(1)
				r.Gauge("occupancy").Add(-1)
				r.Histogram("apply_ns", LatencyBuckets()).Observe(int64(j%4096 + 1))
			}
		}(i)
	}
	// Scrape continuously until the writers finish.
	go func() { wg.Wait(); close(stop) }()
	var snaps int
	for {
		s := r.Snapshot()
		snaps++
		h := s.Histograms["apply_ns"]
		var inBuckets int64
		for _, b := range h.Buckets {
			inBuckets += b.Count
		}
		if inBuckets != h.Count {
			t.Fatalf("mid-update snapshot: buckets sum to %d, count %d", inBuckets, h.Count)
		}
		if h.Count > 0 {
			if h.Min < 1 || h.Max > 4096 {
				t.Fatalf("mid-update min/max = %d/%d", h.Min, h.Max)
			}
			if h.Sum < h.Count*h.Min {
				t.Fatalf("mid-update sum %d below count*min %d", h.Sum, h.Count*h.Min)
			}
		}
		if c := s.Counters["votes"]; c < 0 || c > writers*perG {
			t.Fatalf("mid-update counter = %d", c)
		}
		select {
		case <-stop:
			if snaps < 2 {
				t.Logf("only %d snapshots raced the writers", snaps)
			}
			final := r.Snapshot()
			if final.Counters["votes"] != writers*perG {
				t.Fatalf("final counter = %d, want %d", final.Counters["votes"], writers*perG)
			}
			if final.Histograms["apply_ns"].Count != writers*perG {
				t.Fatalf("final count = %d, want %d", final.Histograms["apply_ns"].Count, writers*perG)
			}
			if g := final.Gauges["occupancy"]; g != 0 {
				t.Fatalf("final gauge = %g, want 0 after balanced Add calls", g)
			}
			return
		default:
		}
	}
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sessions")
	g.Add(3)
	g.Add(-1)
	if v := g.Value(); v != 2 {
		t.Fatalf("gauge = %g, want 2", v)
	}
	g.Set(10)
	g.Add(0.5)
	if v := g.Value(); v != 10.5 {
		t.Fatalf("gauge = %g, want 10.5", v)
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

func TestHistogramSnapshotNil(t *testing.T) {
	var h *Histogram
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Histogram("h", []int64{10}).Observe(5)
	before := r.Snapshot()
	r.Counter("a").Add(2)
	r.Counter("b").Inc()
	r.Gauge("g").Set(9)
	r.Histogram("h", nil).Observe(20)
	d := r.Snapshot().Diff(before)
	if d.Counters["a"] != 2 || d.Counters["b"] != 1 {
		t.Errorf("counter diff = %v", d.Counters)
	}
	if d.Gauges["g"] != 9 {
		t.Errorf("gauge diff = %v", d.Gauges)
	}
	h := d.Histograms["h"]
	if h.Count != 1 || h.Sum != 20 {
		t.Errorf("histogram diff = %+v, want count 1 sum 20", h)
	}
	// Unchanged metrics are dropped.
	r2 := NewRegistry()
	r2.Counter("same").Add(7)
	s := r2.Snapshot()
	if d := s.Diff(s); len(d.Counters) != 0 || len(d.Histograms) != 0 {
		t.Errorf("self-diff not empty: %+v", d)
	}
}

func TestSnapshotLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(4)
	r.Counter("a.count").Add(1)
	lines := r.Snapshot().Lines()
	if len(lines) != 2 || lines[0] != "a.count = 1" || lines[1] != "z.count = 4" {
		t.Errorf("lines = %v", lines)
	}
}

func TestBucketScales(t *testing.T) {
	lat := LatencyBuckets()
	bytes := BytesBuckets()
	if len(lat) == 0 || len(bytes) == 0 {
		t.Fatal("empty bucket scales")
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Errorf("latency buckets not increasing at %d", i)
		}
	}
	if bytes[0] != 16 || bytes[len(bytes)-1] != 16<<20 {
		t.Errorf("bytes buckets span [%d, %d]", bytes[0], bytes[len(bytes)-1])
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{10})
	s := r.Snapshot().Histograms["h"]
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty histogram snapshot = %+v", s)
	}
	if math.IsNaN(s.Mean()) || s.Mean() != 0 {
		t.Errorf("empty mean = %g", s.Mean())
	}
}
