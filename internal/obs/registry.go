// Package obs is the repository's zero-dependency telemetry layer: a
// concurrency-safe metrics registry (counters, gauges, bucketed
// histograms), a structured JSONL run journal, and run-provenance
// collection. Every entry point is nil-safe — a nil *Registry, *Journal or
// *Recorder turns the corresponding instrumentation into a no-op — so hot
// paths (the zeroround trial pool, the simnet coordinator) can stay
// instrumented unconditionally and pay nothing when telemetry is disabled.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (which may be negative), atomically with
// respect to concurrent Add and Set calls.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket int64 histogram. Bounds are inclusive upper
// bounds; an observation v lands in the first bucket with v ≤ bound, or in
// the implicit overflow bucket past the last bound. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	min    atomic.Int64 // sentinel math.MaxInt64 until first observation lands
	max    atomic.Int64 // sentinel math.MinInt64 until first observation lands
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Sum, min and max are updated before the bucket
// count so that a concurrent Snapshot that counts an observation also sees
// its contribution to the aggregates (Go atomics are sequentially
// consistent).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
}

// Snapshot captures the histogram's current state. It is safe against
// concurrent Observe calls: Count is derived from the bucket counts, so the
// invariant Count == Σ buckets (the Prometheus "+Inf" rule) holds in every
// snapshot, and sum/min/max cover at least every counted observation. A nil
// histogram yields an empty snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	// Read the buckets before the aggregates: Observe orders its aggregate
	// writes before the bucket increment, so every observation counted here
	// has already published its sum/min/max contribution by the time the
	// loads below run.
	s := HistogramSnapshot{Buckets: make([]Bucket, 0, len(h.counts))}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		s.Count += n
		b := Bucket{Count: n}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		} else {
			b.UpperBound = math.MaxInt64
			b.Overflow = true
		}
		s.Buckets = append(s.Buckets, b)
	}
	s.Sum = h.sum.Load()
	if min, max := h.min.Load(), h.max.Load(); s.Count > 0 && min != math.MaxInt64 && max != math.MinInt64 {
		s.Min = min
		s.Max = max
	}
	return s
}

// LatencyBuckets returns exponential duration bounds in nanoseconds, from
// 1µs to ~68s in powers of four — the scale of per-trial and per-experiment
// timings.
func LatencyBuckets() []int64 {
	out := make([]int64, 0, 13)
	for v := int64(1000); v <= int64(68e9); v *= 4 {
		out = append(out, v)
	}
	return out
}

// BytesBuckets returns exponential size bounds in bytes, from 16B to 16MB
// in powers of four — the scale of message payloads and traffic volumes.
func BytesBuckets() []int64 {
	out := make([]int64, 0, 11)
	for v := int64(16); v <= int64(16<<20); v *= 4 {
		out = append(out, v)
	}
	return out
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry. A nil *Registry is a valid disabled registry: every lookup
// returns a nil metric whose methods no-op.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; Overflow marks the
	// catch-all bucket past the largest bound.
	UpperBound int64 `json:"le"`
	Overflow   bool  `json:"overflow,omitempty"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time. Only non-empty
// buckets are recorded.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry's metrics, suitable for
// JSON encoding and for diffing against an earlier snapshot.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty snapshot. Snapshot is safe to call while other goroutines update
// metrics — the export server scrapes a live referee this way — and every
// histogram in the result satisfies Count == Σ bucket counts even mid-update.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Diff returns the change from earlier to s: counters and histogram
// count/sum/buckets subtract; gauges, histogram min and max keep s's values
// (they are window observations, not monotone accumulators). Metrics absent
// from earlier appear with their full value.
func (s Snapshot) Diff(earlier Snapshot) Snapshot {
	var d Snapshot
	for name, v := range s.Counters {
		if dv := v - earlier.Counters[name]; dv != 0 {
			if d.Counters == nil {
				d.Counters = map[string]int64{}
			}
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		if d.Gauges == nil {
			d.Gauges = map[string]float64{}
		}
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		prev := earlier.Histograms[name]
		if h.Count == prev.Count {
			continue
		}
		dh := HistogramSnapshot{
			Count: h.Count - prev.Count,
			Sum:   h.Sum - prev.Sum,
			Min:   h.Min,
			Max:   h.Max,
		}
		prevBuckets := map[int64]int64{}
		for _, b := range prev.Buckets {
			prevBuckets[b.UpperBound] = b.Count
		}
		for _, b := range h.Buckets {
			if n := b.Count - prevBuckets[b.UpperBound]; n != 0 {
				dh.Buckets = append(dh.Buckets, Bucket{UpperBound: b.UpperBound, Overflow: b.Overflow, Count: n})
			}
		}
		if d.Histograms == nil {
			d.Histograms = map[string]HistogramSnapshot{}
		}
		d.Histograms[name] = dh
	}
	return d
}

// Empty reports whether the snapshot holds no metrics.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Lines renders the snapshot as sorted "name = value" strings, for
// attaching metric deltas to experiment table notes.
func (s Snapshot) Lines() []string {
	var out []string
	for name, v := range s.Counters {
		out = append(out, fmt.Sprintf("%s = %d", name, v))
	}
	for name, v := range s.Gauges {
		out = append(out, fmt.Sprintf("%s = %.4g", name, v))
	}
	for name, h := range s.Histograms {
		out = append(out, fmt.Sprintf("%s = {n: %d, mean: %.4g, max: %d}", name, h.Count, h.Mean(), h.Max))
	}
	sort.Strings(out)
	return out
}
