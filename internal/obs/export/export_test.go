package export

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/unifdist/unifdist/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestWriteMetricsFormat(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cluster.votes").Add(42)
	r.Gauge("cluster.sessions_open").Set(3)
	h := r.Histogram("apply_ns.vote", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // overflow

	var b strings.Builder
	WriteMetrics(&b, r.Snapshot())
	out := b.String()

	for _, want := range []string{
		"# TYPE cluster_votes counter\ncluster_votes 42\n",
		"# TYPE cluster_sessions_open gauge\ncluster_sessions_open 3\n",
		"# TYPE apply_ns_vote histogram\n",
		"apply_ns_vote_bucket{le=\"10\"} 1\n",
		"apply_ns_vote_bucket{le=\"100\"} 2\n",
		"apply_ns_vote_bucket{le=\"+Inf\"} 3\n",
		"apply_ns_vote_sum 5055\n",
		"apply_ns_vote_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone: the raw overflow bucket is folded
	// into +Inf, never emitted as a numeric le.
	if strings.Contains(out, "9223372036854775807") {
		t.Errorf("overflow bucket leaked a numeric bound:\n%s", out)
	}
}

// TestWriteMetricsLabels pins the ";key=value" label convention: labeled
// series render as Prometheus labels, variants of a family share exactly
// one # TYPE line, and the whole page parses as text exposition format.
func TestWriteMetricsLabels(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("svc.frames;session=0").Add(7)
	r.Counter("svc.frames;session=1").Add(9)
	r.Counter("cluster.votes;session=1").Add(4)
	r.Counter("cluster.votes").Add(1) // unlabeled sibling of a labeled family
	r.Gauge("svc.queue_depth;session=0").Set(2)
	r.Gauge("agg.fanin;session=1;tier=2").Set(8)
	r.Histogram("apply_ns.vote;session=1", []int64{10}).Observe(5)
	r.Counter("weird;notalabel").Add(1) // unparseable suffix: sanitized whole

	var b strings.Builder
	WriteMetrics(&b, r.Snapshot())
	out := b.String()

	for _, want := range []string{
		"svc_frames{session=\"0\"} 7\n",
		"svc_frames{session=\"1\"} 9\n",
		"cluster_votes 1\n",
		"cluster_votes{session=\"1\"} 4\n",
		"svc_queue_depth{session=\"0\"} 2\n",
		"agg_fanin{session=\"1\",tier=\"2\"} 8\n",
		"apply_ns_vote_bucket{session=\"1\",le=\"10\"} 1\n",
		"apply_ns_vote_bucket{session=\"1\",le=\"+Inf\"} 1\n",
		"apply_ns_vote_sum{session=\"1\"} 5\n",
		"weird_notalabel 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, out)
		}
	}
	// One TYPE line per family, label variants included.
	for fam, want := range map[string]int{
		"# TYPE svc_frames counter\n":    1,
		"# TYPE cluster_votes counter\n": 1,
	} {
		if got := strings.Count(out, fam); got != want {
			t.Errorf("%q appears %d times, want %d\n---\n%s", fam, got, want, out)
		}
	}
	// Every line must be valid exposition format.
	series := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9eE.+Inf]+$`)
	typeLine := regexp.MustCompile(`^# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|histogram)$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !series.MatchString(line) && !typeLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"cluster.votes":      "cluster_votes",
		"peer-3/recv":        "peer_3_recv",
		"ok_name":            "ok_name",
		"0starts_with_digit": "_0starts_with_digit",
		"apply_ns.vote":      "apply_ns_vote",
	} {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cluster.votes").Add(7)
	doc := map[string]any{"seed": 42, "trials": 60}
	s := New(r, WithRunz(func() any { return doc }))
	h := s.Handler()

	if code, body := get(t, h, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "cluster_votes 7") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body := get(t, h, "/runz")
	if code != 200 || !strings.Contains(body, "\"seed\": 42") {
		t.Errorf("/runz = %d %q", code, body)
	}
	if code, _ := get(t, h, "/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestRunzWithoutDocumentIs404(t *testing.T) {
	s := New(obs.NewRegistry())
	if code, _ := get(t, s.Handler(), "/runz"); code != http.StatusNotFound {
		t.Errorf("/runz without doc = %d, want 404", code)
	}
}

func TestNilRegistryMetricsEmpty(t *testing.T) {
	s := New(nil)
	if code, body := get(t, s.Handler(), "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics on nil registry = %d %q", code, body)
	}
}

func TestRateGauge(t *testing.T) {
	r := obs.NewRegistry()
	s := New(r, WithRate("cluster.votes"))
	h := s.Handler()

	r.Counter("cluster.votes").Add(1000)
	time.Sleep(20 * time.Millisecond) // clear the 10ms stable-rate floor
	if _, body := get(t, h, "/metrics"); !strings.Contains(body, "cluster_votes_per_sec") {
		t.Fatalf("first scrape missing rate gauge:\n%s", body)
	}
	if v := r.Gauge("cluster.votes_per_sec").Value(); v <= 0 {
		t.Fatalf("first-scrape rate = %g, want > 0", v)
	}

	// A second scrape after more votes must yield a fresh positive rate.
	r.Counter("cluster.votes").Add(500)
	time.Sleep(20 * time.Millisecond)
	get(t, h, "/metrics")
	if v := r.Gauge("cluster.votes_per_sec").Value(); v <= 0 {
		t.Fatalf("second-scrape rate = %g, want > 0", v)
	}
}

func TestStartServesOverTCP(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("n").Inc()
	s := New(r)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", s.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "n 1") {
		t.Errorf("GET /metrics = %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
