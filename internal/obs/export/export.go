// Package export serves live telemetry over HTTP: /metrics renders the
// obs.Registry in Prometheus text exposition format, /healthz answers
// liveness probes, /runz publishes the caller's run document as JSON, and
// net/http/pprof is mounted for on-demand profiling. The server only reads
// — it snapshots the registry at scrape time and never feeds anything back
// into the run — so attaching it cannot perturb verdicts.
//
// Rates (votes/sec and friends) are derived here, at scrape time, from
// counter deltas between scrapes. That keeps wall-clock reads off the
// referee hot path: the referee only increments counters; this package owns
// the clock.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/unifdist/unifdist/internal/obs"
)

// Server exposes a registry (and optionally a run document) over HTTP. Use
// New + Start; the zero value is not usable.
type Server struct {
	reg  *obs.Registry
	runz func() any

	mu    sync.Mutex
	rates []string
	last  map[string]rateState
	start time.Time

	httpSrv *http.Server
	l       net.Listener
}

type rateState struct {
	value int64
	at    time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithRunz publishes fn's result as JSON at /runz. fn is called per request
// and must be safe for concurrent use.
func WithRunz(fn func() any) Option {
	return func(s *Server) { s.runz = fn }
}

// WithRate derives a gauge named counter+"_per_sec" from the named counter
// at each /metrics scrape: delta since the previous scrape divided by the
// elapsed wall time. The first scrape uses server start as the baseline, so
// the rate is live from the first request.
func WithRate(counter string) Option {
	return func(s *Server) { s.rates = append(s.rates, counter) }
}

// New builds a server over reg. A nil registry is allowed and renders an
// empty /metrics page.
func New(reg *obs.Registry, opts ...Option) *Server {
	s := &Server{
		reg:   reg,
		last:  map[string]rateState{},
		start: time.Now(), //unifvet:allow wallclock rate baseline for the first scrape
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the server's HTTP mux: /metrics, /healthz, /runz and the
// pprof endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/runz", s.serveRunz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.reg.Snapshot()
	s.updateRates(snap)
	// Re-snapshot so the derived rate gauges appear in this scrape, not the
	// next one.
	if len(s.rates) > 0 {
		snap = s.reg.Snapshot()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, snap)
}

// updateRates sets the <counter>_per_sec gauges from counter deltas.
func (s *Server) updateRates(snap obs.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now() //unifvet:allow wallclock scrape-time rate derivation is observability-only
	for _, name := range s.rates {
		cur := snap.Counters[name]
		prev, ok := s.last[name]
		if !ok {
			// First scrape: rate over the server's lifetime so far.
			prev = rateState{value: 0, at: s.start}
		}
		dt := now.Sub(prev.at)
		if dt < 10*time.Millisecond {
			continue // too close to the previous scrape for a stable rate
		}
		s.reg.Gauge(name + "_per_sec").Set(float64(cur-prev.value) / dt.Seconds())
		s.last[name] = rateState{value: cur, at: now}
	}
}

func (s *Server) serveRunz(w http.ResponseWriter, _ *http.Request) {
	if s.runz == nil {
		http.Error(w, "no run document attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.runz()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Start listens on addr (host:port; port 0 picks a free port) and serves in
// a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("export: listen %s: %w", addr, err)
	}
	s.l = l
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.httpSrv.Serve(l) }()
	return l.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.l == nil {
		return ""
	}
	return s.l.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// WriteMetrics renders a snapshot in Prometheus text exposition format.
// Metric names are sanitized (dots and dashes become underscores) and
// emitted in sorted order; histogram buckets are converted from the
// registry's per-bucket counts to Prometheus cumulative "le" counts.
//
// Registry names may carry a label suffix in the form
// "base;key=value;key2=value2" (the multi-tenant session service labels
// per-session series as "svc.frames;session=3"). Labeled series render
// as base{key="value"}, the base becomes the metric family, and one
// # TYPE line is emitted per family — label variants of a family share
// it, as the exposition format requires. A suffix that does not parse
// (a ';' with no '=') falls back to sanitizing the whole name, which is
// what every release before label support did.
func WriteMetrics(w io.Writer, s obs.Snapshot) {
	counters := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counters = append(counters, name)
	}
	sort.Strings(counters)
	lastFam := ""
	for _, name := range counters {
		fam, labels := promSeries(name)
		if fam != lastFam {
			fmt.Fprintf(w, "# TYPE %s counter\n", fam)
			lastFam = fam
		}
		fmt.Fprintf(w, "%s%s %d\n", fam, labels, s.Counters[name])
	}

	gauges := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	sort.Strings(gauges)
	lastFam = ""
	for _, name := range gauges {
		fam, labels := promSeries(name)
		if fam != lastFam {
			fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
			lastFam = fam
		}
		fmt.Fprintf(w, "%s%s %g\n", fam, labels, s.Gauges[name])
	}

	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	lastFam = ""
	for _, name := range hists {
		fam, labels := promSeries(name)
		if fam != lastFam {
			fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
			lastFam = fam
		}
		h := s.Histograms[name]
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Overflow {
				continue // folded into the +Inf bucket below
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", fam, withLabel(labels, "le", fmt.Sprintf("%d", b.UpperBound)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam, withLabel(labels, "le", "+Inf"), h.Count)
		fmt.Fprintf(w, "%s_sum%s %d\n", fam, labels, h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", fam, labels, h.Count)
	}
}

// promSeries splits a registry name into its Prometheus family and
// rendered label block: "svc.frames;session=3" → ("svc_frames",
// `{session="3"}`). Names without a parseable ";key=value" suffix return
// the fully sanitized name and no labels.
func promSeries(name string) (fam, labels string) {
	i := strings.IndexByte(name, ';')
	if i <= 0 {
		return Sanitize(name), ""
	}
	var parts []string
	for _, seg := range strings.Split(name[i+1:], ";") {
		eq := strings.IndexByte(seg, '=')
		if eq <= 0 {
			return Sanitize(name), ""
		}
		parts = append(parts, fmt.Sprintf("%s=%q", Sanitize(seg[:eq]), seg[eq+1:]))
	}
	return Sanitize(name[:i]), "{" + strings.Join(parts, ",") + "}"
}

// withLabel merges one more label pair into a rendered label block.
func withLabel(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// Sanitize maps a registry metric name onto the Prometheus name charset.
func Sanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
