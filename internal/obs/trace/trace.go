// Package trace is a minimal span-based tracer layered on the obs journal.
// Spans record what happened when — node sample draws, frame writes, referee
// applies, verdicts — as JSONL records causally linked by parent span IDs,
// so one cluster run yields a tree from NodeClient sample to final verdict
// even when the spans are emitted by different processes.
//
// Design constraints, in priority order:
//
//   - Verdict invariance. Tracing observes; it never influences control
//     flow. No method returns data a caller could branch on (timing stays
//     inside the emitted records), and every entry point is nil-safe, so
//     instrumented code behaves identically with tracing on or off.
//   - Deterministic identity. Span IDs that cross process boundaries are
//     derived from run coordinates (trace ID, trial, node) via Derive, not
//     drawn from randomness, so the same run produces the same span graph
//     and both ends of a wire frame agree on the ID without negotiation.
//   - Wall-clock honesty. Span timestamps are real time.Now observations —
//     this package is the one legitimate wall-clock site in the obs layer,
//     and the wallclock analyzer allowlists exactly this import path.
package trace

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"github.com/unifdist/unifdist/internal/obs"
)

// ID is a 64-bit span or trace identifier, rendered as 16 hex digits. The
// zero ID means "absent".
type ID uint64

// String renders the ID as fixed-width lowercase hex.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalText renders the ID for JSON/text encoding.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText parses the fixed-width hex form.
func (id *ID) UnmarshalText(b []byte) error {
	var v uint64
	if _, err := fmt.Sscanf(string(b), "%016x", &v); err != nil {
		return fmt.Errorf("trace: bad ID %q: %w", b, err)
	}
	*id = ID(v)
	return nil
}

// Context identifies a position in a trace: the run-wide trace ID plus one
// span within it. The zero Context means "untraced".
type Context struct {
	Trace ID
	Span  ID
}

// IsZero reports whether the context is absent.
func (c Context) IsZero() bool { return c.Trace == 0 }

// Derive maps a name plus integer coordinates to a deterministic nonzero
// ID via FNV-1a. Both ends of a wire connection can derive the same span ID
// from shared run coordinates (seed, trial, node) without exchanging state.
func Derive(name string, parts ...uint64) ID {
	h := fnv.New64a()
	h.Write([]byte(name))
	var buf [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			buf[i] = byte(p >> (8 * (7 - i)))
		}
		h.Write(buf[:])
	}
	v := h.Sum64()
	if v == 0 {
		v = 1 // keep derived IDs out of the "absent" value
	}
	return ID(v)
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer emits span records into an obs journal. A nil *Tracer disables
// tracing: Start returns a nil *Span whose methods no-op, so callers thread
// a tracer unconditionally.
type Tracer struct {
	j     *obs.Journal
	trace ID
	seq   atomic.Uint64
}

// New returns a tracer writing to j under the given trace ID, or nil (a
// disabled tracer) when j is nil or the trace ID is zero.
func New(j *obs.Journal, trace ID) *Tracer {
	if j == nil || trace == 0 {
		return nil
	}
	return &Tracer{j: j, trace: trace}
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Trace returns the run-wide trace ID (zero when disabled).
func (t *Tracer) Trace() ID {
	if t == nil {
		return 0
	}
	return t.trace
}

// Start opens a span with a fresh process-local ID. The parent may be the
// zero Context for a root span. End must be called to record it.
func (t *Tracer) Start(name string, parent Context, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	// Process-local IDs come from a sequence, offset into the trace ID's
	// space so two tracers in one process don't collide.
	id := Derive("local", uint64(t.trace), t.seq.Add(1))
	return t.start(name, id, parent, attrs)
}

// StartID opens a span with a caller-derived ID (see Derive), letting the
// two ends of a wire connection agree on the span identity.
func (t *Tracer) StartID(name string, id ID, parent Context, attrs ...Attr) *Span {
	if t == nil || id == 0 {
		return nil
	}
	return t.start(name, id, parent, attrs)
}

func (t *Tracer) start(name string, id ID, parent Context, attrs []Attr) *Span {
	s := &Span{
		t:      t,
		name:   name,
		ctx:    Context{Trace: t.trace, Span: id},
		parent: parent.Span,
		start:  time.Now(),
	}
	if len(attrs) > 0 {
		s.attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			s.attrs[a.Key] = a.Value
		}
	}
	return s
}

// Span is one in-flight span. A nil *Span no-ops every method.
type Span struct {
	t      *Tracer
	name   string
	ctx    Context
	parent ID
	start  time.Time
	attrs  map[string]any
}

// Context returns the span's trace position, for propagation into wire
// frames or child spans. Zero on a nil span.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// Annotate adds attributes to the span before End.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.attrs[a.Key] = a.Value
	}
}

// spanRecord is the JSONL shape of a completed span.
type spanRecord struct {
	Kind    string         `json:"kind"`
	Name    string         `json:"name"`
	Trace   ID             `json:"trace"`
	Span    ID             `json:"span"`
	Parent  ID             `json:"parent,omitempty"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// End records the span to the journal.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.j.Write(spanRecord{
		Kind:    "span",
		Name:    s.name,
		Trace:   s.ctx.Trace,
		Span:    s.ctx.Span,
		Parent:  s.parent,
		StartNS: s.start.UnixNano(),
		DurNS:   int64(time.Since(s.start)),
		Attrs:   s.attrs,
	})
}
