package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"github.com/unifdist/unifdist/internal/obs"
)

func TestNilTracerIsFullyDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Trace() != 0 {
		t.Fatal("nil tracer has a trace ID")
	}
	s := tr.Start("x", Context{}, A("k", 1))
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// All span methods must no-op on nil.
	s.Annotate(A("k", 2))
	s.End()
	if !s.Context().IsZero() {
		t.Fatal("nil span has a context")
	}
	if New(nil, 7) != nil {
		t.Fatal("New with nil journal should disable")
	}
	if New(obs.NewJournal(&bytes.Buffer{}), 0) != nil {
		t.Fatal("New with zero trace ID should disable")
	}
}

func TestDeriveDeterministicAndNonzero(t *testing.T) {
	a := Derive("node.sample", 1, 2, 3)
	b := Derive("node.sample", 1, 2, 3)
	if a != b {
		t.Fatalf("Derive not deterministic: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("Derive returned the absent ID")
	}
	if Derive("node.sample", 1, 2, 4) == a {
		t.Fatal("Derive ignored a coordinate")
	}
	if Derive("node.send", 1, 2, 3) == a {
		t.Fatal("Derive ignored the name")
	}
}

func TestIDTextRoundTrip(t *testing.T) {
	id := ID(0xdeadbeef01)
	b, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "000000deadbeef01" {
		t.Fatalf("MarshalText = %q", b)
	}
	var back ID
	if err := back.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip: %v != %v", back, id)
	}
	if err := back.UnmarshalText([]byte("zz")); err == nil {
		t.Fatal("UnmarshalText accepted garbage")
	}
}

func TestSpansLinkAndSerialize(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	tr := New(j, Derive("run", 42))
	if !tr.Enabled() {
		t.Fatal("tracer disabled")
	}

	root := tr.Start("session", Context{}, A("seed", 42))
	child := tr.StartID("trial", Derive("trial", uint64(tr.Trace()), 3), root.Context())
	child.Annotate(A("trial", 3))
	child.End()
	root.End()

	type rec struct {
		Kind   string         `json:"kind"`
		Name   string         `json:"name"`
		Trace  string         `json:"trace"`
		Span   string         `json:"span"`
		Parent string         `json:"parent"`
		StartN int64          `json:"start_ns"`
		DurNS  *int64         `json:"dur_ns"`
		Attrs  map[string]any `json:"attrs"`
	}
	var recs []rec
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Spans are recorded at End, so the child lands first.
	if recs[0].Name != "trial" || recs[1].Name != "session" {
		t.Fatalf("record order: %q, %q", recs[0].Name, recs[1].Name)
	}
	for _, r := range recs {
		if r.Kind != "span" {
			t.Fatalf("kind = %q", r.Kind)
		}
		if r.Trace != tr.Trace().String() {
			t.Fatalf("trace = %q, want %q", r.Trace, tr.Trace())
		}
		if r.DurNS == nil {
			t.Fatal("dur_ns missing")
		}
	}
	if recs[0].Parent != recs[1].Span {
		t.Fatalf("child parent %q does not link to root span %q", recs[0].Parent, recs[1].Span)
	}
	if recs[1].Parent != "" {
		t.Fatalf("root span has parent %q", recs[1].Parent)
	}
	if v, ok := recs[0].Attrs["trial"].(float64); !ok || v != 3 {
		t.Fatalf("child attrs = %v", recs[0].Attrs)
	}
	// The wire-derivable span ID must match an independent derivation.
	if recs[0].Span != Derive("trial", uint64(tr.Trace()), 3).String() {
		t.Fatalf("derived span ID mismatch: %q", recs[0].Span)
	}
}

func TestStartIDRejectsZero(t *testing.T) {
	tr := New(obs.NewJournal(&bytes.Buffer{}), 5)
	if s := tr.StartID("x", 0, Context{}); s != nil {
		t.Fatal("StartID(0) returned a live span")
	}
}
