package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal writes structured events as JSON Lines: one self-contained JSON
// object per line, in write order. It is safe for concurrent use, and a
// nil *Journal discards every event, so callers can thread a journal
// unconditionally and only pay when one is attached.
//
// Encoding errors are sticky: the first error is retained (see Err) and
// subsequent writes become no-ops, so a full disk cannot corrupt a run.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	enc    *json.Encoder
	closer io.Closer
	err    error
}

// NewJournal wraps w as a JSONL event sink.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, enc: json.NewEncoder(w)}
}

// OpenJournal creates (or truncates) a file-backed journal at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	j := NewJournal(f)
	j.closer = f
	return j, nil
}

// Write appends one event as a JSON line. Events should be structs with
// json tags and a leading "kind" discriminator field so consumers can
// demultiplex lines without schema knowledge.
func (j *Journal) Write(event any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(event); err != nil {
		j.err = fmt.Errorf("obs: journal write: %w", err)
	}
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close releases a file-backed journal and returns any sticky write error.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		if cerr := j.closer.Close(); cerr != nil && j.err == nil {
			j.err = cerr
		}
		j.closer = nil
	}
	return j.err
}

// Recorder bundles the telemetry sinks threaded through a run: a metrics
// registry and an event journal, either of which may be nil (disabled). A
// nil *Recorder disables both.
type Recorder struct {
	Registry *Registry
	Journal  *Journal
}

// Reg returns the recorder's registry (nil when disabled).
func (r *Recorder) Reg() *Registry {
	if r == nil {
		return nil
	}
	return r.Registry
}

// Jour returns the recorder's journal (nil when disabled). Like Reg, it is
// safe on a nil receiver — callers must use it instead of reading the
// Journal field directly (enforced by the obsnil analyzer).
func (r *Recorder) Jour() *Journal {
	if r == nil {
		return nil
	}
	return r.Journal
}

// Log writes one event to the recorder's journal (no-op when disabled).
func (r *Recorder) Log(event any) {
	if r == nil {
		return
	}
	r.Journal.Write(event)
}

// Enabled reports whether any sink is attached.
func (r *Recorder) Enabled() bool {
	return r != nil && (r.Registry != nil || r.Journal != nil)
}
