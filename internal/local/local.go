package local

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/simnet"
	"github.com/unifdist/unifdist/internal/zeroround"
)

// Params holds the resolved parameters of the LOCAL tester of Section 6.
type Params struct {
	// N, K are the domain and network sizes; Eps the distance parameter;
	// P the target error probability.
	N, K int
	Eps  float64
	P    float64
	// R is the gathering radius: the MIS is computed on G^R and each MIS
	// node collects the samples of (at least) its R/2-neighborhood.
	R int
	// VirtualNodes is the planned number of MIS nodes ⌊2k/R⌋ (an upper
	// bound; the realized count depends on the topology).
	VirtualNodes int
	// AND is the 0-round AND-rule configuration the virtual nodes run.
	AND zeroround.ANDConfig
	// Feasible reports whether the AND configuration's per-node sample
	// demand fits in the guaranteed R/2 samples per MIS node.
	Feasible bool
}

// SolveLocal finds the smallest radius r such that the 0-round AND tester
// over ⌊2k/r⌋ virtual nodes with r/2 samples each reaches error p — the
// paper's self-referential definition of r in Section 6.
func SolveLocal(n, k int, eps, p float64) (Params, error) {
	if k < 1 {
		return Params{}, fmt.Errorf("local: k=%d < 1", k)
	}
	// A radius beyond k−1 adds nothing on a connected graph (G^r is already
	// complete), so the scan is capped at k.
	maxR := k
	if maxR < 2 {
		maxR = 2
	}
	var radii []int
	for r := 2; r < maxR; r *= 2 {
		radii = append(radii, r, r+r/2)
	}
	radii = append(radii, maxR)

	var (
		bestCovered Params
		covered     bool
		last        Params
	)
	for _, rr := range radii {
		if rr > maxR {
			continue
		}
		ell := 2 * k / rr
		if ell < 1 {
			ell = 1
		}
		cfg, err := zeroround.SolveAND(n, ell, eps, p)
		if err != nil {
			continue
		}
		pp := Params{
			N:            n,
			K:            k,
			Eps:          eps,
			P:            p,
			R:            rr,
			VirtualNodes: ell,
			AND:          cfg,
			Feasible:     cfg.Feasible && cfg.SamplesPerNode <= rr/2,
		}
		last = pp
		if pp.Feasible {
			return pp, nil
		}
		if !covered && cfg.SamplesPerNode <= rr/2 {
			// Sample demand fits in the guaranteed r/2 even though the AND
			// configuration itself is best-effort.
			bestCovered = pp
			covered = true
		}
	}
	if covered {
		return bestCovered, nil
	}
	if last.R == 0 {
		return Params{}, fmt.Errorf("local: no parameters for n=%d k=%d eps=%v", n, k, eps)
	}
	return last, nil
}

// Result reports a LOCAL uniformity execution.
type Result struct {
	// Accept is the network's AND-rule verdict.
	Accept bool
	// GRounds is the total cost in G-rounds: R × (MIS rounds on G^R) for
	// Luby plus 2R+1 rounds of beaconing and routing.
	GRounds int
	// MISNodes is the number of virtual nodes (MIS vertices of G^R).
	MISNodes int
	// MinSamples and MaxSamples are the per-MIS-node collected sample
	// counts (including the MIS node's own sample).
	MinSamples, MaxSamples int
	// Rejecting is the number of virtual nodes that voted reject.
	Rejecting int
}

// RunUniformity executes the Section 6 protocol on g: tokens[v] is node
// v's sample. The MIS is computed distributively on G^p.R, samples are
// routed to MIS nodes by beacon gradients, and each MIS node votes with the
// m-repetition collision tester; the network accepts iff all votes accept.
func RunUniformity(g *graph.Graph, tokens []uint64, p Params, seed uint64) (Result, error) {
	if len(tokens) != g.N() {
		return Result{}, fmt.Errorf("local: %d tokens for %d nodes", len(tokens), g.N())
	}
	per := make([][]uint64, len(tokens))
	for v, tok := range tokens {
		per[v] = []uint64{tok}
	}
	return runUniformity(g, per, p, seed)
}

// runUniformity is the shared implementation over per-node sample sets.
func runUniformity(g *graph.Graph, tokensPerNode [][]uint64, p Params, seed uint64) (Result, error) {
	if p.R < 1 {
		return Result{}, fmt.Errorf("local: radius %d < 1", p.R)
	}
	// A radius beyond k−1 is equivalent to k−1 on a connected graph.
	radius := p.R
	if radius >= g.N() && g.N() > 1 {
		radius = g.N() - 1
	}
	power := g.Power(radius)
	mis, err := LubyMIS(power, seed)
	if err != nil {
		return Result{}, err
	}
	if err := VerifyMIS(power, mis.InMIS); err != nil {
		return Result{}, err
	}

	collected, gatherRounds, err := gather(g, tokensPerNode, mis.InMIS, radius, seed^0x9e3779b97f4a7c15)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Accept:     true,
		GRounds:    radius*mis.Rounds + gatherRounds,
		MinSamples: math.MaxInt,
	}
	for v := range mis.InMIS {
		if !mis.InMIS[v] {
			continue
		}
		res.MISNodes++
		samples := collected[v]
		if len(samples) < res.MinSamples {
			res.MinSamples = len(samples)
		}
		if len(samples) > res.MaxSamples {
			res.MaxSamples = len(samples)
		}
		if !virtualVote(p.N, p.AND.M, samples) {
			res.Rejecting++
			res.Accept = false
		}
	}
	if res.MISNodes == 0 {
		return Result{}, fmt.Errorf("local: empty MIS")
	}
	if res.MinSamples == math.MaxInt {
		res.MinSamples = 0
	}
	return res, nil
}

// RunUniformityOnDistribution draws one sample per node from d and runs the
// protocol.
func RunUniformityOnDistribution(g *graph.Graph, d dist.Distribution, p Params, r *rng.RNG) (Result, error) {
	tokens := make([]uint64, g.N())
	for v := range tokens {
		tokens[v] = uint64(d.Sample(r))
	}
	return RunUniformity(g, tokens, p, r.Uint64())
}

// RunUniformityMulti is RunUniformity with s ≥ 0 samples per node (the
// paper's "this is not essential" remark on the one-sample assumption):
// node v routes every sample in tokensPerNode[v] to its MIS node.
func RunUniformityMulti(g *graph.Graph, tokensPerNode [][]uint64, p Params, seed uint64) (Result, error) {
	if len(tokensPerNode) != g.N() {
		return Result{}, fmt.Errorf("local: %d token sets for %d nodes", len(tokensPerNode), g.N())
	}
	return runUniformity(g, tokensPerNode, p, seed)
}

// virtualVote runs the m-repetition single-collision tester on a virtual
// node's collected samples: split into m equal blocks and reject iff every
// block contains a collision. Nodes with too few samples to form 2-sample
// blocks accept (they carry no signal).
func virtualVote(n, m int, samples []uint64) bool {
	if m < 1 {
		m = 1
	}
	block := len(samples) / m
	if block < 2 {
		return true
	}
	for i := 0; i < m; i++ {
		if !blockHasCollision(samples[i*block : (i+1)*block]) {
			return true
		}
	}
	return false
}

func blockHasCollision(block []uint64) bool {
	seen := make(map[uint64]struct{}, len(block))
	for _, v := range block {
		if _, ok := seen[v]; ok {
			return true
		}
		seen[v] = struct{}{}
	}
	return false
}

// Beacon/routing message types.
const (
	gatherMsgBeacon byte = iota + 1
	gatherMsgSamples
)

// gather routes every node's token to its nearest MIS node (ties broken by
// lowest MIS ID) using R rounds of beacon flooding followed by R+1 rounds
// of gradient routing. It returns the samples collected per MIS node and
// the number of simulator rounds used.
func gather(g *graph.Graph, tokensPerNode [][]uint64, inMIS []bool, r int, seed uint64) (map[int][]uint64, int, error) {
	nodes := make([]simnet.Node, g.N())
	impls := make([]*gatherNode, g.N())
	for v := range nodes {
		impls[v] = &gatherNode{
			radius: r,
			inMIS:  inMIS[v],
			tokens: tokensPerNode[v],
		}
		nodes[v] = impls[v]
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{Seed: seed})
	if err != nil {
		return nil, 0, fmt.Errorf("local: gather: %w", err)
	}
	collected := make(map[int][]uint64)
	for v, nd := range impls {
		if nd.lost {
			return nil, 0, fmt.Errorf("local: node %d found no MIS node within radius", v)
		}
		if nd.inMIS {
			collected[v] = nd.collected
		} else if len(nd.pendingOut) > 0 {
			return nil, 0, fmt.Errorf("local: node %d still holds %d undelivered samples", v, len(nd.pendingOut))
		}
	}
	return collected, stats.Rounds, nil
}

// beaconEntry tracks the best known route to one MIS node.
type beaconEntry struct {
	dist int
	port int
}

// pendingSample is a sample in transit to an MIS node.
type pendingSample struct {
	mis   int
	value uint64
}

// gatherNode floods MIS beacons for radius rounds, then routes samples
// along the beacon gradients for radius+1 rounds. LOCAL messages aggregate
// arbitrarily many entries.
type gatherNode struct {
	ctx        *simnet.Context
	radius     int
	inMIS      bool
	tokens     []uint64
	round      int
	routes     map[int]beaconEntry // MIS id → best route
	fresh      []int               // MIS ids learned this round (to re-flood)
	collected  []uint64
	pendingOut []pendingSample
	sent       bool
	lost       bool
}

// Init implements simnet.Node.
func (nd *gatherNode) Init(ctx *simnet.Context) {
	nd.ctx = ctx
	nd.routes = make(map[int]beaconEntry)
	if nd.inMIS {
		nd.collected = append([]uint64(nil), nd.tokens...)
		nd.routes[ctx.ID] = beaconEntry{dist: 0, port: -1}
		nd.fresh = []int{ctx.ID}
	}
}

// Round implements simnet.Node.
func (nd *gatherNode) Round(in []simnet.PortMessage) ([]simnet.PortMessage, bool) {
	nd.round++
	var out []simnet.PortMessage
	for _, m := range in {
		switch m.Payload[0] {
		case gatherMsgBeacon:
			nd.handleBeacon(m)
		case gatherMsgSamples:
			nd.handleSamples(m)
		}
	}
	switch {
	case nd.round <= nd.radius:
		// Beacon phase: re-flood newly learned MIS ids with incremented
		// distances.
		if len(nd.fresh) > 0 {
			payload := encodeBeacons(nd.fresh, nd.routes)
			for p := 0; p < nd.ctx.Degree; p++ {
				out = append(out, simnet.PortMessage{Port: p, Payload: payload})
			}
			nd.fresh = nil
		}
	default:
		// Routing phase: pick a destination once, then forward everything
		// pending one hop per round.
		if !nd.sent && !nd.inMIS {
			nd.sent = true
			if mis, ok := nd.bestMIS(); ok {
				for _, tok := range nd.tokens {
					nd.pendingOut = append(nd.pendingOut, pendingSample{mis: mis, value: tok})
				}
			} else if len(nd.tokens) > 0 {
				// MIS maximality on G^r guarantees an MIS node within
				// radius r on a connected graph; reaching here is a bug.
				nd.lost = true
			}
		}
		out = append(out, nd.routeSamples()...)
	}
	done := nd.round > 2*nd.radius+1
	return out, done
}

func (nd *gatherNode) handleBeacon(m simnet.PortMessage) {
	entries := decodeBeacons(m.Payload)
	for _, e := range entries {
		if e.dist > nd.radius {
			continue // out of gathering range
		}
		cur, ok := nd.routes[e.mis]
		if !ok || e.dist < cur.dist {
			nd.routes[e.mis] = beaconEntry{dist: e.dist, port: m.Port}
			nd.fresh = append(nd.fresh, e.mis)
		}
	}
}

func (nd *gatherNode) handleSamples(m simnet.PortMessage) {
	samples := decodeSamples(m.Payload)
	for _, s := range samples {
		if nd.inMIS && s.mis == nd.ctx.ID {
			nd.collected = append(nd.collected, s.value)
			continue
		}
		nd.pendingOut = append(nd.pendingOut, s)
	}
}

// bestMIS returns the nearest MIS node (ties by lowest id).
func (nd *gatherNode) bestMIS() (int, bool) {
	best := -1
	bestDist := math.MaxInt
	for mis, e := range nd.routes {
		if e.dist < bestDist || (e.dist == bestDist && mis < best) {
			best = mis
			bestDist = e.dist
		}
	}
	return best, best >= 0
}

// routeSamples forwards every pending sample one hop along its gradient.
// Samples sharing a next hop are batched into one LOCAL message.
func (nd *gatherNode) routeSamples() []simnet.PortMessage {
	if len(nd.pendingOut) == 0 {
		return nil
	}
	byPort := make(map[int][]pendingSample)
	var stuck []pendingSample
	for _, s := range nd.pendingOut {
		route, ok := nd.routes[s.mis]
		if !ok || route.port < 0 {
			stuck = append(stuck, s)
			continue
		}
		byPort[route.port] = append(byPort[route.port], s)
	}
	nd.pendingOut = stuck
	// Emit in sorted port order: byPort is a map, and its iteration order
	// must not reach the message stream (trace/journal byte-determinism).
	ports := make([]int, 0, len(byPort))
	for port := range byPort {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	out := make([]simnet.PortMessage, 0, len(ports))
	for _, port := range ports {
		out = append(out, simnet.PortMessage{Port: port, Payload: encodeSamples(byPort[port])})
	}
	return out
}

type beaconWire struct {
	mis  int
	dist int
}

// encodeBeacons emits the node's current (mis, dist) entries for the given
// fresh ids, with distance incremented for the receiver.
func encodeBeacons(fresh []int, routes map[int]beaconEntry) []byte {
	buf := make([]byte, 1, 1+8*len(fresh))
	buf[0] = gatherMsgBeacon
	for _, mis := range fresh {
		var entry [8]byte
		binary.LittleEndian.PutUint32(entry[:4], uint32(mis))
		binary.LittleEndian.PutUint32(entry[4:], uint32(routes[mis].dist+1))
		buf = append(buf, entry[:]...)
	}
	return buf
}

func decodeBeacons(payload []byte) []beaconWire {
	body := payload[1:]
	entries := make([]beaconWire, 0, len(body)/8)
	for i := 0; i+8 <= len(body); i += 8 {
		entries = append(entries, beaconWire{
			mis:  int(binary.LittleEndian.Uint32(body[i : i+4])),
			dist: int(binary.LittleEndian.Uint32(body[i+4 : i+8])),
		})
	}
	return entries
}

func encodeSamples(samples []pendingSample) []byte {
	buf := make([]byte, 1, 1+12*len(samples))
	buf[0] = gatherMsgSamples
	for _, s := range samples {
		var entry [12]byte
		binary.LittleEndian.PutUint32(entry[:4], uint32(s.mis))
		binary.LittleEndian.PutUint64(entry[4:], s.value)
		buf = append(buf, entry[:]...)
	}
	return buf
}

func decodeSamples(payload []byte) []pendingSample {
	body := payload[1:]
	samples := make([]pendingSample, 0, len(body)/12)
	for i := 0; i+12 <= len(body); i += 12 {
		samples = append(samples, pendingSample{
			mis:   int(binary.LittleEndian.Uint32(body[i : i+4])),
			value: binary.LittleEndian.Uint64(body[i+4 : i+12]),
		})
	}
	return samples
}
