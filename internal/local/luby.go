// Package local implements the paper's LOCAL-model uniformity tester
// (Section 6): find a maximal independent set of the power graph G^r with
// Luby's algorithm, route every node's sample to a nearby MIS node, and run
// the 0-round AND-rule tester with the MIS nodes as "virtual nodes".
//
// Rounds are accounted in G-rounds: one round of G^r costs r rounds of G,
// the standard LOCAL simulation argument. The LOCAL model places no bound
// on message size, so beacon and sample-routing messages may aggregate
// arbitrarily many values.
package local

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/simnet"
)

// MISResult reports a distributed Luby execution.
type MISResult struct {
	// InMIS[v] reports whether vertex v joined the independent set.
	InMIS []bool
	// Iterations is the number of Luby iterations until every node decided.
	Iterations int
	// Rounds is the number of simulator rounds consumed (3 per iteration).
	Rounds int
}

// LubyMIS computes a maximal independent set of g with Luby's distributed
// algorithm, executed faithfully on the message-passing simulator.
func LubyMIS(g *graph.Graph, seed uint64) (MISResult, error) {
	nodes := make([]simnet.Node, g.N())
	impls := make([]*lubyNode, g.N())
	for v := range nodes {
		impls[v] = &lubyNode{}
		nodes[v] = impls[v]
	}
	stats, err := simnet.Run(g, nodes, simnet.Config{Seed: seed})
	if err != nil {
		return MISResult{}, fmt.Errorf("local: luby: %w", err)
	}
	res := MISResult{InMIS: make([]bool, g.N()), Rounds: stats.Rounds}
	iters := 0
	for v, nd := range impls {
		switch nd.state {
		case lubyInMIS:
			res.InMIS[v] = true
		case lubyDead:
		default:
			return MISResult{}, fmt.Errorf("local: node %d ended undecided", v)
		}
		if nd.iteration > iters {
			iters = nd.iteration
		}
	}
	res.Iterations = iters
	return res, nil
}

// VerifyMIS checks independence and maximality of a candidate MIS.
func VerifyMIS(g *graph.Graph, inMIS []bool) error {
	if len(inMIS) != g.N() {
		return fmt.Errorf("local: MIS vector has %d entries for %d vertices", len(inMIS), g.N())
	}
	for v := 0; v < g.N(); v++ {
		hasMISNeighbor := false
		for _, u := range g.Neighbors(v) {
			if inMIS[u] {
				hasMISNeighbor = true
				if inMIS[v] {
					return fmt.Errorf("local: adjacent MIS vertices %d and %d", v, u)
				}
			}
		}
		if !inMIS[v] && !hasMISNeighbor {
			return fmt.Errorf("local: vertex %d is uncovered (not maximal)", v)
		}
	}
	return nil
}

type lubyState int

const (
	lubyContender lubyState = iota + 1
	lubyInMIS
	lubyDead
)

// Luby sub-round message types.
const (
	lubyMsgValue byte = iota + 1
	lubyMsgJoin
	lubyMsgLeave
)

// lubyNode runs Luby's algorithm: each iteration is three simulator rounds
// (exchange random values; winners announce JOIN; new dead nodes announce
// LEAVE), with nodes tracking which neighbors are still contending.
type lubyNode struct {
	ctx       *simnet.Context
	state     lubyState
	phase     int // 0 = send values, 1 = decide+announce join, 2 = process leave
	iteration int
	alive     map[int]bool
	value     uint64
	announced bool
}

// alivePorts returns the still-contending neighbor ports in sorted order,
// so broadcasts never depend on map iteration order (trace/journal
// byte-determinism).
func (nd *lubyNode) alivePorts() []int {
	ports := make([]int, 0, len(nd.alive))
	for p := range nd.alive {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	return ports
}

// Init implements simnet.Node.
func (nd *lubyNode) Init(ctx *simnet.Context) {
	nd.ctx = ctx
	nd.state = lubyContender
	nd.alive = make(map[int]bool, ctx.Degree)
	for p := 0; p < ctx.Degree; p++ {
		nd.alive[p] = true
	}
}

// Round implements simnet.Node.
func (nd *lubyNode) Round(in []simnet.PortMessage) ([]simnet.PortMessage, bool) {
	var out []simnet.PortMessage
	switch nd.phase {
	case 0:
		// Start of iteration: contenders draw and broadcast a value.
		nd.iteration++
		if nd.state == lubyContender {
			nd.value = nd.ctx.RNG.Uint64()
			payload := make([]byte, 13)
			payload[0] = lubyMsgValue
			binary.LittleEndian.PutUint64(payload[1:], nd.value)
			binary.LittleEndian.PutUint32(payload[9:], uint32(nd.ctx.ID))
			for _, p := range nd.alivePorts() {
				out = append(out, simnet.PortMessage{Port: p, Payload: payload})
			}
		}
	case 1:
		// Decide: a contender wins if its (value, ID) beats every alive
		// contender neighbor's.
		if nd.state == lubyContender {
			win := true
			for _, m := range in {
				if m.Payload[0] != lubyMsgValue {
					continue
				}
				val := binary.LittleEndian.Uint64(m.Payload[1:])
				id := int(binary.LittleEndian.Uint32(m.Payload[9:]))
				if val > nd.value || (val == nd.value && id > nd.ctx.ID) {
					win = false
				}
			}
			if win {
				nd.state = lubyInMIS
				for _, p := range nd.alivePorts() {
					out = append(out, simnet.PortMessage{Port: p, Payload: []byte{lubyMsgJoin}})
				}
				nd.announced = true
			}
		}
	case 2:
		// Process joins: any JOIN kills a contender; it announces LEAVE so
		// surviving contenders stop waiting for its values.
		joined := false
		for _, m := range in {
			if m.Payload[0] == lubyMsgJoin {
				joined = true
				delete(nd.alive, m.Port)
			}
		}
		if nd.state == lubyContender && joined {
			nd.state = lubyDead
			for _, p := range nd.alivePorts() {
				out = append(out, simnet.PortMessage{Port: p, Payload: []byte{lubyMsgLeave}})
			}
			nd.announced = true
		}
	}
	// LEAVE messages can arrive in any phase right after a kill round.
	for _, m := range in {
		if m.Payload[0] == lubyMsgLeave {
			delete(nd.alive, m.Port)
		}
	}
	nd.phase = (nd.phase + 1) % 3
	// A decided node halts once its announcement round has passed.
	done := nd.state != lubyContender && nd.announced && nd.phase == 0
	if nd.state == lubyInMIS && !nd.announced {
		// Degree-zero contender joined without needing announcements.
		done = true
	}
	return out, done
}
