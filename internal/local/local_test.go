package local

import (
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/graph"
	"github.com/unifdist/unifdist/internal/rng"
)

func TestLubyMISTopologies(t *testing.T) {
	topologies := []*graph.Graph{
		graph.NewLine(20),
		graph.NewRing(15),
		graph.NewStar(12),
		graph.NewComplete(8),
		graph.NewGrid(5, 6),
		graph.NewRandomConnected(50, 0.1, 4),
		graph.New(1, "single"),
	}
	for _, g := range topologies {
		t.Run(g.Name(), func(t *testing.T) {
			res, err := LubyMIS(g, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyMIS(g, res.InMIS); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLubyMISProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%50) + 1
		g := graph.NewRandomConnected(k, 0.15, seed)
		res, err := LubyMIS(g, seed^0x55)
		if err != nil {
			return false
		}
		return VerifyMIS(g, res.InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLubyMISCompleteGraphHasOneNode(t *testing.T) {
	g := graph.NewComplete(20)
	res, err := LubyMIS(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, in := range res.InMIS {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("MIS of K_20 has %d vertices, want 1", count)
	}
}

func TestLubyMISDeterministic(t *testing.T) {
	g := graph.NewGrid(6, 6)
	a, err := LubyMIS(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LubyMIS(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatalf("MIS differs at vertex %d across identical seeds", v)
		}
	}
}

func TestLubyIterationsLogarithmic(t *testing.T) {
	// Luby finishes in O(log k) iterations w.h.p.; allow a generous
	// constant.
	g := graph.NewRandomConnected(300, 0.05, 9)
	res, err := LubyMIS(g, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 40 {
		t.Fatalf("%d iterations on 300 vertices, want O(log k)", res.Iterations)
	}
}

func TestVerifyMISDetectsViolations(t *testing.T) {
	g := graph.NewLine(4)
	// Adjacent MIS vertices.
	if err := VerifyMIS(g, []bool{true, true, false, true}); err == nil {
		t.Error("adjacent MIS vertices accepted")
	}
	// Uncovered vertex.
	if err := VerifyMIS(g, []bool{true, false, false, false}); err == nil {
		t.Error("uncovered vertex accepted")
	}
	// Length mismatch.
	if err := VerifyMIS(g, []bool{true}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Valid MIS.
	if err := VerifyMIS(g, []bool{true, false, true, false}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
}

func TestGatherDeliversAllSamples(t *testing.T) {
	// Every node's token must arrive at exactly one MIS node.
	for _, tc := range []struct {
		g *graph.Graph
		r int
	}{
		{g: graph.NewLine(30), r: 4},
		{g: graph.NewGrid(6, 8), r: 3},
		{g: graph.NewRandomConnected(60, 0.08, 2), r: 2},
		{g: graph.NewStar(25), r: 1},
	} {
		power := tc.g.Power(tc.r)
		mis, err := LubyMIS(power, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMIS(power, mis.InMIS); err != nil {
			t.Fatal(err)
		}
		tokens := make([][]uint64, tc.g.N())
		for i := range tokens {
			tokens[i] = []uint64{uint64(7000 + i)}
		}
		collected, rounds, err := gather(tc.g, tokens, mis.InMIS, tc.r, 13)
		if err != nil {
			t.Fatalf("%s r=%d: %v", tc.g.Name(), tc.r, err)
		}
		if rounds > 2*tc.r+2 {
			t.Errorf("%s: gather took %d rounds, want ≤ 2r+2 = %d", tc.g.Name(), rounds, 2*tc.r+2)
		}
		seen := make(map[uint64]int)
		for _, samples := range collected {
			for _, s := range samples {
				seen[s]++
			}
		}
		for _, toks := range tokens {
			if seen[toks[0]] != 1 {
				t.Fatalf("%s: token %d delivered %d times, want once", tc.g.Name(), toks[0], seen[toks[0]])
			}
		}
	}
}

func TestGatherMinSamplesBound(t *testing.T) {
	// Paper claim: every MIS node of G^r collects all samples in its
	// r/2-neighborhood, hence ≥ r/2 samples on a connected graph.
	g := graph.NewLine(100)
	r := 8
	power := g.Power(r)
	mis, err := LubyMIS(power, 21)
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([][]uint64, g.N())
	for i := range tokens {
		tokens[i] = []uint64{uint64(i)}
	}
	collected, _, err := gather(g, tokens, mis.InMIS, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v, samples := range collected {
		if len(samples) < r/2 {
			t.Errorf("MIS node %d collected %d samples, want ≥ r/2 = %d", v, len(samples), r/2)
		}
	}
}

func TestSolveLocalBasics(t *testing.T) {
	p, err := SolveLocal(1<<16, 10000, 1, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if p.R < 2 {
		t.Fatalf("radius %d", p.R)
	}
	if p.AND.M < 1 {
		t.Fatalf("AND config %+v", p.AND)
	}
	// The radius must cover the AND config's per-virtual-node demand when
	// feasible.
	if p.Feasible && p.AND.SamplesPerNode > p.R/2 {
		t.Fatalf("feasible but samples %d > r/2 = %d", p.AND.SamplesPerNode, p.R/2)
	}
}

func TestSolveLocalRadiusGrowsWithN(t *testing.T) {
	p1, err := SolveLocal(1<<12, 5000, 1, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SolveLocal(1<<18, 5000, 1, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if p2.R < p1.R {
		t.Fatalf("radius shrank with n: %d (n=2^12) vs %d (n=2^18)", p1.R, p2.R)
	}
}

func TestSolveLocalErrors(t *testing.T) {
	if _, err := SolveLocal(1000, 0, 1, 1.0/3); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRunUniformitySeparation(t *testing.T) {
	// LOCAL end-to-end: dramatic cases must be decided correctly.
	n := 1 << 30 // collisions essentially impossible under uniform
	g := graph.NewRandomConnected(400, 0.02, 6)
	p := Params{N: n, K: g.N(), Eps: 1, P: 1.0 / 3, R: 6}
	cfg, err := SolveLocal(n, g.N(), 1, 1.0/3)
	if err == nil {
		p.AND = cfg.AND
	}
	if p.AND.M == 0 {
		p.AND.M = 1
	}
	r := rng.New(41)
	res, err := RunUniformityOnDistribution(g, dist.NewUniform(n), p, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Error("huge uniform domain rejected (collision against 2^30 domain)")
	}
	if res.MISNodes < 1 {
		t.Error("no MIS nodes")
	}

	// Point mass: every block of ≥2 samples collides, so every MIS node
	// with enough samples rejects.
	point := dist.NewPointMassMixture(1<<10, 0, 0.999)
	p.N = 1 << 10
	res, err = RunUniformityOnDistribution(g, point, p, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept {
		t.Error("near-point-mass accepted")
	}
}

func TestRunUniformityGRoundsAccounting(t *testing.T) {
	g := graph.NewGrid(8, 8)
	p := Params{N: 1 << 20, K: g.N(), Eps: 1, P: 1.0 / 3, R: 4}
	p.AND.M = 1
	res, err := RunUniformity(g, make([]uint64, g.N()), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// G-rounds must include R× the MIS rounds plus the 2R+2 gather rounds:
	// strictly more than the gather alone, and bounded by a sane multiple.
	if res.GRounds <= 2*p.R {
		t.Fatalf("GRounds = %d implausibly small", res.GRounds)
	}
	if res.GRounds > 200*p.R {
		t.Fatalf("GRounds = %d implausibly large", res.GRounds)
	}
}

func TestRunUniformityValidation(t *testing.T) {
	g := graph.NewLine(4)
	if _, err := RunUniformity(g, []uint64{1}, Params{R: 2}, 1); err == nil {
		t.Error("token mismatch accepted")
	}
	if _, err := RunUniformity(g, []uint64{1, 2, 3, 4}, Params{R: 0}, 1); err == nil {
		t.Error("radius 0 accepted")
	}
}

func TestVirtualVote(t *testing.T) {
	tests := []struct {
		name    string
		m       int
		samples []uint64
		want    bool
	}{
		{name: "no samples accepts", m: 2, samples: nil, want: true},
		{name: "distinct accepts", m: 1, samples: []uint64{1, 2, 3, 4}, want: true},
		{name: "all collide rejects", m: 2, samples: []uint64{5, 5, 6, 6}, want: false},
		{name: "one clean block accepts", m: 2, samples: []uint64{5, 5, 1, 2}, want: true},
		{name: "single block collision rejects", m: 1, samples: []uint64{9, 9}, want: false},
		{name: "tiny blocks accept", m: 4, samples: []uint64{3, 3, 3}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := virtualVote(100, tt.m, tt.samples); got != tt.want {
				t.Fatalf("virtualVote(m=%d, %v) = %v, want %v", tt.m, tt.samples, got, tt.want)
			}
		})
	}
}

func TestBeaconCodecRoundTrip(t *testing.T) {
	routes := map[int]beaconEntry{
		3:  {dist: 2, port: 1},
		17: {dist: 0, port: -1},
	}
	payload := encodeBeacons([]int{3, 17}, routes)
	entries := decodeBeacons(payload)
	if len(entries) != 2 {
		t.Fatalf("decoded %d entries", len(entries))
	}
	if entries[0].mis != 3 || entries[0].dist != 3 {
		t.Errorf("entry 0 = %+v, want mis=3 dist=3", entries[0])
	}
	if entries[1].mis != 17 || entries[1].dist != 1 {
		t.Errorf("entry 1 = %+v, want mis=17 dist=1", entries[1])
	}
}

func TestSampleCodecRoundTrip(t *testing.T) {
	in := []pendingSample{{mis: 5, value: 1 << 40}, {mis: 0, value: 0}}
	out := decodeSamples(encodeSamples(in))
	if len(out) != len(in) {
		t.Fatalf("decoded %d samples", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("sample %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func BenchmarkLubyMIS(b *testing.B) {
	g := graph.NewRandomConnected(200, 0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LubyMIS(g, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalUniformity(b *testing.B) {
	g := graph.NewRandomConnected(300, 0.03, 2)
	p := Params{N: 1 << 20, K: g.N(), Eps: 1, P: 1.0 / 3, R: 4}
	p.AND.M = 1
	r := rng.New(1)
	d := dist.NewUniform(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunUniformityOnDistribution(g, d, p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunUniformityMulti(t *testing.T) {
	g := graph.NewGrid(6, 6)
	p := Params{N: 1 << 30, K: g.N(), Eps: 1, P: 1.0 / 3, R: 3}
	p.AND.M = 1
	per := make([][]uint64, g.N())
	total := 0
	for v := range per {
		per[v] = []uint64{uint64(10 * v), uint64(10*v + 1), uint64(10*v + 2)}
		total += 3
	}
	res, err := RunUniformityMulti(g, per, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Error("distinct samples over a huge domain rejected")
	}
	// All samples must have been delivered: Σ per-MIS collected = total.
	// MinSamples reflects multi-sample contributions.
	if res.MISNodes < 1 {
		t.Fatal("no MIS nodes")
	}
	if res.MinSamples < 3 {
		t.Errorf("MIS node collected %d samples; each node contributed 3", res.MinSamples)
	}
	if _, err := RunUniformityMulti(g, per[:3], p, 5); err == nil {
		t.Error("mismatched token sets accepted")
	}
}

func TestRunUniformityMultiEmptyNodes(t *testing.T) {
	g := graph.NewLine(8)
	p := Params{N: 1 << 20, K: g.N(), Eps: 1, P: 1.0 / 3, R: 2}
	p.AND.M = 1
	per := make([][]uint64, g.N())
	per[2] = []uint64{42}
	res, err := RunUniformityMulti(g, per, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Error("single sample rejected")
	}
}
