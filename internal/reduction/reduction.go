// Package reduction implements the filter that reduces testing identity to
// a fixed known distribution η to uniformity testing [Goldreich 2016;
// Diakonikolas–Kane 2016], referenced in the paper's introduction as the
// reason uniformity is the canonical distributed testing problem: the
// filter is a randomized per-sample mapping, so every network node can
// apply it locally with its private randomness and then run any
// distributed uniformity tester.
//
// Construction: the target η on [n] is rounded to a grained distribution
// η̃ with η̃(i) = m_i/M (m_i ≥ 1, Σm_i = M). Element i is assigned m_i
// dedicated buckets, and the filter maps a sample i to a uniformly random
// bucket of i. The map sends η̃ exactly to the uniform distribution on [M]
// and preserves L1 distances to η̃ exactly:
//
//	L1(F(µ), U_M) = Σ_i m_i·|µ(i)/m_i − 1/M| = L1(µ, η̃).
//
// Choosing the grain M ≥ 4n/ε keeps the rounding error L1(η, η̃) ≤ ε/4, so
// an (ε/2)-uniformity tester on the filtered samples distinguishes µ = η
// from µ being ε-far from η.
package reduction

import (
	"fmt"
	"math"
	"sort"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
)

// Filter maps samples from a distribution on [n] to buckets in [M] so that
// the grained target η̃ maps to uniform.
type Filter struct {
	n             int
	m             int // output domain size M
	buckets       []int
	offsets       []int     // offsets[i] is the first bucket of element i
	rounded       []float64 // η̃(i) = buckets[i]/M
	roundingError float64
}

// GrainForEpsilon returns the standard grain M = ⌈4n/ε⌉ that bounds the
// rounding error by ε/4.
func GrainForEpsilon(n int, eps float64) int {
	if eps <= 0 {
		panic("reduction: eps must be positive")
	}
	return int(math.Ceil(4 * float64(n) / eps))
}

// NewFilter builds the filter for target distribution eta (a probability
// vector; it is normalized internally) at grain M. M must be at least
// len(eta) so every element receives a bucket.
func NewFilter(eta []float64, m int) (*Filter, error) {
	n := len(eta)
	if n == 0 {
		return nil, fmt.Errorf("reduction: empty target distribution")
	}
	if m < n {
		return nil, fmt.Errorf("reduction: grain M=%d smaller than domain %d", m, n)
	}
	total := 0.0
	for i, v := range eta {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("reduction: invalid mass %v at %d", v, i)
		}
		total += v
	}
	if total <= 0 {
		return nil, fmt.Errorf("reduction: zero total mass")
	}

	// Largest-remainder allocation with a floor of one bucket per element.
	f := &Filter{
		n:       n,
		m:       m,
		buckets: make([]int, n),
		offsets: make([]int, n+1),
		rounded: make([]float64, n),
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, v := range eta {
		p := v / total
		ideal := p * float64(m)
		b := int(math.Floor(ideal))
		if b < 1 {
			b = 1
		}
		f.buckets[i] = b
		assigned += b
		rems[i] = rem{idx: i, frac: ideal - math.Floor(ideal)}
	}
	if assigned > m {
		// The floor-of-one inflation exceeded M: shrink the largest
		// allocations (keeps every element ≥ 1; possible since m ≥ n).
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return f.buckets[order[a]] > f.buckets[order[b]] })
		for assigned > m {
			for _, i := range order {
				if assigned == m {
					break
				}
				if f.buckets[i] > 1 {
					f.buckets[i]--
					assigned--
				}
			}
		}
	} else if assigned < m {
		sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
		i := 0
		for assigned < m {
			f.buckets[rems[i%n].idx]++
			assigned++
			i++
		}
	}

	off := 0
	for i, b := range f.buckets {
		f.offsets[i] = off
		off += b
		f.rounded[i] = float64(b) / float64(m)
		f.roundingError += math.Abs(f.rounded[i] - eta[i]/total)
	}
	f.offsets[n] = off
	return f, nil
}

// InputDomain returns n, the domain of the target distribution.
func (f *Filter) InputDomain() int { return f.n }

// OutputDomain returns M, the domain of the filtered samples.
func (f *Filter) OutputDomain() int { return f.m }

// RoundingError returns L1(η, η̃), the distance between the requested
// target and the grained target the filter actually tests against.
func (f *Filter) RoundingError() float64 { return f.roundingError }

// Rounded returns η̃(i).
func (f *Filter) Rounded(i int) float64 { return f.rounded[i] }

// Apply maps one sample to a uniformly random bucket of its element.
func (f *Filter) Apply(sample int, r *rng.RNG) int {
	if sample < 0 || sample >= f.n {
		panic(fmt.Sprintf("reduction: sample %d outside domain [0, %d)", sample, f.n))
	}
	return f.offsets[sample] + r.Intn(f.buckets[sample])
}

// elementOf returns the input element owning a bucket.
func (f *Filter) elementOf(bucket int) int {
	i := sort.SearchInts(f.offsets, bucket+1) - 1
	return i
}

// Filtered wraps a source distribution with the filter: sampling draws
// from the source and applies the filter, and probabilities are the
// pushforward µ(i)/m_i. It implements dist.Distribution on [M], so any
// uniformity tester in the library can consume it directly.
type Filtered struct {
	source dist.Distribution
	filter *Filter
}

// NewFiltered wraps source with f. The source's domain must match the
// filter's input domain.
func NewFiltered(source dist.Distribution, f *Filter) (*Filtered, error) {
	if source.N() != f.n {
		return nil, fmt.Errorf("reduction: source domain %d != filter domain %d", source.N(), f.n)
	}
	return &Filtered{source: source, filter: f}, nil
}

// N implements dist.Distribution.
func (fd *Filtered) N() int { return fd.filter.m }

// Prob implements dist.Distribution: bucket b of element i carries mass
// µ(i)/m_i.
func (fd *Filtered) Prob(b int) float64 {
	if b < 0 || b >= fd.filter.m {
		panic(fmt.Sprintf("reduction: bucket %d outside [0, %d)", b, fd.filter.m))
	}
	i := fd.filter.elementOf(b)
	return fd.source.Prob(i) / float64(fd.filter.buckets[i])
}

// Sample implements dist.Distribution.
func (fd *Filtered) Sample(r *rng.RNG) int {
	return fd.filter.Apply(fd.source.Sample(r), r)
}

// Name implements dist.Distribution.
func (fd *Filtered) Name() string {
	return fmt.Sprintf("filtered(%s,M=%d)", fd.source.Name(), fd.filter.m)
}
