package reduction

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/dist"
	"github.com/unifdist/unifdist/internal/rng"
	"github.com/unifdist/unifdist/internal/tester"
)

func TestNewFilterValidation(t *testing.T) {
	if _, err := NewFilter(nil, 10); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := NewFilter([]float64{0.5, 0.5}, 1); err == nil {
		t.Error("grain < domain accepted")
	}
	if _, err := NewFilter([]float64{-1, 2}, 10); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := NewFilter([]float64{0, 0}, 10); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := NewFilter([]float64{math.NaN()}, 10); err == nil {
		t.Error("NaN accepted")
	}
}

func TestBucketAllocationSumsToM(t *testing.T) {
	f := func(raw []uint8, extra uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		eta := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			eta[i] = float64(v)
			total += eta[i]
		}
		if total == 0 {
			return true
		}
		m := len(raw) + int(extra)
		flt, err := NewFilter(eta, m)
		if err != nil {
			return false
		}
		sum := 0
		for i := 0; i < flt.InputDomain(); i++ {
			b := flt.offsets[i+1] - flt.offsets[i]
			if b < 1 {
				return false // every element needs a bucket
			}
			sum += b
		}
		return sum == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundingErrorBound(t *testing.T) {
	// With grain M = 4n/ε the rounding error must be ≤ ε/4 plus the
	// floor-of-one inflation (≤ 2n/M total).
	n, eps := 100, 0.5
	m := GrainForEpsilon(n, eps)
	z := dist.NewZipf(n, 1.1)
	eta := make([]float64, n)
	for i := range eta {
		eta[i] = z.Prob(i)
	}
	f, err := NewFilter(eta, m)
	if err != nil {
		t.Fatal(err)
	}
	if f.RoundingError() > eps/4+2*float64(n)/float64(m) {
		t.Fatalf("rounding error %v exceeds ε/4 = %v", f.RoundingError(), eps/4)
	}
}

func TestGrainForEpsilon(t *testing.T) {
	if got := GrainForEpsilon(100, 0.5); got != 800 {
		t.Fatalf("GrainForEpsilon = %d, want 800", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("eps=0 did not panic")
		}
	}()
	GrainForEpsilon(10, 0)
}

func TestTargetMapsToUniform(t *testing.T) {
	// The grained target η̃ must map exactly to U(M): the filtered
	// pushforward of a source with Prob = η̃ has every bucket at 1/M.
	eta := []float64{0.5, 0.25, 0.125, 0.125}
	f, err := NewFilter(eta, 32)
	if err != nil {
		t.Fatal(err)
	}
	tilde := make([]float64, len(eta))
	for i := range tilde {
		tilde[i] = f.Rounded(i)
	}
	src := dist.MustHistogram(tilde, "eta-tilde")
	fd, err := NewFiltered(src, f)
	if err != nil {
		t.Fatal(err)
	}
	if got := dist.L1FromUniform(fd); got > 1e-12 {
		t.Fatalf("filtered η̃ is %v-far from uniform, want 0", got)
	}
}

func TestDistancePreservation(t *testing.T) {
	// L1(F(µ), U_M) = L1(µ, η̃) exactly, for any source µ.
	f := func(rawEta, rawMu [6]uint8) bool {
		eta := make([]float64, 6)
		mu := make([]float64, 6)
		te, tm := 0.0, 0.0
		for i := 0; i < 6; i++ {
			eta[i] = float64(rawEta[i]) + 0.5
			mu[i] = float64(rawMu[i]) + 0.5
			te += eta[i]
			tm += mu[i]
		}
		flt, err := NewFilter(eta, 60)
		if err != nil {
			return false
		}
		src := dist.MustHistogram(mu, "mu")
		fd, err := NewFiltered(src, flt)
		if err != nil {
			return false
		}
		// L1(µ, η̃) directly.
		want := 0.0
		for i := 0; i < 6; i++ {
			want += math.Abs(src.Prob(i) - flt.Rounded(i))
		}
		got := dist.L1FromUniform(fd)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFilteredSamplerMatchesProb(t *testing.T) {
	eta := []float64{0.6, 0.3, 0.1}
	f, err := NewFilter(eta, 20)
	if err != nil {
		t.Fatal(err)
	}
	src := dist.MustHistogram([]float64{0.2, 0.5, 0.3}, "mu")
	fd, err := NewFiltered(src, f)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	const trials = 300000
	counts := dist.EmpiricalHistogram(fd.N(), dist.SampleN(fd, trials, r))
	for b := 0; b < fd.N(); b++ {
		want := fd.Prob(b) * trials
		if math.Abs(float64(counts[b])-want) > 6*math.Sqrt(want+1) {
			t.Errorf("bucket %d: count %d, want %v", b, counts[b], want)
		}
	}
}

func TestApplyPanicsOutOfRange(t *testing.T) {
	f, err := NewFilter([]float64{1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range sample did not panic")
		}
	}()
	f.Apply(2, rng.New(1))
}

func TestNewFilteredDomainMismatch(t *testing.T) {
	f, err := NewFilter([]float64{1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFiltered(dist.NewUniform(3), f); err == nil {
		t.Fatal("domain mismatch accepted")
	}
}

func TestEndToEndIdentityTesting(t *testing.T) {
	// Test identity to a Zipf target via the reduction: samples from the
	// target must be accepted and samples from a far distribution rejected
	// by the centralized baseline uniformity tester on filtered samples.
	n := 400
	z := dist.NewZipf(n, 1.0)
	eta := make([]float64, n)
	for i := range eta {
		eta[i] = z.Prob(i)
	}
	eps := 0.8
	m := GrainForEpsilon(n, eps)
	f, err := NewFilter(eta, m)
	if err != nil {
		t.Fatal(err)
	}

	// µ = η: filtered distribution is ~uniform on [M].
	same, err := NewFiltered(z, f)
	if err != nil {
		t.Fatal(err)
	}
	// µ = uniform on [n]: far from Zipf (L1 ≈ 1.0 for s=1), so filtered is
	// far from uniform on [M].
	far, err := NewFiltered(dist.NewUniform(n), f)
	if err != nil {
		t.Fatal(err)
	}
	if got := dist.L1FromUniform(far); got < eps/2 {
		t.Skipf("chosen far instance only %v-far after filtering", got)
	}

	cc, err := tester.NewCollisionCounting(m, eps/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	const trials = 60
	rejSame := tester.EstimateRejectProb(cc, same, trials, r)
	rejFar := tester.EstimateRejectProb(cc, far, trials, r)
	if rejSame > 1.0/3 {
		t.Errorf("µ=η rejected with prob %v", rejSame)
	}
	if rejFar < 2.0/3 {
		t.Errorf("far µ rejected with prob only %v", rejFar)
	}
}

func BenchmarkFilterApply(b *testing.B) {
	n := 1000
	z := dist.NewZipf(n, 1.1)
	eta := make([]float64, n)
	for i := range eta {
		eta[i] = z.Prob(i)
	}
	f, err := NewFilter(eta, 8000)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Apply(i%n, r)
	}
}
