package dist

import (
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
)

// oneByOne is a Distribution wrapper that hides any BatchSampler
// implementation, forcing the generic per-sample path.
type oneByOne struct{ Distribution }

// kernelDistributions returns the batch-sampling distributions under test.
func kernelDistributions(t testing.TB) []Distribution {
	t.Helper()
	h, err := NewHistogram([]float64{1, 2, 3, 4, 0.5, 7}, "h")
	if err != nil {
		t.Fatal(err)
	}
	return []Distribution{
		NewUniform(97),
		NewTwoBump(64, 0.5, 11),
		h,
		NewZipf(200, 1.1),
	}
}

// TestSampleIntoMatchesScalarStream checks the batch kernels consume the
// generator exactly as repeated Sample calls do: same seed, same stream.
func TestSampleIntoMatchesScalarStream(t *testing.T) {
	for _, d := range kernelDistributions(t) {
		if _, ok := d.(BatchSampler); !ok {
			t.Errorf("%s does not implement BatchSampler", d.Name())
		}
		const s = 1000
		batch := make([]int, s)
		SampleInto(d, batch, rng.New(42))
		scalar := make([]int, s)
		SampleInto(oneByOne{d}, scalar, rng.New(42))
		for i := range batch {
			if batch[i] != scalar[i] {
				t.Fatalf("%s: batch[%d]=%d but scalar[%d]=%d", d.Name(), i, batch[i], i, scalar[i])
			}
		}
		if n := SampleN(d, s, rng.New(42)); n[s-1] != batch[s-1] || n[0] != batch[0] {
			t.Errorf("%s: SampleN diverges from SampleInto", d.Name())
		}
	}
}

// TestSampleIntoGenericFallback covers the non-BatchSampler path.
func TestSampleIntoGenericFallback(t *testing.T) {
	d := oneByOne{NewUniform(13)}
	buf := make([]int, 500)
	SampleInto(d, buf, rng.New(3))
	for i, v := range buf {
		if v < 0 || v >= 13 {
			t.Fatalf("sample %d out of range: %d", i, v)
		}
	}
}

// TestSampleIntoRanges checks every kernel stays inside its domain.
func TestSampleIntoRanges(t *testing.T) {
	for _, d := range kernelDistributions(t) {
		buf := make([]int, 2000)
		SampleInto(d, buf, rng.New(7))
		for i, v := range buf {
			if v < 0 || v >= d.N() {
				t.Fatalf("%s: sample %d out of domain: %d", d.Name(), i, v)
			}
		}
	}
}

func BenchmarkSampleScalarUniform(b *testing.B) {
	d := NewUniform(1 << 20)
	buf := make([]int, 1024)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleInto(oneByOne{d}, buf, r)
	}
}
