package dist

import (
	"slices"
	"sort"
)

// This file holds the allocation-free collision statistics. The testers'
// inner loop asks one of two questions about a sample block — "is there any
// repeat?" (the single-collision statistic Z of Section 3.1) or "how many
// colliding pairs?" (the Paninski-style counting baseline) — millions of
// times per experiment. A CollisionScratch answers both with zero
// allocations per call by reusing one of two structures:
//
//   - for small domains, a domain-indexed epoch-stamp array: stamp[v] == the
//     current epoch means v was already seen this call, so one O(s) pass
//     detects and counts repeats without clearing anything between calls;
//   - for large domains (where an O(n) stamp array would not pay for
//     itself), a reusable sort buffer: copy, sort, scan adjacent equals.
//
// The package-level HasCollision and CountCollisions remain as the
// convenience entry points; they now use the sort strategy on a fresh buffer
// instead of a hash map, which is both faster and lighter for one-off calls.

// maxStampDomain bounds the domain size for which the scratch keeps an O(n)
// stamp array (4 MiB of uint32 at the bound). Above it, collision checks
// fall back to sorting in a reusable buffer.
const maxStampDomain = 1 << 20

// CollisionScratch is reusable working memory for HasCollision and
// CountCollisions. The zero value is ready to use; a nil *CollisionScratch
// is also valid and falls back to the allocating package-level functions.
// A scratch is not safe for concurrent use — give each goroutine its own.
type CollisionScratch struct {
	stamps []uint32
	epoch  uint32
	buf    []int
}

// NewCollisionScratch returns an empty scratch. Buffers grow on first use
// and are retained across calls.
func NewCollisionScratch() *CollisionScratch { return &CollisionScratch{} }

// nextEpoch advances the epoch, clearing the stamp array on the (rare)
// wrap-around so stale stamps from 2³²−1 calls ago cannot alias.
func (sc *CollisionScratch) nextEpoch() uint32 {
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.stamps)
		sc.epoch = 1
	}
	return sc.epoch
}

// useStamps reports whether the stamp strategy applies to domain size n,
// growing the stamp array if needed. Fresh stamp entries are zero, which can
// never equal the post-increment epoch of an ongoing call sequence until
// wrap-around resets both.
func (sc *CollisionScratch) useStamps(n int) bool {
	if n > maxStampDomain {
		return false
	}
	if len(sc.stamps) < n {
		sc.stamps = append(sc.stamps, make([]uint32, n-len(sc.stamps))...)
	}
	return true
}

// sorted copies samples into the reusable buffer and sorts it.
func (sc *CollisionScratch) sorted(samples []int) []int {
	sc.buf = append(sc.buf[:0], samples...)
	slices.Sort(sc.buf)
	return sc.buf
}

// HasCollision reports whether samples (drawn from a domain of size n)
// contains two equal elements, allocating nothing after warm-up.
func (sc *CollisionScratch) HasCollision(n int, samples []int) bool {
	if sc == nil {
		return HasCollision(samples)
	}
	if len(samples) < 2 {
		return false
	}
	if sc.useStamps(n) {
		epoch := sc.nextEpoch()
		stamps := sc.stamps
		for _, s := range samples {
			if stamps[s] == epoch {
				return true
			}
			stamps[s] = epoch
		}
		return false
	}
	cp := sc.sorted(samples)
	for i := 1; i < len(cp); i++ {
		if cp[i] == cp[i-1] {
			return true
		}
	}
	return false
}

// CountCollisions returns the number of colliding pairs Σ_i C(c_i, 2) in
// samples (drawn from a domain of size n), allocating nothing after
// warm-up.
func (sc *CollisionScratch) CountCollisions(n int, samples []int) int {
	if sc == nil {
		return CountCollisions(samples)
	}
	if len(samples) < 2 {
		return 0
	}
	if sc.useStamps(n) {
		// Σ C(c_i,2) = Σ_j (#earlier occurrences of samples[j]): count, for
		// each sample, how many times its value was already seen. Stamps
		// locate the first occurrence; a parallel counter array (reusing the
		// sort buffer) tracks multiplicities without clearing.
		if cap(sc.buf) < n {
			sc.buf = make([]int, n)
		}
		counts := sc.buf[:n]
		epoch := sc.nextEpoch()
		stamps := sc.stamps
		total := 0
		for _, s := range samples {
			if stamps[s] == epoch {
				total += counts[s]
				counts[s]++
				continue
			}
			stamps[s] = epoch
			counts[s] = 1
		}
		return total
	}
	cp := sc.sorted(samples)
	return countSortedCollisions(cp)
}

// CountDistinct returns the number of distinct values in samples (drawn
// from a domain of size n), allocating nothing after warm-up.
func (sc *CollisionScratch) CountDistinct(n int, samples []int) int {
	if len(samples) < 2 {
		return len(samples)
	}
	if sc == nil {
		samples = sortedCopy(samples)
	} else if sc.useStamps(n) {
		epoch := sc.nextEpoch()
		stamps := sc.stamps
		distinct := 0
		for _, s := range samples {
			if stamps[s] != epoch {
				stamps[s] = epoch
				distinct++
			}
		}
		return distinct
	} else {
		samples = sc.sorted(samples)
	}
	distinct := 1
	for i := 1; i < len(samples); i++ {
		if samples[i] != samples[i-1] {
			distinct++
		}
	}
	return distinct
}

// countSortedCollisions returns Σ C(run, 2) over equal-element runs of a
// sorted slice.
func countSortedCollisions(cp []int) int {
	total := 0
	run := 1
	for i := 1; i < len(cp); i++ {
		if cp[i] == cp[i-1] {
			run++
			continue
		}
		total += run * (run - 1) / 2
		run = 1
	}
	return total + run*(run-1)/2
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	cp := make([]int, len(xs))
	copy(cp, xs)
	sort.Ints(cp)
	return cp
}
