package dist

import (
	"testing"

	"github.com/unifdist/unifdist/internal/rng"
)

// TestScratchMatchesReference cross-checks both scratch strategies against
// the package-level functions on random multisets, for domains on both
// sides of the stamp cutoff.
func TestScratchMatchesReference(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{2, 17, 1 << 10, maxStampDomain, maxStampDomain + 1, 1 << 22} {
		sc := NewCollisionScratch()
		for trial := 0; trial < 40; trial++ {
			s := r.Intn(60) // dense enough for frequent collisions on small n
			samples := make([]int, s)
			for i := range samples {
				samples[i] = r.Intn(n)
			}
			if got, want := sc.HasCollision(n, samples), HasCollision(samples); got != want {
				t.Fatalf("n=%d samples=%v: scratch HasCollision=%v want %v", n, samples, got, want)
			}
			if got, want := sc.CountCollisions(n, samples), CountCollisions(samples); got != want {
				t.Fatalf("n=%d samples=%v: scratch CountCollisions=%d want %d", n, samples, got, want)
			}
		}
	}
}

// TestScratchReuseAcrossDomains checks one scratch can serve interleaved
// calls with different domain sizes (as Network.Run does for heterogeneous
// nodes).
func TestScratchReuseAcrossDomains(t *testing.T) {
	sc := NewCollisionScratch()
	if sc.HasCollision(100, []int{1, 2, 3}) {
		t.Error("false collision")
	}
	if !sc.HasCollision(10, []int{4, 4}) {
		t.Error("missed collision after domain shrink")
	}
	if got := sc.CountCollisions(1000, []int{5, 5, 5}); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if sc.HasCollision(maxStampDomain+1, []int{0, 1, maxStampDomain}) {
		t.Error("false collision on sort path")
	}
	if got := sc.CountCollisions(maxStampDomain+1, []int{7, 7, 9, 9}); got != 2 {
		t.Errorf("sort-path count = %d, want 2", got)
	}
}

// TestScratchEpochWrap forces the epoch counter to wrap and checks stamps
// from before the wrap cannot produce phantom collisions.
func TestScratchEpochWrap(t *testing.T) {
	sc := NewCollisionScratch()
	sc.HasCollision(8, []int{1, 2, 3}) // stamp 1..3 at epoch 1
	sc.epoch = ^uint32(0) - 1
	sc.HasCollision(8, []int{4, 5}) // epoch 2³²−1
	if sc.HasCollision(8, []int{1, 2, 3, 4}) {
		t.Fatal("stale stamps survived epoch wrap")
	}
	if sc.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", sc.epoch)
	}
}

// TestScratchNilFallback checks a nil scratch behaves like the package
// functions.
func TestScratchNilFallback(t *testing.T) {
	var sc *CollisionScratch
	if !sc.HasCollision(10, []int{3, 3}) {
		t.Error("nil scratch missed a collision")
	}
	if got := sc.CountCollisions(10, []int{3, 3, 3}); got != 3 {
		t.Errorf("nil scratch count = %d, want 3", got)
	}
}

// TestScratchTrivialSizes covers the short-circuit paths.
func TestScratchTrivialSizes(t *testing.T) {
	sc := NewCollisionScratch()
	if sc.HasCollision(5, nil) || sc.HasCollision(5, []int{2}) {
		t.Error("collision reported for <2 samples")
	}
	if sc.CountCollisions(5, []int{1}) != 0 {
		t.Error("nonzero count for 1 sample")
	}
}

func BenchmarkHasCollisionMap(b *testing.B) {
	// Historical baseline shape: map-based detection allocated per call;
	// kept as a benchmark reference via the package-level function (now
	// sort-based — see BenchmarkHasCollisionScratch for the stamp kernel).
	r := rng.New(1)
	samples := make([]int, 256)
	for i := range samples {
		samples[i] = r.Intn(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HasCollision(samples)
	}
}
