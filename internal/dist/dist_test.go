package dist

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/unifdist/unifdist/internal/rng"
)

func TestUniformBasics(t *testing.T) {
	u := NewUniform(10)
	if u.N() != 10 {
		t.Fatalf("N = %d, want 10", u.N())
	}
	for i := 0; i < 10; i++ {
		if got := u.Prob(i); math.Abs(got-0.1) > 1e-15 {
			t.Fatalf("Prob(%d) = %v, want 0.1", i, got)
		}
	}
	if got := L1FromUniform(u); got > 1e-12 {
		t.Fatalf("L1FromUniform(U) = %v, want 0", got)
	}
	if got, want := CollisionProbability(u), 0.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("χ(U₁₀) = %v, want %v", got, want)
	}
}

func TestUniformSampleRange(t *testing.T) {
	u := NewUniform(7)
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if v := u.Sample(r); v < 0 || v >= 7 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestUniformPanics(t *testing.T) {
	assertPanics(t, func() { NewUniform(0) }, "NewUniform(0)")
	assertPanics(t, func() { NewUniform(5).Prob(5) }, "Prob out of range")
	assertPanics(t, func() { NewUniform(5).Prob(-1) }, "Prob negative")
}

func TestTwoBumpDistanceExactlyEps(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		d := NewTwoBump(100, eps, 42)
		if got := L1FromUniform(d); math.Abs(got-eps) > 1e-12 {
			t.Errorf("eps=%v: L1 = %v, want exactly eps", eps, got)
		}
	}
}

func TestTwoBumpSumsToOne(t *testing.T) {
	d := NewTwoBump(50, 0.7, 9)
	total := 0.0
	for i := 0; i < d.N(); i++ {
		total += d.Prob(i)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", total)
	}
}

func TestTwoBumpCollisionProbability(t *testing.T) {
	// χ(two-bump) = (1+ε²)/n exactly: Σ((1±ε)/n)² over n elements.
	n, eps := 200, 0.6
	d := NewTwoBump(n, eps, 3)
	want := (1 + eps*eps) / float64(n)
	if got := CollisionProbability(d); math.Abs(got-want) > 1e-12 {
		t.Fatalf("χ = %v, want %v", got, want)
	}
}

func TestTwoBumpSamplerMatchesProbabilities(t *testing.T) {
	n, eps := 10, 0.8
	d := NewTwoBump(n, eps, 5)
	r := rng.New(77)
	const trials = 400000
	counts := EmpiricalHistogram(n, SampleN(d, trials, r))
	for i := 0; i < n; i++ {
		want := d.Prob(i) * trials
		sigma := math.Sqrt(want)
		if math.Abs(float64(counts[i])-want) > 6*sigma {
			t.Errorf("element %d: count %d, want %v ± %v", i, counts[i], want, 6*sigma)
		}
	}
}

func TestTwoBumpPanics(t *testing.T) {
	assertPanics(t, func() { NewTwoBump(7, 0.5, 1) }, "odd n")
	assertPanics(t, func() { NewTwoBump(8, 0, 1) }, "eps 0")
	assertPanics(t, func() { NewTwoBump(8, 1.5, 1) }, "eps > 1")
}

func TestHistogramNormalization(t *testing.T) {
	h := MustHistogram([]float64{2, 6}, "")
	if math.Abs(h.Prob(0)-0.25) > 1e-15 || math.Abs(h.Prob(1)-0.75) > 1e-15 {
		t.Fatalf("normalization wrong: %v, %v", h.Prob(0), h.Prob(1))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, ""); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := NewHistogram([]float64{1, -1}, ""); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := NewHistogram([]float64{0, 0}, ""); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := NewHistogram([]float64{math.NaN()}, ""); err == nil {
		t.Error("NaN mass accepted")
	}
	if _, err := NewHistogram([]float64{math.Inf(1)}, ""); err == nil {
		t.Error("Inf mass accepted")
	}
}

func TestAliasSamplerMatchesProbabilities(t *testing.T) {
	h := MustHistogram([]float64{0.5, 0.1, 0.05, 0.35, 0}, "skew")
	r := rng.New(123)
	const trials = 400000
	counts := EmpiricalHistogram(h.N(), SampleN(h, trials, r))
	for i := 0; i < h.N(); i++ {
		want := h.Prob(i) * trials
		sigma := math.Sqrt(want + 1)
		if math.Abs(float64(counts[i])-want) > 6*sigma {
			t.Errorf("element %d: count %d, want %v", i, counts[i], want)
		}
	}
	if counts[4] != 0 {
		t.Errorf("zero-probability element sampled %d times", counts[4])
	}
}

func TestAliasSamplerPropertyRandomHistograms(t *testing.T) {
	// Property: for random histograms, the sampler's empirical distribution
	// converges to the histogram (coarse 10σ check keeps flakiness at bay).
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		p := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			p[i] = float64(v)
			total += p[i]
		}
		if total == 0 {
			return true
		}
		h, err := NewHistogram(p, "prop")
		if err != nil {
			return false
		}
		r := rng.New(seed)
		const trials = 30000
		counts := EmpiricalHistogram(h.N(), SampleN(h, trials, r))
		for i := range p {
			want := h.Prob(i) * trials
			if math.Abs(float64(counts[i])-want) > 10*math.Sqrt(want+1)+10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestZipf(t *testing.T) {
	z := NewZipf(100, 1.2)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-15 {
			t.Fatalf("Zipf probabilities not non-increasing at %d", i)
		}
	}
	if L1FromUniform(z) < 0.5 {
		t.Error("zipf(1.2) should be far from uniform")
	}
	assertPanics(t, func() { NewZipf(0, 1) }, "n=0")
	assertPanics(t, func() { NewZipf(10, 0) }, "s=0")
}

func TestPointMassMixtureDistance(t *testing.T) {
	n, w := 50, 0.3
	d := NewPointMassMixture(n, 7, w)
	want := 2 * w * (1 - 1/float64(n))
	if got := L1FromUniform(d); math.Abs(got-want) > 1e-12 {
		t.Fatalf("L1 = %v, want %v", got, want)
	}
	assertPanics(t, func() { NewPointMassMixture(10, 10, 0.5) }, "target out of range")
	assertPanics(t, func() { NewPointMassMixture(10, 0, 1.5) }, "w > 1")
}

func TestHalfSupport(t *testing.T) {
	d := NewHalfSupport(100)
	if got := L1FromUniform(d); math.Abs(got-1) > 1e-9 {
		t.Fatalf("L1 = %v, want 1", got)
	}
	for i := 50; i < 100; i++ {
		if d.Prob(i) != 0 {
			t.Fatalf("element %d should have zero mass", i)
		}
	}
	assertPanics(t, func() { NewHalfSupport(1) }, "n=1")
}

func TestLemma32OnFarDistributions(t *testing.T) {
	// Lemma 3.2: µ ε-far from uniform ⇒ χ(µ) > (1+ε²)/n.
	instances := []Distribution{
		NewTwoBump(100, 0.5, 1),
		NewTwoBump(1000, 0.9, 2),
		NewZipf(100, 1.5),
		NewPointMassMixture(200, 3, 0.4),
		NewHalfSupport(100),
	}
	for _, d := range instances {
		eps := L1FromUniform(d)
		n := float64(d.N())
		if chi := CollisionProbability(d); chi <= (1+eps*eps)/n-1e-12 {
			t.Errorf("%s: χ = %v ≤ (1+ε²)/n = %v (Lemma 3.2 violated)", d.Name(), chi, (1+eps*eps)/n)
		}
	}
}

func TestLemma32PropertyRandomHistograms(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		p := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			p[i] = float64(v) + 0.01
			total += p[i]
		}
		h, err := NewHistogram(p, "")
		if err != nil {
			return false
		}
		eps := L1FromUniform(h)
		chi := CollisionProbability(h)
		return chi >= (1+eps*eps)/float64(h.N())-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestL1AndTV(t *testing.T) {
	p := MustHistogram([]float64{1, 0}, "")
	q := MustHistogram([]float64{0, 1}, "")
	if got := L1(p, q); math.Abs(got-2) > 1e-15 {
		t.Fatalf("L1 = %v, want 2", got)
	}
	if got := TV(p, q); math.Abs(got-1) > 1e-15 {
		t.Fatalf("TV = %v, want 1", got)
	}
	assertPanics(t, func() { L1(NewUniform(3), NewUniform(4)) }, "mismatched domains")
}

func TestL1Symmetry(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p, errP := NewHistogram([]float64{float64(a) + 1, float64(b) + 1}, "")
		q, errQ := NewHistogram([]float64{float64(c) + 1, float64(d) + 1}, "")
		if errP != nil || errQ != nil {
			return false
		}
		return math.Abs(L1(p, q)-L1(q, p)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasCollision(t *testing.T) {
	tests := []struct {
		name    string
		samples []int
		want    bool
	}{
		{name: "empty", samples: nil, want: false},
		{name: "single", samples: []int{3}, want: false},
		{name: "distinct", samples: []int{1, 2, 3}, want: false},
		{name: "adjacent dup", samples: []int{1, 1}, want: true},
		{name: "distant dup", samples: []int{5, 2, 9, 5}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := HasCollision(tt.samples); got != tt.want {
				t.Fatalf("HasCollision(%v) = %v, want %v", tt.samples, got, tt.want)
			}
		})
	}
}

func TestCountCollisions(t *testing.T) {
	tests := []struct {
		name    string
		samples []int
		want    int
	}{
		{name: "empty", samples: nil, want: 0},
		{name: "distinct", samples: []int{1, 2, 3}, want: 0},
		{name: "one pair", samples: []int{1, 1, 2}, want: 1},
		{name: "triple", samples: []int{4, 4, 4}, want: 3},
		{name: "two pairs", samples: []int{1, 1, 2, 2}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountCollisions(tt.samples); got != tt.want {
				t.Fatalf("CountCollisions(%v) = %d, want %d", tt.samples, got, tt.want)
			}
		})
	}
}

func TestCountCollisionsConsistentWithHasCollision(t *testing.T) {
	f := func(seed uint64, sRaw uint8) bool {
		r := rng.New(seed)
		s := int(sRaw%20) + 1
		samples := SampleN(NewUniform(10), s, r)
		return HasCollision(samples) == (CountCollisions(samples) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalHistogramTotal(t *testing.T) {
	samples := []int{0, 1, 1, 2, 2, 2}
	counts := EmpiricalHistogram(4, samples)
	want := []int{1, 2, 3, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func assertPanics(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func BenchmarkUniformSample(b *testing.B) {
	u := NewUniform(1 << 20)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = u.Sample(r)
	}
}

func BenchmarkTwoBumpSample(b *testing.B) {
	d := NewTwoBump(1<<20, 0.5, 1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = d.Sample(r)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	d := NewZipf(1<<16, 1.1)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(r)
	}
}
